package core_test

import (
	"strings"
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// pingpong bounces a value between two processors through locks.
type pingpong struct {
	rounds int
	cell   int64
	result float64
}

func (a *pingpong) Name() string { return "pingpong" }
func (a *pingpong) Setup(h *lrc.Heap) {
	a.result = 0
	a.cell = h.AllocPages(1)
}
func (a *pingpong) Body(env *dsm.Env) {
	for r := env.ID; r < a.rounds; r += env.NProcs() {
		env.Lock(0)
		env.WI(a.cell, env.RI(a.cell)+1)
		env.Unlock(0)
	}
	env.Barrier(0)
	if env.ID == 0 {
		a.result = float64(env.RI(a.cell))
	}
	env.Barrier(1)
}
func (a *pingpong) Result() float64 { return a.result }

// broken computes a wrong answer in parallel runs (reads without
// synchronizing), to prove validation rejects it.
type broken struct {
	cell   int64
	result float64
}

func (a *broken) Name() string { return "broken" }
func (a *broken) Setup(h *lrc.Heap) {
	a.result = 0
	a.cell = h.AllocPages(1)
}
func (a *broken) Body(env *dsm.Env) {
	// The last processor overwrites the cell, but processor 0 reads it
	// without synchronizing: sequentially it sees the overwrite (9),
	// in parallel it reads its own stale 7.
	if env.ID == 0 {
		env.WI(a.cell, 7)
	}
	if env.ID == env.NProcs()-1 {
		env.WI(a.cell, 9)
	}
	if env.ID == 0 {
		a.result = float64(env.RI(a.cell))
	}
}
func (a *broken) Result() float64 { return a.result }

func TestRunValidates(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 4
	r, err := core.Run(cfg, core.TM(tmk.Base), &pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Validated() || r.AppResult != 8 {
		t.Fatalf("result = %v (validated=%v)", r.AppResult, r.Validated())
	}
	if r.Protocol != "Base" || r.App != "pingpong" {
		t.Fatalf("labels wrong: %q %q", r.Protocol, r.App)
	}
}

func TestRunRejectsWrongAnswers(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 8
	_, err := core.Run(cfg, core.TM(tmk.Base), &broken{})
	if err == nil {
		t.Fatal("racy application validated against the oracle")
	}
	if !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 0
	if _, err := core.Run(cfg, core.TM(tmk.Base), &pingpong{rounds: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSpecStrings(t *testing.T) {
	cases := map[string]core.Spec{
		"Base":   core.TM(tmk.Base),
		"I+P+D":  core.TM(tmk.IPD),
		"AURC":   core.AURC(false),
		"AURC+P": core.AURC(true),
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSequentialCycles(t *testing.T) {
	cfg := params.Default()
	c, err := core.SequentialCycles(cfg, &pingpong{rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("sequential cycles = %d", c)
	}
	// A 4-processor run of the same workload should take less wall time
	// than 4x the sequential run (some speedup) — sanity, not precision.
	cfg.Processors = 4
	r, err := core.Run(cfg, core.TM(tmk.Base), &pingpong{rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.RunningTime <= 0 {
		t.Fatal("no parallel time")
	}
}

func TestValidatedTolerance(t *testing.T) {
	r := &core.Result{AppResult: 1.0000000001, SeqResult: 1.0}
	if !r.Validated() {
		t.Error("tiny FP difference rejected")
	}
	r = &core.Result{AppResult: 1.1, SeqResult: 1.0}
	if r.Validated() {
		t.Error("10% difference accepted")
	}
	r = &core.Result{AppResult: 0, SeqResult: 0}
	if !r.Validated() {
		t.Error("exact zero match rejected")
	}
	r = &core.Result{AppResult: 0, SeqResult: 1}
	if r.Validated() {
		t.Error("zero vs nonzero accepted")
	}
}

func TestRunAURCKind(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 4
	r, err := core.Run(cfg, core.AURC(false), &pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Protocol != "AURC" {
		t.Fatalf("protocol = %q", r.Protocol)
	}
}

func TestSpecOptionLabels(t *testing.T) {
	s := core.TMOpt(tmk.IPD, tmk.Options{Strategy: tmk.PrefetchAlways})
	if s.String() != "I+P+D(always)" {
		t.Errorf("label = %q", s.String())
	}
	s = core.TMOpt(tmk.IPD, tmk.Options{NoPrefetchPriority: true})
	if s.String() != "I+P+D(noprio)" {
		t.Errorf("label = %q", s.String())
	}
	// Non-prefetching modes don't advertise a strategy.
	s = core.TMOpt(tmk.ID, tmk.Options{Strategy: tmk.PrefetchAlways})
	if s.String() != "I+D" {
		t.Errorf("label = %q", s.String())
	}
}

func TestRunWithOptions(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 4
	for _, strat := range []tmk.PrefetchStrategy{tmk.PrefetchReferenced, tmk.PrefetchAlways, tmk.PrefetchAdaptive} {
		spec := core.TMOpt(tmk.IPD, tmk.Options{Strategy: strat})
		if _, err := core.Run(cfg, spec, &pingpong{rounds: 8}); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

func TestResultCarriesPageProfiles(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 4
	r, err := core.Run(cfg, core.TM(tmk.Base), &pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pages) == 0 {
		t.Fatal("no page profiles collected")
	}
	var faults uint64
	for _, p := range r.Pages {
		faults += p.Faults
	}
	if faults == 0 {
		t.Fatal("page profiles empty")
	}
	// AURC collects them too.
	r, err = core.Run(cfg, core.AURC(false), &pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pages) == 0 {
		t.Fatal("AURC collected no page profiles")
	}
}

func TestTracerPlumbing(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 4
	buf := trace.New(64)
	spec := core.TM(tmk.Base)
	spec.Tracer = buf
	if _, err := core.Run(cfg, spec, &pingpong{rounds: 8}); err != nil {
		t.Fatal(err)
	}
	if buf.Total() == 0 {
		t.Fatal("tracer received no events")
	}
	evs := buf.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("trace not chronological")
		}
	}
}
