package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.NewProc(0, "p0", 0, func(p *Proc) {
		p.Sleep(100)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 100 {
		t.Fatalf("woke at %d, want 100", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.NewProc(0, "a", 0, func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a1")
		p.Sleep(20) // wakes at 30
		order = append(order, "a2")
	})
	e.NewProc(1, "b", 5, func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(10) // wakes at 15
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine()
	var c Cond
	var woke []int
	for i := 0; i < 3; i++ {
		id := i
		e.NewProc(id, "w", Time(id), func(p *Proc) {
			c.Wait(p, "test")
			woke = append(woke, id)
		})
	}
	e.At(10, func() {
		if c.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", c.Waiters())
		}
		c.Signal(e)
	})
	e.At(20, func() { c.Broadcast(e) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != 0 || woke[1] != 1 || woke[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", woke)
	}
}

func TestSignalEmptyCond(t *testing.T) {
	e := NewEngine()
	var c Cond
	e.At(0, func() {
		if c.Signal(e) {
			t.Error("Signal on empty cond reported a wake")
		}
		if n := c.Broadcast(e); n != 0 {
			t.Errorf("Broadcast woke %d, want 0", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	var g Gate
	var at Time = -1
	e.NewProc(0, "w", 0, func(p *Proc) {
		g.Wait(p, "gate")
		at = p.Now()
		// A second wait on an open gate returns immediately.
		g.Wait(p, "gate")
		if p.Now() != at {
			t.Error("second Wait on open gate blocked")
		}
	})
	e.At(42, func() { g.Open(e) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("gate released at %d, want 42", at)
	}
	if !g.IsOpen() {
		t.Error("gate should report open")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	var c Cond
	e.NewProc(0, "stuck", 0, func(p *Proc) {
		c.Wait(p, "never-signaled")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestBlockHooks(t *testing.T) {
	e := NewEngine()
	var blocked, unblocked string
	var waited Time
	p := e.NewProc(0, "p", 0, func(p *Proc) {
		p.SleepReason(33, "lock")
	})
	p.OnBlock = func(r string) { blocked = r }
	p.OnUnblock = func(r string, w Time) { unblocked = r; waited = w }
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if blocked != "lock" || unblocked != "lock" || waited != 33 {
		t.Fatalf("hooks: blocked=%q unblocked=%q waited=%d", blocked, unblocked, waited)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.NewProc(0, "p", 0, func(p *Proc) {
		order = append(order, "before")
		p.Yield()
		order = append(order, "after")
	})
	e.At(0, func() { order = append(order, "event") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The proc starts first (registered first), yields, the 0-time event
	// runs, then the proc resumes.
	want := []string{"before", "event", "after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
