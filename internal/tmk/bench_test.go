package tmk_test

import (
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// Protocol microbenchmarks: simulated latency of the primitive protocol
// operations, reported as custom metrics. These quantify the building
// blocks behind the paper's figures (lock hand-off chains, barrier
// episodes, page-fault round trips) and double as wall-time benchmarks
// of the simulator itself.

func benchProtocolOp(b *testing.B, procs int, mode tmk.Mode, app func() *counterApp, metric string, per uint64) {
	var cycles int64
	var count uint64
	for i := 0; i < b.N; i++ {
		a := app()
		r, err := core.Run(smallCfg(procs), core.TM(mode), a)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.RunningTime
		count = per
	}
	if count > 0 {
		b.ReportMetric(float64(cycles)/float64(count), metric)
	}
}

// BenchmarkLockHandoff measures a 16-way contended lock chain.
func BenchmarkLockHandoff(b *testing.B) {
	benchProtocolOp(b, 16, tmk.Base,
		func() *counterApp { return &counterApp{total: 64} },
		"sim-cycles/acquire", 64)
}

// BenchmarkLockHandoffControlled is the same chain with the protocol
// controller handling the messaging (I+D).
func BenchmarkLockHandoffControlled(b *testing.B) {
	benchProtocolOp(b, 16, tmk.ID,
		func() *counterApp { return &counterApp{total: 64} },
		"sim-cycles/acquire", 64)
}

// BenchmarkBarrierEpisode measures barrier cost on 16 processors.
func BenchmarkBarrierEpisode(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		a := &falseShareApp{words: 256, iters: 8}
		r, err := core.Run(smallCfg(16), core.TM(tmk.Base), a)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.RunningTime / 8
	}
	b.ReportMetric(float64(cycles), "sim-cycles/barrier-iter")
}

// BenchmarkPageFaultRoundTrip measures a producer/consumer page fetch.
func BenchmarkPageFaultRoundTrip(b *testing.B) {
	var perFault float64
	for i := 0; i < b.N; i++ {
		a := &producerApp{n: 4096}
		r, err := core.Run(smallCfg(16), core.TM(tmk.Base), a)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Breakdown.Sum()
		if s.PageFaults > 0 {
			perFault = float64(s.Cycles[1]) / float64(s.PageFaults) // Data category
		}
	}
	b.ReportMetric(perFault, "sim-data-cycles/fault")
}

// BenchmarkEngineEventRate measures raw simulator speed: wall time per
// simulated cycle for a communication-heavy run.
func BenchmarkEngineEventRate(b *testing.B) {
	cfg := params.Default()
	cfg.Processors = 16
	var cycles int64
	for i := 0; i < b.N; i++ {
		a := &falseShareApp{words: 2048, iters: 4}
		r, err := core.Run(cfg, core.TM(tmk.Base), a)
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.RunningTime
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
}
