// Package trace provides a structured protocol event trace: a bounded
// ring buffer of timestamped per-page protocol events (faults, diff
// creation and application, write notices, protection changes). It is
// the debugging instrument that located every consistency bug found
// while building this reproduction, promoted into a first-class tool:
// attach a Buffer to a run and dump the exact protocol history of a page.
//
// # Attaching a buffer
//
// Set core.Spec.Tracer to a Buffer before core.Run and both protocol
// families emit into it — the TreadMarks variants (faults, diffs, write
// notices, intervals, prefetch issues) and AURC (faults, automatic-update
// drains, prefetch issues, via KindUpdate/KindPrefetch); the dsmsim
// command exposes the same path as `-trace <page>`. Emitting into a nil
// *Buffer is a no-op, so protocol code keeps an always-present field
// with zero cost when tracing is off. The same events double as the
// instant markers on an exported timeline (internal/timeline).
//
// # Filtering
//
// The ring holds the last `capacity` events that pass the filters: set
// Page to record a single page's history (the common use — page -1
// records all), and Kinds to keep only selected event kinds. Total
// still counts every event that passed the filters, including ones the
// ring has overwritten, so "how much happened" survives a small buffer.
//
// # Reading
//
// Events returns the retained events in chronological order regardless
// of ring wrap; String renders them one per line in the fixed
// `[time] node page kind detail` layout. Because the simulation is
// deterministic, a trace is bit-for-bit reproducible across runs — a
// protocol bug's event history can be diffed between two builds.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// KindNotice: a write notice arrived and invalidated the page.
	KindNotice Kind = iota
	// KindFault: a processor faulted on the page.
	KindFault
	// KindDiffCreate: the page's twin/write-vector was flushed into a diff.
	KindDiffCreate
	// KindDiffApply: a remote diff was applied to the local copy.
	KindDiffApply
	// KindWritable: the page was made writable (twinned / vector armed).
	KindWritable
	// KindIntervalClose: an interval listing the page was closed.
	KindIntervalClose
	// KindUpdate: an AURC automatic update for the page was flushed from
	// the write cache toward its home (or applied there).
	KindUpdate
	// KindPrefetch: a prefetch for the page was issued (TreadMarks P
	// variants and AURC+P).
	KindPrefetch
	// KindLock: lock activity — grant issued, token acquired, release.
	// Synchronization events carry Page = -1 (they are not about a page).
	KindLock
	// KindBarrier: barrier arrival or departure (Page = -1).
	KindBarrier
	// KindOther: anything else a protocol wants to record.
	KindOther
)

// String returns a short label.
func (k Kind) String() string {
	switch k {
	case KindNotice:
		return "notice"
	case KindFault:
		return "fault"
	case KindDiffCreate:
		return "diff-create"
	case KindDiffApply:
		return "diff-apply"
	case KindWritable:
		return "writable"
	case KindIntervalClose:
		return "interval"
	case KindUpdate:
		return "update"
	case KindPrefetch:
		return "prefetch"
	case KindLock:
		return "lock"
	case KindBarrier:
		return "barrier"
	case KindOther:
		return "other"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one protocol occurrence.
type Event struct {
	Time   int64
	Node   int
	Page   int
	Kind   Kind
	Detail string
}

// String renders one line.
func (e Event) String() string {
	return fmt.Sprintf("[%10d] n%-2d pg%-5d %-11s %s", e.Time, e.Node, e.Page, e.Kind, e.Detail)
}

// Buffer is a bounded ring of events. The zero value is unusable; use
// New. A nil *Buffer is safe to Emit into (no-op), so protocols can keep
// an always-present field.
type Buffer struct {
	evs     []Event
	next    int
	wrapped bool
	total   uint64
	// Page, when >= 0, records only events for that page.
	Page int
	// Kinds, when non-nil, records only the listed kinds.
	Kinds map[Kind]bool
}

// New builds a ring buffer holding up to capacity events.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{evs: make([]Event, 0, capacity), Page: -1}
}

// Emit records an event (subject to the buffer's filters). Safe on nil.
func (b *Buffer) Emit(e Event) {
	if b == nil {
		return
	}
	if b.Page >= 0 && e.Page != b.Page {
		return
	}
	if b.Kinds != nil && !b.Kinds[e.Kind] {
		return
	}
	b.total++
	if len(b.evs) < cap(b.evs) {
		b.evs = append(b.evs, e)
		return
	}
	b.evs[b.next] = e
	b.next = (b.next + 1) % cap(b.evs)
	b.wrapped = true
}

// Total reports how many events were recorded (including overwritten).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	if !b.wrapped {
		return append([]Event(nil), b.evs...)
	}
	out := make([]Event, 0, len(b.evs))
	out = append(out, b.evs[b.next:]...)
	out = append(out, b.evs[:b.next]...)
	return out
}

// String renders the retained events, one per line.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
