#!/bin/sh
# Scaling benchmark for the parallel event engine (make bench-snapshot).
#
# Runs cmd/bench over the 64/128/256-node meshes at 1/2/4/8 engine
# workers and writes the dsm96/bench/v1 snapshot to the path given as
# $1 (default BENCH_parallel_engine.json in the repo root). The bench
# itself verifies the determinism contract — every cell's fingerprint,
# event count, and cycle total must match its mesh's workers=1 cell.
#
# Hosts with fewer than 4 CPUs are refused outright: their throughput
# columns would measure OS time-slicing, not the engine, and a snapshot
# from such a host must never be committed as if it were comparable
# (cmd/bench -out enforces the same floor; metricsdiff -trend separately
# refuses to compare throughput across host classes via host.num_cpu).
# The >= 2x speedup assertion (best worker count vs workers=1 on the
# 64-node mesh and up) additionally needs hardware that can actually run
# the shards concurrently, so it is applied when the host has 8+ CPUs
# and skipped — loudly — otherwise.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel_engine.json}"

ncpu="$(go run ./scripts/ncpu 2>/dev/null || echo 1)"
if [ "$ncpu" -lt 4 ]; then
	echo "bench.sh: refusing to snapshot on a $ncpu-CPU host (need 4+): throughput would measure time-slicing, not the engine" >&2
	exit 1
fi
speedup=0
if [ "$ncpu" -ge 8 ]; then
	speedup=2.0
else
	echo "bench.sh: host has $ncpu CPU(s); skipping the >=2x speedup assertion (needs 8+)" >&2
fi

go run ./cmd/bench \
	-mesh 64,128,256 -workers 1,2,4,8 \
	-app water -proto I+P+D -scale tiny -reps 3 \
	-require-speedup "$speedup" \
	-out "$out"
echo "bench.sh: snapshot written to $out"
