package pipeline

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func syntheticRun() *RunResult {
	return &RunResult{
		Experiment: Experiment{Name: "ladder", Scale: "tiny"},
		Host:       CurrentHost(),
		Cells: []CellResult{
			{ID: "pci1996/water/Base/p4/w1", Cycles: 100, Events: 10,
				Fingerprint: "00000000000000aa", MetricsKeys: "00000000000000bb",
				WallNS: 1000, EventsPerSec: 1e7},
			{ID: "pci1996/water/I/p4/w1", Cycles: 90, Events: 12,
				Fingerprint: "00000000000000cc", MetricsKeys: "00000000000000bb",
				WallNS: 1100, EventsPerSec: 1.1e7},
		},
	}
}

func TestBuildTrend(t *testing.T) {
	tr, err := BuildTrend(syntheticRun(), 1, "label")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrendSchema || tr.Seq != 1 || tr.Experiment != "ladder" {
		t.Errorf("record header: %+v", tr)
	}
	c, ok := tr.Cells["pci1996/water/Base/p4/w1"]
	if !ok || c.Cycles != 100 || c.Fingerprint != "00000000000000aa" {
		t.Errorf("cell not folded: %+v", c)
	}
}

func TestBuildTrendRefusesFailedCells(t *testing.T) {
	r := syntheticRun()
	r.Cells[1].Error = "boom"
	if _, err := BuildTrend(r, 1, ""); err == nil ||
		!strings.Contains(err.Error(), "refusing a trend record") {
		t.Fatalf("BuildTrend accepted a failed run (err=%v)", err)
	}
}

func TestBuildTrendRefusesDuplicateIDs(t *testing.T) {
	r := syntheticRun()
	r.Cells[1].ID = r.Cells[0].ID
	if _, err := BuildTrend(r, 1, ""); err == nil ||
		!strings.Contains(err.Error(), "duplicate cell id") {
		t.Fatalf("BuildTrend accepted duplicate cell IDs (err=%v)", err)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	tr, err := BuildTrend(syntheticRun(), 1, "label")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := tr.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two serializations of the same record differ")
	}
}

func TestAppendTrendSequencing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trends") // does not exist yet
	if seq, err := NextTrendSeq(dir); err != nil || seq != 1 {
		t.Fatalf("NextTrendSeq on missing dir: %d, %v (want 1, nil)", seq, err)
	}
	tr, err := BuildTrend(syntheticRun(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	path, err := AppendTrend(dir, tr)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "0001.json" {
		t.Errorf("first record at %s, want 0001.json", path)
	}
	if seq, _ := NextTrendSeq(dir); seq != 2 {
		t.Errorf("NextTrendSeq after one append: %d, want 2", seq)
	}
	// A stale Seq (two writers raced) must fail loudly, not renumber.
	if _, err := AppendTrend(dir, tr); err == nil {
		t.Fatal("AppendTrend accepted a stale seq")
	}
	tr.Seq = 2
	if _, err := AppendTrend(dir, tr); err != nil {
		t.Fatal(err)
	}
	files, err := TrendFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || filepath.Base(files[1]) != "0002.json" {
		t.Errorf("TrendFiles = %v", files)
	}
}

// TestCommittedTrendRecord pins trends/0001.json: the database's first
// record must parse, carry the schema tag, and record the host class
// that makes its throughput columns interpretable.
func TestCommittedTrendRecord(t *testing.T) {
	files, err := TrendFiles("../../trends")
	if err != nil {
		t.Fatalf("trends/: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("trends/ has no records; run `make trend-snapshot`")
	}
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var tr Trend
		if err := json.Unmarshal(buf, &tr); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tr.Schema != TrendSchema {
			t.Errorf("%s: schema %q, want %q", f, tr.Schema, TrendSchema)
		}
		if tr.Host.NumCPU < 1 {
			t.Errorf("%s: host class (num_cpu) missing", f)
		}
		if len(tr.Cells) == 0 {
			t.Errorf("%s: no cells", f)
		}
	}
}
