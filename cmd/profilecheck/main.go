// Command profilecheck validates params-profile files (`make profiles`).
//
// Usage:
//
//	profilecheck [-write] [FILE...]
//
// With no arguments it checks the repository's checked-in builtin
// profiles: profiles/<name>.json must exist, parse, validate, and be
// byte-for-byte the canonical serialization of the matching builtin —
// so the files users copy as templates can never drift from the
// constants the goldens pin. -write (re)generates them instead.
//
// With file arguments it loads and validates each one (strict decode:
// unknown fields are errors) and reports PROFILE OK with the profile's
// identity, or the first problem, naming the offending field.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dsm96/internal/params"
)

func main() {
	write := flag.Bool("write", false, "write canonical profiles/<name>.json for every builtin")
	dir := flag.String("dir", "profiles", "directory holding the checked-in builtin profiles")
	flag.Parse()

	if flag.NArg() > 0 {
		ok := true
		for _, path := range flag.Args() {
			p, err := params.LoadProfileFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profilecheck:", err)
				ok = false
				continue
			}
			fmt.Printf("%s: OK (profile %q, backend %s, %d processors, 1 cycle = %g ns)\n",
				path, p.Name, p.Backend, p.Params.Processors, p.Params.CycleNanos)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *write {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "profilecheck:", err)
			os.Exit(1)
		}
	}
	ok := true
	for _, p := range params.Builtins() {
		path := filepath.Join(*dir, p.Name+".json")
		want, err := p.SaveBytes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "profilecheck:", err)
			os.Exit(1)
		}
		if *write {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "profilecheck:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: wrote %d bytes\n", path, len(want))
			continue
		}
		got, err := os.ReadFile(path)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "profilecheck: %v (regenerate with: go run ./cmd/profilecheck -write)\n", err)
			ok = false
		case !bytes.Equal(got, want):
			fmt.Fprintf(os.Stderr, "profilecheck: %s is not the canonical serialization of the %q builtin (regenerate with: go run ./cmd/profilecheck -write)\n", path, p.Name)
			ok = false
		default:
			fmt.Printf("%s: OK (canonical, backend %s)\n", path, p.Backend)
		}
	}
	if !ok {
		os.Exit(1)
	}
}
