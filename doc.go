// Package dsm96 is a from-scratch reproduction of "Hiding Communication
// Latency and Coherence Overhead in Software DSMs" (Bianchini,
// Kontothanassis, Pinto, De Maria, Abud, Amorim — ASPLOS 1996): an
// execution-driven simulator of a 16-node network of workstations, the
// TreadMarks lazy-release-consistency DSM with the paper's six overlap
// variants (protocol controller, hardware diffs, diff prefetching), the
// AURC automatic-update DSM, the six applications of the evaluation, and
// a harness that regenerates every table and figure.
//
// # Layout
//
// The root package carries only the benchmark harness (bench_test.go:
// one benchmark per table/figure). The implementation lives under
// internal/, layered bottom-up:
//
//   - internal/sim — the deterministic discrete-event engine: coroutine
//     processors, FCFS resources, priority servers, and the determinism
//     fingerprint every reproducibility gate hangs off.
//   - internal/params, internal/memsys, internal/network,
//     internal/faults, internal/controller — the machine: Table 1
//     constants, per-node memory systems, the wormhole mesh with its
//     reliable transport, deterministic fault injection, and the
//     paper's programmable protocol controller.
//   - internal/lrc, internal/tmk, internal/aurc — the protocols:
//     shared lazy-release-consistency machinery, TreadMarks in six
//     overlap variants, and AURC automatic updates.
//   - internal/dsm, internal/apps, internal/randprog — the programs:
//     the application-facing API with its sequential oracle, the six
//     applications, and the random program fuzzer.
//   - internal/core, internal/stats, internal/trace,
//     internal/timeline, internal/experiments, internal/pipeline — the
//     harness: the Run facade, the paper's time accounting, protocol
//     event tracing, the timeline recorder with its Perfetto and
//     run-metrics exporters, the figure/table and sweep generators, and
//     the reproducible experiment pipeline (grid runner, trend
//     database, generated-table renderer).
//
// The runnable tools live under cmd/ (dsmsim, figures, sweep, ablation,
// profile, validate, metricsdiff, profilecheck, bench, experiment) and
// examples/ (quickstart, protocol-compare, em3d-study).
//
// # Where to start
//
// README.md for the elevator pitch and quick start; ARCHITECTURE.md for
// the layer-by-layer tour and the life of one page fault; DESIGN.md for
// the rationale behind each subsystem; EXPERIMENTS.md for
// paper-vs-measured on every table and figure, the reliability sweep,
// and the regeneration commands.
package dsm96
