// Command figures regenerates the paper's tables and figures in text
// form. By default it prints everything; flags select individual items.
//
// Usage:
//
//	figures [-scale tiny|default|paper] [-only table1,fig1,fig2,fig5-10,fig11-12,fig13,fig14,fig15,fig16]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsm96/internal/apps"
	"dsm96/internal/experiments"
)

func main() {
	scale := flag.String("scale", "default", "problem scale: tiny, default, paper")
	only := flag.String("only", "", "comma-separated subset of: table1,fig1,fig2,fig5-10,fig11-12,fig13,fig14,fig15,fig16")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.ScaleTiny
	case "default":
		sc = experiments.ScaleDefault
	case "paper":
		sc = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	if sel("table1") {
		fmt.Println(experiments.Table1())
	}
	if sel("fig1") {
		data, err := experiments.Fig1(sc, []int{2, 4, 8, 16})
		die(err)
		fmt.Println(experiments.FormatFig1(data))
	}
	if sel("fig2") {
		rows, err := experiments.Fig2(sc)
		die(err)
		fmt.Println(experiments.FormatBreakdownRows(
			"Figure 2: Application Performance under TreadMarks DSM on 16 processors", rows))
	}
	if sel("fig5-10") {
		figNo := map[string]int{"tsp": 5, "water": 6, "radix": 7, "barnes": 8, "em3d": 9, "ocean": 10}
		for _, app := range apps.Names() {
			rows, err := experiments.Fig5to10(app, sc)
			die(err)
			fmt.Println(experiments.FormatBreakdownRows(
				fmt.Sprintf("Figure %d: Overlapping Techniques for %s under TreadMarks (normalized to Base)",
					figNo[app], app), rows))
		}
	}
	if sel("fig11-12") {
		data, err := experiments.Fig11_12(sc)
		die(err)
		for _, app := range apps.Names() {
			fmt.Println(experiments.FormatBreakdownRows(
				fmt.Sprintf("Figures 11-12: %s — Overlapping TM (I+D) vs AURC vs AURC+P (normalized to I+D)", app),
				data[app]))
		}
	}
	if sel("fig13") {
		pts, err := experiments.Fig13(sc, []float64{0.5, 1, 2, 4, 8, 20, 40})
		die(err)
		fmt.Println(experiments.FormatSweep(
			"Figure 13: Effect of Messaging Overhead on Em3d (pessimistic: AURC updates pay full overhead)",
			"latency(us)", pts))
		opt, err := experiments.Fig13Optimistic(sc, []float64{0.5, 1, 2, 4, 8, 20, 40})
		die(err)
		fmt.Println(experiments.FormatSweep(
			"Figure 13 (optimistic: AURC updates cost 1 cycle, the paper's default)",
			"latency(us)", opt))
	}
	if sel("fig14") {
		pts, err := experiments.Fig14(sc, []float64{20, 50, 100, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 14: Effect of Network Bandwidth on Em3d", "MB/s", pts))
	}
	if sel("fig15") {
		pts, err := experiments.Fig15(sc, []float64{40, 100, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 15: Effect of Memory Latency on Em3d", "ns", pts))
	}
	if sel("fig16") {
		pts, err := experiments.Fig16(sc, []float64{60, 94, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 16: Effect of Memory Bandwidth on Em3d", "MB/s", pts))
	}
}
