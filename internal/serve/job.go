// Package serve is the simulation-as-a-service layer: a crash-safe job
// server that accepts dsm96/job/v1 simulation specs over HTTP, dedupes
// and memoizes them by canonical content hash, executes misses on a
// bounded worker pool with explicit backpressure, and persists results
// in a content-addressed artifact store that a restart recovers to a
// consistent state after a crash at any point.
//
// The design leans on one property the rest of the repository already
// proves: runs are bit-identical given their spec (fingerprint gates,
// golden cycles, worker-count parity). That makes every result
// perfectly cacheable — SHA-256(canonical spec) is a complete identity
// for the artifact a run produces — and makes crash recovery trivial
// to argue: re-running an interrupted job reproduces byte-identical
// output, so the journal only has to avoid losing or duplicating
// *records*, never to reconstruct partial computation.
//
// Layering: job.go (spec canonicalization + hashing + result
// summaries), store.go (journaled content-addressed store + recovery
// scan), server.go (HTTP surface, queue, workers, drain, degraded
// mode), client.go (thin client; cmd/sweep -server rides it).
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/experiments"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/pipeline"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// JobSchema tags the submitted job format.
const JobSchema = "dsm96/job/v1"

// JobSpec is one submitted simulation. The result-determining fields —
// app, protocol, scale, machine configuration, fault scenario — form
// the canonical identity the server hashes into the job key; workers
// and watchdog are execution policy (the schedule is bit-identical at
// any worker count, and the watchdog is pure observation), so two
// submissions differing only there are the same job.
type JobSpec struct {
	Schema   string `json:"schema"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`
	// Scale is the problem scale (tiny, default, paper); "" = default.
	Scale string `json:"scale,omitempty"`
	// Profile names a builtin interconnect backend (pci1996, rdma,
	// cxl). The server never reads client-supplied file paths; a custom
	// machine travels inline as Config instead. "" with nil Config is
	// Table 1.
	Profile string `json:"profile,omitempty"`
	// Config, when set, is the full machine model (wins over Profile) —
	// how sweep cells with continuously-mutated parameters (Figures
	// 13-16) become jobs.
	Config *params.Config `json:"config,omitempty"`
	// Procs overrides the config/profile processor count when > 0.
	Procs int `json:"procs,omitempty"`
	// Workers shards the event engine (execution hint, not identity).
	Workers int `json:"workers,omitempty"`
	// Watchdog is the liveness window in cycles; 0 arms the default. A
	// stalled run fails with a structured stall report instead of
	// wedging a worker. Negative (watchdog off) is not accepted: an
	// unwatched job could hold a pool slot forever.
	Watchdog int64 `json:"watchdog,omitempty"`
	// Faults is the optional fault-injection scenario.
	Faults *JobFaults `json:"faults,omitempty"`
}

// JobFaults is the job spec's fault block: uniform link rates plus an
// explicit per-node controller schedule. It deliberately covers what
// faults.Plan can express minus per-link overrides (a map keyed by a
// struct, which JSON cannot carry); the sweeps and chaos grids only
// ever use the uniform + controller form.
type JobFaults struct {
	Seed     uint64                   `json:"seed,omitempty"`
	Drop     float64                  `json:"drop,omitempty"`
	Dup      float64                  `json:"dup,omitempty"`
	Delay    float64                  `json:"delay,omitempty"`
	DelayMin int64                    `json:"delay_min,omitempty"`
	DelayMax int64                    `json:"delay_max,omitempty"`
	Ctrl     map[int]faults.CtrlFault `json:"ctrl,omitempty"`
}

// plan resolves the block into a validated fault plan.
func (f *JobFaults) plan() (*faults.Plan, error) {
	if f == nil {
		return nil, nil
	}
	p := &faults.Plan{
		Seed: f.Seed,
		Default: faults.Link{
			Drop: f.Drop, Dup: f.Dup, Delay: f.Delay,
			DelayMin: sim.Time(f.DelayMin), DelayMax: sim.Time(f.DelayMax),
		},
		Ctrl: f.Ctrl,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.LinksEnabled() && !p.CtrlEnabled() {
		return nil, nil // all-zero block: identical to no faults, and keyed as such
	}
	return p, nil
}

// FaultsFromPlan converts a fault plan back into the job block, or an
// error if the plan uses per-link overrides the wire format cannot
// carry. nil (or disabled) plans map to nil.
func FaultsFromPlan(p *faults.Plan) (*JobFaults, error) {
	if p == nil {
		return nil, nil
	}
	if len(p.PerLink) > 0 {
		return nil, fmt.Errorf("serve: per-link fault overrides are not representable in a job spec")
	}
	if !p.LinksEnabled() && !p.CtrlEnabled() {
		return nil, nil
	}
	jf := &JobFaults{
		Seed: p.Seed,
		Drop: p.Default.Drop, Dup: p.Default.Dup, Delay: p.Default.Delay,
		DelayMin: int64(p.Default.DelayMin), DelayMax: int64(p.Default.DelayMax),
	}
	if len(p.Ctrl) > 0 {
		jf.Ctrl = make(map[int]faults.CtrlFault, len(p.Ctrl))
		for n, c := range p.Ctrl {
			jf.Ctrl[n] = c
		}
	}
	return jf, nil
}

// canonicalJob is the hashed identity: every result-determining field,
// fully resolved (profile applied, procs folded into the config,
// protocol label normalized). json.Marshal on this struct is
// deterministic — fixed field order, sorted map keys — so equal jobs
// hash equal regardless of how the submission spelled them.
type canonicalJob struct {
	Schema   string        `json:"schema"`
	App      string        `json:"app"`
	Protocol string        `json:"protocol"`
	Scale    string        `json:"scale"`
	Config   params.Config `json:"config"`
	Faults   *JobFaults    `json:"faults,omitempty"`
}

// ResolvedJob is a validated, canonicalized job ready to execute.
type ResolvedJob struct {
	// Key is the job's identity: hex SHA-256 of the canonical spec.
	Key string
	// Canonical is the canonical spec document (stored in the journal,
	// so a record is self-describing and re-runnable).
	Canonical json.RawMessage
	App       string
	Protocol  string
	ScaleName string
	Scale     experiments.Scale
	Cfg       params.Config
	Spec      core.Spec
}

// AppInstance builds the job's application at its resolved scale.
func (j *ResolvedJob) AppInstance() (dsm.App, error) {
	return experiments.AppAt(j.App, j.Scale)
}

// Resolve validates the submission and computes its canonical identity,
// naming the offending field on rejection.
func (j *JobSpec) Resolve() (*ResolvedJob, error) {
	if j.Schema != JobSchema {
		return nil, fmt.Errorf("serve: schema: got %q, want %q", j.Schema, JobSchema)
	}
	known := false
	for _, n := range apps.Names() {
		known = known || n == j.App
	}
	if !known {
		return nil, fmt.Errorf("serve: app: unknown %q", j.App)
	}
	spec, ok := pipeline.ParseProtocol(j.Protocol)
	if !ok {
		return nil, fmt.Errorf("serve: protocol: unknown %q", j.Protocol)
	}
	scaleName := j.Scale
	if scaleName == "" {
		scaleName = "default"
	}
	sc, ok := experiments.ParseScale(scaleName)
	if !ok {
		return nil, fmt.Errorf("serve: scale: unknown %q (want tiny, default, or paper)", j.Scale)
	}
	var cfg params.Config
	switch {
	case j.Config != nil:
		cfg = *j.Config
	case j.Profile != "":
		prof, err := params.Builtin(j.Profile)
		if err != nil {
			return nil, fmt.Errorf("serve: profile: %w (the server resolves builtin backends only; send a custom machine inline as config)", err)
		}
		cfg = prof.Config()
	default:
		cfg = params.Default()
	}
	if j.Procs > 0 {
		cfg.Processors = j.Procs
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("serve: config: %w", err)
	}
	if j.Workers < 0 {
		return nil, fmt.Errorf("serve: workers: %d, need >= 0", j.Workers)
	}
	if j.Watchdog < 0 {
		return nil, fmt.Errorf("serve: watchdog: %d, need >= 0 (an unwatched job could wedge a worker forever)", j.Watchdog)
	}
	plan, err := j.Faults.plan()
	if err != nil {
		return nil, fmt.Errorf("serve: faults: %w", err)
	}
	if plan != nil && plan.CtrlEnabled() {
		for n := range plan.Ctrl {
			if n < 0 || n >= cfg.Processors {
				return nil, fmt.Errorf("serve: faults: ctrl node %d outside 0..%d", n, cfg.Processors-1)
			}
		}
	}
	spec.Workers = j.Workers
	spec.Watchdog = sim.Time(j.Watchdog)
	spec.Faults = plan

	canonFaults := j.Faults
	if plan == nil {
		canonFaults = nil // all-zero fault blocks key identically to none
	}
	canon, err := json.Marshal(&canonicalJob{
		Schema: JobSchema, App: j.App, Protocol: spec.String(),
		Scale: scaleName, Config: cfg, Faults: canonFaults,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: canonicalize: %w", err)
	}
	sum := sha256.Sum256(canon)
	return &ResolvedJob{
		Key:       hex.EncodeToString(sum[:]),
		Canonical: canon,
		App:       j.App,
		Protocol:  spec.String(),
		ScaleName: scaleName,
		Scale:     sc,
		Cfg:       cfg,
		Spec:      spec,
	}, nil
}

// JobResult is the persisted summary of a completed run: the
// determinism contracts (cycles, events, fingerprint, metrics key
// hash), the validation pair, traffic, the full per-processor
// breakdown, and the reliability counters — everything the sweep
// formatters consume — plus the SHA-256 naming the run-metrics
// artifact in the store.
type JobResult struct {
	Cycles        int64             `json:"cycles"`
	Events        uint64            `json:"events"`
	Fingerprint   string            `json:"fingerprint"`
	MetricsKeys   string            `json:"metrics_keys"`
	AppResult     float64           `json:"app_result"`
	SeqResult     float64           `json:"seq_result"`
	Messages      uint64            `json:"messages"`
	Bytes         uint64            `json:"bytes"`
	Breakdown     *stats.Breakdown  `json:"breakdown"`
	Reliability   stats.Reliability `json:"reliability"`
	MetricsSHA256 string            `json:"metrics_sha256"`
}

// SummarizeResult folds a completed core result into the persisted
// summary. metricsSHA names the run-metrics artifact already written to
// the store.
func SummarizeResult(res *core.Result, metricsSHA string) (*JobResult, error) {
	keys, err := pipeline.MetricsKeyHash(res)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Cycles:        int64(res.RunningTime),
		Events:        res.EventsRun,
		Fingerprint:   fmt.Sprintf("%016x", res.EventFingerprint),
		MetricsKeys:   keys,
		AppResult:     res.AppResult,
		SeqResult:     res.SeqResult,
		Messages:      res.Messages,
		Bytes:         res.Bytes,
		Breakdown:     res.Breakdown,
		Reliability:   res.Reliability,
		MetricsSHA256: metricsSHA,
	}, nil
}

// CoreResult reconstructs the facade-level result the sweep formatters
// need (running time, breakdown, validation pair, traffic, reliability,
// fingerprint). Artifact-only detail (spans, pages, engine profile)
// stays in the stored metrics artifact.
func (r *JobResult) CoreResult(app, protocol string) (*core.Result, error) {
	var fp uint64
	if _, err := fmt.Sscanf(r.Fingerprint, "%x", &fp); err != nil {
		return nil, fmt.Errorf("serve: result fingerprint %q: %w", r.Fingerprint, err)
	}
	return &core.Result{
		RunningTime:      sim.Time(r.Cycles),
		Breakdown:        r.Breakdown,
		AppResult:        r.AppResult,
		SeqResult:        r.SeqResult,
		Messages:         r.Messages,
		Bytes:            r.Bytes,
		Reliability:      r.Reliability,
		EventsRun:        r.Events,
		EventFingerprint: fp,
		Protocol:         protocol,
		App:              app,
	}, nil
}

// StallSummary is the structured liveness report persisted when a job's
// run stalled (PR 5's watchdog machinery surfacing through the service
// layer): instead of a wedged worker, the job fails with this attached.
type StallSummary struct {
	Deadlock     bool     `json:"deadlock"`
	At           int64    `json:"at"`
	LastProgress int64    `json:"last_progress"`
	Blocked      []string `json:"blocked,omitempty"`
	Unacked      int      `json:"unacked_messages,omitempty"`
	Retries      uint64   `json:"transport_retries,omitempty"`
}

// summarizeStall flattens core's stall info for the journal.
func summarizeStall(s *core.StallInfo) *StallSummary {
	if s == nil {
		return nil
	}
	out := &StallSummary{
		Deadlock:     s.Deadlock,
		At:           int64(s.Report.At),
		LastProgress: int64(s.Report.LastProgress),
		Unacked:      s.UnackedMessages,
		Retries:      s.Retries,
	}
	for _, b := range s.Report.Blocked {
		out.Blocked = append(out.Blocked, fmt.Sprintf("%s blocked on %s since cycle %d", b.Name, b.Reason, b.Since))
	}
	return out
}

// equalCanonical reports whether two canonical spec documents describe
// the same job. Both are canonical (fixed field order, sorted keys), so
// compacted byte equality is semantic equality — compaction strips the
// indentation the pretty-printing journal encoder re-flows embedded
// raw messages with.
func equalCanonical(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}
