package tmk

import (
	"fmt"
	"sort"

	"dsm96/internal/controller"
	"dsm96/internal/lrc"
	"dsm96/internal/memsys"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
	"dsm96/internal/trace"
)

// Page access states.
const (
	stInvalid = iota
	stRO
	stRW
)

// Stall/accounting reasons (mapped to the paper's categories by
// CategoryFor).
const (
	reasonInterrupt = "interrupt"
	reasonFetch     = "page-fetch"
	reasonTwin      = "twin"
	reasonLock      = "lock"
	reasonLockGrant = "lock-grant"
	reasonBarrier   = "barrier"
	reasonPrefetch  = "prefetch-issue"
	reasonSteal     = "ipc-steal"
)

// Misc protocol software costs (cycles).
const (
	localLockCost       = 20 // re-acquiring a cached lock token
	homeForwardCost     = 50 // home-node lock request redirection
	writeFaultSetupCost = 50 // protection change + bookkeeping (HW-diff path)
	requestWireBytes    = 40 // control message size
)

// CategoryFor maps a stall reason to the paper's time category.
func CategoryFor(reason string) stats.Category {
	switch reason {
	case memsys.ReasonBusy:
		return stats.Busy
	case memsys.ReasonTLBFill, memsys.ReasonCacheMiss, memsys.ReasonWBFull, reasonInterrupt:
		return stats.Other
	case reasonFetch, reasonTwin:
		return stats.Data
	case reasonLock, reasonLockGrant, reasonBarrier, reasonPrefetch:
		return stats.Synch
	case reasonSteal:
		return stats.IPC
	}
	return stats.Other
}

// fetchOp tracks one in-flight page update (demand fetch or prefetch).
type fetchOp struct {
	gate        sim.Gate
	prefetch    bool
	outstanding int
	diffs       []*lrc.Diff
	// op is the causal span riding the fetch (nil when spans are off).
	// Demand ops are closed by the waiter in processor context; prefetch
	// ops are closed when the apply finishes.
	op *spans.Op
	// replied marks the owners whose reply has been integrated (bitmask,
	// one word per 64 nodes), so a duplicated diff reply cannot
	// double-count against outstanding and complete the fetch early.
	replied []uint64
}

// markReplied records owner's reply, returning false if it had already
// replied (the arrival is a duplicate).
func (f *fetchOp) markReplied(owner int) bool {
	w, bit := owner/64, uint64(1)<<(owner%64)
	for len(f.replied) <= w {
		f.replied = append(f.replied, 0)
	}
	if f.replied[w]&bit != 0 {
		return false
	}
	f.replied[w] |= bit
	return true
}

// page is one node's view of one shared page.
type page struct {
	state int
	// twin is the live software twin (nil when none / in HW-diff mode).
	twin []byte
	// vecLive marks an active write bit vector baseline (HW-diff mode).
	vecLive bool
	// pending holds write notices not yet satisfied by diffs.
	pending []lrc.WriteNotice
	// applied[o] is the highest interval seq of owner o whose
	// modifications are reflected in the local copy.
	applied []int32
	// referenced records that this processor used the page (the
	// prefetch heuristic's "cached and referenced").
	referenced bool
	// fetch is the in-flight fetch, if any.
	fetch *fetchOp
	// firstIval is the oldest closed interval covering the current
	// twin/vector span (0 = none yet); it becomes the diff's OldSeq.
	firstIval int32
	// wordTag[w] is 1+index into tagVals of the span vector timestamp of
	// the writer whose value currently occupies word w (0 = never written
	// by an applied diff). Cumulative diffs can deliver data AHEAD of its
	// write notices; when the notices finally arrive and the old diffs are
	// fetched, these tags let the apply skip exactly the superseded words.
	// The indirection keeps the per-word array pointer-free for the GC.
	wordTag []int32
	tagVals []lrc.VTS
	// prefetchedUnused marks a completed prefetch not yet referenced;
	// if the page is invalidated in this state the prefetch was useless.
	prefetchedUnused bool
	// prefetchIssued is the simulated time the outstanding/last prefetch
	// was issued, for the prefetch-to-use distance statistic.
	prefetchIssued sim.Time
	// queuedPrefetch marks membership in the node's prefetch candidate
	// queue, to avoid duplicates.
	queuedPrefetch bool
	// uselessStreak counts consecutive useless prefetches of this page
	// (for the adaptive strategy); a useful prefetch or demand fault
	// resets it.
	uselessStreak int
}

// plock is one node's bookkeeping for one lock.
type plock struct {
	hasToken bool
	inCS     bool
	// next is a forwarded request waiting for this node's release.
	next *lockReq
	// tail is the distributed-queue tail pointer (home node only).
	tail int
	// gate releases the local acquirer when the grant arrives.
	gate *sim.Gate
}

type lockReq struct {
	from int
	vts  lrc.VTS
	// op is the requester's acquire span; it travels with the request
	// through forwarding and granting so every hop can mark milestones.
	op *spans.Op
}

// pnode is the per-node protocol state.
type pnode struct {
	id int
	pr *Protocol
	// eng is the engine view owning this node: the shard engine on a
	// parallelized run, the (single) engine otherwise. Every event this
	// node schedules, every clock it reads, and every gate it opens in
	// its own execution context goes through this view.
	eng    *sim.Engine
	mem    *memsys.Node
	fp     *memsys.FastPath
	ctl    *controller.Controller
	st     *stats.ProcStats
	proc   *sim.Proc
	frames *lrc.Frames
	// profiles is this node's share of the per-page activity profile,
	// merged across nodes by PageProfiles (shard-local on a parallel
	// engine, so concurrent windows never write a shared record).
	profiles map[int]*stats.PageProfile

	// degraded marks a controller failover: the node has permanently
	// fallen back to inline software protocol handling (see degrade.go).
	degraded   bool
	degradedAt sim.Time

	// cpu is the computation processor's interrupt-service timeline:
	// incoming protocol work reserves it; the application absorbs any
	// accumulated backlog as IPC time at its next operation.
	cpu sim.Resource

	vts lrc.VTS
	// noticed[o] is the highest interval seq of owner o whose write
	// notices this node has processed (always trails or equals vts[o]).
	noticed []int32
	ivals   [][]*lrc.Interval // ivals[o][s-1] = interval s of owner o
	// pages[pg] is this node's view of page pg (nil until first touched);
	// page numbers are dense, so a slice beats a map on the fault path.
	pages []*page
	// dirty is the set of pages with a live twin / write vector; each
	// interval this node closes carries write notices for all of them.
	dirty     map[int]bool
	diffCache map[int][]*lrc.Diff
	locks     map[int]*plock
	// sorter and ownerScratch are per-node working storage for the fault
	// path (diff topological sort, pending-owner dedup); at most one
	// fault transaction per node is in these phases at a time, so the
	// buffers are reused across faults instead of allocated per message.
	sorter       diffSorter
	ownerScratch []int
	// prefetchQueue lists pages invalidated since the last acquire, in
	// invalidation order (deterministic).
	prefetchQueue []int
	// lastBarrierVTS is the global vector timestamp of the last barrier
	// this node left: at the next arrival it ships every interval (of
	// any owner) beyond it, so the manager's knowledge is always
	// causally closed — vts entries it absorbs always come with records.
	lastBarrierVTS lrc.VTS
	// barrierGate releases the node from the current barrier.
	barrierGate *sim.Gate
	// barrierOp is the node's in-flight barrier span, so the manager's
	// release path can mark milestones on it.
	barrierOp *spans.Op
}

// Protocol is a TreadMarks DSM instance over a simulated machine.
type Protocol struct {
	cfg  *params.Config
	eng  *sim.Engine
	net  *network.Network
	heap *lrc.Heap
	mode Mode

	nodes []*pnode
	bars  map[int]*barrier
	opts  Options

	// profiles aggregates per-page protocol activity across all nodes.
	profiles map[int]*stats.PageProfile
	// tracer, when set, records structured protocol events.
	tracer *trace.Buffer
	// rec, when set, records per-node phase spans and controller
	// occupancy (see SetTimeline). Nil for ordinary runs: InstallProc
	// then installs the plain accounting hook, so a disabled timeline is
	// structurally absent from the schedule-critical path.
	rec *timeline.Recorder
	// sp, when set, collects causal operation spans (see SetSpans).
	sp *spans.Tracker
}

// New builds the protocol for the machine described by cfg.
func New(cfg *params.Config, eng *sim.Engine, net *network.Network, mode Mode) *Protocol {
	pr := &Protocol{
		cfg:  cfg,
		eng:  eng,
		net:  net,
		heap: lrc.NewHeap(cfg.PageSize),
		mode: mode,
		bars: make(map[int]*barrier),
	}
	for i := 0; i < cfg.Processors; i++ {
		// The node's whole memory system and protocol state live on its
		// engine view — the owning shard when the engine is parallelized.
		view := eng.View(i)
		mem := memsys.NewNode(i, cfg, view)
		n := &pnode{
			id:             i,
			pr:             pr,
			eng:            view,
			mem:            mem,
			profiles:       make(map[int]*stats.PageProfile),
			fp:             memsys.NewFastPath(mem),
			st:             &stats.ProcStats{},
			frames:         lrc.NewFrames(cfg.PageSize),
			cpu:            sim.Resource{Name: fmt.Sprintf("cpu%d", i)},
			vts:            lrc.NewVTS(cfg.Processors),
			lastBarrierVTS: lrc.NewVTS(cfg.Processors),
			noticed:        make([]int32, cfg.Processors),
			ivals:          make([][]*lrc.Interval, cfg.Processors),
			dirty:          make(map[int]bool),

			diffCache: make(map[int][]*lrc.Diff),
			locks:     make(map[int]*plock),
		}
		if mode.Ctrl() {
			n.ctl = controller.New(i, cfg, mem)
		}
		pr.nodes = append(pr.nodes, n)
	}
	return pr
}

// Mode returns the overlap variant.
func (pr *Protocol) Mode() Mode { return pr.mode }

// Heap implements dsm.System.
func (pr *Protocol) Heap() *lrc.Heap { return pr.heap }

// Procs implements dsm.System.
func (pr *Protocol) Procs() int { return pr.cfg.Processors }

// InstallProc binds processor id's sim.Proc and its accounting hook.
// Must be called before the proc body issues any DSM operation.
func (pr *Protocol) InstallProc(id int, p *sim.Proc) {
	n := pr.nodes[id]
	n.proc = p
	st := n.st
	if rec, sp := pr.rec, pr.sp; rec != nil || sp != nil {
		// Observability on: mirror every charge as a span on the node's
		// timeline track and/or onto the node's current operation span.
		// The stall window is exactly [now-waited, now), so per-category
		// sums reconcile with the Breakdown by construction. Both
		// receivers are nil-safe, so one closure serves any combination.
		p.OnUnblock = func(reason string, waited sim.Time) {
			c := CategoryFor(reason)
			st.Add(c, waited)
			rec.Stall(id, reason, p.Now()-waited, p.Now())
			sp.Charge(id, c, waited, p.Now())
		}
		return
	}
	p.OnUnblock = func(reason string, waited sim.Time) {
		st.Add(CategoryFor(reason), waited)
	}
}

// NodeStats returns processor id's accounting.
func (pr *Protocol) NodeStats(id int) *stats.ProcStats { return pr.nodes[id].st }

// profile returns this node's record for a page.
func (n *pnode) profile(pg int) *stats.PageProfile {
	p, ok := n.profiles[pg]
	if !ok {
		p = &stats.PageProfile{Page: pg}
		n.profiles[pg] = p
	}
	return p
}

// PageProfiles implements stats.PageProfiler: per-page activity merged
// across all nodes' shares, sorted by page number.
func (pr *Protocol) PageProfiles() []stats.PageProfile {
	merged := make(map[int]*stats.PageProfile)
	for _, n := range pr.nodes {
		for pg, p := range n.profiles {
			m, ok := merged[pg]
			if !ok {
				m = &stats.PageProfile{Page: pg}
				merged[pg] = m
			}
			m.Faults += p.Faults
			m.WriteFaults += p.WriteFaults
			m.Invalidations += p.Invalidations
			m.DiffsApplied += p.DiffsApplied
			m.WordsApplied += p.WordsApplied
			m.Writers |= p.Writers
			m.Readers |= p.Readers
		}
	}
	pages := make([]int, 0, len(merged))
	for pg := range merged {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	out := make([]stats.PageProfile, 0, len(pages))
	for _, pg := range pages {
		out = append(out, *merged[pg])
	}
	return out
}

// Breakdown assembles the run's aggregate result.
func (pr *Protocol) Breakdown(runningTime sim.Time) *stats.Breakdown {
	b := &stats.Breakdown{RunningTime: runningTime}
	for _, n := range pr.nodes {
		if n.degraded && runningTime > n.degradedAt {
			n.st.DegradedNodeCycles = uint64(runningTime - n.degradedAt)
		}
		b.PerProc = append(b.PerProc, n.st)
	}
	return b
}

// FinishProc flushes processor id's lazily accumulated busy time at the
// end of its body so accounting matches wall time.
func (pr *Protocol) FinishProc(id int, p *sim.Proc) { pr.nodes[id].fp.Flush(p) }

func (n *pnode) page(pg int) *page {
	if pg < len(n.pages) {
		if pe := n.pages[pg]; pe != nil {
			return pe
		}
	} else {
		n.pages = append(n.pages, make([]*page, pg+1-len(n.pages))...)
	}
	pe := &page{state: stRO, applied: make([]int32, n.pr.cfg.Processors)}
	n.pages[pg] = pe
	return pe
}

// tag returns word w's supersession tag (nil if untagged).
func (pe *page) tag(w int32) lrc.VTS {
	if pe.wordTag == nil || pe.wordTag[w] == 0 {
		return nil
	}
	return pe.tagVals[pe.wordTag[w]-1]
}

// tagIndex interns a writer-knowledge vector for setTagIdx. Callers tag
// whole runs of words with the same vector (all words of one diff), so
// interning it once and storing a compact index per word keeps wordTag
// pointer-free and 6x smaller than storing the VTS slice header per word.
func (pe *page) tagIndex(v lrc.VTS) int32 {
	pe.tagVals = append(pe.tagVals, v)
	return int32(len(pe.tagVals))
}

// setTagIdx records word w's writer-knowledge vector by interned index.
func (pe *page) setTagIdx(w, idx int32, pageWords int) {
	if pe.wordTag == nil {
		pe.wordTag = make([]int32, pageWords)
	}
	pe.wordTag[w] = idx
}

// setTag records word w's writer-knowledge vector (single-word
// convenience; loops should intern once with tagIndex).
func (pe *page) setTag(w int32, v lrc.VTS, pageWords int) {
	pe.setTagIdx(w, pe.tagIndex(v), pageWords)
}

func (n *pnode) lock(l int) *plock {
	lk, ok := n.locks[l]
	if !ok {
		lk = &plock{}
		home := l % n.pr.cfg.Processors
		if n.id == home {
			lk.hasToken = true // the home node starts with the token
			lk.tail = home
		}
		n.locks[l] = lk
	}
	return lk
}

// absorbSteal makes the application pay for interrupt service that has
// backed up on its processor (charged as IPC), and bounds the lazy-busy
// drift so shared-resource timestamps stay accurate.
func (n *pnode) absorbSteal(p *sim.Proc) {
	if n.fp.Pending() > 1000 {
		n.fp.Flush(p)
	}
	if f := n.cpu.FreeAt(); f > p.Now() {
		n.fp.Flush(p)
		if f = n.cpu.FreeAt(); f > p.Now() {
			p.SleepReason(f-p.Now(), reasonSteal)
		}
	}
}

// writeThrough reports whether shared writes use the write-through path
// (required for the controller's snoop in HW-diff mode). A degraded
// node reverts to write-back: new twins are software twins, so nothing
// needs the snoop — except pages whose vector was armed before the
// failover, which access special-cases (the snoop is passive hardware
// and survives the controller core's crash).
func (n *pnode) writeThrough() bool { return n.pr.mode.HWDiff() && !n.degraded }

// access performs the protocol checks for one shared reference of `size`
// bytes (4 or 8) at addr. For writes, commit stores the value into the
// local frame and is invoked at the instant the page is confirmed
// writable — BEFORE the memory-system timing, which can yield to engine
// events: a diff created while the write's bus/buffer time elapses must
// already see the new value (on real hardware the store retires before
// any later protection downgrade).
func (n *pnode) access(p *sim.Proc, addr int64, write bool, size int, commit func()) {
	n.absorbSteal(p)
	pg := int(addr) / n.pr.cfg.PageSize
	pe := n.page(pg)
	for i := 0; pe.state == stInvalid || (write && pe.state != stRW); i++ {
		if i > 64 {
			panic(fmt.Sprintf("tmk: node %d page %d fault livelock", n.id, pg))
		}
		n.fault(p, pg, pe, write)
	}
	pe.referenced = true
	if pe.prefetchedUnused {
		pe.prefetchedUnused = false
		n.st.UsefulPrefetch++
		pe.uselessStreak = 0
		n.st.PrefetchUseCycles += uint64(p.Now() - pe.prefetchIssued)
		n.st.PrefetchUseCount++
	}
	if write {
		if n.id < 64 {
			n.profile(pg).Writers |= 1 << uint(n.id)
		}
		commit()
		if n.writeThrough() || pe.vecLive {
			// vecLive after a failover: the page's modifications are
			// tracked only by its write vector, so writes must keep
			// feeding the (still-functional, passive) snoop until the
			// vector is retired into a diff.
			n.ctl.SnoopWrite(addr)
			if size == 8 {
				n.ctl.SnoopWrite(addr + 4)
			}
			n.fp.WriteThrough(p, addr, n.st)
		} else {
			n.fp.WriteBack(p, addr, n.st)
		}
	} else {
		if n.id < 64 {
			n.profile(pg).Readers |= 1 << uint(n.id)
		}
		n.fp.Read(p, addr, n.st)
	}
}

// Read32 implements dsm.System.
func (pr *Protocol) Read32(p *sim.Proc, id int, addr int64) uint32 {
	n := pr.nodes[id]
	n.access(p, addr, false, 4, nil)
	return n.frames.ReadU32(addr)
}

// Write32 implements dsm.System.
func (pr *Protocol) Write32(p *sim.Proc, id int, addr int64, v uint32) {
	n := pr.nodes[id]
	n.access(p, addr, true, 4, func() { n.frames.WriteU32(addr, v) })
}

// Read64 implements dsm.System.
func (pr *Protocol) Read64(p *sim.Proc, id int, addr int64) uint64 {
	n := pr.nodes[id]
	n.access(p, addr, false, 8, nil)
	return n.frames.ReadU64(addr)
}

// Write64 implements dsm.System.
func (pr *Protocol) Write64(p *sim.Proc, id int, addr int64, v uint64) {
	n := pr.nodes[id]
	n.access(p, addr, true, 8, func() { n.frames.WriteU64(addr, v) })
}

// Compute implements dsm.System: private computation of the given cost.
func (pr *Protocol) Compute(p *sim.Proc, id int, cycles sim.Time) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.AddBusy(cycles)
}

// sortedDirty returns the dirty-page set in deterministic order.
func (n *pnode) sortedDirty() []int {
	out := make([]int, 0, len(n.dirty))
	for pg := range n.dirty {
		out = append(out, pg)
	}
	sort.Ints(out)
	return out
}

// sendFromProc transmits a message from processor context: the sender
// pays the network-interface setup on its CPU (Base/P) or hands the send
// to its controller (I variants). deliver runs in engine context at dst.
func (n *pnode) sendFromProc(p *sim.Proc, reason string, dst, bytes int, deliver func()) {
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	if n.ctrlOK() {
		p.SleepReason(n.pr.cfg.CommandIssueCost, reason)
		n.ctl.SubmitSend(n.eng, n.pr.net, dst, bytes, deliver,
			func() { n.softWireSend(dst, bytes, deliver) })
		return
	}
	p.SleepReason(n.pr.cfg.MessagingOverhead, reason)
	n.pr.net.SendReliable(n.id, dst, bytes, 0, deliver)
}

// sendAsync transmits from engine context (replies, forwards): on Base/P
// the CPU pays the messaging overhead (reserving the interrupt timeline);
// on I variants the controller does.
func (n *pnode) sendAsync(dst, bytes int, deliver func()) {
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	if n.ctrlOK() {
		n.ctl.SubmitSend(n.eng, n.pr.net, dst, bytes, deliver,
			func() { n.softWireSend(dst, bytes, deliver) })
		return
	}
	n.softWireSend(dst, bytes, deliver)
}

// serveCPU reserves `cost` cycles (plus interrupt entry) on the
// computation processor's interrupt timeline and runs fn when the work
// completes. Used for protocol actions that must run on the processor.
func (n *pnode) serveCPU(cost sim.Time, fn func()) {
	n.st.Interrupts++
	total := n.pr.cfg.InterruptTime + cost
	_, end := n.cpu.Reserve(n.eng, total)
	n.eng.At(end, fn)
}

// serveCPUSpan is serveCPU plus span milestones: the service window's
// start closes the operation's queueing stage, its end the remote
// stage. The milestones are eagerly stamped with the reservation's
// (future) times; spans.End sorts before partitioning, so this is safe.
func (n *pnode) serveCPUSpan(cost sim.Time, op *spans.Op, fn func()) {
	n.st.Interrupts++
	total := n.pr.cfg.InterruptTime + cost
	start, end := n.cpu.Reserve(n.eng, total)
	op.Mark(n.eng, spans.StageQueue, start)
	op.Mark(n.eng, spans.StageRemote, end)
	n.eng.At(end, fn)
}
