package experiments

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic streams write into a temporary file in path's
// directory and renames it over path only after the write (and close)
// fully succeeded. A reader — or a later run resuming from a partially
// written sweep directory — therefore never observes a truncated
// artifact: either the old content survives or the complete new content
// appears. On any error the temporary file is removed and path is left
// untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
