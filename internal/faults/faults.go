// Package faults injects deterministic message-level failures into the
// simulated mesh: per-link drop, duplication, and reorder-delay of wire
// messages, driven by a splittable counter-based PRNG.
//
// # Why
//
// The paper's evaluation assumes a perfectly reliable 16-node mesh, but
// the protocol overheads it studies live exactly where real
// network-of-workstations deployments lose, delay, and duplicate
// packets. This package lets every scenario the simulator can express
// also be run over an unreliable network, so the retry/ack machinery of
// the DSM protocols (see network.SendReliable) can be exercised and its
// degradation measured.
//
// # Determinism
//
// Every injection decision is a pure function of
//
//	(plan seed, source node, destination node, per-link message index)
//
// hashed through a SplitMix64-style mixer (see Derive). The per-link
// message index counts physical transmissions on the ordered pair
// (src, dst), so the fate of "the k-th message from 3 to 7" does not
// depend on how transmissions on other links interleave with it — the
// injections are schedule-independent and bit-reproducible. Two runs
// with the same plan make identical decisions; the engine's event
// fingerprint (sim.Engine.Fingerprint) stays repeat-run and
// GOMAXPROCS invariant under any fixed plan.
//
// # Usage
//
//	plan := &faults.Plan{Seed: 1, Default: faults.Link{Drop: 0.02}}
//	net.InstallFaults(faults.NewModel(plan, cfg.Processors))
//
// or, at the facade level, set core.Spec.Faults and let core.Run wire
// it up. A nil plan — or one whose rates are all zero — is pass-through
// by construction: Network refuses to install a disabled model, so the
// fault-free event schedule is bit-identical to a build without this
// package (the golden-fingerprint gates prove it).
package faults

import (
	"fmt"
	"sort"

	"dsm96/internal/sim"
)

// Link holds the failure rates of one unidirectional node pair
// (probabilities in [0, 1]) and the bounds of the injected delay.
type Link struct {
	// Drop is the probability a message is discarded at the destination
	// NIC (it still occupies the links it crossed).
	Drop float64
	// Dup is the probability the destination NIC delivers the message a
	// second time, DupDelay cycles after the first copy.
	Dup float64
	// Delay is the probability the message is held in the destination
	// NIC for an extra DelayMin..DelayMax cycles before delivery —
	// messages behind it on other paths can overtake it (reordering).
	Delay float64
	// DelayMin and DelayMax bound the injected extra delay in cycles.
	// Zero values default to 200..2000 cycles.
	DelayMin, DelayMax sim.Time
}

// active reports whether any failure can occur on this link.
func (l Link) active() bool { return l.Drop > 0 || l.Dup > 0 || l.Delay > 0 }

// validate reports the first inconsistency in the link's rates. where
// names the link ("default link", "link 3->7") so that multi-link plans
// point straight at the offending entry and field.
func (l Link) validate(where string) error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"Drop", l.Drop}, {"Dup", l.Dup}, {"Delay", l.Delay}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s: %s rate %v outside [0,1]", where, r.name, r.v)
		}
	}
	if l.DelayMin < 0 || l.DelayMax < 0 || (l.DelayMax > 0 && l.DelayMax < l.DelayMin) {
		return fmt.Errorf("faults: %s: DelayMin/DelayMax bounds [%d,%d] invalid",
			where, l.DelayMin, l.DelayMax)
	}
	return nil
}

// Pair names a unidirectional link by its endpoints.
type Pair struct {
	Src, Dst int
}

// Plan describes one unreliable-machine scenario: a seed, a default
// fault model applied to every link, optional per-link overrides, and
// optional per-node controller failure schedules.
type Plan struct {
	// Seed keys every injection decision. Two plans that differ only in
	// Seed fail different messages.
	Seed uint64
	// Default applies to every ordered node pair without an override.
	Default Link
	// PerLink overrides the default for specific ordered pairs.
	PerLink map[Pair]Link
	// Ctrl schedules protocol-controller failures per node (crash at a
	// cycle, hang for a window). Link faults and controller faults are
	// independent axes: either may be active without the other.
	Ctrl map[int]CtrlFault
}

// LinksEnabled reports whether the plan can inject any wire-level
// fault. A plan without active links must leave the transport exactly
// as it is with no plan: NewModel gates on this so that zero-rate (or
// controller-only) plans stay bit-identical on the wire.
func (p *Plan) LinksEnabled() bool {
	if p == nil {
		return false
	}
	if p.Default.active() {
		return true
	}
	for _, l := range p.PerLink {
		if l.active() {
			return true
		}
	}
	return false
}

// CtrlEnabled reports whether any node has an active controller
// failure scheduled.
func (p *Plan) CtrlEnabled() bool {
	if p == nil {
		return false
	}
	for _, c := range p.Ctrl {
		if c.Active() {
			return true
		}
	}
	return false
}

// Enabled reports whether the plan can inject any fault at all — wire
// or controller.
func (p *Plan) Enabled() bool { return p.LinksEnabled() || p.CtrlEnabled() }

// Validate reports the first inconsistency in the plan. Errors name
// the offending entry ("default link", "link 3->7", "ctrl node 5") and
// field; entries are checked in sorted order so the first error is
// deterministic regardless of map iteration.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if err := p.Default.validate("default link"); err != nil {
		return err
	}
	pairs := make([]Pair, 0, len(p.PerLink))
	for pr := range p.PerLink {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	for _, pr := range pairs {
		if err := p.PerLink[pr].validate(fmt.Sprintf("link %d->%d", pr.Src, pr.Dst)); err != nil {
			return err
		}
		if pr.Src < 0 || pr.Dst < 0 {
			return fmt.Errorf("faults: link %d->%d: negative node id", pr.Src, pr.Dst)
		}
	}
	nodes := make([]int, 0, len(p.Ctrl))
	for n := range p.Ctrl {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if err := p.Ctrl[n].validate(fmt.Sprintf("ctrl node %d", n)); err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("faults: ctrl node %d: negative node id", n)
		}
	}
	return nil
}

// Outcome is the fate of one physical message transmission.
type Outcome struct {
	// Drop: the message is discarded at the destination; deliver nothing.
	Drop bool
	// Duplicate: deliver a second copy DupDelay cycles after the first.
	Duplicate bool
	DupDelay  sim.Time
	// ExtraDelay is added to the delivery time (0 = on time).
	ExtraDelay sim.Time
}

// defaultDelayMin and defaultDelayMax bound injected delays when the
// plan leaves them zero: long enough to reorder messages behind
// multi-hop transfers, short enough not to trip retry timeouts.
const (
	defaultDelayMin = 200
	defaultDelayMax = 2000
)

// Model is a Plan bound to a machine size, with the per-link message
// counters that key the PRNG. It is single-threaded, like everything
// else that runs in engine context.
type Model struct {
	plan  *Plan
	nodes int
	// seq[src*nodes+dst] counts physical transmissions on the ordered
	// pair, including retransmissions and acks: each consumes one PRNG
	// index so its fate is independent and reproducible.
	seq []uint64

	// Counters (what the model injected; the network layer counts what
	// the transport did about it).
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
}

// NewModel binds a plan to a machine of n nodes. Returns nil for a
// plan with no active links so callers can treat "no wire faults" and
// "zero wire faults" identically (controller-only plans do not arm the
// transport interposer). Panics on an invalid plan: a malformed
// scenario is a configuration bug, not a runtime condition.
func NewModel(p *Plan, n int) *Model {
	if !p.LinksEnabled() {
		return nil
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{plan: p, nodes: n, seq: make([]uint64, n*n)}
}

// link returns the fault rates governing the ordered pair.
func (m *Model) link(src, dst int) Link {
	if l, ok := m.plan.PerLink[Pair{src, dst}]; ok {
		return l
	}
	return m.plan.Default
}

// Decide consumes the next message index on (src, dst) and returns the
// transmission's fate. Call exactly once per physical transmission.
func (m *Model) Decide(src, dst int) Outcome {
	i := src*m.nodes + dst
	seq := m.seq[i]
	m.seq[i]++
	return m.DecideAt(src, dst, seq)
}

// DecideAt computes the fate of message number msgSeq on (src, dst)
// without consuming a counter — the pure function behind Decide,
// exposed for tests and for reasoning about scenarios ("what happens
// to the 7th message from 3 to 0 under seed 42?").
func (m *Model) DecideAt(src, dst int, msgSeq uint64) Outcome {
	l := m.link(src, dst)
	if !l.active() {
		return Outcome{}
	}
	s := Derive(m.plan.Seed, src, dst, msgSeq)
	var o Outcome
	if s.Float() < l.Drop {
		o.Drop = true
		m.Dropped++
		return o
	}
	if s.Float() < l.Dup {
		o.Duplicate = true
		o.DupDelay = delayIn(&s, l)
		m.Duplicated++
	}
	if s.Float() < l.Delay {
		o.ExtraDelay = delayIn(&s, l)
		m.Delayed++
	}
	return o
}

// delayIn draws a delay from the link's [DelayMin, DelayMax] range.
func delayIn(s *Stream, l Link) sim.Time {
	lo, hi := l.DelayMin, l.DelayMax
	if hi == 0 {
		lo, hi = defaultDelayMin, defaultDelayMax
	}
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(s.Next()%uint64(hi-lo+1))
}
