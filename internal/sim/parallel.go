package sim

import (
	"fmt"
	"math"
	"time"
)

// Parallel execution: the engine can be sharded across OS threads with
// Parallelize. Each shard owns a contiguous block of nodes and advances
// its own event queue independently up to a conservative horizon — the
// earliest pending event anywhere plus the minimum cross-shard delivery
// latency — then a merge barrier replays the fired records in global
// (time, seq) order on the root engine, assigning the definitive
// sequence numbers. The replayed schedule is bit-identical to the
// sequential engine's: same fired (time, seq) stream, same Fingerprint,
// same EventsRun.
//
// Why this works:
//
//   - The fired stream of a sequential run is strictly sorted by
//     (time, seq): when an event pops, any not-yet-fired event at the
//     same time is either already queued with a larger seq or will be
//     scheduled later with a larger seq.
//   - Within one shard, the window loop pops in exactly the order the
//     sequential engine would have fired those events relative to each
//     other, because cross-shard work cannot land inside the window
//     (every cross-shard message needs at least `lookahead` cycles of
//     wire time, and the horizon is minNext + lookahead).
//   - Scheduling calls made during a window get provisional keys that
//     preserve local order; the replay walks the merged stream and
//     re-executes each event's *scheduling side effects* (sequence
//     allocation and deferred cross-shard work) in global order, so
//     every event ends up with the sequence number the sequential
//     engine would have given it.
//
// Shard engines never elide parks (canElide checks e.par): elision is
// an execution shortcut that is only sound when the eliding engine can
// see the global queue. The sequential engine's elision is itself
// fingerprint-transparent — it consumes the same (time, seq) slot the
// queued event would have — so a parallel run in which every wake is a
// real event still produces the identical fired stream.

// Parallel phases. The coordinator goroutine writes phase strictly
// before handing control to workers (start channel send) or after
// taking it back (done channel receive), so workers always observe a
// consistent value without atomics.
const (
	phaseStaging = iota // single-threaded: setup, or between windows
	phaseWindow         // workers running their shards concurrently
	phaseReplay         // coordinator replaying the merged record stream
)

// provBase marks provisional sequence keys handed out during a window.
// It exceeds any real sequence number (the root engine would need 2^63
// events), so provisional events sort after same-time events that
// already hold final numbers — exactly where the sequential engine
// would have placed them.
const provBase = uint64(1) << 63

// action is one scheduling side effect logged during a window, in call
// order. Exactly one of the fields is set: key != 0 records an At call
// (replay allocates the final sequence number), fn != nil records a
// Deferred call (replay executes it in root context).
type action struct {
	key uint64
	fn  func()
}

// record is one event fired by a shard during a window, with the
// scheduling side effects its callback produced.
type record struct {
	at   Time
	key  uint64 // heap key at pop time: final, or provisional (>= provBase)
	acts []action
}

// shardState is the per-shard bookkeeping attached to a shard engine.
type shardState struct {
	idx      int
	localSeq uint64    // provisional-key allocator, reset each window
	log      []*record // fired records, in shard execution order
	cur      *record   // record of the event currently executing
	// renum maps this shard's provisional keys to the final sequence
	// numbers replay assigned. Per shard: two shards reuse the same
	// provisional key space every window.
	renum map[uint64]uint64
	start chan Time     // coordinator -> worker: run a window to this horizon
	done  chan struct{} // worker -> coordinator: window complete

	// Self-profile accounting (see profile.go). eventsFired is
	// deterministic; busyNS and waitNS are wall-clock. All three are
	// written only by the shard's worker goroutine inside a window, so
	// the coordinator (and post-run readers) see them race-free through
	// the done-channel synchronization.
	eventsFired uint64
	busyNS      int64
	waitNS      int64
}

// parRuntime coordinates a parallel run. It hangs off the root engine
// and every shard engine.
type parRuntime struct {
	root      *Engine
	shards    []*Engine
	shardOf   []int // node -> shard index
	lookahead Time
	phase     int
	horizon   Time  // exclusive upper bound of the current window
	cursor    []int // replay merge position per shard

	// Self-profile accounting (see profile.go): merge-round counters
	// and per-window histograms (deterministic), plus the coordinator's
	// merge-barrier wall time (host-dependent).
	windows         uint64
	replayedActions uint64
	deferredCalls   uint64
	winEvents       hist
	winAdvance      hist
	winActions      hist
	prevMinNext     Time
	mergeWallNS     int64
}

// Parallelize shards the engine across `workers` OS threads, with nodes
// partitioned into contiguous blocks (node i belongs to shard
// i*workers/nodes — row bands of the simulated mesh, so neighboring
// nodes share a shard and most traffic stays shard-local). lookahead is
// the minimum number of cycles any cross-node message spends in flight;
// it bounds how far a shard may safely run ahead of the others
// (network.MinDeliveryLookahead derives it from the link parameters).
//
// workers is clamped to [1, nodes]; 1 worker leaves the engine in its
// sequential mode. Parallelize must be called before any event or
// process is scheduled, and at most once.
func (e *Engine) Parallelize(workers, nodes int, lookahead Time) {
	if e.par != nil || e.sh != nil {
		panic("sim: Parallelize called twice, or on a shard engine")
	}
	if nodes < 1 {
		nodes = 1
	}
	if workers > nodes {
		workers = nodes
	}
	if workers <= 1 {
		return
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: Parallelize needs a positive lookahead, got %d", lookahead))
	}
	if e.seq != 0 || len(e.events) > 0 || len(e.procs) > 0 {
		panic("sim: Parallelize on an engine that already has scheduled work")
	}
	par := &parRuntime{
		root:      e,
		lookahead: lookahead,
		shardOf:   make([]int, nodes),
		cursor:    make([]int, workers),
	}
	for i := range par.shardOf {
		par.shardOf[i] = i * workers / nodes
	}
	for w := 0; w < workers; w++ {
		se := NewEngine()
		se.par = par
		se.sh = &shardState{
			idx:   w,
			renum: make(map[uint64]uint64),
			start: make(chan Time),
			done:  make(chan struct{}),
		}
		par.shards = append(par.shards, se)
	}
	e.par = par
}

// Workers reports how many shards the engine runs (1 when sequential).
func (e *Engine) Workers() int {
	if e.par == nil {
		return 1
	}
	return len(e.par.shards)
}

// View returns the engine that owns node's events: the shard engine
// under Parallelize, the engine itself otherwise. All scheduling and
// process operations for a node must go through its view; the view of a
// sequential engine is the engine, so callers need no mode check.
func (e *Engine) View(node int) *Engine {
	if e.par == nil {
		return e
	}
	return e.par.shards[e.par.shardOf[node]]
}

// Deferred runs fn now — unless the caller is a shard executing a
// window, in which case fn is logged and runs during the merge barrier
// in root context, serialized in global event order. It is the hook for
// work that must observe global state (cross-shard scheduling, shared
// counters, sequence-sensitive allocation): on a sequential engine it
// is a plain call, so instrumented code costs nothing extra there.
func (e *Engine) Deferred(fn func()) {
	if e.sh != nil && e.par.phase == phaseWindow {
		e.sh.cur.acts = append(e.sh.cur.acts, action{fn: fn})
		return
	}
	fn()
}

// at is Engine.At's parallel path: e is always a shard engine (the root
// of a parallel run schedules nothing itself).
func (par *parRuntime) at(e *Engine, t Time, fn func()) {
	sh := e.sh
	if sh == nil {
		panic("sim: scheduling on the root of a parallel engine; schedule through View(node)")
	}
	switch par.phase {
	case phaseWindow:
		// Concurrent: touch only shard-local state. The final sequence
		// number is allocated when replay reaches the logged action.
		sh.localSeq++
		key := provBase + sh.localSeq
		sh.cur.acts = append(sh.cur.acts, action{key: key})
		e.push(t, key, fn)
	case phaseReplay:
		if t < par.horizon {
			panic(fmt.Sprintf(
				"sim: lookahead violation: replay scheduled an event at %d inside the window ending at %d (lookahead %d overestimates the minimum cross-shard latency)",
				t, par.horizon, par.lookahead))
		}
		par.root.seq++
		e.push(t, par.root.seq, fn)
	default: // staging: single-threaded, final numbering directly
		par.root.seq++
		e.push(t, par.root.seq, fn)
	}
}

// run is Engine.Run for a parallelized engine: window / barrier /
// replay rounds until every shard's queue drains or Stop is called.
func (par *parRuntime) run() error {
	root := par.root
	root.stopped = false
	root.limit = math.MaxInt64
	runStart := time.Now()
	defer func() { root.runWallNS += time.Since(runStart).Nanoseconds() }()
	// Workers live for one Run call: fresh channels each time so Run can
	// be called again after a drain or a Stop.
	for _, se := range par.shards {
		se.sh.start = make(chan Time)
		se.sh.done = make(chan struct{})
		go shardWorker(se)
	}
	defer func() {
		for _, se := range par.shards {
			close(se.sh.start)
		}
	}()
	watched := root.watchdog > 0
	for !root.stopped {
		minNext := Time(math.MaxInt64)
		for _, se := range par.shards {
			if len(se.events) > 0 && se.events[0].at < minNext {
				minNext = se.events[0].at
			}
		}
		if minNext == math.MaxInt64 {
			break // drained
		}
		par.horizon = minNext + par.lookahead
		par.phase = phaseWindow
		for _, se := range par.shards {
			se.sh.start <- par.horizon
		}
		for _, se := range par.shards {
			<-se.sh.done
		}
		par.phase = phaseReplay
		mergeStart := time.Now()
		evs, acts := par.replay()
		par.phase = phaseStaging
		par.rekey()
		par.mergeWallNS += time.Since(mergeStart).Nanoseconds()
		par.windows++
		par.winEvents.add(evs)
		par.winActions.add(acts)
		if par.windows > 1 {
			par.winAdvance.add(uint64(minNext - par.prevMinNext))
		}
		par.prevMinNext = minNext
		if watched {
			// Progress is stamped on the shard a process belongs to;
			// merge the stamps before the (coarsened, once-per-window)
			// liveness check.
			last := root.lastProgressAt
			for _, se := range par.shards {
				if se.lastProgressAt > last {
					last = se.lastProgressAt
				}
			}
			root.lastProgressAt = last
			if serr := root.checkStall(); serr != nil {
				return serr
			}
		}
		for _, se := range par.shards {
			if se.stopped {
				// Stop was called from shard context; it takes effect
				// at the window boundary (windows are atomic).
				root.stopped = true
				se.stopped = false
			}
		}
	}
	if root.stopped {
		return nil
	}
	var blocked []BlockedProc
	for _, p := range root.procs {
		if !p.done {
			blocked = append(blocked, BlockedProc{
				ID: p.ID, Name: p.Name, Reason: p.blockReason, Since: p.blockedAt,
			})
		}
	}
	if len(blocked) > 0 {
		return &StallError{Deadlock: true, Report: StallReport{
			At: root.now, LastProgress: root.lastProgressAt, Blocked: blocked,
		}}
	}
	return nil
}

// shardWorker runs one shard's windows. Each window pops and executes
// every event strictly before the horizon; the callbacks (and any
// process goroutines they resume) run with this shard's engine as their
// view, touching only shard-owned simulation state.
func shardWorker(e *Engine) {
	sh := e.sh
	var lastDone time.Time
	for horizon := range sh.start {
		windowStart := time.Now()
		if !lastDone.IsZero() {
			sh.waitNS += windowStart.Sub(lastDone).Nanoseconds()
		}
		for len(e.events) > 0 && e.events[0].at < horizon {
			ev := e.pop()
			e.now = ev.at
			rec := &record{at: ev.at, key: ev.seq}
			sh.cur = rec
			ev.fn()
			sh.cur = nil
			sh.log = append(sh.log, rec)
			sh.eventsFired++
		}
		lastDone = time.Now()
		sh.busyNS += lastDone.Sub(windowStart).Nanoseconds()
		sh.done <- struct{}{}
	}
}

// finalSeq resolves a record's heap key to its definitive sequence
// number. A provisional key's renum entry always exists by the time the
// record is a merge head: the At call that created the event was logged
// in an earlier record of the same shard stream, already replayed.
func (par *parRuntime) finalSeq(sh *shardState, rec *record) uint64 {
	if rec.key < provBase {
		return rec.key
	}
	fs, ok := sh.renum[rec.key]
	if !ok {
		panic(fmt.Sprintf("sim: replay reached provisional key %d before its At was replayed", rec.key))
	}
	return fs
}

// replay merges the shards' fired-record streams by (time, final seq) —
// the exact order the sequential engine fired these events — folding
// each into the root fingerprint and re-executing the logged scheduling
// side effects so sequence allocation interleaves as it did (or would
// have) sequentially. Returns the window's event and action counts for
// the self-profile.
func (par *parRuntime) replay() (evs, acts uint64) {
	root := par.root
	for i := range par.cursor {
		par.cursor[i] = 0
	}
	for {
		best := -1
		var bestAt Time
		var bestSeq uint64
		for w, se := range par.shards {
			sh := se.sh
			if par.cursor[w] >= len(sh.log) {
				continue
			}
			rec := sh.log[par.cursor[w]]
			fs := par.finalSeq(sh, rec)
			if best == -1 || rec.at < bestAt || (rec.at == bestAt && fs < bestSeq) {
				best, bestAt, bestSeq = w, rec.at, fs
			}
		}
		if best == -1 {
			par.replayedActions += acts
			return evs, acts
		}
		sh := par.shards[best].sh
		rec := sh.log[par.cursor[best]]
		par.cursor[best]++
		root.now = rec.at
		root.fired(rec.at, bestSeq)
		evs++
		acts += uint64(len(rec.acts))
		for _, a := range rec.acts {
			if a.fn != nil {
				a.fn()
				par.deferredCalls++
				continue
			}
			root.seq++
			sh.renum[a.key] = root.seq
		}
	}
}

// rekey rewrites the provisional keys still pending in each shard's
// heap to their final sequence numbers and restores the heap invariant
// (renumbered events can sort ahead of events replay pushed at equal
// times), then resets the per-window state.
func (par *parRuntime) rekey() {
	for _, se := range par.shards {
		sh := se.sh
		changed := false
		for i := range se.events {
			if se.events[i].seq >= provBase {
				fs, ok := sh.renum[se.events[i].seq]
				if !ok {
					panic(fmt.Sprintf("sim: pending event holds unlogged provisional key %d", se.events[i].seq))
				}
				se.events[i].seq = fs
				changed = true
			}
		}
		if changed {
			heapify(se.events)
		}
		sh.log = sh.log[:0]
		for k := range sh.renum {
			delete(sh.renum, k)
		}
		sh.localSeq = 0
	}
}

// heapify restores the d-ary heap invariant over the whole slice in
// O(n), bottom up.
func heapify(h []event) {
	for i := (len(h) - 2) / heapArity; i >= 0; i-- {
		siftDown(h, i)
	}
}
