package apps

import (
	"math"

	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// Barnes is the SPLASH-2 Barnes-Hut hierarchical N-body simulation. As in
// the paper (which had to modify Barnes to run correctly on a software
// DSM, eliminating its busy-wait synchronization), the octree is built by
// one processor between barriers; the force phase then traverses the
// shared tree read-only in parallel, and owners integrate their bodies.
// The octree pages are the classic irregular-sharing stress test.
type Barnes struct {
	Bodies int
	Steps  int
	Theta  float64
	// ComputePerVisit models per-tree-node instruction cost.
	ComputePerVisit int64

	posBase, velBase, accBase int64 // 3 f64 per body
	massBase                  int64 // f64 per body
	// Tree: nodes with centre-of-mass xyz, mass, half-size, 8 children.
	nodeBase  int64
	nodeCount int64 // i32
	outAddr   int64

	maxNodes int
	result   float64
}

const (
	bnCOM   = 0  // 3 f64: centre of mass
	bnMass  = 24 // f64
	bnHalf  = 32 // f64: half of the cell's side
	bnBody  = 40 // i32: body index for leaves, -1 for cells
	bnKids  = 44 // 8 i32 child indices (-1 empty)
	bnBytes = 80
)

// NewBarnes builds an instance.
func NewBarnes(bodies, steps int) *Barnes {
	return &Barnes{Bodies: bodies, Steps: steps, Theta: 0.6, ComputePerVisit: 160}
}

// DefaultBarnes is the scaled default (paper: 4K bodies, 4 steps).
func DefaultBarnes() *Barnes { return NewBarnes(256, 2) }

// PaperBarnes reproduces the published input.
func PaperBarnes() *Barnes { return NewBarnes(4096, 4) }

// Name implements dsm.App.
func (b *Barnes) Name() string { return "barnes" }

// Setup implements dsm.App.
func (b *Barnes) Setup(h *lrc.Heap) {
	b.result = 0
	n := b.Bodies
	b.maxNodes = 4 * n
	b.posBase = h.AllocPages((24*n + 4095) / 4096)
	b.velBase = h.AllocPages((24*n + 4095) / 4096)
	b.accBase = h.AllocPages((24*n + 4095) / 4096)
	b.massBase = h.AllocPages((8*n + 4095) / 4096)
	b.nodeBase = h.AllocPages((bnBytes*b.maxNodes + 4095) / 4096)
	b.nodeCount = h.AllocPages(1)
	b.outAddr = b.nodeCount + 64
}

func (b *Barnes) node(i int) int64 { return b.nodeBase + int64(bnBytes*i) }

// Body implements dsm.App.
func (b *Barnes) Body(env *dsm.Env) {
	n := b.Bodies
	lo, hi := blockRange(n, env.NProcs(), env.ID)

	if env.ID == 0 {
		r := newRNG(999)
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				env.WF(vec(b.posBase, i, d), r.f64()*100)
				env.WF(vec(b.velBase, i, d), (r.f64()-0.5)*0.01)
			}
			env.WF(b.massBase+int64(8*i), 1.0+r.f64())
		}
	}
	env.Barrier(0)

	for step := 0; step < b.Steps; step++ {
		if env.ID == 0 {
			b.buildTree(env)
		}
		env.Barrier(10 + 3*step)

		for i := lo; i < hi; i++ {
			b.force(env, i)
		}
		env.Barrier(11 + 3*step)

		const dt = 0.01
		for i := lo; i < hi; i++ {
			env.Compute(30)
			for d := 0; d < 3; d++ {
				v := env.RF(vec(b.velBase, i, d)) + dt*env.RF(vec(b.accBase, i, d))
				env.WF(vec(b.velBase, i, d), v)
				env.WF(vec(b.posBase, i, d), env.RF(vec(b.posBase, i, d))+dt*v)
			}
		}
		env.Barrier(12 + 3*step)
	}

	if env.ID == 0 {
		// Observable: total kinetic energy + centre of mass checksum.
		ke, cm := 0.0, 0.0
		for i := 0; i < n; i++ {
			env.Compute(20)
			m := env.RF(b.massBase + int64(8*i))
			for d := 0; d < 3; d++ {
				v := env.RF(vec(b.velBase, i, d))
				ke += 0.5 * m * v * v
				cm += m * env.RF(vec(b.posBase, i, d))
			}
		}
		env.WF(b.outAddr, ke+cm*1e-6)
		b.result = env.RF(b.outAddr)
	}
	env.Barrier(1)
}

// buildTree constructs the octree sequentially on processor 0.
func (b *Barnes) buildTree(env *dsm.Env) {
	n := b.Bodies
	// Bounding cube.
	lo, hi := math.Inf(1), math.Inf(-1)
	pos := make([][3]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			v := env.RF(vec(b.posBase, i, d))
			pos[i][d] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	half := (hi - lo) / 2
	var cx = [3]float64{lo + half, lo + half, lo + half}

	count := 0
	newNode := func(c [3]float64, h float64) int {
		idx := count
		count++
		if count > b.maxNodes {
			panic("barnes: tree overflow")
		}
		a := b.node(idx)
		for d := 0; d < 3; d++ {
			env.WF(a+int64(8*d), 0)
		}
		env.WF(a+bnMass, 0)
		env.WF(a+bnHalf, h)
		env.WI(a+bnBody, -1)
		for k := 0; k < 8; k++ {
			env.WI(a+bnKids+int64(4*k), -1)
		}
		// Remember the geometric centre privately via the COM slots
		// until the mass pass overwrites them.
		for d := 0; d < 3; d++ {
			env.WF(a+int64(8*d), c[d])
		}
		return idx
	}
	root := newNode(cx, half+1e-9)

	centre := make([][3]float64, 0, b.maxNodes)
	centre = append(centre, cx)

	var insert func(node, body int)
	insert = func(node, body int) {
		env.Compute(b.ComputePerVisit)
		a := b.node(node)
		existing := env.RI(a + bnBody)
		h := env.RF(a + bnHalf)
		c := centre[node]
		oct := func(p [3]float64) int {
			o := 0
			for d := 0; d < 3; d++ {
				if p[d] >= c[d] {
					o |= 1 << d
				}
			}
			return o
		}
		if existing == -1 && env.RI(a+bnKids) == -1 && isLeafEmpty(env, a) {
			env.WI(a+bnBody, body)
			return
		}
		if existing >= 0 {
			if h < 1e-6 {
				// Bodies virtually coincident: splitting would recurse
				// forever. Leave the resident body; the newcomer's mass is
				// negligible at this scale and the choice is deterministic
				// (identical in sequential and parallel runs).
				return
			}
			// Split: push the resident body down.
			env.WI(a+bnBody, -1)
			b.pushChild(env, a, oct(pos[existing]), existing, c, h, &count, &centre, insert, pos)
		}
		b.pushChild(env, a, oct(pos[body]), body, c, h, &count, &centre, insert, pos)
	}
	for i := 0; i < n; i++ {
		insert(root, i)
	}

	// Bottom-up mass/centre-of-mass (post-order over the array works
	// because children always have larger indices).
	for i := count - 1; i >= 0; i-- {
		env.Compute(b.ComputePerVisit)
		a := b.node(i)
		if body := env.RI(a + bnBody); body >= 0 {
			m := env.RF(b.massBase + int64(8*body))
			env.WF(a+bnMass, m)
			for d := 0; d < 3; d++ {
				env.WF(a+int64(8*d), pos[body][d])
			}
			continue
		}
		var m float64
		var com [3]float64
		for k := 0; k < 8; k++ {
			ch := env.RI(a + bnKids + int64(4*k))
			if ch < 0 {
				continue
			}
			ca := b.node(ch)
			cm := env.RF(ca + bnMass)
			m += cm
			for d := 0; d < 3; d++ {
				com[d] += cm * env.RF(ca+int64(8*d))
			}
		}
		if m > 0 {
			for d := 0; d < 3; d++ {
				env.WF(a+int64(8*d), com[d]/m)
			}
		}
		env.WF(a+bnMass, m)
	}
	env.WI(b.nodeCount, count)
}

func isLeafEmpty(env *dsm.Env, a int64) bool {
	for k := 0; k < 8; k++ {
		if env.RI(a+bnKids+int64(4*k)) >= 0 {
			return false
		}
	}
	return true
}

func (b *Barnes) pushChild(env *dsm.Env, a int64, oct, body int, c [3]float64, h float64,
	count *int, centres *[][3]float64, insert func(int, int), pos [][3]float64) {
	ch := env.RI(a + bnKids + int64(4*oct))
	if ch < 0 {
		ch = *count
		*count++
		if *count > b.maxNodes {
			panic("barnes: tree overflow")
		}
		var cc [3]float64
		for d := 0; d < 3; d++ {
			if oct&(1<<d) != 0 {
				cc[d] = c[d] + h/2
			} else {
				cc[d] = c[d] - h/2
			}
		}
		*centres = append(*centres, cc)
		ca := b.node(ch)
		for d := 0; d < 3; d++ {
			env.WF(ca+int64(8*d), 0)
		}
		env.WF(ca+bnMass, 0)
		env.WF(ca+bnHalf, h/2)
		env.WI(ca+bnBody, body)
		for k := 0; k < 8; k++ {
			env.WI(ca+bnKids+int64(4*k), -1)
		}
		env.WI(a+bnKids+int64(4*oct), ch)
		return
	}
	insert(ch, body)
}

// force computes body i's acceleration by traversing the shared tree.
func (b *Barnes) force(env *dsm.Env, i int) {
	var pi [3]float64
	for d := 0; d < 3; d++ {
		pi[d] = env.RF(vec(b.posBase, i, d))
	}
	var acc [3]float64
	var walk func(node int)
	walk = func(node int) {
		env.Compute(b.ComputePerVisit)
		a := b.node(node)
		m := env.RF(a + bnMass)
		if m == 0 {
			return
		}
		var dr [3]float64
		r2 := 1.0 // Plummer softening: bounds the force at close range
		for d := 0; d < 3; d++ {
			dr[d] = env.RF(a+int64(8*d)) - pi[d]
			r2 += dr[d] * dr[d]
		}
		h := env.RF(a + bnHalf)
		body := env.RI(a + bnBody)
		if body == i {
			return
		}
		if body >= 0 || (2*h)*(2*h) < b.Theta*b.Theta*r2 {
			inv := m / (r2 * math.Sqrt(r2))
			for d := 0; d < 3; d++ {
				acc[d] += dr[d] * inv
			}
			return
		}
		for k := 0; k < 8; k++ {
			if ch := env.RI(a + bnKids + int64(4*k)); ch >= 0 {
				walk(ch)
			}
		}
	}
	walk(0)
	for d := 0; d < 3; d++ {
		env.WF(vec(b.accBase, i, d), acc[d])
	}
}

// Result implements dsm.App.
func (b *Barnes) Result() float64 { return b.result }
