package network

import (
	"testing"
	"testing/quick"

	"dsm96/internal/params"
	"dsm96/internal/sim"
)

func newNet(n int) (*Network, *sim.Engine, *params.Config) {
	cfg := params.Default()
	eng := sim.NewEngine()
	return New(&cfg, eng, n), eng, &cfg
}

func TestMeshDims(t *testing.T) {
	nw, _, _ := newNet(16)
	x, y := nw.Dims()
	if x != 4 || y != 4 {
		t.Fatalf("16-node mesh = %dx%d, want 4x4", x, y)
	}
}

func TestHops(t *testing.T) {
	nw, _, _ := newNet(16)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one hop down
		{0, 15, 6}, // 3 in x + 3 in y
		{5, 10, 2},
		{15, 0, 6},
	}
	for _, c := range cases {
		if got := nw.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestRouteIsXY(t *testing.T) {
	nw, _, _ := newNet(16)
	path := nw.route(0, 15)
	if len(path) != 6 {
		t.Fatalf("route length %d, want 6", len(path))
	}
	// X-first: the first three links head +x from 0,1,2.
	for i := 0; i < 3; i++ {
		if path[i].from != i || path[i].dir != 0 {
			t.Fatalf("hop %d = %+v, want +x from %d", i, path[i], i)
		}
	}
	// Then +y from 3, 7, 11.
	wantFrom := []int{3, 7, 11}
	for i := 0; i < 3; i++ {
		if path[3+i].from != wantFrom[i] || path[3+i].dir != 2 {
			t.Fatalf("hop %d = %+v, want +y from %d", 3+i, path[3+i], wantFrom[i])
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	nw, eng, cfg := newNet(16)
	var at sim.Time = -1
	eng.At(0, func() {
		nw.Send(0, 1, 64, cfg.MessagingOverhead, func() { at = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := nw.LatencyLowerBound(0, 1, 64, cfg.MessagingOverhead)
	if at != want {
		t.Fatalf("delivery at %d, want %d", at, want)
	}
	// overhead 200 + 2 hops' worth of (switch+wire) for 1 link (entry+exit)
	// + 64 transfer = 200 + 12 + 64 = 276.
	if want != 276 {
		t.Fatalf("lower bound = %d, want 276", want)
	}
}

func TestLoopbackMessage(t *testing.T) {
	nw, eng, _ := newNet(16)
	var at sim.Time = -1
	eng.At(5, func() {
		nw.Send(3, 3, 4096, 200, func() { at = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 205 {
		t.Fatalf("loopback delivered at %d, want 205", at)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	nw, eng, cfg := newNet(16)
	var first, second sim.Time
	eng.At(0, func() {
		nw.Send(0, 1, 1000, cfg.MessagingOverhead, func() { first = eng.Now() })
		nw.Send(0, 1, 1000, cfg.MessagingOverhead, func() { second = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if second-first < cfg.NetTransferTime(1000) {
		t.Fatalf("messages not serialized on shared link: %d then %d", first, second)
	}
	if nw.LinkWaits == 0 {
		t.Fatal("no link queueing recorded")
	}
}

func TestDisjointPathsParallel(t *testing.T) {
	nw, eng, cfg := newNet(16)
	var a, b sim.Time
	eng.At(0, func() {
		nw.Send(0, 1, 1000, cfg.MessagingOverhead, func() { a = eng.Now() })
		nw.Send(4, 5, 1000, cfg.MessagingOverhead, func() { b = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("disjoint transfers should finish together: %d vs %d", a, b)
	}
}

func TestBandwidthScalesLatency(t *testing.T) {
	slow := params.Default()
	slow.SetNetworkBandwidthMBps(20)
	fast := params.Default()
	fast.SetNetworkBandwidthMBps(200)
	engS, engF := sim.NewEngine(), sim.NewEngine()
	nwS, nwF := New(&slow, engS, 16), New(&fast, engF, 16)
	lbS := nwS.LatencyLowerBound(0, 15, 4096, 200)
	lbF := nwF.LatencyLowerBound(0, 15, 4096, 200)
	if lbS <= lbF {
		t.Fatalf("slow network not slower: %d vs %d", lbS, lbF)
	}
	// 10x bandwidth should cut the 4KB transfer component ~10x.
	if lbS < 5*lbF {
		t.Fatalf("bandwidth scaling too weak: slow=%d fast=%d", lbS, lbF)
	}
}

func TestCounters(t *testing.T) {
	nw, eng, _ := newNet(16)
	eng.At(0, func() {
		nw.Send(0, 2, 100, 200, func() {})
		nw.Send(2, 0, 50, 200, func() {})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Messages() != 2 || nw.Bytes() != 150 {
		t.Fatalf("messages=%d bytes=%d, want 2/150", nw.Messages(), nw.Bytes())
	}
}

// Property: every message is eventually delivered, delivery time is at
// least the uncontended lower bound, and hop counts are symmetric.
func TestDeliveryProperty(t *testing.T) {
	f := func(pairs []uint8, size uint16) bool {
		if len(pairs) == 0 || len(pairs) > 30 {
			return true
		}
		nw, eng, cfg := newNet(16)
		delivered := 0
		ok := true
		eng.At(0, func() {
			for _, pr := range pairs {
				src, dst := int(pr%16), int(pr/16)
				lb := nw.LatencyLowerBound(src, dst, int(size), cfg.MessagingOverhead)
				nw.Send(src, dst, int(size), cfg.MessagingOverhead, func() {
					delivered++
					if eng.Now() < lb {
						ok = false
					}
				})
				if nw.Hops(src, dst) != nw.Hops(dst, src) {
					ok = false
				}
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok && delivered == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEgressSerializesOverhead(t *testing.T) {
	nw, eng, _ := newNet(16)
	var first, second sim.Time
	eng.At(0, func() {
		// Two messages from the same source to DIFFERENT destinations:
		// their link paths are disjoint, so any serialization comes from
		// the sender's network interface processing one send at a time.
		nw.Send(0, 1, 10, 400, func() { first = eng.Now() })
		nw.Send(0, 4, 10, 400, func() { second = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if second-first < 390 {
		t.Fatalf("NI egress did not serialize overheads: %d then %d", first, second)
	}
}

func TestZeroOverheadSkipsEgress(t *testing.T) {
	nw, eng, _ := newNet(16)
	var a, b sim.Time
	eng.At(0, func() {
		// Zero-overhead sends (CPU already paid the cost) do not occupy
		// the egress engine, so disjoint-path messages finish together.
		nw.Send(0, 1, 100, 0, func() { a = eng.Now() })
		nw.Send(0, 4, 100, 0, func() { b = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("zero-overhead sends serialized: %d vs %d", a, b)
	}
}
