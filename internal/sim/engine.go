// Package sim provides a deterministic discrete-event simulation engine
// with coroutine-style processes, FCFS resources, priority servers, and
// wait conditions.
//
// The engine is the substrate for the execution-driven DSM simulator: each
// simulated computation processor is a Proc (a goroutine coupled to the
// engine so that exactly one logical thread runs at a time), while
// protocol controllers, buses, memories, and network links are modelled
// with Resources and Servers advanced by engine events.
//
// Determinism: events at equal times fire in submission order (a strictly
// increasing sequence number breaks ties), and because at most one
// goroutine is runnable at any moment, repeated runs of the same program
// produce bit-identical schedules. Engine.Fingerprint hashes the fired
// (time, seq) stream so tests can assert that property — and so that
// fast-path rewrites of the queue below can prove they changed nothing.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is simulated time in processor cycles (the paper uses 10 ns cycles).
type Time = int64

// event is a scheduled callback. Events are stored by value inside the
// engine's queue slice: the slice's storage is the event pool (no
// per-event heap allocation, no free-list bookkeeping, no pointer
// chasing while sifting).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// heapArity is the fan-out of the event queue's d-ary min-heap. Four
// halves the tree depth versus a binary heap: pushes compare against
// half as many ancestors, and the four children examined per pop level
// share a cache line pair instead of being scattered.
const heapArity = 4

// Engine is a discrete-event simulator. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now Time
	seq uint64
	// events is a d-ary min-heap ordered by (at, seq), stored by value.
	events  []event
	handoff chan struct{} // engine parks here while a Proc runs
	procs   []*Proc
	stopped bool
	// limit bounds inline event elision: during RunUntil(t) a process
	// may not advance the clock past t on its own.
	limit Time
	// watchdog, when positive, is the liveness window: Run fails with a
	// *StallError if no process progresses for this many cycles while
	// some process is blocked (see SetWatchdog).
	watchdog       Time
	lastProgressAt Time

	// par is set on every engine participating in a parallel run (the
	// root and each shard); sh only on shards. See parallel.go.
	par *parRuntime
	sh  *shardState

	// runWallNS accumulates Run's wall-clock time for the self-profile
	// (profile.go). Host-dependent; never feeds the simulation.
	runWallNS int64

	// Stats.
	eventsRun    uint64
	fingerprint  uint64
	handoffs     uint64
	elidedParks  uint64
	maxHeapDepth int
}

// Stats is a snapshot of the engine's internal counters, for diagnostics
// and benchmarks.
type Stats struct {
	// EventsRun is the number of events fired (including elided wakes,
	// which fire logically without touching the queue).
	EventsRun uint64
	// Handoffs counts engine<->process control transfers (goroutine
	// round trips): one per park/resume pair and one per process start.
	Handoffs uint64
	// ElidedParks counts sleeps satisfied inline because the wake was
	// provably the next event — each one saved a goroutine round trip.
	ElidedParks uint64
	// MaxHeapDepth is the high-water mark of the pending-event queue.
	MaxHeapDepth int
}

// FNV-1a parameters for the determinism fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewEngine returns a fresh engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		handoff:     make(chan struct{}),
		fingerprint: fnvOffset,
		limit:       math.MaxInt64,
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports how many events have executed, for diagnostics.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// Stats returns the engine's counter block. On a parallelized engine
// the execution counters live on the shards: handoffs and elided parks
// are summed, the heap high-water mark is the max across shards.
func (e *Engine) Stats() Stats {
	s := Stats{
		EventsRun:    e.eventsRun,
		Handoffs:     e.handoffs,
		ElidedParks:  e.elidedParks,
		MaxHeapDepth: e.maxHeapDepth,
	}
	if e.par != nil && e.sh == nil {
		for _, se := range e.par.shards {
			s.Handoffs += se.handoffs
			s.ElidedParks += se.elidedParks
			if se.maxHeapDepth > s.MaxHeapDepth {
				s.MaxHeapDepth = se.maxHeapDepth
			}
		}
	}
	return s
}

// Fingerprint returns an FNV-1a hash of the fired (time, seq) event
// stream so far. Two runs that produce the same fingerprint executed
// bit-identical schedules; any reordering, insertion, or elision of
// events changes it.
func (e *Engine) Fingerprint() uint64 { return e.fingerprint }

// fired folds one executed event into the run counters and fingerprint.
func (e *Engine) fired(at Time, seq uint64) {
	e.eventsRun++
	e.fingerprint = (e.fingerprint ^ uint64(at)) * fnvPrime
	e.fingerprint = (e.fingerprint ^ seq) * fnvPrime
}

// before reports whether event (at, seq) fires before the heap element h.
func before(at Time, seq uint64, h *event) bool {
	return at < h.at || (at == h.at && seq < h.seq)
}

// push inserts an event into the d-ary heap, sifting up with hole
// propagation (the new event is written exactly once).
func (e *Engine) push(at Time, seq uint64, fn func()) {
	h := append(e.events, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !before(at, seq, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = event{at: at, seq: seq, fn: fn}
	e.events = h
	if len(h) > e.maxHeapDepth {
		e.maxHeapDepth = len(h)
	}
}

// pop removes and returns the earliest event. The caller must ensure the
// heap is non-empty.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the callback for GC; the slot stays pooled
	h = h[:n]
	e.events = h
	if n > 0 {
		h[0] = last
		siftDown(h, 0)
	}
	return root
}

// siftDown restores the heap invariant below index i, moving the
// smallest child up until h[i] fits. Shared by pop and the parallel
// engine's post-replay heapify.
func siftDown(h []event, i int) {
	n := len(h)
	cur := h[i]
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if before(h[j].at, h[j].seq, &h[m]) {
				m = j
			}
		}
		if !before(h[m].at, h[m].seq, &cur) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = cur
}

// At schedules fn to run in engine context at absolute time t.
// Scheduling in the past panics: it indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if e.par != nil {
		e.par.at(e, t, fn)
		return
	}
	e.seq++
	e.push(t, e.seq, fn)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// canElide reports whether a wake event at time `wake`, scheduled right
// now by the currently-running process for itself, would be the very
// next event to fire. If so the process may advance the clock inline
// (via elide) instead of queueing the event and parking — the schedule,
// sequence numbering, and fingerprint come out bit-identical, but the
// goroutine round trip through the engine is saved.
//
// Any queued event at the same time has a smaller sequence number and
// would fire first, so equality disqualifies. Elision is also off while
// stopped (the park must survive Stop/Run cycles), past the RunUntil
// limit (the process must stay parked at the boundary), and on the
// shards of a parallel run (a shard cannot see the global queue, so
// "provably next" is undecidable locally; see parallel.go for why
// firing every wake as a real event keeps the schedule identical).
func (e *Engine) canElide(wake Time) bool {
	return e.par == nil && !e.stopped && wake <= e.limit &&
		(len(e.events) == 0 || e.events[0].at > wake)
}

// elide fires the would-be wake event inline: it consumes the sequence
// number the queued event would have carried and advances the clock.
// Callers must have checked canElide with no intervening scheduling.
func (e *Engine) elide(wake Time) {
	e.seq++
	e.fired(wake, e.seq)
	e.elidedParks++
	e.now = wake
	e.progressed()
}

// Stop makes Run return after the current event completes. Pending events
// are kept; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns a *StallError if any processes are still blocked when the
// event queue drains (a simulated deadlock), or — with SetWatchdog
// armed — when events keep firing without any process progressing (a
// livelock).
func (e *Engine) Run() error {
	if e.par != nil {
		if e.sh != nil {
			panic("sim: Run called on a shard engine")
		}
		return e.par.run()
	}
	e.stopped = false
	e.limit = math.MaxInt64
	runStart := time.Now()
	defer func() { e.runWallNS += time.Since(runStart).Nanoseconds() }()
	watched := e.watchdog > 0
	for len(e.events) > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.at
		e.fired(ev.at, ev.seq)
		ev.fn()
		if watched {
			if serr := e.checkStall(); serr != nil {
				return serr
			}
		}
	}
	if e.stopped {
		return nil
	}
	var blocked []BlockedProc
	for _, p := range e.procs {
		if !p.done {
			blocked = append(blocked, BlockedProc{
				ID: p.ID, Name: p.Name, Reason: p.blockReason, Since: p.blockedAt,
			})
		}
	}
	if len(blocked) > 0 {
		return &StallError{Deadlock: true, Report: StallReport{
			At: e.now, LastProgress: e.lastProgressAt, Blocked: blocked,
		}}
	}
	return nil
}

// RunUntil executes events with time <= t, then returns. Processes blocked
// past t remain blocked. Not supported on a parallelized engine.
func (e *Engine) RunUntil(t Time) {
	if e.par != nil {
		panic("sim: RunUntil is not supported on a parallel engine")
	}
	e.limit = t
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := e.pop()
		e.now = ev.at
		e.fired(ev.at, ev.seq)
		ev.fn()
	}
	e.limit = math.MaxInt64
	if e.now < t {
		e.now = t
	}
}
