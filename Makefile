# Development targets for the dsm96 simulator. `make check` is the
# pre-commit gate: formatting, vet, build, the full test suite, and the
# race detector over the packages that exercise goroutine handoffs.

GO ?= go

.PHONY: check fmt vet build test race bench golden fuzz docs timeline

check: fmt vet build test race timeline

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine couples each simulated processor to a goroutine; the race
# detector over the simulator and the concurrent experiment driver is the
# cheapest way to catch an accidental second runnable goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/...

# Engine throughput benchmark (see EXPERIMENTS.md for the methodology).
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineEventsPerSec -benchtime 20x -count 3 .

# Regenerate the golden cycle totals after an INTENTIONAL timing change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenCycles -update-golden

# Exploratory fuzzing beyond the checked-in corpus.
fuzz:
	$(GO) test ./internal/randprog -fuzz FuzzRandprog -fuzztime 30s

# Smoke-test the observability artifacts: generate a Perfetto timeline
# and run-metrics JSON from a tiny run, then validate both with jq (the
# timeline must be one trace-event object, the metrics must carry the
# v1 schema tag and a per-processor breakdown).
timeline:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dsmsim -p 8 -app radix -mode ipd -scale tiny \
		-timeline "$$dir/t.json" -metrics "$$dir/m.json" >/dev/null; \
	jq -e '.traceEvents | length > 0' "$$dir/t.json" >/dev/null; \
	jq -e '.schema == "dsm96/run-metrics/v1" and (.per_proc_cycles | length == 8)' \
		"$$dir/m.json" >/dev/null; \
	echo "timeline: ok"

# Docs gate: vet + formatting, every example builds, and the prose in
# README/ARCHITECTURE/EXPERIMENTS references only make targets and
# paths that actually exist (scripts/checkdocs.sh).
docs: fmt vet
	$(GO) build ./examples/...
	sh scripts/checkdocs.sh
