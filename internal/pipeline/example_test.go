package pipeline_test

import (
	"fmt"
	"strings"

	"dsm96/internal/pipeline"
)

// Example loads a spec, expands one experiment's grid into cells, runs
// it on the shared simulation pool, and prints the determinism facts a
// trend record would capture. Cycle counts and fingerprints are exact
// machine-independent contracts of the simulator, which is why this
// example's output is stable enough to assert.
func Example() {
	spec, err := pipeline.Load(strings.NewReader(`{
	  "schema": "dsm96/experiments/v1",
	  "experiments": [{
	    "name": "demo",
	    "scale": "tiny",
	    "repeats": 1,
	    "grid": {
	      "apps": ["water"],
	      "protocols": ["Base", "I+P+D"],
	      "profiles": ["pci1996"],
	      "procs": [8]
	    }
	  }]
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	e, err := spec.Find("demo")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := pipeline.RunExperiment(e)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range res.Cells {
		fmt.Printf("%s: %d cycles, %d events, fingerprint %s\n",
			c.ID, c.Cycles, c.Events, c.Fingerprint)
	}
	// Output:
	// pci1996/water/Base/p8/w1: 551435 cycles, 3949 events, fingerprint cf9b3a47531cc7ef
	// pci1996/water/I+P+D/p8/w1: 212121 cycles, 5760 events, fingerprint ee319da661190f65
}
