package trace_test

import (
	"fmt"

	"dsm96/internal/trace"
)

// Attach a Buffer filtered to one page, record a fault's life, and dump
// the page's history. In real use the same buffer is handed to a run
// via core.Spec.Tracer (or `dsmsim -trace <page>`) and the protocol
// emits these events itself; the timestamps below stand in for engine
// cycles.
func Example_pageHistory() {
	b := trace.New(16)
	b.Page = 7 // keep page 7 only

	b.Emit(trace.Event{Time: 1040, Node: 2, Page: 7, Kind: trace.KindNotice, Detail: "wn from n0 iv=3"})
	b.Emit(trace.Event{Time: 1460, Node: 1, Page: 9, Kind: trace.KindFault, Detail: "read"}) // filtered out
	b.Emit(trace.Event{Time: 2210, Node: 2, Page: 7, Kind: trace.KindFault, Detail: "read, fetch from n0"})
	b.Emit(trace.Event{Time: 5890, Node: 2, Page: 7, Kind: trace.KindDiffApply, Detail: "diff n0 iv=3 words=12"})
	b.Emit(trace.Event{Time: 7035, Node: 2, Page: 7, Kind: trace.KindWritable, Detail: "twinned"})

	fmt.Printf("recorded %d events\n", b.Total())
	fmt.Print(b.String())
	// Output:
	// recorded 4 events
	// [      1040] n2  pg7     notice      wn from n0 iv=3
	// [      2210] n2  pg7     fault       read, fetch from n0
	// [      5890] n2  pg7     diff-apply  diff n0 iv=3 words=12
	// [      7035] n2  pg7     writable    twinned
}
