package core_test

import (
	"runtime"
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/randprog"
	"dsm96/internal/tmk"
)

// fingerprintRun simulates a fixed randprog seed under spec and returns
// the engine's event-stream fingerprint plus the cycle total.
func fingerprintRun(t *testing.T, spec core.Spec) (uint64, int64, uint64) {
	t.Helper()
	prog := randprog.New(42, 10, 2048, 3)
	cfg := params.Default()
	res, err := core.Run(cfg, spec, prog)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return res.EventFingerprint, res.RunningTime, res.EventsRun
}

// TestDeterminismFingerprint is the gate that makes engine fast-path
// rewrites safe to land: for every protocol the fired (time, seq) event
// stream must be bit-identical run to run, and independent of
// GOMAXPROCS (the engine is single-threaded by construction; goroutine
// scheduling must never leak into simulated time).
//
// This test deliberately does NOT use t.Parallel: it flips GOMAXPROCS.
func TestDeterminismFingerprint(t *testing.T) {
	specs := []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.ID), core.TM(tmk.IPD),
		core.AURC(false),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			fp1, cyc1, ev1 := fingerprintRun(t, spec)
			fp2, cyc2, ev2 := fingerprintRun(t, spec)
			if fp1 != fp2 || cyc1 != cyc2 || ev1 != ev2 {
				t.Fatalf("repeat run diverged: fp %016x/%016x cycles %d/%d events %d/%d",
					fp1, fp2, cyc1, cyc2, ev1, ev2)
			}
			prev := runtime.GOMAXPROCS(1)
			fp3, cyc3, ev3 := fingerprintRun(t, spec)
			runtime.GOMAXPROCS(prev)
			if fp1 != fp3 || cyc1 != cyc3 || ev1 != ev3 {
				t.Fatalf("GOMAXPROCS=1 run diverged from GOMAXPROCS=%d: fp %016x/%016x cycles %d/%d events %d/%d",
					prev, fp1, fp3, cyc1, cyc3, ev1, ev3)
			}
			if fp1 == 0 || ev1 == 0 {
				t.Fatalf("degenerate run: fp=%016x events=%d", fp1, ev1)
			}
		})
	}
}

// TestFingerprintDistinguishesSchedules checks the fingerprint is not a
// constant: different protocols on the same program, and different
// programs under the same protocol, must hash differently.
func TestFingerprintDistinguishesSchedules(t *testing.T) {
	base, _, _ := fingerprintRun(t, core.TM(tmk.Base))
	id, _, _ := fingerprintRun(t, core.TM(tmk.ID))
	if base == id {
		t.Errorf("Base and I+D produced identical fingerprints %016x (suspicious)", base)
	}
	cfg := params.Default()
	other := randprog.New(43, 10, 2048, 3)
	res, err := core.Run(cfg, core.TM(tmk.Base), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventFingerprint == base {
		t.Errorf("different programs produced identical fingerprints %016x (suspicious)", base)
	}
}
