package timeline

import (
	"encoding/json"
	"io"

	"dsm96/internal/spans"
)

// MetricsSchema names the metrics JSON layout; bump on incompatible
// change so downstream consumers can dispatch. v2 adds the optional
// `spans` block (causal-span report); v3 adds the `controller` block
// (fault-injection failover counters). Every earlier field is
// unchanged, so a reader that ignores unknown keys still parses newer
// artifacts.
const MetricsSchema = "dsm96/run-metrics/v3"

// ProcCycles is one processor's cycle accounting row (one bar segment
// stack of the paper's figures), in the five categories of stats.
type ProcCycles struct {
	Node  int   `json:"node"`
	Busy  int64 `json:"busy_cycles"`
	Data  int64 `json:"data_cycles"`
	Synch int64 `json:"synch_cycles"`
	IPC   int64 `json:"ipc_cycles"`
	Other int64 `json:"other_cycles"`
	Total int64 `json:"total_cycles"`
}

// Counters mirrors stats.ProcStats' event counters (machine-wide sums),
// in the same order Breakdown.CounterTable prints them.
type Counters struct {
	SharedReads       uint64 `json:"shared_reads"`
	SharedWrites      uint64 `json:"shared_writes"`
	CacheMisses       uint64 `json:"cache_misses"`
	TLBMisses         uint64 `json:"tlb_misses"`
	WriteBuffStalls   uint64 `json:"wbuf_stalls"`
	PageFaults        uint64 `json:"page_faults"`
	WriteFaults       uint64 `json:"write_faults"`
	LockAcquires      uint64 `json:"lock_acquires"`
	Barriers          uint64 `json:"barriers"`
	TwinsCreated      uint64 `json:"twins_created"`
	DiffsCreated      uint64 `json:"diffs_created"`
	DiffsApplied      uint64 `json:"diffs_applied"`
	Interrupts        uint64 `json:"interrupts"`
	Messages          uint64 `json:"messages"`
	Bytes             uint64 `json:"bytes"`
	Prefetches        uint64 `json:"prefetches"`
	UsefulPrefetch    uint64 `json:"useful_prefetches"`
	UselessPrefetch   uint64 `json:"useless_prefetches"`
	DupMsgsSuppressed uint64 `json:"dup_msgs_suppressed"`
	PrefetchUseCycles uint64 `json:"prefetch_use_cycles"`
	PrefetchUseCount  uint64 `json:"prefetch_use_count"`
}

// ControllerMetrics summarizes controller fault-injection outcomes (the
// v3 block): failovers declared, cycles nodes ran degraded, and the
// protocol work redone in software. All-zero on fault-free runs.
type ControllerMetrics struct {
	Failovers             uint64 `json:"failovers"`
	DegradedNodeCycles    uint64 `json:"degraded_node_cycles"`
	SoftwareFallbackDiffs uint64 `json:"software_fallback_diffs"`
	FallbackJobs          uint64 `json:"fallback_jobs"`
}

// ReliabilityMetrics mirrors stats.Reliability.
type ReliabilityMetrics struct {
	MessagesDropped    uint64 `json:"messages_dropped"`
	MessagesDuplicated uint64 `json:"messages_duplicated"`
	MessagesDelayed    uint64 `json:"messages_delayed"`
	TimeoutsFired      uint64 `json:"timeouts_fired"`
	Retries            uint64 `json:"retries"`
	DuplicatesDropped  uint64 `json:"duplicates_dropped"`
	HeldForOrder       uint64 `json:"held_for_order"`
	AcksSent           uint64 `json:"acks_sent"`
	RetryWaitCycles    uint64 `json:"retry_wait_cycles"`
}

// Metrics is the machine-readable result of one run: everything the
// dsmsim report prints, as stable snake_case JSON. Built by
// core.Result.Metrics; serialized with WriteJSON. Field order is fixed
// by the struct, so the artifact is byte-reproducible.
type Metrics struct {
	Schema     string `json:"schema"`
	App        string `json:"app"`
	Protocol   string `json:"protocol"`
	Processors int    `json:"processors"`
	Pages      int    `json:"pages"`

	RunningTime int64  `json:"running_time_cycles"`
	EventsRun   uint64 `json:"events_run"`
	// Fingerprint is the engine's FNV-1a schedule fingerprint as fixed
	// %016x hex — the determinism gate's currency, directly diffable.
	Fingerprint string `json:"event_fingerprint"`
	Validated   bool   `json:"validated"`

	DiffOpsPercent float64 `json:"diff_ops_percent"`

	// Machine is the all-processors cycle sum; PerProc one row per node.
	Machine ProcCycles   `json:"machine_cycles"`
	PerProc []ProcCycles `json:"per_proc_cycles"`

	Counters    Counters           `json:"counters"`
	Reliability ReliabilityMetrics `json:"reliability"`
	Controller  ControllerMetrics  `json:"controller"`

	// Spans is the causal-span report (per-kind latency percentiles,
	// stage decomposition, overlap accounting, barrier critical paths).
	// Present only when the run was traced with a spans.Tracker.
	Spans *spans.Report `json:"spans,omitempty"`
}

// WriteJSON serializes the metrics as indented JSON with a trailing
// newline. encoding/json over structs and slices (no maps) keeps the
// byte stream deterministic.
func (m *Metrics) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
