// Package pipeline is the reproducible experiment harness: it reads a
// committed experiments.json (schema dsm96/experiments/v1) describing
// named experiments — each a grid of application x protocol x machine
// profile x processor count x engine-worker count, with per-cell
// repeats, warmup discard, and a timeout — runs every cell on the
// bounded simulation pool, and writes one run folder per invocation:
// a manifest with host metadata and per-cell fingerprints, a canonical
// CSV, and run-metrics JSON per cell, all written atomically.
//
// On top of the runner sit two consumers. The trend database
// (trend.go) folds a run into an append-only dsm96/trend/v1 record
// under trends/, which cmd/metricsdiff -trend compares across PRs —
// determinism fields exactly, throughput only within the same host
// class. The renderer (render.go) regenerates the measured markdown
// tables of EXPERIMENTS.md between <!-- generated:NAME --> markers, so
// the paper document is a build artifact instead of transcribed prose.
package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/experiments"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// SpecSchema tags the experiments.json format.
const SpecSchema = "dsm96/experiments/v1"

// Spec is a decoded experiments.json: a set of named experiments.
type Spec struct {
	Schema      string       `json:"schema"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one named grid. Every cell of the grid runs
// Warmup+Repeats times; the warmup runs are discarded from the timing
// statistics (the simulated results are deterministic, so repeats only
// exist to stabilize wall-clock throughput).
type Experiment struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Scale is the problem scale: tiny, default, or paper.
	Scale string `json:"scale"`
	// Repeats is the number of measured executions per cell (>= 1).
	Repeats int `json:"repeats"`
	// Warmup is the number of additional leading executions per cell
	// whose wall time is discarded (>= 0).
	Warmup int `json:"warmup,omitempty"`
	// TimeoutSec bounds one cell's total execution (all repeats) in
	// wall seconds; 0 disables the bound.
	TimeoutSec int  `json:"timeout_sec,omitempty"`
	Grid       Grid `json:"grid"`
}

// Grid is the cartesian product the experiment measures. Expansion
// order is fixed — apps outermost, then protocols, profiles, procs,
// workers, faults — so cell numbering is stable across runs and hosts.
type Grid struct {
	Apps      []string `json:"apps"`
	Protocols []string `json:"protocols"`
	// Profiles are machine models: builtin backend names (pci1996,
	// rdma, cxl) or paths to dsm96/params-profile/v1 files.
	Profiles []string `json:"profiles"`
	Procs    []int    `json:"procs"`
	Workers  []int    `json:"workers,omitempty"`
	// Faults, when present, crosses the grid with named fault-injection
	// scenarios (a chaos grid). Absent means one fault-free pass; the
	// scenario named "" is not allowed — fault cells are always
	// distinguishable by ID.
	Faults []FaultScenario `json:"faults,omitempty"`
}

// FaultScenario is one named fault-injection configuration: the same
// knobs dsmsim exposes (-drop/-dup/-delay/-fault-seed/-ctrl-crash/
// -ctrl-hang), made reproducible by committing them to the spec. The
// injections are deterministic given the seed, so a fault cell has a
// stable fingerprint and cycle count like any other — the property
// that lets chaos runs live in a trend database.
type FaultScenario struct {
	Name string `json:"name"`
	// Seed keys every injection decision (faults.Plan.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Drop, Dup, and Delay are per-link probabilities in [0, 1].
	Drop  float64 `json:"drop,omitempty"`
	Dup   float64 `json:"dup,omitempty"`
	Delay float64 `json:"delay,omitempty"`
	// CtrlCrash and CtrlHang schedule controller failures using
	// dsmsim's syntax: NODE@CYCLE,... and NODE@CYCLE+WINDOW,...
	// (NODE may be "all").
	CtrlCrash string `json:"ctrl_crash,omitempty"`
	CtrlHang  string `json:"ctrl_hang,omitempty"`
}

// plan resolves the scenario into a validated fault plan for a mesh of
// the given processor count.
func (f *FaultScenario) plan(procs int) (*faults.Plan, error) {
	p := &faults.Plan{
		Seed:    f.Seed,
		Default: faults.Link{Drop: f.Drop, Dup: f.Dup, Delay: f.Delay},
	}
	if err := faults.ParseCtrlCrash(p, f.CtrlCrash, procs); err != nil {
		return nil, err
	}
	if err := faults.ParseCtrlHang(p, f.CtrlHang, procs); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Cell is one fully-resolved grid point.
type Cell struct {
	Experiment string
	App        string
	Protocol   string
	Profile    string
	Procs      int
	Workers    int
	// Fault is the fault scenario's name ("" = fault-free).
	Fault     string
	Scale     experiments.Scale
	ScaleName string

	spec core.Spec
	cfg  params.Config
}

// ID names the cell: profile/app/protocol/pN/wM, with a trailing
// /SCENARIO segment on fault cells — the key the CSV, manifest, and
// trend records agree on. Fault-free cells keep the historical
// five-segment form, so existing trend records stay comparable.
func (c *Cell) ID() string {
	id := fmt.Sprintf("%s/%s/%s/p%d/w%d", c.Profile, c.App, c.Protocol, c.Procs, c.Workers)
	if c.Fault != "" {
		id += "/" + c.Fault
	}
	return id
}

// Stem is the cell's artifact file stem (no slashes, '+' stripped).
func (c *Cell) Stem(seq int) string {
	stem := fmt.Sprintf("cell-%04d-%s-%s-%s-p%d-w%d", seq, c.App,
		strings.ReplaceAll(c.Protocol, "+", ""), c.Profile, c.Procs, c.Workers)
	if c.Fault != "" {
		stem += "-" + c.Fault
	}
	return stem
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// ParseProtocol maps a protocol label (Base, I, I+D, P, I+P, I+P+D,
// AURC, AURC+P; lenient spellings as in tmk.ParseMode) to a core.Spec.
func ParseProtocol(label string) (core.Spec, bool) {
	switch label {
	case "AURC", "aurc":
		return core.AURC(false), true
	case "AURC+P", "aurc+p":
		return core.AURC(true), true
	}
	if m, ok := tmk.ParseMode(label); ok {
		return core.TM(m), true
	}
	return core.Spec{}, false
}

// Load strictly decodes a spec: unknown fields anywhere in the
// document are errors, and every grid reference is resolved (apps,
// protocols, profiles, processor and worker counts) so a broken
// experiments.json fails at load time naming the offending field, not
// mid-run.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile loads and validates an experiments.json file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the whole spec, naming the first offending field.
func (s *Spec) Validate() error {
	if s.Schema != SpecSchema {
		return fmt.Errorf("pipeline: schema: got %q, want %q", s.Schema, SpecSchema)
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("pipeline: experiments: empty")
	}
	seen := map[string]bool{}
	knownApps := map[string]bool{}
	for _, n := range apps.Names() {
		knownApps[n] = true
	}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		where := fmt.Sprintf("pipeline: experiments[%d] (%q)", i, e.Name)
		if !nameRE.MatchString(e.Name) {
			return fmt.Errorf("%s: name: must match %s", where, nameRE)
		}
		if seen[e.Name] {
			return fmt.Errorf("%s: name: duplicate", where)
		}
		seen[e.Name] = true
		if _, ok := experiments.ParseScale(e.Scale); !ok {
			return fmt.Errorf("%s: scale: unknown %q (want tiny, default, or paper)", where, e.Scale)
		}
		if e.Repeats < 1 {
			return fmt.Errorf("%s: repeats: %d, need >= 1", where, e.Repeats)
		}
		if e.Warmup < 0 {
			return fmt.Errorf("%s: warmup: %d, need >= 0", where, e.Warmup)
		}
		if e.TimeoutSec < 0 {
			return fmt.Errorf("%s: timeout_sec: %d, need >= 0", where, e.TimeoutSec)
		}
		if len(e.Grid.Apps) == 0 {
			return fmt.Errorf("%s: grid.apps: empty", where)
		}
		for j, a := range e.Grid.Apps {
			if !knownApps[a] {
				return fmt.Errorf("%s: grid.apps[%d]: unknown app %q", where, j, a)
			}
		}
		if len(e.Grid.Protocols) == 0 {
			return fmt.Errorf("%s: grid.protocols: empty", where)
		}
		for j, p := range e.Grid.Protocols {
			if _, ok := ParseProtocol(p); !ok {
				return fmt.Errorf("%s: grid.protocols[%d]: unknown protocol %q", where, j, p)
			}
		}
		if len(e.Grid.Profiles) == 0 {
			return fmt.Errorf("%s: grid.profiles: empty", where)
		}
		for j, p := range e.Grid.Profiles {
			if _, err := params.ResolveProfile(p); err != nil {
				return fmt.Errorf("%s: grid.profiles[%d]: %w", where, j, err)
			}
		}
		if len(e.Grid.Procs) == 0 {
			return fmt.Errorf("%s: grid.procs: empty", where)
		}
		for j, p := range e.Grid.Procs {
			if p < 1 {
				return fmt.Errorf("%s: grid.procs[%d]: %d, need >= 1", where, j, p)
			}
		}
		for j, w := range e.Grid.Workers {
			if w < 1 {
				return fmt.Errorf("%s: grid.workers[%d]: %d, need >= 1", where, j, w)
			}
		}
		seenFault := map[string]bool{}
		for j := range e.Grid.Faults {
			f := &e.Grid.Faults[j]
			if !nameRE.MatchString(f.Name) {
				return fmt.Errorf("%s: grid.faults[%d].name: must match %s", where, j, nameRE)
			}
			if seenFault[f.Name] {
				return fmt.Errorf("%s: grid.faults[%d].name: duplicate %q", where, j, f.Name)
			}
			seenFault[f.Name] = true
			// Resolve the plan against every processor count in the grid
			// so a ctrl schedule naming an out-of-range node fails at
			// load time, not mid-run.
			for _, procs := range e.Grid.Procs {
				if _, err := f.plan(procs); err != nil {
					return fmt.Errorf("%s: grid.faults[%d] (%q) at p%d: %w", where, j, f.Name, procs, err)
				}
			}
		}
	}
	return nil
}

// Find returns the named experiment.
func (s *Spec) Find(name string) (*Experiment, error) {
	for i := range s.Experiments {
		if s.Experiments[i].Name == name {
			return &s.Experiments[i], nil
		}
	}
	return nil, fmt.Errorf("pipeline: no experiment %q (have %s)", name, strings.Join(s.Names(), ", "))
}

// Names lists the experiments in document order.
func (s *Spec) Names() []string {
	out := make([]string, len(s.Experiments))
	for i := range s.Experiments {
		out[i] = s.Experiments[i].Name
	}
	return out
}

// Expand resolves the experiment's grid into cells in the fixed
// expansion order. The spec must already have validated.
func (e *Experiment) Expand() ([]Cell, error) {
	sc, ok := experiments.ParseScale(e.Scale)
	if !ok {
		return nil, fmt.Errorf("pipeline: experiment %q: scale: unknown %q", e.Name, e.Scale)
	}
	workers := e.Grid.Workers
	if len(workers) == 0 {
		workers = []int{1}
	}
	scenarios := e.Grid.Faults
	if len(scenarios) == 0 {
		scenarios = []FaultScenario{{}} // one fault-free pass
	}
	var cells []Cell
	for _, app := range e.Grid.Apps {
		for _, label := range e.Grid.Protocols {
			spec, ok := ParseProtocol(label)
			if !ok {
				return nil, fmt.Errorf("pipeline: experiment %q: grid.protocols: unknown protocol %q", e.Name, label)
			}
			for _, profName := range e.Grid.Profiles {
				prof, err := params.ResolveProfile(profName)
				if err != nil {
					return nil, fmt.Errorf("pipeline: experiment %q: grid.profiles: %w", e.Name, err)
				}
				for _, procs := range e.Grid.Procs {
					cfg := prof.Config()
					cfg.Processors = procs
					for _, w := range workers {
						for fi := range scenarios {
							f := &scenarios[fi]
							sp := spec
							sp.Workers = w
							if f.Name != "" {
								plan, err := f.plan(procs)
								if err != nil {
									return nil, fmt.Errorf("pipeline: experiment %q: grid.faults (%q) at p%d: %w",
										e.Name, f.Name, procs, err)
								}
								sp.Faults = plan
							}
							cells = append(cells, Cell{
								Experiment: e.Name,
								App:        app,
								Protocol:   sp.String(),
								Profile:    prof.Name,
								Procs:      procs,
								Workers:    w,
								Fault:      f.Name,
								Scale:      sc,
								ScaleName:  e.Scale,
								spec:       sp,
								cfg:        cfg,
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}
