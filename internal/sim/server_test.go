package sim

import (
	"testing"
	"testing/quick"
)

func TestServerFIFOWithinPriority(t *testing.T) {
	e := NewEngine()
	s := &Server{Name: "ctrl"}
	var done []string
	e.At(0, func() {
		for _, n := range []string{"a", "b", "c"} {
			name := n
			s.Submit(e, &Job{Name: name, Service: 10, Done: func() { done = append(done, name) }})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || done[0] != "a" || done[1] != "b" || done[2] != "c" {
		t.Fatalf("done = %v, want [a b c]", done)
	}
	if s.JobsDone() != 3 || s.BusyCycles() != 30 {
		t.Fatalf("jobs=%d busy=%d", s.JobsDone(), s.BusyCycles())
	}
}

func TestServerPriorityOvertake(t *testing.T) {
	e := NewEngine()
	s := &Server{}
	var done []string
	add := func(name string, prio int) {
		s.Submit(e, &Job{Name: name, Priority: prio, Service: 10,
			Done: func() { done = append(done, name) }})
	}
	e.At(0, func() {
		add("running", PriorityHigh) // dispatches immediately
		add("prefetch1", PriorityLow)
		add("prefetch2", PriorityLow)
	})
	e.At(5, func() {
		add("demand", PriorityHigh) // arrives mid-service, must overtake prefetches
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"running", "demand", "prefetch1", "prefetch2"}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestServerRunComputesService(t *testing.T) {
	e := NewEngine()
	s := &Server{}
	var finished Time
	e.At(0, func() {
		s.Submit(e, &Job{
			Service: 999, // superseded by Run's return
			Run:     func() Time { return 7 },
			Done:    func() { finished = e.Now() },
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 7 {
		t.Fatalf("finished at %d, want 7", finished)
	}
}

func TestServerIdleRestart(t *testing.T) {
	e := NewEngine()
	s := &Server{}
	var times []Time
	e.At(0, func() {
		s.Submit(e, &Job{Service: 5, Done: func() { times = append(times, e.Now()) }})
	})
	e.At(100, func() {
		s.Submit(e, &Job{Service: 5, Done: func() { times = append(times, e.Now()) }})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 5 || times[1] != 105 {
		t.Fatalf("times = %v, want [5 105]", times)
	}
	if s.AvgQueueWait() != 0 {
		t.Fatalf("avg wait = %v, want 0", s.AvgQueueWait())
	}
}

// Property: all submitted jobs complete exactly once and total busy time
// equals the sum of service times.
func TestServerCompletenessProperty(t *testing.T) {
	f := func(raw []uint8, prios []bool) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		e := NewEngine()
		s := &Server{}
		completed := 0
		var sum Time
		e.At(0, func() {
			for i, d := range raw {
				prio := PriorityHigh
				if i < len(prios) && prios[i] {
					prio = PriorityLow
				}
				sum += Time(d)
				s.Submit(e, &Job{Priority: prio, Service: Time(d),
					Done: func() { completed++ }})
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return completed == len(raw) && s.BusyCycles() == sum && s.QueueLen() == 0 && !s.Busy()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
