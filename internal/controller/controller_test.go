package controller

import (
	"testing"

	"dsm96/internal/memsys"
	"dsm96/internal/params"
	"dsm96/internal/sim"
)

func newCtrl() (*Controller, *sim.Engine, *params.Config) {
	cfg := params.Default()
	eng := sim.NewEngine()
	node := memsys.NewNode(0, &cfg, eng)
	return New(0, &cfg, node), eng, &cfg
}

func TestSnoopMarksWords(t *testing.T) {
	c, _, cfg := newCtrl()
	c.SnoopWrite(0)
	c.SnoopWrite(4)
	c.SnoopWrite(4)                   // idempotent
	c.SnoopWrite(int64(cfg.PageSize)) // next page, word 0
	if got := c.Vector(0).Count(); got != 2 {
		t.Fatalf("page 0 marked words = %d, want 2", got)
	}
	if got := c.Vector(1).Count(); got != 1 {
		t.Fatalf("page 1 marked words = %d, want 1", got)
	}
}

func TestHWDiffCostTracksVector(t *testing.T) {
	c, _, cfg := newCtrl()
	if got := c.HWDiffCreateCost(0); got != cfg.DMADiffBaseCycles {
		t.Fatalf("clean page cost = %d, want %d", got, cfg.DMADiffBaseCycles)
	}
	for w := 0; w < cfg.PageWords(); w++ {
		c.SnoopWrite(int64(w * params.WordBytes))
	}
	if got := c.HWDiffCreateCost(0); got != cfg.DMADiffFullCycles {
		t.Fatalf("full page cost = %d, want %d", got, cfg.DMADiffFullCycles)
	}
}

func TestHWDiffApplyCost(t *testing.T) {
	c, _, cfg := newCtrl()
	if got := c.HWDiffApplyCost(0); got != cfg.DMADiffBaseCycles {
		t.Fatalf("empty apply = %d", got)
	}
	if c.HWDiffApplyCost(512) >= c.HWDiffApplyCost(1024) {
		t.Fatal("apply cost not monotone")
	}
}

// The paper's headline hardware claim: the DMA diff is far cheaper than
// the ~7K-instruction software diff, and twins vanish entirely.
func TestHardwareBeatsSoftware(t *testing.T) {
	c, _, cfg := newCtrl()
	for w := 0; w < cfg.PageWords(); w++ {
		c.SnoopWrite(int64(w * params.WordBytes))
	}
	hw := c.HWDiffCreateCost(0)
	sw := SoftDiffCreateCost(cfg)
	if hw >= sw {
		t.Fatalf("hw diff %d not cheaper than sw %d", hw, sw)
	}
	if sw < 7000 {
		t.Fatalf("software diff %d below paper's ~7K cycles", sw)
	}
	if TwinCost(cfg) != 5*1024 {
		t.Fatalf("twin cost = %d, want 5120", TwinCost(cfg))
	}
	if SoftDiffApplyCost(cfg, 10) != 70 {
		t.Fatalf("apply cost = %d, want 70", SoftDiffApplyCost(cfg, 10))
	}
}

func TestQueuePriorities(t *testing.T) {
	c, eng, _ := newCtrl()
	var order []string
	eng.At(0, func() {
		c.Submit(eng, &sim.Job{Name: "pf1", Priority: sim.PriorityLow, Service: 100,
			Done: func() { order = append(order, "pf1") }}, nil)
		c.Submit(eng, &sim.Job{Name: "pf2", Priority: sim.PriorityLow, Service: 100,
			Done: func() { order = append(order, "pf2") }}, nil)
	})
	eng.At(50, func() {
		c.Submit(eng, &sim.Job{Name: "demand", Priority: sim.PriorityHigh, Service: 100,
			Done: func() { order = append(order, "demand") }}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// pf1 was already in service; the demand request overtakes pf2.
	want := []string{"pf1", "demand", "pf2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestVectorClearAfterDiff(t *testing.T) {
	c, _, cfg := newCtrl()
	c.SnoopWrite(8)
	v := c.Vector(0)
	if v.Count() != 1 {
		t.Fatal("mark lost")
	}
	v.Clear() // generating the diff resets all bits (Section 3.1)
	if c.HWDiffCreateCost(0) != cfg.DMADiffBaseCycles {
		t.Fatal("cost not reset after clear")
	}
}
