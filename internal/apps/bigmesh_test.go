package apps_test

import (
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// TestRadixBigMesh regresses the >64-processor sizing bug: radix's
// per-processor histogram and rank arrays used to be fixed at 64 slots,
// so any mesh larger than that indexed out of range in the rank phase.
// With dsm.Sized the harness now tells the app the machine size before
// Setup, so big meshes validate like any other run — and the schedule
// stays deterministic (fingerprint-stable across repeats).
func TestRadixBigMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("big meshes are expensive; run without -short")
	}
	for _, procs := range []int{96, 128} {
		for _, spec := range []core.Spec{core.TM(tmk.Base), core.TM(tmk.IPD)} {
			procs, spec := procs, spec
			t.Run(spec.String()+"/"+itoa(procs), func(t *testing.T) {
				t.Parallel()
				run := func() *core.Result {
					app, err := apps.Tiny("radix")
					if err != nil {
						t.Fatal(err)
					}
					cfg := params.Mesh(procs)
					r, err := core.Run(cfg, spec, app)
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				a, b := run(), run()
				if a.EventFingerprint != b.EventFingerprint || a.RunningTime != b.RunningTime {
					t.Fatalf("repeat diverged: %016x/%d vs %016x/%d",
						a.EventFingerprint, a.RunningTime, b.EventFingerprint, b.RunningTime)
				}
			})
		}
	}
}

// TestSetProcsIsPure guards the dsm.Sized contract: SetProcs must be a
// pure function of n (with the historical 64-slot floor), never a
// ratchet. A run on an instance that previously saw a big mesh must be
// bit-identical to a run on a fresh instance — otherwise fingerprints
// would depend on what ran earlier.
func TestSetProcsIsPure(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 8

	fresh, err := apps.Tiny("radix")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(cfg, core.TM(tmk.Base), fresh)
	if err != nil {
		t.Fatal(err)
	}

	reused, err := apps.Tiny("radix")
	if err != nil {
		t.Fatal(err)
	}
	reused.(interface{ SetProcs(int) }).SetProcs(128) // simulate an earlier big run
	got, err := core.Run(cfg, core.TM(tmk.Base), reused)
	if err != nil {
		t.Fatal(err)
	}
	if got.EventFingerprint != want.EventFingerprint {
		t.Fatalf("SetProcs ratcheted: fingerprint %016x after a 128-proc call, want %016x",
			got.EventFingerprint, want.EventFingerprint)
	}
}
