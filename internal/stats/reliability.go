package stats

import (
	"fmt"
	"strings"
)

// Reliability aggregates the degradation a run suffered from an
// unreliable network (see internal/faults) and what the reliable
// transport (network.SendReliable) did about it. All counters are zero
// for a fault-free run: the transport is pass-through when no fault
// model is installed.
type Reliability struct {
	// What the fault model injected.
	MessagesDropped    uint64 // transmissions discarded at the destination NIC
	MessagesDuplicated uint64 // transmissions delivered twice
	MessagesDelayed    uint64 // transmissions held for extra cycles (reordering)

	// What the transport did about it.
	TimeoutsFired     uint64 // retry timers that expired with no ack
	Retries           uint64 // retransmissions issued (== TimeoutsFired today)
	DuplicatesDropped uint64 // arrivals suppressed by sequence-number dedup
	HeldForOrder      uint64 // arrivals buffered to restore per-link FIFO order
	AcksSent          uint64 // hardware acknowledgements injected
	// RetryWaitCycles sums the timeout intervals that expired before each
	// retransmission — the added stall the protocols absorbed waiting for
	// lost messages (an upper bound on per-message added latency, since
	// a retransmission can overlap other useful work).
	RetryWaitCycles uint64
}

// Degraded reports whether the run saw any fault or recovery activity.
func (r *Reliability) Degraded() bool {
	return r.MessagesDropped != 0 || r.MessagesDuplicated != 0 || r.MessagesDelayed != 0 ||
		r.TimeoutsFired != 0 || r.Retries != 0 || r.DuplicatesDropped != 0 ||
		r.HeldForOrder != 0 || r.AcksSent != 0 || r.RetryWaitCycles != 0
}

// Merge adds o into r.
func (r *Reliability) Merge(o *Reliability) {
	r.MessagesDropped += o.MessagesDropped
	r.MessagesDuplicated += o.MessagesDuplicated
	r.MessagesDelayed += o.MessagesDelayed
	r.TimeoutsFired += o.TimeoutsFired
	r.Retries += o.Retries
	r.DuplicatesDropped += o.DuplicatesDropped
	r.HeldForOrder += o.HeldForOrder
	r.AcksSent += o.AcksSent
	r.RetryWaitCycles += o.RetryWaitCycles
}

// Table renders the counters in a fixed order (same style as
// Breakdown.CounterTable).
func (r *Reliability) Table() string {
	rows := []struct {
		name string
		val  uint64
	}{
		{"msgs dropped", r.MessagesDropped},
		{"msgs duplicated", r.MessagesDuplicated},
		{"msgs delayed", r.MessagesDelayed},
		{"timeouts fired", r.TimeoutsFired},
		{"retries", r.Retries},
		{"dup drops", r.DuplicatesDropped},
		{"held for order", r.HeldForOrder},
		{"acks sent", r.AcksSent},
		{"retry wait cycles", r.RetryWaitCycles},
	}
	var sb strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-18s %12d\n", row.name, row.val)
	}
	return sb.String()
}
