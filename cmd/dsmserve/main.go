// Command dsmserve is simulation-as-a-service: a crash-safe job server
// that accepts dsm96/job/v1 simulation specs over HTTP, dedupes and
// memoizes them by canonical content hash (the simulator is
// deterministic, so a spec's result never changes), executes misses on
// a bounded worker pool with explicit backpressure, and journals every
// job transition so a kill -9 at any point is repaired by the next
// start's recovery scan.
//
// Server mode:
//
//	dsmserve -store DIR [-addr HOST:PORT] [-addr-file FILE] [-runs DIR]
//	         [-pool N] [-queue N] [-retries N] [-retry-base DUR]
//	         [-job-timeout DUR] [-drain-timeout DUR]
//
// The store directory holds the job journal (jobs/<key>.json), the
// content-addressed artifacts (objects/<sha256>), and the derived
// manifest.json ledger. On SIGTERM or SIGINT the server drains: it
// stops accepting jobs, finishes every accepted one, and exits 0.
// -addr-file writes the actually-bound address (useful with port 0)
// once the listener is up.
//
// Endpoints: POST /jobs (?wait=1 long-polls; 429 + Retry-After when the
// queue is full), GET /jobs/{key}, GET /artifacts/{sha} (hash-verified),
// GET /runs/... (dated run folders served through their manifest, every
// artifact SHA-256-verified), GET /healthz, GET /statsz.
//
// Client mode (so scripts need no curl):
//
//	dsmserve -server URL -submit spec.json [-wait]
//	dsmserve -server URL -get KEY
//	dsmserve -server URL -artifact SHA   (raw artifact to stdout)
//	dsmserve -server URL -statsz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsm96/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8096", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	storeDir := flag.String("store", "", "job store directory (journal + content-addressed artifacts); required in server mode")
	runsDir := flag.String("runs", "", "serve this dated-run-folder directory under /runs (read-only, manifest-verified)")
	pool := flag.Int("pool", 2, "simulation worker pool size (the capacity bound)")
	queueCap := flag.Int("queue", 16, "accepted-job queue bound; a full queue answers 429 + Retry-After")
	retries := flag.Int("retries", 3, "quarantine a job after this many failed attempts")
	retryBase := flag.Duration("retry-base", time.Second, "first retry backoff (doubles per attempt, capped at 32x)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "wall-clock ceiling per attempt (0 = none; the in-sim watchdog still bounds stalls)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a signal-triggered drain may take before hard exit")
	server := flag.String("server", "", "client mode: job server base URL")
	submit := flag.String("submit", "", "client mode: POST this job spec JSON file")
	wait := flag.Bool("wait", false, "client mode: long-poll -submit until the job rests")
	get := flag.String("get", "", "client mode: fetch a job record by key")
	artifact := flag.String("artifact", "", "client mode: fetch a content-addressed artifact to stdout")
	statsz := flag.Bool("statsz", false, "client mode: fetch server stats")
	flag.Parse()

	if *server != "" {
		os.Exit(clientMain(&serve.Client{Base: *server}, *submit, *wait, *get, *artifact, *statsz))
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "dsmserve: -store is required (or -server for client mode)")
		os.Exit(2)
	}

	srv, err := serve.NewServer(*storeDir, serve.Options{
		Workers:     *pool,
		QueueCap:    *queueCap,
		MaxAttempts: *retries,
		RetryBase:   *retryBase,
		JobTimeout:  *jobTimeout,
		RunsDir:     *runsDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmserve:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmserve:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dsmserve:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "dsmserve: listening on %s, store %s\n", bound, *storeDir)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dsmserve: %s: draining (finishing accepted jobs, refusing new ones)\n", got)
		drained := make(chan struct{})
		go func() {
			srv.Drain()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(*drainTimeout):
			fmt.Fprintln(os.Stderr, "dsmserve: drain timeout; exiting anyway (journal will recover)")
			os.Exit(1)
		}
		hs.Close()
		fmt.Fprintln(os.Stderr, "dsmserve: drained")
		os.Exit(0)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "dsmserve:", err)
		os.Exit(1)
	}
}

// clientMain is the no-curl client so scripts and Makefiles can talk to
// the server with the same binary they booted.
func clientMain(c *serve.Client, submit string, wait bool, get, artifact string, statsz bool) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dsmserve:", err)
		return 1
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	switch {
	case submit != "":
		data, err := os.ReadFile(submit)
		if err != nil {
			return fail(err)
		}
		var spec serve.JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return fail(fmt.Errorf("%s: %w", submit, err))
		}
		st, err := c.Submit(&spec, wait)
		if err != nil {
			return fail(err)
		}
		out.Encode(st)
		return 0
	case get != "":
		st, err := c.Record(get)
		if err != nil {
			return fail(err)
		}
		out.Encode(st)
		return 0
	case artifact != "":
		data, err := c.Artifact(artifact)
		if err != nil {
			return fail(err)
		}
		os.Stdout.Write(data)
		return 0
	case statsz:
		st, err := c.Stats()
		if err != nil {
			return fail(err)
		}
		out.Encode(st)
		return 0
	}
	fmt.Fprintln(os.Stderr, "dsmserve: client mode needs one of -submit, -get, -artifact, -statsz")
	return 2
}
