package tmk

import (
	"testing"

	"dsm96/internal/lrc"
	"dsm96/internal/sim"
)

// These tests deliver the same protocol message twice, straight into the
// receive paths — bypassing the reliable transport's own deduplication —
// and check that the protocol-level guards apply it exactly once.

// TestDuplicateGrantAppliedOnce: two copies of a lock grant arrive; the
// token must be taken once and the second copy suppressed, whether the
// copies race through the interrupt queue together or the second one
// trails after the first was fully applied.
func TestDuplicateGrantAppliedOnce(t *testing.T) {
	pr := newTestProtocol(2, Base)
	n := pr.nodes[0]
	lk := n.lock(7)
	lk.gate = &sim.Gate{}
	grantVTS := lrc.VTS{0, 1}
	ivs := []*lrc.Interval{{Owner: 1, Seq: 1, VTS: lrc.VTS{0, 1}, Pages: []int{3}}}
	pr.eng.At(0, func() {
		// Near-simultaneous duplicates: both pass the entry guard, the
		// second must bail in its post-interrupt callback.
		n.receiveGrant(7, ivs, grantVTS, nil, nil)
		n.receiveGrant(7, ivs, grantVTS, nil, nil)
	})
	if err := pr.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !lk.hasToken || !lk.inCS {
		t.Fatal("grant not applied")
	}
	if lk.gate != nil {
		t.Fatal("gate not consumed")
	}
	if n.st.DupMsgsSuppressed != 1 {
		t.Fatalf("DupMsgsSuppressed = %d, want 1", n.st.DupMsgsSuppressed)
	}
	// A late straggler after the grant was applied is caught at entry.
	pr.eng.At(pr.eng.Now(), func() { n.receiveGrant(7, ivs, grantVTS, nil, nil) })
	if err := pr.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.st.DupMsgsSuppressed != 2 {
		t.Fatalf("late duplicate not suppressed: %d", n.st.DupMsgsSuppressed)
	}
	if got := len(n.page(3).pending); got != 1 {
		t.Fatalf("pending notices = %d, want 1 (intervals integrated once)", got)
	}
}

// TestDuplicateDiffReplyAppliedOnce: a fetch waiting on two owners gets
// the first owner's reply twice. The duplicate must not decrement
// outstanding — the fetch completes only when the second owner answers.
func TestDuplicateDiffReplyAppliedOnce(t *testing.T) {
	pr := newTestProtocol(3, Base)
	n := pr.nodes[0]
	pe := n.page(4)
	pe.state = stInvalid
	f := &fetchOp{outstanding: 2}
	pe.fetch = f
	pr.eng.At(0, func() {
		n.receiveDiffReply(4, 1, nil, 1)
		n.receiveDiffReply(4, 1, nil, 1) // duplicate
	})
	if err := pr.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pe.fetch == nil {
		t.Fatal("duplicate reply completed the fetch before owner 2 answered")
	}
	if f.outstanding != 1 {
		t.Fatalf("outstanding = %d, want 1", f.outstanding)
	}
	if n.st.DupMsgsSuppressed != 1 {
		t.Fatalf("DupMsgsSuppressed = %d, want 1", n.st.DupMsgsSuppressed)
	}
	applied := n.st.DiffsApplied
	pr.eng.At(pr.eng.Now(), func() { n.receiveDiffReply(4, 2, nil, 1) })
	if err := pr.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pe.fetch != nil {
		t.Fatal("fetch did not complete after the real second reply")
	}
	if pe.state != stRO {
		t.Fatalf("page state = %d, want read-only", pe.state)
	}
	if n.st.DiffsApplied != applied {
		t.Fatal("empty replies applied diffs")
	}
}
