package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Busy: "busy", Data: "data", Synch: "synch", IPC: "ipc", Other: "others",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), w)
		}
	}
	if len(Categories()) != int(NumCategories) {
		t.Errorf("Categories() has %d entries, want %d", len(Categories()), NumCategories)
	}
}

func TestAddAndTotal(t *testing.T) {
	var s ProcStats
	s.Add(Busy, 100)
	s.Add(Data, 50)
	s.Add(Busy, 10)
	if s.Total() != 160 {
		t.Fatalf("Total = %d, want 160", s.Total())
	}
	if s.Cycles[Busy] != 110 {
		t.Fatalf("Busy = %d, want 110", s.Cycles[Busy])
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative charge")
		}
	}()
	var s ProcStats
	s.Add(Busy, -1)
}

func TestMerge(t *testing.T) {
	a := &ProcStats{SharedReads: 3, DiffCycles: 7}
	a.Add(Synch, 20)
	b := &ProcStats{SharedReads: 5, DiffCycles: 1}
	b.Add(Synch, 2)
	b.Add(IPC, 9)
	a.Merge(b)
	if a.SharedReads != 8 || a.DiffCycles != 8 {
		t.Fatalf("merge counters wrong: %+v", a)
	}
	if a.Cycles[Synch] != 22 || a.Cycles[IPC] != 9 {
		t.Fatalf("merge cycles wrong: %+v", a.Cycles)
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	f := func(vals [5]uint16) bool {
		b := &Breakdown{RunningTime: 1000}
		p := &ProcStats{}
		total := int64(0)
		for i, v := range vals {
			p.Cycles[i] = int64(v)
			total += int64(v)
		}
		b.PerProc = append(b.PerProc, p)
		sum := 0.0
		for _, c := range Categories() {
			fr := b.Fraction(c)
			if fr < 0 || fr > 1 {
				return false
			}
			sum += fr
		}
		if total == 0 {
			return sum == 0
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffPercent(t *testing.T) {
	b := &Breakdown{RunningTime: 100}
	p := &ProcStats{DiffCycles: 25}
	p.Add(Busy, 100)
	b.PerProc = []*ProcStats{p}
	if got := b.DiffPercent(); got != 25 {
		t.Fatalf("DiffPercent = %v, want 25", got)
	}
	empty := &Breakdown{}
	if empty.DiffPercent() != 0 {
		t.Fatal("empty breakdown DiffPercent should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(1600, 100); s != 16 {
		t.Fatalf("Speedup = %v, want 16", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("Speedup with zero time = %v, want 0", s)
	}
}

func TestFormatBarContainsCategories(t *testing.T) {
	b := &Breakdown{RunningTime: 200}
	p := &ProcStats{}
	p.Add(Busy, 150)
	p.Add(Data, 50)
	b.PerProc = []*ProcStats{p}
	bar := b.FormatBar("I+D", 400)
	for _, want := range []string{"I+D", "50%", "busy", "data", "synch", "ipc", "others", "diff-ops"} {
		if !strings.Contains(bar, want) {
			t.Errorf("bar %q missing %q", bar, want)
		}
	}
}

func TestCounterTable(t *testing.T) {
	b := &Breakdown{PerProc: []*ProcStats{{MsgsSent: 42, BytesSent: 4242}}}
	tab := b.CounterTable()
	if !strings.Contains(tab, "messages") || !strings.Contains(tab, "42") {
		t.Errorf("counter table missing content:\n%s", tab)
	}
}

func TestPageProfileSharingDegree(t *testing.T) {
	p := &PageProfile{Writers: 0b1011}
	if p.SharingDegree() != 3 {
		t.Fatalf("degree = %d, want 3", p.SharingDegree())
	}
	if (&PageProfile{}).SharingDegree() != 0 {
		t.Fatal("empty profile has writers")
	}
}

func TestFormatPageProfiles(t *testing.T) {
	profiles := []PageProfile{
		{Page: 1, Faults: 5, Writers: 0b11, Readers: 0b1111},
		{Page: 2, Faults: 50, DiffsApplied: 7, WordsApplied: 700},
		{Page: 3, Faults: 5},
	}
	out := FormatPageProfiles(profiles, 2)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	// Page 2 (most faults) first; then page 1 (ties break by number).
	if !strings.Contains(lines[1], " 2 ") && !strings.HasPrefix(strings.TrimSpace(lines[1]), "2") {
		t.Errorf("hottest page not first:\n%s", out)
	}
	// Asking for more rows than exist is clamped.
	if got := FormatPageProfiles(profiles, 99); len(strings.Split(strings.TrimSpace(got), "\n")) != 4 {
		t.Errorf("clamp failed:\n%s", got)
	}
}
