package serve

import (
	"strings"
	"testing"

	"dsm96/internal/faults"
	"dsm96/internal/params"
)

func resolve(t *testing.T, spec *JobSpec) *ResolvedJob {
	t.Helper()
	job, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", spec, err)
	}
	return job
}

// TestJobKeyCanonical pins the memoization contract: execution policy
// (workers, watchdog) and spelling (defaults made explicit, profile vs
// inline config) never change a job's identity; anything
// result-determining does.
func TestJobKeyCanonical(t *testing.T) {
	base := &JobSpec{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4}
	key := resolve(t, base).Key

	same := []*JobSpec{
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4, Workers: 4},
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4, Watchdog: 5_000_000},
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4, Faults: &JobFaults{}},
	}
	for i, s := range same {
		if got := resolve(t, s).Key; got != key {
			t.Errorf("variant %d: key %s, want %s (execution policy leaked into identity)", i, got, key)
		}
	}
	// An explicit config equal to the resolved default is the same job.
	cfg := params.Default()
	cfg.Processors = 4
	if got := resolve(t, &JobSpec{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Config: &cfg}).Key; got != key {
		t.Errorf("explicit default config changed the key")
	}

	diff := []*JobSpec{
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 8},
		{Schema: JobSchema, App: "radix", Protocol: "AURC", Scale: "tiny", Procs: 4},
		{Schema: JobSchema, App: "em3d", Protocol: "I+P+D", Scale: "tiny", Procs: 4},
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "default", Procs: 4},
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4, Profile: "rdma"},
		{Schema: JobSchema, App: "radix", Protocol: "I+P+D", Scale: "tiny", Procs: 4, Faults: &JobFaults{Seed: 1, Drop: 0.01}},
	}
	seen := map[string]int{key: -1}
	for i, s := range diff {
		got := resolve(t, s).Key
		if prev, dup := seen[got]; dup {
			t.Errorf("variants %d and %d collide on %s", prev, i, got)
		}
		seen[got] = i
	}
}

// TestJobKeySeedMatters pins fault scenarios into the identity: a
// different seed is a different deterministic universe.
func TestJobKeySeedMatters(t *testing.T) {
	mk := func(seed uint64) *JobSpec {
		return &JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Scale: "tiny",
			Faults: &JobFaults{Seed: seed, Drop: 0.05}}
	}
	if resolve(t, mk(1)).Key == resolve(t, mk(2)).Key {
		t.Fatal("fault seed does not affect the job key")
	}
}

// TestJobResolveRejects is the validation matrix: every malformed spec
// is refused with the offending field named.
func TestJobResolveRejects(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"schema", JobSpec{Schema: "bogus/v9", App: "tsp", Protocol: "Base"}, "schema"},
		{"app", JobSpec{Schema: JobSchema, App: "doom", Protocol: "Base"}, "app"},
		{"protocol", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "XYZ"}, "protocol"},
		{"scale", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Scale: "huge"}, "scale"},
		{"profile", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Profile: "../../etc/passwd"}, "profile"},
		{"workers", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Workers: -1}, "workers"},
		{"watchdog off", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Watchdog: -1}, "watchdog"},
		{"fault rate", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Faults: &JobFaults{Drop: 1.5}}, "faults"},
		{"ctrl node range", JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Procs: 4,
			Faults: &JobFaults{Ctrl: map[int]faults.CtrlFault{9: {Crash: true, CrashAt: 1}}}}, "ctrl node"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Resolve()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestFaultsRoundTrip pins the JobFaults <-> faults.Plan conversion the
// sweep client leans on.
func TestFaultsRoundTrip(t *testing.T) {
	spec := &JobSpec{Schema: JobSchema, App: "tsp", Protocol: "Base", Scale: "tiny", Procs: 4,
		Faults: &JobFaults{Seed: 7, Drop: 0.02, Delay: 0.1, DelayMin: 100, DelayMax: 500,
			Ctrl: map[int]faults.CtrlFault{1: {Hang: true, HangAt: 1000, HangFor: 5000}}}}
	job := resolve(t, spec)
	back, err := FaultsFromPlan(job.Spec.Faults)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := *spec
	spec2.Faults = back
	if got := resolve(t, &spec2).Key; got != job.Key {
		t.Fatalf("fault round-trip changed the key: %s vs %s", got, job.Key)
	}
	if _, err := FaultsFromPlan(&faults.Plan{PerLink: map[faults.Pair]faults.Link{{Src: 0, Dst: 1}: {Drop: 1}}}); err == nil {
		t.Fatal("per-link plan must not serialize")
	}
}
