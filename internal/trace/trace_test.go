package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emit(Event{})
	if b.Total() != 0 || b.Events() != nil {
		t.Fatal("nil buffer misbehaved")
	}
}

func TestRingOrdering(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Emit(Event{Time: int64(i), Page: 1})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Time != 2 || evs[2].Time != 4 {
		t.Fatalf("order wrong: %v", evs)
	}
	if b.Total() != 5 {
		t.Fatalf("total = %d, want 5", b.Total())
	}
}

func TestPageFilter(t *testing.T) {
	b := New(10)
	b.Page = 7
	b.Emit(Event{Page: 7})
	b.Emit(Event{Page: 8})
	if b.Total() != 1 {
		t.Fatalf("filter admitted %d", b.Total())
	}
	// Page = -1 admits everything.
	b2 := New(10)
	b2.Emit(Event{Page: 7})
	b2.Emit(Event{Page: 8})
	if b2.Total() != 2 {
		t.Fatal("unfiltered buffer filtered")
	}
}

func TestKindFilterAndStrings(t *testing.T) {
	b := New(10)
	b.Kinds = map[Kind]bool{KindFault: true}
	b.Emit(Event{Kind: KindFault, Page: 0})
	b.Emit(Event{Kind: KindNotice, Page: 0})
	if b.Total() != 1 {
		t.Fatalf("kind filter admitted %d", b.Total())
	}
	for _, k := range []Kind{KindNotice, KindFault, KindDiffCreate, KindDiffApply, KindWritable, KindIntervalClose, KindUpdate, KindPrefetch, KindOther} {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d lacks a label", int(k))
		}
	}
	s := b.String()
	if !strings.Contains(s, "fault") {
		t.Errorf("render missing kind: %q", s)
	}
}

// Property: the ring retains exactly the last min(total, cap) events in
// chronological order, for any event count.
func TestRingProperty(t *testing.T) {
	f := func(counts uint8, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		n := int(counts)
		b := New(capacity)
		for i := 0; i < n; i++ {
			b.Emit(Event{Time: int64(i)})
		}
		evs := b.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.Time != int64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
