package pipeline

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"dsm96/internal/experiments"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/tmk"

	"dsm96/internal/core"
)

// The regenerable blocks of EXPERIMENTS.md. Each block is a measured
// markdown table produced by a fresh, deterministic simulation at the
// scale the document declares; `cmd/experiment -render` rewrites the
// content between its markers:
//
//	<!-- generated:NAME -->
//	| ... measured table ...
//	<!-- /generated:NAME -->
//
// and `cmd/experiment -render -check` (run by scripts/checkdocs.sh)
// fails when the committed content differs from a fresh render — the
// document cannot drift from the code that measures it. Because the
// simulator is bit-deterministic, a render is byte-stable across runs
// and GOMAXPROCS settings (TestRenderByteStable); only an intentional
// timing or protocol change can alter a block, and such a change also
// trips the golden-cycle and trend gates, so the tables and the
// numbers they quote move together, reviewed in one diff.

// Block is one regenerable table.
type Block struct {
	Name string
	// Scale is the problem scale the document quotes for this block.
	Scale experiments.Scale
	// Generate renders the markdown table (inner content only, ending
	// in a newline) at the given scale.
	Generate func(sc experiments.Scale) (string, error)
}

// Blocks returns the registry, in document order.
func Blocks() []Block {
	return []Block{
		{Name: "fig1-speedups", Scale: experiments.ScaleDefault, Generate: renderFig1},
		{Name: "backend-ladder", Scale: experiments.ScaleDefault, Generate: renderBackendLadder},
		{Name: "reliability", Scale: experiments.ScaleDefault, Generate: renderReliability},
		{Name: "chaos-ladder", Scale: experiments.ScaleTiny, Generate: renderChaosLadder},
		{Name: "chaos-sweep", Scale: experiments.ScaleTiny, Generate: renderChaosSweep},
	}
}

// BlockNames lists the registered block names in document order.
func BlockNames() []string {
	var out []string
	for _, b := range Blocks() {
		out = append(out, b.Name)
	}
	return out
}

var markerRE = regexp.MustCompile(
	`(?s)<!-- generated:([a-z0-9-]+) -->\n(.*?)<!-- /generated:([a-z0-9-]+) -->`)

// parseBlocks extracts the marker sections of a document, keyed by
// name, and validates marker pairing against the registry: every
// registered block must appear exactly once, no unknown or mismatched
// markers.
func parseBlocks(doc []byte) (map[string]string, error) {
	found := map[string]string{}
	for _, m := range markerRE.FindAllSubmatch(doc, -1) {
		open, inner, closing := string(m[1]), string(m[2]), string(m[3])
		if open != closing {
			return nil, fmt.Errorf("pipeline: generated block %q closed by %q", open, closing)
		}
		if _, dup := found[open]; dup {
			return nil, fmt.Errorf("pipeline: generated block %q appears twice", open)
		}
		found[open] = inner
	}
	known := map[string]bool{}
	for _, b := range Blocks() {
		known[b.Name] = true
		if _, ok := found[b.Name]; !ok {
			return nil, fmt.Errorf("pipeline: document is missing generated block %q", b.Name)
		}
	}
	for name := range found {
		if !known[name] {
			return nil, fmt.Errorf("pipeline: document has unregistered generated block %q", name)
		}
	}
	return found, nil
}

// RenderBlocks generates every registered block (or the named subset).
// tiny forces ScaleTiny everywhere — the fast path the byte-stability
// tests use; the document itself always renders at registry scales.
func RenderBlocks(only []string, tiny bool) (map[string]string, error) {
	want := map[string]bool{}
	for _, n := range only {
		want[n] = true
	}
	out := map[string]string{}
	for _, b := range Blocks() {
		if len(want) > 0 && !want[b.Name] {
			continue
		}
		sc := b.Scale
		if tiny {
			sc = experiments.ScaleTiny
		}
		s, err := b.Generate(sc)
		if err != nil {
			return nil, fmt.Errorf("pipeline: render %s: %w", b.Name, err)
		}
		out[b.Name] = s
	}
	if len(want) > 0 {
		for n := range want {
			if _, ok := out[n]; !ok {
				return nil, fmt.Errorf("pipeline: no generated block %q (have %s)",
					n, strings.Join(BlockNames(), ", "))
			}
		}
	}
	return out, nil
}

// RenderDoc returns the document with every registered block's content
// replaced by a fresh render, plus the names of blocks whose content
// changed. The input must contain exactly the registered markers.
func RenderDoc(doc []byte) ([]byte, []string, error) {
	existing, err := parseBlocks(doc)
	if err != nil {
		return nil, nil, err
	}
	fresh, err := RenderBlocks(nil, false)
	if err != nil {
		return nil, nil, err
	}
	var changed []string
	for name, inner := range fresh {
		if existing[name] != inner {
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	out := markerRE.ReplaceAllFunc(doc, func(m []byte) []byte {
		name := string(markerRE.FindSubmatch(m)[1])
		return []byte(fmt.Sprintf("<!-- generated:%s -->\n%s<!-- /generated:%s -->",
			name, fresh[name], name))
	})
	return out, changed, nil
}

// PatchDoc replaces only the blocks present in fresh, leaving the rest
// of the document byte-identical (the -only path of cmd/experiment
// -render). Marker validation still covers the whole document.
func PatchDoc(doc []byte, fresh map[string]string) ([]byte, []string, error) {
	existing, err := parseBlocks(doc)
	if err != nil {
		return nil, nil, err
	}
	var changed []string
	for name, inner := range fresh {
		if existing[name] != inner {
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	out := markerRE.ReplaceAllFunc(doc, func(m []byte) []byte {
		name := string(markerRE.FindSubmatch(m)[1])
		inner, ok := fresh[name]
		if !ok {
			return m
		}
		return []byte(fmt.Sprintf("<!-- generated:%s -->\n%s<!-- /generated:%s -->",
			name, inner, name))
	})
	return out, changed, nil
}

// markdown table helpers

func tableRow(cells ...string) string { return "| " + strings.Join(cells, " | ") + " |\n" }

func tableRule(n int) string {
	return "|" + strings.Repeat("---|", n) + "\n"
}

// humanInt formats n with thousands separators (1228971 -> 1,228,971).
func humanInt(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// renderFig1 regenerates the Figure 1 speedup table: base TreadMarks
// at 16 processors, rows ordered best to worst. The "paper's
// character" column is the paper's claim, constant by construction.
func renderFig1(sc experiments.Scale) (string, error) {
	character := map[string]string{
		"tsp":    "best, ~9-10",
		"water":  "good",
		"barnes": "middling",
		"em3d":   "middling-poor",
		"radix":  "poor",
		"ocean":  `worst, "unacceptable"`,
	}
	data, err := experiments.Fig1(sc, []int{16})
	if err != nil {
		return "", err
	}
	type row struct {
		app     string
		speedup float64
	}
	var rows []row
	for app, pts := range data {
		rows = append(rows, row{app, pts[len(pts)-1].Speedup})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].speedup != rows[j].speedup {
			return rows[i].speedup > rows[j].speedup
		}
		return rows[i].app < rows[j].app
	})
	var sb strings.Builder
	sb.WriteString(tableRow("app", "measured speedup @16p", "paper's character"))
	sb.WriteString(tableRule(3))
	for _, r := range rows {
		sb.WriteString(tableRow(r.app, fmt.Sprintf("%.2f", r.speedup), character[r.app]))
	}
	return sb.String(), nil
}

// renderBackendLadder regenerates the 2026 cross-backend ladder table:
// running time normalized to the same backend's Base, one column per
// builtin profile.
func renderBackendLadder(sc experiments.Scale) (string, error) {
	cells, err := experiments.CrossBackendLadder(sc, nil)
	if err != nil {
		return "", err
	}
	profiles := params.BuiltinNames()
	norm := map[string]float64{}
	for _, c := range cells {
		norm[c.Profile+"\x00"+c.App+"\x00"+c.Protocol] = c.NormVsBase
	}
	var sb strings.Builder
	sb.WriteString(tableRow(append([]string{"app", "proto"}, profiles...)...))
	sb.WriteString(tableRule(2 + len(profiles)))
	for _, app := range experiments.LadderApps() {
		for _, spec := range experiments.LadderSpecs() {
			label := spec.String()
			if label == "Base" {
				continue // normalization denominator: identically 1.0
			}
			row := []string{app, label}
			for _, p := range profiles {
				row = append(row, fmt.Sprintf("%.3f", norm[p+"\x00"+app+"\x00"+label]))
			}
			sb.WriteString(tableRow(row...))
		}
	}
	return sb.String(), nil
}

// renderReliability regenerates the message-loss table: slowdown per
// loss rate plus the transport's recovery work at the highest rate.
func renderReliability(sc experiments.Scale) (string, error) {
	losses := experiments.DefaultLossPcts()
	pts, err := experiments.ReliabilitySweep(sc, 1, losses)
	if err != nil {
		return "", err
	}
	// Group points by (app, proto) in sweep order.
	type key struct{ app, proto string }
	var order []key
	grouped := map[key][]experiments.ReliabilityPoint{}
	for _, p := range pts {
		k := key{p.App, p.Protocol}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], p)
	}
	last := losses[len(losses)-1]
	header := []string{"app", "proto"}
	for _, l := range losses[1:] {
		header = append(header, fmt.Sprintf("%g%%", l))
	}
	header = append(header, fmt.Sprintf("retries@%g%% (drops@%g%%)", last, last))
	var sb strings.Builder
	sb.WriteString(tableRow(header...))
	sb.WriteString(tableRule(len(header)))
	for _, k := range order {
		row := []string{k.app, k.proto}
		var tail string
		for _, p := range grouped[k] {
			if p.LossPct == 0 {
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", p.Norm))
			if p.LossPct == last {
				tail = fmt.Sprintf("%d (%d)", p.Rel.Retries, p.Rel.MessagesDropped)
			}
		}
		row = append(row, tail)
		sb.WriteString(tableRow(row...))
	}
	return sb.String(), nil
}

// renderChaosLadder regenerates the controller-degradation ladder:
// I+P+D at 8 processors, healthy vs one controller crashed at cycle 0
// vs all crashed, against Base as the reference, at tiny scale.
func renderChaosLadder(experiments.Scale) (string, error) {
	const procs = 8
	apps := []string{"water", "radix"}
	crash := func(spec string) *faults.Plan {
		p := &faults.Plan{}
		if err := faults.ParseCtrlCrash(p, spec, procs); err != nil {
			panic(err) // literal specs below
		}
		return p
	}
	variants := []struct {
		name string
		spec core.Spec
	}{
		{"healthy", core.TM(tmk.IPD)},
		{"one", func() core.Spec { s := core.TM(tmk.IPD); s.Faults = crash("0@0"); return s }()},
		{"all", func() core.Spec { s := core.TM(tmk.IPD); s.Faults = crash("all@0"); return s }()},
		{"base", core.TM(tmk.Base)},
	}
	cfg := params.Default()
	cfg.Processors = procs
	var batch []experiments.Cell
	for _, app := range apps {
		for _, v := range variants {
			batch = append(batch, experiments.Cell{
				App: app, Spec: v.spec, Cfg: cfg, Scale: experiments.ScaleTiny,
			})
		}
	}
	runs := experiments.RunCells(batch)
	var sb strings.Builder
	sb.WriteString(tableRow("app", "healthy", "one node crashed@0", "all crashed@0", "Base (reference)"))
	sb.WriteString(tableRule(5))
	for ai, app := range apps {
		row := []string{app}
		healthy := int64(0)
		for vi, v := range variants {
			r := runs[ai*len(variants)+vi]
			if r.Err != nil {
				return "", fmt.Errorf("chaos ladder %s/%s: %w", app, v.name, r.Err)
			}
			cyc := int64(r.Result.RunningTime)
			switch v.name {
			case "healthy":
				healthy = cyc
				row = append(row, humanInt(cyc))
			case "base":
				row = append(row, humanInt(cyc))
			default:
				row = append(row, fmt.Sprintf("%s (%.2f×)", humanInt(cyc), float64(cyc)/float64(healthy)))
			}
		}
		sb.WriteString(tableRow(row...))
	}
	return sb.String(), nil
}

// renderChaosSweep regenerates the seed-1 chaos-sweep table: link
// faults plus randomized controller crash/hang over the full matrix,
// with the graceful-degradation accounting.
func renderChaosSweep(experiments.Scale) (string, error) {
	pts, err := experiments.ChaosSweep(experiments.ScaleTiny, []uint64{1})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(tableRow("app", "proto", "norm", "failovers", "degraded node-cycles", "fallback diffs"))
	sb.WriteString(tableRule(6))
	for _, p := range pts {
		sb.WriteString(tableRow(p.App, p.Protocol, fmt.Sprintf("%.3f", p.Norm),
			fmt.Sprintf("%d", p.Failovers), humanInt(int64(p.DegradedCycles)),
			fmt.Sprintf("%d", p.FallbackDiffs)))
	}
	return sb.String(), nil
}
