package network

import (
	"testing"

	"dsm96/internal/faults"
	"dsm96/internal/sim"
)

// sendBurst issues n reliable messages 0->1 at time 0 and runs the
// engine, returning the order in which their delivery callbacks fired.
func sendBurst(t *testing.T, nw *Network, eng *sim.Engine, n int) []int {
	t.Helper()
	var order []int
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			i := i
			nw.SendReliable(0, 1, 64, 200, func() { order = append(order, i) })
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return order
}

// requireExactlyOnceInOrder fails unless order is exactly 0..n-1.
func requireExactlyOnceInOrder(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("delivered %d messages, want %d (order %v)", len(order), n, order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v: position %d is message %d", order, i, got)
		}
	}
}

// TestReliablePassThrough: with no fault model, SendReliable must be
// Send, verbatim — same delivery instants, same message count, no
// transport traffic.
func TestReliablePassThrough(t *testing.T) {
	run := func(send func(nw *Network, bytes int, done func())) (times []sim.Time, msgs uint64) {
		nw, eng, _ := newNet(16)
		eng.At(0, func() {
			for _, b := range []int{64, 4096, 10} {
				b := b
				send(nw, b, func() { times = append(times, eng.Now()) })
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return times, nw.Messages()
	}
	rawT, rawM := run(func(nw *Network, b int, done func()) { nw.Send(0, 5, b, 200, done) })
	relT, relM := run(func(nw *Network, b int, done func()) { nw.SendReliable(0, 5, b, 200, done) })
	if len(rawT) != len(relT) || rawM != relM {
		t.Fatalf("pass-through diverged: raw %v/%d msgs, reliable %v/%d msgs", rawT, rawM, relT, relM)
	}
	for i := range rawT {
		if rawT[i] != relT[i] {
			t.Fatalf("delivery %d at %d via Send but %d via SendReliable", i, rawT[i], relT[i])
		}
	}
}

// TestReliableSurvivesDrops: heavy loss on every link; every message
// still delivered exactly once, in order, with retransmissions doing
// the work.
func TestReliableSurvivesDrops(t *testing.T) {
	nw, eng, _ := newNet(16)
	nw.InstallFaults(faults.NewModel(&faults.Plan{Seed: 1, Default: faults.Link{Drop: 0.3}}, 16))
	const n = 40
	requireExactlyOnceInOrder(t, sendBurst(t, nw, eng, n), n)
	if nw.Rel().MessagesDropped == 0 {
		t.Fatal("30% loss plan dropped nothing")
	}
	if nw.Rel().Retries == 0 || nw.Rel().TimeoutsFired == 0 || nw.Rel().RetryWaitCycles == 0 {
		t.Fatalf("drops recovered without retries: %+v", nw.Rel())
	}
}

// TestReliableSuppressesDuplicates: duplicated copies are acked but
// never delivered twice.
func TestReliableSuppressesDuplicates(t *testing.T) {
	nw, eng, _ := newNet(16)
	nw.InstallFaults(faults.NewModel(&faults.Plan{Seed: 2, Default: faults.Link{Dup: 0.5}}, 16))
	const n = 40
	requireExactlyOnceInOrder(t, sendBurst(t, nw, eng, n), n)
	if nw.Rel().MessagesDuplicated == 0 {
		t.Fatal("50% duplication plan duplicated nothing")
	}
	if nw.Rel().DuplicatesDropped == 0 {
		t.Fatal("duplicates arrived but none were suppressed")
	}
}

// TestReliableRestoresOrder: injected delays reorder arrivals; the
// hold-back queue must restore per-pair FIFO delivery.
func TestReliableRestoresOrder(t *testing.T) {
	nw, eng, _ := newNet(16)
	nw.InstallFaults(faults.NewModel(&faults.Plan{
		Seed:    3,
		Default: faults.Link{Delay: 0.5, DelayMin: 500, DelayMax: 5000},
	}, 16))
	const n = 40
	requireExactlyOnceInOrder(t, sendBurst(t, nw, eng, n), n)
	if nw.Rel().MessagesDelayed == 0 {
		t.Fatal("50% delay plan delayed nothing")
	}
	if nw.Rel().HeldForOrder == 0 {
		t.Fatal("large injected delays never reordered arrivals (hold-back untested)")
	}
}

// TestReliableAllFaults: drop + dup + delay together, bidirectional
// traffic on several pairs — the transport's general case.
func TestReliableAllFaults(t *testing.T) {
	nw, eng, _ := newNet(16)
	nw.InstallFaults(faults.NewModel(&faults.Plan{
		Seed:    4,
		Default: faults.Link{Drop: 0.15, Dup: 0.15, Delay: 0.3},
	}, 16))
	type key struct{ src, dst int }
	got := map[key][]int{}
	pairs := []key{{0, 1}, {1, 0}, {0, 15}, {7, 2}}
	const per = 15
	eng.At(0, func() {
		for i := 0; i < per; i++ {
			for _, p := range pairs {
				p, i := p, i
				nw.SendReliable(p.src, p.dst, 128, 200, func() {
					got[p] = append(got[p], i)
				})
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		requireExactlyOnceInOrder(t, got[p], per)
	}
}

// TestReliableDeterministic: same plan, same engine fingerprint —
// twice in a row.
func TestReliableDeterministic(t *testing.T) {
	run := func() (uint64, sim.Time) {
		nw, eng, _ := newNet(16)
		nw.InstallFaults(faults.NewModel(&faults.Plan{
			Seed:    5,
			Default: faults.Link{Drop: 0.2, Dup: 0.2, Delay: 0.2},
		}, 16))
		sendBurst(t, nw, eng, 30)
		return eng.Fingerprint(), eng.Now()
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("faulty run not reproducible: fp %x/%x, end %d/%d", f1, f2, t1, t2)
	}
}

// TestReliableCombinedStress: the hostile corner the individual fault
// tests skirt — half of all copies duplicated AND half delayed (with a
// delay range wide enough to reorder whole windows), plus background
// loss, over many seeds. Duplication multiplies the arrivals the
// dedup/hold-back state must classify exactly when reordering is at its
// worst; a bug that conflates "duplicate" with "out of order" (or leaks
// a held slot) survives the single-fault tests and dies here.
func TestReliableCombinedStress(t *testing.T) {
	link := faults.Link{
		Drop: 0.1, Dup: 0.5,
		Delay: 0.5, DelayMin: 500, DelayMax: 8000,
	}
	run := func(seed uint64) (*Network, uint64) {
		nw, eng, _ := newNet(16)
		nw.InstallFaults(faults.NewModel(&faults.Plan{Seed: seed, Default: link}, 16))
		type key struct{ src, dst int }
		pairs := []key{{0, 1}, {1, 0}, {0, 15}, {15, 0}, {7, 2}, {3, 12}}
		got := map[key][]int{}
		const per = 20
		eng.At(0, func() {
			for i := 0; i < per; i++ {
				for _, p := range pairs {
					p, i := p, i
					nw.SendReliable(p.src, p.dst, 128, 200, func() {
						got[p] = append(got[p], i)
					})
				}
			}
			if u := nw.Unacked(); u != per*len(pairs) {
				t.Errorf("seed %d: unacked gauge %d right after burst, want %d", seed, u, per*len(pairs))
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			requireExactlyOnceInOrder(t, got[p], per)
		}
		return nw, eng.Fingerprint()
	}
	for seed := uint64(100); seed < 125; seed++ {
		nw, _ := run(seed)
		if nw.Unacked() != 0 {
			t.Fatalf("seed %d: %d messages still unacked after the run drained", seed, nw.Unacked())
		}
		if nw.Rel().MessagesDuplicated == 0 || nw.Rel().MessagesDelayed == 0 {
			t.Fatalf("seed %d: stress plan injected nothing: %+v", seed, nw.Rel())
		}
	}
	// The combined-fault schedule must be exactly reproducible too.
	_, f1 := run(107)
	_, f2 := run(107)
	if f1 != f2 {
		t.Fatalf("combined-fault run not reproducible: fingerprints %x vs %x", f1, f2)
	}
}

// TestInstallFaultsNil: a disabled model is refused, so zero-rate plans
// keep the raw send path.
func TestInstallFaultsNil(t *testing.T) {
	nw, _, _ := newNet(16)
	nw.InstallFaults(faults.NewModel(&faults.Plan{Seed: 9}, 16))
	if nw.FaultsEnabled() {
		t.Fatal("disabled plan installed a fault model")
	}
}
