package tmk

import (
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/trace"
)

// issuePrefetches implements the paper's runtime heuristic: right after a
// synchronization operation invalidates pages, prefetch the diffs of
// those that this processor had cached and referenced — it will likely
// touch them again. Prefetch requests are marked low priority so demand
// requests overtake them in controller queues (in Base/P there is no such
// mechanism and prefetch traffic interferes freely, as in the paper).
//
// Runs in processor context immediately after the acquire/barrier gate.
func (n *pnode) issuePrefetches(p *sim.Proc) {
	queue := n.prefetchQueue
	n.prefetchQueue = nil
	if n.degraded {
		// Prefetching dies with the controller: the low-priority queue
		// that kept prefetch traffic out of demand requests' way is
		// gone, and a degraded node's processor has enough protocol work
		// of its own. Drop the candidates (demand faults still work).
		for _, pg := range queue {
			n.page(pg).queuedPrefetch = false
		}
		return
	}
	for _, pg := range queue {
		pe := n.page(pg)
		pe.queuedPrefetch = false
		if pe.state != stInvalid || pe.fetch != nil {
			continue
		}
		switch n.pr.opts.Strategy {
		case PrefetchAlways:
			// No filter: every invalidated page is a candidate.
		case PrefetchAdaptive:
			if !pe.referenced || pe.uselessStreak >= adaptiveUselessLimit {
				continue
			}
		default: // PrefetchReferenced — the paper's heuristic
			if !pe.referenced {
				continue
			}
		}
		owners := pendingByOwner(pe, n.ownerScratch)
		n.ownerScratch = owners
		if len(owners) == 0 {
			continue
		}
		n.st.Prefetches++
		n.emit(pg, trace.KindPrefetch, "issue owners=%d", len(owners))
		pe.prefetchIssued = p.Now()
		// The prefetch gets its own span: issue overheads charge to it
		// while it is current, then it detaches (the processor moves on)
		// and the span closes when the apply lands — the span window is
		// the flight time overlap accounting credits as hidden.
		op := n.pr.sp.Begin(n.id, spans.OpPrefetch, pg, p.Now())
		f := &fetchOp{outstanding: len(owners), prefetch: true, op: op}
		pe.fetch = f
		for _, o := range owners {
			owner := n.pr.nodes[o]
			fromSeq := pe.applied[o]
			pgc := pg
			n.sendFromProc(p, reasonPrefetch, o, requestWireBytes, func() {
				owner.serveDiffReq(n.id, pgc, fromSeq, true, op)
			})
		}
		n.pr.sp.Detach(n.id, op)
	}
}
