package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsm96/internal/core"
)

// TestStoreObjectVerification pins the content-addressed read path:
// what comes out hashes to its name, or nothing comes out.
func TestStoreObjectVerification(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sha, size, err := st.PutObject(func(w io.Writer) error {
		_, werr := io.WriteString(w, "artifact body\n")
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len("artifact body\n")) {
		t.Fatalf("size %d", size)
	}
	data, err := st.GetObject(sha)
	if err != nil || string(data) != "artifact body\n" {
		t.Fatalf("read back: %q, %v", data, err)
	}
	// Corrupt it in place: the read must refuse.
	if err := os.WriteFile(st.objectPath(sha), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetObject(sha); err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("corrupted object served: %v", err)
	}
	if _, err := st.GetObject("../../etc/passwd"); err == nil {
		t.Fatal("malformed object name accepted")
	}
}

// TestStoreFailureLatch pins degraded-mode semantics: the first write
// failure latches, and every later durable operation refuses with
// ErrStoreFailed while reads keep working.
func TestStoreFailureLatch(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := &JobRecord{Schema: RecordSchema, Key: "k1", State: StateDone}
	if err := st.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	st.setWriteHook(func(string) error { return errors.New("io error") })
	if err := st.PutRecord(rec); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("hooked write: %v", err)
	}
	st.setWriteHook(nil) // the latch, not the hook, must hold the failure
	if err := st.PutRecord(rec); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("latch released: %v", err)
	}
	if !st.Failed() {
		t.Fatal("Failed() false after latched failure")
	}
	if got, err := st.GetRecord("k1"); err != nil || got == nil {
		t.Fatalf("read path broken in degraded mode: %v", err)
	}
}

// TestStoreRecoveryProperty is the randomized crash-recovery property
// test: a server is killed (every durable write fails from a random
// countdown on — byte-for-byte what a dead process leaves, since ops
// are atomic) at an arbitrary lifecycle point under concurrent load,
// crash debris is scattered on top, and a restart must repair the store
// to a consistent state: no temp files, no running/failed records, no
// unreferenced or torn artifacts, no lost or duplicated done jobs —
// and a full resubmission reaches done with pre-crash results served
// byte-identically from cache.
func TestStoreRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			root := t.TempDir()
			specs := []*JobSpec{
				tinyJob("tsp", 2), tinyJob("tsp", 4), tinyJob("radix", 2),
				tinyJob("water", 2), tinyJob("em3d", 4), tinyJob("ocean", 2),
			}

			// Phase 1: a loaded server crashes at a random write op.
			srv, err := NewServer(root, Options{Workers: 2, QueueCap: 32,
				Run: func(job *ResolvedJob) (*core.Result, error) { return fakeResult(job), nil }})
			if err != nil {
				t.Fatal(err)
			}
			var ops int32
			crashAfter := int32(rng.Intn(20))
			srv.Store().setWriteHook(func(string) error {
				if atomic.AddInt32(&ops, 1) > crashAfter {
					return errors.New("simulated crash")
				}
				return nil
			})
			hs := httptest.NewServer(srv.Handler())
			c := &Client{Base: hs.URL, sleep: func(time.Duration) {}, BusyRetries: 2}
			for _, spec := range specs {
				c.Submit(spec, false) // 503/429 after the "crash" are expected; ignore
			}
			srv.Drain()
			hs.Close()

			// The on-disk state now is exactly the crash-point prefix.
			// Record which jobs had committed as done before scattering
			// debris a hard kill could also leave.
			preStore, err := OpenStore(root)
			if err != nil {
				t.Fatal(err)
			}
			preRecs, err := preStore.ListRecords()
			if err != nil {
				t.Fatal(err)
			}
			doneBefore := map[string]string{} // key -> artifact sha
			for _, r := range preRecs {
				if r.State == StateDone && r.Result != nil {
					doneBefore[r.Key] = r.Result.MetricsSHA256
				}
			}
			debris := []string{
				filepath.Join(root, "jobs", "half.json.tmp-1234"),
				filepath.Join(root, "objects", "obj.tmp-99"),
				filepath.Join(root, "manifest.json.tmp-7"),
			}
			for _, p := range debris {
				if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(root, "jobs", "garbage.json"), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
			orphan := []byte("artifact nobody committed")
			orphanPath := filepath.Join(root, "objects", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
			if err := os.WriteFile(orphanPath, orphan, 0o644); err != nil {
				t.Fatal(err)
			}

			// Phase 2: restart recovery scan.
			st2, err := OpenStore(root)
			if err != nil {
				t.Fatal(err)
			}
			rep, backlog, err := st2.Recover(3)
			if err != nil {
				t.Fatal(err)
			}
			if rep.CorruptRemoved < 1 {
				t.Errorf("corrupt record survived: %+v", rep)
			}
			if rep.TmpRemoved < len(debris) {
				t.Errorf("tmp debris survived: %+v", rep)
			}
			var tmps []string
			filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err == nil && strings.Contains(d.Name(), ".tmp-") {
					tmps = append(tmps, p)
				}
				return nil
			})
			if len(tmps) > 0 {
				t.Errorf("temp files after recovery: %v", tmps)
			}
			if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
				t.Error("unreferenced object survived GC")
			}
			recs, err := st2.ListRecords()
			if err != nil {
				t.Fatal(err)
			}
			referenced := map[string]bool{}
			for _, r := range recs {
				switch r.State {
				case StateDone:
					if r.Result == nil {
						t.Fatalf("done record %s without result", r.Key)
					}
					if _, err := st2.GetObject(r.Result.MetricsSHA256); err != nil {
						t.Errorf("done record %s vouches for bad artifact: %v", r.Key, err)
					}
					referenced[r.Result.MetricsSHA256] = true
				case StatePending, StateQuarantined:
				default:
					t.Errorf("record %s rests in %s after recovery", r.Key, r.State)
				}
			}
			// No done job committed before the crash may be lost.
			for key, sha := range doneBefore {
				found := false
				for _, r := range recs {
					if r.Key == key && r.State == StateDone && r.Result.MetricsSHA256 == sha {
						found = true
					}
				}
				if !found {
					t.Errorf("done job %s lost by recovery", key)
				}
			}
			objs, _ := os.ReadDir(filepath.Join(root, "objects"))
			for _, o := range objs {
				if !referenced[o.Name()] {
					t.Errorf("object %s referenced by no done record", o.Name())
				}
			}
			for _, b := range backlog {
				if b.State != StatePending {
					t.Errorf("backlog entry %s in state %s", b.Key, b.State)
				}
			}
			// Idempotence: a second scan finds nothing left to repair.
			rep2, _, err := st2.Recover(3)
			if err != nil {
				t.Fatal(err)
			}
			if rep2.TmpRemoved != 0 || rep2.CorruptRemoved != 0 || rep2.ObjectsRemoved != 0 || rep2.ResultsInvalidated != 0 {
				t.Errorf("second recovery still repairing: %+v", rep2)
			}
			if rep2.Done != rep.Done {
				t.Errorf("second recovery sees %d done, first saw %d", rep2.Done, rep.Done)
			}

			// Phase 3: a healthy restart finishes the backlog and serves
			// pre-crash results from cache, byte-identical.
			srv3, err := NewServer(root, Options{Workers: 2, QueueCap: 32,
				Run: func(job *ResolvedJob) (*core.Result, error) { return fakeResult(job), nil }})
			if err != nil {
				t.Fatal(err)
			}
			hs3 := httptest.NewServer(srv3.Handler())
			c3 := &Client{Base: hs3.URL, sleep: func(time.Duration) {}}
			for _, spec := range specs {
				st, err := c3.Submit(spec, true)
				if err != nil {
					t.Fatalf("resubmit: %v", err)
				}
				if st.State != StateDone || st.Result == nil {
					t.Fatalf("resubmit rests in %s", st.State)
				}
				if wantSha, was := doneBefore[st.Key]; was {
					if st.Result.MetricsSHA256 != wantSha {
						t.Errorf("job %s re-ran to a different artifact: %s vs %s", st.Key, st.Result.MetricsSHA256, wantSha)
					}
					art, err := c3.Artifact(st.Result.MetricsSHA256)
					if err != nil {
						t.Fatal(err)
					}
					disk, err := st2.GetObject(wantSha)
					if err != nil || !bytes.Equal(art, disk) {
						t.Errorf("cached artifact for %s not byte-identical: %v", st.Key, err)
					}
				}
			}
			srv3.Drain()
			hs3.Close()
		})
	}
}
