package aurc_test

import (
	"testing"

	"dsm96/internal/aurc"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
)

// pairApp: two processors ping-pong increments on one page under a lock —
// the pairwise-sharing sweet spot (no page fetches needed once mapped).
type pairApp struct {
	total  int
	cell   int64
	result float64
}

func (a *pairApp) Name() string { return "pair" }
func (a *pairApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.cell = h.AllocPages(1)
}
func (a *pairApp) Body(env *dsm.Env) {
	for r := env.ID; r < a.total; r += env.NProcs() {
		env.Lock(1)
		env.WI(a.cell, env.RI(a.cell)+1)
		env.Unlock(1)
	}
	env.Barrier(0)
	if env.ID == 0 {
		a.result = float64(env.RI(a.cell))
	}
	env.Barrier(1)
}
func (a *pairApp) Result() float64 { return a.result }

// spreadApp: every processor updates its stripe of a shared array and
// everyone reads everything — forces the home-based (>2 sharers) phase.
type spreadApp struct {
	n      int
	iters  int
	data   int64
	result float64
}

func (a *spreadApp) Name() string { return "spread" }
func (a *spreadApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.data = h.AllocPages((4*a.n + 4095) / 4096)
}
func (a *spreadApp) Body(env *dsm.Env) {
	np := env.NProcs()
	for it := 0; it < a.iters; it++ {
		for i := env.ID; i < a.n; i += np {
			env.WI(a.data+int64(4*i), env.RI(a.data+int64(4*i))+1)
		}
		env.Barrier(it)
	}
	if env.ID == 0 {
		total := 0
		for i := 0; i < a.n; i++ {
			total += env.RI(a.data + int64(4*i))
		}
		a.result = float64(total)
	}
	env.Barrier(1000)
}
func (a *spreadApp) Result() float64 { return a.result }

func cfgN(procs int) params.Config {
	c := params.Default()
	c.Processors = procs
	return c
}

func TestPairwiseCounter(t *testing.T) {
	app := &pairApp{total: 12}
	r, err := core.Run(cfgN(2), core.AURC(false), app)
	if err != nil {
		t.Fatal(err)
	}
	if r.AppResult != 12 {
		t.Fatalf("counter = %v, want 12", r.AppResult)
	}
	// Two sharers: automatic updates keep both copies fresh, so faults
	// should be rare (initial mapping only).
	s := r.Breakdown.Sum()
	if s.PageFaults > 6 {
		t.Errorf("pairwise sharing still took %d page faults", s.PageFaults)
	}
}

func TestHomedSharing(t *testing.T) {
	app := &spreadApp{n: 4096, iters: 2}
	r, err := core.Run(cfgN(4), core.AURC(false), app)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(4096 * 2)
	if r.AppResult != want {
		t.Fatalf("result = %v, want %v", r.AppResult, want)
	}
	s := r.Breakdown.Sum()
	if s.PageFaults == 0 {
		t.Error("homed sharing produced no page fetches")
	}
	if s.DiffsCreated != 0 || s.TwinsCreated != 0 {
		t.Error("AURC must not create diffs or twins")
	}
}

func TestAURCWithPrefetch(t *testing.T) {
	app := &spreadApp{n: 8192, iters: 3}
	r, err := core.Run(cfgN(4), core.AURC(true), app)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Breakdown.Sum()
	if s.Prefetches == 0 {
		t.Error("AURC+P issued no prefetches")
	}
}

func TestAURCDeterminism(t *testing.T) {
	run := func() int64 {
		app := &spreadApp{n: 2048, iters: 2}
		r, err := core.Run(cfgN(4), core.AURC(false), app)
		if err != nil {
			t.Fatal(err)
		}
		return r.RunningTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestDirectoryStateMachine(t *testing.T) {
	// Directly exercise the directory: private -> pairwise -> home-based,
	// with a stable home (the first sharer).
	cfg := cfgN(4)
	eng := sim.NewEngine()
	net := network.New(&cfg, eng, 4)
	pr := aurc.New(&cfg, eng, net, false)
	d := pr.TouchDirectoryForTest(0, 0)
	if got := d.Phase(); got != 0 { // private
		t.Fatalf("phase after 1 sharer = %d", got)
	}
	if d.RouteTo(0) != -1 {
		t.Fatal("sole sharer should propagate nowhere")
	}
	d = pr.TouchDirectoryForTest(0, 1)
	if !d.IsPairwise() || d.RouteTo(0) != 1 || d.RouteTo(1) != 0 {
		t.Fatal("two sharers should map bi-directionally")
	}
	// Third sharer: revert to write-through to the (stable) home.
	d = pr.TouchDirectoryForTest(0, 2)
	if !d.IsHomed() || d.Home() != 0 {
		t.Fatalf("third sharer should force home-based write-through at home 0, got phase=%d home=%d", d.Phase(), d.Home())
	}
	if d.RouteTo(0) != -1 {
		t.Fatal("home routed to itself")
	}
	if d.RouteTo(1) != 0 || d.RouteTo(2) != 0 {
		t.Fatal("non-home writers must route to home")
	}
	// Re-touching by an existing sharer changes nothing.
	d = pr.TouchDirectoryForTest(0, 2)
	if !d.IsHomed() || d.Home() != 0 {
		t.Fatal("repeat touch changed directory state")
	}
}

func TestUpdateTrafficExists(t *testing.T) {
	app := &pairApp{total: 10}
	r, err := core.Run(cfgN(2), core.AURC(false), app)
	if err != nil {
		t.Fatal(err)
	}
	// Updates plus lock traffic; updates dominate messages for this app.
	if r.Messages < 10 {
		t.Errorf("expected automatic-update traffic, got %d messages", r.Messages)
	}
}
