# Development targets for the dsm96 simulator. `make check` is the
# pre-commit gate: formatting, vet, build, the full test suite, and the
# race detector over the packages that exercise goroutine handoffs.

GO ?= go

.PHONY: check fmt vet build test race bench golden fuzz docs

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine couples each simulated processor to a goroutine; the race
# detector over the simulator and the concurrent experiment driver is the
# cheapest way to catch an accidental second runnable goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/...

# Engine throughput benchmark (see EXPERIMENTS.md for the methodology).
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineEventsPerSec -benchtime 20x -count 3 .

# Regenerate the golden cycle totals after an INTENTIONAL timing change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenCycles -update-golden

# Exploratory fuzzing beyond the checked-in corpus.
fuzz:
	$(GO) test ./internal/randprog -fuzz FuzzRandprog -fuzztime 30s

# Docs gate: vet + formatting, every example builds, and the prose in
# README/ARCHITECTURE/EXPERIMENTS references only make targets and
# paths that actually exist (scripts/checkdocs.sh).
docs: fmt vet
	$(GO) build ./examples/...
	sh scripts/checkdocs.sh
