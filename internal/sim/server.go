package sim

// Priority levels for Server jobs. Lower value = more urgent.
const (
	PriorityHigh = 0 // demand requests a processor is stalled on
	PriorityLow  = 1 // prefetches and other deferrable work
)

// Job is a unit of work submitted to a Server. Service is the busy time
// the job occupies the server for; Run, if non-nil, executes in engine
// context when service *begins* (it may itself compute a service time and
// return it, superseding Service); Done, if non-nil, executes in engine
// context when service completes.
type Job struct {
	Name     string
	Priority int
	Service  Time
	// Run is called when the job is dispatched; if it returns a
	// non-negative duration, that duration replaces Service. This lets
	// job cost depend on state at dispatch time (e.g. how many words a
	// DMA diff scan must read), not at submission time.
	Run  func() Time
	Done func()

	submitted Time
	seq       uint64
}

// Server is a single non-preemptive server with a two-level priority
// queue: high-priority jobs always dispatch before low-priority ones, and
// FIFO order applies within a level. It models the protocol controller's
// RISC core working through its command queue, where prefetches carry low
// priority so that demand requests overtake them (Section 3.1 of the
// paper).
type Server struct {
	Name string

	// Trace, when non-nil, observes every service window as it is
	// dispatched: the job's name and its [start, end) occupancy of the
	// server. It is the timeline recorder's controller-occupancy feed
	// (internal/timeline); purely observational, it must not touch
	// simulation state. Nil costs one branch per dispatch.
	Trace func(job string, start, end Time)

	high, low []*Job
	busy      bool

	// cur is the job in service on the reusable completion path, and
	// completeFn its engine callback, bound once: a single-server queue
	// has at most one job in service, so the completion closure need not
	// be allocated per job.
	cur        *Job
	completeFn func()

	busyCycles Time
	jobsDone   uint64
	waitTotal  Time
	seq        uint64
}

// Submit enqueues a job; if the server is idle it starts at once.
// Engine context (or process context — it never blocks the caller).
func (s *Server) Submit(e *Engine, j *Job) {
	s.seq++
	j.seq = s.seq
	j.submitted = e.now
	switch j.Priority {
	case PriorityHigh:
		s.high = append(s.high, j)
	default:
		s.low = append(s.low, j)
	}
	if !s.busy {
		s.dispatch(e)
	}
}

// QueueLen returns the number of queued (not yet started) jobs.
func (s *Server) QueueLen() int { return len(s.high) + len(s.low) }

// Busy reports whether a job is currently in service.
func (s *Server) Busy() bool { return s.busy }

// BusyCycles returns the total cycles the server spent servicing jobs.
func (s *Server) BusyCycles() Time { return s.busyCycles }

// JobsDone returns the number of completed jobs.
func (s *Server) JobsDone() uint64 { return s.jobsDone }

// AvgQueueWait returns the mean cycles jobs waited before dispatch.
func (s *Server) AvgQueueWait() float64 {
	if s.jobsDone == 0 {
		return 0
	}
	return float64(s.waitTotal) / float64(s.jobsDone)
}

func (s *Server) dispatch(e *Engine) {
	var j *Job
	switch {
	case len(s.high) > 0:
		j = s.high[0]
		copy(s.high, s.high[1:])
		s.high = s.high[:len(s.high)-1]
	case len(s.low) > 0:
		j = s.low[0]
		copy(s.low, s.low[1:])
		s.low = s.low[:len(s.low)-1]
	default:
		return
	}
	s.busy = true
	s.waitTotal += e.now - j.submitted
	d := j.Service
	if j.Run != nil {
		if rd := j.Run(); rd >= 0 {
			d = rd
		}
	}
	if d < 0 {
		d = 0
	}
	if s.Trace != nil {
		s.Trace(j.Name, e.now, e.now+d)
	}
	s.busyCycles += d
	if s.cur == nil {
		s.cur = j
		if s.completeFn == nil {
			s.completeFn = func() {
				j := s.cur
				s.cur = nil
				s.complete(e, j)
			}
		}
		e.After(d, s.completeFn)
		return
	}
	// A Done callback re-submitted to this server mid-completion, so two
	// services overlap (a pre-existing quirk this fast path must not
	// change): fall back to a dedicated closure for the extra job.
	e.After(d, func() { s.complete(e, j) })
}

// complete finishes job j's service and dispatches the next job.
func (s *Server) complete(e *Engine, j *Job) {
	s.busy = false
	s.jobsDone++
	if j.Done != nil {
		j.Done()
	}
	s.dispatch(e)
}
