package stats

import (
	"fmt"
	"sort"
	"strings"
)

// PageProfile aggregates one shared page's protocol activity across the
// whole run — the per-page view DSM analyses are built on (which pages
// are hot, how many processors write them, how much diff traffic they
// cause).
type PageProfile struct {
	Page          int
	Faults        uint64
	WriteFaults   uint64
	Invalidations uint64
	DiffsApplied  uint64
	WordsApplied  uint64
	// Writers and Readers are bitmasks of processors that wrote/read the
	// page (bit i = processor i; machines larger than 64 saturate).
	Writers uint64
	Readers uint64
}

// SharingDegree returns the number of distinct writers.
func (p *PageProfile) SharingDegree() int { return popcount(p.Writers) }

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// PageProfiler is implemented by protocols that collect per-page
// activity.
type PageProfiler interface {
	PageProfiles() []PageProfile
}

// FormatPageProfiles renders the top-n pages by fault count.
func FormatPageProfiles(profiles []PageProfile, n int) string {
	sorted := append([]PageProfile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Faults != sorted[j].Faults {
			return sorted[i].Faults > sorted[j].Faults
		}
		return sorted[i].Page < sorted[j].Page
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	var sb strings.Builder
	sb.WriteString("  page   faults  wfaults  invals  diffs   words  writers readers\n")
	for _, p := range sorted[:n] {
		fmt.Fprintf(&sb, "  %-6d %6d  %7d %7d %6d %7d %8d %7d\n",
			p.Page, p.Faults, p.WriteFaults, p.Invalidations,
			p.DiffsApplied, p.WordsApplied, popcount(p.Writers), popcount(p.Readers))
	}
	return sb.String()
}
