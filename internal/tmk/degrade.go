package tmk

import (
	"dsm96/internal/faults"
	"dsm96/internal/trace"
)

// Controller failure and per-node graceful degradation.
//
// A node whose protocol controller crashes (or wedges past the submit
// timeout) does not take the run down: the first expired doorbell
// watchdog fires the controller's OnFailover hook, which flips the node
// to inline software protocol handling — the Base/P code paths it
// already contains. Concretely, a degraded node
//
//   - sends messages from the computation processor (CPU pays the
//     messaging overhead instead of issuing controller commands),
//   - twins pages in software instead of arming write bit vectors or
//     DMA-copying twins into controller DRAM,
//   - creates and applies diffs on the computation processor (pages
//     whose write vector was armed before the failover are salvaged
//     from the still-functional passive snoop hardware),
//   - stops issuing prefetches (the low-priority queue that keeps
//     prefetch traffic out of demand requests' way died with the
//     controller core).
//
// Remote nodes notice nothing but slower service: the wire protocol is
// unchanged, so a degraded node interoperates with healthy ones and the
// run's final memory image stays oracle-correct.

// InstallCtrlFaults arms the plan's per-node controller failure
// schedules. Nodes without a schedule — and every node of a variant
// without controllers — keep the structurally-absent nil schedule, so
// their submit path stays bit-identical to a build without fault
// injection. Must be called before the run starts.
func (pr *Protocol) InstallCtrlFaults(plan *faults.Plan) {
	if plan == nil || !pr.mode.Ctrl() {
		return
	}
	for _, n := range pr.nodes {
		cf, ok := plan.Ctrl[n.id]
		if !ok || !cf.Active() {
			continue
		}
		sched := cf
		n.ctl.Sched = &sched
		n.ctl.OnFailover = n.failover
	}
}

// ctrlOK reports whether protocol work may be handed to this node's
// controller. Equal to mode.Ctrl() while the controller is healthy, so
// fault-free schedules are untouched.
func (n *pnode) ctrlOK() bool { return n.pr.mode.Ctrl() && !n.degraded }

// failover flips the node to software protocol handling. Runs in engine
// context when the first submit timeout expires; idempotent.
func (n *pnode) failover() {
	if n.degraded {
		return
	}
	n.degraded = true
	n.degradedAt = n.eng.Now()
	n.st.ControllerFailovers++
	n.emit(-1, trace.KindOther, "controller failover: inline software protocol handling from here on")
	n.pr.rec.Degraded(n.id, n.degradedAt)
}

// softWireSend is the software send path for engine-context work whose
// message counters were already bumped (sendAsync, and the fallbacks of
// swallowed controller send commands): the computation processor pays
// the messaging overhead on its interrupt timeline, then the message
// enters the reliable transport.
func (n *pnode) softWireSend(dst, bytes int, deliver func()) {
	_, end := n.cpu.Reserve(n.eng, n.pr.cfg.MessagingOverhead)
	n.eng.At(end, func() {
		n.pr.net.SendReliable(n.id, dst, bytes, 0, deliver)
	})
}
