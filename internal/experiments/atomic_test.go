package experiments

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"ok\":true}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{\"ok\":true}\n" {
		t.Fatalf("content %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}

// TestWriteFileAtomicKilledMidWrite simulates a worker dying partway
// through an artifact write (the write callback errors after emitting
// some bytes): the destination must keep its previous content and no
// temporary file may survive.
func TestWriteFileAtomicKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell-0001.json")
	if err := os.WriteFile(path, []byte("old complete artifact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("worker killed")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, strings.Repeat("partial ", 512)); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old complete artifact\n" {
		t.Fatalf("destination clobbered: %q", got)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind after failed write: %v", ents)
	}
}
