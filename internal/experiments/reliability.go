package experiments

import (
	"fmt"
	"strings"

	"dsm96/internal/core"
	"dsm96/internal/faults"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// The reliability sweep: the paper evaluates its protocols on a
// perfectly reliable mesh, but their overheads live exactly where a
// network of workstations loses, duplicates, and reorders packets. This
// sweep runs {Base, I+P+D, AURC} × {tsp, em3d} over increasing message
// loss and reports the slowdown and the transport's recovery work — a
// scenario the paper could not explore.

// ReliabilityPoint is one (application × protocol × loss rate) run.
type ReliabilityPoint struct {
	App      string
	Protocol string
	// LossPct is the drop probability in percent (the x axis). The plan
	// also duplicates at half and delays at the same rate, so the axis
	// reads "how bad is the network", anchored by loss.
	LossPct float64
	// Norm is running time normalized to the same app × protocol at
	// loss 0 (1.00 = no degradation).
	Norm   float64
	Cycles int64
	Rel    stats.Reliability
}

// ReliabilityPlan builds the fault plan the sweep uses for a loss
// percentage: drop at the given rate, duplicate at half of it, delay at
// the full rate. A 0% plan is disabled by construction (pass-through).
func ReliabilityPlan(seed uint64, lossPct float64) *faults.Plan {
	rate := lossPct / 100
	return &faults.Plan{
		Seed:    seed,
		Default: faults.Link{Drop: rate, Dup: rate / 2, Delay: rate},
	}
}

// ReliabilitySweep runs the sweep under one fault seed. Every point is
// oracle-validated by core.Run; an error therefore also means a
// correctness escape, not just a crash.
func ReliabilitySweep(sc Scale, seed uint64, lossPcts []float64) ([]ReliabilityPoint, error) {
	appNames := []string{"tsp", "em3d"}
	protos := []core.Spec{core.TM(tmk.Base), core.TM(tmk.IPD), core.AURC(false)}
	idx := func(ai, pi, li int) int { return (ai*len(protos)+pi)*len(lossPcts) + li }
	runs := make([]Run, len(appNames)*len(protos)*len(lossPcts))
	var specs []runSpec
	for ai, name := range appNames {
		for pi, proto := range protos {
			for li, loss := range lossPcts {
				sp := proto
				sp.Faults = ReliabilityPlan(seed, loss)
				specs = append(specs, runSpec{
					app: name, spec: sp, cfg: baseConfig(), scale: sc,
					out: &runs[idx(ai, pi, li)],
				})
			}
		}
	}
	execute(specs)
	var out []ReliabilityPoint
	for ai, name := range appNames {
		for pi := range protos {
			var denom float64
			for li, loss := range lossPcts {
				r := runs[idx(ai, pi, li)]
				if r.Err != nil {
					return nil, fmt.Errorf("reliability %s/%s loss=%v%%: %w", name, r.Protocol, loss, r.Err)
				}
				if li == 0 {
					denom = float64(r.Result.RunningTime)
				}
				out = append(out, ReliabilityPoint{
					App:      name,
					Protocol: r.Protocol,
					LossPct:  loss,
					Norm:     float64(r.Result.RunningTime) / denom,
					Cycles:   r.Result.RunningTime,
					Rel:      r.Result.Reliability,
				})
			}
		}
	}
	return out, nil
}

// FormatReliability renders the sweep as a table: one row per run, with
// the degradation metrics the transport collected.
func FormatReliability(seed uint64, pts []ReliabilityPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Reliability sweep (fault seed %d): slowdown and recovery work under message loss\n", seed)
	fmt.Fprintf(&sb, "  %-5s %-7s %6s %7s %12s %8s %8s %8s %8s\n",
		"app", "proto", "loss%", "norm", "cycles", "dropped", "retries", "timeouts", "dupdrops")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %-5s %-7s %6.2f %7.3f %12d %8d %8d %8d %8d\n",
			p.App, p.Protocol, p.LossPct, p.Norm, p.Cycles,
			p.Rel.MessagesDropped, p.Rel.Retries, p.Rel.TimeoutsFired, p.Rel.DuplicatesDropped)
	}
	return sb.String()
}

// DefaultLossPcts is the sweep's default x axis (percent loss).
func DefaultLossPcts() []float64 { return []float64{0, 0.5, 1, 2, 5} }
