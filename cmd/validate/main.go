// Command validate runs the repository's correctness gates outside the
// test harness: every application under every protocol at several
// machine sizes, plus a batch of random data-race-free programs, all
// checked against the sequential oracle. Exit status 0 means every
// configuration validated.
//
// Usage:
//
//	validate [-procs 4,16] [-seeds 8] [-scale tiny]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/randprog"
	"dsm96/internal/tmk"
)

func protocols() []core.Spec {
	return []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.ID),
		core.TM(tmk.P), core.TM(tmk.IP), core.TM(tmk.IPD),
		core.AURC(false), core.AURC(true),
	}
}

func main() {
	procsFlag := flag.String("procs", "4,16", "comma-separated machine sizes")
	seeds := flag.Int("seeds", 4, "random-program seeds to fuzz")
	scale := flag.String("scale", "tiny", "application scale: tiny, default")
	flag.Parse()

	var sizes []int
	for _, tok := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "validate: bad -procs %q\n", *procsFlag)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	total, failed := 0, 0
	check := func(name string, spec core.Spec, procs int, run func() error) {
		total++
		if err := run(); err != nil {
			failed++
			fmt.Printf("FAIL %-14s %-16s %2dp: %v\n", name, spec, procs, err)
		}
	}

	for _, name := range apps.Names() {
		for _, spec := range protocols() {
			for _, procs := range sizes {
				name, spec, procs := name, spec, procs
				check(name, spec, procs, func() error {
					var app, err = apps.Tiny(name)
					if *scale == "default" {
						app, err = apps.Default(name)
					}
					if err != nil {
						return err
					}
					cfg := params.Default()
					cfg.Processors = procs
					_, err = core.Run(cfg, spec, app)
					return err
				})
			}
		}
	}

	for seed := 1; seed <= *seeds; seed++ {
		for _, spec := range protocols() {
			for _, procs := range sizes {
				seed, spec, procs := seed, spec, procs
				check(fmt.Sprintf("randprog-%d", seed), spec, procs, func() error {
					prog := randprog.New(uint64(seed), 12, 4096, 4)
					cfg := params.Default()
					cfg.Processors = procs
					_, err := core.Run(cfg, spec, prog)
					return err
				})
			}
		}
	}

	fmt.Printf("validate: %d configurations, %d failures\n", total, failed)
	if failed > 0 {
		os.Exit(1)
	}
}
