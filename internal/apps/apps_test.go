package apps_test

import (
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

func TestRegistryNames(t *testing.T) {
	names := apps.Names()
	if len(names) != 6 {
		t.Fatalf("expected the paper's 6 applications, got %v", names)
	}
	for _, n := range names {
		if _, err := apps.Default(n); err != nil {
			t.Errorf("Default(%q): %v", n, err)
		}
		if _, err := apps.Tiny(n); err != nil {
			t.Errorf("Tiny(%q): %v", n, err)
		}
	}
	if _, err := apps.Default("nope"); err == nil {
		t.Error("unknown app did not error")
	}
}

func TestSequentialResultsStable(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a1, _ := apps.Tiny(name)
			a2, _ := apps.Tiny(name)
			r1 := dsm.RunSequential(a1, 4096)
			r2 := dsm.RunSequential(a2, 4096)
			if r1 != r2 {
				t.Fatalf("sequential result not reproducible: %v vs %v", r1, r2)
			}
			if r1 == 0 {
				t.Fatalf("suspicious zero result for %s", name)
			}
		})
	}
}

func TestTSPKnownOptimum(t *testing.T) {
	// Brute-force the same instance independently.
	app := apps.NewTSP(7)
	got := dsm.RunSequential(app, 4096)
	want := bruteForceTSP(7)
	if got != float64(want) {
		t.Fatalf("TSP = %v, brute force = %d", got, want)
	}
}

// bruteForceTSP recomputes the optimum with plain Go over the same
// deterministic distance matrix (replicates the app's generator).
func bruteForceTSP(n int) int {
	app := apps.NewTSP(n)
	dist := app.DistancesForTest()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 1 << 30
	var rec func(k, cost int)
	rec = func(k, cost int) {
		if cost >= best {
			return
		}
		if k == n {
			if total := cost + dist[perm[n-1]][perm[0]]; total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, cost+dist[perm[k-1]][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1, 0)
	return best
}

func TestRadixActuallySorts(t *testing.T) {
	// The radix checksum multiplies by a sortedness flag; a nonzero
	// result therefore proves sorted output.
	app := apps.NewRadix(2048, 64)
	if got := dsm.RunSequential(app, 4096); got == 0 {
		t.Fatal("radix output not sorted (checksum zeroed)")
	}
}

// TestAllAppsUnderBaseTM is the central validation matrix: every
// application's parallel result must match its sequential oracle.
func TestAllAppsUnderBaseTM(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, _ := apps.Tiny(name)
			cfg := params.Default()
			cfg.Processors = 4
			r, err := core.Run(cfg, core.TM(tmk.Base), app)
			if err != nil {
				t.Fatal(err)
			}
			if r.RunningTime <= 0 {
				t.Fatal("no simulated time elapsed")
			}
		})
	}
}

func TestAllAppsUnderIPD(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, _ := apps.Tiny(name)
			cfg := params.Default()
			cfg.Processors = 4
			if _, err := core.Run(cfg, core.TM(tmk.IPD), app); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllAppsUnderAURC(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			app, _ := apps.Tiny(name)
			cfg := params.Default()
			cfg.Processors = 4
			if _, err := core.Run(cfg, core.AURC(false), app); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAppsScaleWithProcs(t *testing.T) {
	// The same tiny instance must validate at several machine sizes.
	for _, procs := range []int{1, 2, 8} {
		app, _ := apps.Tiny("ocean")
		cfg := params.Default()
		cfg.Processors = procs
		if _, err := core.Run(cfg, core.TM(tmk.Base), app); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

func TestPaperConstructorsExist(t *testing.T) {
	checks := []struct {
		name string
		app  dsm.App
	}{
		{"tsp", apps.PaperTSP()},
		{"water", apps.PaperWater()},
		{"radix", apps.PaperRadix()},
		{"barnes", apps.PaperBarnes()},
		{"ocean", apps.PaperOcean()},
		{"em3d", apps.PaperEm3d()},
	}
	for _, c := range checks {
		if c.app.Name() != c.name {
			t.Errorf("paper constructor for %s misnamed: %s", c.name, c.app.Name())
		}
	}
}
