package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: submission order
	e.At(20, func() { got = append(got, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(3, func() {
		times = append(times, e.Now())
		e.After(4, func() { times = append(times, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 3 || times[1] != 7 {
		t.Fatalf("times = %v, want [3 7]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("after Stop n = %d, want 1", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("after resume n = %d, want 2", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(5, func() { n++ })
	e.At(15, func() { n++ })
	e.RunUntil(10)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.RunUntil(20)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

// Property: events fire in nondecreasing time order and equal-time events
// fire in submission order, for arbitrary schedules.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			at := Time(d % 1000)
			seq := i
			e.At(at, func() { fired = append(fired, rec{at, seq}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.seq > b.seq {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: random nested scheduling still drains fully and time never
// goes backwards.
func TestNestedSchedulingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := Time(-1)
		count := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			if e.Now() < last {
				count = -1 << 30
			}
			last = e.Now()
			count++
			if depth <= 0 {
				return
			}
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				d := depth - 1
				e.After(Time(rng.Intn(50)), func() { spawn(d) })
			}
		}
		e.At(0, func() { spawn(6) })
		if err := e.Run(); err != nil {
			return false
		}
		return count > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := &Resource{Name: "bus"}
		var log []Time
		for i := 0; i < 4; i++ {
			id := i
			e.NewProc(id, "p", Time(id), func(p *Proc) {
				for j := 0; j < 5; j++ {
					r.Use(p, 7, "bus")
					log = append(log, p.Now())
					p.Sleep(Time(1 + id))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// fnvFold replicates the engine's fingerprint folding for expected-value
// tests.
func fnvFold(fp uint64, at Time, seq uint64) uint64 {
	fp = (fp ^ uint64(at)) * fnvPrime
	return (fp ^ seq) * fnvPrime
}

// TestElisionMatchesQueuedSchedule pins the park-elision fast path to the
// exact event stream the queued slow path would produce: a lone sleeping
// proc elides every wake, and the resulting fingerprint must equal the
// hand-folded (time, seq) stream of the equivalent queued schedule —
// start event (0,1), wake (5,2), wake (8,3).
func TestElisionMatchesQueuedSchedule(t *testing.T) {
	e := NewEngine()
	e.NewProc(0, "p", 0, func(p *Proc) {
		p.Sleep(5)
		p.Sleep(3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := fnvFold(fnvFold(fnvFold(uint64(fnvOffset), 0, 1), 5, 2), 8, 3)
	if got := e.Fingerprint(); got != want {
		t.Fatalf("fingerprint = %016x, want %016x", got, want)
	}
	if e.Now() != 8 {
		t.Fatalf("now = %d, want 8", e.Now())
	}
	s := e.Stats()
	if s.EventsRun != 3 || s.ElidedParks != 2 || s.Handoffs != 1 {
		t.Fatalf("stats = %+v, want EventsRun=3 ElidedParks=2 Handoffs=1", s)
	}
}

// TestElisionDisabledByPendingEvent checks a sleep does NOT elide past a
// pending event: the competing event must fire during the sleep, in order.
func TestElisionDisabledByPendingEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(3, func() { order = append(order, "mid") })
	e.NewProc(0, "p", 0, func(p *Proc) {
		p.Sleep(5)
		order = append(order, "woke")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "mid" || order[1] != "woke" {
		t.Fatalf("order = %v, want [mid woke]", order)
	}
	if e.Stats().ElidedParks != 0 {
		t.Fatalf("elided %d parks across a pending event", e.Stats().ElidedParks)
	}
}

// TestElisionRespectsRunUntil checks a proc cannot elide its clock past a
// RunUntil boundary: it must park at the limit and resume on the next run.
func TestElisionRespectsRunUntil(t *testing.T) {
	e := NewEngine()
	var woke bool
	e.NewProc(0, "p", 0, func(p *Proc) {
		p.Sleep(100)
		woke = true
	})
	e.RunUntil(50)
	if woke {
		t.Fatal("proc advanced past the RunUntil boundary")
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke || e.Now() != 100 {
		t.Fatalf("woke=%v now=%d, want true/100", woke, e.Now())
	}
}

func nopEvent() {}

// TestSchedulingAllocFree checks the steady-state schedule/fire cycle does
// not allocate: the heap slice's storage is the event pool, so once grown
// it is reused across drains.
func TestSchedulingAllocFree(t *testing.T) {
	e := NewEngine()
	// Warm the heap slice up to its high-water mark.
	for i := 0; i < 64; i++ {
		e.After(Time(i), nopEvent)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(Time(i%7), nopEvent)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("schedule/drain cycle allocated %v times per run, want 0", avg)
	}
}

// TestStatsMaxHeapDepth checks the heap high-water mark tracks the peak
// number of simultaneously pending events.
func TestStatsMaxHeapDepth(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.After(Time(i), nopEvent)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.MaxHeapDepth != 10 {
		t.Fatalf("MaxHeapDepth = %d, want 10", s.MaxHeapDepth)
	}
	if s.EventsRun != 10 {
		t.Fatalf("EventsRun = %d, want 10", s.EventsRun)
	}
}
