// Command ablation runs the design-choice ablations DESIGN.md calls out:
// the prefetch-strategy design space (the study the paper defers to its
// companion report ES-401/96) and the controller command-priority
// ablation (what happens when prefetches are queued like demand
// requests). Rows are normalized to the non-prefetching I+D variant.
//
// Usage:
//
//	ablation [-app water] [-scale default]
//	ablation -all
package main

import (
	"flag"
	"fmt"
	"os"

	"dsm96/internal/apps"
	"dsm96/internal/experiments"
)

func main() {
	appName := flag.String("app", "water", "application to ablate")
	all := flag.Bool("all", false, "run every application")
	scale := flag.String("scale", "default", "problem scale: tiny, default, paper")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.ScaleTiny
	case "default":
		sc = experiments.ScaleDefault
	case "paper":
		sc = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "ablation: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	names := []string{*appName}
	if *all {
		names = apps.Names()
	}
	for _, name := range names {
		rows, err := experiments.PrefetchAblation(name, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatBreakdownRows(
			fmt.Sprintf("Prefetch-strategy ablation: %s (normalized to I+D, no prefetching)", name), rows))
	}
}
