package core

import (
	"fmt"

	"dsm96/internal/stats"
	"dsm96/internal/timeline"
)

// Metrics converts the result into the machine-readable per-run metrics
// block (timeline.Metrics): the same numbers the dsmsim report prints —
// running time, the per-processor and machine-wide category breakdown,
// every event counter, the reliability block, and the schedule
// fingerprint — as stable snake_case JSON. dsmsim -metrics and the sweep
// command's per-cell output both serialize this. When the run carried a
// spans.Tracker the causal-span report rides along as the optional
// `spans` block.
func (r *Result) Metrics() *timeline.Metrics {
	m := &timeline.Metrics{
		Schema:         timeline.MetricsSchema,
		Spans:          r.Spans,
		App:            r.App,
		Protocol:       r.Protocol,
		Processors:     len(r.Breakdown.PerProc),
		Pages:          len(r.Pages),
		RunningTime:    int64(r.RunningTime),
		EventsRun:      r.EventsRun,
		Fingerprint:    fmt.Sprintf("%016x", r.EventFingerprint),
		Validated:      r.Validated(),
		DiffOpsPercent: r.Breakdown.DiffPercent(),
	}
	for i, ps := range r.Breakdown.PerProc {
		m.PerProc = append(m.PerProc, procCycles(i, ps))
	}
	sum := r.Breakdown.Sum()
	m.Machine = procCycles(-1, sum)
	m.Counters = timeline.Counters{
		SharedReads:       sum.SharedReads,
		SharedWrites:      sum.SharedWrites,
		CacheMisses:       sum.CacheMisses,
		TLBMisses:         sum.TLBMisses,
		WriteBuffStalls:   sum.WriteBuffStalls,
		PageFaults:        sum.PageFaults,
		WriteFaults:       sum.WriteFaults,
		LockAcquires:      sum.LockAcquires,
		Barriers:          sum.Barriers,
		TwinsCreated:      sum.TwinsCreated,
		DiffsCreated:      sum.DiffsCreated,
		DiffsApplied:      sum.DiffsApplied,
		Interrupts:        sum.Interrupts,
		Messages:          r.Messages,
		Bytes:             r.Bytes,
		Prefetches:        sum.Prefetches,
		UsefulPrefetch:    sum.UsefulPrefetch,
		UselessPrefetch:   sum.UselessPrefetch,
		DupMsgsSuppressed: sum.DupMsgsSuppressed,
		PrefetchUseCycles: sum.PrefetchUseCycles,
		PrefetchUseCount:  sum.PrefetchUseCount,
	}
	m.Controller = timeline.ControllerMetrics{
		Failovers:             sum.ControllerFailovers,
		DegradedNodeCycles:    sum.DegradedNodeCycles,
		SoftwareFallbackDiffs: sum.SoftwareFallbackDiffs,
		FallbackJobs:          sum.CtrlFallbackJobs,
	}
	m.Reliability = timeline.ReliabilityMetrics{
		MessagesDropped:    r.Reliability.MessagesDropped,
		MessagesDuplicated: r.Reliability.MessagesDuplicated,
		MessagesDelayed:    r.Reliability.MessagesDelayed,
		TimeoutsFired:      r.Reliability.TimeoutsFired,
		Retries:            r.Reliability.Retries,
		DuplicatesDropped:  r.Reliability.DuplicatesDropped,
		HeldForOrder:       r.Reliability.HeldForOrder,
		AcksSent:           r.Reliability.AcksSent,
		RetryWaitCycles:    r.Reliability.RetryWaitCycles,
	}
	return m
}

// procCycles flattens one processor's category array into the metrics
// row shape (node -1 = machine-wide sum).
func procCycles(node int, ps *stats.ProcStats) timeline.ProcCycles {
	return timeline.ProcCycles{
		Node:  node,
		Busy:  ps.Cycles[stats.Busy],
		Data:  ps.Cycles[stats.Data],
		Synch: ps.Cycles[stats.Synch],
		IPC:   ps.Cycles[stats.IPC],
		Other: ps.Cycles[stats.Other],
		Total: ps.Total(),
	}
}
