// Command experiment is the reproducible experiment pipeline's CLI: it
// runs the named grids of a committed experiments.json
// (dsm96/experiments/v1) into dated run folders, appends per-PR trend
// records that cmd/metricsdiff -trend gates, and regenerates the
// measured tables of EXPERIMENTS.md in place.
//
// Usage:
//
//	experiment -list                         # name every experiment in the spec
//	experiment -run smoke                    # one grid -> runs/<stamp>-smoke/
//	experiment -run all -out /tmp/runs       # every grid
//	experiment -snapshot -label 'PR 8'       # append trends/NNNN.json
//	experiment -snapshot -trend-out new.json # write the record to a file instead
//	experiment -render                       # regenerate EXPERIMENTS.md blocks
//	experiment -render -check                # exit 1 if any block is stale
//	experiment -render -only fig1-speedups,reliability
//
// A run folder holds a manifest.json (host metadata, per-cell
// determinism fingerprints, SHA-256 of every artifact), a canonical
// cells.csv, and one run-metrics JSON per cell, all written atomically
// (temp file + rename). -snapshot runs the trend experiment (-trend-of,
// default "ladder") and folds it into a dsm96/trend/v1 record; compare
// records with metricsdiff -trend. -render regenerates every
// <!-- generated:NAME --> block of EXPERIMENTS.md from fresh
// deterministic simulations; -check compares instead of rewriting, and
// is the staleness gate scripts/checkdocs.sh runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dsm96/internal/experiments"
	"dsm96/internal/pipeline"
)

func main() {
	specPath := flag.String("spec", "experiments.json", "experiments spec file (dsm96/experiments/v1)")
	list := flag.Bool("list", false, "list the experiments in the spec and exit")
	runName := flag.String("run", "", "run this experiment (comma-separated names, or 'all') into a dated run folder")
	outDir := flag.String("out", "runs", "base directory for run folders")
	stamp := flag.String("stamp", "", "run-folder timestamp override (default: current UTC time, 20060102-150405)")
	jobs := flag.Int("j", 0, "simulation worker pool size (0 = one worker per CPU)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	snapshot := flag.Bool("snapshot", false, "run the trend experiment and append a dsm96/trend/v1 record")
	trendOf := flag.String("trend-of", "ladder", "experiment the trend record snapshots")
	trendDir := flag.String("trend-dir", "trends", "trend database directory")
	trendOut := flag.String("trend-out", "", "write the trend record to this file instead of appending to -trend-dir")
	label := flag.String("label", "", "provenance label stored in the trend record")
	render := flag.Bool("render", false, "regenerate the generated blocks of -doc in place")
	check := flag.Bool("check", false, "with -render: compare instead of rewriting; exit 1 naming stale blocks")
	doc := flag.String("doc", "EXPERIMENTS.md", "document holding the generated blocks")
	only := flag.String("only", "", "with -render: comma-separated subset of blocks")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
	}
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	modes := 0
	for _, m := range []bool{*list, *runName != "", *snapshot, *render} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "experiment: pick exactly one of -list, -run, -snapshot, -render")
		flag.Usage()
		os.Exit(2)
	}

	experiments.SetWorkers(*jobs)
	if !*quiet && (*runName != "" || *snapshot) {
		experiments.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexperiment: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	switch {
	case *list:
		spec, err := pipeline.LoadFile(*specPath)
		fail(err)
		for _, e := range spec.Experiments {
			cells, err := e.Expand()
			fail(err)
			fmt.Printf("%-16s %3d cells x %d runs  scale=%-7s %s\n",
				e.Name, len(cells), e.Warmup+e.Repeats, e.Scale, e.Description)
		}

	case *runName != "":
		spec, err := pipeline.LoadFile(*specPath)
		fail(err)
		names := strings.Split(*runName, ",")
		if *runName == "all" {
			names = spec.Names()
		}
		st := *stamp
		if st == "" {
			st = pipeline.Stamp(time.Now())
		}
		failed := 0
		for _, name := range names {
			e, err := spec.Find(strings.TrimSpace(name))
			fail(err)
			res, err := pipeline.RunExperiment(e)
			fail(err)
			folder, err := pipeline.WriteRunFolder(*outDir, st, res)
			fail(err)
			fmt.Printf("experiment: %s: %d cells -> %s\n", e.Name, len(res.Cells), folder)
			for _, id := range res.Failed() {
				fmt.Fprintf(os.Stderr, "experiment: %s: cell %s FAILED\n", e.Name, id)
				failed++
			}
		}
		if failed > 0 {
			fail(fmt.Errorf("%d cell(s) failed", failed))
		}

	case *snapshot:
		spec, err := pipeline.LoadFile(*specPath)
		fail(err)
		e, err := spec.Find(*trendOf)
		fail(err)
		res, err := pipeline.RunExperiment(e)
		fail(err)
		seq, err := pipeline.NextTrendSeq(*trendDir)
		fail(err)
		rec, err := pipeline.BuildTrend(res, seq, *label)
		fail(err)
		if *trendOut != "" {
			fail(experiments.WriteFileAtomic(*trendOut, rec.WriteJSON))
			fmt.Printf("experiment: trend record (seq %d, %d cells) -> %s\n", seq, len(rec.Cells), *trendOut)
			return
		}
		path, err := pipeline.AppendTrend(*trendDir, rec)
		fail(err)
		fmt.Printf("experiment: trend record (seq %d, %d cells) -> %s\n", seq, len(rec.Cells), path)

	case *render:
		input, err := os.ReadFile(*doc)
		fail(err)
		if *check {
			if *only != "" {
				fail(fmt.Errorf("-check verifies every block; drop -only"))
			}
			_, changed, err := pipeline.RenderDoc(input)
			fail(err)
			if len(changed) > 0 {
				fail(fmt.Errorf("%s: stale generated block(s): %s (run `go run ./cmd/experiment -render`)",
					*doc, strings.Join(changed, ", ")))
			}
			fmt.Printf("experiment: %s: all generated blocks match a fresh render\n", *doc)
			return
		}
		var names []string
		if *only != "" {
			names = strings.Split(*only, ",")
		}
		output, changed, err := renderSubset(input, names)
		fail(err)
		fail(experiments.WriteFileAtomic(*doc, func(w io.Writer) error {
			_, werr := w.Write(output)
			return werr
		}))
		if len(changed) == 0 {
			fmt.Printf("experiment: %s: generated blocks already current\n", *doc)
		} else {
			fmt.Printf("experiment: %s: regenerated %s\n", *doc, strings.Join(changed, ", "))
		}
	}
}

// renderSubset re-renders all blocks, or only the named ones with the
// rest left untouched.
func renderSubset(input []byte, names []string) ([]byte, []string, error) {
	if len(names) == 0 {
		return pipeline.RenderDoc(input)
	}
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	fresh, err := pipeline.RenderBlocks(names, false)
	if err != nil {
		return nil, nil, err
	}
	return pipeline.PatchDoc(input, fresh)
}
