package timeline

import (
	"bytes"
	"strings"
	"testing"

	"dsm96/internal/stats"
	"dsm96/internal/trace"
)

// TestNilRecorderZeroCost is the structural-zero-cost gate: every
// recording method on a nil *Recorder must be a no-op that allocates
// nothing. Combined with the protocols installing the plain accounting
// hook when no recorder is attached, a disabled timeline cannot perturb
// BenchmarkEngineEventsPerSec's allocation counts or the event schedule.
func TestNilRecorderZeroCost(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.Stall(0, "busy", 0, 10)
		r.Controller(0, "send", 0, 10)
		r.Link(0, 0, 10)
		r.InitLinks(nil)
		if r.Nodes() != 0 || r.ProcSpans(0) != nil || r.ControllerSpans(0) != nil {
			t.Fatal("nil recorder returned data")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %v times per call set, want 0", allocs)
	}
}

// BenchmarkNilRecorder quantifies the disabled-path cost: a nil-receiver
// method call per record point (compare with BenchmarkEngineEventsPerSec
// at the repository root, which runs with no recorder attached at all).
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Stall(0, "busy", 0, 10)
		r.Link(0, 0, 10)
	}
}

// TestPhaseCategoryConsistency pins the reason -> phase -> category
// chain against the protocols' reason -> category accounting: every
// reason string the protocols use must land in the same stats.Category
// via the timeline's phases, or span sums will not reconcile with the
// Breakdown.
func TestPhaseCategoryConsistency(t *testing.T) {
	want := map[string]stats.Category{
		"busy":           stats.Busy,
		"tlb-fill":       stats.Other,
		"cache-miss":     stats.Other,
		"wbuf-full":      stats.Other,
		"interrupt":      stats.Other,
		"page-fetch":     stats.Data,
		"twin":           stats.Data,
		"lock":           stats.Synch,
		"lock-grant":     stats.Synch,
		"barrier":        stats.Synch,
		"prefetch-issue": stats.Synch,
		"ipc-steal":      stats.IPC,
	}
	for reason, cat := range want {
		if got := PhaseForReason(reason).Category(); got != cat {
			t.Errorf("reason %q: phase %v maps to %v, protocols charge %v",
				reason, PhaseForReason(reason), got, cat)
		}
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if strings.Contains(ph.String(), "?") {
			t.Errorf("phase %d has no label", ph)
		}
	}
}

// TestSpanMerging checks adjacency merging on processor and link tracks.
func TestSpanMerging(t *testing.T) {
	r := NewRecorder(2)
	r.Stall(0, "busy", 0, 10)
	r.Stall(0, "busy", 10, 30)       // contiguous same phase: merges
	r.Stall(0, "busy", 40, 50)       // gap: new span
	r.Stall(0, "page-fetch", 50, 70) // contiguous, different phase: new span
	r.Stall(0, "lock", 70, 70)       // zero length: dropped
	if got := len(r.ProcSpans(0)); got != 3 {
		t.Fatalf("got %d spans, want 3: %+v", got, r.ProcSpans(0))
	}
	tot := r.PhaseTotals(0)
	if tot[PhaseCompute] != 40 || tot[PhaseReadFault] != 20 {
		t.Fatalf("bad totals: %v", tot)
	}
	ct := r.CategoryTotals(0)
	if ct[stats.Busy] != 40 || ct[stats.Data] != 20 {
		t.Fatalf("bad category totals: %v", ct)
	}

	r.InitLinks([]string{"l0"})
	r.Link(0, 0, 5)
	r.Link(0, 5, 9) // back-to-back transfers merge
	r.Link(0, 20, 25)
	if got := len(r.links[0]); got != 2 {
		t.Fatalf("got %d link spans, want 2", got)
	}

	// Out-of-range tracks are ignored, not a panic.
	r.Stall(5, "busy", 0, 1)
	r.Controller(-1, "x", 0, 1)
	r.Link(3, 0, 1)
}

// TestWritePerfettoShape sanity-checks the exported JSON: valid shape,
// one slice per span, instants carried through, and byte determinism
// across repeated exports.
func TestWritePerfettoShape(t *testing.T) {
	r := NewRecorder(1)
	r.Stall(0, "busy", 0, 100)
	r.Controller(0, "send", 10, 40)
	r.InitLinks([]string{"n0+x"})
	r.Link(0, 20, 30)
	evs := []trace.Event{{Time: 15, Node: 0, Page: 3, Kind: trace.KindFault, Detail: `read "quoted"`}}

	var a, b bytes.Buffer
	if err := r.WritePerfetto(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePerfetto(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export differs")
	}
	out := a.String()
	for _, want := range []string{
		`"name":"compute"`, `"name":"send"`, `"name":"xfer"`,
		`"name":"fault"`, `"name":"n0+x"`, `read \"quoted\"`,
		`"ph":"M"`, `"ph":"X"`, `"ph":"i"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s:\n%s", want, out)
		}
	}

	// A nil recorder still exports instants (events-only timeline).
	var nilRec *Recorder
	var c bytes.Buffer
	if err := nilRec.WritePerfetto(&c, evs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), `"ph":"i"`) {
		t.Fatal("nil-recorder export lost the instant events")
	}
}
