package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// TestParallelFingerprintMatchesSequential is the determinism wall for
// the sharded event engine: for every application x protocol x worker
// count, the fired event schedule — fingerprint, cycle total, event
// count — and the entire run-metrics JSON artifact must be
// byte-identical to the sequential engine's. AURC pins itself
// sequential (its update path reads remote state inline), so its rows
// prove the fallback is transparent rather than the sharding.
func TestParallelFingerprintMatchesSequential(t *testing.T) {
	specs := []core.Spec{core.TM(tmk.Base), core.TM(tmk.IPD), core.AURC(false)}
	for _, name := range []string{"tsp", "water", "radix"} {
		for _, proto := range specs {
			name, proto := name, proto
			t.Run(fmt.Sprintf("%s/%s", name, proto), func(t *testing.T) {
				t.Parallel()
				var wantFP uint64
				var wantMetrics []byte
				for _, w := range []int{1, 2, 4, 8} {
					app, err := apps.Tiny(name)
					if err != nil {
						t.Fatal(err)
					}
					spec := proto
					spec.Workers = w
					res, err := core.Run(params.Default(), spec, app)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					var buf bytes.Buffer
					if err := res.Metrics().WriteJSON(&buf); err != nil {
						t.Fatalf("workers=%d: metrics: %v", w, err)
					}
					if w == 1 {
						wantFP = res.EventFingerprint
						wantMetrics = buf.Bytes()
						continue
					}
					if res.EventFingerprint != wantFP {
						t.Errorf("workers=%d fingerprint %016x, sequential %016x",
							w, res.EventFingerprint, wantFP)
					}
					if !bytes.Equal(buf.Bytes(), wantMetrics) {
						t.Errorf("workers=%d run-metrics JSON differs from sequential (%d vs %d bytes)",
							w, buf.Len(), len(wantMetrics))
					}
				}
			})
		}
	}
}

// deadlockApp wedges every processor but 0: they block forever on a
// lock that processor 0 acquires and never releases. The sequential
// oracle only runs processor 0's body, so the app itself is "correct";
// the simulated run must be caught by the liveness machinery.
type deadlockApp struct{ addr dsm.Addr }

func (a *deadlockApp) Name() string { return "deadlock" }
func (a *deadlockApp) Setup(h *lrc.Heap) {
	a.addr = h.Alloc(8, 8)
}
func (a *deadlockApp) Body(env *dsm.Env) {
	if env.ID == 0 {
		env.Lock(0)
		env.WI(a.addr, 1)
		env.Compute(1000)
		return // exits holding lock 0
	}
	env.Compute(2000)
	env.Lock(0) // blocks forever
	env.Unlock(0)
}
func (a *deadlockApp) Result() float64 { return 1 }

// TestParallelStallStructured is the liveness satellite for the sharded
// engine: when the mesh wedges under a parallel run the caller gets a
// structured stall report naming the blocked processors — the same
// contract as the sequential engine — never a hung process.
func TestParallelStallStructured(t *testing.T) {
	for _, w := range []int{1, 4} {
		spec := core.TM(tmk.Base)
		spec.Workers = w
		res, err := core.Run(params.Default(), spec, &deadlockApp{})
		if err == nil {
			t.Fatalf("workers=%d: wedged run reported success", w)
		}
		if res == nil || res.Stall == nil {
			t.Fatalf("workers=%d: no structured stall report (err: %v)", w, err)
		}
		if !res.Stall.Deadlock {
			t.Errorf("workers=%d: stall not classified as deadlock: %+v", w, res.Stall)
		}
		if len(res.Stall.Report.Blocked) == 0 {
			t.Errorf("workers=%d: stall report names no blocked processors", w)
		}
	}
}
