package memsys

import (
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// Stall reasons used by FastPath sleeps. Protocol layers install
// sim.Proc.OnUnblock hooks that map these to the paper's time categories.
const (
	ReasonBusy      = "busy"
	ReasonTLBFill   = "tlb-fill"
	ReasonCacheMiss = "cache-miss"
	ReasonWBFull    = "wbuf-full"
)

// FastPath is the per-processor access engine used by the protocols. It
// accumulates busy cycles lazily so that cache hits cost no simulation
// events: the accumulated time is slept (in one event) just before any
// interaction that must observe an accurate clock — a bus reservation, a
// miss, a fault, a synchronization operation.
//
// Unlike Node.Read/Write (which charge stats directly), FastPath charges
// nothing itself: all its stalls go through sim.Proc sleep reasons, so a
// single OnUnblock hook performs the category accounting.
type FastPath struct {
	Node *Node
	lazy sim.Time
}

// NewFastPath wraps a node's memory system.
func NewFastPath(n *Node) *FastPath { return &FastPath{Node: n} }

// AddBusy accumulates busy cycles without a simulation event.
func (f *FastPath) AddBusy(c sim.Time) { f.lazy += c }

// Pending returns the busy cycles accumulated but not yet slept.
func (f *FastPath) Pending() sim.Time { return f.lazy }

// Flush sleeps off the accumulated busy time so the simulated clock
// catches up with the processor's progress.
func (f *FastPath) Flush(p *sim.Proc) {
	if f.lazy > 0 {
		d := f.lazy
		f.lazy = 0
		p.SleepReason(d, ReasonBusy)
	}
}

func (f *FastPath) tlb(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	page := addr / Addr(f.Node.Cfg.PageSize)
	if f.Node.TLB.Access(page) {
		return
	}
	st.TLBMisses++
	f.Flush(p)
	p.SleepReason(f.Node.Cfg.TLBFillTime, ReasonTLBFill)
}

// Read simulates a data read: 1 busy cycle, TLB, then the cache; a miss
// stalls through the memory bus.
func (f *FastPath) Read(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	st.SharedReads++
	f.lazy++
	f.tlb(p, addr, st)
	hit, evictedDirty := f.Node.Cache.Access(addr, false, true)
	if hit {
		return
	}
	st.CacheMisses++
	f.Flush(p)
	if evictedDirty {
		f.Node.MemBus.Reserve(f.Node.Eng, f.Node.Cfg.MemLineTime())
	}
	f.Node.MemBus.Use(p, f.Node.Cfg.MemLineTime(), ReasonCacheMiss)
}

// WriteBack simulates a write under write-back, write-allocate policy.
func (f *FastPath) WriteBack(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	st.SharedWrites++
	f.lazy++
	f.tlb(p, addr, st)
	hit, evictedDirty := f.Node.Cache.Access(addr, true, true)
	if hit {
		return
	}
	st.CacheMisses++
	f.Flush(p)
	if evictedDirty {
		f.Node.MemBus.Reserve(f.Node.Eng, f.Node.Cfg.MemLineTime())
	}
	f.Node.MemBus.Use(p, f.Node.Cfg.MemLineTime(), ReasonCacheMiss)
}

// WriteThrough simulates a write under write-through, no-allocate policy:
// the word drains through the write buffer onto the memory bus (where the
// controller's snoop logic, or the Shrimp interface, observes it). The
// processor stalls only when the write buffer is full.
func (f *FastPath) WriteThrough(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	st.SharedWrites++
	f.lazy++
	f.tlb(p, addr, st)
	f.Node.Cache.Access(addr, false, false)
	f.Flush(p)
	_, drainEnd := f.Node.MemBus.Reserve(f.Node.Eng, f.Node.Cfg.WriteThroughWordTime())
	stall := f.Node.WB.Push(p.Now(), drainEnd)
	if stall > 0 {
		st.WriteBuffStalls++
		p.SleepReason(stall, ReasonWBFull)
	}
}
