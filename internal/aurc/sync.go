package aurc

import (
	"fmt"
	"sort"

	"dsm96/internal/lrc"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/trace"
)

// AURC uses the same interval / write-notice machinery as lazy release
// consistency, but without diffs: a release flushes the write cache (so
// the home nodes hold the interval's modifications) and a notice obliges
// the receiver to refetch the page from its home. The lock and barrier
// structures mirror the TreadMarks implementation (distributed lock queue
// with a static home; centralized barrier manager), with all protocol
// software on the computation processor — AURC's hardware is the
// automatic-update network interface, not a protocol controller.

// closeInterval ends the current interval if this node wrote anything,
// flushing the write cache so the flush timestamps cover the interval.
func (n *anode) closeInterval() *lrc.Interval {
	n.wc.flushAll()
	if len(n.written) == 0 {
		return nil
	}
	pages := make([]int, 0, len(n.written))
	for pg := range n.written {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	n.written = make(map[int]bool)
	seq := n.vts[n.id] + 1
	iv := &lrc.Interval{Owner: n.id, Seq: seq, VTS: n.vts.Clone(), Pages: pages}
	iv.VTS[n.id] = seq
	n.vts[n.id] = seq
	n.ivals[n.id] = append(n.ivals[n.id], iv)
	return iv
}

func (n *anode) storeInterval(iv *lrc.Interval) {
	have := int32(len(n.ivals[iv.Owner]))
	switch {
	case iv.Seq <= have:
		return
	case iv.Seq == have+1:
		n.ivals[iv.Owner] = append(n.ivals[iv.Owner], iv)
	default:
		panic(fmt.Sprintf("aurc: node %d got interval (%d,%d) with only %d stored",
			n.id, iv.Owner, iv.Seq, have))
	}
}

// integrate applies a batch of interval records: invalidate named pages
// (the next access refetches from the home after the update drain) and
// absorb the vector timestamps.
func (n *anode) integrate(ivs []*lrc.Interval) {
	for _, iv := range ivs {
		n.storeInterval(iv)
		if iv.Owner == n.id {
			continue
		}
		// As in the TreadMarks implementation: an interval's notices are
		// skipped only if actually processed before — the vector
		// timestamp can run ahead within a batch and must not be used.
		if iv.Seq <= n.noticed[iv.Owner] {
			continue
		}
		for _, pg := range iv.Pages {
			pe := n.page(pg)
			if pe.applied[iv.Owner] >= iv.Seq {
				continue
			}
			pe.pending = append(pe.pending, lrc.WriteNotice{Page: pg, Owner: iv.Owner, Seq: iv.Seq})
			if pe.state != stInvalid {
				pe.state = stInvalid
				n.pr.profile(pg).Invalidations++
				if pe.prefetchedUnused {
					pe.prefetchedUnused = false
					n.st.UselessPrefetch++
				}
				if n.pr.prefetch && !pe.queuedPrefetch {
					pe.queuedPrefetch = true
					n.prefetchQueue = append(n.prefetchQueue, pg)
				}
			}
		}
		n.noticed[iv.Owner] = iv.Seq
		n.vts.Max(iv.VTS)
	}
}

func (n *anode) missingIntervals(have lrc.VTS, exclude int) []*lrc.Interval {
	var out []*lrc.Interval
	for o := 0; o < len(n.vts); o++ {
		if o == exclude {
			continue
		}
		for s := have[o] + 1; s <= n.vts[o]; s++ {
			out = append(out, n.ivals[o][s-1])
		}
	}
	return out
}

func intervalsWireBytes(ivs []*lrc.Interval, nprocs int) int {
	bytes := 16
	for _, iv := range ivs {
		bytes += 16 + 4*nprocs + lrc.WriteNoticeWireBytes*len(iv.Pages)
	}
	return bytes
}

func (n *anode) listCost(ivs []*lrc.Interval) int64 {
	total := len(ivs)
	for _, iv := range ivs {
		total += len(iv.Pages)
	}
	return n.pr.cfg.ListProcessing * int64(total)
}

// Lock implements dsm.System (same distributed-queue shape as the
// TreadMarks implementation).
func (pr *Protocol) Lock(p *sim.Proc, id int, lock int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	n.st.LockAcquires++
	op := pr.sp.Begin(id, spans.OpLock, lock, p.Now())
	lk := n.lock(lock)
	if lk.hasToken && !lk.inCS && lk.next == nil {
		lk.inCS = true
		p.SleepReason(localLockCost, reasonLock)
		n.emit(-1, trace.KindLock, "acquired lock=%d (cached token)", lock)
		pr.sp.End(op, p.Now())
		return
	}
	gate := &sim.Gate{}
	lk.gate = gate
	home := lock % pr.cfg.Processors
	req := lockReq{from: id, vts: n.vts.Clone(), op: op}
	n.sendFromProc(p, reasonLock, home, requestWireBytes+n.vts.WireBytes(), func() {
		pr.nodes[home].homeForward(lock, req)
	})
	gate.Wait(p, reasonLock)
	pr.sp.End(op, p.Now())
	if pr.prefetch {
		n.issuePrefetches(p)
	}
}

func (n *anode) homeForward(lock int, req lockReq) {
	req.op.Mark(n.pr.eng, spans.StageWire, n.pr.eng.Now())
	lk := n.lock(lock)
	prev := lk.tail
	lk.tail = req.from
	forward := func() { n.pr.nodes[prev].receiveLockReq(lock, req) }
	n.st.Interrupts++
	_, end := n.cpu.Reserve(n.pr.eng, n.pr.cfg.InterruptTime+homeForwardCost)
	if prev == n.id {
		n.pr.eng.At(end, forward)
		return
	}
	n.pr.eng.At(end, func() {
		n.sendAsync(prev, requestWireBytes+req.vts.WireBytes(), forward)
	})
}

func (n *anode) receiveLockReq(lock int, req lockReq) {
	req.op.Mark(n.pr.eng, spans.StageQueue, n.pr.eng.Now())
	lk := n.lock(lock)
	if lk.hasToken && !lk.inCS {
		lk.hasToken = false
		n.grantLockAsync(lock, req)
		return
	}
	lk.next = &req
}

func (n *anode) grantLockAsync(lock int, req lockReq) {
	n.closeInterval()
	ivs := n.missingIntervals(req.vts, req.from)
	bytes := requestWireBytes + n.vts.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors)
	grantVTS := n.vts.Clone()
	requester := n.pr.nodes[req.from]
	n.emit(-1, trace.KindLock, "grant lock=%d to=%d ivs=%d", lock, req.from, len(ivs))
	n.serveCPUSpan(n.listCost(ivs), req.op, func() {
		n.sendAsync(req.from, bytes, func() {
			requester.receiveGrant(lock, ivs, grantVTS, req.op)
		})
	})
}

func (n *anode) grantLockFromProc(p *sim.Proc, lock int, req lockReq) {
	n.closeInterval()
	ivs := n.missingIntervals(req.vts, req.from)
	bytes := requestWireBytes + n.vts.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors)
	grantVTS := n.vts.Clone()
	requester := n.pr.nodes[req.from]
	n.emit(-1, trace.KindLock, "grant lock=%d to=%d ivs=%d", lock, req.from, len(ivs))
	p.SleepReason(n.listCost(ivs), reasonLockGrant)
	n.sendFromProc(p, reasonLockGrant, req.from, bytes, func() {
		requester.receiveGrant(lock, ivs, grantVTS, req.op)
	})
	// From the acquirer's point of view the cycles up to here — waiting
	// out the holder's critical section and the grant assembly — are all
	// remote service.
	req.op.Mark(n.pr.eng, spans.StageRemote, p.Now())
}

func (n *anode) receiveGrant(lock int, ivs []*lrc.Interval, grantVTS lrc.VTS, op *spans.Op) {
	if n.lock(lock).gate == nil {
		// No acquire is waiting: a duplicated grant already handed us the
		// token (see the TreadMarks twin of this guard).
		n.st.DupMsgsSuppressed++
		return
	}
	op.Mark(n.pr.eng, spans.StageReply, n.pr.eng.Now())
	cost := n.pr.cfg.InterruptTime + n.listCost(ivs)
	_, end := n.cpu.Reserve(n.pr.eng, cost)
	n.pr.eng.At(end, func() {
		lk := n.lock(lock)
		if lk.gate == nil {
			n.st.DupMsgsSuppressed++
			return
		}
		n.integrate(ivs)
		n.vts.Max(grantVTS)
		lk.hasToken = true
		lk.inCS = true
		op.Mark(n.pr.eng, spans.StageController, n.pr.eng.Now())
		n.emit(-1, trace.KindLock, "acquired lock=%d ivs=%d", lock, len(ivs))
		lk.gate.Open(n.pr.eng)
		lk.gate = nil
	})
}

// Unlock implements dsm.System.
func (pr *Protocol) Unlock(p *sim.Proc, id int, lock int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	lk := n.lock(lock)
	if !lk.inCS {
		panic("aurc: Unlock without matching Lock")
	}
	// A release must flush the write cache even when nobody waits: the
	// flush timestamps sent across active links cover this interval.
	n.wc.flushAll()
	lk.inCS = false
	n.emit(-1, trace.KindLock, "release lock=%d", lock)
	if lk.next != nil {
		req := *lk.next
		lk.next = nil
		lk.hasToken = false
		rop := pr.sp.Begin(id, spans.OpRelease, lock, p.Now())
		n.grantLockFromProc(p, lock, req)
		pr.sp.End(rop, p.Now())
	}
}

// barrier is the centralized manager state.
type barrier struct {
	arrived   int
	clientVTS []lrc.VTS
}

const barrierManager = 0

func (pr *Protocol) barrierState(id int) *barrier {
	b, ok := pr.bars[id]
	if !ok {
		b = &barrier{clientVTS: make([]lrc.VTS, pr.cfg.Processors)}
		pr.bars[id] = b
	}
	return b
}

// Barrier implements dsm.System.
func (pr *Protocol) Barrier(p *sim.Proc, id int, bar int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	n.st.Barriers++
	op := pr.sp.Begin(id, spans.OpBarrier, bar, p.Now())
	n.barrierOp = op
	n.emit(-1, trace.KindBarrier, "arrive bar=%d", bar)
	n.closeInterval()
	// Ship everything the manager could lack (causally closed batch, as
	// in the TreadMarks implementation).
	own := n.missingIntervals(n.lastBarrierVTS, barrierManager)
	myVTS := n.vts.Clone()
	gate := &sim.Gate{}
	n.barrierGate = gate
	mgr := pr.nodes[barrierManager]
	if id == barrierManager {
		p.SleepReason(n.listCost(own), reasonBarrier)
		mgr.barrierArrive(bar, id, myVTS, own)
	} else {
		bytes := requestWireBytes + myVTS.WireBytes() + intervalsWireBytes(own, pr.cfg.Processors)
		n.sendFromProc(p, reasonBarrier, barrierManager, bytes, func() {
			op.Mark(pr.eng, spans.StageWire, pr.eng.Now())
			mgr.barrierArrive(bar, id, myVTS, own)
		})
	}
	gate.Wait(p, reasonBarrier)
	n.barrierOp = nil
	n.emit(-1, trace.KindBarrier, "depart bar=%d", bar)
	pr.sp.End(op, p.Now())
	if pr.prefetch {
		n.issuePrefetches(p)
	}
}

func (n *anode) barrierArrive(bar, from int, vts lrc.VTS, ivs []*lrc.Interval) {
	b := n.pr.barrierState(bar)
	work := func() {
		n.integrate(ivs)
		b.clientVTS[from] = vts
		b.arrived++
		if b.arrived == n.pr.cfg.Processors {
			b.arrived = 0
			n.barrierReleaseAll(b)
		}
	}
	if from == n.id {
		work()
		return
	}
	n.serveCPU(n.listCost(ivs), work)
}

func (n *anode) barrierReleaseAll(b *barrier) {
	globalVTS := n.vts.Clone()
	for c := 0; c < n.pr.cfg.Processors; c++ {
		client := n.pr.nodes[c]
		ivs := n.missingIntervals(b.clientVTS[c], c)
		if c == n.id {
			client.barrierRelease(ivs, globalVTS, true)
			continue
		}
		bytes := requestWireBytes + globalVTS.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors)
		cv := globalVTS.Clone()
		cl, civs := client, ivs
		n.sendAsync(c, bytes, func() {
			cl.barrierRelease(civs, cv, false)
		})
	}
}

func (n *anode) barrierRelease(ivs []*lrc.Interval, globalVTS lrc.VTS, local bool) {
	n.barrierOp.Mark(n.pr.eng, spans.StageRemote, n.pr.eng.Now())
	finish := func() {
		n.integrate(ivs)
		n.vts.Max(globalVTS)
		n.lastBarrierVTS = globalVTS.Clone()
		if n.barrierGate != nil {
			n.barrierOp.Mark(n.pr.eng, spans.StageController, n.pr.eng.Now())
			g := n.barrierGate
			n.barrierGate = nil
			g.Open(n.pr.eng)
		}
	}
	cost := n.listCost(ivs)
	if !local {
		cost += n.pr.cfg.InterruptTime
	}
	_, end := n.cpu.Reserve(n.pr.eng, cost)
	n.pr.eng.At(end, finish)
}
