package experiments

import (
	"dsm96/internal/core"
	"dsm96/internal/params"
)

// Cell is one externally-specified simulation: the experiment pipeline
// (internal/pipeline) builds these from an experiments.json grid and
// runs them on the same bounded worker pool the figures use, so
// SetWorkers/SetProgress/SetEngineWorkers apply uniformly.
type Cell struct {
	App   string
	Spec  core.Spec
	Cfg   params.Config
	Scale Scale
}

// RunCells executes the cells on the shared pool and returns one Run
// per cell, in cell order regardless of worker count or completion
// order. Per-cell failures land in Run.Err; RunCells itself never
// fails, so a caller can report every broken cell rather than the
// first.
func RunCells(cells []Cell) []Run {
	runs := make([]Run, len(cells))
	specs := make([]runSpec, len(cells))
	for i, c := range cells {
		specs[i] = runSpec{app: c.App, spec: c.Spec, cfg: c.Cfg, scale: c.Scale, out: &runs[i]}
	}
	execute(specs)
	return runs
}

// ParseScale maps the spellings the CLIs and experiments.json use onto
// a Scale.
func ParseScale(s string) (Scale, bool) {
	switch s {
	case "tiny":
		return ScaleTiny, true
	case "default":
		return ScaleDefault, true
	case "paper":
		return ScalePaper, true
	}
	return ScaleTiny, false
}
