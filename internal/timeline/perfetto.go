package timeline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"dsm96/internal/trace"
)

// Track process ids in the exported trace: Perfetto groups tracks by
// "process", so processors, controllers, and mesh links each get one.
const (
	pidProcessors  = 0
	pidControllers = 1
	pidLinks       = 2
)

// WritePerfetto emits the recording as Chrome trace-event JSON, loadable
// at ui.perfetto.dev (or chrome://tracing). Layout:
//
//   - process "processors": one thread per computation processor, with
//     "X" (complete) slices for each phase span and, when events is
//     non-nil, "i" (instant) markers for the protocol events of a
//     trace.Buffer captured on the same run;
//   - process "controllers": one thread per protocol controller, slices
//     named after the command the controller core was servicing;
//   - process "mesh links": one thread per unidirectional link, slices
//     covering message-body occupancy.
//
// Timestamps and durations are simulated cycles written verbatim into
// the microsecond-denominated ts/dur fields: 1 viewer µs = 1 simulated
// cycle = 10 ns of paper time. Output is plain slice iteration with
// fixed formatting — byte-identical across repeat runs of the same
// deterministic simulation.
func (r *Recorder) WritePerfetto(w io.Writer, events []trace.Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"otherData\":{\"timebase\":\"1 viewer us = 1 simulated cycle = 10 ns\"},\n\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if first {
			bw.WriteString("\n")
			first = false
		} else {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, format, args...)
	}
	meta := func(pid int, key, name string, tid int) {
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":%q,"args":{"name":%s}}`,
			pid, tid, key, strconv.Quote(name))
	}

	if r != nil {
		meta(pidProcessors, "process_name", "processors", 0)
		for node := range r.procs {
			meta(pidProcessors, "thread_name", fmt.Sprintf("cpu%d", node), node)
		}
		haveCtrl := false
		for node, tr := range r.ctrl {
			if len(tr) == 0 {
				continue
			}
			if !haveCtrl {
				meta(pidControllers, "process_name", "controllers", 0)
				haveCtrl = true
			}
			meta(pidControllers, "thread_name", fmt.Sprintf("ctrl%d", node), node)
		}
		haveLink := false
		for idx, tr := range r.links {
			if len(tr) == 0 {
				continue
			}
			if !haveLink {
				meta(pidLinks, "process_name", "mesh links", 0)
				haveLink = true
			}
			meta(pidLinks, "thread_name", r.linkNames[idx], idx)
		}

		for node, tr := range r.procs {
			for _, s := range tr {
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":"phase","name":%q}`,
					pidProcessors, node, s.Start, s.End-s.Start, s.Phase.String())
			}
		}
		// Controller failovers: a red instant on the processor track at
		// the cycle the node degraded to software protocol handling.
		// Fault-free runs have none, keeping their artifacts byte-stable.
		for node, at := range r.degraded {
			if at < 0 {
				continue
			}
			emit(`{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","cat":"failover","name":"controller-failover","cname":"terrible"}`,
				pidProcessors, node, at)
		}
		for node, tr := range r.ctrl {
			for _, s := range tr {
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":"controller","name":%s}`,
					pidControllers, node, s.Start, s.End-s.Start, strconv.Quote(s.Job))
			}
		}
		for idx, tr := range r.links {
			for _, s := range tr {
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":"link","name":"xfer"}`,
					pidLinks, idx, s.Start, s.End-s.Start)
			}
		}
	}

	for _, e := range events {
		emit(`{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","cat":"protocol","name":%q,"args":{"page":%d,"detail":%s}}`,
			pidProcessors, e.Node, e.Time, e.Kind.String(), e.Page, strconv.Quote(e.Detail))
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
