package apps

import (
	"fmt"

	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// TSP solves the traveling-salesman problem with branch and bound, the
// TreadMarks distribution's flagship application: a lock-protected shared
// work queue of partial tours, a shared best-so-far bound that prunes the
// search, and long stretches of independent computation between
// synchronization points (which is why it speeds up so well in Figure 1).
//
// Partial tours above the depth cutoff are expanded back into the queue;
// deeper ones are solved locally by exhaustive DFS pruned against the
// shared bound. The answer (the optimum tour cost) is identical no matter
// how the search interleaves, so validation is exact.
type TSP struct {
	Cities int
	// CutoffDepth: queue entries with fewer than this many fixed cities
	// are expanded rather than solved.
	CutoffDepth int
	// ComputePerEdge models the instruction cost of one edge evaluation.
	ComputePerEdge int64

	dist [][]int // private copy of the distance matrix (read-only data)

	// Shared layout.
	distBase  int64 // Cities*Cities i32, initialized by proc 0
	queueBase int64 // records
	qState    int64 // head, tail, outstanding (i32 each)
	bestAddr  int64 // current best bound (i32)
	outAddr   int64 // final answer

	recWords int
	maxRecs  int
	result   float64

	// DebugShadow, when enabled, tracks the lock-ordered expected values
	// of the queue state and panics on the first stale in-CS read.
	DebugShadow                         bool
	shadowHead, shadowTail, shadowOutst int
}

// Locks and barriers used by TSP.
const (
	tspQueueLock = 1
	tspBestLock  = 2
)

// NewTSP builds an instance with n cities.
func NewTSP(n int) *TSP {
	return &TSP{Cities: n, CutoffDepth: 3, ComputePerEdge: 800}
}

// DefaultTSP is the scaled default (the paper tours 18 cities; full
// branch and bound over 18 cities is too deep for simulation here, as it
// was for the authors' simulator budget).
func DefaultTSP() *TSP { return NewTSP(11) }

// PaperTSP reproduces the published input size.
func PaperTSP() *TSP { return NewTSP(18) }

// Name implements dsm.App.
func (t *TSP) Name() string { return "tsp" }

// Setup implements dsm.App.
func (t *TSP) Setup(h *lrc.Heap) {
	t.result = 0
	n := t.Cities
	// Deterministic distance matrix (symmetric, positive).
	r := newRNG(12345)
	t.dist = make([][]int, n)
	for i := range t.dist {
		t.dist[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 10 + r.intn(90)
			t.dist[i][j] = d
			t.dist[j][i] = d
		}
	}
	t.recWords = 2 + n // cost, depth, tour[0..n)
	t.maxRecs = 4096
	t.distBase = h.AllocPages((4*n*n + 4095) / 4096)
	t.queueBase = h.AllocPages((4*t.recWords*t.maxRecs + 4095) / 4096)
	t.qState = h.AllocPages(1)
	t.bestAddr = h.AllocPages(1)
	t.outAddr = h.AllocPages(1)
}

func (t *TSP) recAddr(i int) int64 { return t.queueBase + int64(4*t.recWords*i) }

// Body implements dsm.App.
func (t *TSP) Body(env *dsm.Env) {
	n := t.Cities
	if env.ID == 0 {
		// Publish the distance matrix and seed the queue with the root
		// tour (city 0 fixed as start).
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				env.WI(t.distBase+int64(4*(i*n+j)), t.dist[i][j])
			}
		}
		env.WI(t.bestAddr, 1<<30)
		root := t.recAddr(0)
		env.WI(root, 0)       // cost so far
		env.WI(root+4, 1)     // depth: city 0 fixed
		env.WI(root+8, 0)     // tour[0] = 0
		env.WI(t.qState, 0)   // head
		env.WI(t.qState+4, 1) // tail
		env.WI(t.qState+8, 1) // outstanding work items
		t.shadowHead, t.shadowTail, t.shadowOutst = 0, 1, 1
	}
	env.Barrier(0)

	emptyPolls := 0
	for {
		// Pop a work item or decide we are done.
		env.Lock(tspQueueLock)
		head := env.RI(t.qState)
		tail := env.RI(t.qState + 4)
		outstanding := env.RI(t.qState + 8)
		if t.DebugShadow && (head != t.shadowHead || tail != t.shadowTail || outstanding != t.shadowOutst) {
			panic(fmt.Sprintf("tsp shadow: proc %d read h=%d t=%d o=%d, want h=%d t=%d o=%d",
				env.ID, head, tail, outstanding, t.shadowHead, t.shadowTail, t.shadowOutst))
		}
		if head == tail {
			env.Unlock(tspQueueLock)
			if outstanding == 0 {
				break
			}
			emptyPolls++
			if emptyPolls > 200000 {
				panic(fmt.Sprintf("tsp: proc %d polled %d times with outstanding=%d head=%d tail=%d — protocol livelock",
					env.ID, emptyPolls, outstanding, head, tail))
			}
			env.Compute(300) // back off and poll again
			continue
		}
		emptyPolls = 0
		env.WI(t.qState, head+1)
		t.shadowHead = head + 1
		rec := t.recAddr(head % t.maxRecs)
		cost := env.RI(rec)
		depth := env.RI(rec + 4)
		tour := make([]int, depth)
		for i := 0; i < depth; i++ {
			tour[i] = env.RI(rec + int64(8+4*i))
		}
		env.Unlock(tspQueueLock)
		if depth < 1 || depth > n {
			panic(fmt.Sprintf("tsp: proc %d popped head=%d tail=%d cost=%d depth=%d", env.ID, head, tail, cost, depth))
		}

		best := env.RI(t.bestAddr)
		if cost >= best {
			t.finishItem(env)
			continue
		}
		if depth < t.CutoffDepth && depth < n {
			t.expand(env, cost, tour)
		} else {
			t.solve(env, cost, tour, best)
		}
		t.finishItem(env)
	}

	env.Barrier(1)
	if env.ID == 0 {
		env.WI(t.outAddr, env.RI(t.bestAddr))
		t.result = float64(env.RI(t.outAddr))
	}
	env.Barrier(2)
}

// finishItem retires one work item.
func (t *TSP) finishItem(env *dsm.Env) {
	env.Lock(tspQueueLock)
	o := env.RI(t.qState + 8)
	if t.DebugShadow && o != t.shadowOutst {
		panic(fmt.Sprintf("tsp shadow: proc %d finish read o=%d want %d", env.ID, o, t.shadowOutst))
	}
	env.WI(t.qState+8, o-1)
	t.shadowOutst = o - 1
	env.Unlock(tspQueueLock)
}

// expand pushes every feasible extension of the partial tour.
func (t *TSP) expand(env *dsm.Env, cost int, tour []int) {
	n := t.Cities
	used := make([]bool, n)
	for _, c := range tour {
		used[c] = true
	}
	last := tour[len(tour)-1]
	for next := 0; next < n; next++ {
		if used[next] {
			continue
		}
		env.Compute(t.ComputePerEdge)
		ncost := cost + t.dist[last][next]
		if ncost >= env.RI(t.bestAddr) {
			continue
		}
		env.Lock(tspQueueLock)
		tail := env.RI(t.qState + 4)
		if tail-env.RI(t.qState) >= t.maxRecs {
			env.Unlock(tspQueueLock)
			// Queue full: solve the child locally instead.
			t.solve(env, ncost, append(append([]int(nil), tour...), next), env.RI(t.bestAddr))
			continue
		}
		rec := t.recAddr(tail % t.maxRecs)
		env.WI(rec, ncost)
		env.WI(rec+4, len(tour)+1)
		for i, c := range tour {
			env.WI(rec+int64(8+4*i), c)
		}
		env.WI(rec+int64(8+4*len(tour)), next)
		o := env.RI(t.qState + 8)
		if t.DebugShadow && (tail != t.shadowTail || o != t.shadowOutst) {
			panic(fmt.Sprintf("tsp shadow: proc %d push read t=%d o=%d want t=%d o=%d",
				env.ID, tail, o, t.shadowTail, t.shadowOutst))
		}
		env.WI(t.qState+4, tail+1)
		env.WI(t.qState+8, o+1)
		t.shadowTail = tail + 1
		t.shadowOutst = o + 1
		env.Unlock(tspQueueLock)
	}
}

// solve exhausts the subtree below the partial tour with DFS, pruning
// against the shared bound (reread occasionally, updated under a lock).
func (t *TSP) solve(env *dsm.Env, cost int, tour []int, best int) {
	n := t.Cities
	used := make([]bool, n)
	path := make([]int, n)
	copy(path, tour)
	for _, c := range tour {
		used[c] = true
	}
	var dfs func(depth, cost int)
	dfs = func(depth, cost int) {
		env.Compute(t.ComputePerEdge)
		if cost >= best {
			return
		}
		if depth == n {
			total := cost + t.dist[path[n-1]][path[0]]
			if total < best {
				env.Lock(tspBestLock)
				if total < env.RI(t.bestAddr) {
					env.WI(t.bestAddr, total)
				}
				best = env.RI(t.bestAddr)
				env.Unlock(tspBestLock)
			}
			return
		}
		last := path[depth-1]
		for next := 0; next < n; next++ {
			if used[next] {
				continue
			}
			used[next] = true
			path[depth] = next
			dfs(depth+1, cost+t.dist[last][next])
			used[next] = false
		}
	}
	dfs(len(tour), cost)
}

// Result implements dsm.App.
func (t *TSP) Result() float64 { return t.result }

// DistancesForTest exposes the deterministic distance matrix so tests can
// verify the optimum independently. Setup must not have been bypassed.
func (t *TSP) DistancesForTest() [][]int {
	if t.dist == nil {
		var h lrc.Heap
		_ = h
		// Generate without allocating shared space: replicate Setup's
		// generator.
		n := t.Cities
		r := newRNG(12345)
		t.dist = make([][]int, n)
		for i := range t.dist {
			t.dist[i] = make([]int, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := 10 + r.intn(90)
				t.dist[i][j] = d
				t.dist[j][i] = d
			}
		}
	}
	return t.dist
}
