// Protocol comparison: run one of the paper's applications under every
// protocol this repository implements — the six TreadMarks overlap
// variants and AURC with and without prefetching — and print a compact
// scoreboard (normalized running time, like the paper's bar charts).
//
//	go run ./examples/protocol-compare [-app water]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

func main() {
	appName := flag.String("app", "water", "application: tsp, water, radix, barnes, ocean, em3d")
	flag.Parse()

	specs := []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.ID),
		core.TM(tmk.P), core.TM(tmk.IP), core.TM(tmk.IPD),
		core.AURC(false), core.AURC(true),
	}

	fmt.Printf("%s on the default 16-node machine (normalized to Base TreadMarks)\n\n", *appName)
	fmt.Printf("%-8s %12s %8s %8s %8s %8s %10s\n",
		"protocol", "cycles", "norm", "synch%", "data%", "ipc%", "prefetches")

	var baseline int64
	for _, spec := range specs {
		app, err := apps.Default(*appName)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(params.Default(), spec, app)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.RunningTime
		}
		s := res.Breakdown.Sum()
		fmt.Printf("%-8s %12d %7.0f%% %7.1f%% %7.1f%% %7.1f%% %10d\n",
			res.Protocol, res.RunningTime,
			100*float64(res.RunningTime)/float64(baseline),
			100*res.Breakdown.Fraction(stats.Synch),
			100*res.Breakdown.Fraction(stats.Data),
			100*res.Breakdown.Fraction(stats.IPC),
			s.Prefetches)
	}
	fmt.Println("\nExpected shape (paper, Section 5): I+D wins or ties for most")
	fmt.Println("applications; P alone can hurt (useless prefetches, inflated")
	fmt.Println("synchronization); AURC+P is always worse than AURC.")
}
