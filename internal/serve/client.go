package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dsm96/internal/core"
	"dsm96/internal/experiments"
	"dsm96/internal/params"
	"dsm96/internal/pipeline"
)

// Client is the thin job-server client. cmd/sweep -server and the
// dsmserve client mode ride it; it honors the server's backpressure
// contract (429 + Retry-After) by waiting and resubmitting instead of
// hammering.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8096".
	Base string
	// HTTP overrides the transport (default http.DefaultClient with no
	// overall timeout: job long-polls legitimately take as long as the
	// simulation).
	HTTP *http.Client
	// BusyRetries bounds how many 429 rounds Submit absorbs before
	// giving up (default 120).
	BusyRetries int
	// sleep is indirected for tests.
	sleep func(time.Duration)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) pause(d time.Duration) {
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}

// decodeStatus reads a JobStatus or the server's error envelope.
func decodeStatus(resp *http.Response) (*JobStatus, error) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("server: HTTP %d: %.200s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("decode job status: %w", err)
	}
	return &st, nil
}

// Submit posts a job. wait long-polls until the job rests (done,
// quarantined, or abandoned). A 429 busy response is absorbed by
// sleeping out Retry-After and resubmitting — correct because
// submission is idempotent: the job key is content-derived and the
// server dedupes.
func (c *Client) Submit(spec *JobSpec, wait bool) (*JobStatus, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := c.Base + "/jobs"
	if wait {
		url += "?wait=1"
	}
	retries := c.BusyRetries
	if retries <= 0 {
		retries = 120
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.httpClient().Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			after := time.Second
			if v, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && v > 0 {
				after = time.Duration(v) * time.Second
			}
			resp.Body.Close()
			if attempt >= retries {
				return nil, fmt.Errorf("server stayed busy through %d submissions", retries)
			}
			c.pause(after)
			continue
		}
		st, err := decodeStatus(resp)
		resp.Body.Close()
		return st, err
	}
}

// Record fetches a job's journal view by key.
func (c *Client) Record(key string) (*JobStatus, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeStatus(resp)
}

// Artifact fetches a content-addressed artifact and verifies it
// locally: trust the hash, not the transport.
func (c *Client) Artifact(sha string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.Base + "/artifacts/" + sha)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: HTTP %d: %.200s", resp.StatusCode, data)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != sha {
		return nil, fmt.Errorf("artifact %s fails verification (content hashes to %s)", sha, got)
	}
	return data, nil
}

// Stats fetches /statsz.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.httpClient().Get(c.Base + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RunRemote executes one simulation through the server and
// reconstructs the facade-level result — the seam cmd/sweep's thin
// -server mode plugs into experiments.SetRemoteRunner. Specs carrying
// local-only instrumentation (tracer, timeline, spans) are rejected:
// those collect through in-process pointers a remote run cannot feed.
func (c *Client) RunRemote(app string, spec core.Spec, cfg params.Config, sc experiments.Scale) (*core.Result, error) {
	if spec.Tracer != nil || spec.Timeline != nil || spec.Spans != nil {
		return nil, fmt.Errorf("serve: in-process instrumentation cannot be served remotely")
	}
	label := spec.String()
	if _, ok := pipeline.ParseProtocol(label); !ok {
		return nil, fmt.Errorf("serve: protocol %q is not expressible as a job spec", label)
	}
	jf, err := FaultsFromPlan(spec.Faults)
	if err != nil {
		return nil, err
	}
	if spec.Watchdog < 0 {
		return nil, fmt.Errorf("serve: watchdog-off runs are not accepted by the server")
	}
	js := &JobSpec{
		Schema:   JobSchema,
		App:      app,
		Protocol: label,
		Scale:    sc.Name(),
		Config:   &cfg,
		Workers:  spec.Workers,
		Watchdog: int64(spec.Watchdog),
		Faults:   jf,
	}
	st, err := c.Submit(js, true)
	if err != nil {
		return nil, err
	}
	switch st.State {
	case StateDone:
		if st.Result == nil {
			return nil, fmt.Errorf("serve: job %s done but carries no result", st.Key)
		}
		return st.Result.CoreResult(app, label)
	case StateQuarantined, StateFailed:
		msg := st.Error
		if st.Stall != nil {
			msg = fmt.Sprintf("%s (stall at cycle %d, last progress %d)", msg, st.Stall.At, st.Stall.LastProgress)
		}
		return nil, fmt.Errorf("serve: job %s %s after %d attempts: %s", st.Key, st.State, st.Attempts, msg)
	default:
		return nil, fmt.Errorf("serve: job %s rests in state %s (server draining or degraded)", st.Key, st.State)
	}
}
