package memsys

import (
	"testing"

	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

func TestFastPathLazyBusy(t *testing.T) {
	n, eng, _ := newTestNode()
	f := NewFastPath(n)
	var st stats.ProcStats
	var afterHits, afterFlush sim.Time
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		f.Read(p, 0, &st) // miss: flushes + stalls
		base := p.Now()
		for i := 0; i < 10; i++ {
			f.Read(p, 0, &st) // hits: no time advances
		}
		afterHits = p.Now() - base
		f.Flush(p)
		afterFlush = p.Now() - base
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if afterHits != 0 {
		t.Fatalf("hits advanced time by %d, want 0 (lazy)", afterHits)
	}
	if afterFlush != 10 {
		t.Fatalf("flush slept %d, want 10", afterFlush)
	}
	if st.SharedReads != 11 || st.CacheMisses != 1 {
		t.Fatalf("reads=%d misses=%d", st.SharedReads, st.CacheMisses)
	}
}

func TestFastPathMissMatchesNodeRead(t *testing.T) {
	// The fast path's miss timing must equal Node.Read's: 1 busy + line.
	cfg := params.Default()
	eng := sim.NewEngine()
	n := NewNode(0, &cfg, eng)
	f := NewFastPath(n)
	var st stats.ProcStats
	var took sim.Time
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		start := p.Now()
		f.Read(p, 64, &st)
		f.Flush(p)
		took = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 1+cfg.MemLineTime() {
		t.Fatalf("miss took %d, want %d", took, 1+cfg.MemLineTime())
	}
}

func TestFastPathWriteThroughStalls(t *testing.T) {
	cfg := params.Default()
	cfg.WriteBufferSize = 1
	eng := sim.NewEngine()
	n := NewNode(0, &cfg, eng)
	f := NewFastPath(n)
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		f.WriteThrough(p, 0, &st)
		f.WriteThrough(p, 4, &st) // buffer of 1: must stall
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.WriteBuffStalls != 1 {
		t.Fatalf("stalls = %d, want 1", st.WriteBuffStalls)
	}
	if st.SharedWrites != 2 {
		t.Fatalf("writes = %d", st.SharedWrites)
	}
}

func TestFastPathChargesViaHooks(t *testing.T) {
	n, eng, cfg := newTestNode()
	f := NewFastPath(n)
	var st stats.ProcStats
	p := eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		f.Read(p, 0, &st) // TLB miss + cache miss
		f.Flush(p)
	})
	p.OnUnblock = func(reason string, waited sim.Time) {
		switch reason {
		case ReasonBusy:
			st.Add(stats.Busy, waited)
		default:
			st.Add(stats.Other, waited)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Cycles[stats.Busy] != 1 {
		t.Fatalf("busy = %d, want 1", st.Cycles[stats.Busy])
	}
	wantOther := cfg.TLBFillTime + cfg.MemLineTime()
	if st.Cycles[stats.Other] != wantOther {
		t.Fatalf("other = %d, want %d", st.Cycles[stats.Other], wantOther)
	}
}

func TestFastPathWriteBackDirtyEviction(t *testing.T) {
	n, eng, _ := newTestNode()
	f := NewFastPath(n)
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		f.WriteBack(p, 0, &st)
		wb := n.Cache.WriteBacks
		f.Read(p, Addr(n.Cache.Lines()*n.Cache.LineSize()), &st) // conflicts
		if n.Cache.WriteBacks != wb+1 {
			t.Error("dirty line not written back on eviction")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
