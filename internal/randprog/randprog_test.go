package randprog_test

import (
	"fmt"
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/params"
	"dsm96/internal/randprog"
	"dsm96/internal/tmk"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := randprog.New(7, 10, 2048, 3)
	b := randprog.New(7, 10, 2048, 3)
	ra := dsm.RunSequential(a, 4096)
	rb := dsm.RunSequential(b, 4096)
	if ra != rb {
		t.Fatalf("same seed, different results: %v vs %v", ra, rb)
	}
	c := randprog.New(8, 10, 2048, 3)
	if rc := dsm.RunSequential(c, 4096); rc == ra {
		t.Fatalf("different seeds produced identical checksum %v (suspicious)", rc)
	}
}

// TestFuzzProtocols is the protocol fuzzer: random DRF programs across
// every protocol and several machine sizes, all validated against the
// sequential oracle. Seeds are fixed so failures reproduce exactly.
func TestFuzzProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz matrix is expensive; run without -short")
	}
	protocols := []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.ID),
		core.TM(tmk.P), core.TM(tmk.IP), core.TM(tmk.IPD),
		core.AURC(false), core.AURC(true),
	}
	for seed := uint64(1); seed <= 6; seed++ {
		for _, spec := range protocols {
			for _, procs := range []int{4, 16} {
				seed, spec, procs := seed, spec, procs
				name := fmt.Sprintf("seed%d/%s/%dp", seed, spec, procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					prog := randprog.New(seed, 12, 4096, 4)
					cfg := params.Default()
					cfg.Processors = procs
					if _, err := core.Run(cfg, spec, prog); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestFuzzSmall runs a quick slice of the fuzz matrix even with -short.
func TestFuzzSmall(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		prog := randprog.New(seed, 8, 1024, 2)
		cfg := params.Default()
		cfg.Processors = 8
		if _, err := core.Run(cfg, core.TM(tmk.Base), prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzArchitectures varies machine parameters too: protocol
// correctness must not depend on timing.
func TestFuzzArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	mutations := []func(*params.Config){
		func(c *params.Config) { c.SetNetworkBandwidthMBps(20) },
		func(c *params.Config) { c.SetMemoryLatencyNanos(200) },
		func(c *params.Config) { c.MessagingOverhead = 2000 },
		func(c *params.Config) { c.WriteBufferSize = 1 },
		func(c *params.Config) { c.CacheSize = 8 * 1024 },
	}
	for i, mut := range mutations {
		for _, spec := range []core.Spec{core.TM(tmk.IPD), core.AURC(true)} {
			i, mut, spec := i, mut, spec
			t.Run(fmt.Sprintf("mut%d/%s", i, spec), func(t *testing.T) {
				t.Parallel()
				prog := randprog.New(uint64(100+i), 10, 2048, 3)
				cfg := params.Default()
				mut(&cfg)
				if _, err := core.Run(cfg, spec, prog); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFuzzLazyHybrid fuzzes the Lazy Hybrid grant-piggyback extension.
func TestFuzzLazyHybrid(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		for _, m := range []tmk.Mode{tmk.Base, tmk.ID} {
			prog := randprog.New(seed, 10, 2048, 3)
			cfg := params.Default()
			cfg.Processors = 8
			spec := core.TMOpt(m, tmk.Options{LazyHybrid: true})
			if _, err := core.Run(cfg, spec, prog); err != nil {
				t.Fatalf("seed %d %s: %v", seed, spec, err)
			}
		}
	}
}

// TestFuzzCorpus is the short-mode fuzz gate: 32 fixed seeds, a TreadMarks
// overlap variant and AURC, at 4 and 16 processors, every run validated
// against the sequential oracle inside core.Run. It is cheap enough to run
// on every `go test -short`, so engine and protocol changes cannot land
// without surviving the corpus.
func TestFuzzCorpus(t *testing.T) {
	protocols := []core.Spec{core.TM(tmk.IPD), core.AURC(false)}
	for seed := uint64(1); seed <= 32; seed++ {
		for _, spec := range protocols {
			for _, procs := range []int{4, 16} {
				seed, spec, procs := seed, spec, procs
				t.Run(fmt.Sprintf("seed%d/%s/%dp", seed, spec, procs), func(t *testing.T) {
					t.Parallel()
					prog := randprog.New(seed, 8, 1024, 2)
					cfg := params.Default()
					cfg.Processors = procs
					if _, err := core.Run(cfg, spec, prog); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// FuzzRandprog is a native fuzz target over the program generator's
// parameters: any generated DRF program must validate against the
// sequential oracle under both protocol families, and the TreadMarks
// run must fire a bit-identical event schedule on the sharded engine
// (Workers: 4) — every corpus seed doubles as a parallel-determinism
// probe. Seed inputs live in testdata/fuzz/FuzzRandprog; run with
//
//	go test ./internal/randprog -fuzz FuzzRandprog -fuzztime 30s
func FuzzRandprog(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(1))
	f.Add(uint64(17), uint8(12), uint8(3))
	f.Add(uint64(42), uint8(10), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, steps, procSel uint8) {
		nSteps := 4 + int(steps)%12
		procs := []int{2, 4, 8, 16}[int(procSel)%4]
		newProg := func() *randprog.Program { return randprog.New(seed, nSteps, 1024, 2) }
		cfg := params.Default()
		cfg.Processors = procs
		for _, spec := range []core.Spec{core.TM(tmk.ID), core.AURC(false)} {
			res, err := core.Run(cfg, spec, newProg())
			if err != nil {
				t.Fatal(err)
			}
			if spec.Kind == core.KindAURC {
				continue // AURC pins the engine sequential
			}
			spec.Workers = 4
			par, err := core.Run(cfg, spec, newProg())
			if err != nil {
				t.Fatal(err)
			}
			if par.EventFingerprint != res.EventFingerprint ||
				par.RunningTime != res.RunningTime || par.EventsRun != res.EventsRun {
				t.Fatalf("%s workers=4 diverged: fp %016x/%016x cycles %d/%d events %d/%d",
					spec, par.EventFingerprint, res.EventFingerprint,
					par.RunningTime, res.RunningTime, par.EventsRun, res.EventsRun)
			}
		}
	})
}
