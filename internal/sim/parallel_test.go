package sim

import (
	"errors"
	"fmt"
	"testing"
)

// synthNet is a miniature of the DSM network layer's parallel contract:
// an eager per-source prefix (shard-local counters, source-side clock
// read), a Deferred "wire walk" that touches globally shared state (a
// contended link resource) and schedules the delivery on the
// destination's view, and a minimum latency that lower-bounds every
// cross-node delivery.
type synthNet struct {
	eng     *Engine
	wire    *Resource
	minLat  Time
	sent    []int
	recv    []int
	linkSum Time
}

func (s *synthNet) send(src, dst int, fn func()) {
	view := s.eng.View(src)
	s.sent[src]++
	sentAt := view.Now()
	view.Deferred(func() {
		// Global context: replay order on a parallel engine, inline on a
		// sequential one. Either way the link contention resolves in the
		// global fired order, so delivery times come out identical.
		start, _ := s.wire.Reserve(s.eng, 3)
		s.linkSum += start - sentAt
		delivery := start + s.minLat
		s.eng.View(dst).At(delivery, func() {
			s.recv[dst]++
			fn()
		})
	})
}

// runSynthetic executes a fixed request/reply workload over `nodes`
// simulated processors at the given worker count and returns the
// engine's fingerprint plus event count.
func runSynthetic(t *testing.T, nodes, workers int) (fp uint64, events uint64) {
	t.Helper()
	eng := NewEngine()
	eng.Parallelize(workers, nodes, 10)
	net := &synthNet{
		eng:    eng,
		wire:   &Resource{Name: "wire"},
		minLat: 10,
		sent:   make([]int, nodes),
		recv:   make([]int, nodes),
	}
	for i := 0; i < nodes; i++ {
		i := i
		eng.NewProc(i, fmt.Sprintf("p%d", i), Time(i%3), func(p *Proc) {
			for step := 0; step < 40; step++ {
				p.Sleep(Time(1 + (i*7+step*13)%23))
				if step%5 == 0 {
					p.Yield()
				}
				dst := (i + 1 + (step*(i+3))%(nodes-1)) % nodes
				g := &Gate{}
				net.send(i, dst, func() {
					// Runs at dst: bounce a reply back to the sender.
					net.send(dst, i, func() {
						g.Open(eng.View(i))
					})
				})
				g.Wait(p, "reply")
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	total := 0
	for i := range net.sent {
		total += net.sent[i]
		if net.recv[i] == 0 {
			t.Fatalf("workers=%d: node %d received nothing", workers, i)
		}
	}
	if want := nodes * 40 * 2; total != want {
		t.Fatalf("workers=%d: sent %d messages, want %d", workers, total, want)
	}
	return eng.Fingerprint(), eng.EventsRun()
}

// TestParallelSchedulesMatchSequential is the engine-level determinism
// wall: the same workload at 1, 2, 4, and 8 workers must fire the
// bit-identical (time, seq) schedule — same fingerprint, same event
// count — as the plain sequential engine (which additionally elides
// parks, proving elision transparency at the same time).
func TestParallelSchedulesMatchSequential(t *testing.T) {
	for _, nodes := range []int{8, 16} {
		wantFP, wantEvents := runSynthetic(t, nodes, 1)
		for _, workers := range []int{2, 4, 8} {
			fp, events := runSynthetic(t, nodes, workers)
			if fp != wantFP || events != wantEvents {
				t.Errorf("nodes=%d workers=%d: fingerprint %016x (%d events), sequential %016x (%d events)",
					nodes, workers, fp, events, wantFP, wantEvents)
			}
		}
	}
}

// TestParallelRunRepeats re-runs Run after a drain: staging more work
// onto a parallelized engine and running again must work (the workers
// are re-spawned per Run call).
func TestParallelRunRepeats(t *testing.T) {
	eng := NewEngine()
	eng.Parallelize(2, 4, 10)
	fired := make([]bool, 8) // distinct slot per event: shards share nothing
	for round := 0; round < 2; round++ {
		slot := round * 4
		for i := 0; i < 4; i++ {
			k := slot + i
			eng.View(i).At(eng.View(i).Now()+Time(i+1), func() {
				fired[k] = true
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for k, ok := range fired {
		if !ok {
			t.Fatalf("event %d never fired", k)
		}
	}
}

// TestParallelDeadlockReport mirrors the sequential engine's contract:
// a drained queue with parked processes is a structured deadlock.
func TestParallelDeadlockReport(t *testing.T) {
	eng := NewEngine()
	eng.Parallelize(2, 4, 10)
	for i := 0; i < 4; i++ {
		g := &Gate{} // gates are node-local, like the DSM layers use them
		eng.NewProc(i, fmt.Sprintf("p%d", i), 0, func(p *Proc) {
			p.Sleep(5)
			g.Wait(p, "never")
		})
	}
	err := eng.Run()
	var serr *StallError
	if !errors.As(err, &serr) || !serr.Deadlock {
		t.Fatalf("want deadlock StallError, got %v", err)
	}
	if len(serr.Report.Blocked) != 4 {
		t.Fatalf("blocked list %v, want all 4 procs", serr.Report.Blocked)
	}
	for _, b := range serr.Report.Blocked {
		if b.Reason != "never" {
			t.Errorf("blocked proc %s reason %q, want %q", b.Name, b.Reason, "never")
		}
	}
}

// TestParallelWatchdogStall wedges one shard's process while pure event
// churn keeps another shard's queue alive: the liveness watchdog must
// surface a structured StallError naming the blocked process instead of
// spinning forever.
func TestParallelWatchdogStall(t *testing.T) {
	eng := NewEngine()
	eng.SetWatchdog(1_000)
	eng.Parallelize(2, 4, 10)
	g := &Gate{}
	eng.NewProc(0, "wedged", 0, func(p *Proc) {
		g.Wait(p, "lost-reply")
	})
	eng.NewProc(3, "churn", 0, func(p *Proc) {
		ve := eng.View(3)
		var tick func()
		tick = func() { ve.After(100, tick) }
		ve.After(100, tick) // endless retransmission-style churn, no progress
	})
	err := eng.Run()
	var serr *StallError
	if !errors.As(err, &serr) || serr.Deadlock {
		t.Fatalf("want watchdog StallError, got %v", err)
	}
	found := false
	for _, b := range serr.Report.Blocked {
		if b.Name == "wedged" && b.Reason == "lost-reply" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stall report %+v does not name the wedged proc", serr.Report)
	}
}

// TestParallelLookaheadViolationPanics: scheduling cross-shard work
// inside the window from replay context must fail loudly rather than
// silently diverge from the sequential schedule.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	eng := NewEngine()
	eng.Parallelize(2, 4, 50) // lookahead overestimates the 1-cycle "wire"
	eng.NewProc(0, "p0", 0, func(p *Proc) {
		view := eng.View(0)
		view.Deferred(func() {
			eng.View(3).At(eng.Now()+1, func() {})
		})
		p.Sleep(10)
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	_ = eng.Run()
}

// TestViewSequential: on a sequential engine View and Deferred are
// identity operations, so shared code needs no mode checks.
func TestViewSequential(t *testing.T) {
	eng := NewEngine()
	if eng.View(7) != eng {
		t.Fatal("View on a sequential engine must return the engine")
	}
	ran := false
	eng.Deferred(func() { ran = true })
	if !ran {
		t.Fatal("Deferred on a sequential engine must run inline")
	}
	if eng.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", eng.Workers())
	}
}
