// Package tmk implements the TreadMarks lazy-release-consistency DSM and
// the paper's six overlap variants:
//
//	Base  — everything on the computation processor (standard TreadMarks)
//	I     — basic protocol actions on the protocol controller
//	I+D   — controller plus hardware (DMA, bit-vector) diffs, no twins
//	P     — diff prefetching at acquire time, all work on the processor
//	I+P   — controller plus prefetching, software diffs on the controller
//	I+P+D — controller, prefetching, and hardware diffs combined
package tmk

// Mode selects the overlap variant (Section 5.1's bar labels).
type Mode int

const (
	// Base is the non-overlapping TreadMarks protocol.
	Base Mode = iota
	// I moves basic protocol actions (message handling, page/diff service,
	// software diff generation/application, twinning) to the controller.
	I
	// ID is I plus hardware-supported diffs: write-through snooping keeps
	// per-page bit vectors and the DMA engine makes/applies diffs, so
	// twins disappear.
	ID
	// P adds diff prefetching at lock acquires and barrier departures to
	// standard TreadMarks; all protocol work stays on the processor.
	P
	// IP combines I and P.
	IP
	// IPD combines everything.
	IPD
)

// Modes lists the variants in the paper's left-to-right bar order.
var Modes = []Mode{Base, I, ID, P, IP, IPD}

// String returns the paper's label.
func (m Mode) String() string {
	switch m {
	case Base:
		return "Base"
	case I:
		return "I"
	case ID:
		return "I+D"
	case P:
		return "P"
	case IP:
		return "I+P"
	case IPD:
		return "I+P+D"
	}
	return "?"
}

// ParseMode maps a label back to a Mode. Exact labels (as printed by
// String) match first; otherwise matching is lenient — case-insensitive
// with "+" separators optional — so command lines can say "ipd" or
// "i+p" for I+P+D and I+P.
func ParseMode(s string) (Mode, bool) {
	for _, m := range Modes {
		if m.String() == s {
			return m, true
		}
	}
	for _, m := range Modes {
		if normMode(m.String()) == normMode(s) {
			return m, true
		}
	}
	return Base, false
}

// normMode lowercases a variant label and strips its "+" separators.
func normMode(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '+' {
			continue
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// Ctrl reports whether the variant has a protocol controller doing the
// basic protocol actions.
func (m Mode) Ctrl() bool { return m == I || m == ID || m == IP || m == IPD }

// HWDiff reports whether diffs are generated/applied by the DMA engine
// from snooped write bit vectors (which also forces write-through of
// shared data and eliminates twins).
func (m Mode) HWDiff() bool { return m == ID || m == IPD }

// Prefetch reports whether diff prefetching is enabled.
func (m Mode) Prefetch() bool { return m == P || m == IP || m == IPD }
