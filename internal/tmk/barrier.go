package tmk

import (
	"dsm96/internal/lrc"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/trace"
)

// barrier is the centralized barrier manager's state (it lives on the
// manager node, here node 0, as in TreadMarks).
type barrier struct {
	arrived   int
	clientVTS []lrc.VTS
}

const barrierManager = 0

func (pr *Protocol) barrierState(id int) *barrier {
	b, ok := pr.bars[id]
	if !ok {
		b = &barrier{clientVTS: make([]lrc.VTS, pr.cfg.Processors)}
		pr.bars[id] = b
	}
	return b
}

// Barrier implements dsm.System. Arrival closes the node's current
// interval and ships its new intervals (write notices) to the manager;
// once everyone has arrived, the manager broadcasts to each node all the
// intervals it has not seen, along with the global vector timestamp.
// Processing the release invalidates the pages those intervals wrote.
func (pr *Protocol) Barrier(p *sim.Proc, id int, bar int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	n.st.Barriers++
	op := pr.sp.Begin(id, spans.OpBarrier, bar, p.Now())
	n.barrierOp = op
	n.emit(-1, trace.KindBarrier, "arrive bar=%d", bar)
	n.closeInterval()

	// Ship every interval (any owner) the manager could lack: everything
	// this node learned since the last barrier's global timestamp. The
	// batch is causally closed, so the manager's vector timestamp never
	// outruns its interval records — even when it grants locks while the
	// barrier is still filling.
	own := n.missingIntervals(n.lastBarrierVTS, barrierManager)
	myVTS := n.vts.Clone()

	gate := &sim.Gate{}
	n.barrierGate = gate
	mgr := pr.nodes[barrierManager]
	if id == barrierManager {
		// Local arrival: pay the list-processing cost inline.
		p.SleepReason(n.listCost(own), reasonBarrier)
		mgr.barrierArrive(bar, id, myVTS, own)
	} else {
		bytes := requestWireBytes + myVTS.WireBytes() + intervalsWireBytes(own, pr.cfg.Processors)
		n.sendFromProc(p, reasonBarrier, barrierManager, bytes, func() {
			// Delivery context: the manager's clock, not the sender's.
			op.Mark(mgr.eng, spans.StageWire, mgr.eng.Now())
			mgr.barrierArrive(bar, id, myVTS, own)
		})
	}
	gate.Wait(p, reasonBarrier)
	n.barrierOp = nil
	n.emit(-1, trace.KindBarrier, "depart bar=%d", bar)
	pr.sp.End(op, p.Now())
	if pr.mode.Prefetch() {
		n.issuePrefetches(p)
	}
}

// barrierArrive processes one client's arrival at the manager (engine
// context on the manager node; interval merging is "complicated"
// protocol work and interrupts the computation processor in every mode).
func (n *pnode) barrierArrive(bar, from int, vts lrc.VTS, ivs []*lrc.Interval) {
	b := n.pr.barrierState(bar)
	work := func() {
		n.integrate(ivs)
		b.clientVTS[from] = vts
		b.arrived++
		if b.arrived == n.pr.cfg.Processors {
			b.arrived = 0
			n.barrierReleaseAll(bar, b)
		}
	}
	if from == n.id {
		// The manager's own arrival was already charged in Barrier.
		work()
		return
	}
	n.serveCPU(n.listCost(ivs), work)
}

// barrierReleaseAll broadcasts the release: each client receives the
// intervals it lacks plus the global vector timestamp.
func (n *pnode) barrierReleaseAll(bar int, b *barrier) {
	globalVTS := n.vts.Clone()
	for c := 0; c < n.pr.cfg.Processors; c++ {
		client := n.pr.nodes[c]
		ivs := n.missingIntervals(b.clientVTS[c], c)
		if c == n.id {
			client.barrierRelease(ivs, globalVTS, true)
			continue
		}
		bytes := requestWireBytes + globalVTS.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors)
		cv := globalVTS.Clone()
		cl, civs := client, ivs
		n.sendAsync(c, bytes, func() {
			cl.barrierRelease(civs, cv, false)
		})
	}
}

// barrierRelease lands the release at a client: the processor walks the
// interval/notice lists, invalidates, adopts the global vector timestamp,
// and leaves the barrier.
func (n *pnode) barrierRelease(ivs []*lrc.Interval, globalVTS lrc.VTS, local bool) {
	// Everything up to the release landing — shipping the arrival,
	// waiting for the stragglers, the manager's merge — was remote
	// service as far as this node's span is concerned.
	n.barrierOp.Mark(n.eng, spans.StageRemote, n.eng.Now())
	finish := func() {
		n.integrate(ivs)
		n.vts.Max(globalVTS)
		n.lastBarrierVTS = globalVTS.Clone()
		n.checkVTSRecords("barrierRelease")
		if n.barrierGate != nil {
			n.barrierOp.Mark(n.eng, spans.StageController, n.eng.Now())
			g := n.barrierGate
			n.barrierGate = nil
			g.Open(n.eng)
		}
	}
	cost := n.listCost(ivs)
	if !local {
		cost += n.pr.cfg.InterruptTime
	}
	_, end := n.cpu.Reserve(n.eng, cost)
	n.eng.At(end, finish)
}
