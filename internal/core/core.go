// Package core is the public facade of the simulator: it wires an
// application, a protocol (a TreadMarks overlap variant or AURC), and a
// machine configuration into a run, validates the computed result against
// a sequential execution, and returns the paper-style time breakdown.
package core

import (
	"errors"
	"fmt"
	"math"

	"dsm96/internal/aurc"
	"dsm96/internal/dsm"
	"dsm96/internal/faults"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// Kind selects the protocol family.
type Kind int

const (
	// KindTM runs a TreadMarks overlap variant.
	KindTM Kind = iota
	// KindAURC runs the automatic-update protocol.
	KindAURC
)

// Spec names a protocol configuration.
type Spec struct {
	Kind Kind
	// TMMode selects the TreadMarks variant (KindTM).
	TMMode tmk.Mode
	// TMOptions tunes the TreadMarks variant beyond the paper's fixed
	// design (prefetch strategy, controller priority ablation).
	TMOptions tmk.Options
	// Prefetch enables page prefetching (KindAURC).
	Prefetch bool
	// Tracer, when set, receives structured protocol events (both
	// protocol families emit).
	Tracer *trace.Buffer
	// Timeline, when set, records per-node phase spans (compute and the
	// stall categories), controller occupancy, and mesh-link occupancy
	// for the run; export with Timeline.WritePerfetto. Build it with
	// timeline.NewRecorder(cfg.Processors). Nil — the default — leaves
	// the instrumentation structurally absent: the event schedule,
	// fingerprint, and allocation profile are those of an uninstrumented
	// run.
	Timeline *timeline.Recorder
	// Faults, when set and enabled, makes the simulated network lose,
	// duplicate, and delay messages per the plan; the protocols recover
	// through the reliable transport. A nil (or all-zero) plan leaves the
	// network exactly as reliable — and the event schedule exactly as
	// reproducible — as a build without fault injection.
	Faults *faults.Plan
	// Watchdog is the liveness window in cycles: the run fails with a
	// structured stall report (Result.Stall) if no process progresses
	// for this long while some process is blocked. 0 — the default —
	// arms DefaultWatchdog; negative disables the watchdog entirely.
	// The watchdog is pure observation: an armed window that never
	// trips leaves the event schedule and fingerprint bit-identical.
	Watchdog sim.Time
	// Spans, when set, tags every blocking protocol operation (read and
	// write fault service, lock acquire and grant, barrier, prefetch)
	// with a causal span: the operation's stage decomposition, the stall
	// cycles charged to it, and the controller/network activity windows
	// that overlap accounting measures hidden latency from. Build it with
	// spans.NewTracker(cfg.Processors); the finished report lands in
	// Result.Spans. Nil — the default — leaves the instrumentation
	// structurally absent, exactly as for Timeline.
	Spans *spans.Tracker
	// Workers shards the event engine across this many OS threads
	// (sim.Engine.Parallelize), partitioning the mesh into contiguous
	// node bands with conservative lookahead from the network's minimum
	// cross-node delivery latency. The fired event schedule — and with it
	// the fingerprint, golden cycles, and every metric — is bit-identical
	// at any worker count. 0 or 1 runs sequentially. Clamped to the
	// processor count. Traced, timeline, and span-tracked runs shard like
	// any other: their globally-ordered writes (trace ring appends, span
	// IDs and completion order) are logged shard-locally and replayed in
	// global (time, seq) order at the merge barrier, so every artifact is
	// byte-identical at any worker count. Only AURC falls back to 1
	// worker — its update path reads and writes remote nodes' protocol
	// state inline, which the shard partitioning cannot express.
	Workers int
}

// String returns the paper's label for the protocol.
func (s Spec) String() string {
	if s.Kind == KindAURC {
		if s.Prefetch {
			return "AURC+P"
		}
		return "AURC"
	}
	label := s.TMMode.String()
	if s.TMMode.Prefetch() && s.TMOptions.Strategy != tmk.PrefetchReferenced {
		label += "(" + s.TMOptions.Strategy.String() + ")"
	}
	if s.TMOptions.NoPrefetchPriority {
		label += "(noprio)"
	}
	if s.TMOptions.LazyHybrid {
		label += "(hybrid)"
	}
	return label
}

// TM builds a TreadMarks spec.
func TM(m tmk.Mode) Spec { return Spec{Kind: KindTM, TMMode: m} }

// TMOpt builds a TreadMarks spec with explicit options.
func TMOpt(m tmk.Mode, o tmk.Options) Spec { return Spec{Kind: KindTM, TMMode: m, TMOptions: o} }

// AURC builds an AURC spec.
func AURC(prefetch bool) Spec { return Spec{Kind: KindAURC, Prefetch: prefetch} }

// DefaultWatchdog is the liveness window armed when Spec.Watchdog is 0:
// 20M cycles (200 ms of paper time) without any process progressing,
// while at least one is blocked, is far beyond any legitimate stall in
// these workloads — even a retransmission storm at the transport's
// maximum backoff resolves orders of magnitude faster.
const DefaultWatchdog sim.Time = 20_000_000

// StallInfo is the structured liveness report attached to a Result when
// the run deadlocked or the watchdog tripped: which processes were
// blocked on what, the protocol operations still in flight, and the
// reliable transport's retransmission state — enough to tell a wedged
// controller from a lost wakeup from a transport livelock without
// rerunning under a debugger.
type StallInfo struct {
	// Deadlock distinguishes a drained event queue with blocked
	// processes (deadlock) from a watchdog trip (livelock: events still
	// firing, nobody progressing).
	Deadlock bool
	// Report names the blocked processes, their wait reasons, and the
	// stall window.
	Report sim.StallReport
	// OpenOps lists the causal spans still in flight when the run
	// stalled (nil unless Spec.Spans was set).
	OpenOps []*spans.Op
	// UnackedMessages is the reliable transport's in-flight gauge:
	// messages sent but not yet acknowledged.
	UnackedMessages int
	// Retries is the transport's retransmission count so far.
	Retries uint64
}

// Result is the outcome of one simulated run.
type Result struct {
	// RunningTime is the parallel execution time in cycles.
	RunningTime sim.Time
	// Breakdown holds the per-processor accounting.
	Breakdown *stats.Breakdown
	// AppResult and SeqResult are the application's answer under the
	// protocol and under the sequential oracle.
	AppResult, SeqResult float64
	// Messages and Bytes summarize network traffic.
	Messages, Bytes uint64
	// Reliability counts injected faults and the transport's recovery
	// work (all-zero when Spec.Faults was nil or disabled).
	Reliability stats.Reliability
	// EventsRun is the number of simulation events the engine executed.
	EventsRun uint64
	// EventFingerprint is the engine's FNV-1a hash of the fired
	// (time, seq) event stream: two runs with equal fingerprints executed
	// bit-identical schedules (see sim.Engine.Fingerprint).
	EventFingerprint uint64
	// EngineStats is the engine's internal counter block (handoffs,
	// elided parks, heap high-water mark) for diagnostics and benchmarks.
	EngineStats sim.Stats
	// EngineProfile is the engine's self-profile (schema
	// dsm96/engine-profile/v1): window/merge-round accounting and
	// per-shard busy/merge-wait wall time. Always present; the
	// deterministic block is schedule-determined, the host block is
	// wall-clock (see sim.EngineProfile).
	EngineProfile *sim.EngineProfile
	// Protocol is the spec's label.
	Protocol string
	// App is the application's name.
	App string
	// Pages holds the per-page sharing profile (faults, invalidations,
	// diff traffic, reader/writer sets).
	Pages []stats.PageProfile
	// Spans is the causal-span report (nil unless Spec.Spans was set):
	// per-kind latency percentiles and stage decomposition, overlap
	// accounting, and the barrier critical-path chains.
	Spans *spans.Report
	// Stall carries the liveness report when the run deadlocked or the
	// watchdog tripped; Run returns the partial Result alongside the
	// error so callers can render it. Nil on completed runs.
	Stall *StallInfo
}

// Validated reports whether the parallel answer matches the sequential
// one within floating-point reduction tolerance.
func (r *Result) Validated() bool {
	a, b := r.AppResult, r.SeqResult
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return false
	}
	return math.Abs(a-b)/scale < 1e-6
}

// system is what core needs from a protocol implementation.
type system interface {
	dsm.System
	InstallProc(id int, p *sim.Proc)
	FinishProc(id int, p *sim.Proc)
	Breakdown(t sim.Time) *stats.Breakdown
}

// Run simulates app under the given protocol and machine configuration.
// The application's answer is validated against a sequential execution of
// the same code.
func Run(cfg params.Config, spec Spec, app dsm.App) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Machine-size-dependent apps learn the processor count before ANY
	// Setup — the sequential oracle below must use the same shared-data
	// layout as the parallel run it validates.
	if s, ok := app.(dsm.Sized); ok {
		s.SetProcs(cfg.Processors)
	}
	// Sequential oracle first (the app's Setup must reset all state).
	seq := dsm.RunSequential(app, cfg.PageSize)

	if err := spec.Faults.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	switch {
	case spec.Watchdog > 0:
		eng.SetWatchdog(spec.Watchdog)
	case spec.Watchdog == 0:
		eng.SetWatchdog(DefaultWatchdog)
	}
	if workers := spec.Workers; workers > 1 {
		// AURC applies remote updates by reaching into other nodes' state
		// inline, so it alone pins the engine sequential — same schedule,
		// same results, just unsharded. Everything else shards, including
		// traced, timeline, and span-tracked runs: instrumentation whose
		// order is global (the trace ring, span IDs, span completion)
		// records shard-locally through sim.Engine.Deferred and is merged
		// in global (time, seq) order at the barrier, so the artifacts are
		// byte-identical at any worker count (see internal/spans and
		// tmk's emit).
		if spec.Kind != KindAURC {
			eng.Parallelize(workers, cfg.Processors, network.MinDeliveryLookahead(&cfg))
		}
	}
	net := network.New(&cfg, eng, cfg.Processors)
	net.InstallFaults(faults.NewModel(spec.Faults, cfg.Processors))
	var sys system
	switch spec.Kind {
	case KindTM:
		sys = tmk.NewWithOptions(&cfg, eng, net, spec.TMMode, spec.TMOptions)
	case KindAURC:
		sys = aurc.New(&cfg, eng, net, spec.Prefetch)
	default:
		return nil, fmt.Errorf("core: unknown protocol kind %d", spec.Kind)
	}
	if spec.Faults.CtrlEnabled() {
		// Only TreadMarks controller modes have a controller to fail;
		// elsewhere (Base, AURC) the schedule is structurally vacuous.
		if cf, ok := sys.(interface{ InstallCtrlFaults(*faults.Plan) }); ok {
			cf.InstallCtrlFaults(spec.Faults)
		}
	}

	if spec.Tracer != nil {
		if tr, ok := sys.(interface{ SetTracer(*trace.Buffer) }); ok {
			tr.SetTracer(spec.Tracer)
		}
	}
	if spec.Timeline != nil {
		// Before InstallProc below: the protocols install the recording
		// accounting hook only when a recorder is attached.
		net.SetTimeline(spec.Timeline)
		if tl, ok := sys.(interface{ SetTimeline(*timeline.Recorder) }); ok {
			tl.SetTimeline(spec.Timeline)
		}
	}
	if spec.Spans != nil {
		// After SetTimeline (the controller trace hook chains onto the
		// recorder's) and before InstallProc (the charging accounting hook
		// must be the one installed). Bind resolves each node's shard view
		// so the tracker's globally-ordered writes defer to the merge
		// barrier on a sharded engine.
		spec.Spans.Bind(eng)
		net.SetSpans(spec.Spans)
		if sp, ok := sys.(interface{ SetSpans(*spans.Tracker) }); ok {
			sp.SetSpans(spec.Spans)
		}
	}
	app.Setup(sys.Heap())
	for id := 0; id < cfg.Processors; id++ {
		id := id
		var proc *sim.Proc
		proc = eng.NewProc(id, fmt.Sprintf("cpu%d", id), 0, func(p *sim.Proc) {
			app.Body(&dsm.Env{ID: id, P: p, Sys: sys})
			sys.FinishProc(id, p)
		})
		sys.InstallProc(id, proc)
	}
	if err := eng.Run(); err != nil {
		err = fmt.Errorf("core: %s/%s: %w", app.Name(), spec, err)
		var serr *sim.StallError
		if !errors.As(err, &serr) {
			return nil, err
		}
		// Liveness failure: return the partial result alongside the
		// error so callers can render the stall report — who was
		// blocked on what, which protocol operations were in flight,
		// and whether the transport still had messages outstanding.
		res := &Result{
			RunningTime:      eng.Now(),
			Breakdown:        sys.Breakdown(eng.Now()),
			AppResult:        math.NaN(),
			SeqResult:        seq,
			Messages:         net.Messages(),
			Bytes:            net.Bytes(),
			Reliability:      net.Rel(),
			EventsRun:        eng.EventsRun(),
			EventFingerprint: eng.Fingerprint(),
			EngineStats:      eng.Stats(),
			EngineProfile:    eng.Profile(),
			Protocol:         spec.String(),
			App:              app.Name(),
			Stall: &StallInfo{
				Deadlock:        serr.Deadlock,
				Report:          serr.Report,
				OpenOps:         spec.Spans.OpenOps(),
				UnackedMessages: net.Unacked(),
				Retries:         net.Rel().Retries,
			},
		}
		return res, err
	}
	var pages []stats.PageProfile
	if pp, ok := sys.(stats.PageProfiler); ok {
		pages = pp.PageProfiles()
	}
	res := &Result{
		RunningTime:      eng.Now(),
		Pages:            pages,
		Breakdown:        sys.Breakdown(eng.Now()),
		AppResult:        app.Result(),
		SeqResult:        seq,
		Messages:         net.Messages(),
		Bytes:            net.Bytes(),
		Reliability:      net.Rel(),
		EventsRun:        eng.EventsRun(),
		EventFingerprint: eng.Fingerprint(),
		EngineStats:      eng.Stats(),
		EngineProfile:    eng.Profile(),
		Protocol:         spec.String(),
		App:              app.Name(),
	}
	if spec.Spans != nil {
		res.Spans = spec.Spans.Report()
	}
	if !res.Validated() {
		return res, fmt.Errorf("core: %s under %s computed %v, sequential oracle %v",
			app.Name(), spec, res.AppResult, res.SeqResult)
	}
	return res, nil
}

// SequentialCycles runs the app on a single processor under base
// TreadMarks (no remote communication) and returns its running time —
// the denominator the paper's speedup figures use.
func SequentialCycles(cfg params.Config, app dsm.App) (sim.Time, error) {
	cfg.Processors = 1
	r, err := Run(cfg, TM(tmk.Base), app)
	if err != nil {
		return 0, err
	}
	return r.RunningTime, nil
}
