package pipeline

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"dsm96/internal/core"
	"dsm96/internal/experiments"
)

// ManifestSchema tags the run-folder manifest.
const ManifestSchema = "dsm96/run-manifest/v1"

// Host records where a run's wall-clock numbers were measured. The
// num_cpu field is the host class: trend comparisons refuse to compare
// throughput across different values (metricsdiff -trend), because an
// events/sec regression on an 8-core runner and a 1-core container are
// different facts.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// CellResult is one measured grid point. Cycles, Events, Fingerprint,
// and MetricsKeys are deterministic contracts of the simulator —
// identical on any host at any worker count. WallNS and EventsPerSec
// are wall-clock facts about the measuring host.
type CellResult struct {
	ID       string `json:"id"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`
	Profile  string `json:"profile"`
	Procs    int    `json:"procs"`
	Workers  int    `json:"workers"`
	// Fault is the fault scenario's name; empty (and omitted) on
	// fault-free cells, so pre-chaos manifests and trend records keep
	// their byte-exact shape.
	Fault string `json:"fault,omitempty"`
	Scale string `json:"scale"`

	Cycles      int64  `json:"cycles"`
	Events      uint64 `json:"events"`
	Fingerprint string `json:"fingerprint"`
	// MetricsKeys is an FNV-1a hash over the cell's run-metrics schema
	// tag plus its sorted flattened key paths — a drift detector for
	// the metrics *shape*, independent of the values.
	MetricsKeys string `json:"metrics_keys"`

	// WallNS is the fastest measured repeat (warmup discarded).
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Repeats      int     `json:"repeats"`
	Warmup       int     `json:"warmup"`

	Error string `json:"error,omitempty"`

	result *core.Result
}

// RunResult is one executed experiment, ready to be written as a run
// folder, folded into a trend record, or rendered into a table.
type RunResult struct {
	Experiment Experiment
	Host       Host
	Cells      []CellResult
}

// Failed returns the IDs of cells that errored.
func (r *RunResult) Failed() []string {
	var out []string
	for i := range r.Cells {
		if r.Cells[i].Error != "" {
			out = append(out, r.Cells[i].ID)
		}
	}
	return out
}

// RunExperiment executes every cell of the experiment: warmup+repeats
// executions per cell on the shared simulation pool, the fastest
// measured repeat kept for throughput. Each cell's executions must
// agree bit-for-bit on fingerprint, cycles, and events (a repeat
// divergence is a determinism escape), and cells that differ only in
// worker count must agree with each other — the parallel engine's
// contract, enforced on every pipeline run. Per-cell failures are
// recorded in the cell (and summarized by RunResult.Failed), not
// returned: one broken cell must not hide the rest of the grid.
func RunExperiment(e *Experiment) (*RunResult, error) {
	cells, err := e.Expand()
	if err != nil {
		return nil, err
	}
	out := &RunResult{Experiment: *e, Host: CurrentHost()}
	timeout := time.Duration(e.TimeoutSec) * time.Second
	for i := range cells {
		out.Cells = append(out.Cells, runCell(&cells[i], e.Repeats, e.Warmup, timeout))
	}
	// The cross-worker determinism contract: within one (app, protocol,
	// profile, procs, fault) group, every worker count must fire the
	// same schedule — fault injections are keyed by message identity,
	// not by shard, so a chaos cell shards as deterministically as a
	// clean one.
	type groupKey struct {
		app, proto, prof, fault string
		procs                   int
	}
	first := map[groupKey]*CellResult{}
	for i := range out.Cells {
		c := &out.Cells[i]
		if c.Error != "" {
			continue
		}
		k := groupKey{c.App, c.Protocol, c.Profile, c.Fault, c.Procs}
		if prev, ok := first[k]; !ok {
			first[k] = c
		} else if c.Fingerprint != prev.Fingerprint || c.Events != prev.Events || c.Cycles != prev.Cycles {
			c.Error = fmt.Sprintf(
				"determinism violation: workers=%d fired (%s, %d events, %d cycles) but workers=%d fired (%s, %d events, %d cycles)",
				c.Workers, c.Fingerprint, c.Events, c.Cycles,
				prev.Workers, prev.Fingerprint, prev.Events, prev.Cycles)
		}
	}
	return out, nil
}

// runCell executes one cell's warmup+repeats batch under the timeout.
func runCell(c *Cell, repeats, warmup int, timeout time.Duration) CellResult {
	res := CellResult{
		ID: c.ID(), App: c.App, Protocol: c.Protocol, Profile: c.Profile,
		Procs: c.Procs, Workers: c.Workers, Fault: c.Fault, Scale: c.ScaleName,
		Repeats: repeats, Warmup: warmup,
	}
	total := warmup + repeats
	batch := make([]experiments.Cell, total)
	for i := range batch {
		batch[i] = experiments.Cell{App: c.App, Spec: c.spec, Cfg: c.cfg, Scale: c.Scale}
	}
	runs, ok := runWithTimeout(batch, timeout)
	if !ok {
		res.Error = fmt.Sprintf("timed out after %s (%d executions)", timeout, total)
		return res
	}
	var ref *experiments.Run
	minWall := int64(1) << 62
	for i := range runs {
		r := &runs[i]
		if r.Err != nil {
			res.Error = r.Err.Error()
			return res
		}
		if ref == nil {
			ref = r
		} else if r.Result.EventFingerprint != ref.Result.EventFingerprint ||
			r.Result.EventsRun != ref.Result.EventsRun ||
			r.Result.RunningTime != ref.Result.RunningTime {
			res.Error = fmt.Sprintf(
				"determinism violation: repeat %d fired (%016x, %d events, %d cycles), repeat 0 fired (%016x, %d events, %d cycles)",
				i, r.Result.EventFingerprint, r.Result.EventsRun, r.Result.RunningTime,
				ref.Result.EventFingerprint, ref.Result.EventsRun, ref.Result.RunningTime)
			return res
		}
		if i >= warmup && int64(r.Wall) < minWall {
			minWall = int64(r.Wall)
		}
	}
	if minWall < 1 {
		minWall = 1 // a sub-nanosecond reading would make events/sec non-finite
	}
	res.WallNS = minWall
	res.Cycles = int64(ref.Result.RunningTime)
	res.Events = ref.Result.EventsRun
	res.Fingerprint = fmt.Sprintf("%016x", ref.Result.EventFingerprint)
	res.EventsPerSec = float64(res.Events) / (float64(res.WallNS) / 1e9)
	res.result = ref.Result
	if keys, err := MetricsKeyHash(ref.Result); err != nil {
		res.Error = fmt.Sprintf("metrics key hash: %v", err)
	} else {
		res.MetricsKeys = keys
	}
	return res
}

// runWithTimeout executes the batch on the shared pool, bounded by the
// timeout (0 = none). On timeout the batch's goroutine is abandoned —
// core.Run is not cancellable — which is acceptable for a CLI run that
// is about to report the cell as failed.
func runWithTimeout(batch []experiments.Cell, timeout time.Duration) ([]experiments.Run, bool) {
	if timeout <= 0 {
		return experiments.RunCells(batch), true
	}
	done := make(chan []experiments.Run, 1)
	go func() { done <- experiments.RunCells(batch) }()
	select {
	case runs := <-done:
		return runs, true
	case <-time.After(timeout):
		return nil, false
	}
}

// MetricsKeyHash hashes the run-metrics schema tag plus the sorted
// flattened key paths of a result's metrics JSON — the metrics *shape*
// drift detector the manifest, trend records, and job-server results
// all carry.
func MetricsKeyHash(res *core.Result) (string, error) {
	var buf jsonBuffer
	if err := res.Metrics().WriteJSON(&buf); err != nil {
		return "", err
	}
	var v any
	if err := json.Unmarshal(buf.b, &v); err != nil {
		return "", err
	}
	keys := map[string]bool{}
	flattenKeys("", v, keys)
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, k := range sorted {
		io.WriteString(h, k)
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// flattenKeys records every dotted scalar path of a decoded JSON value.
// Array elements collapse to one segment ("#") so a per-processor list
// does not make the hash depend on the processor count.
func flattenKeys(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenKeys(p, sub, out)
		}
	case []any:
		for _, sub := range x {
			p := "#"
			if prefix != "" {
				p = prefix + ".#"
			}
			flattenKeys(p, sub, out)
		}
	default:
		out[prefix] = true
	}
}

// Manifest is the run folder's index: the experiment spec echoed, the
// measuring host, and one entry per cell with its determinism
// fingerprints and the SHA-256 of its metrics artifact — the
// hash-anchored ledger that makes a run folder self-verifying.
type Manifest struct {
	Schema     string         `json:"schema"`
	Experiment Experiment     `json:"experiment"`
	Stamp      string         `json:"stamp"`
	Host       Host           `json:"host"`
	Cells      []ManifestCell `json:"cells"`
}

// ManifestCell is one cell's manifest entry.
type ManifestCell struct {
	CellResult
	MetricsFile   string `json:"metrics_file,omitempty"`
	MetricsSHA256 string `json:"metrics_sha256,omitempty"`
}

// writeArtifact is WriteFileAtomic, indirected so tests can kill a
// write partway through.
var writeArtifact = experiments.WriteFileAtomic

// WriteRunFolder writes one dated run folder under dir:
//
//	<dir>/<stamp>-<experiment>/
//	  manifest.json   (dsm96/run-manifest/v1)
//	  cells.csv       (canonical: fixed columns, cell order)
//	  metrics/cell-NNNN-<app>-<proto>-<profile>-pN-wM.json
//
// Every artifact goes through the atomic temp-and-rename writer, and
// the manifest — which records each metrics file's SHA-256 — is
// written last, so a killed run never leaves a folder whose manifest
// vouches for artifacts that do not exist or are truncated. Returns
// the run folder path.
func WriteRunFolder(dir, stamp string, r *RunResult) (string, error) {
	folder := filepath.Join(dir, stamp+"-"+r.Experiment.Name)
	if err := os.MkdirAll(filepath.Join(folder, "metrics"), 0o755); err != nil {
		return "", fmt.Errorf("pipeline: %w", err)
	}
	man := Manifest{
		Schema:     ManifestSchema,
		Experiment: r.Experiment,
		Stamp:      stamp,
		Host:       r.Host,
		Cells:      make([]ManifestCell, 0, len(r.Cells)),
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		mc := ManifestCell{CellResult: *c}
		if c.result != nil {
			// Re-derive the cell to name the artifact; c.ID is unique, the
			// stem adds the sequence number for sortable listings.
			stem := (&Cell{App: c.App, Protocol: c.Protocol, Profile: c.Profile,
				Procs: c.Procs, Workers: c.Workers, Fault: c.Fault}).Stem(i)
			rel := filepath.Join("metrics", stem+".json")
			h := sha256.New()
			err := writeArtifact(filepath.Join(folder, rel), func(w io.Writer) error {
				return c.result.Metrics().WriteJSON(io.MultiWriter(w, h))
			})
			if err != nil {
				return "", fmt.Errorf("pipeline: cell %s: %w", c.ID, err)
			}
			mc.MetricsFile = rel
			mc.MetricsSHA256 = hex.EncodeToString(h.Sum(nil))
		}
		man.Cells = append(man.Cells, mc)
	}
	if err := writeArtifact(filepath.Join(folder, "cells.csv"), func(w io.Writer) error {
		return writeCSV(w, r)
	}); err != nil {
		return "", fmt.Errorf("pipeline: cells.csv: %w", err)
	}
	if err := writeArtifact(filepath.Join(folder, "manifest.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	}); err != nil {
		return "", fmt.Errorf("pipeline: manifest.json: %w", err)
	}
	return folder, nil
}

// csvHeader is the canonical cells.csv column set, in order.
var csvHeader = []string{
	"experiment", "app", "protocol", "profile", "procs", "workers", "fault", "scale",
	"repeats", "warmup", "cycles", "events", "fingerprint", "metrics_keys",
	"wall_ns", "events_per_sec", "error",
}

func writeCSV(w io.Writer, r *RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		row := []string{
			r.Experiment.Name, c.App, c.Protocol, c.Profile,
			strconv.Itoa(c.Procs), strconv.Itoa(c.Workers), c.Fault, c.Scale,
			strconv.Itoa(c.Repeats), strconv.Itoa(c.Warmup),
			strconv.FormatInt(c.Cycles, 10), strconv.FormatUint(c.Events, 10),
			c.Fingerprint, c.MetricsKeys,
			strconv.FormatInt(c.WallNS, 10),
			strconv.FormatFloat(c.EventsPerSec, 'f', 0, 64),
			c.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Stamp formats a run-folder timestamp (UTC, sortable).
func Stamp(t time.Time) string { return t.UTC().Format("20060102-150405") }
