package sim

// Engine self-profiling: always-on, cheap accounting of where the
// parallel engine spends its effort — window/barrier round counts,
// per-window event and deferred-action histograms, per-shard busy and
// barrier-wait wall time, and the coordinator's merge wall time. The
// profile answers the scaling questions ARCHITECTURE.md raises about
// the merge barrier (is replay the ceiling at 256 nodes?) without a Go
// profiler run: the merge-wait fraction is MergeWallNS / RunWallNS, and
// the window histograms show how much concurrency each lookahead
// horizon actually exposed.
//
// The profile separates two kinds of fields. Everything under
// "deterministic" is a pure function of the simulated schedule —
// identical across repeat runs on any host (given the same worker
// count) — so metricsdiff can gate it exactly. Everything under "host"
// is wall-clock measurement of the machine the run happened on and is
// never comparable across hosts.

import (
	"encoding/json"
	"io"
	"math/bits"
	"runtime"
)

// EngineProfileSchema tags the engine self-profile JSON format
// (dsmsim -engine-profile, cmd/bench -engine-profile, and
// metricsdiff -engine-profile all speak it).
const EngineProfileSchema = "dsm96/engine-profile/v1"

// histBuckets bounds the power-of-two histogram: bucket i counts values
// whose bit length is i, so bucket 0 is exactly zero and bucket 64
// covers the top half of the uint64 range.
const histBuckets = 65

// hist is the internal power-of-two histogram accumulator.
type hist struct {
	count, min, max uint64
	buckets         [histBuckets]uint64
}

func (h *hist) add(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.buckets[bits.Len64(v)]++
}

// HistBucket is one non-empty power-of-two bucket: Count values were
// <= Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Hist is the exported histogram: count/min/max plus the non-empty
// power-of-two buckets in ascending order. Fully determined by the
// added values, so its JSON form is byte-stable.
type Hist struct {
	Count   uint64       `json:"count"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func (h *hist) export() Hist {
	out := Hist{Count: h.count, Min: h.min, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		out.Buckets = append(out.Buckets, HistBucket{Le: le, Count: c})
	}
	return out
}

// EngineProfileShard is one shard's deterministic accounting.
type EngineProfileShard struct {
	Shard int `json:"shard"`
	// Nodes is how many simulated nodes the shard owns.
	Nodes int `json:"nodes"`
	// Events is how many events the shard fired across all windows.
	Events uint64 `json:"events"`
	// Handoffs and MaxHeapDepth mirror Stats for this shard.
	Handoffs     uint64 `json:"handoffs"`
	MaxHeapDepth int    `json:"max_heap_depth"`
}

// EngineProfileDeterministic is the schedule-determined block: byte
// identical across repeat runs of the same configuration at the same
// worker count, on any host. metricsdiff -engine-profile compares it
// exactly.
type EngineProfileDeterministic struct {
	// EventsRun is the total fired event count (equals Stats.EventsRun).
	EventsRun uint64 `json:"events_run"`
	// Windows counts merge rounds (0 on a sequential engine).
	Windows uint64 `json:"windows"`
	// LookaheadCycles is the conservative horizon margin (0 sequential).
	LookaheadCycles int64 `json:"lookahead_cycles"`
	// ReplayedActions is the total number of logged scheduling side
	// effects the coordinator re-executed at merge barriers; of those,
	// DeferredCalls were Engine.Deferred closures (cross-shard network
	// walks, globally-ordered instrumentation).
	ReplayedActions uint64 `json:"replayed_actions"`
	DeferredCalls   uint64 `json:"deferred_calls"`
	// WindowEvents is the per-window fired-event distribution — how
	// much work each lookahead horizon exposed.
	WindowEvents Hist `json:"window_events"`
	// WindowAdvanceCycles is the distribution of simulated-clock
	// advance between consecutive windows (always >= the lookahead).
	WindowAdvanceCycles Hist `json:"window_advance_cycles"`
	// WindowActions is the per-window deferred-replay queue depth: how
	// many logged actions each merge barrier had to re-execute.
	WindowActions Hist `json:"window_actions"`
	// Shards is the per-shard deterministic accounting (empty when
	// sequential).
	Shards []EngineProfileShard `json:"shards,omitempty"`
}

// EngineProfileShardWall is one shard's wall-clock split.
type EngineProfileShardWall struct {
	Shard int `json:"shard"`
	// BusyNS is wall time spent executing window events; BarrierWaitNS
	// is wall time between finishing a window and being handed the
	// next one (waiting on slower shards plus the coordinator's merge).
	BusyNS        int64 `json:"busy_ns"`
	BarrierWaitNS int64 `json:"barrier_wait_ns"`
}

// EngineProfileHost is the host-dependent block: wall-clock timings of
// the machine the run executed on. Never comparable across hosts (or
// even across runs on a loaded host); metricsdiff -engine-profile
// ignores it.
type EngineProfileHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// RunWallNS is the wall time of Engine.Run; MergeWallNS is the part
	// the coordinator spent inside merge barriers (replay + rekey), the
	// serial section Amdahl charges against scaling.
	RunWallNS   int64 `json:"run_wall_ns"`
	MergeWallNS int64 `json:"merge_barrier_wall_ns"`
	// Shards is the per-shard busy/wait wall split (empty sequential).
	Shards []EngineProfileShardWall `json:"shards,omitempty"`
}

// EngineProfile is the engine's self-profile, exported as
// dsm96/engine-profile/v1 JSON.
type EngineProfile struct {
	Schema  string `json:"schema"`
	Workers int    `json:"workers"`

	Deterministic EngineProfileDeterministic `json:"deterministic"`
	Host          EngineProfileHost          `json:"host"`
}

// MergeWaitFraction is the coordinator's merge-barrier share of the
// run's wall time — the serial fraction that bounds further worker
// scaling. Zero on a sequential engine (there is no merge).
func (p *EngineProfile) MergeWaitFraction() float64 {
	if p == nil || p.Host.RunWallNS <= 0 {
		return 0
	}
	return float64(p.Host.MergeWallNS) / float64(p.Host.RunWallNS)
}

// WriteJSON serializes the profile as indented JSON with a trailing
// newline. Structs and slices only, so the byte stream is deterministic
// for fixed contents.
func (p *EngineProfile) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Profile snapshots the engine's self-profile. Call it on the root
// engine after Run returns; the counters accumulate across Stop/Run
// cycles.
func (e *Engine) Profile() *EngineProfile {
	p := &EngineProfile{
		Schema:  EngineProfileSchema,
		Workers: e.Workers(),
		Deterministic: EngineProfileDeterministic{
			EventsRun: e.eventsRun,
		},
		Host: EngineProfileHost{
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			RunWallNS:  e.runWallNS,
		},
	}
	par := e.par
	if par == nil || e.sh != nil {
		return p
	}
	d := &p.Deterministic
	d.Windows = par.windows
	d.LookaheadCycles = par.lookahead
	d.ReplayedActions = par.replayedActions
	d.DeferredCalls = par.deferredCalls
	d.WindowEvents = par.winEvents.export()
	d.WindowAdvanceCycles = par.winAdvance.export()
	d.WindowActions = par.winActions.export()
	nodesOf := make([]int, len(par.shards))
	for _, s := range par.shardOf {
		nodesOf[s]++
	}
	p.Host.MergeWallNS = par.mergeWallNS
	for w, se := range par.shards {
		d.Shards = append(d.Shards, EngineProfileShard{
			Shard:        w,
			Nodes:        nodesOf[w],
			Events:       se.sh.eventsFired,
			Handoffs:     se.handoffs,
			MaxHeapDepth: se.maxHeapDepth,
		})
		p.Host.Shards = append(p.Host.Shards, EngineProfileShardWall{
			Shard:         w,
			BusyNS:        se.sh.busyNS,
			BarrierWaitNS: se.sh.waitNS,
		})
	}
	return p
}
