package aurc

import (
	"testing"

	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
)

func newTestAURC(procs int) (*Protocol, *sim.Engine) {
	cfg := params.Default()
	cfg.Processors = procs
	eng := sim.NewEngine()
	net := network.New(&cfg, eng, procs)
	return New(&cfg, eng, net, false), eng
}

func TestWriteCacheCombining(t *testing.T) {
	pr, eng := newTestAURC(2)
	n := pr.nodes[0]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		// Two writes to the same 32-byte block combine into one entry.
		n.wc.add(p, 1, 0, 4)
		n.wc.add(p, 1, 4, 4)
		if len(n.wc.entries) != 1 {
			t.Errorf("entries = %d, want 1 (combined)", len(n.wc.entries))
		}
		// A different block is a second entry.
		n.wc.add(p, 1, 32, 4)
		if len(n.wc.entries) != 2 {
			t.Errorf("entries = %d, want 2", len(n.wc.entries))
		}
		// An 8-byte write crossing a block boundary touches two blocks:
		// word 60 combines into the existing block-32 entry, word 64
		// opens a third entry.
		n.wc.add(p, 1, 60, 8)
		if len(n.wc.entries) != 3 {
			t.Errorf("entries = %d, want 3 (low word combined, high word new)", len(n.wc.entries))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCacheEvictionFIFO(t *testing.T) {
	pr, eng := newTestAURC(2)
	n := pr.nodes[0]
	sentBefore := n.updatesSent[1]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		// Capacity is 4 (Table 1): the fifth distinct block evicts the
		// oldest entry onto the network.
		for i := int64(0); i < 5; i++ {
			n.wc.add(p, 1, i*32, 4)
		}
		if len(n.wc.entries) != 4 {
			t.Errorf("entries = %d, want 4 (capacity)", len(n.wc.entries))
		}
		if n.updatesSent[1] != sentBefore+1 {
			t.Errorf("updatesSent = %d, want exactly one eviction flush", n.updatesSent[1]-sentBefore)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAllDelivers(t *testing.T) {
	pr, eng := newTestAURC(2)
	n0, n1 := pr.nodes[0], pr.nodes[1]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n0.frames.WriteU32(100, 7777)
		n0.wc.add(p, 1, 100, 4)
		n0.wc.flushAll()
		if len(n0.wc.entries) != 0 {
			t.Error("flushAll left entries")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n1.frames.ReadU32(100); got != 7777 {
		t.Fatalf("update not applied at destination: %d", got)
	}
	if n1.updatesArrived != 1 {
		t.Fatalf("arrived = %d, want 1", n1.updatesArrived)
	}
}

func TestDrainWaiters(t *testing.T) {
	pr, eng := newTestAURC(2)
	n0, n1 := pr.nodes[0], pr.nodes[1]
	var drainedAt sim.Time = -1
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n0.wc.add(p, 1, 0, 4)
		n0.wc.flushAll() // one update in flight toward node 1
		n1.waitUpdatesDrained(func() { drainedAt = eng.Now() })
		if drainedAt >= 0 {
			t.Error("drain reported before the update arrived")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if drainedAt < 0 {
		t.Fatal("drain waiter never fired")
	}
	// With nothing in flight the callback fires immediately.
	fired := false
	n1.waitUpdatesDrained(func() { fired = true })
	if !fired {
		t.Fatal("empty drain did not fire synchronously")
	}
}

func TestCategoryForAURC(t *testing.T) {
	if categoryFor(reasonFetch).String() != "data" {
		t.Error("fetch not data")
	}
	if categoryFor(reasonBarrier).String() != "synch" {
		t.Error("barrier not synch")
	}
	if categoryFor(reasonSteal).String() != "ipc" {
		t.Error("steal not ipc")
	}
	if categoryFor("???").String() != "others" {
		t.Error("unknown not others")
	}
}

func TestUpdateHeaderAccounting(t *testing.T) {
	pr, eng := newTestAURC(2)
	n := pr.nodes[0]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		msgs := n.st.MsgsSent
		n.wc.add(p, 1, 0, 4)
		n.wc.flushAll()
		if n.st.MsgsSent != msgs+1 {
			t.Errorf("messages = %d, want +1", n.st.MsgsSent-msgs)
		}
		if n.st.BytesSent < uint64(updateHeaderBytes+4) {
			t.Errorf("bytes = %d too small", n.st.BytesSent)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
