// Package apps implements the paper's application workload against the
// DSM API: TSP, Water, Radix, Barnes, Ocean, and Em3d (Section 4.2).
// Each application is written exactly once and runs unchanged under the
// sequential oracle, every TreadMarks variant, and AURC; results are
// designed to be independent of the processor count so that the
// sequential run validates every parallel one.
//
// Problem sizes default to scaled-down versions of the paper's inputs
// (the paper itself scaled down against Iftode et al. for simulation
// time); constructors accept explicit sizes, and Paper* constructors
// reproduce the published inputs.
package apps

import (
	"fmt"

	"dsm96/internal/dsm"
)

// rng is a small deterministic PCG-style generator so that workloads are
// bit-identical across runs and independent of Go's rand package.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*2654435761 + 1} }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	x := r.s
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// f64 returns a value in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// blockRange splits n items into nprocs nearly equal contiguous blocks
// and returns processor id's [lo, hi) range.
func blockRange(n, nprocs, id int) (lo, hi int) {
	per := n / nprocs
	rem := n % nprocs
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Default returns the scaled default instance of the named application
// (the names match the paper's figures: tsp, water, radix, barnes,
// ocean, em3d).
func Default(name string) (dsm.App, error) {
	switch name {
	case "tsp":
		return DefaultTSP(), nil
	case "water":
		return DefaultWater(), nil
	case "radix":
		return DefaultRadix(), nil
	case "barnes":
		return DefaultBarnes(), nil
	case "ocean":
		return DefaultOcean(), nil
	case "em3d":
		return DefaultEm3d(), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names lists the applications in the paper's order.
func Names() []string { return []string{"tsp", "water", "radix", "barnes", "em3d", "ocean"} }

// Tiny returns a very small instance of the named application, for tests.
func Tiny(name string) (dsm.App, error) {
	switch name {
	case "tsp":
		return NewTSP(7), nil
	case "water":
		return NewWater(24, 2), nil
	case "radix":
		return NewRadix(4096, 256), nil
	case "barnes":
		return NewBarnes(48, 2), nil
	case "ocean":
		return NewOcean(34, 6), nil
	case "em3d":
		return NewEm3d(512, 3, 4, 0.10), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}
