package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsm96/internal/experiments"
)

func smokeExperiment() *Experiment {
	return &Experiment{
		Name: "test-smoke", Scale: "tiny", Repeats: 2, Warmup: 1,
		Grid: Grid{
			Apps: []string{"water"}, Protocols: []string{"Base", "I+P+D"},
			Profiles: []string{"pci1996"}, Procs: []int{4}, Workers: []int{1, 2},
		},
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	res, err := RunExperiment(smokeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if failed := res.Failed(); len(failed) > 0 {
		t.Fatalf("failed cells: %v", failed)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Cycles <= 0 || c.Events == 0 {
			t.Errorf("%s: empty run (%d cycles, %d events)", c.ID, c.Cycles, c.Events)
		}
		if len(c.Fingerprint) != 16 || len(c.MetricsKeys) != 16 {
			t.Errorf("%s: malformed hashes %q / %q", c.ID, c.Fingerprint, c.MetricsKeys)
		}
		if c.WallNS <= 0 || c.EventsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput (%d ns, %f ev/s)", c.ID, c.WallNS, c.EventsPerSec)
		}
		if c.Repeats != 2 || c.Warmup != 1 {
			t.Errorf("%s: repeats/warmup %d/%d not echoed", c.ID, c.Repeats, c.Warmup)
		}
	}
	// The cross-worker contract: w1 and w2 cells of the same group agree.
	byID := map[string]*CellResult{}
	for i := range res.Cells {
		byID[res.Cells[i].ID] = &res.Cells[i]
	}
	for _, proto := range []string{"Base", "I+P+D"} {
		a := byID[fmt.Sprintf("pci1996/water/%s/p4/w1", proto)]
		b := byID[fmt.Sprintf("pci1996/water/%s/p4/w2", proto)]
		if a == nil || b == nil {
			t.Fatalf("missing cells for %s", proto)
		}
		if a.Fingerprint != b.Fingerprint || a.Cycles != b.Cycles || a.Events != b.Events {
			t.Errorf("%s: worker counts disagree: w1 (%s, %d, %d) vs w2 (%s, %d, %d)",
				proto, a.Fingerprint, a.Cycles, a.Events, b.Fingerprint, b.Cycles, b.Events)
		}
	}
}

func TestRunCellTimeout(t *testing.T) {
	e := smokeExperiment()
	cells, err := e.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := runCell(&cells[0], 1, 0, time.Nanosecond)
	if got.Error == "" || !strings.Contains(got.Error, "timed out") {
		t.Fatalf("1ns timeout did not trip: error = %q", got.Error)
	}
}

func TestWriteRunFolder(t *testing.T) {
	res, err := RunExperiment(smokeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	folder, err := WriteRunFolder(dir, "20260101-000000", res)
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	buf, err := os.ReadFile(filepath.Join(folder, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		t.Fatalf("manifest.json: %v", err)
	}
	if man.Schema != ManifestSchema {
		t.Errorf("manifest schema %q, want %q", man.Schema, ManifestSchema)
	}
	if len(man.Cells) != len(res.Cells) {
		t.Fatalf("manifest has %d cells, want %d", len(man.Cells), len(res.Cells))
	}
	for _, mc := range man.Cells {
		if mc.MetricsFile == "" || mc.MetricsSHA256 == "" {
			t.Errorf("%s: missing metrics artifact reference", mc.ID)
			continue
		}
		if _, err := os.Stat(filepath.Join(folder, mc.MetricsFile)); err != nil {
			t.Errorf("%s: manifest vouches for %s but: %v", mc.ID, mc.MetricsFile, err)
		}
	}
	csv, err := os.ReadFile(filepath.Join(folder, "cells.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines != len(res.Cells)+1 {
		t.Errorf("cells.csv has %d lines, want %d", lines, len(res.Cells)+1)
	}
}

// TestWriteRunFolderKilledMidWrite simulates the process dying partway
// through writing an artifact: the atomic writer must leave neither the
// target file nor a temp file behind, and because the manifest is
// written last, a kill during any earlier artifact leaves no manifest —
// so no folder can exist whose manifest vouches for missing artifacts.
func TestWriteRunFolderKilledMidWrite(t *testing.T) {
	res, err := RunExperiment(smokeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	orig := writeArtifact
	defer func() { writeArtifact = orig }()

	for _, kill := range []string{"metrics/", "cells.csv"} {
		t.Run(kill, func(t *testing.T) {
			writeArtifact = func(path string, write func(io.Writer) error) error {
				if strings.Contains(path, kill) {
					return experiments.WriteFileAtomic(path, func(w io.Writer) error {
						io.WriteString(w, "partial garbage") // bytes flushed before the "kill"
						return fmt.Errorf("simulated kill during %s", kill)
					})
				}
				return orig(path, write)
			}
			dir := t.TempDir()
			if _, err := WriteRunFolder(dir, "20260101-000000", res); err == nil {
				t.Fatal("WriteRunFolder succeeded despite a killed write")
			}
			folder := filepath.Join(dir, "20260101-000000-test-smoke")
			if _, err := os.Stat(filepath.Join(folder, "manifest.json")); !os.IsNotExist(err) {
				t.Error("manifest.json exists after a killed earlier write — it must be written last")
			}
			// No partial target, no leftover temp files anywhere in the folder.
			filepath.Walk(folder, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() {
					return nil
				}
				if strings.Contains(path, kill) {
					t.Errorf("killed artifact %s still exists", path)
				}
				if strings.Contains(filepath.Base(path), ".tmp") {
					t.Errorf("leftover temp file %s", path)
				}
				return nil
			})
		})
	}
}

func TestStamp(t *testing.T) {
	got := Stamp(time.Date(2026, 8, 9, 12, 34, 56, 0, time.UTC))
	if got != "20260809-123456" {
		t.Errorf("Stamp = %q", got)
	}
}
