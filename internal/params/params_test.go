package params

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1Defaults pins every value from Table 1 of the paper.
func TestTable1Defaults(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Processors", int64(c.Processors), 16},
		{"TLBSize", int64(c.TLBSize), 128},
		{"TLBFillTime", c.TLBFillTime, 100},
		{"InterruptTime", c.InterruptTime, 400},
		{"PageSize", int64(c.PageSize), 4096},
		{"CacheSize", int64(c.CacheSize), 128 * 1024},
		{"WriteBufferSize", int64(c.WriteBufferSize), 4},
		{"WriteCacheSize", int64(c.WriteCacheSize), 4},
		{"CacheLineSize", int64(c.CacheLineSize), 32},
		{"MemSetupTime", c.MemSetupTime, 10},
		{"MemCyclesPerWord", c.MemCyclesPerWord, 3},
		{"PCISetupTime", c.PCISetupTime, 10},
		{"PCICyclesPerWord", c.PCICyclesPerWord, 3},
		{"MessagingOverhead", c.MessagingOverhead, 200},
		{"SwitchLatency", c.SwitchLatency, 4},
		{"WireLatency", c.WireLatency, 2},
		{"ListProcessing", c.ListProcessing, 6},
		{"TwinCyclesPerWord", c.TwinCyclesPerWord, 5},
		{"DiffCyclesPerWord", c.DiffCyclesPerWord, 7},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if c.NetPathBytesPerCycle != 1.0 {
		t.Errorf("NetPathBytesPerCycle = %v, want 1.0 (8-bit path)", c.NetPathBytesPerCycle)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Processors = 0 },
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.PageSize = 4097 },
		func(c *Config) { c.CacheLineSize = 0 },
		func(c *Config) { c.CacheSize = 100 }, // not a multiple of line
		func(c *Config) { c.TLBSize = 0 },
		func(c *Config) { c.WriteBufferSize = 0 },
		func(c *Config) { c.WriteCacheSize = -1 },
		func(c *Config) { c.NetPathBytesPerCycle = 0 },
		func(c *Config) { c.MemCyclesPerWord = 0 },
		func(c *Config) { c.DMADiffFullCycles = 10 },
	}
	for i, mut := range mutations {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

// TestMeshScales checks the big-mesh configs the scaling benchmarks run
// on: only the node count changes, and every size validates.
func TestMeshScales(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		c := Mesh(n)
		if c.Processors != n {
			t.Errorf("Mesh(%d).Processors = %d", n, c.Processors)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Mesh(%d) invalid: %v", n, err)
		}
		c.Processors = Default().Processors
		if c != Default() {
			t.Errorf("Mesh(%d) changed a parameter other than Processors", n)
		}
	}
}

func TestDerivedTimings(t *testing.T) {
	c := Default()
	if got := c.PageWords(); got != 1024 {
		t.Errorf("PageWords = %d, want 1024", got)
	}
	if got := c.LineWords(); got != 8 {
		t.Errorf("LineWords = %d, want 8", got)
	}
	if got := c.MemLineTime(); got != 10+3*8 {
		t.Errorf("MemLineTime = %d, want 34", got)
	}
	if got := c.MemWordTime(); got != 13 {
		t.Errorf("MemWordTime = %d, want 13", got)
	}
	if got := c.MemBlockTime(4096); got != 10+3*1024 {
		t.Errorf("MemBlockTime(4096) = %d, want 3082", got)
	}
	if got := c.MemBlockTime(0); got != 0 {
		t.Errorf("MemBlockTime(0) = %d, want 0", got)
	}
	if got := c.PCIBlockTime(32); got != 10+3*8 {
		t.Errorf("PCIBlockTime(32) = %d, want 34", got)
	}
	if got := c.NetTransferTime(4096); got != 4096 {
		t.Errorf("NetTransferTime(4096) = %d, want 4096 at 1 B/cycle", got)
	}
}

// TestDMADiffEndpoints pins the paper's measured endpoints: ~200 cycles
// for an all-clean 4 KB page, ~2100 cycles when every word was written.
func TestDMADiffEndpoints(t *testing.T) {
	c := Default()
	if got := c.DMADiffTime(0, 1024); got != 200 {
		t.Errorf("DMADiffTime(0) = %d, want 200", got)
	}
	if got := c.DMADiffTime(1024, 1024); got != 2100 {
		t.Errorf("DMADiffTime(full) = %d, want 2100", got)
	}
	mid := c.DMADiffTime(512, 1024)
	if mid <= 200 || mid >= 2100 {
		t.Errorf("DMADiffTime(half) = %d, want strictly between endpoints", mid)
	}
	// A software diff of a full page costs about 7K cycles of processor
	// instructions (Section 3.1) — the hardware must beat it.
	sw := c.DiffCyclesPerWord * 1024
	if sw < 7000 {
		t.Errorf("software diff cost %d below the paper's ~7K cycles", sw)
	}
	if c.DMADiffTime(1024, 1024) >= sw {
		t.Errorf("hardware diff (%d) not faster than software (%d)", c.DMADiffTime(1024, 1024), sw)
	}
}

// Property: DMA cost is monotone in the number of words set and always
// within the configured endpoints.
func TestDMADiffMonotoneProperty(t *testing.T) {
	c := Default()
	f := func(a, b uint16) bool {
		x, y := int(a)%1025, int(b)%1025
		if x > y {
			x, y = y, x
		}
		cx, cy := c.DMADiffTime(x, 1024), c.DMADiffTime(y, 1024)
		return cx <= cy && cx >= c.DMADiffBaseCycles && cy <= c.DMADiffFullCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxisConversionsRoundTrip(t *testing.T) {
	c := Default()

	// Figure 13 axis: default 200 cycles = 2 microseconds.
	if got := c.MessagingOverheadMicros(); got != 2.0 {
		t.Errorf("MessagingOverheadMicros = %v, want 2", got)
	}
	c.SetMessagingOverheadMicros(0.5)
	if c.MessagingOverhead != 50 {
		t.Errorf("SetMessagingOverheadMicros(0.5) -> %d, want 50", c.MessagingOverhead)
	}

	// Figure 14 axis: 1 B/cycle = 100 MB/s raw.
	if got := c.NetworkBandwidthMBps(); got != 100 {
		t.Errorf("NetworkBandwidthMBps = %v, want 100", got)
	}
	c.SetNetworkBandwidthMBps(20)
	if math.Abs(c.NetPathBytesPerCycle-0.2) > 1e-9 {
		t.Errorf("SetNetworkBandwidthMBps(20) -> %v, want 0.2", c.NetPathBytesPerCycle)
	}

	// Figure 15 axis: 10-cycle setup = 100 ns.
	c = Default()
	if got := c.MemoryLatencyNanos(); got != 100 {
		t.Errorf("MemoryLatencyNanos = %v, want 100", got)
	}
	c.SetMemoryLatencyNanos(200)
	if c.MemSetupTime != 20 {
		t.Errorf("SetMemoryLatencyNanos(200) -> %d, want 20", c.MemSetupTime)
	}

	// Figure 16 axis: default line bandwidth ~94 MB/s.
	c = Default()
	bw := c.MemoryBandwidthMBps()
	if bw < 90 || bw > 110 {
		t.Errorf("MemoryBandwidthMBps = %v, want ~94-103", bw)
	}
	c.SetMemoryBandwidthMBps(60)
	got := c.MemoryBandwidthMBps()
	if math.Abs(got-60) > 10 {
		t.Errorf("after SetMemoryBandwidthMBps(60), bandwidth = %v", got)
	}
}

func TestNetTransferRoundsUp(t *testing.T) {
	c := Default()
	c.NetPathBytesPerCycle = 0.3
	got := c.NetTransferTime(1)
	if got != 4 { // 1/0.3 = 3.33 -> 4
		t.Errorf("NetTransferTime(1) at 0.3 B/cyc = %d, want 4", got)
	}
}
