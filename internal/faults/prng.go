package faults

// Stream is a tiny counter-based PRNG (SplitMix64). Each call to Next
// advances the state through the SplitMix64 finalizer, which is a
// bijection with good avalanche behavior — more than enough for fault
// injection, and far cheaper and more "splittable" than carrying a
// math/rand source per link: any (seed, src, dst, msgSeq) tuple derives
// its own independent stream in O(1) with no shared state.
type Stream struct {
	state uint64
}

// golden64 is the SplitMix64 increment (floor(2^64 / phi), odd).
const golden64 = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive builds the stream for message msgSeq on the ordered link
// (src, dst) under seed. The three key components are folded in through
// separate mixing rounds so that adjacent tuples (src vs dst swapped,
// consecutive msgSeq) land in unrelated parts of the state space.
func Derive(seed uint64, src, dst int, msgSeq uint64) Stream {
	s := mix64(seed + golden64)
	s = mix64(s ^ (uint64(src+1) * 0xff51afd7ed558ccd))
	s = mix64(s ^ (uint64(dst+1) * 0xc4ceb9fe1a85ec53))
	s = mix64(s ^ msgSeq)
	return Stream{state: s}
}

// Next returns the next 64 uniform bits.
func (s *Stream) Next() uint64 {
	s.state += golden64
	return mix64(s.state)
}

// Float returns a uniform float64 in [0, 1).
func (s *Stream) Float() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}
