// Package dsm96 is a from-scratch reproduction of "Hiding Communication
// Latency and Coherence Overhead in Software DSMs" (Bianchini,
// Kontothanassis, Pinto, De Maria, Abud, Amorim — ASPLOS 1996): an
// execution-driven simulator of a 16-node network of workstations, the
// TreadMarks lazy-release-consistency DSM with the paper's six overlap
// variants (protocol controller, hardware diffs, diff prefetching), the
// AURC automatic-update DSM, the six applications of the evaluation, and
// a harness that regenerates every table and figure.
//
// The root package carries the benchmark harness (see bench_test.go);
// the implementation lives under internal/ and the runnable tools under
// cmd/. Start with README.md, DESIGN.md and EXPERIMENTS.md.
package dsm96
