package tmk

import (
	"fmt"

	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/timeline"
	"dsm96/internal/trace"
)

// TracePage, when set to a page number (>= 0), logs that page's protocol
// events (notices, faults, diff creation/service/application, protection
// changes) to stdout with simulated timestamps. Debugging aid; -1 = off.
var TracePage = -1

// SetTracer attaches a structured event buffer: every protocol event
// (for every page, subject to the buffer's own filters) is recorded.
func (pr *Protocol) SetTracer(b *trace.Buffer) { pr.tracer = b }

// Tracer returns the attached buffer (nil if none).
func (pr *Protocol) Tracer() *trace.Buffer { return pr.tracer }

// SetTimeline attaches a phase recorder: processor stall/busy spans are
// recorded per node, and on the controller variants each controller
// core's service windows feed the recorder's controller tracks. Must be
// called before InstallProc (core.Run's wiring order) so the recording
// accounting hook is the one installed.
func (pr *Protocol) SetTimeline(rec *timeline.Recorder) {
	pr.rec = rec
	if rec == nil || !pr.mode.Ctrl() {
		return
	}
	for _, n := range pr.nodes {
		id := n.id
		n.ctl.Core.Trace = func(job string, start, end sim.Time) {
			rec.Controller(id, job, start, end)
		}
	}
}

// SetSpans attaches a causal-span tracker. Must be called before
// InstallProc (core.Run's wiring order) so the charging accounting hook
// is the one installed, and after SetTimeline so the controller trace
// chains onto the recorder's rather than being overwritten by it.
func (pr *Protocol) SetSpans(tr *spans.Tracker) {
	pr.sp = tr
	if tr == nil || !pr.mode.Ctrl() {
		return
	}
	for _, n := range pr.nodes {
		id := n.id
		prev := n.ctl.Core.Trace
		n.ctl.Core.Trace = func(job string, start, end sim.Time) {
			if prev != nil {
				prev(job, start, end)
			}
			tr.Controller(id, start, end)
		}
	}
}

// emit records a structured protocol event and mirrors it to stdout when
// TracePage matches. Synchronization events (lock/barrier) carry pg = -1:
// they are recorded for every tracer but never match a page filter.
//
// The ring append goes through the node's engine view: the trace buffer
// is one global ring whose order (and eviction, once it wraps) must be
// the sequential emission order, so on a sharded engine the event —
// fully captured here, in the emitting shard's context — is logged
// shard-locally and appended during merge-barrier replay in global
// (time, seq) order. On a sequential engine Deferred is a plain call.
func (n *pnode) emit(pg int, kind trace.Kind, format string, args ...any) {
	stdout := pg >= 0 && pg == TracePage
	if n.pr.tracer == nil && !stdout {
		return
	}
	detail := fmt.Sprintf(format, args...)
	ev := trace.Event{
		Time: n.eng.Now(), Node: n.id, Page: pg, Kind: kind, Detail: detail,
	}
	tracer := n.pr.tracer
	n.eng.Deferred(func() {
		tracer.Emit(ev)
		if stdout {
			fmt.Printf("[%10d] n%d pg%d %s %s\n", ev.Time, ev.Node, pg, kind, detail)
		}
	})
}

// tracef keeps the old stdout-only behaviour for ad-hoc prints.
func (n *pnode) tracef(pg int, format string, args ...any) {
	n.emit(pg, trace.KindOther, format, args...)
}
