package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsm96/internal/core"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// fakeResult builds a deterministic result for a job without running a
// simulation — enough structure for Metrics() and the summaries.
func fakeResult(job *ResolvedJob) *core.Result {
	procs := job.Cfg.Processors
	bd := &stats.Breakdown{RunningTime: 12345, PerProc: make([]*stats.ProcStats, procs)}
	for i := range bd.PerProc {
		ps := &stats.ProcStats{}
		ps.Cycles[stats.Busy] = int64(1000 + i)
		bd.PerProc[i] = ps
	}
	var fp uint64
	for _, b := range []byte(job.Key) {
		fp = fp*131 + uint64(b)
	}
	return &core.Result{
		RunningTime: 12345, Breakdown: bd, AppResult: 1, SeqResult: 1,
		Messages: 7, Bytes: 4096, EventsRun: 99, EventFingerprint: fp,
		Protocol: job.Protocol, App: job.App,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := NewServer(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		hs.Close()
	})
	return srv, hs, &Client{Base: hs.URL, sleep: func(time.Duration) {}}
}

func tinyJob(app string, procs int) *JobSpec {
	return &JobSpec{Schema: JobSchema, App: app, Protocol: "Base", Scale: "tiny", Procs: procs}
}

// TestServerMemoizesRealRun drives the real simulator once and proves
// the memoization contract end to end: the second submission is a
// cache hit whose fingerprint and artifact are byte-identical to both
// the first run and an in-process core.Run of the same spec.
func TestServerMemoizesRealRun(t *testing.T) {
	_, _, c := newTestServer(t, Options{Workers: 1})
	spec := tinyJob("tsp", 2)

	first, err := c.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != StateDone || first.Cached || first.Result == nil {
		t.Fatalf("first submission: %+v", first)
	}
	second, err := c.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached || second.Result == nil {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if first.Result.Fingerprint != second.Result.Fingerprint ||
		first.Result.MetricsSHA256 != second.Result.MetricsSHA256 {
		t.Fatalf("cache hit drifted: %+v vs %+v", first.Result, second.Result)
	}

	// The stored artifact must be byte-identical to a local run's
	// metrics serialization — determinism is what makes the cache sound.
	art, err := c.Artifact(first.Result.MetricsSHA256)
	if err != nil {
		t.Fatal(err)
	}
	job := resolve(t, spec)
	app, err := job.AppInstance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(job.Cfg, job.Spec, app)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := res.Metrics().WriteJSON(&local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art, local.Bytes()) {
		t.Fatalf("served artifact (%d bytes) differs from local run metrics (%d bytes)", len(art), local.Len())
	}
	if fp := fmt.Sprintf("%016x", res.EventFingerprint); fp != first.Result.Fingerprint {
		t.Fatalf("served fingerprint %s, local %s", first.Result.Fingerprint, fp)
	}
}

// TestServerDedupesInflight submits the same job from many goroutines
// while the (blocked) runner holds it in flight: exactly one execution,
// every submitter gets the result.
func TestServerDedupesInflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var runs int
	var mu sync.Mutex
	_, _, c := newTestServer(t, Options{Workers: 1, Run: func(job *ResolvedJob) (*core.Result, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		close(started)
		<-release
		return fakeResult(job), nil
	}})
	spec := tinyJob("radix", 2)

	const waiters = 4
	results := make(chan *JobStatus, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			st, err := c.Submit(spec, true)
			if err != nil {
				errs <- err
				return
			}
			results <- st
		}()
	}
	<-started
	close(release)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case st := <-results:
			if st.State != StateDone {
				t.Fatalf("waiter got %+v", st)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("waiter hung")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("job ran %d times, want 1", runs)
	}
}

// TestServerBackpressure fills the pool and the queue and asserts the
// explicit 429 + Retry-After contract, then proves the client's
// absorb-and-resubmit loop rides it out.
func TestServerBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, hs, c := newTestServer(t, Options{Workers: 1, QueueCap: 1, Run: func(job *ResolvedJob) (*core.Result, error) {
		once.Do(func() { close(started) })
		<-release
		return fakeResult(job), nil
	}})

	if _, err := c.Submit(tinyJob("tsp", 2), false); err != nil {
		t.Fatal(err)
	}
	<-started // job A occupies the worker
	if _, err := c.Submit(tinyJob("tsp", 4), false); err != nil {
		t.Fatal(err) // job B occupies the single queue slot
	}
	payload, _ := json.Marshal(tinyJob("tsp", 8))
	resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The client keeps resubmitting (with a shortened pause) and lands
	// the job once the queue clears.
	retrier := &Client{Base: hs.URL, BusyRetries: 1 << 20,
		sleep: func(time.Duration) { time.Sleep(time.Millisecond) }}
	done := make(chan *JobStatus, 1)
	errc := make(chan error, 1)
	go func() {
		st, err := retrier.Submit(tinyJob("tsp", 8), true)
		if err != nil {
			errc <- err
			return
		}
		done <- st
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case st := <-done:
		if st.State != StateDone {
			t.Fatalf("retried submission: %+v", st)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("retried submission hung")
	}
}

// TestServerStallQuarantine feeds a runner that always stalls: the job
// must retry with backoff, persist the structured stall report, and
// rest quarantined after MaxAttempts — never wedge a worker.
func TestServerStallQuarantine(t *testing.T) {
	var runs int
	var mu sync.Mutex
	_, _, c := newTestServer(t, Options{Workers: 1, MaxAttempts: 2, RetryBase: time.Millisecond,
		Run: func(job *ResolvedJob) (*core.Result, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			res := fakeResult(job)
			res.Stall = &core.StallInfo{
				Deadlock: true,
				Report: sim.StallReport{At: 777, LastProgress: 42, Blocked: []sim.BlockedProc{
					{ID: 0, Name: "cpu0", Reason: "barrier", Since: 42},
				}},
				UnackedMessages: 3,
			}
			return res, fmt.Errorf("run: %w", &sim.StallError{Deadlock: true, Report: res.Stall.Report})
		}})

	st, err := c.Submit(tinyJob("water", 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined", st.State)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", st.Attempts)
	}
	if st.Stall == nil || !st.Stall.Deadlock || st.Stall.At != 777 || len(st.Stall.Blocked) != 1 {
		t.Fatalf("stall report not persisted: %+v", st.Stall)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 2 {
		t.Fatalf("ran %d times, want 2", runs)
	}

	// A resubmission of a quarantined job answers immediately from the
	// journal — the poisoned spec never touches the pool again.
	st2, err := c.Submit(tinyJob("water", 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateQuarantined || runs != 2 {
		t.Fatalf("quarantined job re-ran: %+v, runs %d", st2, runs)
	}
}

// TestServerDegradedMode breaks the store write path and asserts the
// graceful degradation contract: misses answer 503, cached results stay
// readable, /healthz flips unhealthy.
func TestServerDegradedMode(t *testing.T) {
	srv, hs, c := newTestServer(t, Options{Workers: 1, Run: func(job *ResolvedJob) (*core.Result, error) {
		return fakeResult(job), nil
	}})
	warm := tinyJob("em3d", 2)
	first, err := c.Submit(warm, true)
	if err != nil || first.State != StateDone {
		t.Fatalf("warm-up: %+v, %v", first, err)
	}

	srv.Store().setWriteHook(func(string) error { return errors.New("disk full") })
	// The hook fires on the next durable write attempt; force one.
	if err := srv.Store().PutRecord(&JobRecord{Schema: RecordSchema, Key: "probe", State: StatePending}); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("probe write: %v", err)
	}

	if _, err := c.Submit(tinyJob("em3d", 4), true); err == nil {
		t.Fatal("miss accepted in degraded mode")
	}
	hit, err := c.Submit(warm, true)
	if err != nil || !hit.Cached {
		t.Fatalf("cache hit in degraded mode: %+v, %v", hit, err)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d in degraded mode, want 503", resp.StatusCode)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded {
		t.Fatal("statsz does not report degraded")
	}
}

// TestServerDrain proves the SIGTERM path: accepted jobs finish, new
// submissions bounce with 503, and Drain returns.
func TestServerDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	srv, _, c := newTestServer(t, Options{Workers: 1, Run: func(job *ResolvedJob) (*core.Result, error) {
		close(started)
		<-release
		return fakeResult(job), nil
	}})
	spec := tinyJob("ocean", 2)
	waiter := make(chan *JobStatus, 1)
	go func() {
		st, _ := c.Submit(spec, true)
		waiter <- st
	}()
	<-started

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	time.Sleep(10 * time.Millisecond) // let Drain flip the flag
	if _, err := c.Submit(tinyJob("ocean", 4), false); err == nil {
		t.Fatal("submission accepted while draining")
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung")
	}
	select {
	case st := <-waiter:
		if st == nil || st.State != StateDone {
			t.Fatalf("in-flight job abandoned by drain: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after drain")
	}
}

// TestServerRunsEndpoint serves a dated run folder through its
// manifest: listed artifacts verify against their recorded SHA-256,
// corruption is refused loudly, and unlisted files are invisible.
func TestServerRunsEndpoint(t *testing.T) {
	runs := t.TempDir()
	folder := filepath.Join(runs, "20260809-120000-smoke")
	if err := os.MkdirAll(filepath.Join(folder, "metrics"), 0o755); err != nil {
		t.Fatal(err)
	}
	artifact := []byte(`{"schema":"dsm96/run-metrics/v3","fake":true}` + "\n")
	if err := os.WriteFile(filepath.Join(folder, "metrics", "cell-0000.json"), artifact, 0o644); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(artifact)
	man := map[string]any{
		"schema":     "dsm96/run-manifest/v1",
		"experiment": map[string]any{"name": "smoke"},
		"stamp":      "20260809-120000",
		"host":       map[string]any{},
		"cells": []map[string]any{{
			"id": "c0", "metrics_file": "metrics/cell-0000.json",
			"metrics_sha256": hex.EncodeToString(sum[:]),
		}},
	}
	manData, _ := json.Marshal(man)
	if err := os.WriteFile(filepath.Join(folder, "manifest.json"), manData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(folder, "secret.txt"), []byte("not vouched for"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, hs, _ := newTestServer(t, Options{Workers: 1, RunsDir: runs})
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, body := get("/runs/"); code != 200 || !bytes.Contains(body, []byte("20260809-120000-smoke")) {
		t.Fatalf("index: %d %s", code, body)
	}
	if code, body := get("/runs/20260809-120000-smoke/metrics/cell-0000.json"); code != 200 || !bytes.Equal(body, artifact) {
		t.Fatalf("verified read: %d %s", code, body)
	}
	if code, _ := get("/runs/20260809-120000-smoke/manifest.json"); code != 200 {
		t.Fatalf("manifest read: %d", code)
	}
	if code, _ := get("/runs/20260809-120000-smoke/secret.txt"); code != 404 {
		t.Fatalf("unlisted file leaked: %d", code)
	}
	if code, _ := get("/runs/20260809-120000-smoke/metrics/../secret.txt"); code == 200 {
		t.Fatal("path traversal served")
	}

	// Corrupt the artifact on disk: the manifest's hash must refuse it.
	if err := os.WriteFile(filepath.Join(folder, "metrics", "cell-0000.json"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/runs/20260809-120000-smoke/metrics/cell-0000.json"); code != http.StatusInternalServerError ||
		!bytes.Contains(body, []byte("verification")) {
		t.Fatalf("corrupted artifact served: %d %s", code, body)
	}
}

// TestArtifactNotFound pins the 404 path.
func TestArtifactNotFound(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(hs.URL + "/artifacts/" + "ab"[:2] + string(bytes.Repeat([]byte("0"), 62)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing artifact answered %d", resp.StatusCode)
	}
}
