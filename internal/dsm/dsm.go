// Package dsm defines the programming interface the applications are
// written against — the moral equivalent of the TreadMarks API (Tmk_malloc,
// Tmk_lock_acquire, Tmk_barrier, plus shared loads/stores). Protocols
// (TreadMarks variants, AURC) implement System; applications receive an
// Env bound to one simulated processor.
package dsm

import (
	"math"

	"dsm96/internal/lrc"
	"dsm96/internal/sim"
)

// Addr is an address in the shared space.
type Addr = int64

// System is the protocol-side interface. id is the calling processor.
// All calls are made from that processor's sim.Proc context and may block
// in simulated time.
type System interface {
	// Read32/Write32 access a 4-byte shared word.
	Read32(p *sim.Proc, id int, addr Addr) uint32
	Write32(p *sim.Proc, id int, addr Addr, v uint32)
	// Read64/Write64 access an 8-byte shared value (two words).
	Read64(p *sim.Proc, id int, addr Addr) uint64
	Write64(p *sim.Proc, id int, addr Addr, v uint64)
	// Compute models local (private-data) computation of the given cost.
	Compute(p *sim.Proc, id int, cycles sim.Time)
	// Lock/Unlock acquire and release a global lock.
	Lock(p *sim.Proc, id int, lock int)
	Unlock(p *sim.Proc, id int, lock int)
	// Barrier blocks until every processor arrives.
	Barrier(p *sim.Proc, id int, barrier int)
	// Heap is the shared allocator. Allocation happens deterministically
	// (typically before the parallel phase), so addresses agree globally.
	Heap() *lrc.Heap
	// Procs returns the number of processors.
	Procs() int
}

// Env is an application's view of one processor.
type Env struct {
	ID  int
	P   *sim.Proc
	Sys System
}

// NProcs returns the machine size.
func (e *Env) NProcs() int { return e.Sys.Procs() }

// R32 reads a shared 32-bit word.
func (e *Env) R32(a Addr) uint32 { return e.Sys.Read32(e.P, e.ID, a) }

// W32 writes a shared 32-bit word.
func (e *Env) W32(a Addr, v uint32) { e.Sys.Write32(e.P, e.ID, a, v) }

// RI reads a shared int32 as int.
func (e *Env) RI(a Addr) int { return int(int32(e.R32(a))) }

// WI writes an int as int32.
func (e *Env) WI(a Addr, v int) { e.W32(a, uint32(int32(v))) }

// RF reads a shared float64.
func (e *Env) RF(a Addr) float64 { return math.Float64frombits(e.Sys.Read64(e.P, e.ID, a)) }

// WF writes a shared float64.
func (e *Env) WF(a Addr, v float64) { e.Sys.Write64(e.P, e.ID, a, math.Float64bits(v)) }

// Compute models c cycles of private computation.
func (e *Env) Compute(c sim.Time) { e.Sys.Compute(e.P, e.ID, c) }

// Lock acquires lock l.
func (e *Env) Lock(l int) { e.Sys.Lock(e.P, e.ID, l) }

// Unlock releases lock l.
func (e *Env) Unlock(l int) { e.Sys.Unlock(e.P, e.ID, l) }

// Barrier waits on barrier b.
func (e *Env) Barrier(b int) { e.Sys.Barrier(e.P, e.ID, b) }

// Sized is optionally implemented by applications whose shared-data
// layout depends on the machine size (per-processor histogram or rank
// arrays, say). The harness calls SetProcs with the run's processor
// count before Setup — including before the sequential oracle, so the
// oracle and the parallel run agree on the layout. Implementations must
// be a pure function of n (no ratcheting across calls): the same
// (app, procs) pair must always produce the same layout, or run
// fingerprints would depend on what ran earlier on the same instance.
type Sized interface {
	SetProcs(n int)
}

// App is a runnable workload: it sizes its shared data via Setup (called
// once, before processors start), runs Body on every processor, and
// reports a scalar Result (written by processor 0 through the DSM) that
// validation compares against a sequential reference.
type App interface {
	// Name is the application's short name (as in the paper's figures).
	Name() string
	// Setup allocates shared data on the heap. It runs before time zero.
	Setup(h *lrc.Heap)
	// Body is executed by every processor.
	Body(env *Env)
	// Result returns the final answer recorded by the run (valid after
	// every Body has returned).
	Result() float64
}
