// Package lrc provides the lazy-release-consistency machinery shared by
// the DSM protocols: vector timestamps, intervals, write notices,
// word-granularity diffs, and per-node page frames holding the actual
// data of the shared address space.
package lrc

import "fmt"

// VTS is a vector timestamp: entry i counts the intervals of processor i
// that the holder has seen (i.e. whose modifications are reflected,
// directly or transitively, in the holder's view).
type VTS []int32

// NewVTS returns a zero vector for n processors.
func NewVTS(n int) VTS { return make(VTS, n) }

// Clone returns an independent copy.
func (v VTS) Clone() VTS {
	c := make(VTS, len(v))
	copy(c, v)
	return c
}

// Covers reports whether v >= o pointwise: the holder of v has seen
// everything the holder of o has.
func (v VTS) Covers(o VTS) bool {
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// CoversEntry reports whether v has seen interval seq of processor p.
func (v VTS) CoversEntry(p int, seq int32) bool { return v[p] >= seq }

// Max folds o into v pointwise.
func (v VTS) Max(o VTS) {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// Equal reports pointwise equality.
func (v VTS) Equal(o VTS) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// String formats the vector compactly for debugging.
func (v VTS) String() string { return fmt.Sprintf("%v", []int32(v)) }

// WireBytes is the size of a vector timestamp on the network.
func (v VTS) WireBytes() int { return 4 * len(v) }

// WriteNotice tells a processor that page Page was modified during
// interval Seq of processor Owner. Receiving one obliges the receiver to
// invalidate its copy of the page before its next use.
type WriteNotice struct {
	Page  int
	Owner int
	Seq   int32
}

// WireBytes is the size of a write notice on the network.
const WriteNoticeWireBytes = 12

// Interval is the unit of the LRC partial order: the stretch of a
// processor's execution between two of its synchronization operations.
type Interval struct {
	Owner int
	Seq   int32
	// VTS is the owner's vector timestamp when the interval started.
	VTS VTS
	// Pages modified during the interval (in first-write order).
	Pages []int
}

// Notices expands the interval into per-page write notices.
func (iv *Interval) Notices() []WriteNotice {
	out := make([]WriteNotice, len(iv.Pages))
	for i, pg := range iv.Pages {
		out[i] = WriteNotice{Page: pg, Owner: iv.Owner, Seq: iv.Seq}
	}
	return out
}
