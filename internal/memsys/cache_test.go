package memsys

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1024, 32)
	hit, _ := c.Access(100, false, true)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _ = c.Access(100, false, true)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different word.
	hit, _ = c.Access(96, false, true)
	if !hit {
		t.Fatal("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", c.Hits, c.Misses)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := NewCache(1024, 32) // 32 lines
	c.Access(0, true, true) // dirty line 0
	// Address mapping to the same index: 32 lines * 32 bytes = 1024 apart.
	hit, evictedDirty := c.Access(1024, false, true)
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !evictedDirty {
		t.Fatal("dirty victim not reported")
	}
	if c.WriteBacks != 1 || c.Evictions != 1 {
		t.Fatalf("writebacks=%d evictions=%d", c.WriteBacks, c.Evictions)
	}
	// Original line is gone.
	if c.Lookup(0) {
		t.Fatal("evicted line still present")
	}
}

func TestCacheWriteNoAllocate(t *testing.T) {
	c := NewCache(1024, 32)
	hit, _ := c.Access(64, false, false)
	if hit {
		t.Fatal("cold write hit")
	}
	if c.Lookup(64) {
		t.Fatal("no-allocate access filled the cache")
	}
}

func TestCacheInvalidateRange(t *testing.T) {
	c := NewCache(4096, 32)
	for a := Addr(0); a < 256; a += 32 {
		c.Access(a, true, true)
	}
	n := c.InvalidateRange(0, 256)
	if n != 8 {
		t.Fatalf("invalidated %d lines, want 8", n)
	}
	for a := Addr(0); a < 256; a += 32 {
		if c.Lookup(a) {
			t.Fatalf("line %d still cached after invalidate", a)
		}
	}
	// Invalidating again is a no-op.
	if n := c.InvalidateRange(0, 256); n != 0 {
		t.Fatalf("second invalidate dropped %d lines", n)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(1024, 32)
	c.Access(0, true, true)
	c.Flush()
	if c.Lookup(0) {
		t.Fatal("line survived flush")
	}
}

// Property: after Access(addr, _, true), Lookup(addr) always hits, and a
// re-access of the same address is always a hit.
func TestCacheAccessThenLookupProperty(t *testing.T) {
	c := NewCache(8192, 32)
	f := func(raw []uint32) bool {
		for _, r := range raw {
			a := Addr(r % (1 << 20))
			c.Access(a, r%2 == 0, true)
			if !c.Lookup(a) {
				return false
			}
			hit, _ := c.Access(a, false, true)
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBFIFOReplacement(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Access(1) {
		t.Fatal("cold TLB hit")
	}
	tlb.Access(2)
	if !tlb.Access(1) {
		t.Fatal("page 1 should still be resident")
	}
	tlb.Access(3) // evicts 1 (FIFO order: 1 was inserted first)
	if tlb.Access(1) {
		t.Fatal("page 1 should have been evicted by FIFO")
	}
	if tlb.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", tlb.Entries())
	}
}

// Property: the TLB never exceeds its capacity, and a just-inserted page
// always hits immediately afterwards.
func TestTLBCapacityProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		tlb := NewTLB(8)
		for _, pg := range pages {
			tlb.Access(Addr(pg))
			if tlb.Entries() > 8 {
				return false
			}
			if !tlb.Access(Addr(pg)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
