package dsm

import (
	"dsm96/internal/lrc"
	"dsm96/internal/sim"
)

// SeqSystem is a zero-cost, single-processor, purely functional System:
// loads and stores go straight to one set of page frames, and
// synchronization is a no-op. It exists to produce the sequential
// reference result every application run is validated against, and the
// "perfect shared memory" baseline for sanity checks.
type SeqSystem struct {
	frames *lrc.Frames
	heap   *lrc.Heap
}

// NewSeqSystem builds a sequential system with the given page size.
func NewSeqSystem(pageSize int) *SeqSystem {
	return &SeqSystem{frames: lrc.NewFrames(pageSize), heap: lrc.NewHeap(pageSize)}
}

// Read32 implements System.
func (s *SeqSystem) Read32(_ *sim.Proc, _ int, a Addr) uint32 { return s.frames.ReadU32(a) }

// Write32 implements System.
func (s *SeqSystem) Write32(_ *sim.Proc, _ int, a Addr, v uint32) { s.frames.WriteU32(a, v) }

// Read64 implements System.
func (s *SeqSystem) Read64(_ *sim.Proc, _ int, a Addr) uint64 { return s.frames.ReadU64(a) }

// Write64 implements System.
func (s *SeqSystem) Write64(_ *sim.Proc, _ int, a Addr, v uint64) { s.frames.WriteU64(a, v) }

// Compute implements System (free in the functional model).
func (s *SeqSystem) Compute(_ *sim.Proc, _ int, _ sim.Time) {}

// Lock implements System (no contention with one processor).
func (s *SeqSystem) Lock(_ *sim.Proc, _ int, _ int) {}

// Unlock implements System.
func (s *SeqSystem) Unlock(_ *sim.Proc, _ int, _ int) {}

// Barrier implements System (trivial with one processor).
func (s *SeqSystem) Barrier(_ *sim.Proc, _ int, _ int) {}

// Heap implements System.
func (s *SeqSystem) Heap() *lrc.Heap { return s.heap }

// Procs implements System.
func (s *SeqSystem) Procs() int { return 1 }

// Frames exposes the backing store (tests peek at it).
func (s *SeqSystem) Frames() *lrc.Frames { return s.frames }

// RunSequential executes the application to completion on the functional
// system and returns its result. This is the oracle used to validate
// every protocol run.
func RunSequential(app App, pageSize int) float64 {
	sys := NewSeqSystem(pageSize)
	app.Setup(sys.heap)
	app.Body(&Env{ID: 0, P: nil, Sys: sys})
	return app.Result()
}
