package memsys

import (
	"testing"

	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

func newTestNode() (*Node, *sim.Engine, *params.Config) {
	cfg := params.Default()
	eng := sim.NewEngine()
	n := NewNode(0, &cfg, eng)
	return n, eng, &cfg
}

func TestReadTimingHitVsMiss(t *testing.T) {
	n, eng, cfg := newTestNode()
	var st stats.ProcStats
	var missEnd, hitEnd sim.Time
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		// Pre-touch TLB so the first read isolates the cache miss.
		n.TLB.Access(0)
		start := p.Now()
		n.Read(p, 64, &st)
		missEnd = p.Now() - start
		start = p.Now()
		n.Read(p, 64, &st)
		hitEnd = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Miss: 1 cycle issue + line fill (10 + 3*8 = 34).
	if missEnd != 1+cfg.MemLineTime() {
		t.Fatalf("miss latency = %d, want %d", missEnd, 1+cfg.MemLineTime())
	}
	if hitEnd != 1 {
		t.Fatalf("hit latency = %d, want 1", hitEnd)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1", st.CacheMisses)
	}
	if st.Cycles[stats.Other] != cfg.MemLineTime() {
		t.Fatalf("other cycles = %d, want %d", st.Cycles[stats.Other], cfg.MemLineTime())
	}
	if st.Cycles[stats.Busy] != 2 {
		t.Fatalf("busy cycles = %d, want 2", st.Cycles[stats.Busy])
	}
}

func TestTLBMissCharged(t *testing.T) {
	n, eng, cfg := newTestNode()
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.Read(p, 0, &st)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.TLBMisses != 1 {
		t.Fatalf("tlb misses = %d, want 1", st.TLBMisses)
	}
	if st.Cycles[stats.Other] < cfg.TLBFillTime {
		t.Fatalf("other cycles = %d, want >= %d (TLB fill)", st.Cycles[stats.Other], cfg.TLBFillTime)
	}
}

func TestWriteThroughDrainsAndStalls(t *testing.T) {
	cfg := params.Default()
	cfg.WriteBufferSize = 2
	eng := sim.NewEngine()
	n := NewNode(0, &cfg, eng)
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		// Two writes fill the buffer without stalling (word drain is 13
		// cycles, writes issue 1 cycle apart).
		n.Write(p, 0, true, &st)
		n.Write(p, 4, true, &st)
		if st.WriteBuffStalls != 0 {
			t.Errorf("unexpected stall after 2 writes")
		}
		// Third write must stall until the first drain completes.
		n.Write(p, 8, true, &st)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.WriteBuffStalls != 1 {
		t.Fatalf("wb stalls = %d, want 1", st.WriteBuffStalls)
	}
	if st.SharedWrites != 3 {
		t.Fatalf("writes = %d, want 3", st.SharedWrites)
	}
}

func TestWriteBackAllocatesAndDirties(t *testing.T) {
	n, eng, _ := newTestNode()
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		n.Write(p, 128, false, &st)
		if !n.Cache.Lookup(128) {
			t.Error("write-back write did not allocate")
		}
		// Conflict eviction must report a write-back.
		wbBefore := n.Cache.WriteBacks
		n.Read(p, 128+int64(n.Cache.Lines()*n.Cache.LineSize()), &st)
		if n.Cache.WriteBacks != wbBefore+1 {
			t.Error("dirty victim not written back")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBufferReap(t *testing.T) {
	wb := NewWriteBuffer(2)
	if s := wb.Push(0, 10); s != 0 {
		t.Fatalf("stall = %d, want 0", s)
	}
	if s := wb.Push(0, 20); s != 0 {
		t.Fatalf("stall = %d, want 0", s)
	}
	// Buffer full; pushing at t=5 stalls until t=10.
	if s := wb.Push(5, 30); s != 5 {
		t.Fatalf("stall = %d, want 5", s)
	}
	// At t=25 only the t=30 drain remains in flight.
	if p := wb.Pending(25); p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
}

func TestMemBusContention(t *testing.T) {
	n, eng, cfg := newTestNode()
	var st0, st1 stats.ProcStats
	var end0, end1 sim.Time
	eng.NewProc(0, "a", 0, func(p *sim.Proc) {
		n.TLB.Access(0)
		n.Read(p, 0, &st0)
		end0 = p.Now()
	})
	eng.NewProc(1, "b", 0, func(p *sim.Proc) {
		n.TLB.Access(1 << 20 / int64(cfg.PageSize))
		n.Read(p, 1<<20, &st1) // different line, same bus
		end1 = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The second miss must queue behind the first on the memory bus.
	if end1-end0 < cfg.MemLineTime() {
		t.Fatalf("no bus serialization: end0=%d end1=%d", end0, end1)
	}
}

func TestDMAOccupiesBothBuses(t *testing.T) {
	n, eng, cfg := newTestNode()
	eng.At(0, func() {
		end := n.DMA(4096)
		want := cfg.MemBlockTime(4096) // memory path dominates PCI here? both 3/word; equal setup
		if end < want {
			t.Errorf("DMA end = %d, want >= %d", end, want)
		}
		if n.PCIBus.BusyCycles() == 0 || n.MemBus.BusyCycles() == 0 {
			t.Error("DMA did not occupy both buses")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidatePage(t *testing.T) {
	n, eng, cfg := newTestNode()
	var st stats.ProcStats
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		for a := Addr(0); a < Addr(cfg.PageSize); a += Addr(cfg.CacheLineSize) {
			n.Read(p, a, &st)
		}
		n.InvalidatePage(0)
		for a := Addr(0); a < Addr(cfg.PageSize); a += Addr(cfg.CacheLineSize) {
			if n.Cache.Lookup(a) {
				t.Errorf("line %d survived page invalidation", a)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
