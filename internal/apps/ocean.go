package apps

import (
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// Ocean is the SPLASH-2 ocean-current simulation reduced to its dominant
// kernel and sharing pattern: red-black Gauss-Seidel relaxation over a
// 2-D grid, row-partitioned across processors, with two barriers per
// iteration. Neighbouring processors share the boundary-row pages, so
// every iteration moves one page's worth of diffs per boundary — little
// computation per byte communicated, which is why Ocean shows the worst
// speedup in Figure 1.
type Ocean struct {
	N     int // grid side (paper: 258, i.e. 256 interior + boundary)
	Iters int
	// ComputePerPoint models the stencil's instruction cost.
	ComputePerPoint int64

	grid    int64 // N*N f64, row-major
	outAddr int64

	result float64
}

// NewOcean builds an instance.
func NewOcean(n, iters int) *Ocean {
	return &Ocean{N: n, Iters: iters, ComputePerPoint: 25}
}

// DefaultOcean is the scaled default (paper: 258x258).
func DefaultOcean() *Ocean { return NewOcean(130, 12) }

// PaperOcean reproduces the published input.
func PaperOcean() *Ocean { return NewOcean(258, 30) }

// Name implements dsm.App.
func (o *Ocean) Name() string { return "ocean" }

// Setup implements dsm.App.
func (o *Ocean) Setup(h *lrc.Heap) {
	o.result = 0
	o.grid = h.AllocPages((8*o.N*o.N + 4095) / 4096)
	o.outAddr = h.AllocPages(1)
}

func (o *Ocean) at(i, j int) int64 { return o.grid + int64(8*(i*o.N+j)) }

// Body implements dsm.App.
func (o *Ocean) Body(env *dsm.Env) {
	n := o.N
	// Interior rows 1..n-2 are partitioned contiguously.
	lo, hi := blockRange(n-2, env.NProcs(), env.ID)
	lo, hi = lo+1, hi+1

	if env.ID == 0 {
		r := newRNG(31415)
		// Boundary conditions on the rim; interior starts at zero.
		for i := 0; i < n; i++ {
			env.WF(o.at(i, 0), r.f64())
			env.WF(o.at(i, n-1), r.f64())
			env.WF(o.at(0, i), r.f64())
			env.WF(o.at(n-1, i), r.f64())
		}
	}
	env.Barrier(0)

	for it := 0; it < o.Iters; it++ {
		for colour := 0; colour < 2; colour++ {
			for i := lo; i < hi; i++ {
				for j := 1 + (i+colour)%2; j < n-1; j += 2 {
					env.Compute(o.ComputePerPoint)
					v := 0.25 * (env.RF(o.at(i-1, j)) + env.RF(o.at(i+1, j)) +
						env.RF(o.at(i, j-1)) + env.RF(o.at(i, j+1)))
					env.WF(o.at(i, j), v)
				}
			}
			env.Barrier(10 + 2*it + colour)
		}
	}

	if env.ID == 0 {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				env.Compute(4)
				sum += env.RF(o.at(i, j))
			}
		}
		env.WF(o.outAddr, sum)
		o.result = env.RF(o.outAddr)
	}
	env.Barrier(1)
}

// Result implements dsm.App.
func (o *Ocean) Result() float64 { return o.result }
