package spans

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dsm96/internal/sim"
)

// StageCycles is the per-stage latency decomposition in JSON form. The
// field order is fixed; encoding/json emits struct fields in order, so
// serialized reports are byte-deterministic.
type StageCycles struct {
	Wire       int64 `json:"wire"`
	Queue      int64 `json:"queue"`
	Remote     int64 `json:"remote"`
	Reply      int64 `json:"reply"`
	Controller int64 `json:"controller"`
	Unblock    int64 `json:"unblock"`
}

func stageCycles(s [NumStages]sim.Time) StageCycles {
	return StageCycles{
		Wire:       s[StageWire],
		Queue:      s[StageQueue],
		Remote:     s[StageRemote],
		Reply:      s[StageReply],
		Controller: s[StageController],
		Unblock:    s[StageUnblock],
	}
}

// KindSummary aggregates every span of one operation kind: counts,
// nearest-rank percentiles over the span durations, and stage totals.
type KindSummary struct {
	Kind        string      `json:"kind"`
	Count       int         `json:"count"`
	TotalCycles int64       `json:"total_cycles"`
	P50Cycles   int64       `json:"p50_cycles"`
	P90Cycles   int64       `json:"p90_cycles"`
	P99Cycles   int64       `json:"p99_cycles"`
	MaxCycles   int64       `json:"max_cycles"`
	StageCycles StageCycles `json:"stage_cycles"`
}

// NodeOverlap is one processor's overlap accounting.
type NodeOverlap struct {
	Node int `json:"node"`
	// ActivityCycles is the union of the node's controller occupancy,
	// outbound wire occupancy, and prefetch flight windows.
	ActivityCycles int64 `json:"activity_cycles"`
	// BlockedCycles is the union of the node's non-Busy stall windows.
	BlockedCycles int64 `json:"blocked_cycles"`
	// HiddenCycles is activity concurrent with the node computing —
	// activity minus its intersection with blocked. This is the
	// "latency hidden" quantity of the paper's Figures 4-6: protocol
	// work that cost the processor nothing.
	HiddenCycles int64 `json:"hidden_cycles"`
	// The per-source decomposition attributes hidden cycles to the
	// technique that hid them: controller occupancy (the I variants'
	// protocol engine), outbound wire occupancy (DMA transfers any
	// variant overlaps), and prefetch flight windows (the P variants).
	// Sources can overlap in time, so these can sum to more than
	// HiddenCycles; Base has zero controller and prefetch by
	// construction, which is what makes Base vs I vs I+P+D measurable.
	ControllerHidden int64 `json:"controller_hidden_cycles"`
	WireHidden       int64 `json:"wire_hidden_cycles"`
	PrefetchHidden   int64 `json:"prefetch_hidden_cycles"`
}

// OverlapReport totals overlap accounting across the machine.
type OverlapReport struct {
	ActivityCycles   int64         `json:"activity_cycles"`
	BlockedCycles    int64         `json:"blocked_cycles"`
	HiddenCycles     int64         `json:"hidden_cycles"`
	ControllerHidden int64         `json:"controller_hidden_cycles"`
	WireHidden       int64         `json:"wire_hidden_cycles"`
	PrefetchHidden   int64         `json:"prefetch_hidden_cycles"`
	PerNode          []NodeOverlap `json:"per_node"`
}

// BarrierEpisode is the critical-path report for one barrier episode:
// which processor arrived last (making everyone wait) and what that
// processor was doing since its previous departure.
type BarrierEpisode struct {
	Bar      int `json:"bar"`
	Episode  int `json:"episode"`
	Arrivals int `json:"arrivals"`
	// FirstArrival and LastArrival are the earliest and latest span
	// starts in the episode; Depart is the latest span end (everyone
	// has been released by then).
	FirstArrival int64 `json:"first_arrival"`
	LastArrival  int64 `json:"last_arrival"`
	Depart       int64 `json:"depart"`
	// CriticalNode arrived last; CriticalSlack is how long the first
	// arriver had already been waiting at that point.
	CriticalNode  int   `json:"critical_node"`
	CriticalSlack int64 `json:"critical_slack"`
	// ChainOps/ChainCycles summarize the critical node's operation
	// chain between its previous barrier departure and this arrival:
	// how much of its lateness the protocol itself explains.
	ChainOps         int    `json:"chain_ops"`
	ChainCycles      int64  `json:"chain_cycles"`
	LongestChainKind string `json:"longest_chain_kind,omitempty"`
	LongestChainOp   int64  `json:"longest_chain_cycles,omitempty"`
}

// Report is the digest of one run's spans, embedded in the run-metrics
// JSON under "spans". Every field is deterministic for a given run.
type Report struct {
	Ops      int              `json:"ops"`
	PerKind  []KindSummary    `json:"per_kind"`
	Overlap  OverlapReport    `json:"overlap"`
	Barriers []BarrierEpisode `json:"barrier_critical_path"`
	// Digest is an FNV-1a hash over every span's identity and
	// decomposition, in completion order — the bit-exact fingerprint
	// the determinism tests compare.
	Digest string `json:"digest"`
}

// percentile returns the nearest-rank p-th percentile of sorted (which
// must be ascending); zero for an empty slice.
func percentile(sorted []sim.Time, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil(n*p/100), nearest-rank
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// union sorts and merges a copy of ivs, returning disjoint ascending
// non-empty intervals.
func union(ivs []interval) []interval {
	merged := make([]interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.end > iv.start {
			merged = append(merged, iv)
		}
	}
	if len(merged) == 0 {
		return nil
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].start != merged[j].start {
			return merged[i].start < merged[j].start
		}
		return merged[i].end < merged[j].end
	})
	out := merged[:1]
	for _, iv := range merged[1:] {
		if last := &out[len(out)-1]; iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func totalLen(ivs []interval) int64 {
	var n int64
	for _, iv := range ivs {
		n += iv.end - iv.start
	}
	return n
}

// intersectLen returns the total overlap between two disjoint ascending
// interval lists.
func intersectLen(a, b []interval) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := max64(a[i].start, b[j].start), min64(a[i].end, b[j].end)
		if hi > lo {
			n += hi - lo
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return n
}

func max64(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func min64(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// Report computes the run's span digest: per-kind summaries, overlap
// accounting, and the barrier critical path. It reads only completed
// spans and the interval feeds, so it is safe to call once the engine
// has drained. Returns nil on a nil tracker.
func (t *Tracker) Report() *Report {
	if t == nil {
		return nil
	}
	r := &Report{Ops: len(t.ops)}

	// Per-kind summaries, fixed shape: one row per kind, always, so two
	// reports always flatten to the same key set for metricsdiff.
	var durs [NumKinds][]sim.Time
	var stages [NumKinds][NumStages]sim.Time
	for _, op := range t.ops {
		durs[op.Kind] = append(durs[op.Kind], op.End-op.Start)
		for s := Stage(0); s < NumStages; s++ {
			stages[op.Kind][s] += op.Stages[s]
		}
	}
	for k := Kind(0); k < NumKinds; k++ {
		d := durs[k]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		var total, max sim.Time
		for _, v := range d {
			total += v
		}
		if len(d) > 0 {
			max = d[len(d)-1]
		}
		r.PerKind = append(r.PerKind, KindSummary{
			Kind:        k.String(),
			Count:       len(d),
			TotalCycles: total,
			P50Cycles:   percentile(d, 50),
			P90Cycles:   percentile(d, 90),
			P99Cycles:   percentile(d, 99),
			MaxCycles:   max,
			StageCycles: stageCycles(stages[k]),
		})
	}

	// Overlap: per node, activity = controller ∪ wire ∪ prefetch
	// flights; hidden = activity not covered by the node's blocked
	// windows, i.e. protocol work concurrent with computation.
	flight := make([][]interval, t.nodes)
	for _, op := range t.ops {
		if op.Kind == OpPrefetch && op.End > op.Start {
			flight[op.Node] = append(flight[op.Node], interval{op.Start, op.End})
		}
	}
	for n := 0; n < t.nodes; n++ {
		var act []interval
		act = append(act, t.ctrl[n]...)
		act = append(act, t.net[n]...)
		act = append(act, flight[n]...)
		activity := union(act)
		blocked := union(t.blocked[n])
		hiddenIn := func(src []interval) int64 {
			u := union(src)
			return totalLen(u) - intersectLen(u, blocked)
		}
		no := NodeOverlap{
			Node:             n,
			ActivityCycles:   totalLen(activity),
			BlockedCycles:    totalLen(blocked),
			ControllerHidden: hiddenIn(t.ctrl[n]),
			WireHidden:       hiddenIn(t.net[n]),
			PrefetchHidden:   hiddenIn(flight[n]),
		}
		no.HiddenCycles = no.ActivityCycles - intersectLen(activity, blocked)
		r.Overlap.PerNode = append(r.Overlap.PerNode, no)
		r.Overlap.ActivityCycles += no.ActivityCycles
		r.Overlap.BlockedCycles += no.BlockedCycles
		r.Overlap.HiddenCycles += no.HiddenCycles
		r.Overlap.ControllerHidden += no.ControllerHidden
		r.Overlap.WireHidden += no.WireHidden
		r.Overlap.PrefetchHidden += no.PrefetchHidden
	}

	r.Barriers = t.barrierEpisodes()
	r.Digest = t.digest()
	return r
}

// barrierEpisodes groups the barrier spans by barrier object, sorts by
// arrival, and chunks them into episodes of one arrival per processor.
// Each episode's critical node is the last arriver; its chain is the
// set of its spans between its previous departure and this arrival.
func (t *Tracker) barrierEpisodes() []BarrierEpisode {
	byBar := map[int][]*Op{}
	var bars []int
	// prevDepart[node] tracks each node's latest barrier departure seen
	// so far; spans complete in departure order, so walking t.ops in
	// order visits each node's episodes chronologically.
	for _, op := range t.ops {
		if op.Kind == OpBarrier {
			if _, ok := byBar[op.Obj]; !ok {
				bars = append(bars, op.Obj)
			}
			byBar[op.Obj] = append(byBar[op.Obj], op)
		}
	}
	sort.Ints(bars)
	var out []BarrierEpisode
	for _, bar := range bars {
		ops := append([]*Op(nil), byBar[bar]...)
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Start != ops[j].Start {
				return ops[i].Start < ops[j].Start
			}
			return ops[i].Node < ops[j].Node
		})
		for ep := 0; ep*t.nodes < len(ops); ep++ {
			chunk := ops[ep*t.nodes : min(len(ops), (ep+1)*t.nodes)]
			be := BarrierEpisode{
				Bar:          bar,
				Episode:      ep,
				Arrivals:     len(chunk),
				FirstArrival: chunk[0].Start,
				LastArrival:  chunk[0].Start,
			}
			var last *Op
			for _, op := range chunk {
				if op.End > be.Depart {
					be.Depart = op.End
				}
				if last == nil || op.Start > last.Start ||
					(op.Start == last.Start && op.Node > last.Node) {
					if op.Start > be.LastArrival {
						be.LastArrival = op.Start
					}
					last = op
				}
			}
			be.CriticalNode = last.Node
			be.CriticalSlack = be.LastArrival - be.FirstArrival
			be.ChainOps, be.ChainCycles, be.LongestChainKind, be.LongestChainOp =
				t.chain(last)
			out = append(out, be)
		}
	}
	return out
}

// chain summarizes what the critical node's protocol operations were
// doing in the window before its late arrival: every span of that node
// ending at or before the arrival (arrive.Start) and starting after the
// node's previous barrier departure.
func (t *Tracker) chain(arrive *Op) (ops int, cycles int64, longestKind string, longest int64) {
	var prevDepart sim.Time
	for _, op := range t.ops {
		if op.Node != arrive.Node || op == arrive {
			continue
		}
		if op.Kind == OpBarrier && op.End <= arrive.Start && op.End > prevDepart {
			prevDepart = op.End
		}
	}
	for _, op := range t.ops {
		if op.Node != arrive.Node || op == arrive || op.Kind == OpBarrier {
			continue
		}
		if op.Start >= prevDepart && op.End <= arrive.Start {
			ops++
			d := op.End - op.Start
			cycles += d
			if d > longest {
				longest, longestKind = d, op.Kind.String()
			}
		}
	}
	return ops, cycles, longestKind, longest
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// digest hashes every completed span — identity, window, decomposition,
// charges — with FNV-1a in completion order.
func (t *Tracker) digest() string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, op := range t.ops {
		w(int64(op.ID))
		w(int64(op.Node))
		w(int64(op.Kind))
		w(int64(op.Obj))
		w(op.Start)
		w(op.End)
		for s := Stage(0); s < NumStages; s++ {
			w(op.Stages[s])
		}
		for _, c := range op.Charged {
			w(c)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
