// Package params holds the simulated machine's architectural parameters.
// The defaults reproduce Table 1 of the paper ("Default Values for System
// Parameters. 1 cycle = 10 ns"); the sensitivity studies of Section 5.3
// (Figures 13-16) vary them.
//
// Machines are data, not code: a Config is carried by a Profile — a
// named, versioned parameter bundle (schema dsm96/params-profile/v1,
// see profile.go and profiles/README.md) — and the three builtin
// profiles are the interconnect backends the cross-backend ladder
// sweeps: pci1996 (Table 1 exactly), rdma (a 2026 kernel-bypass NIC:
// no interrupt on the data path), and cxl (a coherent interconnect:
// cheap fine-grained remote access, no doorbell).
package params

import "fmt"

// WordBytes is the machine word size used for diffs and bit vectors.
const WordBytes = 4

// Config collects every architectural parameter of the simulated network
// of workstations. All times are in processor cycles unless stated
// otherwise; CycleNanos (10 ns in Table 1) anchors cycles to wall time
// for the unit-conversion helpers and is never consulted by the
// simulation itself. The JSON tags are the dsm96/params-profile/v1 field
// names (documented field-by-field in profiles/README.md).
type Config struct {
	// Processors is the number of nodes (computation processors).
	Processors int `json:"processors"`

	// CycleNanos is the wall-clock length of one processor cycle in
	// nanoseconds (Table 1: 10 ns, a 100 MHz processor; the 2026
	// profiles use 0.5 ns, a 2 GHz core). Reporting-only: it scales the
	// MB/s and microsecond conversion helpers but never enters the
	// cycle-domain simulation, so two profiles with equal cycle
	// parameters produce bit-identical schedules regardless of it.
	CycleNanos float64 `json:"cycle_ns"`

	// TLBSize is the number of TLB entries per processor.
	TLBSize int `json:"tlb_entries"`
	// TLBFillTime is the TLB fill service time in cycles.
	TLBFillTime int64 `json:"tlb_fill_cycles"`
	// InterruptTime is the cost of entering/leaving any interrupt. The
	// rdma and cxl backends set it to 0: user-level and coherent
	// interconnects keep interrupts off the data path entirely.
	InterruptTime int64 `json:"interrupt_cycles"`

	// PageSize in bytes.
	PageSize int `json:"page_bytes"`
	// CacheSize is the total first-level data cache per processor, bytes.
	CacheSize int `json:"cache_bytes"`
	// CacheLineSize in bytes.
	CacheLineSize int `json:"cache_line_bytes"`
	// WriteBufferSize is the number of write-buffer entries.
	WriteBufferSize int `json:"write_buffer_entries"`
	// WriteCacheSize is the number of AURC write-cache entries.
	WriteCacheSize int `json:"write_cache_entries"`

	// MemSetupTime is DRAM setup in cycles; MemCyclesPerWord is the
	// per-word streaming cost after setup.
	MemSetupTime     int64 `json:"mem_setup_cycles"`
	MemCyclesPerWord int64 `json:"mem_cycles_per_word"`

	// WriteThroughCyclesPerWord is the memory-bus occupancy of draining
	// one write-through word from the write buffer. 0 — the Table 1
	// default — derives it from MemSetupTime + MemCyclesPerWord (13
	// cycles), which keeps the memory-latency sensitivity sweep of
	// Figure 15 coupled exactly as the paper's machine was. Modern
	// profiles set it explicitly: posted, write-combining stores do not
	// pay full DRAM setup per word.
	WriteThroughCyclesPerWord int64 `json:"write_through_cycles_per_word"`

	// PCISetupTime and PCICyclesPerWord model the I/O bus between the
	// controller/NIC and memory (PCI in 1996; PCIe/CXL in the modern
	// profiles, where per-word cost may be 0 — setup-dominated DMA).
	PCISetupTime     int64 `json:"pci_setup_cycles"`
	PCICyclesPerWord int64 `json:"pci_cycles_per_word"`

	// NetPathBytesPerCycle is the link width in bytes transferred per
	// cycle in each direction (Table 1: 8 bits bidirectional = 1 B/cycle,
	// i.e. 100 MB/s raw; the paper quotes ~50 MB/s effective after
	// per-message overheads).
	NetPathBytesPerCycle float64 `json:"net_bytes_per_cycle"`
	// MessagingOverhead is the per-message network-interface setup cost
	// paid by the sender.
	MessagingOverhead int64 `json:"messaging_overhead_cycles"`
	// AURCUpdateOverhead is the per-update-message overhead for AURC
	// automatic updates. The paper's default optimistically charges a
	// single cycle (Section 5.3); setting it equal to MessagingOverhead
	// reproduces the pessimistic curve of Figure 13.
	AURCUpdateOverhead int64 `json:"aurc_update_overhead_cycles"`
	// SwitchLatency and WireLatency are per-hop mesh costs.
	SwitchLatency int64 `json:"switch_cycles"`
	WireLatency   int64 `json:"wire_cycles"`

	// ListProcessing is the software cost per element of traversing
	// protocol lists (write notices, intervals).
	ListProcessing int64 `json:"list_processing_cycles"`
	// TwinCyclesPerWord is page twinning cost per word (plus memory).
	TwinCyclesPerWord int64 `json:"twin_cycles_per_word"`
	// DiffCyclesPerWord is software diff creation/application cost per
	// word (plus memory accesses).
	DiffCyclesPerWord int64 `json:"diff_cycles_per_word"`

	// DMADiffBaseCycles is the DMA engine's cost to scan the bit vector
	// of an all-clean page; DMADiffFullCycles is the cost when every word
	// of a 4 KB page is set (paper: ~200 and ~2100 controller cycles).
	// Costs for partially written pages are interpolated linearly.
	DMADiffBaseCycles int64 `json:"dma_diff_base_cycles"`
	DMADiffFullCycles int64 `json:"dma_diff_full_cycles"`

	// CommandIssueCost is the cycles the computation processor spends
	// placing a command in the protocol controller's queue (1996: a
	// couple of uncached writes across the PCI bridge — the doorbell).
	// The cxl backend makes this nearly free (a store to a coherent
	// mailbox); on rdma it is *more* CPU cycles than in 1996, because
	// cores got faster while a PCIe doorbell write stayed ~100 ns.
	CommandIssueCost int64 `json:"command_issue_cycles"`
	// CtrlDispatchCost is the controller core's fixed cost to pick up
	// and decode a command from its queue.
	CtrlDispatchCost int64 `json:"ctrl_dispatch_cycles"`
}

// Default returns Table 1 of the paper (the pci1996 backend).
func Default() Config {
	return Config{
		Processors:           16,
		CycleNanos:           10,
		TLBSize:              128,
		TLBFillTime:          100,
		InterruptTime:        400,
		PageSize:             4096,
		CacheSize:            128 * 1024,
		CacheLineSize:        32,
		WriteBufferSize:      4,
		WriteCacheSize:       4,
		MemSetupTime:         10,
		MemCyclesPerWord:     3,
		PCISetupTime:         10,
		PCICyclesPerWord:     3,
		NetPathBytesPerCycle: 1.0,
		MessagingOverhead:    200,
		AURCUpdateOverhead:   1,
		SwitchLatency:        4,
		WireLatency:          2,
		ListProcessing:       6,
		TwinCyclesPerWord:    5,
		DiffCyclesPerWord:    7,
		DMADiffBaseCycles:    200,
		DMADiffFullCycles:    2100,
		CommandIssueCost:     10,
		CtrlDispatchCost:     20,
	}
}

// Mesh returns the Table 1 machine scaled to an n-node mesh: n
// processors laid out on the closest-to-square rectangle (network.New
// derives the dimensions). Every other parameter keeps its default.
// The parallel-engine scaling benchmarks run on Mesh(64), Mesh(128),
// and Mesh(256).
func Mesh(n int) Config {
	c := Default()
	c.Processors = n
	return c
}

// Validate reports the first configuration inconsistency found.
func (c *Config) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("params: Processors = %d, need >= 1", c.Processors)
	case c.PageSize <= 0 || c.PageSize%WordBytes != 0:
		return fmt.Errorf("params: PageSize = %d must be a positive multiple of %d", c.PageSize, WordBytes)
	case c.CacheLineSize <= 0 || c.CacheLineSize%WordBytes != 0:
		return fmt.Errorf("params: CacheLineSize = %d must be a positive multiple of %d", c.CacheLineSize, WordBytes)
	case c.CacheSize <= 0 || c.CacheSize%c.CacheLineSize != 0:
		return fmt.Errorf("params: CacheSize = %d must be a positive multiple of the line size", c.CacheSize)
	case c.TLBSize <= 0:
		return fmt.Errorf("params: TLBSize = %d, need > 0", c.TLBSize)
	case c.WriteBufferSize <= 0:
		return fmt.Errorf("params: WriteBufferSize = %d, need > 0", c.WriteBufferSize)
	case c.WriteCacheSize <= 0:
		return fmt.Errorf("params: WriteCacheSize = %d, need > 0", c.WriteCacheSize)
	case c.NetPathBytesPerCycle <= 0:
		return fmt.Errorf("params: NetPathBytesPerCycle = %v, need > 0", c.NetPathBytesPerCycle)
	case c.MemCyclesPerWord <= 0 || c.MemSetupTime < 0:
		return fmt.Errorf("params: memory timing (%d setup, %d/word) invalid", c.MemSetupTime, c.MemCyclesPerWord)
	case c.DMADiffFullCycles < c.DMADiffBaseCycles:
		return fmt.Errorf("params: DMA full cost %d below base cost %d", c.DMADiffFullCycles, c.DMADiffBaseCycles)
	case c.DMADiffBaseCycles < 0:
		return fmt.Errorf("params: DMADiffBaseCycles = %d, need >= 0", c.DMADiffBaseCycles)
	case c.CycleNanos <= 0:
		return fmt.Errorf("params: CycleNanos = %v, need > 0", c.CycleNanos)
	case c.WriteThroughCyclesPerWord < 0:
		return fmt.Errorf("params: WriteThroughCyclesPerWord = %d, need >= 0 (0 derives it from memory timing)", c.WriteThroughCyclesPerWord)
	case c.PCISetupTime < 0 || c.PCICyclesPerWord < 0:
		return fmt.Errorf("params: PCI timing (%d setup, %d/word) invalid", c.PCISetupTime, c.PCICyclesPerWord)
	case c.InterruptTime < 0:
		return fmt.Errorf("params: InterruptTime = %d, need >= 0", c.InterruptTime)
	case c.TLBFillTime < 0:
		return fmt.Errorf("params: TLBFillTime = %d, need >= 0", c.TLBFillTime)
	case c.MessagingOverhead < 0 || c.AURCUpdateOverhead < 0:
		return fmt.Errorf("params: messaging overheads (%d, AURC %d) must be >= 0", c.MessagingOverhead, c.AURCUpdateOverhead)
	case c.SwitchLatency < 0 || c.WireLatency < 0 || c.SwitchLatency+c.WireLatency < 1:
		return fmt.Errorf("params: per-hop latency (switch %d + wire %d) must be >= 1 cycle", c.SwitchLatency, c.WireLatency)
	case c.ListProcessing < 0 || c.TwinCyclesPerWord < 0 || c.DiffCyclesPerWord < 0:
		return fmt.Errorf("params: software costs (list %d, twin %d, diff %d) must be >= 0", c.ListProcessing, c.TwinCyclesPerWord, c.DiffCyclesPerWord)
	case c.CommandIssueCost < 0 || c.CtrlDispatchCost < 0:
		return fmt.Errorf("params: controller costs (CommandIssueCost %d, CtrlDispatchCost %d) must be >= 0", c.CommandIssueCost, c.CtrlDispatchCost)
	}
	return nil
}

// PageWords returns words per page.
func (c *Config) PageWords() int { return c.PageSize / WordBytes }

// LineWords returns words per cache line.
func (c *Config) LineWords() int { return c.CacheLineSize / WordBytes }

// MemLineTime is the DRAM occupancy of one cache-line transfer.
func (c *Config) MemLineTime() int64 {
	return c.MemSetupTime + c.MemCyclesPerWord*int64(c.LineWords())
}

// MemWordTime is the DRAM occupancy of a single-word access.
func (c *Config) MemWordTime() int64 { return c.MemSetupTime + c.MemCyclesPerWord }

// WriteThroughWordTime is the memory-bus occupancy of draining one
// write-through word from the write buffer: the explicit
// WriteThroughCyclesPerWord when a profile sets it, otherwise derived
// from the memory timing exactly as the paper's machine was (setup +
// one word, 13 cycles at Table 1 values).
func (c *Config) WriteThroughWordTime() int64 {
	if c.WriteThroughCyclesPerWord > 0 {
		return c.WriteThroughCyclesPerWord
	}
	return c.MemWordTime()
}

// MemBlockTime is the DRAM occupancy of an n-byte streaming transfer.
func (c *Config) MemBlockTime(bytes int) int64 {
	words := int64((bytes + WordBytes - 1) / WordBytes)
	if words == 0 {
		return 0
	}
	return c.MemSetupTime + c.MemCyclesPerWord*words
}

// PCIBlockTime is the PCI occupancy of an n-byte burst.
func (c *Config) PCIBlockTime(bytes int) int64 {
	words := int64((bytes + WordBytes - 1) / WordBytes)
	if words == 0 {
		return 0
	}
	return c.PCISetupTime + c.PCICyclesPerWord*words
}

// NetTransferTime is the cycles a message of n bytes occupies one link.
func (c *Config) NetTransferTime(bytes int) int64 {
	t := float64(bytes) / c.NetPathBytesPerCycle
	w := int64(t)
	if float64(w) < t {
		w++
	}
	return w
}

// DMADiffTime interpolates the DMA engine's scan/transfer cost for a page
// in which wordsSet of pageWords words are marked in the bit vector.
func (c *Config) DMADiffTime(wordsSet, pageWords int) int64 {
	if pageWords <= 0 {
		return c.DMADiffBaseCycles
	}
	if wordsSet > pageWords {
		wordsSet = pageWords
	}
	span := c.DMADiffFullCycles - c.DMADiffBaseCycles
	return c.DMADiffBaseCycles + span*int64(wordsSet)/int64(pageWords)
}

// mbPerSecPerBytePerCycle converts bytes/cycle to MB/s at this profile's
// timebase (Table 1's 10 ns cycle gives the paper's factor of 100).
func (c *Config) mbPerSecPerBytePerCycle() float64 {
	return 1000 / c.CycleNanos
}

// cyclesPerMicro is how many cycles one microsecond spans (100 at the
// paper's 10 ns cycle).
func (c *Config) cyclesPerMicro() float64 {
	return 1000 / c.CycleNanos
}

// Millis converts a cycle count to wall-clock milliseconds at this
// profile's timebase.
func (c *Config) Millis(cycles int64) float64 {
	return float64(cycles) * c.CycleNanos / 1e6
}

// ClockMHz is the processor clock implied by the timebase (Table 1:
// 100 MHz).
func (c *Config) ClockMHz() float64 { return 1000 / c.CycleNanos }

// MemoryBandwidthMBps converts the DRAM streaming parameters to MB/s for
// cache-block transfers, for reporting against Figure 16's axis
// (default: 32 bytes / (10+3*8 cycles) / 10ns ≈ 94 MB/s; the paper quotes
// 103 MB/s for its slightly different accounting).
func (c *Config) MemoryBandwidthMBps() float64 {
	t := c.MemLineTime()
	if t == 0 {
		return 0
	}
	bytesPerCycle := float64(c.CacheLineSize) / float64(t)
	return bytesPerCycle * c.mbPerSecPerBytePerCycle()
}

// NetworkBandwidthMBps converts link width to MB/s (Figure 14's axis).
func (c *Config) NetworkBandwidthMBps() float64 {
	return c.NetPathBytesPerCycle * c.mbPerSecPerBytePerCycle()
}

// SetNetworkBandwidthMBps adjusts the link width for a target bandwidth.
func (c *Config) SetNetworkBandwidthMBps(mbps float64) {
	c.NetPathBytesPerCycle = mbps / c.mbPerSecPerBytePerCycle()
}

// MessagingOverheadMicros reports the messaging overhead in microseconds
// (Figure 13's axis; 200 cycles = 2 us at Table 1's timebase).
func (c *Config) MessagingOverheadMicros() float64 {
	return float64(c.MessagingOverhead) / c.cyclesPerMicro()
}

// SetMessagingOverheadMicros sets the per-message overhead from
// microseconds.
func (c *Config) SetMessagingOverheadMicros(us float64) {
	c.MessagingOverhead = int64(us * c.cyclesPerMicro())
}

// MemoryLatencyNanos reports DRAM setup latency in ns (Figure 15's axis;
// 10 cycles = 100 ns at Table 1's timebase).
func (c *Config) MemoryLatencyNanos() float64 {
	return float64(c.MemSetupTime) * c.CycleNanos
}

// SetMemoryLatencyNanos sets DRAM setup latency from nanoseconds.
func (c *Config) SetMemoryLatencyNanos(ns float64) {
	c.MemSetupTime = int64(ns / c.CycleNanos)
}

// SetMemoryBandwidthMBps adjusts per-word streaming cost for a target
// cache-block bandwidth, holding setup latency fixed.
func (c *Config) SetMemoryBandwidthMBps(mbps float64) {
	// mbps = lineBytes / ((setup + perWord*lineWords) * cycleNs)
	// => perWord = (lineBytes*(1000/cycleNs)/mbps - setup) / lineWords
	lw := float64(c.LineWords())
	per := (float64(c.CacheLineSize)*c.mbPerSecPerBytePerCycle()/mbps - float64(c.MemSetupTime)) / lw
	if per < 1 {
		per = 1
	}
	c.MemCyclesPerWord = int64(per + 0.5)
}
