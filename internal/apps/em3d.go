package apps

import (
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// Em3d simulates electromagnetic-wave propagation through 3-D objects
// (Culler et al., Split-C): a bipartite graph of electric and magnetic
// nodes, randomly wired, where each iteration updates every E node from
// its H dependencies and then every H node from its E dependencies, with
// a barrier between half-steps. A fixed fraction of the edges cross
// processor boundaries (the paper wires 10% of neighbours remotely).
//
// The dependency graph is generated against a fixed virtual partitioning
// (independent of the actual processor count), so results validate
// against the sequential oracle exactly.
type Em3d struct {
	NodesPerKind int // E nodes and H nodes each
	Iters        int
	Degree       int
	RemoteFrac   float64
	// ComputePerDep models per-edge instruction cost.
	ComputePerDep int64

	eVals, hVals int64 // f64 per node
	eDeps, hDeps int64 // Degree i32 per node
	outAddr      int64

	result float64
}

// em3dVirtualParts is the fixed partitioning the wiring is generated
// against (the paper's machine size).
const em3dVirtualParts = 16

// NewEm3d builds an instance.
func NewEm3d(nodesPerKind, iters, degree int, remoteFrac float64) *Em3d {
	return &Em3d{NodesPerKind: nodesPerKind, Iters: iters, Degree: degree,
		RemoteFrac: remoteFrac, ComputePerDep: 80}
}

// DefaultEm3d is the scaled default (paper: 40064 objects, 6 iterations,
// 10% remote neighbours).
func DefaultEm3d() *Em3d { return NewEm3d(4096, 6, 4, 0.10) }

// PaperEm3d reproduces the published input.
func PaperEm3d() *Em3d { return NewEm3d(20032, 6, 4, 0.10) }

// Name implements dsm.App.
func (e *Em3d) Name() string { return "em3d" }

// Setup implements dsm.App.
func (e *Em3d) Setup(h *lrc.Heap) {
	e.result = 0
	n := e.NodesPerKind
	e.eVals = h.AllocPages((8*n + 4095) / 4096)
	e.hVals = h.AllocPages((8*n + 4095) / 4096)
	e.eDeps = h.AllocPages((4*n*e.Degree + 4095) / 4096)
	e.hDeps = h.AllocPages((4*n*e.Degree + 4095) / 4096)
	e.outAddr = h.AllocPages(1)
}

// wire picks a dependency for node i: usually inside i's virtual
// partition, remote with probability RemoteFrac.
func (e *Em3d) wire(r *rng, i int) int {
	n := e.NodesPerKind
	per := (n + em3dVirtualParts - 1) / em3dVirtualParts
	part := i / per
	if r.f64() < e.RemoteFrac {
		// Remote: any node in a different virtual partition.
		for {
			j := r.intn(n)
			if j/per != part {
				return j
			}
		}
	}
	lo := part * per
	hi := min(lo+per, n)
	return lo + r.intn(hi-lo)
}

// Body implements dsm.App.
func (e *Em3d) Body(env *dsm.Env) {
	n := e.NodesPerKind
	lo, hi := blockRange(n, env.NProcs(), env.ID)

	if env.ID == 0 {
		r := newRNG(271828)
		for i := 0; i < n; i++ {
			env.WF(e.eVals+int64(8*i), r.f64())
			env.WF(e.hVals+int64(8*i), r.f64())
			for d := 0; d < e.Degree; d++ {
				env.WI(e.eDeps+int64(4*(i*e.Degree+d)), e.wire(r, i))
				env.WI(e.hDeps+int64(4*(i*e.Degree+d)), e.wire(r, i))
			}
		}
	}
	env.Barrier(0)

	coeff := 1.0 / float64(e.Degree+1)
	for it := 0; it < e.Iters; it++ {
		// E half-step: E[i] -= coeff * sum(H[dep]).
		for i := lo; i < hi; i++ {
			s := 0.0
			for d := 0; d < e.Degree; d++ {
				env.Compute(e.ComputePerDep)
				dep := env.RI(e.eDeps + int64(4*(i*e.Degree+d)))
				s += env.RF(e.hVals + int64(8*dep))
			}
			env.WF(e.eVals+int64(8*i), env.RF(e.eVals+int64(8*i))-coeff*s)
		}
		env.Barrier(10 + 2*it)
		// H half-step.
		for i := lo; i < hi; i++ {
			s := 0.0
			for d := 0; d < e.Degree; d++ {
				env.Compute(e.ComputePerDep)
				dep := env.RI(e.hDeps + int64(4*(i*e.Degree+d)))
				s += env.RF(e.eVals + int64(8*dep))
			}
			env.WF(e.hVals+int64(8*i), env.RF(e.hVals+int64(8*i))-coeff*s)
		}
		env.Barrier(11 + 2*it)
	}

	if env.ID == 0 {
		sum := 0.0
		for i := 0; i < n; i++ {
			env.Compute(4)
			sum += env.RF(e.eVals+int64(8*i)) + env.RF(e.hVals+int64(8*i))
		}
		env.WF(e.outAddr, sum)
		e.result = env.RF(e.outAddr)
	}
	env.Barrier(1)
}

// Result implements dsm.App.
func (e *Em3d) Result() float64 { return e.result }
