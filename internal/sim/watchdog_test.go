package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestWatchdogCatchesLivelock: a process blocks forever while an event
// keeps rescheduling itself (the shape of a retransmission loop whose
// peer never answers). The run never deadlocks — the queue never
// drains — so only the watchdog can end it, with a structured report
// naming the stuck process.
func TestWatchdogCatchesLivelock(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(1000)
	var c Cond
	e.NewProc(3, "stuck", 0, func(p *Proc) {
		c.Wait(p, "reply")
	})
	var churn func()
	churn = func() { e.After(100, churn) }
	e.After(100, churn)

	err := e.Run()
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("expected *StallError, got %v", err)
	}
	if serr.Deadlock {
		t.Error("livelock reported as deadlock")
	}
	r := serr.Report
	if len(r.Blocked) != 1 || r.Blocked[0].ID != 3 ||
		r.Blocked[0].Name != "stuck" || r.Blocked[0].Reason != "reply" {
		t.Errorf("blocked list %+v, want one entry stuck(reply)", r.Blocked)
	}
	if r.At-r.LastProgress <= 1000 {
		t.Errorf("report window At=%d LastProgress=%d not past the 1000-cycle watchdog", r.At, r.LastProgress)
	}
	if !strings.Contains(err.Error(), "stuck(reply)") {
		t.Errorf("error %q does not name the blocked process", err)
	}
}

// TestDeadlockStructured: the historical drained-queue deadlock now
// carries the same structured report (and keeps its message prefix).
func TestDeadlockStructured(t *testing.T) {
	e := NewEngine()
	var c Cond
	e.NewProc(0, "stuck", 0, func(p *Proc) {
		c.Wait(p, "never-signaled")
	})
	err := e.Run()
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("expected *StallError, got %v", err)
	}
	if !serr.Deadlock {
		t.Error("drained queue not reported as deadlock")
	}
	if !strings.HasPrefix(err.Error(), "sim: deadlock, blocked processes:") {
		t.Errorf("deadlock message changed: %q", err)
	}
	if len(serr.Report.Blocked) != 1 || serr.Report.Blocked[0].Reason != "never-signaled" {
		t.Errorf("report %+v missing the blocked process", serr.Report)
	}
}

// TestWatchdogNoFalseTrips: sleeps far longer than the window are
// progress when they complete; churn with no blocked process restarts
// the window; and an armed watchdog that never trips leaves the event
// schedule bit-identical.
func TestWatchdogNoFalseTrips(t *testing.T) {
	run := func(window Time) (uint64, uint64) {
		e := NewEngine()
		e.SetWatchdog(window)
		e.NewProc(0, "sleeper", 0, func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(10000) // 10x the window per hop
			}
		})
		// Engine-only churn during the sleeps (no process is blocked on
		// it; a sleeping process is waiting on its own wake).
		n := 0
		var tick func()
		tick = func() {
			if n++; n < 40 {
				e.After(900, tick)
			}
		}
		e.After(900, tick)
		if err := e.Run(); err != nil {
			t.Fatalf("watchdog %d tripped on a healthy run: %v", window, err)
		}
		return e.EventsRun(), e.Fingerprint()
	}
	// Note: a process sleeping is "blocked" with reason "sleep", but its
	// wake event always fires within the queue, so progress keeps
	// happening as long as the watchdog window exceeds the inter-wake
	// gap seen by the run loop. Use a window below the sleep length to
	// prove wake events themselves count as progress.
	ev1, fp1 := run(0)     // disarmed
	ev2, fp2 := run(20000) // armed, never trips
	if ev1 != ev2 || fp1 != fp2 {
		t.Errorf("armed watchdog changed the schedule: events %d/%d fp %016x/%016x", ev1, ev2, fp1, fp2)
	}
}
