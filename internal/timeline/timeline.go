// Package timeline records where every simulated nanosecond went — as
// spans on a per-track timeline rather than as aggregate counters. It is
// the observability layer the paper's figures imply: each computation
// processor's run decomposes into compute, read-fault stall, write-fault
// stall, lock stall, barrier stall, prefetch-issue, IPC steal, and
// "other" phases; protocol controllers and mesh links get occupancy
// tracks of their own. The Perfetto exporter (WritePerfetto) turns the
// recording into a Chrome trace-event JSON file loadable in
// ui.perfetto.dev, with the protocol events of an attached trace.Buffer
// overlaid as instant markers on the same timebase.
//
// # Timebase contract
//
// All spans and instants are in simulated cycles, the same clock
// sim.Engine.Now returns and trace.Event.Time carries (1 cycle = 10 ns
// in the paper's machine). The exporter writes cycles verbatim into the
// trace-event "ts"/"dur" fields, so one viewer microsecond reads as one
// simulated cycle — a display convention, documented in the exported
// file's metadata, that keeps the artifact integer-only and
// byte-reproducible.
//
// # Zero cost when disabled
//
// Every recording method is safe on a nil *Recorder and returns
// immediately, the same pattern trace.Buffer uses: instrumented layers
// keep an always-present field (or skip hook installation entirely) and
// a disabled run executes the exact event schedule — same fingerprint,
// same goldens, zero additional allocations — as a build without the
// package.
//
// # Determinism
//
// Recording happens only from the simulation's single logical thread, in
// schedule order, into plain slices; the exporters iterate those slices
// and write with fixed formatting. Because the simulation itself is
// deterministic, the exported timeline and metrics files are
// byte-identical across repeat runs and GOMAXPROCS settings — the
// artifacts are correctness gates, not just viewers (see the golden and
// repeat-run tests in this package).
package timeline

import (
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// Phase classifies what a computation processor was doing during a span.
type Phase int

const (
	// PhaseCompute is useful application work (the protocols' lazily
	// flushed busy time).
	PhaseCompute Phase = iota
	// PhaseReadFault is stall on a page fetch: an invalid page being
	// brought up to date (diff gather under TreadMarks, whole-page fetch
	// under AURC).
	PhaseReadFault
	// PhaseWriteFault is stall making a page writable: twinning, or
	// arming the controller's write bit vector.
	PhaseWriteFault
	// PhaseLock is lock acquire/grant stall.
	PhaseLock
	// PhaseBarrier is barrier wait.
	PhaseBarrier
	// PhasePrefetch is time spent issuing prefetch requests after an
	// acquire or barrier.
	PhasePrefetch
	// PhaseIPC is backed-up interrupt service absorbed by the
	// application (servicing remote requests on the computation
	// processor).
	PhaseIPC
	// PhaseOther bundles interrupt entry/exit, TLB fills, cache misses,
	// and write-buffer stalls (the paper's "others").
	PhaseOther
	// NumPhases bounds the Phase values; fixed-size arrays indexed by
	// Phase replace maps in totals.
	NumPhases
)

// String returns the track-slice label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseReadFault:
		return "read-fault"
	case PhaseWriteFault:
		return "write-fault"
	case PhaseLock:
		return "lock"
	case PhaseBarrier:
		return "barrier"
	case PhasePrefetch:
		return "prefetch"
	case PhaseIPC:
		return "ipc"
	case PhaseOther:
		return "other"
	}
	return "phase?"
}

// Category maps a phase to the paper's accounting category, so per-node
// span totals reconcile exactly with stats.Breakdown (the property
// TestTimelineReconcilesBreakdown gates).
func (p Phase) Category() stats.Category {
	switch p {
	case PhaseCompute:
		return stats.Busy
	case PhaseReadFault, PhaseWriteFault:
		return stats.Data
	case PhaseLock, PhaseBarrier, PhasePrefetch:
		return stats.Synch
	case PhaseIPC:
		return stats.IPC
	}
	return stats.Other
}

// PhaseForReason maps a sim.Proc stall reason (the strings the protocol
// layers pass to SleepReason and wait gates) to a timeline phase. The
// mapping mirrors the protocols' CategoryFor: a reason's phase always
// lands in the same stats.Category the protocols charge it to.
func PhaseForReason(reason string) Phase {
	switch reason {
	case "busy":
		return PhaseCompute
	case "page-fetch":
		return PhaseReadFault
	case "twin":
		return PhaseWriteFault
	case "lock", "lock-grant":
		return PhaseLock
	case "barrier":
		return PhaseBarrier
	case "prefetch-issue":
		return PhasePrefetch
	case "ipc-steal":
		return PhaseIPC
	}
	return PhaseOther
}

// Span is one phase interval on a processor track, [Start, End) in
// simulated cycles.
type Span struct {
	Start, End sim.Time
	Phase      Phase
}

// JobSpan is one controller-core service interval.
type JobSpan struct {
	Start, End sim.Time
	Job        string
}

// Recorder accumulates per-track spans for one run. The zero value is
// unusable; use NewRecorder. A nil *Recorder is safe to record into
// (every method is a no-op), so instrumented layers keep an
// always-present field with zero cost when the timeline is off.
type Recorder struct {
	procs     [][]Span
	ctrl      [][]JobSpan
	linkNames []string
	links     [][]Span
	// degraded[n] is the cycle node n failed over to software protocol
	// handling (-1 = controller healthy for the whole run).
	degraded []sim.Time
}

// NewRecorder builds a recorder for a machine of `nodes` processors.
func NewRecorder(nodes int) *Recorder {
	r := &Recorder{
		procs:    make([][]Span, nodes),
		ctrl:     make([][]JobSpan, nodes),
		degraded: make([]sim.Time, nodes),
	}
	for i := range r.degraded {
		r.degraded[i] = -1
	}
	return r
}

// Nodes returns the number of processor tracks.
func (r *Recorder) Nodes() int {
	if r == nil {
		return 0
	}
	return len(r.procs)
}

// Stall records a completed processor stall (or busy flush): the span
// [start, end) on node's track, classified by PhaseForReason. Adjacent
// same-phase spans merge, so lazily flushed busy time stays one slice.
// Safe on nil; zero-length spans are dropped.
func (r *Recorder) Stall(node int, reason string, start, end sim.Time) {
	if r == nil || end <= start || node < 0 || node >= len(r.procs) {
		return
	}
	ph := PhaseForReason(reason)
	tr := r.procs[node]
	if n := len(tr); n > 0 && tr[n-1].Phase == ph && tr[n-1].End == start {
		tr[n-1].End = end
		return
	}
	r.procs[node] = append(tr, Span{Start: start, End: end, Phase: ph})
}

// Controller records one controller-core service window on node's
// controller track. Safe on nil.
func (r *Recorder) Controller(node int, job string, start, end sim.Time) {
	if r == nil || end <= start || node < 0 || node >= len(r.ctrl) {
		return
	}
	r.ctrl[node] = append(r.ctrl[node], JobSpan{Start: start, End: end, Job: job})
}

// InitLinks names the mesh-link tracks; index i of a later Link call
// refers to names[i]. Called once by network.SetTimeline. Safe on nil.
func (r *Recorder) InitLinks(names []string) {
	if r == nil {
		return
	}
	r.linkNames = names
	r.links = make([][]Span, len(names))
}

// Link records one message body's occupancy of link idx. Back-to-back
// transfers merge into one span. Safe on nil.
func (r *Recorder) Link(idx int, start, end sim.Time) {
	if r == nil || end <= start || idx < 0 || idx >= len(r.links) {
		return
	}
	tr := r.links[idx]
	if n := len(tr); n > 0 && tr[n-1].End == start {
		tr[n-1].End = end
		return
	}
	r.links[idx] = append(tr, Span{Start: start, End: end})
}

// Degraded marks the cycle node's protocol controller was declared dead
// and the node fell back to software protocol handling. Safe on nil; a
// second mark for the same node is ignored (failover is one-way).
func (r *Recorder) Degraded(node int, at sim.Time) {
	if r == nil || node < 0 || node >= len(r.degraded) || r.degraded[node] >= 0 {
		return
	}
	r.degraded[node] = at
}

// DegradedAt returns the cycle node failed over, and whether it did.
func (r *Recorder) DegradedAt(node int) (sim.Time, bool) {
	if r == nil || node < 0 || node >= len(r.degraded) || r.degraded[node] < 0 {
		return 0, false
	}
	return r.degraded[node], true
}

// ProcSpans returns node's recorded phase spans in chronological order.
func (r *Recorder) ProcSpans(node int) []Span {
	if r == nil || node < 0 || node >= len(r.procs) {
		return nil
	}
	return r.procs[node]
}

// ControllerSpans returns node's controller service windows.
func (r *Recorder) ControllerSpans(node int) []JobSpan {
	if r == nil || node < 0 || node >= len(r.ctrl) {
		return nil
	}
	return r.ctrl[node]
}

// PhaseTotals sums node's span durations per phase — the numbers that
// must reconcile with stats.Breakdown per category.
func (r *Recorder) PhaseTotals(node int) [NumPhases]sim.Time {
	var out [NumPhases]sim.Time
	if r == nil || node < 0 || node >= len(r.procs) {
		return out
	}
	for _, s := range r.procs[node] {
		out[s.Phase] += s.End - s.Start
	}
	return out
}

// CategoryTotals folds PhaseTotals through Phase.Category: entry c is
// the cycles node spent in phases charged to stats category c.
func (r *Recorder) CategoryTotals(node int) [stats.NumCategories]sim.Time {
	var out [stats.NumCategories]sim.Time
	for ph, d := range r.PhaseTotals(node) {
		out[Phase(ph).Category()] += d
	}
	return out
}
