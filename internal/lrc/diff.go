package lrc

import (
	"encoding/binary"
	"fmt"
)

// WordBytes is the diff granularity (one machine word).
const WordBytes = 4

// Diff is an encoding of the modifications made to a page: the indices of
// the modified words and their new values — exactly what the paper's DMA
// engine produces from its bit vector (a scatter/gather record).
type Diff struct {
	Page  int
	Words []int32  // sorted word indices within the page
	Data  []uint32 // new values, parallel to Words

	// Owner tags the writer; the diff covers the writer's intervals
	// [OldSeq, Seq] (a diff accumulates all writes since the twin was
	// created, possibly spanning several intervals). Seq drives the
	// requester's "which diffs am I missing" filtering; OldSeq and VTS
	// (the vector timestamp of the span's OLDEST interval) drive the
	// happened-before ordering when diffs from several writers are
	// applied to one page.
	Owner  int
	Seq    int32
	OldSeq int32
	VTS    VTS
}

// CreateDiff compares cur against twin word by word and returns the diff
// (possibly empty). Both slices must be the same page-sized length.
func CreateDiff(page int, twin, cur []byte) *Diff {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("lrc: twin %d bytes vs page %d bytes", len(twin), len(cur)))
	}
	d := &Diff{Page: page}
	for w := 0; w+WordBytes <= len(cur); w += WordBytes {
		a := binary.LittleEndian.Uint32(twin[w:])
		b := binary.LittleEndian.Uint32(cur[w:])
		if a != b {
			d.Words = append(d.Words, int32(w/WordBytes))
			d.Data = append(d.Data, b)
		}
	}
	return d
}

// DiffFromVector builds a diff from a write bit vector and the current
// page contents — the hardware-assisted path: the snoop logic marked the
// written words; the DMA engine gathers them.
func DiffFromVector(page int, vec *WriteVector, cur []byte) *Diff {
	d := &Diff{Page: page}
	vec.ForEach(func(w int) {
		d.Words = append(d.Words, int32(w))
		d.Data = append(d.Data, binary.LittleEndian.Uint32(cur[w*WordBytes:]))
	})
	return d
}

// Apply scatters the diff's words into dst.
func (d *Diff) Apply(dst []byte) {
	for i, w := range d.Words {
		binary.LittleEndian.PutUint32(dst[int(w)*WordBytes:], d.Data[i])
	}
}

// Len returns the number of modified words.
func (d *Diff) Len() int { return len(d.Words) }

// WireBytes is the network size of the diff: a header, the page bit
// vector (one bit per word), and the modified words.
func (d *Diff) WireBytes(pageWords int) int {
	return 16 + (pageWords+7)/8 + WordBytes*len(d.Words)
}

// WriteVector is the per-page bit vector maintained by the controller's
// snoop logic: one bit per word, set when the computation processor
// writes the word through to the memory bus (Section 3.1).
type WriteVector struct {
	bits []uint64
	set  int
}

// NewWriteVector returns a vector for a page of pageWords words.
func NewWriteVector(pageWords int) *WriteVector {
	return &WriteVector{bits: make([]uint64, (pageWords+63)/64)}
}

// Mark sets the bit for word w (idempotent).
func (v *WriteVector) Mark(w int) {
	i, b := w/64, uint(w%64)
	if v.bits[i]&(1<<b) == 0 {
		v.bits[i] |= 1 << b
		v.set++
	}
}

// Count returns the number of marked words.
func (v *WriteVector) Count() int { return v.set }

// Clear resets every bit (generating the diff resets the vector).
func (v *WriteVector) Clear() {
	for i := range v.bits {
		v.bits[i] = 0
	}
	v.set = 0
}

// ForEach calls fn for each marked word index in ascending order.
func (v *WriteVector) ForEach(fn func(w int)) {
	for i, word := range v.bits {
		for word != 0 {
			b := word & (-word)
			bit := 0
			for (b >> uint(bit)) != 1 {
				bit++
			}
			fn(i*64 + bit)
			word &^= b
		}
	}
}
