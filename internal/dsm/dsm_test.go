package dsm

import (
	"testing"

	"dsm96/internal/lrc"
)

// sumApp adds the integers 1..n through shared memory.
type sumApp struct {
	n      int
	data   Addr
	out    Addr
	result float64
}

func (a *sumApp) Name() string { return "sum" }
func (a *sumApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.data = h.Alloc(4*a.n, 8)
	a.out = h.Alloc(8, 8)
}
func (a *sumApp) Body(env *Env) {
	n := env.NProcs()
	for i := env.ID; i < a.n; i += n {
		env.WI(a.data+Addr(4*i), i+1)
	}
	env.Barrier(0)
	if env.ID == 0 {
		total := 0
		for i := 0; i < a.n; i++ {
			total += env.RI(a.data + Addr(4*i))
		}
		env.WF(a.out, float64(total))
		a.result = env.RF(a.out)
	}
	env.Barrier(1)
}
func (a *sumApp) Result() float64 { return a.result }

func TestRunSequential(t *testing.T) {
	app := &sumApp{n: 100}
	got := RunSequential(app, 4096)
	if got != 5050 {
		t.Fatalf("sum = %v, want 5050", got)
	}
}

func TestSeqSystemRW(t *testing.T) {
	s := NewSeqSystem(4096)
	env := &Env{ID: 0, Sys: s}
	env.WI(16, -7)
	if env.RI(16) != -7 {
		t.Fatal("int roundtrip failed")
	}
	env.WF(24, 2.5)
	if env.RF(24) != 2.5 {
		t.Fatal("float roundtrip failed")
	}
	env.W32(0, 99)
	if env.R32(0) != 99 {
		t.Fatal("u32 roundtrip failed")
	}
	if env.NProcs() != 1 {
		t.Fatal("seq system must report one processor")
	}
	// Heap allocations are visible through the frames.
	a := s.Heap().Alloc(8, 8)
	env.WF(a, 1.25)
	if s.Frames().ReadF64(a) != 1.25 {
		t.Fatal("frames do not back the env")
	}
}

func TestSeqSetupResets(t *testing.T) {
	app := &sumApp{n: 10}
	first := RunSequential(app, 4096)
	second := RunSequential(app, 4096)
	if first != second || first != 55 {
		t.Fatalf("reruns differ: %v vs %v", first, second)
	}
}
