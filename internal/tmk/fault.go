package tmk

import (
	"encoding/binary"
	"sort"

	"dsm96/internal/trace"

	"dsm96/internal/controller"
	"dsm96/internal/lrc"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
)

// fault handles an access violation: an invalid page is brought
// up-to-date by collecting diffs from previous writers; a read-only page
// being written is twinned (or put under the write bit vector) and made
// writable. Runs in processor context; the caller re-checks the state
// afterwards (an in-flight fetch can race with fresh invalidations).
func (n *pnode) fault(p *sim.Proc, pg int, pe *page, write bool) {
	n.fp.Flush(p)
	// Kernel trap entry/exit: the paper accounts interrupt time under
	// "others".
	p.SleepReason(n.pr.cfg.InterruptTime, reasonInterrupt)
	if pe.state == stInvalid {
		n.st.PageFaults++
		n.profile(pg).Faults++
		n.emit(pg, trace.KindFault, "read/write miss (pending=%d)", len(pe.pending))
		pe.uselessStreak = 0 // demand interest: the page is hot again
		// The span opens after the trap, so its window is exactly the
		// cycles the fetch blocks the processor — one span per page
		// fault, so span counts equal the PageFaults counter.
		op := n.pr.sp.Begin(n.id, spans.OpReadFault, pg, p.Now())
		if f := pe.fetch; f != nil {
			// A prefetch (or another thread of protocol activity) is
			// already fetching this page: do not fetch again, wait for
			// its completion (Section 3.1's status bits).
			if f.prefetch {
				n.st.UsefulPrefetch++
				n.st.PrefetchUseCycles += uint64(p.Now() - pe.prefetchIssued)
				n.st.PrefetchUseCount++
				f.prefetch = false // consumed by demand before completion
			}
			f.gate.Wait(p, reasonFetch)
			// The whole wait rode a transaction someone else started
			// (typically a prefetch): attribute it to remote service.
			op.Mark(n.eng, spans.StageRemote, p.Now())
			n.pr.sp.End(op, p.Now())
			return
		}
		n.demandFetch(p, pg, pe, op)
		n.pr.sp.End(op, p.Now())
		return
	}
	if write && pe.state == stRO {
		n.st.WriteFaults++
		n.profile(pg).WriteFaults++
		op := n.pr.sp.Begin(n.id, spans.OpWriteFault, pg, p.Now())
		n.makeWritable(p, pg, pe, op)
		// Twin setup is completion-side work wherever it ran; anything
		// the controller path has not already claimed lands here too.
		op.Mark(n.eng, spans.StageController, p.Now())
		n.pr.sp.End(op, p.Now())
	}
}

// demandFetch collects the diffs named by the page's pending write
// notices from each previous writer and applies them. The faulting
// processor stalls for the whole transaction (data fetch latency).
func (n *pnode) demandFetch(p *sim.Proc, pg int, pe *page, op *spans.Op) {
	owners := pendingByOwner(pe, n.ownerScratch)
	n.ownerScratch = owners
	if len(owners) == 0 {
		// No outstanding writer (e.g. raced with a completed fetch).
		pe.state = stRO
		return
	}
	f := &fetchOp{outstanding: len(owners), op: op}
	pe.fetch = f
	for _, o := range owners {
		owner := n.pr.nodes[o]
		fromSeq := pe.applied[o]
		n.sendFromProc(p, reasonFetch, o, requestWireBytes, func() {
			owner.serveDiffReq(n.id, pg, fromSeq, false, op)
		})
	}
	f.gate.Wait(p, reasonFetch)
}

// makeWritable prepares a read-only page for local writes.
func (n *pnode) makeWritable(p *sim.Proc, pg int, pe *page, op *spans.Op) {
	cfg := n.pr.cfg
	switch {
	case n.pr.mode.HWDiff() && !n.degraded:
		// No twin: clear the page's write vector to establish a fresh
		// baseline and flip the protection. The write-through snoop
		// records modifications from here on.
		n.ctl.Vector(pg).Clear()
		pe.vecLive = true
		p.SleepReason(writeFaultSetupCost, reasonTwin)
	case n.ctrlOK():
		// The controller copies the page into its DRAM as the twin; the
		// processor must wait (the write cannot proceed before the
		// snapshot exists), but spends no instructions on the copy.
		n.st.TwinsCreated++
		pe.twin = append([]byte(nil), n.frames.Page(pg)...)
		done := &sim.Gate{}
		n.ctl.Submit(n.eng, &sim.Job{
			Name: "twin",
			Run: func() sim.Time {
				op.Mark(n.eng, spans.StageQueue, n.eng.Now())
				end := n.mem.DMA(cfg.PageSize)
				base := cfg.CtrlDispatchCost
				if d := end - n.eng.Now(); d > base {
					return d
				}
				return base
			},
			Done: func() { done.Open(n.eng) },
		}, func() {
			// Swallowed by a dead controller: redo the copy in software
			// (the functional snapshot above is still valid — nothing has
			// written the page; the waiter is parked on the gate).
			n.st.CtrlFallbackJobs++
			cost := controller.TwinCost(cfg)
			n.st.DiffCycles += cost
			_, end := n.cpu.Reserve(n.eng, cost)
			if m := n.mem.MemTouch(2 * cfg.PageSize); m > end {
				end = m
			}
			n.eng.At(end, func() { done.Open(n.eng) })
		})
		p.SleepReason(cfg.CommandIssueCost, reasonTwin)
		done.Wait(p, reasonTwin)
	default:
		// Software twin on the computation processor: 5 cycles/word plus
		// the memory traffic of copying the page.
		n.st.TwinsCreated++
		pe.twin = append([]byte(nil), n.frames.Page(pg)...)
		cost := controller.TwinCost(cfg)
		n.st.DiffCycles += cost
		memEnd := n.mem.MemTouch(2 * cfg.PageSize)
		p.SleepReason(cost, reasonTwin)
		if d := memEnd - p.Now(); d > 0 {
			p.SleepReason(d, reasonTwin)
		}
	}
	if pe.state == stInvalid {
		// A write notice arrived while the twin was being set up: the
		// snapshot is for a page that just went stale. Drop it (no write
		// has happened since) and let the fault loop fetch and retry.
		pe.twin = nil
		pe.vecLive = false
		delete(n.dirty, pg)
		n.emit(pg, trace.KindOther, "twin aborted by invalidation")
		return
	}
	n.emit(pg, trace.KindWritable, "twin=%v vec=%v", pe.twin != nil, pe.vecLive)
	pe.state = stRW
	n.dirty[pg] = true
}

// createDiffFunctional snapshots the page's modifications into a diff,
// caches it, retires the twin / write vector, and write-protects the
// page. State changes are immediate; the caller charges the time.
// Returns the diff and, for the HW path, the number of words the DMA
// scan cost depends on.
func (n *pnode) createDiffFunctional(pg int) *lrc.Diff {
	pe := n.page(pg)
	frame := n.frames.Page(pg)
	var d *lrc.Diff
	if pe.vecLive {
		// Keyed on the page's own baseline, not the mode: in HW-diff mode
		// every dirty page is vector-armed, and after a failover this
		// salvages pages armed before the crash (the passive snoop kept
		// their vectors accurate) while post-failover pages carry twins.
		vec := n.ctl.Vector(pg)
		d = lrc.DiffFromVector(pg, vec, frame)
		vec.Clear()
		pe.vecLive = false
	} else {
		d = lrc.CreateDiff(pg, pe.twin, frame)
		pe.twin = nil
	}
	if n.degraded {
		n.st.SoftwareFallbackDiffs++
	}
	d.Owner = n.id
	d.Seq = n.vts[n.id] // the latest closed interval covers these writes
	d.OldSeq = pe.firstIval
	if d.OldSeq == 0 {
		d.OldSeq = d.Seq
	}
	d.VTS = n.ivals[n.id][d.OldSeq-1].VTS
	pe.firstIval = 0
	n.diffCache[pg] = append(n.diffCache[pg], d)
	delete(n.dirty, pg)
	if pe.state == stRW {
		pe.state = stRO
	}
	n.st.DiffsCreated++
	n.emit(pg, trace.KindDiffCreate, "seq=%d..%d words=%d", d.OldSeq, d.Seq, d.Len())
	return d
}

// flushLocalDiff retires the page's live twin / write vector into a
// cached diff (nil if the page is clean here). An interval is closed
// first when (a) no closed interval lists the page yet or (b) a diff
// tagged with the current interval already exists — re-using a tag would
// hide the new diff from every requester that already consumed that
// sequence number, silently losing the writes made since. It also
// returns whether the diff came from a write vector — the DMA-vs-
// software cost split the controller charging paths branch on — and,
// for the vector case, the bit-vector population the DMA cost depends
// on.
func (n *pnode) flushLocalDiff(pg int) (d *lrc.Diff, words int, usedVector bool) {
	if !n.dirty[pg] {
		return nil, 0, false
	}
	needClose := n.vts[n.id] == 0 || len(n.ivals[n.id]) == 0 ||
		!containsPage(n.ivals[n.id][n.vts[n.id]-1].Pages, pg)
	if !needClose {
		if cached := n.diffCache[pg]; len(cached) > 0 && cached[len(cached)-1].Seq == n.vts[n.id] {
			needClose = true
		}
	}
	if needClose {
		n.closeInterval()
	}
	if usedVector = n.page(pg).vecLive; usedVector {
		words = n.ctl.Vector(pg).Count()
	}
	return n.createDiffFunctional(pg), words, usedVector
}

// serveDiffReq services a diff request arriving at this (owner) node in
// engine context: gather cached diffs newer than fromSeq, creating the
// final one on demand if the page is still being written, then reply.
//
// Base/P: the computation processor is interrupted and does everything
// (IPC overhead at this node, per the paper). I variants: the processor
// is interrupted only for interval processing; diff generation and the
// reply send run on the controller (hardware DMA in D variants).
// Prefetch requests carry low priority on the controller so demand
// requests overtake them.
func (n *pnode) serveDiffReq(from, pg int, fromSeq int32, isPrefetch bool, op *spans.Op) {
	n.emit(pg, trace.KindOther, "serve from=%d fromSeq=%d dirty=%v cached=%d", from, fromSeq, n.dirty[pg], len(n.diffCache[pg]))
	cfg := n.pr.cfg
	// The request is off the wire: everything since the previous
	// milestone (the issue) was network time.
	op.Mark(n.eng, spans.StageWire, n.eng.Now())

	created, createCostWords, createdFromVec := n.flushLocalDiff(pg)
	var reply []*lrc.Diff
	for _, d := range n.diffCache[pg] {
		if d.Seq > fromSeq {
			reply = append(reply, d)
		}
	}
	bytes := 16
	totalWords := 0
	for _, d := range reply {
		bytes += d.WireBytes(cfg.PageWords())
		totalWords += d.Len()
	}
	requester := n.pr.nodes[from]
	// upToSeq is captured NOW: the reply covers this node's writes up to
	// its current latest closed interval. (Evaluating vts lazily in the
	// delivery closure would overclaim coverage if this node closes more
	// intervals while the reply is in flight, making the requester skip
	// later write notices and read stale data.)
	upToSeq := n.vts[n.id]
	owner := n.id
	deliver := func() {
		requester.receiveDiffReply(pg, owner, reply, upToSeq)
	}

	if !n.ctrlOK() {
		// Everything on the computation processor (Base/P, or a degraded
		// node whose controller died).
		cost := cfg.ListProcessing * int64(1+len(reply))
		if created != nil {
			c := controller.SoftDiffCreateCost(cfg)
			cost += c
			n.st.DiffCycles += c
			n.mem.MemTouch(2 * cfg.PageSize)
		}
		n.serveCPUSpan(cost, op, func() { n.sendAsync(from, bytes, deliver) })
		return
	}

	// I variants: brief processor interrupt for interval processing...
	n.serveCPUSpan(cfg.ListProcessing*int64(1+len(reply)), op, func() {})
	// ...then the controller does the data movement and the send.
	prio := sim.PriorityHigh
	if isPrefetch && !n.pr.opts.NoPrefetchPriority {
		prio = sim.PriorityLow
	}
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	n.ctl.Submit(n.eng, &sim.Job{
		Name:     "diff-serve",
		Priority: prio,
		Run: func() sim.Time {
			op.Mark(n.eng, spans.StageQueue, n.eng.Now())
			cost := cfg.CtrlDispatchCost
			if created != nil {
				if createdFromVec {
					cost += cfg.DMADiffTime(createCostWords, cfg.PageWords())
					n.mem.DMA(4 * createCostWords)
				} else {
					cost += controller.SoftDiffCreateCost(cfg)
					n.mem.DMA(cfg.PageSize)
				}
			}
			cost += cfg.MessagingOverhead
			n.mem.DMA(bytes) // stream the reply out through the PCI bus
			return cost
		},
		Done: func() {
			op.Mark(n.eng, spans.StageRemote, n.eng.Now())
			n.pr.net.SendReliable(n.id, from, bytes, 0, deliver)
		},
	}, func() {
		// Swallowed command: the reply must still go out, but the
		// computation processor now pays for the diff creation and the
		// send (the interval processing interrupt already ran, and the
		// message counters were already bumped for this reply).
		n.st.CtrlFallbackJobs++
		cost := sim.Time(0)
		if created != nil {
			c := controller.SoftDiffCreateCost(cfg)
			cost += c
			n.st.DiffCycles += c
			n.mem.MemTouch(2 * cfg.PageSize)
		}
		n.serveCPUSpan(cost, op, func() { n.softWireSend(from, bytes, deliver) })
	})
}

func containsPage(pages []int, pg int) bool {
	for _, p := range pages {
		if p == pg {
			return true
		}
	}
	return false
}

// receiveDiffReply handles one owner's reply at the faulting node, in
// engine context. When all owners have replied the diffs are ordered by
// the happened-before relation and applied to the page (and to a live
// twin, so local modifications stay separable).
func (n *pnode) receiveDiffReply(pg, owner int, diffs []*lrc.Diff, upToSeq int32) {
	pe := n.page(pg)
	f := pe.fetch
	if f == nil {
		return // stale reply (fetch already satisfied)
	}
	if !f.markReplied(owner) {
		// A duplicated reply must not double-decrement outstanding and
		// complete the fetch before the real missing owner answers.
		n.st.DupMsgsSuppressed++
		return
	}
	f.op.Mark(n.eng, spans.StageReply, n.eng.Now())
	f.diffs = append(f.diffs, diffs...)
	if len(diffs) > 0 {
		if upToSeq > pe.applied[owner] {
			pe.applied[owner] = upToSeq
		}
	}
	f.outstanding--
	if f.outstanding > 0 {
		return
	}
	n.applyFetched(pg, pe, f)
}

// applyFetched incorporates all collected diffs and completes the fetch.
func (n *pnode) applyFetched(pg int, pe *page, f *fetchOp) {
	cfg := n.pr.cfg
	// A live local twin / write vector is retired into its own diff
	// BEFORE any remote data lands: diff spans must never cross an
	// incorporation of remote writes, or the span-based happened-before
	// ordering of diffs would be unsound (and the twin would start
	// disagreeing with the frame on remote words).
	localDiff, localWords, localFromVec := n.flushLocalDiff(pg)
	if localDiff != nil {
		// Our own just-flushed words reflect everything we have seen.
		idx := pe.tagIndex(n.vts.Clone())
		for _, w := range localDiff.Words {
			pe.setTagIdx(w, idx, cfg.PageWords())
		}
	}
	ordered := n.sorter.order(f.diffs)
	totalWords := 0
	bytes := 0
	frame := n.frames.Page(pg)
	for _, d := range ordered {
		n.emit(pg, trace.KindDiffApply, "owner=%d seq=%d..%d words=%d", d.Owner, d.OldSeq, d.Seq, d.Len())
		idx := pe.tagIndex(d.VTS)
		for i, w := range d.Words {
			// Skip words whose current writer had already seen this
			// diff's whole span: their value is strictly newer (data
			// that arrived ahead of its notices must not be clobbered
			// when the old diffs are eventually fetched).
			if t := pe.tag(w); t != nil && t.CoversEntry(d.Owner, d.OldSeq) {
				continue
			}
			binary.LittleEndian.PutUint32(frame[int(w)*4:], d.Data[i])
			pe.setTagIdx(w, idx, cfg.PageWords())
		}
		if d.Seq > pe.applied[d.Owner] {
			pe.applied[d.Owner] = d.Seq
		}
		totalWords += d.Len()
		bytes += d.WireBytes(cfg.PageWords())
		n.st.DiffsApplied++
		prof := n.profile(pg)
		prof.DiffsApplied++
		prof.WordsApplied += uint64(d.Len())
	}
	prunePending(pe)
	finish := func() {
		// Local application done: the rest of the operation's window,
		// if any, is the waiter's wakeup.
		f.op.Mark(n.eng, spans.StageController, n.eng.Now())
		// The processor snoops the controller's (or its own) writes to
		// local memory and invalidates stale cached lines.
		n.mem.InvalidatePage(int64(pg) * int64(cfg.PageSize))
		if len(pe.pending) == 0 {
			pe.state = stRO // a write fault re-protects and re-twins
			pe.prefetchedUnused = f.prefetch
		}
		// else: invalidated again while fetching; the waiter re-faults.
		pe.fetch = nil
		// A prefetch span closes when the page lands (nobody is
		// waiting); demand spans close in the waiter's proc context.
		if f.op != nil && f.op.Kind == spans.OpPrefetch {
			n.pr.sp.End(f.op, n.eng.Now())
		}
		f.gate.Open(n.eng)
	}
	softApply := func() {
		// The faulting processor flushes its own diff and applies the
		// incoming ones itself.
		cost := controller.SoftDiffApplyCost(cfg, totalWords)
		if localDiff != nil {
			cost += controller.SoftDiffCreateCost(cfg)
			n.mem.MemTouch(2 * cfg.PageSize)
		}
		n.st.DiffCycles += cost
		n.mem.MemTouch(bytes)
		start, end := n.cpu.Reserve(n.eng, cfg.InterruptTime+cost)
		f.op.Mark(n.eng, spans.StageQueue, start)
		n.eng.At(end, finish)
	}
	if !n.ctrlOK() {
		softApply()
		return
	}
	prio := sim.PriorityHigh
	if f.prefetch && !n.pr.opts.NoPrefetchPriority {
		prio = sim.PriorityLow
	}
	n.ctl.Submit(n.eng, &sim.Job{
		Name:     "diff-apply",
		Priority: prio,
		Run: func() sim.Time {
			f.op.Mark(n.eng, spans.StageQueue, n.eng.Now())
			n.mem.DMA(bytes)
			cost := cfg.CtrlDispatchCost
			if localDiff != nil {
				if localFromVec {
					cost += cfg.DMADiffTime(localWords, cfg.PageWords())
					n.mem.DMA(4 * localWords)
				} else {
					cost += controller.SoftDiffCreateCost(cfg)
					n.mem.DMA(cfg.PageSize)
				}
			}
			if n.pr.mode.HWDiff() {
				return cost + cfg.DMADiffTime(totalWords, cfg.PageWords())
			}
			return cost + controller.SoftDiffApplyCost(cfg, totalWords)
		},
		Done: finish,
	}, func() {
		n.st.CtrlFallbackJobs++
		softApply()
	})
}

// applyPiggyback incorporates diffs piggybacked on a lock grant (Lazy
// Hybrid): after the grant's write notices are integrated, the granter's
// own pages can be validated immediately instead of faulting later. Runs
// in engine context, after integrate; timing was charged by receiveGrant.
func (n *pnode) applyPiggyback(diffs []*lrc.Diff) {
	if len(diffs) == 0 {
		return
	}
	byPage := map[int][]*lrc.Diff{}
	var pages []int
	for _, d := range diffs {
		if len(byPage[d.Page]) == 0 {
			pages = append(pages, d.Page)
		}
		byPage[d.Page] = append(byPage[d.Page], d)
	}
	sort.Ints(pages)
	cfg := n.pr.cfg
	for _, pg := range pages {
		pe := n.page(pg)
		if pe.fetch != nil {
			continue // a fetch is in flight; let it finish authoritatively
		}
		n.flushLocalDiff(pg)
		frame := n.frames.Page(pg)
		for _, d := range n.sorter.order(byPage[pg]) {
			if d.Seq <= pe.applied[d.Owner] {
				continue
			}
			// Soundness gate: accepting this diff will mark everything up
			// to d.Seq as applied, so every pending notice it prunes must
			// actually be covered by the diff's span. The granter filters
			// by the requester's NOTICED horizon, which can run ahead of
			// its APPLIED horizon — a diff with a gap below its span must
			// be left for a demand fault to fetch the full history.
			covered := true
			for _, wn := range pe.pending {
				if wn.Owner == d.Owner && wn.Seq <= d.Seq && wn.Seq < d.OldSeq {
					covered = false
					break
				}
			}
			if !covered || d.OldSeq > pe.applied[d.Owner]+1 && !hasPendingAtLeast(pe, d.Owner, d.OldSeq) {
				continue
			}
			idx := pe.tagIndex(d.VTS)
			for i, w := range d.Words {
				if t := pe.tag(w); t != nil && t.CoversEntry(d.Owner, d.OldSeq) {
					continue
				}
				binary.LittleEndian.PutUint32(frame[int(w)*4:], d.Data[i])
				pe.setTagIdx(w, idx, cfg.PageWords())
			}
			if d.Seq > pe.applied[d.Owner] {
				pe.applied[d.Owner] = d.Seq
			}
			n.st.DiffsApplied++
		}
		n.mem.InvalidatePage(int64(pg) * int64(cfg.PageSize))
		prunePending(pe)
		if pe.state == stInvalid && len(pe.pending) == 0 {
			pe.state = stRO
		}
	}
}

// hasPendingAtLeast reports whether the page has a pending notice from
// owner at or above seq — evidence that the notice horizon reaches the
// diff's span, so the span's lower edge is the true resume point.
func hasPendingAtLeast(pe *page, owner int, seq int32) bool {
	for _, wn := range pe.pending {
		if wn.Owner == owner && wn.Seq >= seq {
			return true
		}
	}
	return false
}

// orderDiffs sorts diffs so that happened-before writers apply first;
// truly concurrent diffs (data-race-free programs make them
// word-disjoint) are ordered by owner for determinism. Selection-based
// topological sort — fault diff sets are small.
//
// The test uses each diff's span-start: because a diff span never crosses
// an incorporation of remote data (flushLocalDiff runs before any apply),
// a writer that overwrote another diff's word necessarily started its
// span after seeing that diff's span-start interval, so comparing b's
// span VTS against a's OldSeq orders every conflicting pair correctly.
func orderDiffs(diffs []*lrc.Diff) []*lrc.Diff {
	var s diffSorter
	return s.order(diffs)
}

// diffSorter holds orderDiffs's working storage so a node can reuse it
// across faults instead of allocating two slices per diff application.
// The returned ordering is only valid until the next order call; callers
// consume it synchronously.
type diffSorter struct {
	rest, out []*lrc.Diff
}

func (s *diffSorter) order(diffs []*lrc.Diff) []*lrc.Diff {
	rest := append(s.rest[:0], diffs...)
	out := s.out[:0]
	before := func(a, b *lrc.Diff) bool {
		return b.VTS != nil && b.VTS.CoversEntry(a.Owner, a.OldSeq)
	}
	for len(rest) > 0 {
		pick := -1
		for i, cand := range rest {
			ready := true
			for j, other := range rest {
				if i != j && before(other, cand) {
					ready = false
					break
				}
			}
			if ready {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0 // cycle cannot happen; defensive
		}
		out = append(out, rest[pick])
		rest = append(rest[:pick], rest[pick+1:]...)
	}
	s.rest, s.out = rest[:0], out
	return out
}
