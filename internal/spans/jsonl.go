package spans

import (
	"bufio"
	"fmt"
	"io"
)

// WriteJSONL writes one JSON object per completed span, in completion
// order, with a fixed key order — the output is byte-deterministic for
// a given run. Each line carries the span identity, its window, the
// stage decomposition, and the stall cycles charged per stats category
// while the operation was current.
func (t *Tracker) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, op := range t.ops {
		_, err := fmt.Fprintf(bw,
			`{"id":%d,"node":%d,"kind":%q,"obj":%d,"start":%d,"end":%d,`+
				`"stages":{"wire":%d,"queue":%d,"remote":%d,"reply":%d,"controller":%d,"unblock":%d},`+
				`"charged":{"busy":%d,"data":%d,"synch":%d,"ipc":%d,"other":%d}}`+"\n",
			op.ID, op.Node, op.Kind.String(), op.Obj, op.Start, op.End,
			op.Stages[StageWire], op.Stages[StageQueue], op.Stages[StageRemote],
			op.Stages[StageReply], op.Stages[StageController], op.Stages[StageUnblock],
			op.Charged[0], op.Charged[1], op.Charged[2], op.Charged[3], op.Charged[4])
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
