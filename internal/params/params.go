// Package params holds the simulated machine's architectural parameters.
// The defaults reproduce Table 1 of the paper ("Default Values for System
// Parameters. 1 cycle = 10 ns"); the sensitivity studies of Section 5.3
// (Figures 13-16) vary them.
package params

import "fmt"

// WordBytes is the machine word size used for diffs and bit vectors.
const WordBytes = 4

// Config collects every architectural parameter of the simulated network
// of workstations. All times are in 10-ns processor cycles unless stated
// otherwise.
type Config struct {
	// Processors is the number of nodes (computation processors).
	Processors int

	// TLBSize is the number of TLB entries per processor.
	TLBSize int
	// TLBFillTime is the TLB fill service time in cycles.
	TLBFillTime int64
	// InterruptTime is the cost of entering/leaving any interrupt.
	InterruptTime int64

	// PageSize in bytes.
	PageSize int
	// CacheSize is the total first-level data cache per processor, bytes.
	CacheSize int
	// CacheLineSize in bytes.
	CacheLineSize int
	// WriteBufferSize is the number of write-buffer entries.
	WriteBufferSize int
	// WriteCacheSize is the number of AURC write-cache entries.
	WriteCacheSize int

	// MemSetupTime is DRAM setup in cycles; MemCyclesPerWord is the
	// per-word streaming cost after setup.
	MemSetupTime     int64
	MemCyclesPerWord int64

	// PCISetupTime and PCICyclesPerWord model the PCI bus.
	PCISetupTime     int64
	PCICyclesPerWord int64

	// NetPathBytesPerCycle is the link width in bytes transferred per
	// cycle in each direction (Table 1: 8 bits bidirectional = 1 B/cycle,
	// i.e. 100 MB/s raw; the paper quotes ~50 MB/s effective after
	// per-message overheads).
	NetPathBytesPerCycle float64
	// MessagingOverhead is the per-message network-interface setup cost
	// paid by the sender.
	MessagingOverhead int64
	// AURCUpdateOverhead is the per-update-message overhead for AURC
	// automatic updates. The paper's default optimistically charges a
	// single cycle (Section 5.3); setting it equal to MessagingOverhead
	// reproduces the pessimistic curve of Figure 13.
	AURCUpdateOverhead int64
	// SwitchLatency and WireLatency are per-hop mesh costs.
	SwitchLatency int64
	WireLatency   int64

	// ListProcessing is the software cost per element of traversing
	// protocol lists (write notices, intervals).
	ListProcessing int64
	// TwinCyclesPerWord is page twinning cost per word (plus memory).
	TwinCyclesPerWord int64
	// DiffCyclesPerWord is software diff creation/application cost per
	// word (plus memory accesses).
	DiffCyclesPerWord int64

	// DMADiffBaseCycles is the DMA engine's cost to scan the bit vector
	// of an all-clean page; DMADiffFullCycles is the cost when every word
	// of a 4 KB page is set (paper: ~200 and ~2100 controller cycles).
	// Costs for partially written pages are interpolated linearly.
	DMADiffBaseCycles int64
	DMADiffFullCycles int64
}

// Default returns Table 1 of the paper.
func Default() Config {
	return Config{
		Processors:           16,
		TLBSize:              128,
		TLBFillTime:          100,
		InterruptTime:        400,
		PageSize:             4096,
		CacheSize:            128 * 1024,
		CacheLineSize:        32,
		WriteBufferSize:      4,
		WriteCacheSize:       4,
		MemSetupTime:         10,
		MemCyclesPerWord:     3,
		PCISetupTime:         10,
		PCICyclesPerWord:     3,
		NetPathBytesPerCycle: 1.0,
		MessagingOverhead:    200,
		AURCUpdateOverhead:   1,
		SwitchLatency:        4,
		WireLatency:          2,
		ListProcessing:       6,
		TwinCyclesPerWord:    5,
		DiffCyclesPerWord:    7,
		DMADiffBaseCycles:    200,
		DMADiffFullCycles:    2100,
	}
}

// Mesh returns the Table 1 machine scaled to an n-node mesh: n
// processors laid out on the closest-to-square rectangle (network.New
// derives the dimensions). Every other parameter keeps its default.
// The parallel-engine scaling benchmarks run on Mesh(64), Mesh(128),
// and Mesh(256).
func Mesh(n int) Config {
	c := Default()
	c.Processors = n
	return c
}

// Validate reports the first configuration inconsistency found.
func (c *Config) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("params: Processors = %d, need >= 1", c.Processors)
	case c.PageSize <= 0 || c.PageSize%WordBytes != 0:
		return fmt.Errorf("params: PageSize = %d must be a positive multiple of %d", c.PageSize, WordBytes)
	case c.CacheLineSize <= 0 || c.CacheLineSize%WordBytes != 0:
		return fmt.Errorf("params: CacheLineSize = %d must be a positive multiple of %d", c.CacheLineSize, WordBytes)
	case c.CacheSize <= 0 || c.CacheSize%c.CacheLineSize != 0:
		return fmt.Errorf("params: CacheSize = %d must be a positive multiple of the line size", c.CacheSize)
	case c.TLBSize <= 0:
		return fmt.Errorf("params: TLBSize = %d, need > 0", c.TLBSize)
	case c.WriteBufferSize <= 0:
		return fmt.Errorf("params: WriteBufferSize = %d, need > 0", c.WriteBufferSize)
	case c.WriteCacheSize <= 0:
		return fmt.Errorf("params: WriteCacheSize = %d, need > 0", c.WriteCacheSize)
	case c.NetPathBytesPerCycle <= 0:
		return fmt.Errorf("params: NetPathBytesPerCycle = %v, need > 0", c.NetPathBytesPerCycle)
	case c.MemCyclesPerWord <= 0 || c.MemSetupTime < 0:
		return fmt.Errorf("params: memory timing (%d setup, %d/word) invalid", c.MemSetupTime, c.MemCyclesPerWord)
	case c.DMADiffFullCycles < c.DMADiffBaseCycles:
		return fmt.Errorf("params: DMA full cost %d below base cost %d", c.DMADiffFullCycles, c.DMADiffBaseCycles)
	}
	return nil
}

// PageWords returns words per page.
func (c *Config) PageWords() int { return c.PageSize / WordBytes }

// LineWords returns words per cache line.
func (c *Config) LineWords() int { return c.CacheLineSize / WordBytes }

// MemLineTime is the DRAM occupancy of one cache-line transfer.
func (c *Config) MemLineTime() int64 {
	return c.MemSetupTime + c.MemCyclesPerWord*int64(c.LineWords())
}

// MemWordTime is the DRAM occupancy of a single-word access.
func (c *Config) MemWordTime() int64 { return c.MemSetupTime + c.MemCyclesPerWord }

// MemBlockTime is the DRAM occupancy of an n-byte streaming transfer.
func (c *Config) MemBlockTime(bytes int) int64 {
	words := int64((bytes + WordBytes - 1) / WordBytes)
	if words == 0 {
		return 0
	}
	return c.MemSetupTime + c.MemCyclesPerWord*words
}

// PCIBlockTime is the PCI occupancy of an n-byte burst.
func (c *Config) PCIBlockTime(bytes int) int64 {
	words := int64((bytes + WordBytes - 1) / WordBytes)
	if words == 0 {
		return 0
	}
	return c.PCISetupTime + c.PCICyclesPerWord*words
}

// NetTransferTime is the cycles a message of n bytes occupies one link.
func (c *Config) NetTransferTime(bytes int) int64 {
	t := float64(bytes) / c.NetPathBytesPerCycle
	w := int64(t)
	if float64(w) < t {
		w++
	}
	return w
}

// DMADiffTime interpolates the DMA engine's scan/transfer cost for a page
// in which wordsSet of pageWords words are marked in the bit vector.
func (c *Config) DMADiffTime(wordsSet, pageWords int) int64 {
	if pageWords <= 0 {
		return c.DMADiffBaseCycles
	}
	if wordsSet > pageWords {
		wordsSet = pageWords
	}
	span := c.DMADiffFullCycles - c.DMADiffBaseCycles
	return c.DMADiffBaseCycles + span*int64(wordsSet)/int64(pageWords)
}

// MemoryBandwidthMBps converts the DRAM streaming parameters to MB/s for
// cache-block transfers, for reporting against Figure 16's axis
// (default: 32 bytes / (10+3*8 cycles) / 10ns ≈ 94 MB/s; the paper quotes
// 103 MB/s for its slightly different accounting).
func (c *Config) MemoryBandwidthMBps() float64 {
	t := c.MemLineTime()
	if t == 0 {
		return 0
	}
	bytesPerCycle := float64(c.CacheLineSize) / float64(t)
	return bytesPerCycle * 100 // 1 cycle = 10ns => 1e8 cycles/s => B/cycle*1e8/1e6 MB/s
}

// NetworkBandwidthMBps converts link width to MB/s (Figure 14's axis).
func (c *Config) NetworkBandwidthMBps() float64 {
	return c.NetPathBytesPerCycle * 100
}

// SetNetworkBandwidthMBps adjusts the link width for a target bandwidth.
func (c *Config) SetNetworkBandwidthMBps(mbps float64) {
	c.NetPathBytesPerCycle = mbps / 100
}

// MessagingOverheadMicros reports the messaging overhead in microseconds
// (Figure 13's axis; 200 cycles = 2 us).
func (c *Config) MessagingOverheadMicros() float64 {
	return float64(c.MessagingOverhead) / 100
}

// SetMessagingOverheadMicros sets the per-message overhead from
// microseconds.
func (c *Config) SetMessagingOverheadMicros(us float64) {
	c.MessagingOverhead = int64(us * 100)
}

// MemoryLatencyNanos reports DRAM setup latency in ns (Figure 15's axis;
// 10 cycles = 100 ns).
func (c *Config) MemoryLatencyNanos() float64 {
	return float64(c.MemSetupTime) * 10
}

// SetMemoryLatencyNanos sets DRAM setup latency from nanoseconds.
func (c *Config) SetMemoryLatencyNanos(ns float64) {
	c.MemSetupTime = int64(ns / 10)
}

// SetMemoryBandwidthMBps adjusts per-word streaming cost for a target
// cache-block bandwidth, holding setup latency fixed.
func (c *Config) SetMemoryBandwidthMBps(mbps float64) {
	// mbps = lineBytes / ((setup + perWord*lineWords) * 10ns)
	// => perWord = (lineBytes*100/mbps - setup) / lineWords
	lw := float64(c.LineWords())
	per := (float64(c.CacheLineSize)*100/mbps - float64(c.MemSetupTime)) / lw
	if per < 1 {
		per = 1
	}
	c.MemCyclesPerWord = int64(per + 0.5)
}
