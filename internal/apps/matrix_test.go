package apps_test

import (
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// TestValidationMatrix is the repository's central correctness gate:
// every application, under every protocol, at several machine sizes,
// must compute the same answer as the sequential oracle. Each of the
// staleness bugs found during development (notice batches poisoned by
// vector-timestamp skips, diff tag collisions, diff spans crossing
// remote applies, late-bound coverage claims, invalidations lost during
// twin setup) would fail this matrix.
func TestValidationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is expensive; run without -short")
	}
	protocols := []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.ID),
		core.TM(tmk.P), core.TM(tmk.IP), core.TM(tmk.IPD),
		core.AURC(false), core.AURC(true),
	}
	for _, name := range apps.Names() {
		for _, spec := range protocols {
			for _, procs := range []int{3, 8, 16} {
				name, spec, procs := name, spec, procs
				t.Run(name+"/"+spec.String()+"/"+itoa(procs), func(t *testing.T) {
					t.Parallel()
					app, err := apps.Tiny(name)
					if err != nil {
						t.Fatal(err)
					}
					cfg := params.Default()
					cfg.Processors = procs
					if _, err := core.Run(cfg, spec, app); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestDefaultScaleMatrix validates the figure-generating configurations.
func TestDefaultScaleMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is expensive; run without -short")
	}
	for _, name := range apps.Names() {
		for _, spec := range []core.Spec{core.TM(tmk.Base), core.TM(tmk.IPD), core.AURC(false)} {
			name, spec := name, spec
			t.Run(name+"/"+spec.String(), func(t *testing.T) {
				t.Parallel()
				app, err := apps.Default(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := params.Default()
				if _, err := core.Run(cfg, spec, app); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
