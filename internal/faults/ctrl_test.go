package faults

import (
	"reflect"
	"strings"
	"testing"
)

// TestCtrlEnabledAxes: controller schedules and link rates are
// independent enablement axes, and only link activity builds a wire
// model.
func TestCtrlEnabledAxes(t *testing.T) {
	ctrlOnly := &Plan{Ctrl: map[int]CtrlFault{2: {Crash: true, CrashAt: 100}}}
	if !ctrlOnly.CtrlEnabled() || !ctrlOnly.Enabled() {
		t.Error("crash schedule not reported enabled")
	}
	if ctrlOnly.LinksEnabled() {
		t.Error("controller-only plan claims link faults")
	}
	if NewModel(ctrlOnly, 4) != nil {
		t.Error("controller-only plan armed the wire interposer")
	}
	linkOnly := &Plan{Default: Link{Drop: 0.1}}
	if linkOnly.CtrlEnabled() {
		t.Error("link-only plan claims controller faults")
	}
	inactive := &Plan{Ctrl: map[int]CtrlFault{0: {}}}
	if inactive.CtrlEnabled() {
		t.Error("zero-value CtrlFault reported active")
	}
}

// TestCtrlFaultWindows: the crash/hang time predicates.
func TestCtrlFaultWindows(t *testing.T) {
	c := CtrlFault{Crash: true, CrashAt: 100, Hang: true, HangAt: 10, HangFor: 20}
	if c.CrashedBy(99) || !c.CrashedBy(100) || !c.CrashedBy(1000) {
		t.Error("CrashedBy boundary wrong")
	}
	if c.HungAt(9) || !c.HungAt(10) || !c.HungAt(29) || c.HungAt(30) {
		t.Error("HungAt window wrong")
	}
	if c.HangEnd() != 30 {
		t.Errorf("HangEnd = %d, want 30", c.HangEnd())
	}
}

// TestValidateNamesOffender (satellite): validation errors must name
// the failing entry and field so multi-link plans are debuggable, and
// the first error must be deterministic despite map iteration.
func TestValidateNamesOffender(t *testing.T) {
	cases := []struct {
		plan *Plan
		want []string
	}{
		{&Plan{Default: Link{Drop: 1.5}}, []string{"default link", "Drop"}},
		{&Plan{Default: Link{Delay: 0.5, DelayMin: 300, DelayMax: 100}},
			[]string{"default link", "DelayMin/DelayMax"}},
		{&Plan{PerLink: map[Pair]Link{{3, 7}: {Dup: -0.1}}}, []string{"link 3->7", "Dup"}},
		{&Plan{Ctrl: map[int]CtrlFault{5: {Crash: true, CrashAt: -1}}},
			[]string{"ctrl node 5", "CrashAt"}},
		{&Plan{Ctrl: map[int]CtrlFault{2: {Hang: true}}}, []string{"ctrl node 2", "HangFor"}},
	}
	for i, c := range cases {
		err := c.plan.Validate()
		if err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("case %d: error %q does not name %q", i, err, w)
			}
		}
	}

	// Deterministic first error: many bad links, always the lowest pair.
	many := &Plan{PerLink: map[Pair]Link{}}
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if s != d {
				many.PerLink[Pair{s, d}] = Link{Drop: 2}
			}
		}
	}
	first := many.Validate().Error()
	for i := 0; i < 20; i++ {
		if got := many.Validate().Error(); got != first {
			t.Fatalf("Validate first error nondeterministic: %q vs %q", got, first)
		}
	}
	if !strings.Contains(first, "link 0->1") {
		t.Errorf("first error %q should name the lowest pair 0->1", first)
	}
}

// TestParseCtrlCrash covers the NODE@CYCLE list syntax and "all".
func TestParseCtrlCrash(t *testing.T) {
	p := &Plan{}
	if err := ParseCtrlCrash(p, "0@0,3@50000", 4); err != nil {
		t.Fatal(err)
	}
	want := map[int]CtrlFault{
		0: {Crash: true, CrashAt: 0},
		3: {Crash: true, CrashAt: 50000},
	}
	if !reflect.DeepEqual(p.Ctrl, want) {
		t.Errorf("parsed %+v, want %+v", p.Ctrl, want)
	}
	all := &Plan{}
	if err := ParseCtrlCrash(all, "all@7", 3); err != nil {
		t.Fatal(err)
	}
	if len(all.Ctrl) != 3 || !all.Ctrl[2].Crash || all.Ctrl[2].CrashAt != 7 {
		t.Errorf("all@7 parsed to %+v", all.Ctrl)
	}
	for _, bad := range []string{"5@0", "x@0", "0", "0@-3", "0@x"} {
		if err := ParseCtrlCrash(&Plan{}, bad, 4); err == nil {
			t.Errorf("crash spec %q accepted", bad)
		}
	}
}

// TestParseCtrlHang covers NODE@CYCLE+WINDOW and merge-with-crash.
func TestParseCtrlHang(t *testing.T) {
	p := &Plan{}
	if err := ParseCtrlCrash(p, "1@90000", 4); err != nil {
		t.Fatal(err)
	}
	if err := ParseCtrlHang(p, "1@1000+20000", 4); err != nil {
		t.Fatal(err)
	}
	got := p.Ctrl[1]
	want := CtrlFault{Crash: true, CrashAt: 90000, Hang: true, HangAt: 1000, HangFor: 20000}
	if got != want {
		t.Errorf("merged schedule %+v, want %+v", got, want)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("merged plan invalid: %v", err)
	}
	for _, bad := range []string{"1@1000", "1@1000+0", "1@1000+-5", "1@+5"} {
		if err := ParseCtrlHang(&Plan{}, bad, 4); err == nil {
			t.Errorf("hang spec %q accepted", bad)
		}
	}
}

// TestRandomCtrl: same seed, same schedule; different seed differs
// somewhere; all draws validate and respect the horizon; crashP=1
// fails every node.
func TestRandomCtrl(t *testing.T) {
	a := RandomCtrl(11, 16, 0.5, 0.5, 100000)
	b := RandomCtrl(11, 16, 0.5, 0.5, 100000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	c := RandomCtrl(12, 16, 0.5, 0.5, 100000)
	if reflect.DeepEqual(a, c) {
		t.Error("seeds 11 and 12 produced identical schedules (suspicious)")
	}
	plan := &Plan{Ctrl: a}
	if err := plan.Validate(); err != nil {
		t.Errorf("random schedule invalid: %v", err)
	}
	for n, f := range a {
		if f.Crash && f.CrashAt > 100000 {
			t.Errorf("node %d crash at %d beyond horizon", n, f.CrashAt)
		}
		if f.Hang && (f.HangAt > 100000 || f.HangFor < 1) {
			t.Errorf("node %d hang window [%d,+%d] out of range", n, f.HangAt, f.HangFor)
		}
	}
	every := RandomCtrl(3, 8, 1, 0, 50000)
	if len(every) != 8 {
		t.Errorf("crashP=1 failed %d/8 nodes", len(every))
	}
	if RandomCtrl(3, 8, 0, 0, 50000) != nil {
		t.Error("zero-probability schedule not nil")
	}
}
