package memsys

import (
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// WriteBuffer models the finite processor write buffer: writes enqueue
// and drain through the memory bus; the processor stalls only when every
// entry is occupied.
type WriteBuffer struct {
	capacity int
	drains   []sim.Time // completion times of in-flight entries

	Stalls      uint64
	StallCycles sim.Time
}

// NewWriteBuffer builds a buffer with the given number of entries.
func NewWriteBuffer(entries int) *WriteBuffer {
	return &WriteBuffer{capacity: entries}
}

func (w *WriteBuffer) reap(now sim.Time) {
	i := 0
	for i < len(w.drains) && w.drains[i] <= now {
		i++
	}
	if i > 0 {
		w.drains = append(w.drains[:0], w.drains[i:]...)
	}
}

// Push records a write whose bus drain completes at drainEnd. It returns
// the cycles the processor must stall first because the buffer was full.
func (w *WriteBuffer) Push(now, drainEnd sim.Time) (stall sim.Time) {
	w.reap(now)
	if len(w.drains) >= w.capacity {
		stall = w.drains[0] - now
		w.Stalls++
		w.StallCycles += stall
		now = w.drains[0]
		w.reap(now)
	}
	w.drains = append(w.drains, drainEnd)
	return stall
}

// Pending returns the number of in-flight entries at time now.
func (w *WriteBuffer) Pending(now sim.Time) int {
	w.reap(now)
	return len(w.drains)
}

// Node is one workstation's memory system. The computation processor,
// the protocol controller (through the PCI bridge), and incoming network
// DMA all contend for MemBus; controller/network traffic additionally
// occupies PCIBus.
type Node struct {
	ID  int
	Cfg *params.Config
	Eng *sim.Engine

	Cache *Cache
	TLB   *TLB
	WB    *WriteBuffer

	MemBus sim.Resource
	PCIBus sim.Resource
}

// NewNode builds the memory system for node id.
func NewNode(id int, cfg *params.Config, eng *sim.Engine) *Node {
	return &Node{
		ID:     id,
		Cfg:    cfg,
		Eng:    eng,
		Cache:  NewCache(cfg.CacheSize, cfg.CacheLineSize),
		TLB:    NewTLB(cfg.TLBSize),
		WB:     NewWriteBuffer(cfg.WriteBufferSize),
		MemBus: sim.Resource{Name: "membus"},
		PCIBus: sim.Resource{Name: "pcibus"},
	}
}

// touchTLB models the translation for addr, stalling p on a miss.
// The fill time is charged to "others" per the paper's breakdown.
func (n *Node) touchTLB(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	page := addr / Addr(n.Cfg.PageSize)
	if n.TLB.Access(page) {
		return
	}
	st.TLBMisses++
	st.Add(stats.Other, n.Cfg.TLBFillTime)
	p.SleepReason(n.Cfg.TLBFillTime, "tlb-fill")
}

// Read simulates a data read by the computation processor. One cycle of
// busy time is charged for the access itself; TLB fills, cache-miss
// memory latency and bus queueing are charged to "others".
func (n *Node) Read(p *sim.Proc, addr Addr, st *stats.ProcStats) {
	st.SharedReads++
	st.Add(stats.Busy, 1)
	p.SleepReason(1, "issue")
	n.touchTLB(p, addr, st)
	hit, evictedDirty := n.Cache.Access(addr, false, true)
	if hit {
		return
	}
	st.CacheMisses++
	if evictedDirty {
		// Write-back of the victim goes through a write-back buffer:
		// it occupies the bus but does not stall the processor.
		n.MemBus.Reserve(n.Eng, n.Cfg.MemLineTime())
	}
	before := p.Now()
	n.MemBus.Use(p, n.Cfg.MemLineTime(), "cache-miss")
	st.Add(stats.Other, p.Now()-before)
}

// Write simulates a data write. writeThrough selects the policy:
//
//   - write-back (false): write-allocate; a miss fetches the line and the
//     line is marked dirty. Used by TreadMarks variants without the
//     snooping controller.
//   - write-through (true): no-allocate; the word is pushed through the
//     write buffer onto the memory bus so the controller's snoop logic
//     (or the Shrimp interface, for AURC) can observe it. The processor
//     stalls only when the write buffer is full.
func (n *Node) Write(p *sim.Proc, addr Addr, writeThrough bool, st *stats.ProcStats) {
	st.SharedWrites++
	st.Add(stats.Busy, 1)
	p.SleepReason(1, "issue")
	n.touchTLB(p, addr, st)
	if !writeThrough {
		hit, evictedDirty := n.Cache.Access(addr, true, true)
		if hit {
			return
		}
		st.CacheMisses++
		if evictedDirty {
			n.MemBus.Reserve(n.Eng, n.Cfg.MemLineTime())
		}
		before := p.Now()
		n.MemBus.Use(p, n.Cfg.MemLineTime(), "cache-miss")
		st.Add(stats.Other, p.Now()-before)
		return
	}
	// Write-through: update the cached copy if present (no allocate on
	// miss), then drain the word through the write buffer.
	n.Cache.Access(addr, false, false)
	_, drainEnd := n.MemBus.Reserve(n.Eng, n.Cfg.WriteThroughWordTime())
	stall := n.WB.Push(p.Now(), drainEnd)
	if stall > 0 {
		st.WriteBuffStalls++
		st.Add(stats.Other, stall)
		p.SleepReason(stall, "wbuf-full")
	}
}

// DMA occupies the PCI bus and the memory bus for an n-byte transfer
// between the controller (or network interface) and main memory, in
// engine context, returning the completion time. The two buses pipeline:
// completion is bounded by the slower of the two.
func (n *Node) DMA(bytes int) sim.Time {
	_, pciEnd := n.PCIBus.Reserve(n.Eng, n.Cfg.PCIBlockTime(bytes))
	_, memEnd := n.MemBus.Reserve(n.Eng, n.Cfg.MemBlockTime(bytes))
	if pciEnd > memEnd {
		return pciEnd
	}
	return memEnd
}

// MemTouch occupies only the memory bus for an n-byte transfer in engine
// context (processor-side protocol software touching memory), returning
// the completion time.
func (n *Node) MemTouch(bytes int) sim.Time {
	_, end := n.MemBus.Reserve(n.Eng, n.Cfg.MemBlockTime(bytes))
	return end
}

// InvalidatePage models the processor snoop invalidating all cached lines
// of the page containing addr after the controller wrote it.
func (n *Node) InvalidatePage(pageAddr Addr) {
	n.Cache.InvalidateRange(pageAddr, n.Cfg.PageSize)
}
