package apps_test

import (
	"testing"
	"time"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// TestDefaultTimings runs every application at the figure-generating
// default scale under base TreadMarks — a regression gate for both
// correctness and simulator throughput.
func TestDefaultTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale runs are expensive; run without -short")
	}
	for _, name := range apps.Names() {
		app, _ := apps.Default(name)
		cfg := params.Default()
		start := time.Now()
		r, err := core.Run(cfg, core.TM(tmk.Base), app)
		el := time.Since(start)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		t.Logf("%-8s wall=%8v cycles=%12d msgs=%8d", name, el.Round(time.Millisecond), r.RunningTime, r.Messages)
	}
}
