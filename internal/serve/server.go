package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dsm96/internal/core"
	"dsm96/internal/pipeline"
	"dsm96/internal/sim"
)

// Options configures a Server. Zero values pick safe defaults.
type Options struct {
	// Workers is the execution pool size (default 2). The pool is the
	// capacity bound: the server never spawns per-request goroutines for
	// simulation work.
	Workers int
	// QueueCap bounds the backlog of accepted-but-unstarted jobs
	// (default 16). A full queue is reported as 429 + Retry-After, the
	// explicit backpressure contract — never an unbounded buffer.
	QueueCap int
	// MaxAttempts quarantines a job after this many failed execution
	// attempts (default 3): a poisoned spec stops consuming the pool.
	MaxAttempts int
	// RetryBase is the first retry delay; subsequent retries back off
	// exponentially, capped at 32x (default 1s).
	RetryBase time.Duration
	// JobTimeout is the wall-clock ceiling per attempt; 0 disables. The
	// in-simulation watchdog already bounds simulated-time stalls, so
	// this only guards against runaway host-side work.
	JobTimeout time.Duration
	// RunsDir, when set, exposes PR 8's dated run folders read-only
	// under /runs/ with manifest-anchored hash verification.
	RunsDir string
	// Run replaces the simulation runner (tests). nil runs the real
	// deterministic simulation.
	Run func(*ResolvedJob) (*core.Result, error)
}

// Stats is the /statsz payload.
type Stats struct {
	Submitted    uint64          `json:"submitted"`
	CacheHits    uint64          `json:"cache_hits"`
	CacheMisses  uint64          `json:"cache_misses"`
	Deduped      uint64          `json:"deduped"`
	Completed    uint64          `json:"completed"`
	FailedRuns   uint64          `json:"failed_runs"`
	Retried      uint64          `json:"retried"`
	Quarantined  uint64          `json:"quarantined"`
	RejectedBusy uint64          `json:"rejected_busy"`
	QueueDepth   int             `json:"queue_depth"`
	Running      int             `json:"running"`
	Degraded     bool            `json:"degraded"`
	Draining     bool            `json:"draining"`
	Recovery     *RecoveryReport `json:"recovery,omitempty"`
}

// JobStatus is the job-facing response envelope: the journal record's
// view plus submission-time flags.
type JobStatus struct {
	Key      string        `json:"key"`
	State    string        `json:"state"`
	Cached   bool          `json:"cached"`
	Attempts int           `json:"attempts"`
	Error    string        `json:"error,omitempty"`
	Stall    *StallSummary `json:"stall,omitempty"`
	Result   *JobResult    `json:"result,omitempty"`
}

// jobEntry tracks one in-flight job across queueing and retries. done
// closes exactly once, when the job reaches a resting state (done,
// quarantined, or abandoned by drain/degraded mode) — long-poll waiters
// block on it.
type jobEntry struct {
	job  *ResolvedJob
	rec  *JobRecord
	done chan struct{}
}

// Server is the simulation job server. All producer-side queue
// operations happen under mu with an explicit capacity check, so the
// buffered channel send never blocks; workers are pure consumers.
type Server struct {
	store *Store
	opts  Options

	mu       sync.Mutex
	inflight map[string]*jobEntry
	queue    chan *jobEntry
	draining bool
	stats    Stats
	wg       sync.WaitGroup
	// timers tracks armed retry timers and the entry each would requeue,
	// so Drain can park those entries instead of leaving their waiters
	// hanging.
	timers map[*retryTimer]struct{}
}

// retryTimer pairs an armed backoff timer with the entry it requeues.
// e is written before the timer is armed (the callback may see it
// immediately); t is written and read only under Server.mu.
type retryTimer struct {
	e *jobEntry
	t *time.Timer
}

// NewServer opens (or reopens) the store under root, runs the crash
// recovery scan, requeues the interrupted backlog, and starts the
// worker pool.
func NewServer(root string, opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = time.Second
	}
	st, err := OpenStore(root)
	if err != nil {
		return nil, err
	}
	rep, backlog, err := st.Recover(opts.MaxAttempts)
	if err != nil {
		return nil, err
	}
	if len(backlog) > opts.QueueCap {
		// The queue must hold the whole recovered backlog: those jobs
		// were already accepted in a previous life and must not be
		// dropped or deadlock startup.
		opts.QueueCap = len(backlog)
	}
	s := &Server{
		store:    st,
		opts:     opts,
		inflight: make(map[string]*jobEntry),
		queue:    make(chan *jobEntry, opts.QueueCap),
		timers:   make(map[*retryTimer]struct{}),
	}
	s.stats.Recovery = rep
	for _, rec := range backlog {
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			continue // recovery already dropped corrupt records; be safe
		}
		job, err := spec.Resolve()
		if err != nil || job.Key != rec.Key {
			continue
		}
		e := &jobEntry{job: job, rec: rec, done: make(chan struct{})}
		s.inflight[rec.Key] = e
		s.queue <- e
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the underlying store (tests, stats).
func (s *Server) Store() *Store { return s.store }

// Drain stops accepting jobs, lets the pool finish every accepted job
// (queued and running), and returns. Pending retry timers are cancelled
// — their jobs stay journaled as failed and a restart's recovery scan
// requeues them.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.stats.Draining = true
	// Timers we stop before they fire: park their entries here. Timers
	// already firing observe draining under the lock and park their own.
	var parked []*jobEntry
	for rt := range s.timers {
		if rt.t.Stop() {
			parked = append(parked, rt.e)
		}
	}
	s.timers = map[*retryTimer]struct{}{}
	close(s.queue)
	s.mu.Unlock()
	for _, e := range parked {
		s.finish(e)
	}
	s.wg.Wait()
}

// worker drains the queue until it is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for e := range s.queue {
		s.execute(e)
	}
}

// finish parks the entry at its resting state and wakes waiters.
func (s *Server) finish(e *jobEntry) {
	s.mu.Lock()
	delete(s.inflight, e.job.Key)
	s.mu.Unlock()
	close(e.done)
}

// runJob invokes the runner under the wall-clock ceiling. On timeout
// the attempt is abandoned: the goroutine's eventual result goes to a
// buffered channel nobody reads, and — critically — the store is only
// ever written by this function's caller after it returns, so a late
// finisher cannot race a retry's journal transitions.
func (s *Server) runJob(job *ResolvedJob) (*core.Result, error) {
	run := s.opts.Run
	if run == nil {
		run = runSimulation
	}
	if s.opts.JobTimeout <= 0 {
		return run(job)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := run(job)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(s.opts.JobTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-timer.C:
		return nil, fmt.Errorf("serve: attempt exceeded job timeout %s", s.opts.JobTimeout)
	}
}

// runSimulation is the real runner: build the app at the job's scale
// and execute the deterministic simulation.
func runSimulation(job *ResolvedJob) (*core.Result, error) {
	app, err := job.AppInstance()
	if err != nil {
		return nil, err
	}
	return core.Run(job.Cfg, job.Spec, app)
}

// execute runs one attempt of an accepted job and journals every
// transition write-ahead: running before the run, done/failed after.
func (s *Server) execute(e *jobEntry) {
	rec := e.rec
	rec.State = StateRunning
	rec.Attempts++
	if err := s.store.PutRecord(rec); err != nil {
		// Degraded: the journal cannot advance, so the job must not run
		// (its completion could not be recorded). The on-disk record is
		// still pending; a restart requeues it.
		s.countDegraded()
		s.finish(e)
		return
	}

	res, runErr := s.runJob(e.job)
	if runErr == nil && res != nil {
		sha, _, err := s.store.PutObject(func(w io.Writer) error {
			return res.Metrics().WriteJSON(w)
		})
		if err == nil {
			var sum *JobResult
			sum, err = SummarizeResult(res, sha)
			if err == nil {
				rec.State = StateDone
				rec.Error = ""
				rec.Stall = nil
				rec.Result = sum
				err = s.store.PutRecord(rec)
			}
		}
		if err != nil {
			s.countDegraded()
			s.finish(e)
			return
		}
		s.store.WriteManifest() // ledger is derived; failure latches degraded mode but the result stands
		s.mu.Lock()
		s.stats.Completed++
		s.stats.Degraded = s.store.Failed()
		s.mu.Unlock()
		s.finish(e)
		return
	}

	// The attempt failed: a watchdog stall (structured report attached),
	// a validation mismatch, or the wall-clock ceiling.
	rec.State = StateFailed
	rec.Error = "run returned no result"
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	rec.Stall = nil
	rec.Result = nil
	var serr *sim.StallError
	if errors.As(runErr, &serr) && res != nil {
		rec.Stall = summarizeStall(res.Stall)
	}
	quarantine := rec.Attempts >= s.opts.MaxAttempts
	if quarantine {
		rec.State = StateQuarantined
	}
	if err := s.store.PutRecord(rec); err != nil {
		s.countDegraded()
		s.finish(e)
		return
	}
	s.mu.Lock()
	s.stats.FailedRuns++
	if quarantine {
		s.stats.Quarantined++
	}
	draining := s.draining
	s.mu.Unlock()
	if quarantine || draining {
		// Quarantined jobs rest; under drain the failed record waits for
		// the next boot's recovery scan instead of a timer.
		s.finish(e)
		return
	}
	s.scheduleRetry(e)
}

// scheduleRetry requeues a failed job after capped exponential backoff.
// The entry stays inflight (dedupe still applies; waiters keep
// waiting).
func (s *Server) scheduleRetry(e *jobEntry) {
	backoff := s.opts.RetryBase << uint(e.rec.Attempts-1)
	if maxB := s.opts.RetryBase * 32; backoff > maxB || backoff <= 0 {
		backoff = maxB
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.finish(e)
		return
	}
	s.armRetry(e, backoff)
	s.mu.Unlock()
}

// armRetry arms a backoff timer for e. Caller holds s.mu; the entry is
// written into the token before arming so the callback — which may fire
// immediately — never races the registration.
func (s *Server) armRetry(e *jobEntry, d time.Duration) {
	rt := &retryTimer{e: e}
	rt.t = time.AfterFunc(d, func() { s.retryFire(rt) })
	s.timers[rt] = struct{}{}
}

// retryFire moves a backed-off job back onto the queue, or — if the
// queue is full right now — re-arms itself rather than blocking the
// timer goroutine (the producer-never-blocks invariant holds here too).
func (s *Server) retryFire(rt *retryTimer) {
	e := rt.e
	s.mu.Lock()
	delete(s.timers, rt)
	if s.draining {
		s.mu.Unlock()
		s.finish(e)
		return
	}
	if len(s.queue) >= cap(s.queue) {
		s.armRetry(e, s.opts.RetryBase)
		s.mu.Unlock()
		return
	}
	s.stats.Retried++
	s.queue <- e
	s.mu.Unlock()
}

// countDegraded notes a store write failure in the stats.
func (s *Server) countDegraded() {
	s.mu.Lock()
	s.stats.Degraded = true
	s.mu.Unlock()
}

// Handler builds the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{key}", s.handleGetJob)
	mux.HandleFunc("GET /artifacts/{sha}", s.handleArtifact)
	mux.HandleFunc("GET /runs/", s.handleRunsIndex)
	mux.HandleFunc("GET /runs/{folder}/{path...}", s.handleRunFile)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// status converts a journal record into the response envelope.
func status(rec *JobRecord, cached bool) *JobStatus {
	return &JobStatus{
		Key:      rec.Key,
		State:    rec.State,
		Cached:   cached,
		Attempts: rec.Attempts,
		Error:    rec.Error,
		Stall:    rec.Stall,
		Result:   rec.Result,
	}
}

// handleSubmit is POST /jobs: resolve, dedupe, memoize, or enqueue with
// backpressure. ?wait=1 long-polls until the job rests.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	job, err := spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1"

	s.mu.Lock()
	s.stats.Submitted++
	// In-flight dedupe: a duplicate of a queued/running/retrying job
	// attaches to the existing entry instead of consuming queue space.
	if e, ok := s.inflight[job.Key]; ok {
		s.stats.Deduped++
		s.mu.Unlock()
		s.respondEntry(w, r, e, wait)
		return
	}
	s.mu.Unlock()

	// Memoized? The journal is the cache index; done records answer
	// immediately (even in degraded mode — reads still work).
	rec, err := s.store.GetRecord(job.Key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec != nil && !equalCanonical(rec.Spec, job.Canonical) {
		writeError(w, http.StatusInternalServerError, "job key collision on %s", job.Key)
		return
	}
	if rec != nil && (rec.State == StateDone || rec.State == StateQuarantined) {
		s.mu.Lock()
		if rec.State == StateDone {
			s.stats.CacheHits++
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, status(rec, rec.State == StateDone))
		return
	}

	s.mu.Lock()
	// Re-check under the lock: another submitter may have enqueued it
	// while we read the store.
	if e, ok := s.inflight[job.Key]; ok {
		s.stats.Deduped++
		s.mu.Unlock()
		s.respondEntry(w, r, e, wait)
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.store.Failed() {
		s.stats.Degraded = true
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "degraded read-only mode: store write path failed; cached results remain available")
		return
	}
	if len(s.queue) >= cap(s.queue) {
		s.stats.RejectedBusy++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", cap(s.queue))
		return
	}
	s.stats.CacheMisses++
	if rec == nil {
		rec = &JobRecord{Schema: RecordSchema, Key: job.Key, Spec: job.Canonical, State: StatePending}
	} else {
		rec.State = StatePending // pre-recovery failed record resubmitted
	}
	// Write-ahead: journal pending before the queue learns about the
	// job, so an accepted job survives a crash even if it never ran.
	if err := s.store.PutRecord(rec); err != nil {
		s.stats.Degraded = true
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "degraded read-only mode: %v", err)
		return
	}
	e := &jobEntry{job: job, rec: rec, done: make(chan struct{})}
	s.inflight[job.Key] = e
	s.queue <- e // capacity checked above under mu; all producers lock
	s.mu.Unlock()
	s.respondEntry(w, r, e, wait)
}

// respondEntry answers a submit that attached to an in-flight entry:
// 202 immediately, or long-poll until the job rests.
func (s *Server) respondEntry(w http.ResponseWriter, r *http.Request, e *jobEntry, wait bool) {
	if wait {
		select {
		case <-e.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, "client went away while waiting")
			return
		}
		rec, err := s.store.GetRecord(e.job.Key)
		if err != nil || rec == nil {
			writeError(w, http.StatusInternalServerError, "job %s finished but its record is unreadable: %v", e.job.Key, err)
			return
		}
		writeJSON(w, http.StatusOK, status(rec, false))
		return
	}
	// Answer 202 from the journal, not from the entry: a worker may be
	// mutating the in-memory record concurrently, and the journal is
	// always at least as advanced as any consistent view we could take.
	rec, err := s.store.GetRecord(e.job.Key)
	if err != nil || rec == nil {
		rec = &JobRecord{Schema: RecordSchema, Key: e.job.Key, State: StatePending}
	}
	writeJSON(w, http.StatusAccepted, status(rec, false))
}

// handleGetJob is GET /jobs/{key}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rec, err := s.store.GetRecord(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no job %s", key)
		return
	}
	writeJSON(w, http.StatusOK, status(rec, rec.State == StateDone))
}

// handleArtifact is GET /artifacts/{sha}: a verified read from the
// content-addressed store.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	sha := r.PathValue("sha")
	data, err := s.store.GetObject(sha)
	if err != nil {
		if os.IsNotExist(err) {
			writeError(w, http.StatusNotFound, "no artifact %s", sha)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-SHA256", sha)
	w.Write(data)
}

// handleRunsIndex is GET /runs/: the dated run folders available.
func (s *Server) handleRunsIndex(w http.ResponseWriter, r *http.Request) {
	if s.opts.RunsDir == "" {
		writeError(w, http.StatusNotFound, "no runs directory configured")
		return
	}
	ents, err := os.ReadDir(s.opts.RunsDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	folders := []string{}
	for _, e := range ents {
		if e.IsDir() {
			folders = append(folders, e.Name())
		}
	}
	sort.Strings(folders)
	writeJSON(w, http.StatusOK, map[string]any{"runs": folders})
}

// handleRunFile is GET /runs/{folder}/{path...}: serve a dated run
// folder through its manifest. The manifest and cells.csv are served
// raw (the manifest IS the trust anchor); every metrics artifact is
// verified against the SHA-256 the manifest records before a byte goes
// out, and files the manifest does not vouch for are 404 — the
// content-addressed discipline of the store applied to PR 8's folders.
func (s *Server) handleRunFile(w http.ResponseWriter, r *http.Request) {
	if s.opts.RunsDir == "" {
		writeError(w, http.StatusNotFound, "no runs directory configured")
		return
	}
	folder, rel := r.PathValue("folder"), r.PathValue("path")
	if strings.Contains(folder, "..") || strings.Contains(rel, "..") || path.IsAbs(rel) {
		writeError(w, http.StatusBadRequest, "malformed path")
		return
	}
	dir := filepath.Join(s.opts.RunsDir, folder)
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		writeError(w, http.StatusNotFound, "run %s has no manifest", folder)
		return
	}
	if rel == "manifest.json" {
		w.Header().Set("Content-Type", "application/json")
		w.Write(manData)
		return
	}
	var man pipeline.Manifest
	if err := json.Unmarshal(manData, &man); err != nil || man.Schema != pipeline.ManifestSchema {
		writeError(w, http.StatusInternalServerError, "run %s: bad manifest: %v", folder, err)
		return
	}
	if rel == "cells.csv" {
		data, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			writeError(w, http.StatusNotFound, "run %s has no cells.csv", folder)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.Write(data)
		return
	}
	for _, c := range man.Cells {
		if c.MetricsFile != filepath.ToSlash(rel) && c.MetricsFile != rel {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(c.MetricsFile)))
		if err != nil {
			writeError(w, http.StatusNotFound, "run %s: %s listed in manifest but missing", folder, rel)
			return
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != c.MetricsSHA256 {
			writeError(w, http.StatusInternalServerError,
				"run %s: %s fails verification (manifest says %s, content hashes to %s)", folder, rel, c.MetricsSHA256, got)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Content-SHA256", c.MetricsSHA256)
		w.Write(data)
		return
	}
	writeError(w, http.StatusNotFound, "run %s: manifest does not vouch for %s", folder, rel)
}

// handleHealthz is GET /healthz: 200 while healthy, 503 degraded or
// draining (load balancers should stop sending work, reads still
// answer).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	degraded := s.store.Failed()
	st := map[string]any{"ok": !degraded && !draining, "degraded": degraded, "draining": draining}
	code := http.StatusOK
	if degraded || draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleStatsz is GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = len(s.queue)
	st.Running = len(s.inflight) - len(s.queue)
	if st.Running < 0 {
		st.Running = 0
	}
	st.Degraded = s.store.Failed()
	st.Draining = s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &st)
}
