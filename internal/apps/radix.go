package apps

import (
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// Radix is the SPLASH-2 integer radix sort kernel: one iteration per
// digit, each with a local-histogram phase, a global prefix computed from
// the per-processor histograms, and a permutation phase that scatters
// keys into the destination array. The scattered writes land all over the
// destination — heavy multi-writer false sharing at page granularity,
// which is why Radix stresses diff generation so badly in the paper
// (20.6% of execution time on diff operations under base TreadMarks).
type Radix struct {
	Keys  int
	Radix int
	// ComputePerKey models per-key instruction cost.
	ComputePerKey int64

	srcBase, dstBase int64 // i32 keys, ping-pong
	histBase         int64 // per-proc histograms: maxProcs x Radix i32
	rankBase         int64 // global start offset per (digit, proc)
	outAddr          int64

	maxProcs int
	result   float64

	// CaptureFinal records the sorted array into Final (debug/tests).
	CaptureFinal bool
	Final        []int
	// DebugWriters records, per pass, which processor wrote each dst
	// index (debug only; the engine serializes goroutines).
	DebugWriters map[int][]int
}

// NewRadix builds an instance; radix must be a power of two.
func NewRadix(keys, radix int) *Radix {
	return &Radix{Keys: keys, Radix: radix, ComputePerKey: 120, maxProcs: 64}
}

// SetProcs implements dsm.Sized: the per-processor histogram and rank
// arrays are sized by the machine, so big meshes (128+, where the old
// fixed 64-slot sizing indexed out of range) work. The historical
// 64-slot floor is kept so every run at <= 64 processors preserves its
// exact page layout — and with it the checked-in golden fingerprints.
func (r *Radix) SetProcs(n int) {
	r.maxProcs = 64
	if n > r.maxProcs {
		r.maxProcs = n
	}
}

// DefaultRadix is the scaled default (paper: 1M keys, radix 1024).
func DefaultRadix() *Radix { return NewRadix(32768, 256) }

// PaperRadix reproduces the published input.
func PaperRadix() *Radix { return NewRadix(1<<20, 1024) }

// Name implements dsm.App.
func (r *Radix) Name() string { return "radix" }

// Setup implements dsm.App.
func (r *Radix) Setup(h *lrc.Heap) {
	r.result = 0
	kb := (4*r.Keys + 4095) / 4096
	r.srcBase = h.AllocPages(kb)
	r.dstBase = h.AllocPages(kb)
	r.histBase = h.AllocPages((4*r.maxProcs*r.Radix + 4095) / 4096)
	r.rankBase = h.AllocPages((4*r.maxProcs*r.Radix + 4095) / 4096)
	r.outAddr = h.AllocPages(1)
}

// digits returns how many passes the key range needs.
func (r *Radix) digits() int {
	bits := 0
	for v := r.Radix; v > 1; v >>= 1 {
		bits++
	}
	// Keys are generated below 1<<20.
	passes := (20 + bits - 1) / bits
	if passes < 1 {
		passes = 1
	}
	return passes
}

// Body implements dsm.App.
func (r *Radix) Body(env *dsm.Env) {
	n := r.Keys
	np := env.NProcs()
	lo, hi := blockRange(n, np, env.ID)
	radixBits := 0
	for v := r.Radix; v > 1; v >>= 1 {
		radixBits++
	}

	if env.ID == 0 {
		g := newRNG(424242)
		for i := 0; i < n; i++ {
			env.WI(r.srcBase+int64(4*i), g.intn(1<<20))
		}
	}
	env.Barrier(0)

	src, dst := r.srcBase, r.dstBase
	for pass := 0; pass < r.digits(); pass++ {
		shift := uint(pass * radixBits)
		mask := r.Radix - 1

		// Phase 1: local histogram over my contiguous block.
		myHist := r.histBase + int64(4*env.ID*r.Radix)
		localHist := make([]int, r.Radix)
		for i := lo; i < hi; i++ {
			env.Compute(r.ComputePerKey)
			d := (env.RI(src+int64(4*i)) >> shift) & mask
			localHist[d]++
		}
		for d := 0; d < r.Radix; d++ {
			env.WI(myHist+int64(4*d), localHist[d])
		}
		env.Barrier(100 + 3*pass)

		// Phase 2: processor 0 turns the histograms into global ranks:
		// rank[d][p] = keys with smaller digits + same digit on earlier
		// processors.
		if env.ID == 0 {
			offset := 0
			for d := 0; d < r.Radix; d++ {
				for p := 0; p < np; p++ {
					env.Compute(4)
					env.WI(r.rankBase+int64(4*(d*r.maxProcs+p)), offset)
					offset += env.RI(r.histBase + int64(4*(p*r.Radix+d)))
				}
			}
		}
		env.Barrier(101 + 3*pass)

		// Phase 3: permute my keys into the destination.
		next := make([]int, r.Radix)
		for d := 0; d < r.Radix; d++ {
			next[d] = env.RI(r.rankBase + int64(4*(d*r.maxProcs+env.ID)))
		}
		for i := lo; i < hi; i++ {
			env.Compute(r.ComputePerKey)
			k := env.RI(src + int64(4*i))
			d := (k >> shift) & mask
			if r.DebugWriters != nil {
				r.DebugWriters[pass][next[d]] = env.ID
			}
			env.WI(dst+int64(4*next[d]), k)
			next[d]++
		}
		env.Barrier(102 + 3*pass)
		src, dst = dst, src
	}

	if env.ID == 0 {
		// Checksum of the sorted array, plus a sortedness check folded in.
		sum := 0
		prev := -1
		ok := 1
		if r.CaptureFinal {
			r.Final = make([]int, n)
		}
		for i := 0; i < n; i++ {
			env.Compute(4)
			k := env.RI(src + int64(4*i))
			if r.CaptureFinal {
				r.Final[i] = k
			}
			if k < prev {
				ok = 0
			}
			prev = k
			sum = (sum + (i+1)*k) % 1000000007
		}
		env.WI(r.outAddr, sum*ok)
		r.result = float64(env.RI(r.outAddr))
	}
	env.Barrier(1)
}

// Result implements dsm.App.
func (r *Radix) Result() float64 { return r.result }
