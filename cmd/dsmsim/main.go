// Command dsmsim runs one application under one DSM protocol on the
// simulated network of workstations and prints the paper-style execution
// breakdown, protocol counters, and validation status.
//
// Usage:
//
//	dsmsim -app ocean -proto I+D -procs 16 [-scale default]
//	dsmsim -app tsp -proto AURC+P
//	dsmsim -app em3d -proto I+P+D -profile rdma
//	dsmsim -app radix -proto AURC -profile profiles/cxl.json
//	dsmsim -app em3d -proto I+P+D -drop 0.02 -fault-seed 7
//	dsmsim -app water -proto I+P+D -ctrl-crash 0@0,3@50000 -ctrl-hang 2@10000+30000
//	dsmsim -p 16 -app radix -mode ipd -timeline t.json -metrics m.json
//
// Protocols: Base, I, I+D, P, I+P, I+P+D, AURC, AURC+P (matched
// case-insensitively, "+" optional: "ipd" means I+P+D). -mode is an
// alias for -proto, -p for -procs.
//
// -profile selects the machine model: a builtin interconnect backend
// (pci1996, rdma, cxl) or a dsm96/params-profile/v1 JSON file (see
// profiles/README.md). The default — no profile — is Table 1 of the
// paper, and `-profile pci1996` is bit-identical to it. An explicit
// -procs overrides the profile's processor count; -netbw, -memlat and
// -msgov are applied on top of the profile in that order.
//
// The -drop/-dup/-delay flags make the simulated network unreliable
// (deterministically, keyed by -fault-seed); the protocols recover via
// the reliable transport, and the reliability counter block is printed.
//
// The -ctrl-crash/-ctrl-hang flags fail protocol controllers:
// NODE@CYCLE items (NODE may be "all") crash a node's controller
// permanently, NODE@CYCLE+WINDOW items wedge it for a window. The
// owning node detects the dead doorbell by submit timeout and fails
// over to inline software protocol handling — the run stays correct
// and validated, it just slows down; the degradation counters are
// printed. -watchdog bounds how long the engine tolerates zero process
// progress before failing the run with a structured stall report.
//
// -timeline writes a Perfetto-loadable Chrome trace-event timeline of
// the run (per-processor phase tracks, controller occupancy, mesh-link
// occupancy, protocol instant events; open at ui.perfetto.dev, where
// 1 µs = 1 simulated cycle); -metrics writes the machine-readable run
// metrics JSON (schema dsm96/run-metrics/v3, including the causal-span
// report); -spans writes one JSON line per blocking protocol operation
// (read/write fault, lock, barrier, prefetch) with its stage-by-stage
// latency decomposition. All artifacts are byte-identical across repeat
// runs.
//
// -workers N shards the event engine across N OS threads for big
// meshes (see ARCHITECTURE.md, "Parallel engine"). The fired event
// schedule is bit-identical at any worker count, so the breakdown,
// fingerprint, and every artifact — including -trace, -timeline,
// -metrics, and -spans output — are byte-identical to a sequential
// run: globally-ordered instrumentation records shard-locally and is
// replayed in global (time, seq) order at each merge barrier. Only
// AURC falls back to a sequential engine (its update path mutates
// remote nodes' state inline).
//
// -engine-profile FILE writes the engine's self-profile (schema
// dsm96/engine-profile/v1): merge-window and deferred-replay
// accounting plus lookahead-window histograms in a deterministic
// block, and per-shard busy/merge-wait wall time in a host block.
// `metricsdiff -engine-profile a b` compares the deterministic block
// exactly while ignoring the host block.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// pct returns 100*num/den, or 0 when den is 0.
func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// writeArtifact creates path and streams write into it, exiting on error.
func writeArtifact(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsim:", err)
		os.Exit(1)
	}
}

// printStall renders the structured liveness report core.Run attaches
// when a run deadlocks or the watchdog trips.
func printStall(s *core.StallInfo) {
	kind := "stall (watchdog)"
	if s.Deadlock {
		kind = "deadlock"
	}
	fmt.Fprintf(os.Stderr, "dsmsim: %s at cycle %d (last progress at %d)\n",
		kind, s.Report.At, s.Report.LastProgress)
	for _, b := range s.Report.Blocked {
		fmt.Fprintf(os.Stderr, "  %-6s blocked on %-12s since cycle %d\n", b.Name, b.Reason, b.Since)
	}
	for _, op := range s.OpenOps {
		fmt.Fprintf(os.Stderr, "  op %d: %s(obj %d) on node %d, open since cycle %d\n",
			op.ID, op.Kind, op.Obj, op.Node, op.Start)
	}
	fmt.Fprintf(os.Stderr, "  transport: %d unacked message(s), %d retransmission(s) so far\n",
		s.UnackedMessages, s.Retries)
}

func main() {
	appName := flag.String("app", "ocean", "application: tsp, water, radix, barnes, ocean, em3d")
	proto := flag.String("proto", "Base", "protocol: Base, I, I+D, P, I+P, I+P+D, AURC, AURC+P")
	flag.StringVar(proto, "mode", "Base", "alias for -proto")
	procs := flag.Int("procs", 16, "number of processors")
	flag.IntVar(procs, "p", 16, "alias for -procs")
	scale := flag.String("scale", "default", "problem scale: tiny, default, paper")
	profileArg := flag.String("profile", "", "machine model: builtin backend (pci1996, rdma, cxl) or a params-profile JSON file (default: Table 1)")
	netBW := flag.Float64("netbw", 0, "override network bandwidth (MB/s)")
	memLat := flag.Float64("memlat", 0, "override memory latency (ns)")
	msgOv := flag.Float64("msgov", 0, "override messaging overhead (us)")
	verbose := flag.Bool("v", false, "print per-processor breakdown")
	tracePg := flag.Int("trace", -1, "dump the protocol event history of this page (TreadMarks variants)")
	traceN := flag.Int("tracen", 200, "how many trace events to retain")
	drop := flag.Float64("drop", 0, "message drop probability per link (0..1)")
	dup := flag.Float64("dup", 0, "message duplication probability per link (0..1)")
	delay := flag.Float64("delay", 0, "message reorder-delay probability per link (0..1)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	ctrlCrash := flag.String("ctrl-crash", "", "crash controllers: NODE@CYCLE,... (NODE may be \"all\")")
	ctrlHang := flag.String("ctrl-hang", "", "hang controllers: NODE@CYCLE+WINDOW,... (NODE may be \"all\")")
	watchdog := flag.Int64("watchdog", 0, "liveness watchdog window in cycles (0 = default, negative = off)")
	workers := flag.Int("workers", 1, "shard the event engine across this many OS threads (schedule and every artifact stay bit-identical; AURC falls back to 1)")
	timelineOut := flag.String("timeline", "", "write a Perfetto-loadable timeline (Chrome trace-event JSON) to this file")
	metricsOut := flag.String("metrics", "", "write machine-readable run metrics JSON to this file")
	spansOut := flag.String("spans", "", "write one causal span per blocking protocol operation as JSONL to this file")
	engineProfileOut := flag.String("engine-profile", "", "write the engine self-profile JSON (schema dsm96/engine-profile/v1) to this file")
	flag.Parse()

	var app dsm.App
	var err error
	switch *scale {
	case "tiny":
		app, err = apps.Tiny(*appName)
	case "default":
		app, err = apps.Default(*appName)
	case "paper":
		switch *appName {
		case "tsp":
			app = apps.PaperTSP()
		case "water":
			app = apps.PaperWater()
		case "radix":
			app = apps.PaperRadix()
		case "barnes":
			app = apps.PaperBarnes()
		case "ocean":
			app = apps.PaperOcean()
		case "em3d":
			app = apps.PaperEm3d()
		default:
			err = fmt.Errorf("unknown app %q", *appName)
		}
	default:
		err = fmt.Errorf("unknown scale %q", *scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsim:", err)
		os.Exit(2)
	}

	var spec core.Spec
	switch strings.ToLower(strings.ReplaceAll(*proto, "+", "")) {
	case "aurc":
		spec = core.AURC(false)
	case "aurcp":
		spec = core.AURC(true)
	default:
		m, ok := tmk.ParseMode(*proto)
		if !ok {
			fmt.Fprintf(os.Stderr, "dsmsim: unknown protocol %q\n", *proto)
			os.Exit(2)
		}
		spec = core.TM(m)
	}

	cfg := params.Default()
	if *profileArg != "" {
		prof, perr := params.ResolveProfile(*profileArg)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "dsmsim:", perr)
			os.Exit(2)
		}
		cfg = prof.Config()
		// The profile carries its own processor count; an explicit -procs
		// (or -p) on the command line still wins.
		procsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "procs" || f.Name == "p" {
				procsSet = true
			}
		})
		if procsSet {
			cfg.Processors = *procs
		}
	} else {
		cfg.Processors = *procs
	}
	if *netBW > 0 {
		cfg.SetNetworkBandwidthMBps(*netBW)
	}
	if *memLat > 0 {
		cfg.SetMemoryLatencyNanos(*memLat)
	}
	if *msgOv > 0 {
		cfg.SetMessagingOverheadMicros(*msgOv)
	}

	var tracer *trace.Buffer
	if *tracePg >= 0 {
		tracer = trace.New(*traceN)
		tracer.Page = *tracePg
		spec.Tracer = tracer
	}
	var rec *timeline.Recorder
	if *timelineOut != "" {
		rec = timeline.NewRecorder(cfg.Processors)
		spec.Timeline = rec
		if tracer == nil {
			// Capture protocol events for the timeline's instant markers
			// (all pages; a generous ring so small runs keep everything).
			tracer = trace.New(1 << 16)
			spec.Tracer = tracer
		}
	}
	var tracker *spans.Tracker
	if *spansOut != "" || *metricsOut != "" {
		// Metrics carry the span report (schema v3), so both artifacts
		// share one tracker. Attaching it never perturbs the schedule.
		tracker = spans.NewTracker(cfg.Processors)
		spec.Spans = tracker
	}
	if *drop > 0 || *dup > 0 || *delay > 0 || *ctrlCrash != "" || *ctrlHang != "" {
		plan := &faults.Plan{
			Seed:    *faultSeed,
			Default: faults.Link{Drop: *drop, Dup: *dup, Delay: *delay},
		}
		if err := faults.ParseCtrlCrash(plan, *ctrlCrash, cfg.Processors); err != nil {
			fmt.Fprintln(os.Stderr, "dsmsim:", err)
			os.Exit(2)
		}
		if err := faults.ParseCtrlHang(plan, *ctrlHang, cfg.Processors); err != nil {
			fmt.Fprintln(os.Stderr, "dsmsim:", err)
			os.Exit(2)
		}
		spec.Faults = plan
	}
	spec.Watchdog = sim.Time(*watchdog)
	spec.Workers = *workers
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		if res != nil && res.Stall != nil {
			printStall(res.Stall)
		}
		fmt.Fprintln(os.Stderr, "dsmsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s under %s on %d processors\n", res.App, res.Protocol, cfg.Processors)
	fmt.Printf("  running time:   %d cycles (%.2f ms at %g MHz)\n",
		res.RunningTime, cfg.Millis(res.RunningTime), cfg.ClockMHz())
	fmt.Printf("  result:         %v (sequential oracle %v, validated)\n", res.AppResult, res.SeqResult)
	fmt.Printf("  network:        %d messages, %d bytes\n", res.Messages, res.Bytes)
	fmt.Println("  breakdown:")
	for _, c := range stats.Categories() {
		fmt.Printf("    %-7s %6.1f%%\n", c, 100*res.Breakdown.Fraction(c))
	}
	fmt.Printf("    diff-ops %5.1f%% of execution time\n", res.Breakdown.DiffPercent())
	fmt.Println("  counters:")
	fmt.Print(res.Breakdown.CounterTable())
	if res.Reliability.Degraded() {
		fmt.Println("  reliability (fault injection active):")
		fmt.Print(res.Reliability.Table())
	}
	if sum := res.Breakdown.Sum(); sum.ControllerFailovers > 0 {
		fmt.Printf("  controller:     %d failover(s) to software handling, %d degraded node-cycles, %d software-fallback diffs\n",
			sum.ControllerFailovers, sum.DegradedNodeCycles, sum.SoftwareFallbackDiffs)
	}
	if *tracePg >= 0 {
		fmt.Printf("  protocol trace for page %d (%d events recorded, last %d shown):\n",
			*tracePg, tracer.Total(), len(tracer.Events()))
		fmt.Print(tracer.String())
	}
	if *timelineOut != "" {
		writeArtifact(*timelineOut, func(w io.Writer) error {
			return rec.WritePerfetto(w, tracer.Events())
		})
		fmt.Printf("  timeline:       %s (open at ui.perfetto.dev; 1 us = 1 cycle)\n", *timelineOut)
	}
	if *metricsOut != "" {
		writeArtifact(*metricsOut, res.Metrics().WriteJSON)
		fmt.Printf("  metrics:        %s\n", *metricsOut)
	}
	if *spansOut != "" {
		writeArtifact(*spansOut, tracker.WriteJSONL)
		fmt.Printf("  spans:          %s (%d operations)\n", *spansOut, len(tracker.Ops()))
	}
	if *engineProfileOut != "" {
		prof := res.EngineProfile
		writeArtifact(*engineProfileOut, prof.WriteJSON)
		fmt.Printf("  engine-profile: %s (%d worker(s), %d window(s), merge-wait %.1f%% of shard wall time)\n",
			*engineProfileOut, prof.Workers, prof.Deterministic.Windows, 100*prof.MergeWaitFraction())
	}
	if res.Spans != nil {
		ov := res.Spans.Overlap
		fmt.Printf("  overlap:        %d activity cycles, %d hidden (%.1f%% of activity overlapped compute)\n",
			ov.ActivityCycles, ov.HiddenCycles, pct(ov.HiddenCycles, ov.ActivityCycles))
	}
	if *verbose {
		fmt.Println("  per-processor:")
		for i, ps := range res.Breakdown.PerProc {
			fmt.Printf("    cpu%-2d busy %10d data %10d synch %10d ipc %10d others %10d\n",
				i, ps.Cycles[stats.Busy], ps.Cycles[stats.Data],
				ps.Cycles[stats.Synch], ps.Cycles[stats.IPC], ps.Cycles[stats.Other])
		}
	}
}
