package spans

import (
	"bytes"
	"testing"

	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// TestStagePartition exercises the milestone attribution rules: marks
// arrive out of order and eagerly (future-timestamped), End sorts them,
// assigns each gap to the closing milestone's stage, clamps marks past
// the close, and the stages sum exactly to the window.
func TestStagePartition(t *testing.T) {
	tr := NewTracker(1)
	op := tr.Begin(0, OpReadFault, 7, 100)
	op.Mark(nil, StageWire, 150)
	op.Mark(nil, StageQueue, 140)  // recorded later, happened earlier
	op.Mark(nil, StageRemote, 250) // eager reservation end past the close
	tr.End(op, 220)
	if op.Stages[StageQueue] != 40 || op.Stages[StageWire] != 10 || op.Stages[StageRemote] != 70 {
		t.Errorf("stages = %v", op.Stages)
	}
	var sum sim.Time
	for _, s := range op.Stages {
		sum += s
	}
	if sum != op.End-op.Start {
		t.Errorf("stages sum to %d, window is %d", sum, op.End-op.Start)
	}
}

func TestTrailingGapIsUnblock(t *testing.T) {
	tr := NewTracker(1)
	op := tr.Begin(0, OpLock, 3, 1000)
	op.Mark(nil, StageReply, 1400)
	tr.End(op, 1500)
	if op.Stages[StageReply] != 400 || op.Stages[StageUnblock] != 100 {
		t.Errorf("stages = %v", op.Stages)
	}
}

// Zero-length operations are kept: per-kind span counts must equal the
// protocol's operation counters, and a free operation is still real.
func TestZeroLengthSpanKept(t *testing.T) {
	tr := NewTracker(1)
	op := tr.Begin(0, OpWriteFault, 1, 500)
	tr.End(op, 500)
	if len(tr.Ops()) != 1 {
		t.Fatalf("zero-length span dropped")
	}
	if tr.Ops()[0].End != tr.Ops()[0].Start {
		t.Errorf("span window %d..%d", tr.Ops()[0].Start, tr.Ops()[0].End)
	}
}

// TestNilSafety: the disabled state is a nil tracker and nil ops; every
// method must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracker
	op := tr.Begin(0, OpReadFault, 0, 0)
	if op != nil {
		t.Fatal("nil tracker returned a live op")
	}
	op.Mark(nil, StageWire, 10)
	tr.End(op, 20)
	tr.Detach(0, op)
	tr.Charge(0, stats.Data, 5, 10)
	tr.Controller(0, 0, 10)
	tr.NetSend(0, 0, 10)
	if tr.Ops() != nil || tr.Report() != nil {
		t.Error("nil tracker produced data")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestChargeAttribution(t *testing.T) {
	tr := NewTracker(2)
	op := tr.Begin(1, OpBarrier, 0, 100)
	tr.Charge(1, stats.Synch, 50, 200) // while current: attributed
	tr.Charge(1, stats.Busy, 30, 230)  // busy: attributed but not blocked
	tr.Charge(0, stats.Data, 40, 240)  // other node: not this op
	tr.End(op, 300)
	tr.Charge(1, stats.Synch, 10, 310) // after End: no current op
	if op.Charged[stats.Synch] != 50 || op.Charged[stats.Busy] != 30 || op.Charged[stats.Data] != 0 {
		t.Errorf("charged = %v", op.Charged)
	}
	if got := totalLen(union(tr.blocked[1])); got != 60 {
		t.Errorf("node 1 blocked %d cycles, want 60 (busy excluded)", got)
	}
}

func TestDetachStopsCharging(t *testing.T) {
	tr := NewTracker(1)
	op := tr.Begin(0, OpPrefetch, 9, 100)
	tr.Charge(0, stats.Synch, 10, 110)
	tr.Detach(0, op)
	tr.Charge(0, stats.Data, 99, 300)
	tr.End(op, 400)
	if op.Charged[stats.Synch] != 10 || op.Charged[stats.Data] != 0 {
		t.Errorf("charged = %v", op.Charged)
	}
}

func TestIntervalMath(t *testing.T) {
	ivs := union([]interval{{10, 20}, {15, 25}, {30, 40}, {40, 50}, {5, 5}})
	want := []interval{{10, 25}, {30, 50}}
	if len(ivs) != len(want) {
		t.Fatalf("union = %v", ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("union = %v, want %v", ivs, want)
		}
	}
	if got := totalLen(ivs); got != 35 {
		t.Errorf("totalLen = %d", got)
	}
	other := []interval{{0, 12}, {22, 33}, {45, 60}}
	// [10,25)∩[0,12)=2, [10,25)∩[22,33)=3, [30,50)∩[22,33)=3, [30,50)∩[45,60)=5
	if got := intersectLen(ivs, other); got != 13 {
		t.Errorf("intersectLen = %d, want 13", got)
	}
}

func TestAppendMergedCoalesces(t *testing.T) {
	var ivs []interval
	ivs = appendMerged(ivs, interval{10, 20})
	ivs = appendMerged(ivs, interval{20, 30}) // touching: coalesce
	ivs = appendMerged(ivs, interval{25, 28}) // contained: absorbed
	ivs = appendMerged(ivs, interval{40, 40}) // empty: dropped
	ivs = appendMerged(ivs, interval{50, 60})
	if len(ivs) != 2 || ivs[0] != (interval{10, 30}) || ivs[1] != (interval{50, 60}) {
		t.Errorf("ivs = %v", ivs)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	d := []sim.Time{10, 20, 30, 40}
	for _, tc := range []struct {
		p    int
		want int64
	}{{50, 20}, {90, 40}, {99, 40}, {1, 10}, {100, 40}} {
		if got := percentile(d, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
}

// TestReportFixedShape: a report always carries one per-kind row per
// kind and one overlap row per node, even with no spans at all, so two
// reports always flatten to the same metricsdiff key set.
func TestReportFixedShape(t *testing.T) {
	r := NewTracker(3).Report()
	if len(r.PerKind) != int(NumKinds) {
		t.Errorf("%d per-kind rows, want %d", len(r.PerKind), NumKinds)
	}
	if len(r.Overlap.PerNode) != 3 {
		t.Errorf("%d overlap rows, want 3", len(r.Overlap.PerNode))
	}
	if r.Digest == "" {
		t.Error("empty digest")
	}
}

func TestOverlapHiddenCycles(t *testing.T) {
	tr := NewTracker(1)
	// Controller busy [0,100), wire [80,150): activity union [0,150).
	tr.Controller(0, 0, 100)
	tr.NetSend(0, 80, 150)
	// Processor blocked [50,120): 70 cycles of the activity are covered.
	tr.Charge(0, stats.Data, 70, 120)
	r := tr.Report()
	n := r.Overlap.PerNode[0]
	if n.ActivityCycles != 150 || n.BlockedCycles != 70 || n.HiddenCycles != 80 {
		t.Errorf("overlap = %+v", n)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	build := func() *Tracker {
		tr := NewTracker(2)
		a := tr.Begin(0, OpReadFault, 4, 10)
		a.Mark(nil, StageWire, 30)
		tr.Charge(0, stats.Data, 15, 40)
		tr.End(a, 40)
		b := tr.Begin(1, OpBarrier, 0, 20)
		tr.End(b, 90)
		return tr
	}
	var x, y bytes.Buffer
	if err := build().WriteJSONL(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&y); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Error("JSONL differs between identical trackers")
	}
	if x.Len() == 0 || bytes.Count(x.Bytes(), []byte("\n")) != 2 {
		t.Errorf("want 2 lines, got %q", x.String())
	}
	if build().Report().Digest != build().Report().Digest {
		t.Error("digest differs between identical trackers")
	}
}

// TestBarrierEpisodeChunking drives barrierEpisodes directly: two
// two-node episodes on one barrier object, the late arriver flagged
// critical with its pre-arrival operation chain summarized.
func TestBarrierEpisodeChunking(t *testing.T) {
	tr := NewTracker(2)
	// Episode 0: node 0 arrives at 100, node 1 at 180 (critical).
	a0 := tr.Begin(0, OpBarrier, 0, 100)
	// Node 1 served a read fault 40..170 before arriving late.
	f := tr.Begin(1, OpReadFault, 5, 40)
	tr.End(f, 170)
	a1 := tr.Begin(1, OpBarrier, 0, 180)
	tr.End(a0, 200)
	tr.End(a1, 200)
	// Episode 1: node 1 arrives first this time.
	b1 := tr.Begin(1, OpBarrier, 0, 300)
	b0 := tr.Begin(0, OpBarrier, 0, 350)
	tr.End(b1, 400)
	tr.End(b0, 400)
	eps := tr.Report().Barriers
	if len(eps) != 2 {
		t.Fatalf("%d episodes, want 2", len(eps))
	}
	e0 := eps[0]
	if e0.CriticalNode != 1 || e0.CriticalSlack != 80 || e0.Arrivals != 2 {
		t.Errorf("episode 0 = %+v", e0)
	}
	if e0.ChainOps != 1 || e0.ChainCycles != 130 || e0.LongestChainKind != "read-fault" {
		t.Errorf("episode 0 chain = %+v", e0)
	}
	if eps[1].CriticalNode != 0 || eps[1].Episode != 1 {
		t.Errorf("episode 1 = %+v", eps[1])
	}
}
