#!/bin/sh
# Serve gate (make serve): boot dsmserve on a throwaway store, submit
# the same job twice, and hold the service to its contract — the first
# submission runs, the second is answered from the memoized store with
# an identical fingerprint and a byte-identical artifact — then
# SIGTERM-drain and require a clean exit 0.
set -eu
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
srv_pid=""
trap '[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

go build -o "$dir/dsmserve" ./cmd/dsmserve

"$dir/dsmserve" -store "$dir/store" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
	-pool 2 -queue 8 2>"$dir/server.log" &
srv_pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve: server never bound" >&2
		cat "$dir/server.log" >&2
		exit 1
	fi
	sleep 0.1
done
url="http://$(cat "$dir/addr")"

cat >"$dir/job.json" <<'EOF'
{"schema": "dsm96/job/v1", "app": "radix", "protocol": "I+P+D", "scale": "tiny", "procs": 4}
EOF

"$dir/dsmserve" -server "$url" -submit "$dir/job.json" -wait >"$dir/first.json"
"$dir/dsmserve" -server "$url" -submit "$dir/job.json" -wait >"$dir/second.json"

jq -e '.state == "done" and .cached == false' "$dir/first.json" >/dev/null ||
	{ echo "serve: first submission was not a fresh run"; cat "$dir/first.json"; exit 1; }
jq -e '.state == "done" and .cached == true' "$dir/second.json" >/dev/null ||
	{ echo "serve: second submission was not a cache hit"; cat "$dir/second.json"; exit 1; }
[ "$(jq -r .result.fingerprint "$dir/first.json")" = "$(jq -r .result.fingerprint "$dir/second.json")" ] ||
	{ echo "serve: fingerprints differ between run and cache hit"; exit 1; }

sha="$(jq -r .result.metrics_sha256 "$dir/first.json")"
[ "$sha" = "$(jq -r .result.metrics_sha256 "$dir/second.json")" ] ||
	{ echo "serve: artifact names differ between run and cache hit"; exit 1; }

# Two verified fetches of the content-addressed artifact must agree byte
# for byte and carry the run-metrics schema.
"$dir/dsmserve" -server "$url" -artifact "$sha" >"$dir/a1.json"
"$dir/dsmserve" -server "$url" -artifact "$sha" >"$dir/a2.json"
cmp "$dir/a1.json" "$dir/a2.json"
jq -e '.schema == "dsm96/run-metrics/v3"' "$dir/a1.json" >/dev/null

"$dir/dsmserve" -server "$url" -statsz >"$dir/stats.json"
jq -e '.cache_hits == 1 and .completed == 1 and .degraded == false' "$dir/stats.json" >/dev/null ||
	{ echo "serve: stats disagree with the two-submission script"; cat "$dir/stats.json"; exit 1; }

kill -TERM "$srv_pid"
if ! wait "$srv_pid"; then
	echo "serve: SIGTERM drain exited nonzero" >&2
	cat "$dir/server.log" >&2
	exit 1
fi
srv_pid=""

echo "serve: ok"
