// Command ncpu prints the number of usable CPUs (runtime.NumCPU), so
// shell scripts can gate parallel-scaling assertions on real hardware
// without depending on nproc/getconf portability.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.NumCPU())
}
