package core_test

import (
	"runtime"
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/randprog"
	"dsm96/internal/tmk"
)

// faultyRun simulates a fixed randprog seed under spec with the given
// fault plan and returns the result (already oracle-validated by Run).
func faultyRun(t *testing.T, spec core.Spec, plan *faults.Plan) *core.Result {
	t.Helper()
	spec.Faults = plan
	prog := randprog.New(42, 10, 2048, 3)
	cfg := params.Default()
	res, err := core.Run(cfg, spec, prog)
	if err != nil {
		t.Fatalf("%s under faults: %v", spec, err)
	}
	return res
}

func lossPlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed:    seed,
		Default: faults.Link{Drop: 0.02, Dup: 0.02, Delay: 0.05},
	}
}

// TestFaultyRunsCompleteAndValidate: under a fixed fault seed with real
// loss, every protocol family still finishes and computes the
// sequential oracle's answer, and the transport visibly worked for it.
//
// This test deliberately does NOT use t.Parallel: it flips GOMAXPROCS.
func TestFaultyRunsCompleteAndValidate(t *testing.T) {
	specs := []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.IPD), core.AURC(false),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			res := faultyRun(t, spec, lossPlan(1))
			if !res.Validated() {
				t.Fatalf("oracle mismatch: %v vs %v", res.AppResult, res.SeqResult)
			}
			if res.Reliability.MessagesDropped == 0 {
				t.Fatal("2% loss plan dropped nothing (interposer not wired?)")
			}
			if res.Reliability.Retries == 0 || res.Reliability.AcksSent == 0 {
				t.Fatalf("transport idle under loss: %+v", res.Reliability)
			}

			// Repeat-run invariance under the same plan.
			res2 := faultyRun(t, spec, lossPlan(1))
			if res.EventFingerprint != res2.EventFingerprint ||
				res.RunningTime != res2.RunningTime || res.EventsRun != res2.EventsRun {
				t.Fatalf("faulty repeat run diverged: fp %016x/%016x cycles %d/%d events %d/%d",
					res.EventFingerprint, res2.EventFingerprint,
					res.RunningTime, res2.RunningTime, res.EventsRun, res2.EventsRun)
			}

			// GOMAXPROCS invariance: goroutine scheduling must not leak
			// into fault decisions or retry timing.
			prev := runtime.GOMAXPROCS(1)
			res3 := faultyRun(t, spec, lossPlan(1))
			runtime.GOMAXPROCS(prev)
			if res.EventFingerprint != res3.EventFingerprint || res.RunningTime != res3.RunningTime {
				t.Fatalf("GOMAXPROCS=1 faulty run diverged: fp %016x/%016x cycles %d/%d",
					res.EventFingerprint, res3.EventFingerprint, res.RunningTime, res3.RunningTime)
			}

			// A different seed must fail different messages somewhere.
			res4 := faultyRun(t, spec, lossPlan(2))
			if res4.EventFingerprint == res.EventFingerprint {
				t.Errorf("seeds 1 and 2 produced identical schedules %016x (suspicious)", res.EventFingerprint)
			}
		})
	}
}

// TestZeroLossPlanIsPassThrough: a plan whose rates are all zero must
// produce the bit-identical schedule of no plan at all — the structural
// guarantee that keeps testdata/golden_cycles.txt valid.
func TestZeroLossPlanIsPassThrough(t *testing.T) {
	for _, spec := range []core.Spec{core.TM(tmk.IPD), core.AURC(false)} {
		clean := faultyRun(t, spec, nil)
		zero := faultyRun(t, spec, &faults.Plan{Seed: 12345})
		if clean.EventFingerprint != zero.EventFingerprint ||
			clean.RunningTime != zero.RunningTime || clean.EventsRun != zero.EventsRun {
			t.Fatalf("%s: zero-rate plan changed the schedule: fp %016x/%016x cycles %d/%d",
				spec, clean.EventFingerprint, zero.EventFingerprint, clean.RunningTime, zero.RunningTime)
		}
		if zero.Reliability.Degraded() {
			t.Fatalf("%s: zero-rate plan recorded reliability activity: %+v", spec, zero.Reliability)
		}
	}
}

// TestFaultsDegradeRunningTime: loss is not free — the same program
// under the same protocol must take at least as long with retries as
// without (strictly longer, in practice, for 2% loss).
func TestFaultsDegradeRunningTime(t *testing.T) {
	clean := faultyRun(t, core.TM(tmk.IPD), nil)
	lossy := faultyRun(t, core.TM(tmk.IPD), lossPlan(1))
	if lossy.RunningTime <= clean.RunningTime {
		t.Fatalf("2%% loss did not slow the run: clean %d, lossy %d cycles",
			clean.RunningTime, lossy.RunningTime)
	}
}

// TestInvalidPlanRejected: Run surfaces a malformed plan as an error,
// not a panic.
func TestInvalidPlanRejected(t *testing.T) {
	spec := core.TM(tmk.Base)
	spec.Faults = &faults.Plan{Default: faults.Link{Drop: 1.5}}
	prog := randprog.New(42, 4, 1024, 2)
	if _, err := core.Run(params.Default(), spec, prog); err == nil {
		t.Fatal("Drop=1.5 plan accepted")
	}
}
