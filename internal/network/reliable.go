package network

import (
	"fmt"

	"dsm96/internal/sim"
)

// Reliable-transport tuning. All values are in simulated cycles or
// counts; none of them matters on a fault-free run, where SendReliable
// is a verbatim delegate of Send.
const (
	// ackBytes is the wire size of a hardware acknowledgement.
	ackBytes = 16
	// retrySlack pads the retry timeout past the message's scheduled
	// delivery: it must absorb ack-path queueing and the fault model's
	// injected delay on the ack (default max 2000 cycles), or every
	// slow ack would trigger a spurious retransmission. The forward
	// path needs no such allowance — transmit learns its exact
	// congested delivery time from the simulator.
	retrySlack = 4096
	// maxBackoffShift caps the exponential backoff at base<<shift.
	maxBackoffShift = 6
	// maxAttempts is a livelock backstop: under any loss rate < 1 the
	// chance of this many consecutive losses is negligible, so hitting
	// it means the scenario (e.g. Drop: 1 on a required link) cannot
	// make progress, which is a configuration bug worth a loud stop.
	maxAttempts = 32
)

// pairState is the per-ordered-pair sequencing state of the reliable
// transport. The same entry serves the sender side (nextSeq) and the
// receiver side (nextDeliver, held) of its pair; the two halves touch
// disjoint fields, so on a parallel engine the sender's and receiver's
// shards never write the same word.
type pairState struct {
	nextSeq     uint64            // sender: next sequence number to assign
	nextDeliver uint64            // receiver: lowest sequence not yet delivered
	held        map[uint64]func() // receiver: out-of-order arrivals awaiting delivery
}

// pendingMsg is one reliable message in flight. The ack closure and the
// retry timers capture it, so "has an ack come back" is a field, not a
// map lookup, and marking it acked is idempotent for free.
type pendingMsg struct {
	src, dst, bytes int
	seq             uint64
	deliver         func()
	acked           bool
	attempts        int
}

// SendReliable sends a message that will be delivered exactly once, in
// per-pair FIFO order, even over a faulty network: lost copies are
// retransmitted after a timeout with exponential backoff, duplicates
// are suppressed by sequence number, and reordered arrivals are held
// back until their predecessors deliver. deliver runs in engine context
// exactly once.
//
// With no fault model installed (the default) this is Send, verbatim:
// no sequence numbers, no acks, no timers — the fault-free event
// schedule is bit-identical to the raw datagram path.
func (nw *Network) SendReliable(src, dst, bytes int, overhead sim.Time, deliver func()) {
	if nw.faults == nil || src == dst {
		nw.Send(src, dst, bytes, overhead, deliver)
		return
	}
	ps := &nw.pairs[src*nw.n+dst]
	m := &pendingMsg{src: src, dst: dst, bytes: bytes, seq: ps.nextSeq, deliver: deliver}
	ps.nextSeq++
	nw.unackedBy[src]++
	nw.transmit(m, overhead)
}

// Unacked reports how many reliable messages are still awaiting their
// acknowledgement — the retransmission machinery's in-flight gauge,
// read by liveness stall reports. Always 0 without a fault model (the
// reliable path is then a verbatim datagram send).
func (nw *Network) Unacked() int {
	total := 0
	for _, v := range nw.unackedBy {
		total += v
	}
	return total
}

// transmit puts one physical copy of m on the wire and arms its retry
// timer. The first attempt pays the caller's messaging overhead;
// retransmissions are reinjected by the network interface at no CPU
// cost (overhead 0). The retry timer arms in the send's deferred
// context (where the scheduled delivery cycle is known) but targets the
// source's view: the timer callback — and everything it touches on m —
// stays on the shard that owns the sender.
func (nw *Network) transmit(m *pendingMsg, overhead sim.Time) {
	m.attempts++
	if m.attempts > maxAttempts {
		panic(fmt.Sprintf("network: message %d->%d seq %d abandoned after %d attempts (is a link configured with Drop: 1?)",
			m.src, m.dst, m.seq, maxAttempts))
	}
	attempt := m.attempts
	nw.send(m.src, m.dst, m.bytes, overhead, func() { nw.receiveReliable(m) }, func(delivery sim.Time) {
		timeout := nw.retryTimeout(m, attempt, delivery)
		nw.eng.View(m.src).At(nw.eng.Now()+timeout, func() {
			if m.acked {
				return
			}
			nw.rel[m.src].TimeoutsFired++
			nw.rel[m.src].Retries++
			nw.rel[m.src].RetryWaitCycles += uint64(timeout)
			nw.transmit(m, 0)
		})
	})
}

// retryTimeout returns the cycles to wait for attempt number `attempt`
// before retransmitting. `delivery` is the cycle the simulator actually
// scheduled the copy's tail to arrive (including link queueing and
// injected delay) — or would have, had it not been dropped — so the
// forward path contributes its exact congested latency, not an
// estimate. On top of that: a generous multiple of the ack's
// uncontended return trip, slack for ack-path queueing and injected
// delay, doubling per attempt up to a cap. A timeout that fires while
// the ack is merely slow costs only a redundant (deduplicated) copy,
// so the ack allowance favors simplicity over precision.
func (nw *Network) retryTimeout(m *pendingMsg, attempt int, delivery sim.Time) sim.Time {
	ackRTT := nw.LatencyLowerBound(m.dst, m.src, ackBytes, 0)
	base := delivery - nw.eng.Now() + 4*ackRTT + retrySlack
	shift := attempt - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return base << shift
}

// receiveReliable runs when a physical copy of m reaches its
// destination NIC: acknowledge it, suppress it if it is a duplicate,
// and otherwise deliver it — holding it back if earlier messages from
// the same sender are still missing.
func (nw *Network) receiveReliable(m *pendingMsg) {
	// Hardware ack, itself fault-prone: if it is lost the sender
	// retransmits and this copy's twin is deduplicated below. The ack's
	// delivery callback runs back at the source, the only place m.acked
	// and the sender's unacked gauge are ever touched.
	nw.rel[m.dst].AcksSent++
	nw.Send(m.dst, m.src, ackBytes, 0, func() {
		if !m.acked {
			m.acked = true
			nw.unackedBy[m.src]--
		}
	})

	ps := &nw.pairs[m.src*nw.n+m.dst]
	if m.seq < ps.nextDeliver || ps.held[m.seq] != nil {
		nw.rel[m.dst].DuplicatesDropped++
		return
	}
	if ps.held == nil {
		ps.held = make(map[uint64]func())
	}
	ps.held[m.seq] = m.deliver
	if m.seq > ps.nextDeliver {
		nw.rel[m.dst].HeldForOrder++
	}
	for {
		d := ps.held[ps.nextDeliver]
		if d == nil {
			return
		}
		delete(ps.held, ps.nextDeliver)
		ps.nextDeliver++
		d()
	}
}
