// Package dsm96's top-level benchmarks regenerate every table and figure
// of the paper's evaluation as testing.B benchmarks. Each benchmark runs
// the corresponding simulations and reports the figure's headline numbers
// as custom metrics (simulated cycles, normalized percentages, speedups),
// so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Benchmarks use the scaled default inputs; pass -tags or edit the scale
// constant to run the paper-sized inputs (slow).
package dsm96_test

import (
	"fmt"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/experiments"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// benchScale picks the input sizes for the benchmark harness.
const benchScale = experiments.ScaleDefault

// BenchmarkTable1Defaults verifies and reports the Table 1 parameters
// (the benchmark exists so the table is regenerated alongside the rest
// of the evaluation; it measures config construction, which is trivial).
func BenchmarkTable1Defaults(b *testing.B) {
	var cfg params.Config
	for i := 0; i < b.N; i++ {
		cfg = params.Default()
	}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cfg.Processors), "processors")
	b.ReportMetric(float64(cfg.PageSize), "page-bytes")
	b.ReportMetric(float64(cfg.MessagingOverhead), "msg-overhead-cycles")
	b.ReportMetric(cfg.NetworkBandwidthMBps(), "net-MB/s")
}

// BenchmarkFig1Speedups regenerates Figure 1: base-TreadMarks speedups
// for all six applications on 16 processors (vs their 1-processor runs).
func BenchmarkFig1Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig1(benchScale, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range apps.Names() {
				b.ReportMetric(data[name][0].Speedup, name+"-speedup-16p")
			}
		}
	}
}

// BenchmarkFig2Breakdown regenerates Figure 2: the 16-processor
// execution-time breakdown and the diff-operation percentages.
func BenchmarkFig2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.DiffPct, r.App+"-diffops-%")
				b.ReportMetric(100*r.Fraction[stats.Busy], r.App+"-busy-%")
			}
		}
	}
}

// benchFig5to10 regenerates one of Figures 5-10: the six overlap
// variants for one application, reporting each variant's running time
// normalized to Base (the numbers atop the paper's bars).
func benchFig5to10(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5to10(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Normalized, r.Protocol+"-%")
			}
		}
	}
}

func BenchmarkFig5TSP(b *testing.B)    { benchFig5to10(b, "tsp") }
func BenchmarkFig6Water(b *testing.B)  { benchFig5to10(b, "water") }
func BenchmarkFig7Radix(b *testing.B)  { benchFig5to10(b, "radix") }
func BenchmarkFig8Barnes(b *testing.B) { benchFig5to10(b, "barnes") }
func BenchmarkFig9Em3d(b *testing.B)   { benchFig5to10(b, "em3d") }
func BenchmarkFig10Ocean(b *testing.B) { benchFig5to10(b, "ocean") }

// BenchmarkFig11_12AURC regenerates Figures 11-12: overlapping
// TreadMarks (I+D) against AURC and AURC+P for every application.
func BenchmarkFig11_12AURC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig11_12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range apps.Names() {
				b.ReportMetric(data[name][1].Normalized, name+"-AURC-%")
				b.ReportMetric(data[name][2].Normalized, name+"-AURC+P-%")
			}
		}
	}
}

// benchSweep regenerates one of Figures 13-16, reporting the normalized
// running times of both protocols at the sweep's extremes.
func benchSweep(b *testing.B, run func() ([]experiments.SweepPoint, error), unit string) {
	for i := 0; i < b.N; i++ {
		pts, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			lo, hi := pts[0], pts[len(pts)-1]
			b.ReportMetric(lo.TMNorm, fmt.Sprintf("TM@%g%s", lo.X, unit))
			b.ReportMetric(hi.TMNorm, fmt.Sprintf("TM@%g%s", hi.X, unit))
			b.ReportMetric(lo.AURCNorm, fmt.Sprintf("AURC@%g%s", lo.X, unit))
			b.ReportMetric(hi.AURCNorm, fmt.Sprintf("AURC@%g%s", hi.X, unit))
		}
	}
}

// BenchmarkFig13Messaging regenerates Figure 13 (messaging overhead,
// with AURC updates paying the full per-message overhead — the curve the
// paper shows degrading).
func BenchmarkFig13Messaging(b *testing.B) {
	benchSweep(b, func() ([]experiments.SweepPoint, error) {
		return experiments.Fig13(benchScale, []float64{0.5, 4, 40})
	}, "us")
}

// BenchmarkFig14NetworkBandwidth regenerates Figure 14.
func BenchmarkFig14NetworkBandwidth(b *testing.B) {
	benchSweep(b, func() ([]experiments.SweepPoint, error) {
		return experiments.Fig14(benchScale, []float64{20, 100, 200})
	}, "MB/s")
}

// BenchmarkFig15MemoryLatency regenerates Figure 15.
func BenchmarkFig15MemoryLatency(b *testing.B) {
	benchSweep(b, func() ([]experiments.SweepPoint, error) {
		return experiments.Fig15(benchScale, []float64{40, 100, 200})
	}, "ns")
}

// BenchmarkFig16MemoryBandwidth regenerates Figure 16.
func BenchmarkFig16MemoryBandwidth(b *testing.B) {
	benchSweep(b, func() ([]experiments.SweepPoint, error) {
		return experiments.Fig16(benchScale, []float64{60, 200})
	}, "MB/s")
}

// BenchmarkEngineEventsPerSec measures the discrete-event core's raw
// throughput: simulation events fired per second of wall time, on
// fixed-size (ScaleTiny) runs of Radix and Ocean under base TreadMarks.
// This is the engine fast-path regression benchmark — compare events/sec
// across engine changes (the fired event stream itself is pinned by
// TestGoldenCycles, so the divisor is constant for a given app).
func BenchmarkEngineEventsPerSec(b *testing.B) {
	for _, name := range []string{"radix", "ocean"} {
		b.Run(name, func(b *testing.B) {
			var events, handoffs, elided uint64
			for i := 0; i < b.N; i++ {
				app, err := apps.Tiny(name)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(params.Default(), core.TM(tmk.Base), app)
				if err != nil {
					b.Fatal(err)
				}
				events += res.EventsRun
				handoffs += res.EngineStats.Handoffs
				elided += res.EngineStats.ElidedParks
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(handoffs)/float64(b.N), "handoffs/run")
			b.ReportMetric(float64(elided)/float64(b.N), "elided-parks/run")
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// cycles per second of wall time for a representative run (useful when
// assessing whether paper-scale inputs are feasible).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		app, err := apps.Default("water")
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(params.Default(), core.TM(tmk.Base), app)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.RunningTime
	}
	b.ReportMetric(float64(cycles), "sim-cycles/run")
}
