// Command bench measures the parallel event engine's throughput:
// simulated events per wall-clock second across a grid of mesh sizes
// and engine worker counts, on one application and protocol. It is the
// only place in the repo where wall-clock time is load-bearing — the
// simulator itself never reads it.
//
// Usage:
//
//	bench                              # 64/128/256 nodes x 1/2/4/8 workers
//	bench -mesh 64 -workers 1,8 -app water -proto I+P+D
//	bench -out BENCH_parallel_engine.json   # snapshot for metricsdiff -bench
//	bench -require-speedup 2.0              # fail unless workers scale
//
// Every cell is checked against the workers=1 cell of its mesh size:
// the event fingerprint, event count, and simulated cycle total must be
// bit-identical (the parallel engine's contract), so a bench run
// doubles as a determinism check at scales the test suite does not
// reach. -out writes a dsm96/bench/v1 JSON snapshot (atomically) with
// the host recorded alongside the numbers; compare snapshots with
// metricsdiff -bench, which holds the determinism fields exact and
// allows relative drift on throughput.
//
// -engine-profile FILE writes the last cell's engine self-profile
// (schema dsm96/engine-profile/v1, atomically): merge-window accounting
// and lookahead histograms in a deterministic block, per-shard
// busy/merge-wait wall time in a host block. The per-cell table also
// prints the merge-wait fraction — the coordinator's serial share of
// the run, the number Amdahl charges against further worker scaling.
// The bench snapshot schema itself is unchanged.
//
// -require-speedup R fails the run unless, for every mesh size, the
// best worker count reaches R times the events/sec of workers=1. Only
// meaningful on a host with enough cores; scripts/bench.sh applies it
// conditionally.
//
// Writing a snapshot (-out) refuses outright on a host with fewer than
// 4 CPUs: the throughput columns of such a snapshot are measurements of
// time-slicing, not of the engine, and a checked-in artifact must never
// look comparable to one from real hardware. -force-host overrides the
// refusal for local inspection (the host block still records the true
// num_cpu, and metricsdiff -trend refuses cross-class throughput
// comparison regardless).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/experiments"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/tmk"
)

// BenchSchema tags the snapshot format for metricsdiff -bench.
const BenchSchema = "dsm96/bench/v1"

// Snapshot is the checked-in benchmark artifact: one cell per mesh size
// x worker count, plus the host it was measured on. Determinism fields
// (fingerprint, events, sim_cycles) are exact machine-independent
// contracts; throughput fields are only comparable on similar hosts.
type Snapshot struct {
	Schema   string `json:"schema"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`
	Host     Host   `json:"host"`
	Cells    []Cell `json:"cells"`
}

// Host records where the throughput numbers were measured.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Cell is one measured configuration.
type Cell struct {
	Mesh         int     `json:"mesh"`
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	SimCycles    int64   `json:"sim_cycles"`
	Fingerprint  string  `json:"fingerprint"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad list element %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	meshList := flag.String("mesh", "64,128,256", "comma-separated mesh sizes (node counts)")
	workerList := flag.String("workers", "1,2,4,8", "comma-separated engine worker counts")
	appName := flag.String("app", "water", "application to simulate (must scale to the largest mesh)")
	proto := flag.String("proto", "I+P+D", "protocol (TreadMarks variants; AURC would pin workers to 1)")
	scale := flag.String("scale", "tiny", "problem scale: tiny, default")
	reps := flag.Int("reps", 1, "repetitions per cell; the fastest wall time wins")
	out := flag.String("out", "", "write a dsm96/bench/v1 snapshot JSON to this file (atomic)")
	requireSpeedup := flag.Float64("require-speedup", 0, "fail unless every mesh's best worker count reaches this multiple of workers=1 events/sec (0 = off)")
	forceHost := flag.Bool("force-host", false, "write a snapshot even on a host with fewer than 4 CPUs (throughput will reflect time-slicing)")
	engineProfileOut := flag.String("engine-profile", "", "write the last cell's engine self-profile JSON (schema dsm96/engine-profile/v1) to this file (atomic)")
	flag.Parse()

	if *out != "" && runtime.NumCPU() < 4 && !*forceHost {
		fmt.Fprintf(os.Stderr,
			"bench: refusing to write a snapshot on a %d-CPU host: throughput would measure time-slicing, not the engine (need 4+ CPUs, or -force-host to override)\n",
			runtime.NumCPU())
		os.Exit(1)
	}

	meshes, err := parseInts(*meshList)
	if err == nil {
		var werr error
		if _, werr = parseInts(*workerList); werr != nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	workerCounts, _ := parseInts(*workerList)

	mode, ok := tmk.ParseMode(*proto)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown protocol %q\n", *proto)
		os.Exit(2)
	}
	newApp := func() (dsm.App, error) {
		if *scale == "default" {
			return apps.Default(*appName)
		}
		return apps.Tiny(*appName)
	}

	snap := Snapshot{
		Schema:   BenchSchema,
		App:      *appName,
		Protocol: mode.String(),
		Host: Host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}

	fmt.Printf("%-6s %-8s %12s %14s %18s %12s %10s\n",
		"mesh", "workers", "events", "sim cycles", "fingerprint", "events/sec", "merge-wait")
	failed := false
	var lastProfile *sim.EngineProfile
	for _, mesh := range meshes {
		var base Cell
		for wi, w := range workerCounts {
			cell := Cell{Mesh: mesh, Workers: w, WallNS: int64(1) << 62}
			var prof *sim.EngineProfile
			for r := 0; r < *reps; r++ {
				app, err := newApp()
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(2)
				}
				cfg := params.Mesh(mesh)
				spec := core.TM(mode)
				spec.Workers = w
				start := time.Now()
				res, err := core.Run(cfg, spec, app)
				wall := time.Since(start)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bench: mesh=%d workers=%d: %v\n", mesh, w, err)
					os.Exit(1)
				}
				cell.Events = res.EventsRun
				cell.SimCycles = int64(res.RunningTime)
				cell.Fingerprint = fmt.Sprintf("%016x", res.EventFingerprint)
				if ns := wall.Nanoseconds(); ns < cell.WallNS {
					cell.WallNS = ns
					prof = res.EngineProfile
				}
			}
			lastProfile = prof
			cell.EventsPerSec = float64(cell.Events) / (float64(cell.WallNS) / 1e9)
			if wi == 0 {
				base = cell
			} else if cell.Fingerprint != base.Fingerprint ||
				cell.Events != base.Events || cell.SimCycles != base.SimCycles {
				fmt.Fprintf(os.Stderr,
					"bench: DETERMINISM VIOLATION at mesh=%d: workers=%d fired (%s, %d events, %d cycles), workers=%d fired (%s, %d events, %d cycles)\n",
					mesh, base.Workers, base.Fingerprint, base.Events, base.SimCycles,
					w, cell.Fingerprint, cell.Events, cell.SimCycles)
				failed = true
			}
			snap.Cells = append(snap.Cells, cell)
			fmt.Printf("%-6d %-8d %12d %14d %18s %12.0f %9.1f%%\n",
				mesh, w, cell.Events, cell.SimCycles, cell.Fingerprint,
				cell.EventsPerSec, 100*prof.MergeWaitFraction())
		}
		if *requireSpeedup > 0 {
			best := base.EventsPerSec
			for _, c := range snap.Cells {
				if c.Mesh == mesh && c.EventsPerSec > best {
					best = c.EventsPerSec
				}
			}
			if best < *requireSpeedup*base.EventsPerSec {
				fmt.Fprintf(os.Stderr,
					"bench: mesh=%d best throughput %.0f ev/s is only %.2fx of workers=%d (%.0f ev/s); need %.2fx\n",
					mesh, best, best/base.EventsPerSec, base.Workers, base.EventsPerSec, *requireSpeedup)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if *out != "" {
		err := experiments.WriteFileAtomic(*out, snap.WriteJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot: %s\n", *out)
	}
	if *engineProfileOut != "" {
		// The last cell's profile (largest mesh, highest worker count):
		// the configuration where the merge barrier matters most. The
		// snapshot schema (dsm96/bench/v1) is unchanged — the profile is
		// a separate artifact with its own schema tag.
		err := experiments.WriteFileAtomic(*engineProfileOut, lastProfile.WriteJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("engine-profile: %s (%d worker(s), merge-wait %.1f%% of run wall time)\n",
			*engineProfileOut, lastProfile.Workers, 100*lastProfile.MergeWaitFraction())
	}
}

// WriteJSON serializes the snapshot as indented JSON with a trailing
// newline (structs and slices only, so the byte stream is deterministic
// for fixed measurements).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
