package experiments

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"dsm96/internal/params"
)

// Regenerate the backend golden file after an INTENTIONAL protocol,
// timing, or profile-constant change with:
//
//	go test ./internal/experiments -run TestBackendGoldens -update-backend-golden
//
// Any other diff means a profile's event schedule drifted — the rdma and
// cxl ladders are quoted in EXPERIMENTS.md and must stay reproducible.
var updateBackendGolden = flag.Bool("update-backend-golden", false,
	"rewrite testdata/golden_backends.txt from the current simulator")

const backendGoldenPath = "testdata/golden_backends.txt"

func cellKey(c BackendCell) string { return c.Profile + "/" + c.App + "/" + c.Protocol }

func cellLine(c BackendCell) string {
	return fmt.Sprintf("%-8s %-6s %-8s cycles=%d events=%d fingerprint=%016x",
		c.Profile, c.App, c.Protocol, c.Cycles, c.Events, c.Fingerprint)
}

func parseBackendGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(backendGoldenPath)
	if err != nil {
		t.Fatalf("missing backend golden file (regenerate with -update-backend-golden): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("bad backend golden line %q", line)
		}
		out[fields[0]+"/"+fields[1]+"/"+fields[2]] = normalizeSpaces(line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func normalizeSpaces(s string) string { return strings.Join(strings.Fields(s), " ") }

// TestBackendGoldens pins the cross-backend ladder: every (builtin
// profile, app, protocol) cell's cycles, event count, and fingerprint.
// It also cross-checks the pci1996 rows against golden_cycles.txt —
// running through a profile must be bit-identical to running the
// defaults — and re-runs one ladder to prove repeat determinism.
func TestBackendGoldens(t *testing.T) {
	cells, err := CrossBackendLadder(ScaleTiny, nil)
	if err != nil {
		t.Fatal(err)
	}

	if *updateBackendGolden {
		var sb strings.Builder
		sb.WriteString("# Golden cross-backend ladder: ScaleTiny inputs, one row per\n")
		sb.WriteString("# builtin profile x app x protocol (see internal/experiments/backends.go).\n")
		sb.WriteString("# The pci1996 rows must agree with golden_cycles.txt bit-for-bit.\n")
		sb.WriteString("# Regenerate after an intentional change with:\n")
		sb.WriteString("#   go test ./internal/experiments -run TestBackendGoldens -update-backend-golden\n")
		for _, c := range cells {
			sb.WriteString(cellLine(c))
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(backendGoldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d rows", backendGoldenPath, len(cells))
		return
	}

	want := parseBackendGolden(t)
	seen := make(map[string]bool)
	for _, c := range cells {
		seen[cellKey(c)] = true
		w, ok := want[cellKey(c)]
		if !ok {
			t.Errorf("%s: not in backend golden file (regenerate with -update-backend-golden)", cellKey(c))
			continue
		}
		if got := normalizeSpaces(cellLine(c)); got != w {
			t.Errorf("%s changed:\n  golden: %s\n  got:    %s", cellKey(c), w, got)
		}
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("%s: in backend golden file but not in the ladder", k)
		}
	}

	// pci1996 cross-check: the profile path must reproduce the default-
	// machine goldens exactly, for every ladder cell golden_cycles.txt
	// also pins (Base, I+P+D, AURC — golden_cycles has no plain I).
	defaults := parseGolden(t)
	checked := 0
	for _, c := range cells {
		if c.Profile != params.BackendPCI1996 {
			continue
		}
		w, ok := defaults[c.App+"/"+c.Protocol]
		if !ok {
			continue
		}
		checked++
		if c.Cycles != w.Cycles || c.Events != w.Events || c.Fingerprint != w.Fingerprint {
			t.Errorf("pci1996 %s/%s diverges from the default-machine golden:\n  default: %s\n  profile: %s",
				c.App, c.Protocol, w, cellLine(c))
		}
	}
	if checked == 0 {
		t.Error("pci1996 cross-check matched no golden_cycles.txt rows — key scheme drifted?")
	}
}

// TestBackendLadderDeterminism re-runs the modern-backend ladders under
// GOMAXPROCS=1 and compares fingerprints cell-by-cell: per-profile
// schedules must be independent of host parallelism and run history.
func TestBackendLadderDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder repeat is expensive; run without -short")
	}
	profiles := []*params.Profile{}
	for _, n := range []string{params.BackendRDMA, params.BackendCXL} {
		p, err := params.Builtin(n)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	first, err := CrossBackendLadder(ScaleTiny, profiles)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	second, err := CrossBackendLadder(ScaleTiny, profiles)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("cell count changed across repeats: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Fingerprint != b.Fingerprint || a.Cycles != b.Cycles || a.Events != b.Events {
			t.Errorf("%s not deterministic across GOMAXPROCS:\n  run1: %s\n  run2: %s",
				cellKey(a), cellLine(a), cellLine(b))
		}
	}
}
