package experiments

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// Regenerate the golden file after an INTENTIONAL protocol or timing
// change with:
//
//	go test ./internal/experiments -run TestGoldenCycles -update-golden
//
// Any other diff in this file is an unintended semantic change: the
// engine fast path, scratch buffers, and queue rewrites must preserve
// simulated cycle totals and event schedules bit-for-bit.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_cycles.txt from the current simulator")

const goldenPath = "testdata/golden_cycles.txt"

// goldenSpecs is the app x protocol matrix pinned by the golden test.
func goldenSpecs() []core.Spec {
	return []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.ID), core.TM(tmk.IPD),
		core.AURC(false), core.AURC(true),
	}
}

type goldenRow struct {
	App, Protocol string
	Cycles        int64
	Events        uint64
	Fingerprint   uint64
}

func (r goldenRow) key() string { return r.App + "/" + r.Protocol }

func (r goldenRow) String() string {
	return fmt.Sprintf("%-8s %-8s cycles=%d events=%d fingerprint=%016x",
		r.App, r.Protocol, r.Cycles, r.Events, r.Fingerprint)
}

// runGoldenMatrix simulates every ScaleTiny app x protocol cell.
func runGoldenMatrix(t *testing.T) []goldenRow {
	t.Helper()
	names := apps.Names()
	specs := goldenSpecs()
	rows := make([]goldenRow, len(names)*len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	var mu sync.Mutex
	var firstErr error
	for ai, name := range names {
		for si, spec := range specs {
			ai, si, name, spec := ai, si, name, spec
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				app, err := apps.Tiny(name)
				if err == nil {
					var res *core.Result
					res, err = core.Run(params.Default(), spec, app)
					if err == nil {
						rows[ai*len(specs)+si] = goldenRow{
							App:         name,
							Protocol:    spec.String(),
							Cycles:      res.RunningTime,
							Events:      res.EventsRun,
							Fingerprint: res.EventFingerprint,
						}
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s/%s: %w", name, spec, err)
					}
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return rows
}

func parseGolden(t *testing.T) map[string]goldenRow {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	defer f.Close()
	out := make(map[string]goldenRow)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var r goldenRow
		if _, err := fmt.Sscanf(line, "%s %s cycles=%d events=%d fingerprint=%x",
			&r.App, &r.Protocol, &r.Cycles, &r.Events, &r.Fingerprint); err != nil {
			t.Fatalf("bad golden line %q: %v", line, err)
		}
		out[r.key()] = r
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func writeGolden(t *testing.T, rows []goldenRow) {
	t.Helper()
	sorted := append([]goldenRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key() < sorted[j].key() })
	var sb strings.Builder
	sb.WriteString("# Golden simulated-cycle totals and event-stream fingerprints:\n")
	sb.WriteString("# ScaleTiny inputs, params.Default(), one row per app x protocol.\n")
	sb.WriteString("# Regenerate after an intentional protocol/timing change with:\n")
	sb.WriteString("#   go test ./internal/experiments -run TestGoldenCycles -update-golden\n")
	for _, r := range sorted {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCycles pins the exact simulated running time, event count,
// and event-stream fingerprint of every ScaleTiny app x protocol run.
// It fails loudly on any unintended semantic change that would silently
// skew the paper's figures.
func TestGoldenCycles(t *testing.T) {
	got := runGoldenMatrix(t)
	if *updateGolden {
		writeGolden(t, got)
		t.Logf("rewrote %s with %d rows", goldenPath, len(got))
		return
	}
	want := parseGolden(t)
	seen := make(map[string]bool)
	for _, g := range got {
		seen[g.key()] = true
		w, ok := want[g.key()]
		if !ok {
			t.Errorf("%s: not in golden file (regenerate with -update-golden)", g.key())
			continue
		}
		if g != w {
			t.Errorf("%s changed:\n  golden: %s\n  got:    %s\n"+
				"(intentional? regenerate with: go test ./internal/experiments -run TestGoldenCycles -update-golden)",
				g.key(), w, g)
		}
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("%s: in golden file but not in the test matrix", k)
		}
	}
}
