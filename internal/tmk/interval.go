package tmk

import (
	"fmt"
	"sort"

	"dsm96/internal/trace"

	"dsm96/internal/lrc"
)

// closeInterval ends the node's current interval if it performed any
// writes (pages with live twins / write vectors carry write notices in
// every interval until their diff is created, mirroring TreadMarks'
// twin-driven notice generation). Returns the new interval or nil.
func (n *pnode) closeInterval() *lrc.Interval {
	if len(n.dirty) == 0 {
		return nil
	}
	seq := n.vts[n.id] + 1
	iv := &lrc.Interval{
		Owner: n.id,
		Seq:   seq,
		VTS:   n.vts.Clone(),
		Pages: n.sortedDirty(),
	}
	iv.VTS[n.id] = seq
	n.vts[n.id] = seq
	n.ivals[n.id] = append(n.ivals[n.id], iv)
	for _, pg := range iv.Pages {
		if pe := n.page(pg); pe.firstIval == 0 {
			pe.firstIval = seq
		}
		n.emit(pg, trace.KindIntervalClose, "seq=%d pages=%d", seq, len(iv.Pages))
	}
	return iv
}

// storeInterval records an interval received from elsewhere. Intervals of
// each owner always arrive in sequence order (senders ship contiguous
// ranges); a gap indicates a protocol bug.
func (n *pnode) storeInterval(iv *lrc.Interval) {
	have := int32(len(n.ivals[iv.Owner]))
	switch {
	case iv.Seq <= have:
		return // duplicate
	case iv.Seq == have+1:
		n.ivals[iv.Owner] = append(n.ivals[iv.Owner], iv)
	default:
		panic(fmt.Sprintf("tmk: node %d got interval (%d,%d) with only %d stored",
			n.id, iv.Owner, iv.Seq, have))
	}
}

// integrate stores a batch of interval records and applies their write
// notices: pages they name are invalidated (keeping any live twin — the
// local modifications survive and incoming diffs are merged into both the
// page and the twin). The node's vector timestamp absorbs everything the
// batch makes visible. Pure state change; timing is charged by callers.
func (n *pnode) integrate(ivs []*lrc.Interval) {
	for _, iv := range ivs {
		n.storeInterval(iv)
		if iv.Owner == n.id {
			continue
		}
		// Skip only intervals whose notices this node has actually
		// processed. The vector timestamp is NOT a safe test here: an
		// earlier interval in the same batch can carry a VTS covering a
		// later one, and using it would silently drop the later
		// interval's invalidations.
		if iv.Seq <= n.noticed[iv.Owner] {
			continue
		}
		for _, pg := range iv.Pages {
			pe := n.page(pg)
			if pe.applied[iv.Owner] >= iv.Seq {
				continue // data already incorporated
			}
			n.emit(pg, trace.KindNotice, "(%d,%d) applied=%d", iv.Owner, iv.Seq, pe.applied[iv.Owner])
			pe.pending = append(pe.pending, lrc.WriteNotice{Page: pg, Owner: iv.Owner, Seq: iv.Seq})
			if pe.state != stInvalid {
				pe.state = stInvalid
				n.profile(pg).Invalidations++
				if pe.prefetchedUnused {
					pe.prefetchedUnused = false
					n.st.UselessPrefetch++
					pe.uselessStreak++
				}
				if n.pr.mode.Prefetch() && !pe.queuedPrefetch {
					pe.queuedPrefetch = true
					n.prefetchQueue = append(n.prefetchQueue, pg)
				}
			}
		}
		n.noticed[iv.Owner] = iv.Seq
		n.vts.Max(iv.VTS)
	}
	n.checkVTSRecords("integrate")
}

// checkVTSRecords asserts the invariant that every interval the vector
// timestamp claims has a stored record (debug aid; cheap).
func (n *pnode) checkVTSRecords(where string) {
	for o := range n.vts {
		if o != n.id && int(n.vts[o]) > len(n.ivals[o]) {
			culprits := ""
			for oo := range n.vts {
				for _, iv := range n.ivals[oo] {
					if iv.VTS[o] >= n.vts[o] {
						culprits += fmt.Sprintf(" (%d,%d)vts=%v", iv.Owner, iv.Seq, iv.VTS)
					}
				}
			}
			panic(fmt.Sprintf("tmk: node %d at %s: vts[%d]=%d but only %d records; culprits:%s",
				n.id, where, o, n.vts[o], len(n.ivals[o]), culprits))
		}
	}
}

// missingIntervals collects every interval the target (with vector
// timestamp `have`) lacks, excluding the target's own intervals (it has
// those by construction). Intervals are returned grouped by owner in
// ascending sequence order — contiguous ranges, as storeInterval needs.
func (n *pnode) missingIntervals(have lrc.VTS, exclude int) []*lrc.Interval {
	var out []*lrc.Interval
	for o := 0; o < len(n.vts); o++ {
		if o == exclude {
			continue
		}
		for s := have[o] + 1; s <= n.vts[o]; s++ {
			out = append(out, n.ivals[o][s-1])
		}
	}
	return out
}

// intervalsWireBytes sizes a batch of interval records on the network:
// a header plus per interval its vector timestamp and one write notice
// per page.
func intervalsWireBytes(ivs []*lrc.Interval, nprocs int) int {
	bytes := 16
	for _, iv := range ivs {
		bytes += 16 + 4*nprocs + lrc.WriteNoticeWireBytes*len(iv.Pages)
	}
	return bytes
}

// noticeCount totals the write notices in a batch.
func noticeCount(ivs []*lrc.Interval) int {
	total := 0
	for _, iv := range ivs {
		total += len(iv.Pages)
	}
	return total
}

// listCost is the protocol-software cost of walking a batch of intervals
// and their notices (Table 1's 6 cycles per list element).
func (n *pnode) listCost(ivs []*lrc.Interval) int64 {
	return n.pr.cfg.ListProcessing * int64(len(ivs)+noticeCount(ivs))
}

// pendingByOwner groups a page's pending notices: for each owner, the
// lowest already-applied sequence (the reply must cover everything after
// it). Owners are returned in ascending order for determinism. The
// result lives in scratch (grown as needed); owner sets are tiny, so the
// dedup is a linear scan rather than a map.
func pendingByOwner(pe *page, scratch []int) []int {
	owners := scratch[:0]
outer:
	for _, wn := range pe.pending {
		for _, o := range owners {
			if o == wn.Owner {
				continue outer
			}
		}
		owners = append(owners, wn.Owner)
	}
	sort.Ints(owners)
	return owners
}

// prunePending drops notices whose data has been applied.
func prunePending(pe *page) {
	kept := pe.pending[:0]
	for _, wn := range pe.pending {
		if pe.applied[wn.Owner] < wn.Seq {
			kept = append(kept, wn)
		}
	}
	pe.pending = kept
}
