package tmk_test

import (
	"testing"

	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// counterApp increments a lock-protected shared counter `total` times,
// the increments statically striped over processors: the classic
// migratory pattern (token + data chase each other between processors).
type counterApp struct {
	total  int
	cell   int64
	result float64
}

func (a *counterApp) Name() string { return "counter" }
func (a *counterApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.cell = h.AllocPages(1)
}
func (a *counterApp) Body(env *dsm.Env) {
	for r := env.ID; r < a.total; r += env.NProcs() {
		env.Lock(1)
		env.WI(a.cell, env.RI(a.cell)+1)
		env.Unlock(1)
		env.Compute(50)
	}
	env.Barrier(0)
	if env.ID == 0 {
		a.result = float64(env.RI(a.cell))
	}
	env.Barrier(1)
}
func (a *counterApp) Result() float64 { return a.result }

// producerApp has proc 0 fill an array; after a barrier everyone sums it.
type producerApp struct {
	n      int
	data   int64
	sums   int64
	result float64
}

func (a *producerApp) Name() string { return "producer" }
func (a *producerApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.data = h.AllocPages((4*a.n + 4095) / 4096)
	a.sums = h.AllocPages(1)
}
func (a *producerApp) Body(env *dsm.Env) {
	if env.ID == 0 {
		for i := 0; i < a.n; i++ {
			env.WI(a.data+int64(4*i), i)
		}
	}
	env.Barrier(0)
	// Each processor sums its static stripe; stripes partition the array,
	// so the grand total is independent of the processor count.
	total := 0
	for i := env.ID; i < a.n; i += env.NProcs() {
		total += env.RI(a.data + int64(4*i))
	}
	env.WI(a.sums+int64(4*env.ID), total)
	env.Barrier(1)
	if env.ID == 0 {
		all := 0
		for p := 0; p < env.NProcs(); p++ {
			all += env.RI(a.sums + int64(4*p))
		}
		a.result = float64(all)
	}
	env.Barrier(2)
}
func (a *producerApp) Result() float64 { return a.result }

// falseShareApp makes every processor write a disjoint slice of the SAME
// pages between barriers — multiple concurrent writers per page, the
// case diff merging exists for.
type falseShareApp struct {
	words  int
	iters  int
	data   int64
	result float64
}

func (a *falseShareApp) Name() string { return "falseshare" }
func (a *falseShareApp) Setup(h *lrc.Heap) {
	a.result = 0
	a.data = h.AllocPages((4*a.words + 4095) / 4096)
}
func (a *falseShareApp) Body(env *dsm.Env) {
	np := env.NProcs()
	for it := 0; it < a.iters; it++ {
		for w := env.ID; w < a.words; w += np {
			env.WI(a.data+int64(4*w), env.RI(a.data+int64(4*w))+w+it)
		}
		env.Barrier(it)
	}
	if env.ID == 0 {
		total := 0
		for w := 0; w < a.words; w++ {
			total += env.RI(a.data + int64(4*w))
		}
		a.result = float64(total)
	}
	env.Barrier(a.iters + 1)
}
func (a *falseShareApp) Result() float64 { return a.result }

func smallCfg(procs int) params.Config {
	cfg := params.Default()
	cfg.Processors = procs
	return cfg
}

func TestCounterAllModes(t *testing.T) {
	for _, m := range tmk.Modes {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			app := &counterApp{total: 20}
			r, err := core.Run(smallCfg(4), core.TM(m), app)
			if err != nil {
				t.Fatal(err)
			}
			if r.AppResult != 20 {
				t.Fatalf("counter = %v, want 20", r.AppResult)
			}
			if r.RunningTime <= 0 {
				t.Fatal("no time elapsed")
			}
		})
	}
}

func TestProducerConsumerAllModes(t *testing.T) {
	for _, m := range tmk.Modes {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			app := &producerApp{n: 2000} // spans ~2 pages
			r, err := core.Run(smallCfg(4), core.TM(m), app)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(2000 * 1999 / 2)
			if r.AppResult != want {
				t.Fatalf("result = %v, want %v", r.AppResult, want)
			}
		})
	}
}

func TestFalseSharingMerge(t *testing.T) {
	for _, m := range []tmk.Mode{tmk.Base, tmk.ID, tmk.P} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			app := &falseShareApp{words: 512, iters: 3} // half a page, 4 writers
			if _, err := core.Run(smallCfg(4), core.TM(m), app); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		app := &counterApp{total: 16}
		r, err := core.Run(smallCfg(4), core.TM(tmk.Base), app)
		if err != nil {
			t.Fatal(err)
		}
		return r.RunningTime, r.Messages
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, m1, t2, m2)
	}
}

func TestBreakdownCoversRuntime(t *testing.T) {
	app := &producerApp{n: 3000}
	r, err := core.Run(smallCfg(4), core.TM(tmk.Base), app)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range r.Breakdown.PerProc {
		total := ps.Total()
		// Every processor's accounted time must roughly equal the wall
		// time (early finishers account less).
		if total > r.RunningTime {
			t.Errorf("proc %d accounted %d > running time %d", i, total, r.RunningTime)
		}
		if total < r.RunningTime/2 {
			t.Errorf("proc %d accounted only %d of %d", i, total, r.RunningTime)
		}
	}
}

func TestDiffWorkMovesOffProcessor(t *testing.T) {
	app1 := &falseShareApp{words: 1024, iters: 4}
	base, err := core.Run(smallCfg(4), core.TM(tmk.Base), app1)
	if err != nil {
		t.Fatal(err)
	}
	app2 := &falseShareApp{words: 1024, iters: 4}
	id, err := core.Run(smallCfg(4), core.TM(tmk.ID), app2)
	if err != nil {
		t.Fatal(err)
	}
	if base.Breakdown.DiffPercent() <= 0 {
		t.Error("base run reports no processor diff time")
	}
	if id.Breakdown.DiffPercent() >= base.Breakdown.DiffPercent() {
		t.Errorf("I+D diff%% (%v) not below Base (%v)",
			id.Breakdown.DiffPercent(), base.Breakdown.DiffPercent())
	}
	s := id.Breakdown.Sum()
	if s.TwinsCreated != 0 {
		t.Errorf("I+D created %d twins, want 0", s.TwinsCreated)
	}
}

func TestPrefetchCountersPopulate(t *testing.T) {
	app := &falseShareApp{words: 1024, iters: 5}
	r, err := core.Run(smallCfg(4), core.TM(tmk.P), app)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Breakdown.Sum()
	if s.Prefetches == 0 {
		t.Error("P mode issued no prefetches")
	}
}

func TestSingleProcessorRuns(t *testing.T) {
	app := &producerApp{n: 1000}
	r, err := core.Run(smallCfg(1), core.TM(tmk.Base), app)
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages != 0 {
		t.Errorf("single-node run sent %d network messages", r.Messages)
	}
}

func TestLockContentionChain(t *testing.T) {
	// Many processors hammer one lock: token must chain through all.
	app := &counterApp{total: 24}
	r, err := core.Run(smallCfg(8), core.TM(tmk.Base), app)
	if err != nil {
		t.Fatal(err)
	}
	if r.AppResult != 24 {
		t.Fatalf("counter = %v, want 24", r.AppResult)
	}
	s := r.Breakdown.Sum()
	if s.LockAcquires != 24 {
		t.Errorf("lock acquires = %d, want 24", s.LockAcquires)
	}
	if s.Cycles[stats.Synch] == 0 {
		t.Error("no synchronization time recorded under contention")
	}
}

func TestStatsCounters(t *testing.T) {
	app := &producerApp{n: 2000}
	r, err := core.Run(smallCfg(4), core.TM(tmk.Base), app)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Breakdown.Sum()
	if s.PageFaults == 0 || s.DiffsCreated == 0 || s.DiffsApplied == 0 {
		t.Errorf("protocol counters empty: %+v", s)
	}
	if s.TwinsCreated == 0 {
		t.Error("base mode created no twins")
	}
	if r.Messages == 0 || r.Bytes == 0 {
		t.Error("no network traffic recorded")
	}
	if s.Barriers != 4*3 {
		t.Errorf("barriers = %d, want 12", s.Barriers)
	}
}

func TestPrefetchLeadMeasured(t *testing.T) {
	app := &falseShareApp{words: 1024, iters: 5}
	r, err := core.Run(smallCfg(4), core.TM(tmk.P), app)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Breakdown.Sum()
	if s.UsefulPrefetch == 0 {
		t.Skip("no prefetch used in this configuration")
	}
	lead := s.AvgPrefetchLead()
	if lead <= 0 {
		t.Fatalf("prefetch lead = %v, want > 0", lead)
	}
	// The paper quotes 5K-600K cycles between prefetch point and use;
	// our scaled workloads should land in the same broad range.
	if lead > 1e7 {
		t.Fatalf("prefetch lead %v implausibly large", lead)
	}
}

func TestStructuredTrace(t *testing.T) {
	buf := trace.New(256)
	spec := core.TM(tmk.Base)
	spec.Tracer = buf
	app := &producerApp{n: 2000}
	if _, err := core.Run(smallCfg(4), spec, app); err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range buf.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []trace.Kind{trace.KindFault, trace.KindNotice, trace.KindDiffCreate, trace.KindDiffApply, trace.KindWritable} {
		if kinds[want] == 0 && buf.Total() < 256 {
			t.Errorf("no %v events recorded (kinds: %v)", want, kinds)
		}
	}
	if buf.Total() == 0 {
		t.Fatal("trace empty")
	}
}

func TestLazyHybridCorrectAndFewerFaults(t *testing.T) {
	// The migratory counter is the Lazy Hybrid sweet spot: the releaser
	// wrote exactly the page the acquirer needs.
	plain, err := core.Run(smallCfg(4), core.TM(tmk.Base), &counterApp{total: 32})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.TMOpt(tmk.Base, tmk.Options{LazyHybrid: true})
	hybrid, err := core.Run(smallCfg(4), spec, &counterApp{total: 32})
	if err != nil {
		t.Fatal(err)
	}
	pf, hf := plain.Breakdown.Sum().PageFaults, hybrid.Breakdown.Sum().PageFaults
	if hf >= pf {
		t.Errorf("hybrid did not reduce faults: %d vs %d", hf, pf)
	}
	if hybrid.Protocol != "Base(hybrid)" {
		t.Errorf("label = %q", hybrid.Protocol)
	}
}

func TestLazyHybridMatrix(t *testing.T) {
	// Lazy Hybrid under every base mode and several apps must stay
	// oracle-correct.
	for _, m := range []tmk.Mode{tmk.Base, tmk.ID, tmk.IPD} {
		for _, app := range []dsm.App{
			&counterApp{total: 24},
			&producerApp{n: 2000},
			&falseShareApp{words: 1024, iters: 3},
		} {
			spec := core.TMOpt(m, tmk.Options{LazyHybrid: true})
			if _, err := core.Run(smallCfg(8), spec, app); err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
		}
	}
}
