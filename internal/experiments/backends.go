// The cross-backend ladder: the paper's protocol ladder (Base -> I ->
// I+P+D -> AURC) re-run on every interconnect backend, answering the
// 2026 question — which overlap mechanisms still pay off when the
// interrupt is gone from the data path and bandwidth is 500x Table 1?
// Each cell is a full oracle-validated simulation; the schedule is a
// pure function of (profile, protocol, app), so the cells carry
// fingerprints and are pinned by testdata/golden_backends.txt.

package experiments

import (
	"fmt"
	"strings"

	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/tmk"
)

// LadderSpecs is the protocol ladder measured per backend: no controller,
// controller-overlapped interrupts, the full overlap stack, and AURC
// (automatic-update hardware instead of diffs).
func LadderSpecs() []core.Spec {
	return []core.Spec{
		core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.IPD), core.AURC(false),
	}
}

// LadderApps is the application slice measured per backend: a lock-heavy
// branch-and-bound search, a barrier-heavy sort with page-grain false
// sharing, and the paper's sensitivity-study workload.
func LadderApps() []string { return []string{"tsp", "radix", "em3d"} }

// BackendCell is one (profile, app, protocol) measurement.
type BackendCell struct {
	Profile     string
	Backend     string
	App         string
	Protocol    string
	Cycles      int64
	Events      uint64
	Fingerprint uint64
	// Millis is wall-clock time under the profile's timebase.
	Millis float64
	// NormVsBase is Cycles relative to the same profile+app Base run
	// (1.0 = no change), the ladder's payoff measure.
	NormVsBase float64
}

// CrossBackendLadder runs LadderSpecs x LadderApps on every given
// profile (nil = all builtins) at the given scale. Cells come back in
// profile-major, app-, then ladder-order.
func CrossBackendLadder(sc Scale, profiles []*params.Profile) ([]BackendCell, error) {
	if profiles == nil {
		profiles = params.Builtins()
	}
	specs := LadderSpecs()
	names := LadderApps()
	runs := make([]Run, len(profiles)*len(names)*len(specs))
	var rss []runSpec
	idx := func(bi, ai, si int) int { return (bi*len(names)+ai)*len(specs) + si }
	for bi, prof := range profiles {
		for ai, name := range names {
			for si, sp := range specs {
				rss = append(rss, runSpec{
					app: name, spec: sp, cfg: prof.Config(), scale: sc,
					out: &runs[idx(bi, ai, si)],
				})
			}
		}
	}
	execute(rss)
	cells := make([]BackendCell, 0, len(runs))
	for bi, prof := range profiles {
		for ai, name := range names {
			var base int64
			for si, sp := range specs {
				r := runs[idx(bi, ai, si)]
				if r.Err != nil {
					return nil, fmt.Errorf("ladder %s/%s/%s: %w", prof.Name, name, sp, r.Err)
				}
				if si == 0 {
					base = r.Result.RunningTime
				}
				cells = append(cells, BackendCell{
					Profile:     prof.Name,
					Backend:     prof.Backend,
					App:         name,
					Protocol:    r.Protocol,
					Cycles:      r.Result.RunningTime,
					Events:      r.Result.EventsRun,
					Fingerprint: r.Result.EventFingerprint,
					Millis:      prof.Params.Millis(r.Result.RunningTime),
					NormVsBase:  float64(r.Result.RunningTime) / float64(base),
				})
			}
		}
	}
	return cells, nil
}

// FormatBackendLadder renders the ladder as one table per profile:
// absolute time in the profile's own timebase plus the normalized
// ladder, the shape EXPERIMENTS.md quotes.
func FormatBackendLadder(cells []BackendCell) string {
	var sb strings.Builder
	sb.WriteString("Cross-backend protocol ladder (time normalized to each backend's Base)\n")
	last := ""
	for _, c := range cells {
		if c.Profile != last {
			fmt.Fprintf(&sb, "  [%s]\n", c.Profile)
			last = c.Profile
		}
		fmt.Fprintf(&sb, "    %-6s %-8s %12d cycles %10.3f ms   %6.3fx\n",
			c.App, c.Protocol, c.Cycles, c.Millis, c.NormVsBase)
	}
	return sb.String()
}
