package experiments

import (
	"strings"
	"testing"

	"dsm96/internal/stats"
)

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Table 1", "4096 bytes", "200 cycles", "128 entries",
		"5 cycles/word", "7 cycles/word", "6 cycles/element"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Tiny(t *testing.T) {
	data, err := Fig1(ScaleTiny, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 6 {
		t.Fatalf("got %d apps, want 6", len(data))
	}
	for name, pts := range data {
		if len(pts) != 2 {
			t.Errorf("%s has %d points, want 2", name, len(pts))
		}
		for _, p := range pts {
			if p.Speedup <= 0 {
				t.Errorf("%s speedup at %d procs = %v", name, p.Procs, p.Speedup)
			}
		}
	}
	txt := FormatFig1(data)
	if !strings.Contains(txt, "Figure 1") || !strings.Contains(txt, "ocean") {
		t.Errorf("bad render:\n%s", txt)
	}
}

func TestFig2Tiny(t *testing.T) {
	rows, err := Fig2(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, c := range stats.Categories() {
			sum += r.Fraction[c]
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s fractions sum to %v", r.App, sum)
		}
		if r.Normalized != 100 {
			t.Errorf("%s normalized = %v, want 100 (self-baseline)", r.App, r.Normalized)
		}
	}
	txt := FormatBreakdownRows("Figure 2", rows)
	if !strings.Contains(txt, "busy") || !strings.Contains(txt, "diff-ops") {
		t.Errorf("bad render:\n%s", txt)
	}
}

func TestFig5to10Tiny(t *testing.T) {
	rows, err := Fig5to10("ocean", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d variants, want 6", len(rows))
	}
	if rows[0].Protocol != "Base" || rows[0].Normalized != 100 {
		t.Errorf("first row should be Base at 100%%: %+v", rows[0])
	}
	labels := []string{"Base", "I", "I+D", "P", "I+P", "I+P+D"}
	for i, r := range rows {
		if r.Protocol != labels[i] {
			t.Errorf("row %d = %s, want %s", i, r.Protocol, labels[i])
		}
	}
}

func TestFig11_12Tiny(t *testing.T) {
	data, err := Fig11_12(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 6 {
		t.Fatalf("got %d apps, want 6", len(data))
	}
	for name, rows := range data {
		if len(rows) != 3 {
			t.Errorf("%s has %d protocols, want 3", name, len(rows))
		}
		if rows[0].Protocol != "I+D" || rows[1].Protocol != "AURC" || rows[2].Protocol != "AURC+P" {
			t.Errorf("%s protocol order wrong: %s %s %s", name,
				rows[0].Protocol, rows[1].Protocol, rows[2].Protocol)
		}
	}
}

func TestSweepTiny(t *testing.T) {
	pts, err := Fig14(ScaleTiny, []float64{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Lower bandwidth must not be faster for either protocol.
	if pts[0].TMCycles < pts[1].TMCycles {
		t.Errorf("TM faster at 50MB/s (%d) than 200MB/s (%d)", pts[0].TMCycles, pts[1].TMCycles)
	}
	if pts[0].AURCCycles < pts[1].AURCCycles {
		t.Errorf("AURC faster at 50MB/s (%d) than 200MB/s (%d)", pts[0].AURCCycles, pts[1].AURCCycles)
	}
	txt := FormatSweep("Figure 14", "MB/s", pts)
	if !strings.Contains(txt, "Em3d-AURC") {
		t.Errorf("bad render:\n%s", txt)
	}
}

func TestAppAtScales(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny, ScaleDefault, ScalePaper} {
		for _, n := range []string{"tsp", "water", "radix", "barnes", "ocean", "em3d"} {
			if _, err := appAt(n, sc); err != nil {
				t.Errorf("appAt(%s, %d): %v", n, sc, err)
			}
		}
	}
	if _, err := appAt("bogus", ScalePaper); err == nil {
		t.Error("bogus app accepted")
	}
}

func TestPrefetchAblationTiny(t *testing.T) {
	rows, err := PrefetchAblation("ocean", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	want := []string{"I+D", "I+P+D", "I+P+D(always)", "I+P+D(adaptive)", "I+P+D(noprio)", "I+D(hybrid)"}
	for i, r := range rows {
		if r.Protocol != want[i] {
			t.Errorf("row %d = %q, want %q", i, r.Protocol, want[i])
		}
	}
	if rows[0].Normalized != 100 {
		t.Errorf("baseline not 100%%: %v", rows[0].Normalized)
	}
}
