// Package spans implements causal operation tracing for the simulator:
// every blocking protocol operation (read/write fault service, lock
// acquire, barrier arrival, prefetch) is tagged with an operation ID at
// the point the processor blocks, the ID travels with the protocol
// messages through controller job submission, network hops, and remote
// service, and one structured span record per operation comes back with
// a stage decomposition of where its cycles went.
//
// Like the timeline recorder (internal/timeline), the whole layer is
// nil-receiver safe: every method on a nil *Tracker or nil *Op is a
// no-op, so the protocols thread marks unconditionally and a disabled
// tracker costs nothing and cannot perturb the event schedule. The
// tracker only ever observes times the simulation already computed — it
// never sleeps, reserves, or schedules — so the engine fingerprint is
// bit-identical with spans on or off.
//
// Stage attribution works by milestones, not bracketed regions: the
// protocol calls Op.Mark(eng, stage, t) at the instant a stage *ends*,
// and End partitions the operation's [Start, End) window by assigning
// the gap since the previous milestone to the marked stage. Milestones
// may be recorded eagerly with future timestamps (resource reservations
// return their service window up front); End sorts them stably by time
// before partitioning, so attribution is deterministic and the stage
// cycles always sum exactly to End-Start.
//
// Parallel safety. On a sharded engine (sim.Engine.Parallelize) an op
// is touched from more than one shard: the requester begins it, remote
// nodes mark it while serving the request, and a single fetch can have
// several concurrent remote servers. The tracker therefore splits every
// operation into shard-local and globally-ordered halves. Shard-local
// state — the per-node cur pointer, Charged accounting, and the
// ctrl/net/blocked interval feeds — is only ever touched from the
// owning node's shard (net from the coordinator's serialized walk), so
// it needs no coordination. Everything whose *order* is global — ID
// assignment, milestone appends, stage computation, and the completion
// log — goes through sim.Engine.Deferred on the calling shard's view:
// during a window the closure is logged into the shard's fired record,
// and the coordinator's merge barrier replays it in global (time, seq)
// order — exactly the order a sequential run would have executed the
// same call inline. On a sequential engine Deferred is a plain call, so
// the sequential path is unchanged. The result is that IDs, mark
// insertion order (which breaks stable-sort ties between equal-time
// milestones), completion order, the JSONL artifact, and the report
// digest are byte-identical at any worker count.
package spans

import (
	"sort"

	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

// Kind classifies the blocking operation a span describes.
type Kind int

const (
	// OpReadFault is a read access fault: the faulting processor blocks
	// until a valid copy of the page (diffs or full page) is applied.
	OpReadFault Kind = iota
	// OpWriteFault is a write fault on a read-only copy: twin creation
	// (software, hardware-assisted, or controller-offloaded).
	OpWriteFault
	// OpLock is a lock acquire, from request to grant integration.
	OpLock
	// OpRelease is the grant work a releaser performs for a queued
	// waiter (it blocks the releaser, not the acquirer).
	OpRelease
	// OpBarrier is a barrier episode: arrival through departure.
	OpBarrier
	// OpPrefetch is a prefetch issued at an acquire: issue through the
	// page landing. The processor does not wait on it; its span is the
	// flight window, which overlap accounting credits as hidden latency.
	OpPrefetch
	// NumKinds bounds Kind for fixed-size per-kind tables.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case OpReadFault:
		return "read-fault"
	case OpWriteFault:
		return "write-fault"
	case OpLock:
		return "lock"
	case OpRelease:
		return "release"
	case OpBarrier:
		return "barrier"
	case OpPrefetch:
		return "prefetch"
	}
	return "op?"
}

// Stage is one slice of an operation's latency decomposition.
type Stage int

const (
	// StageWire is network time: request (and reply) hop traversal and
	// link queueing between the milestone before it and message arrival.
	StageWire Stage = iota
	// StageQueue is time spent waiting for service to begin: interrupt
	// queueing on a remote CPU or dispatch queueing in the controller.
	StageQueue
	// StageRemote is remote service occupancy: diff creation, page
	// capture, grant assembly — work done on the serving node.
	StageRemote
	// StageReply is reply delivery: from remote service completion to
	// the reply arriving back at the requester.
	StageReply
	// StageController is local completion work after the reply is in:
	// diff application, grant integration, twin setup.
	StageController
	// StageUnblock is the remainder: local issue overheads and the final
	// wakeup; operations that never leave the node (cached lock token)
	// land entirely here.
	StageUnblock
	// NumStages bounds Stage for fixed-size per-stage tables.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageWire:
		return "wire"
	case StageQueue:
		return "queue"
	case StageRemote:
		return "remote"
	case StageReply:
		return "reply"
	case StageController:
		return "controller"
	case StageUnblock:
		return "unblock"
	}
	return "stage?"
}

// mark is a stage-end milestone recorded along an operation's path.
type mark struct {
	t     sim.Time
	stage Stage
}

// Op is one in-flight or completed operation span. Protocol code holds
// a *Op (possibly nil when tracing is off) and calls Mark unconditionally.
type Op struct {
	// ID is the operation's sequence number, assigned at Begin in
	// schedule order, so IDs are deterministic for a given run.
	ID uint64
	// Node is the processor that initiated (and blocks on) the operation.
	Node int
	// Kind classifies the operation.
	Kind Kind
	// Obj is the page, lock, or barrier the operation is about.
	Obj int
	// Start and End bracket the span in simulated cycles.
	Start, End sim.Time
	// Stages is the latency decomposition; the entries sum to End-Start.
	Stages [NumStages]sim.Time
	// Charged accumulates the stall cycles the owning processor's
	// OnUnblock hook attributed to each stats category while this
	// operation was current; reconciliation tests check these sums
	// against stats.Breakdown exactly.
	Charged [stats.NumCategories]sim.Time

	marks []mark
}

// Mark records that stage s ended at time t. Safe on a nil receiver and
// callable from any context (proc or engine); milestones with future
// timestamps (reservation end times) are fine — End sorts before
// partitioning. eng is the calling context's engine view (the view of
// the node whose code is executing, not necessarily o.Node): on a
// sharded run the append is deferred through it to the merge barrier,
// which both serializes concurrent remote markers and preserves the
// sequential insertion order that breaks equal-time sort ties. A nil
// eng (unit tests) appends inline.
func (o *Op) Mark(eng *sim.Engine, s Stage, t sim.Time) {
	if o == nil {
		return
	}
	if eng == nil {
		o.marks = append(o.marks, mark{t: t, stage: s})
		return
	}
	eng.Deferred(func() { o.marks = append(o.marks, mark{t: t, stage: s}) })
}

// interval is a half-open [start, end) window of simulated time.
type interval struct {
	start, end sim.Time
}

// appendMerged appends iv to ivs, coalescing with the last entry when
// they touch. Feeds arrive per node in non-decreasing start order, so
// this keeps the per-node lists compact without a sort.
func appendMerged(ivs []interval, iv interval) []interval {
	if iv.end <= iv.start {
		return ivs
	}
	if n := len(ivs); n > 0 && iv.start <= ivs[n-1].end {
		if iv.end > ivs[n-1].end {
			ivs[n-1].end = iv.end
		}
		return ivs
	}
	return append(ivs, iv)
}

// Tracker collects operation spans and the activity/stall interval
// feeds that overlap accounting is computed from. All methods are safe
// on a nil receiver; a nil tracker is the disabled state.
type Tracker struct {
	nodes  int
	nextID uint64
	// cur is each node's current operation: the target Charge attributes
	// stall cycles to. Begin sets it, End and Detach clear it. Strictly
	// shard-local: entry n is only touched from node n's shard.
	cur []*Op
	// ops holds completed spans in completion order. Globally ordered:
	// appended only in deferred (merge-barrier or sequential) context.
	ops []*Op
	// ctrl and net are protocol activity windows (controller occupancy,
	// outbound wire occupancy) per node; blocked is the union of the
	// node's non-Busy stall windows. Overlap accounting intersects them.
	// ctrl and blocked are per-node shard-local; net is fed only from
	// the network's serialized walk.
	ctrl    [][]interval
	net     [][]interval
	blocked [][]interval
	// views, when bound, maps each node to its engine view so Begin and
	// End can defer their globally-ordered half through the owning
	// shard. Nil (unit tests, unbound trackers) runs everything inline.
	views []*sim.Engine
}

// NewTracker returns a tracker for a machine with the given number of
// processors.
func NewTracker(nodes int) *Tracker {
	return &Tracker{
		nodes:   nodes,
		cur:     make([]*Op, nodes),
		ctrl:    make([][]interval, nodes),
		net:     make([][]interval, nodes),
		blocked: make([][]interval, nodes),
	}
}

// Bind attaches the engine the instrumented run executes on, resolving
// each node's shard view once. Must be called after the engine is
// parallelized (core.Run's wiring order) and before the run starts;
// safe on a nil tracker or nil engine. An unbound tracker runs its
// globally-ordered work inline, which is only correct sequentially.
func (t *Tracker) Bind(eng *sim.Engine) {
	if t == nil || eng == nil {
		return
	}
	t.views = make([]*sim.Engine, t.nodes)
	for n := 0; n < t.nodes; n++ {
		t.views[n] = eng.View(n)
	}
}

// deferOn runs fn in globally-ordered context via node's shard view:
// inline when unbound or sequential, logged for merge-barrier replay
// when node's shard is executing a window. Callers must be running on
// node's shard (the package invariant: code for node n executes on
// View(n)).
func (t *Tracker) deferOn(node int, fn func()) {
	if t.views == nil {
		fn()
		return
	}
	t.views[node].Deferred(fn)
}

// Begin opens a span for an operation of the given kind on obj,
// starting now, and makes it the node's current operation for stall
// charging. Returns nil (a valid, inert Op handle) on a nil tracker.
// The ID is allocated in global order (deferred on a sharded run), so
// read it only after the run drains.
func (t *Tracker) Begin(node int, k Kind, obj int, now sim.Time) *Op {
	if t == nil {
		return nil
	}
	op := &Op{Node: node, Kind: k, Obj: obj, Start: now}
	t.cur[node] = op
	t.deferOn(node, func() {
		op.ID = t.nextID
		t.nextID++
	})
	return op
}

// Detach stops charging the node's stalls to op without ending it; used
// for prefetches, which stay in flight after the issuing processor
// moves on.
func (t *Tracker) Detach(node int, op *Op) {
	if t == nil || op == nil {
		return
	}
	if t.cur[node] == op {
		t.cur[node] = nil
	}
}

// End closes op at now, computes its stage decomposition from the
// recorded milestones, and files the span. The gap from Start to the
// first milestone goes to that milestone's stage, and so on; whatever
// trails the last milestone is StageUnblock. Zero-length spans are kept
// (they are real operations that turned out to be free) so per-kind
// span counts always equal the protocol's operation counters.
// End must be called from op.Node's context; the stage computation and
// the completion-log append run deferred so every milestone — including
// those remote shards logged in the same window — has been replayed
// first, and ops stay in sequential completion order.
func (t *Tracker) End(op *Op, now sim.Time) {
	if t == nil || op == nil {
		return
	}
	if t.cur[op.Node] == op {
		t.cur[op.Node] = nil
	}
	t.deferOn(op.Node, func() { t.finish(op, now) })
}

// finish closes op in globally-ordered context: all marks are in.
func (t *Tracker) finish(op *Op, now sim.Time) {
	op.End = now
	sort.SliceStable(op.marks, func(i, j int) bool { return op.marks[i].t < op.marks[j].t })
	prev := op.Start
	for _, m := range op.marks {
		mt := m.t
		if mt > now {
			mt = now // eager milestone past the close; clamp
		}
		if mt > prev {
			op.Stages[m.stage] += mt - prev
			prev = mt
		}
	}
	if now > prev {
		op.Stages[StageUnblock] += now - prev
	}
	op.marks = nil
	t.ops = append(t.ops, op)
}

// Charge attributes a stall of the given category ending now to the
// node's current operation, and extends the node's blocked windows for
// every non-Busy stall (overlap accounting treats those windows as
// "the processor was not computing").
func (t *Tracker) Charge(node int, c stats.Category, waited, now sim.Time) {
	if t == nil || waited <= 0 {
		return
	}
	if op := t.cur[node]; op != nil {
		op.Charged[c] += waited
	}
	if c != stats.Busy {
		t.blocked[node] = appendMerged(t.blocked[node], interval{now - waited, now})
	}
}

// Controller records a controller service window on the given node.
func (t *Tracker) Controller(node int, start, end sim.Time) {
	if t == nil {
		return
	}
	t.ctrl[node] = appendMerged(t.ctrl[node], interval{start, end})
}

// NetSend records outbound wire occupancy for a message the given node
// sent: from send entry to final-hop delivery. Retransmissions and
// fault-injected duplicates re-enter the send path and so are recorded
// like any other message.
func (t *Tracker) NetSend(src int, start, end sim.Time) {
	if t == nil {
		return
	}
	t.net[src] = appendMerged(t.net[src], interval{start, end})
}

// Ops returns the completed spans in completion order. Read-only; test
// and report code only.
func (t *Tracker) Ops() []*Op {
	if t == nil {
		return nil
	}
	return t.ops
}

// OpenOps returns the operations currently in flight — begun but not
// yet ended or detached — in node order. This is the liveness
// watchdog's view of what each stalled processor was in the middle of
// when a run stopped making progress; on a completed run it is empty.
func (t *Tracker) OpenOps() []*Op {
	if t == nil {
		return nil
	}
	var out []*Op
	for _, op := range t.cur {
		if op != nil {
			out = append(out, op)
		}
	}
	return out
}
