package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dsm96/internal/experiments"
)

// Store state machine. Every transition is journaled write-ahead: the
// record file is rewritten atomically (write + fsync + rename + dir
// fsync) BEFORE the server acts on the new state, so the on-disk
// journal is always at least as advanced as the in-memory view, and a
// kill -9 at any point leaves a state the recovery scan maps back to
// pending/done/quarantined deterministically.
const (
	StatePending     = "pending"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateQuarantined = "quarantined"
)

// RecordSchema tags the per-job journal record.
const RecordSchema = "dsm96/job-record/v1"

// StoreManifestSchema tags the store's ledger.
const StoreManifestSchema = "dsm96/store-manifest/v1"

// JobRecord is one job's journal entry — the unit of crash safety. The
// canonical spec is embedded so a record is self-describing: recovery
// can requeue an interrupted job from the record alone.
type JobRecord struct {
	Schema string          `json:"schema"`
	Key    string          `json:"key"`
	Spec   json.RawMessage `json:"spec"`
	State  string          `json:"state"`
	// Attempts counts execution attempts started (including any that a
	// crash interrupted); when it reaches the server's retry cap the
	// job is quarantined as poisoned rather than retried forever.
	Attempts int           `json:"attempts"`
	Error    string        `json:"error,omitempty"`
	Stall    *StallSummary `json:"stall,omitempty"`
	Result   *JobResult    `json:"result,omitempty"`
}

// ErrStoreFailed is returned by every durable operation after the
// store's write path has failed (or a test crash hook fired): the
// server degrades to read-only and keeps serving cached results.
var ErrStoreFailed = errors.New("serve: store write path failed")

// Store is the crash-safe job store:
//
//	<root>/jobs/<key>.json   journal records (atomic rewrite per transition)
//	<root>/objects/<sha256>  content-addressed artifacts
//	<root>/manifest.json     hash-anchored ledger (derived, rewritten last)
//
// All mutation goes through WriteFileAtomic-style temp+fsync+rename, so
// the only debris a hard kill can leave is ".tmp-" files (scrubbed by
// Recover) and artifacts not yet referenced by a done record (GC'd by
// Recover).
type Store struct {
	root string

	mu     sync.Mutex
	failed bool
	// writeHook, when set, is consulted before every durable write —
	// the crash-injection seam the recovery property test uses. A
	// non-nil return marks the store failed (as a real write error
	// does) and the operation reports it.
	writeHook func(op string) error
}

// OpenStore creates (or reopens) the store layout under root. It does
// not scan for crash debris; call Recover for that.
func OpenStore(root string) (*Store, error) {
	for _, d := range []string{root, filepath.Join(root, "jobs"), filepath.Join(root, "objects")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: store: %w", err)
		}
	}
	return &Store{root: root}, nil
}

// setWriteHook installs the crash/degraded-injection test seam: fn is
// consulted before every durable write, and its first non-nil return
// latches the store failed exactly as a real write error would.
func (s *Store) setWriteHook(fn func(op string) error) {
	s.mu.Lock()
	s.writeHook = fn
	s.mu.Unlock()
}

// Failed reports whether a durable write has failed since open — the
// trigger for the server's degraded read-only mode.
func (s *Store) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// checkWrite applies the failure latch and the test crash hook.
func (s *Store) checkWrite(op string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrStoreFailed
	}
	if s.writeHook != nil {
		if err := s.writeHook(op); err != nil {
			s.failed = true
			return fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
	}
	return nil
}

// markFailed latches the failure state after a real write error.
func (s *Store) markFailed(err error) error {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrStoreFailed, err)
}

func (s *Store) recordPath(key string) string { return filepath.Join(s.root, "jobs", key+".json") }

// objectPath returns the artifact path for a hex SHA-256.
func (s *Store) objectPath(sha string) string { return filepath.Join(s.root, "objects", sha) }

// PutRecord journals a record transition (atomic, durable).
func (s *Store) PutRecord(rec *JobRecord) error {
	if err := s.checkWrite("record:" + rec.State); err != nil {
		return err
	}
	err := experiments.WriteFileAtomic(s.recordPath(rec.Key), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	})
	if err != nil {
		return s.markFailed(err)
	}
	return nil
}

// GetRecord loads one record; (nil, nil) when absent.
func (s *Store) GetRecord(key string) (*JobRecord, error) {
	data, err := os.ReadFile(s.recordPath(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: store: record %s: %w", key, err)
	}
	return &rec, nil
}

// ListRecords loads every record, sorted by key.
func (s *Store) ListRecords() ([]*JobRecord, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var out []*JobRecord
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp-") {
			continue
		}
		rec, err := s.GetRecord(strings.TrimSuffix(name, ".json"))
		if err != nil || rec == nil {
			continue // corrupt records are recovery's business
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// PutObject streams write into the content-addressed object area and
// returns the artifact's hex SHA-256 (its name) and size. Writing an
// object that already exists is a no-op that re-verifies nothing — the
// name IS the content, so an existing file is already correct.
func (s *Store) PutObject(write func(io.Writer) error) (sha string, size int64, err error) {
	if err := s.checkWrite("object"); err != nil {
		return "", 0, err
	}
	f, err := os.CreateTemp(filepath.Join(s.root, "objects"), "obj.tmp-*")
	if err != nil {
		return "", 0, s.markFailed(err)
	}
	tmp := f.Name()
	h := sha256.New()
	cw := &countWriter{w: io.MultiWriter(f, h)}
	err = write(cw)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", 0, s.markFailed(err)
	}
	sha = hex.EncodeToString(h.Sum(nil))
	if err := os.Rename(tmp, s.objectPath(sha)); err != nil {
		os.Remove(tmp)
		return "", 0, s.markFailed(err)
	}
	if d, derr := os.Open(filepath.Join(s.root, "objects")); derr == nil {
		d.Sync()
		d.Close()
	}
	return sha, cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// GetObject reads an artifact and verifies its content against its
// name; a mismatch (disk corruption, tampering) is an error, never
// silently served.
func (s *Store) GetObject(sha string) ([]byte, error) {
	if len(sha) != 64 || strings.ContainsAny(sha, "/\\.") {
		return nil, fmt.Errorf("serve: store: malformed object name %q", sha)
	}
	data, err := os.ReadFile(s.objectPath(sha))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != sha {
		return nil, fmt.Errorf("serve: store: object %s fails verification (content hashes to %s)", sha, got)
	}
	return data, nil
}

// StoreManifest is the hash-anchored ledger: one entry per job keyed by
// job hash, each done entry naming its artifact by SHA-256. Derived
// state — recovery rebuilds it from the journal — kept current so the
// store is inspectable without walking every record.
type StoreManifest struct {
	Schema string                 `json:"schema"`
	Jobs   map[string]ManifestJob `json:"jobs"`
}

// ManifestJob is one ledger line.
type ManifestJob struct {
	State         string `json:"state"`
	Attempts      int    `json:"attempts"`
	Cycles        int64  `json:"cycles,omitempty"`
	Events        uint64 `json:"events,omitempty"`
	Fingerprint   string `json:"fingerprint,omitempty"`
	MetricsSHA256 string `json:"metrics_sha256,omitempty"`
}

// WriteManifest rebuilds the ledger from the journal and commits it
// atomically.
func (s *Store) WriteManifest() error {
	if err := s.checkWrite("manifest"); err != nil {
		return err
	}
	recs, err := s.ListRecords()
	if err != nil {
		return err
	}
	man := StoreManifest{Schema: StoreManifestSchema, Jobs: map[string]ManifestJob{}}
	for _, rec := range recs {
		mj := ManifestJob{State: rec.State, Attempts: rec.Attempts}
		if rec.Result != nil {
			mj.Cycles = rec.Result.Cycles
			mj.Events = rec.Result.Events
			mj.Fingerprint = rec.Result.Fingerprint
			mj.MetricsSHA256 = rec.Result.MetricsSHA256
		}
		man.Jobs[rec.Key] = mj
	}
	werr := experiments.WriteFileAtomic(filepath.Join(s.root, "manifest.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	})
	if werr != nil {
		return s.markFailed(werr)
	}
	return nil
}

// RecoveryReport summarizes what a restart scan repaired.
type RecoveryReport struct {
	// Done is how many completed, verified results survived.
	Done int `json:"done"`
	// Requeued counts interrupted jobs (journaled pending/running, or
	// failed below the retry cap) put back in line.
	Requeued int `json:"requeued"`
	// Quarantined counts jobs at or over the retry cap.
	Quarantined int `json:"quarantined"`
	// TmpRemoved counts orphaned temporary files scrubbed.
	TmpRemoved int `json:"tmp_removed"`
	// ObjectsRemoved counts artifacts no done record references
	// (written just before a crash that ate their commit).
	ObjectsRemoved int `json:"objects_removed"`
	// CorruptRemoved counts unreadable journal records dropped.
	CorruptRemoved int `json:"corrupt_removed"`
	// ResultsInvalidated counts done records whose artifact was missing
	// or failed hash verification; the jobs were requeued.
	ResultsInvalidated int `json:"results_invalidated"`
}

// Recover scans the store after a restart and repairs it to a
// consistent state: orphaned temp files deleted, interrupted jobs
// (pending/running) requeued, failed jobs requeued or — at or past
// maxAttempts — quarantined, done results hash-verified (invalidated
// and requeued on mismatch), unreferenced objects removed, and the
// ledger rebuilt. Idempotent: a second scan finds nothing to repair.
// The returned records are the requeue backlog in key order.
func (s *Store) Recover(maxAttempts int) (*RecoveryReport, []*JobRecord, error) {
	rep := &RecoveryReport{}
	// 1. Scrub temp files anywhere under the store: the only debris an
	// atomic-write kill can leave.
	for _, dir := range []string{s.root, filepath.Join(s.root, "jobs"), filepath.Join(s.root, "objects")} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: recover: %w", err)
		}
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp-") {
				if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
					rep.TmpRemoved++
				}
			}
		}
	}
	// 2. Walk the journal, repairing each record to pending / done /
	// quarantined.
	jobsDir := filepath.Join(s.root, "jobs")
	ents, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: recover: %w", err)
	}
	referenced := map[string]bool{}
	var requeue []*JobRecord
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		rec, rerr := s.GetRecord(key)
		if rerr != nil || rec == nil || rec.Schema != RecordSchema || rec.Key != key {
			// Atomic rewrites make a torn record impossible; anything
			// unreadable is foreign or pre-crash corruption. Drop it.
			if err := os.Remove(filepath.Join(jobsDir, name)); err == nil {
				rep.CorruptRemoved++
			}
			continue
		}
		switch rec.State {
		case StateDone:
			if rec.Result == nil {
				rec.State = StatePending
				rec.Result = nil
				rep.ResultsInvalidated++
			} else if _, oerr := s.GetObject(rec.Result.MetricsSHA256); oerr != nil {
				// The record vouches for an artifact the disk no longer
				// backs: the job re-runs (determinism reproduces the
				// identical artifact).
				rec.State = StatePending
				rec.Result = nil
				rep.ResultsInvalidated++
			} else {
				referenced[rec.Result.MetricsSHA256] = true
				rep.Done++
				continue
			}
		case StatePending, StateRunning:
			// Interrupted before completion; the attempt counter stays
			// (a crash mid-attempt consumed the attempt).
			rec.State = StatePending
			rec.Result = nil
		case StateFailed:
			if maxAttempts > 0 && rec.Attempts >= maxAttempts {
				rec.State = StateQuarantined
			} else {
				rec.State = StatePending
				rec.Result = nil
			}
		case StateQuarantined:
			rep.Quarantined++
			continue
		default:
			if err := os.Remove(filepath.Join(jobsDir, name)); err == nil {
				rep.CorruptRemoved++
			}
			continue
		}
		if err := s.PutRecord(rec); err != nil {
			return nil, nil, err
		}
		switch rec.State {
		case StatePending:
			rep.Requeued++
			requeue = append(requeue, rec)
		case StateQuarantined:
			rep.Quarantined++
		}
	}
	// 3. GC objects no done record references — artifacts whose commit
	// record the crash ate. Their jobs are pending again; re-execution
	// regenerates byte-identical content.
	objs, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: recover: %w", err)
	}
	for _, e := range objs {
		if !referenced[e.Name()] {
			if err := os.Remove(s.objectPath(e.Name())); err == nil {
				rep.ObjectsRemoved++
			}
		}
	}
	// 4. Rebuild the ledger last, like a run folder's manifest.
	if err := s.WriteManifest(); err != nil {
		return nil, nil, err
	}
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].Key < requeue[j].Key })
	return rep, requeue, nil
}
