# Development targets for the dsm96 simulator. `make check` is the
# pre-commit gate: formatting, vet, build, the full test suite, and the
# race detector over the packages that exercise goroutine handoffs.

GO ?= go

.PHONY: check fmt vet build test race bench bench-snapshot golden fuzz docs timeline metricsdiff chaos profiles experiments trend render trend-snapshot obsparity serve

check: fmt vet build test race timeline metricsdiff chaos profiles experiments obsparity serve trend docs

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine couples each simulated processor to a goroutine, and the
# parallel engine runs shard workers on real OS threads: the race
# detector over the whole tree (short mode trims the heavyweight app
# inputs) is the cheapest way to catch an accidental shared write.
race:
	$(GO) test -race -short ./...

# Engine throughput benchmark (see EXPERIMENTS.md for the methodology).
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineEventsPerSec -benchtime 20x -count 3 .

# Parallel-engine scaling snapshot: events/sec across 64/128/256-node
# meshes at 1/2/4/8 engine workers, written to BENCH_parallel_engine.json
# (atomically). Every cell is fingerprint-checked against workers=1; the
# >=2x speedup assertion applies only on hosts with 8+ CPUs (the script
# says so when it skips). Compare snapshots with metricsdiff -bench.
bench-snapshot:
	sh scripts/bench.sh BENCH_parallel_engine.json

# Regenerate the golden cycle totals after an INTENTIONAL timing change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenCycles -update-golden

# Exploratory fuzzing beyond the checked-in corpus.
fuzz:
	$(GO) test ./internal/randprog -fuzz FuzzRandprog -fuzztime 30s

# Smoke-test the observability artifacts: generate a Perfetto timeline,
# run-metrics JSON, and a causal-span JSONL from a tiny run, then
# validate them with jq (the timeline must be one trace-event object,
# the metrics must carry the v2 schema tag, a per-processor breakdown,
# and a span digest; every span's stages must sum to its window).
timeline:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dsmsim -p 8 -app radix -mode ipd -scale tiny \
		-timeline "$$dir/t.json" -metrics "$$dir/m.json" -spans "$$dir/s.jsonl" >/dev/null; \
	jq -e '.traceEvents | length > 0' "$$dir/t.json" >/dev/null; \
	jq -e '.schema == "dsm96/run-metrics/v3" and (.per_proc_cycles | length == 8) and (.spans.digest | length == 16)' "$$dir/m.json" >/dev/null; \
	jq -es 'all(.[]; (.stages | add) == .end - .start)' "$$dir/s.jsonl" >/dev/null; \
	echo "timeline: ok"

# Metrics regression gate: rerun the golden configuration (tiny radix,
# I+P+D, 4 processors) and diff its metrics JSON — every counter, cycle
# total, percentile, and the span digest — against the committed golden,
# asserting the v3 schema tag on both sides; then prove the differ
# actually fails by injecting a counter drift, and that the schema
# assertion fails on a wrong tag.
metricsdiff:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dsmsim -p 4 -app radix -mode ipd -scale tiny \
		-metrics "$$dir/m.json" >/dev/null; \
	$(GO) run ./cmd/metricsdiff -schema dsm96/run-metrics/v3 \
		internal/timeline/testdata/radix_ipd_p4.metrics.json "$$dir/m.json"; \
	jq '.counters.messages += 1' "$$dir/m.json" > "$$dir/drift.json"; \
	if $(GO) run ./cmd/metricsdiff internal/timeline/testdata/radix_ipd_p4.metrics.json \
		"$$dir/drift.json" >/dev/null 2>&1; then \
		echo "metricsdiff: FAILED to detect injected drift"; exit 1; fi; \
	if $(GO) run ./cmd/metricsdiff -schema dsm96/run-metrics/v2 \
		internal/timeline/testdata/radix_ipd_p4.metrics.json "$$dir/m.json" >/dev/null 2>&1; then \
		echo "metricsdiff: FAILED to reject wrong schema tag"; exit 1; fi; \
	echo "metricsdiff: drift and schema detection ok"

# Chaos gate: link faults plus randomized controller crash/hang over the
# {tsp, water, radix} x {Base, I, I+P+D, AURC} matrix at tiny scale with
# a fixed, bounded seed set. Every cell is validated against the
# sequential oracle and run twice for fingerprint equality, and the
# whole sweep is rerun under GOMAXPROCS=1 — chaos must cost cycles, not
# correctness or determinism. Also anchors degradation correctness: an
# all-controllers-crashed I+P+D run must compute Base's exact answer.
chaos:
	$(GO) test ./internal/experiments -count 1 \
		-run 'TestChaosSweep|TestDegradedMatchesBase|TestCtrlFaultsVacuousOffController'
	@echo "chaos: ok"

# Profiles gate: every checked-in params-profile parses, validates, and
# is byte-for-byte the canonical serialization of its builtin (so the
# template files can never drift from the constants the backend goldens
# pin), and -profile pci1996 stays bit-identical to the profile-less
# default machine (compared via run-metrics JSON).
profiles:
	$(GO) run ./cmd/profilecheck
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dsmsim -p 4 -app radix -mode ipd -scale tiny \
		-metrics "$$dir/default.json" >/dev/null; \
	$(GO) run ./cmd/dsmsim -p 4 -app radix -mode ipd -scale tiny \
		-profile pci1996 -metrics "$$dir/pci1996.json" >/dev/null; \
	cmp "$$dir/default.json" "$$dir/pci1996.json" || \
		{ echo "profiles: -profile pci1996 diverged from the default machine"; exit 1; }; \
	$(GO) run ./cmd/dsmsim -p 4 -app radix -mode ipd -scale tiny \
		-profile profiles/rdma.json >/dev/null; \
	echo "profiles: ok"

# Docs gate: vet + formatting, every example builds, the prose in
# README/ARCHITECTURE/EXPERIMENTS references only make targets and paths
# that actually exist, and the generated tables of EXPERIMENTS.md match
# a fresh render (scripts/checkdocs.sh).
docs: fmt vet
	$(GO) build ./examples/...
	sh scripts/checkdocs.sh

# Experiment-pipeline smoke gate: the committed experiments.json loads
# and validates, and the smoke grid runs end-to-end into a throwaway run
# folder whose manifest parses and carries the run-manifest schema tag
# with zero failed cells. Seconds of wall clock.
experiments:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/experiment -list >/dev/null; \
	$(GO) run ./cmd/experiment -run smoke -out "$$dir" -q; \
	jq -e '.schema == "dsm96/run-manifest/v1" and ([.cells[] | select(.error != null and .error != "")] | length == 0)' \
		"$$dir"/*-smoke/manifest.json >/dev/null; \
	echo "experiments: ok"

# Parallel-observability gate: the worker-parity matrix (Perfetto
# timeline, run-metrics JSON, spans JSONL, rendered trace byte-identical
# across worker counts, fingerprint equal to the uninstrumented run) and
# the engine self-profiler's determinism contract, run under the race
# detector; then the artifact-level proof through the real CLI — two
# dsmsim runs of the same sharded configuration must carry the
# dsm96/engine-profile/v1 schema tag and pass metricsdiff
# -engine-profile (deterministic block exact, host block ignored).
obsparity:
	$(GO) test -race ./internal/core -count 1 \
		-run 'TestObservabilityWorkerParity|TestObservabilityParityLargeMesh|TestEngineProfileDeterministic'
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dsmsim -p 8 -app water -mode ipd -scale tiny -workers 4 \
		-engine-profile "$$dir/a.json" >/dev/null; \
	$(GO) run ./cmd/dsmsim -p 8 -app water -mode ipd -scale tiny -workers 4 \
		-engine-profile "$$dir/b.json" >/dev/null; \
	jq -e '.schema == "dsm96/engine-profile/v1" and .workers == 4 and (.deterministic.windows > 0)' \
		"$$dir/a.json" >/dev/null; \
	$(GO) run ./cmd/metricsdiff -engine-profile "$$dir/a.json" "$$dir/b.json"; \
	echo "obsparity: ok"

# Service gate: boot dsmserve on a throwaway store, submit the same job
# twice through the built-in client, and require the second answer to be
# a cache hit with the same fingerprint and a byte-identical
# content-addressed artifact; then SIGTERM-drain and require exit 0
# (scripts/serve_smoke.sh).
serve:
	sh scripts/serve_smoke.sh

# Trend gate: take a fresh snapshot of the ladder experiment and compare
# it against the newest committed record in trends/ with metricsdiff
# -trend — determinism fields (cycles, events, fingerprint, metrics key
# hash) exact, throughput only within the same host class; then prove
# the differ bites by injecting a one-cycle drift into a copy and
# requiring a nonzero exit naming the drifted dotted path. The chaos
# grid gets the same treatment against its own record sequence in
# trends/chaos, so fault-injection cells are regression-gated too.
trend:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/experiment -snapshot -trend-out "$$dir/fresh.json" -q; \
	$(GO) run ./cmd/metricsdiff -trend trends "$$dir/fresh.json"; \
	jq '(.cells[.cells | keys | first].cycles) += 1' "$$dir/fresh.json" > "$$dir/drift.json"; \
	if $(GO) run ./cmd/metricsdiff -trend trends "$$dir/drift.json" >/dev/null 2>&1; then \
		echo "trend: FAILED to detect injected cycle drift"; exit 1; fi; \
	$(GO) run ./cmd/experiment -snapshot -trend-of chaos -trend-dir trends/chaos \
		-trend-out "$$dir/fresh-chaos.json" -q; \
	$(GO) run ./cmd/metricsdiff -trend trends/chaos "$$dir/fresh-chaos.json"; \
	echo "trend: drift detection ok"

# Append a real trend record to trends/ (one per PR, committed).
trend-snapshot:
	$(GO) run ./cmd/experiment -snapshot -label "$${LABEL:-}"

# Regenerate the measured tables of EXPERIMENTS.md in place.
render:
	$(GO) run ./cmd/experiment -render
