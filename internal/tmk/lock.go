package tmk

import (
	"dsm96/internal/controller"
	"dsm96/internal/lrc"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/trace"
)

// Lock implements dsm.System: a TreadMarks lock acquire. Locks form a
// distributed queue: the statically assigned home node redirects each
// request to the previous requester; the token (and the consistency
// information) travels directly from releaser to acquirer. The grant
// message carries every interval the acquirer has not seen; processing it
// invalidates the pages those intervals wrote (lazy release consistency:
// invalidation at acquire, data on demand at fault).
func (pr *Protocol) Lock(p *sim.Proc, id int, lock int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	n.st.LockAcquires++
	lk := n.lock(lock)
	op := pr.sp.Begin(id, spans.OpLock, lock, p.Now())
	if lk.hasToken && !lk.inCS && lk.next == nil {
		// Token cached locally: reacquire without messages. The whole
		// span is local work (StageUnblock).
		lk.inCS = true
		p.SleepReason(localLockCost, reasonLock)
		n.emit(-1, trace.KindLock, "acquired lock=%d (cached token)", lock)
		pr.sp.End(op, p.Now())
		return
	}
	gate := &sim.Gate{}
	lk.gate = gate
	home := lock % pr.cfg.Processors
	req := lockReq{from: id, vts: n.vts.Clone(), op: op}
	n.sendFromProc(p, reasonLock, home, requestWireBytes+n.vts.WireBytes(), func() {
		pr.nodes[home].homeForward(lock, req)
	})
	gate.Wait(p, reasonLock)
	pr.sp.End(op, p.Now())
	if pr.mode.Prefetch() {
		n.issuePrefetches(p)
	}
}

// homeForward redirects a lock request to the tail of the distributed
// queue (engine context at the home node).
func (n *pnode) homeForward(lock int, req lockReq) {
	// Request on the home's wire; forwarding hops extend StageWire via
	// the next milestone's gap.
	req.op.Mark(n.eng, spans.StageWire, n.eng.Now())
	lk := n.lock(lock)
	prev := lk.tail
	lk.tail = req.from
	forward := func() {
		n.pr.nodes[prev].receiveLockReq(lock, req)
	}
	localFwd := func() {
		n.st.Interrupts++
		_, end := n.cpu.Reserve(n.eng, n.pr.cfg.InterruptTime+homeForwardCost)
		n.eng.At(end, forward)
	}
	remoteFwd := func() {
		n.st.Interrupts++
		_, end := n.cpu.Reserve(n.eng, n.pr.cfg.InterruptTime+homeForwardCost)
		n.eng.At(end, func() {
			n.sendAsync(prev, requestWireBytes+req.vts.WireBytes(), forward)
		})
	}
	if prev == n.id {
		// The home itself is the previous owner: handle locally after
		// the bookkeeping cost.
		if n.ctrlOK() {
			n.ctl.Submit(n.eng, &sim.Job{Name: "lock-fwd", Service: homeForwardCost, Done: forward},
				func() { n.st.CtrlFallbackJobs++; localFwd() })
		} else {
			localFwd()
		}
		return
	}
	if n.ctrlOK() {
		n.ctl.Submit(n.eng, &sim.Job{
			Name:    "lock-fwd",
			Service: homeForwardCost + n.pr.cfg.MessagingOverhead,
			Done: func() {
				n.st.MsgsSent++
				n.st.BytesSent += uint64(requestWireBytes + req.vts.WireBytes())
				n.pr.net.SendReliable(n.id, prev, requestWireBytes+req.vts.WireBytes(), 0, forward)
			},
		}, func() { n.st.CtrlFallbackJobs++; remoteFwd() })
		return
	}
	remoteFwd()
}

// receiveLockReq lands a forwarded request at the previous queue tail
// (engine context). If that node holds a free token the grant goes out
// now; otherwise the request waits for the node's release (or for its own
// pending grant to arrive).
func (n *pnode) receiveLockReq(lock int, req lockReq) {
	req.op.Mark(n.eng, spans.StageQueue, n.eng.Now())
	lk := n.lock(lock)
	if lk.hasToken && !lk.inCS {
		lk.hasToken = false
		n.grantLockAsync(lock, req)
		return
	}
	lk.next = &req
}

// grantLockAsync grants from engine context (release already happened, or
// the releaser was interrupted by the forwarded request): interval and
// write-notice processing interrupt the computation processor; the send
// goes through the mode's message path.
func (n *pnode) grantLockAsync(lock int, req lockReq) {
	n.closeInterval()
	n.emit(-1, trace.KindLock, "grant lock=%d to=%d", lock, req.from)
	ivs := n.missingIntervals(req.vts, req.from)
	piggy, piggyBytes := n.hybridDiffs(req.vts, ivs)
	bytes := requestWireBytes + n.vts.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors) + piggyBytes
	grantVTS := n.vts.Clone()
	requester := n.pr.nodes[req.from]
	n.serveCPUSpan(n.listCost(ivs), req.op, func() {
		n.sendAsync(req.from, bytes, func() {
			requester.receiveGrant(lock, ivs, grantVTS, piggy, req.op)
		})
	})
}

// grantLockFromProc grants during Unlock, in the releasing processor's
// context: the processing is synchronization overhead of the releaser.
func (n *pnode) grantLockFromProc(p *sim.Proc, lock int, req lockReq) {
	n.closeInterval()
	n.emit(-1, trace.KindLock, "grant lock=%d to=%d", lock, req.from)
	ivs := n.missingIntervals(req.vts, req.from)
	piggy, piggyBytes := n.hybridDiffs(req.vts, ivs)
	bytes := requestWireBytes + n.vts.WireBytes() + intervalsWireBytes(ivs, n.pr.cfg.Processors) + piggyBytes
	grantVTS := n.vts.Clone()
	requester := n.pr.nodes[req.from]
	p.SleepReason(n.listCost(ivs), reasonLockGrant)
	n.sendFromProc(p, reasonLockGrant, req.from, bytes, func() {
		requester.receiveGrant(lock, ivs, grantVTS, piggy, req.op)
	})
	// Everything since the request queued here — waiting out the
	// critical section plus the grant assembly just charged — was
	// remote service from the acquirer's point of view.
	req.op.Mark(n.eng, spans.StageRemote, p.Now())
}

// hybridDiffs collects the granter's own diffs for the pages its shipped
// intervals invalidate — the Lazy Hybrid piggyback (nil when disabled).
// Flushing the live twin costs what an on-demand diff would; the saving
// is the acquirer's avoided fault round trip.
func (n *pnode) hybridDiffs(reqVTS lrc.VTS, ivs []*lrc.Interval) ([]*lrc.Diff, int) {
	if !n.pr.opts.LazyHybrid {
		return nil, 0
	}
	var out []*lrc.Diff
	bytes := 0
	seen := map[int]bool{}
	for _, iv := range ivs {
		if iv.Owner != n.id {
			continue // only the releaser's own data is up-to-date here
		}
		for _, pg := range iv.Pages {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			if n.dirty[pg] {
				n.flushLocalDiff(pg)
			}
			for _, d := range n.diffCache[pg] {
				if d.Seq > reqVTS[n.id] {
					out = append(out, d)
					bytes += d.WireBytes(n.pr.cfg.PageWords())
				}
			}
		}
	}
	return out, bytes
}

// receiveGrant completes an acquire at the requester (engine context):
// the processor walks the intervals and write notices, invalidating
// pages, then enters the critical section.
func (n *pnode) receiveGrant(lock int, ivs []*lrc.Interval, grantVTS lrc.VTS, piggy []*lrc.Diff, op *spans.Op) {
	if n.lock(lock).gate == nil {
		// No acquire is waiting: a duplicated grant already handed us the
		// token. Re-applying it would corrupt the distributed queue (and
		// re-integrate intervals).
		n.st.DupMsgsSuppressed++
		return
	}
	op.Mark(n.eng, spans.StageReply, n.eng.Now())
	cost := n.pr.cfg.InterruptTime + n.listCost(ivs)
	if len(piggy) > 0 {
		words := 0
		for _, d := range piggy {
			words += d.Len()
		}
		cost += controller.SoftDiffApplyCost(n.pr.cfg, words)
	}
	_, end := n.cpu.Reserve(n.eng, cost)
	n.eng.At(end, func() {
		lk := n.lock(lock)
		if lk.gate == nil {
			// A twin of this grant was applied while we sat in the
			// interrupt queue.
			n.st.DupMsgsSuppressed++
			return
		}
		n.integrate(ivs)
		n.vts.Max(grantVTS)
		n.checkVTSRecords("receiveGrant")
		n.applyPiggyback(piggy)
		lk.hasToken = true
		lk.inCS = true
		op.Mark(n.eng, spans.StageController, n.eng.Now())
		n.emit(-1, trace.KindLock, "acquired lock=%d ivs=%d", lock, len(ivs))
		lk.gate.Open(n.eng)
		lk.gate = nil
	})
}

// Unlock implements dsm.System: release the lock; if a requester is
// queued here, close the interval and pass token + consistency data on.
func (pr *Protocol) Unlock(p *sim.Proc, id int, lock int) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.Flush(p)
	lk := n.lock(lock)
	if !lk.inCS {
		panic("tmk: Unlock without matching Lock")
	}
	lk.inCS = false
	n.emit(-1, trace.KindLock, "release lock=%d", lock)
	if lk.next != nil {
		req := *lk.next
		lk.next = nil
		lk.hasToken = false
		// The grant work blocks the releaser, not the acquirer: it gets
		// its own span so its Synch charges reconcile.
		rop := pr.sp.Begin(id, spans.OpRelease, lock, p.Now())
		n.grantLockFromProc(p, lock, req)
		pr.sp.End(rop, p.Now())
	}
}
