// Package sim provides a deterministic discrete-event simulation engine
// with coroutine-style processes, FCFS resources, priority servers, and
// wait conditions.
//
// The engine is the substrate for the execution-driven DSM simulator: each
// simulated computation processor is a Proc (a goroutine coupled to the
// engine so that exactly one logical thread runs at a time), while
// protocol controllers, buses, memories, and network links are modelled
// with Resources and Servers advanced by engine events.
//
// Determinism: events at equal times fire in submission order (a strictly
// increasing sequence number breaks ties), and because at most one
// goroutine is runnable at any moment, repeated runs of the same program
// produce bit-identical schedules.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in processor cycles (the paper uses 10 ns cycles).
type Time = int64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	handoff chan struct{} // engine parks here while a Proc runs
	procs   []*Proc
	stopped bool

	// Stats.
	eventsRun uint64
}

// NewEngine returns a fresh engine at time zero.
func NewEngine() *Engine {
	return &Engine{handoff: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports how many events have executed, for diagnostics.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// At schedules fn to run in engine context at absolute time t.
// Scheduling in the past panics: it indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending events
// are kept; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns an error if any processes are still blocked when the event
// queue drains (a simulated deadlock).
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.eventsRun++
		ev.fn()
	}
	if e.stopped {
		return nil
	}
	var blocked []*Proc
	for _, p := range e.procs {
		if !p.done {
			blocked = append(blocked, p)
		}
	}
	if len(blocked) > 0 {
		msg := "sim: deadlock, blocked processes:"
		for _, p := range blocked {
			msg += fmt.Sprintf(" %s(%s)", p.Name, p.blockReason)
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// RunUntil executes events with time <= t, then returns. Processes blocked
// past t remain blocked.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.eventsRun++
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}
