// Command sweep reproduces the architectural sensitivity studies of
// Section 5.3 (Figures 13-16) — the effect of messaging overhead,
// network bandwidth, memory latency, and memory bandwidth on Em3d under
// the overlapping TreadMarks (I+D) and AURC — plus a reliability sweep
// the paper could not run: the same protocols over a network that
// loses, duplicates, and delays messages.
//
// Usage:
//
//	sweep -messaging            # Figure 13
//	sweep -netbw                # Figure 14
//	sweep -memlat               # Figure 15
//	sweep -membw                # Figure 16
//	sweep -reliability [-fault-seed N]
//	sweep -chaos                # link faults + controller crash/hang
//	sweep -backends             # protocol ladder on every interconnect backend
//	sweep -all [-scale tiny]
//	sweep -all -j 4 -metrics out/   # 4 workers, one metrics JSON per cell
//
// -profile NAME|FILE rebases every sweep on that machine model (builtin
// backend pci1996/rdma/cxl or a params-profile JSON file, see
// profiles/README.md); the default is Table 1. -backends instead runs
// the Base -> I -> I+P+D -> AURC ladder for {tsp, radix, em3d} on every
// builtin backend side by side — the "does the controller still pay off
// in 2026" table of EXPERIMENTS.md.
//
// The -chaos sweep combines link faults with randomized per-node
// controller crash/hang schedules over {tsp, water, radix} × {Base, I,
// I+P+D, AURC}: every cell is validated against the sequential oracle
// and run twice to prove fingerprint reproducibility, and the table
// reports the chaos cost alongside the graceful-degradation accounting
// (failovers, degraded node-cycles, software-fallback diffs). This is
// the sweep `make chaos` gates on (through its test-suite form).
//
// Independent sweep cells run on a worker pool (-j N; 0 = one worker per
// CPU); each cell is a self-contained deterministic simulation, so the
// figure output is identical for any -j. Orthogonally, -workers N shards
// the event engine inside each cell across N OS threads
// (core.Spec.Workers): the fired event schedule — and with it every
// figure, fingerprint, and metrics artifact — is bit-identical at any
// worker count, so -workers is purely a wall-clock lever for big
// meshes. A progress line tracks
// completed cells on stderr (suppress with -q). With -metrics DIR, every
// completed cell additionally writes machine-readable run metrics JSON
// to DIR/cell-<seq>-<app>-<protocol>-p<procs>.json, where <seq> is the
// cell's deterministic submission number; with -spans DIR, each cell
// also writes its causal spans (one JSON line per blocking protocol
// operation) to the same name with a .spans.jsonl suffix. Both are
// written atomically (temp file + rename), so a sweep killed mid-write
// never leaves a truncated artifact behind.
//
// With -server URL the sweep becomes a thin client of a dsmserve job
// server: every cell is submitted as a dsm96/job/v1 spec and executed
// (or answered from the server's memoized store — the simulator is
// deterministic, so a repeated grid is served entirely from cache)
// remotely. Output stays deterministic and ordered because cells still
// land in their submission-order slots. -metrics/-spans cannot combine
// with -server: they collect through in-process pointers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dsm96/internal/core"
	"dsm96/internal/experiments"
	"dsm96/internal/params"
	"dsm96/internal/serve"
)

func main() {
	messaging := flag.Bool("messaging", false, "sweep messaging overhead (Figure 13)")
	netbw := flag.Bool("netbw", false, "sweep network bandwidth (Figure 14)")
	memlat := flag.Bool("memlat", false, "sweep memory latency (Figure 15)")
	membw := flag.Bool("membw", false, "sweep memory bandwidth (Figure 16)")
	reliability := flag.Bool("reliability", false, "sweep message loss rate (deterministic fault injection)")
	chaos := flag.Bool("chaos", false, "chaos sweep: link faults + controller crash/hang, validated and repeat-run")
	backends := flag.Bool("backends", false, "run the protocol ladder on every builtin interconnect backend")
	profileArg := flag.String("profile", "", "rebase all sweeps on this machine model: builtin backend (pci1996, rdma, cxl) or a params-profile JSON file")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed for -reliability")
	all := flag.Bool("all", false, "run all six sweeps")
	scale := flag.String("scale", "default", "problem scale: tiny, default, paper")
	jobs := flag.Int("j", 0, "simulation worker pool size (0 = one worker per CPU)")
	engWorkers := flag.Int("workers", 1, "shard each cell's event engine across this many OS threads (schedules stay bit-identical)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	metricsDir := flag.String("metrics", "", "write per-cell run metrics JSON files into this directory")
	spansDir := flag.String("spans", "", "write per-cell causal span JSONL files into this directory")
	server := flag.String("server", "", "run every cell through this dsmserve job server instead of locally (repeat sweeps answer from its cache)")
	flag.Parse()

	if *server != "" {
		if *metricsDir != "" || *spansDir != "" {
			fmt.Fprintln(os.Stderr, "sweep: -metrics and -spans collect through in-process pointers and cannot be combined with -server")
			os.Exit(2)
		}
		client := &serve.Client{Base: *server}
		experiments.SetRemoteRunner(func(rr experiments.RemoteRun) (*core.Result, error) {
			return client.RunRemote(rr.App, rr.Spec, rr.Cfg, rr.Scale)
		})
	}
	experiments.SetWorkers(*jobs)
	experiments.SetEngineWorkers(*engWorkers)
	if *profileArg != "" {
		prof, err := params.ResolveProfile(*profileArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		cfg := prof.Config()
		experiments.SetBaseConfig(&cfg)
	}
	if !*quiet {
		experiments.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}
	if *metricsDir != "" || *spansDir != "" {
		for _, dir := range []string{*metricsDir, *spansDir} {
			if dir == "" {
				continue
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
		}
		mdir, sdir := *metricsDir, *spansDir
		if sdir != "" {
			experiments.SetSpans(true)
		}
		experiments.SetRunObserver(func(seq int, r experiments.Run) {
			if r.Err != nil || r.Result == nil {
				return
			}
			stem := fmt.Sprintf("cell-%04d-%s-%s-p%d", seq, r.App,
				strings.ReplaceAll(r.Protocol, "+", ""), r.Procs)
			if mdir != "" {
				err := experiments.WriteFileAtomic(filepath.Join(mdir, stem+".json"),
					func(w io.Writer) error { return r.Result.Metrics().WriteJSON(w) })
				if err != nil {
					fmt.Fprintln(os.Stderr, "\nsweep: metrics:", err)
				}
			}
			if sdir != "" {
				err := experiments.WriteFileAtomic(filepath.Join(sdir, stem+".spans.jsonl"),
					r.Spans.WriteJSONL)
				if err != nil {
					fmt.Fprintln(os.Stderr, "\nsweep: spans:", err)
				}
			}
		})
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.ScaleTiny
	case "default":
		sc = experiments.ScaleDefault
	case "paper":
		sc = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	if *all || *messaging {
		pts, err := experiments.Fig13(sc, []float64{0.5, 1, 2, 4, 8, 20, 40})
		die(err)
		fmt.Println(experiments.FormatSweep(
			"Figure 13: Messaging Overhead vs Em3d running time (AURC updates pay full overhead)",
			"latency(us)", pts))
		opt, err := experiments.Fig13Optimistic(sc, []float64{0.5, 1, 2, 4, 8, 20, 40})
		die(err)
		fmt.Println(experiments.FormatSweep(
			"Figure 13 (optimistic AURC updates, 1-cycle overhead — the default)",
			"latency(us)", opt))
	}
	if *all || *netbw {
		pts, err := experiments.Fig14(sc, []float64{20, 50, 100, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 14: Network Bandwidth vs Em3d running time", "MB/s", pts))
	}
	if *all || *memlat {
		pts, err := experiments.Fig15(sc, []float64{40, 100, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 15: Memory Latency vs Em3d running time", "ns", pts))
	}
	if *all || *membw {
		pts, err := experiments.Fig16(sc, []float64{60, 94, 150, 200})
		die(err)
		fmt.Println(experiments.FormatSweep("Figure 16: Memory Bandwidth vs Em3d running time", "MB/s", pts))
	}
	if *all || *reliability {
		pts, err := experiments.ReliabilitySweep(sc, *faultSeed, experiments.DefaultLossPcts())
		die(err)
		fmt.Println(experiments.FormatReliability(*faultSeed, pts))
	}
	if *all || *chaos {
		seeds := experiments.DefaultChaosSeeds()
		pts, err := experiments.ChaosSweep(sc, seeds)
		die(err)
		fmt.Println(experiments.FormatChaos(seeds, pts))
	}
	if *all || *backends {
		cells, err := experiments.CrossBackendLadder(sc, nil)
		die(err)
		fmt.Println(experiments.FormatBackendLadder(cells))
	}
	if !*all && !*messaging && !*netbw && !*memlat && !*membw && !*reliability && !*chaos && !*backends {
		flag.Usage()
	}
}
