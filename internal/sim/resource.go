package sim

// Resource models a single FCFS server (a bus, a memory bank, a network
// link): requests occupy it back-to-back in arrival order. Because service
// is FCFS and non-preemptive, it suffices to remember when the resource
// next becomes free.
//
// Resources can be used both from process context (Use blocks the caller
// until its service completes) and from engine context (Reserve returns
// the completion time so callers can chain events).
type Resource struct {
	Name   string
	freeAt Time

	// busyCycles accumulates total occupied cycles, for utilization stats.
	busyCycles Time
	uses       uint64
}

// Reserve enqueues a service of d cycles starting no earlier than the
// current time and returns (start, end). Engine or process context.
func (r *Resource) Reserve(e *Engine, d Time) (start, end Time) {
	start = e.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + d
	r.freeAt = end
	r.busyCycles += d
	r.uses++
	return start, end
}

// Use occupies the resource for d cycles from process context, blocking
// the caller until its service completes. It returns the cycles spent
// queueing before service began.
func (r *Resource) Use(p *Proc, d Time, reason string) (queued Time) {
	start, end := r.Reserve(p.eng, d)
	queued = start - p.eng.now
	p.SleepReason(end-p.eng.now, reason)
	return queued
}

// FreeAt returns the time the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// PadTo moves the resource's free time forward to t without counting the
// gap as busy — the next reservation will start no earlier than t. A t
// in the past or before the current free time is a no-op.
func (r *Resource) PadTo(t Time) {
	if t > r.freeAt {
		r.freeAt = t
	}
}

// BusyCycles returns the total cycles the resource has been occupied.
func (r *Resource) BusyCycles() Time { return r.busyCycles }

// Uses returns the number of services performed.
func (r *Resource) Uses() uint64 { return r.uses }

// Utilization returns busy cycles divided by elapsed time (0 if t=0).
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busyCycles) / float64(now)
}
