package experiments

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic streams write into a temporary file in path's
// directory and renames it over path only after the write fully
// succeeded and reached the disk: the file is fsynced before the
// rename, and the parent directory is fsynced after it, so the
// rename-commit is durable — a crash (or kill -9) at any point leaves
// either the old content or the complete new content, never a
// half-written artifact and never a committed name pointing at
// unsynced bytes. A reader — or a later run resuming from a partially
// written sweep directory, or the job server's recovery scan — can
// therefore trust any committed artifact it finds. On any error the
// temporary file is removed and path is left untouched. A temporary
// file may survive only a hard kill; its ".tmp-" infix makes it
// recognizable to cleanup scans (see internal/serve recovery).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if err == nil {
		// Flush the bytes before the rename publishes the name: rename
		// is atomic in the namespace, but without this barrier a crash
		// after the rename could still leave a committed name with
		// truncated content.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the directory entry so the committed name itself survives
	// a crash. Some filesystems refuse to fsync a directory; that only
	// weakens durability of the name (content durability is already
	// guaranteed above), so it is not an error we can act on.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
