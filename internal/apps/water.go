package apps

import (
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// Water is the SPLASH-2 molecular-dynamics simulation, reduced to its
// sharing pattern: n molecules with position/velocity/force state, an
// O(n²) pairwise force computation, barrier-separated phases, and a
// short lock-protected critical section per step (the global potential-
// energy reduction) — the kind of critical section the paper shows
// prefetching makes "extremely expensive".
//
// Each molecule's force is accumulated entirely by its owning processor,
// scanning partners in ascending order, so floating-point results do not
// depend on the processor count.
type Water struct {
	Molecules int
	Steps     int
	// ComputePerPair models the instruction cost of one interaction.
	ComputePerPair int64

	posBase, velBase, frcBase int64 // 3 f64 each per molecule
	peAddr                    int64 // global potential energy (f64)
	outAddr                   int64

	result float64
}

const (
	waterPELock = 3
	waterDT     = 1e-3
)

// NewWater builds an instance.
func NewWater(molecules, steps int) *Water {
	return &Water{Molecules: molecules, Steps: steps, ComputePerPair: 400}
}

// DefaultWater is the scaled default (paper: 512 molecules).
func DefaultWater() *Water { return NewWater(128, 3) }

// PaperWater reproduces the published input.
func PaperWater() *Water { return NewWater(512, 2) }

// Name implements dsm.App.
func (w *Water) Name() string { return "water" }

// Setup implements dsm.App.
func (w *Water) Setup(h *lrc.Heap) {
	w.result = 0
	n := w.Molecules
	bytes := 24 * n
	w.posBase = h.AllocPages((bytes + 4095) / 4096)
	w.velBase = h.AllocPages((bytes + 4095) / 4096)
	w.frcBase = h.AllocPages((bytes + 4095) / 4096)
	w.peAddr = h.AllocPages(1)
	w.outAddr = h.AllocPages(1)
}

func vec(base int64, i, d int) int64 { return base + int64(24*i+8*d) }

// Body implements dsm.App.
func (w *Water) Body(env *dsm.Env) {
	n := w.Molecules
	lo, hi := blockRange(n, env.NProcs(), env.ID)

	if env.ID == 0 {
		r := newRNG(777)
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				env.WF(vec(w.posBase, i, d), r.f64()*10)
				env.WF(vec(w.velBase, i, d), (r.f64()-0.5)*0.1)
			}
		}
	}
	env.Barrier(0)

	for step := 0; step < w.Steps; step++ {
		if env.ID == 0 {
			env.WF(w.peAddr, 0)
		}
		env.Barrier(10 + 4*step)

		// Force phase: O(n²) interactions; each processor owns a block
		// of molecules and reads every other molecule's position.
		localPE := 0.0
		for i := lo; i < hi; i++ {
			var f [3]float64
			var pi [3]float64
			for d := 0; d < 3; d++ {
				pi[d] = env.RF(vec(w.posBase, i, d))
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				env.Compute(w.ComputePerPair)
				var dr [3]float64
				r2 := 1e-6
				for d := 0; d < 3; d++ {
					dr[d] = pi[d] - env.RF(vec(w.posBase, j, d))
					r2 += dr[d] * dr[d]
				}
				inv := 1.0 / r2
				for d := 0; d < 3; d++ {
					f[d] += dr[d] * inv
				}
				localPE += inv
			}
			for d := 0; d < 3; d++ {
				env.WF(vec(w.frcBase, i, d), f[d])
			}
		}

		// Short lock-protected global reduction (the paper's expensive
		// critical section under prefetching).
		env.Lock(waterPELock)
		env.WF(w.peAddr, env.RF(w.peAddr)+localPE)
		env.Unlock(waterPELock)

		env.Barrier(11 + 4*step)

		// Integration phase: owners advance their molecules.
		for i := lo; i < hi; i++ {
			env.Compute(30)
			for d := 0; d < 3; d++ {
				v := env.RF(vec(w.velBase, i, d)) + waterDT*env.RF(vec(w.frcBase, i, d))
				env.WF(vec(w.velBase, i, d), v)
				env.WF(vec(w.posBase, i, d), env.RF(vec(w.posBase, i, d))+waterDT*v)
			}
		}
		env.Barrier(12 + 4*step)
	}

	if env.ID == 0 {
		// Final observable: potential energy of the last step plus total
		// kinetic energy, in a fixed summation order.
		ke := 0.0
		for i := 0; i < n; i++ {
			env.Compute(20)
			for d := 0; d < 3; d++ {
				v := env.RF(vec(w.velBase, i, d))
				ke += v * v
			}
		}
		env.WF(w.outAddr, env.RF(w.peAddr)+0.5*ke)
		w.result = env.RF(w.outAddr)
	}
	env.Barrier(1)
}

// Result implements dsm.App.
func (w *Water) Result() float64 { return w.result }
