package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// TrendSchema tags the per-PR trend records under trends/.
const TrendSchema = "dsm96/trend/v1"

// Trend is one appended snapshot of the ladder experiment: every
// cell's determinism contract (cycles, events, fingerprint, metrics
// key hash — identical on any host) next to its throughput on the
// recorded host. cmd/metricsdiff -trend compares consecutive records:
// determinism fields exactly, throughput within a tolerance and only
// when both records came from the same host class (host.num_cpu).
type Trend struct {
	Schema string `json:"schema"`
	// Seq is the record's position in the trend sequence (file 0001.json
	// has seq 1).
	Seq int `json:"seq"`
	// Label is free-form provenance ("PR 8 snapshot", a commit subject).
	Label      string               `json:"label,omitempty"`
	Experiment string               `json:"experiment"`
	Scale      string               `json:"scale"`
	Host       Host                 `json:"host"`
	Cells      map[string]TrendCell `json:"cells"`
}

// TrendCell is one ladder cell's trend entry.
type TrendCell struct {
	Cycles      int64  `json:"cycles"`
	Events      uint64 `json:"events"`
	Fingerprint string `json:"fingerprint"`
	MetricsKeys string `json:"metrics_keys"`
	// WallNS and EventsPerSec are host-class-scoped throughput facts.
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// BuildTrend folds a completed experiment run into a trend record.
// A run with failed cells cannot become a trend record: the database
// only accumulates grids that ran clean.
func BuildTrend(r *RunResult, seq int, label string) (*Trend, error) {
	if failed := r.Failed(); len(failed) > 0 {
		return nil, fmt.Errorf("pipeline: %d cell(s) failed, refusing a trend record: %v",
			len(failed), failed)
	}
	t := &Trend{
		Schema:     TrendSchema,
		Seq:        seq,
		Label:      label,
		Experiment: r.Experiment.Name,
		Scale:      r.Experiment.Scale,
		Host:       r.Host,
		Cells:      make(map[string]TrendCell, len(r.Cells)),
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if _, dup := t.Cells[c.ID]; dup {
			return nil, fmt.Errorf("pipeline: duplicate cell id %q in trend record", c.ID)
		}
		t.Cells[c.ID] = TrendCell{
			Cycles: c.Cycles, Events: c.Events,
			Fingerprint: c.Fingerprint, MetricsKeys: c.MetricsKeys,
			WallNS: c.WallNS, EventsPerSec: c.EventsPerSec,
		}
	}
	return t, nil
}

// WriteJSON serializes the record (indented, trailing newline; map keys
// sort, so the byte stream is deterministic for fixed measurements).
func (t *Trend) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

var trendFileRE = regexp.MustCompile(`^(\d{4})\.json$`)

// TrendFiles lists the trend records in dir in sequence order.
func TrendFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && trendFileRE.MatchString(e.Name()) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// NextTrendSeq returns the sequence number the next appended record
// gets: one past the highest existing record (1 for an empty dir).
func NextTrendSeq(dir string) (int, error) {
	files, err := TrendFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 1, nil
		}
		return 0, err
	}
	if len(files) == 0 {
		return 1, nil
	}
	last := filepath.Base(files[len(files)-1])
	var n int
	fmt.Sscanf(last, "%04d.json", &n)
	return n + 1, nil
}

// AppendTrend writes the record as the next numbered file in dir
// (created if missing), atomically. The record's Seq must match the
// next sequence number — the caller obtained it from NextTrendSeq, so
// a mismatch means two writers raced, and the loser fails loudly
// rather than renumbering history.
func AppendTrend(dir string, t *Trend) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("pipeline: %w", err)
	}
	next, err := NextTrendSeq(dir)
	if err != nil {
		return "", err
	}
	if t.Seq != next {
		return "", fmt.Errorf("pipeline: trend seq %d, but next record in %s is %04d", t.Seq, dir, next)
	}
	path := filepath.Join(dir, fmt.Sprintf("%04d.json", t.Seq))
	if err := writeArtifact(path, t.WriteJSON); err != nil {
		return "", fmt.Errorf("pipeline: %w", err)
	}
	return path, nil
}
