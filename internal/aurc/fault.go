package aurc

import (
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/trace"
)

// fault brings an invalid page back. AURC has no diffs: the faulting
// processor waits until every automatic update currently in flight toward
// the data holder has drained (the flush/lock-timestamp check), then
// fetches the whole page from the home node or pairwise partner.
func (n *anode) fault(p *sim.Proc, pg int, pe *page, d *pageDir) {
	n.fp.Flush(p)
	p.SleepReason(n.pr.cfg.InterruptTime, reasonInterrupt)
	n.st.PageFaults++
	n.pr.profile(pg).Faults++
	n.emit(pg, trace.KindFault, "pending=%d", len(pe.pending))
	// The span opens after the trap, so its window is exactly the cycles
	// the fetch blocks the processor — one span per page fault, so span
	// counts equal the PageFaults counter.
	op := n.pr.sp.Begin(n.id, spans.OpReadFault, pg, p.Now())
	if f := pe.fetch; f != nil {
		if f.prefetch {
			n.st.UsefulPrefetch++
			f.prefetch = false
		}
		f.gate.Wait(p, reasonFetch)
		// The whole wait rode a transaction someone else started
		// (typically a prefetch): attribute it to remote service.
		op.Mark(n.pr.eng, spans.StageRemote, p.Now())
		n.pr.sp.End(op, p.Now())
		return
	}
	f := &fetchOp{op: op}
	pe.fetch = f
	n.startFetch(p, pg, pe, d, f)
	f.gate.Wait(p, reasonFetch)
	n.pr.sp.End(op, p.Now())
}

// startFetch launches the page transaction; p is the requesting
// processor when called from processor context, nil from engine context.
// It never blocks; completion opens f.gate.
func (n *anode) startFetch(p *sim.Proc, pg int, pe *page, d *pageDir, f *fetchOp) {
	f.snap = n.vts.Clone()
	src := d.source(n.id)
	if src < 0 || src == n.id {
		// This node is the data holder (home or pairwise member): its
		// copy is correct once in-flight updates have landed.
		n.waitUpdatesDrained(func() {
			// The whole wait was draining in-flight updates: the remote
			// writers' traffic is the "service" this fetch waited on.
			f.op.Mark(n.pr.eng, spans.StageRemote, n.pr.eng.Now())
			n.completeFetch(pg, pe, f)
		})
		return
	}
	holder := n.pr.nodes[src]
	reason := reasonFetch
	if f.prefetch {
		reason = reasonPrefetch
	}
	// Flush our own write cache first: any of our updates still buffered
	// (or in flight) must reach the holder before it captures the page,
	// or the incoming copy would clobber them. The holder's update drain
	// covers them once they are on the wire.
	n.wc.flushAll()
	deliver := func() {
		holder.servePageReq(n.id, pg, f)
	}
	if p != nil {
		n.sendFromProc(p, reason, src, requestWireBytes, deliver)
	} else {
		n.sendAsync(src, requestWireBytes, deliver)
	}
}

// servePageReq services a whole-page fetch at the data holder: the
// processor is interrupted (page requests — and particularly prefetch
// floods — need processor intervention, which is why prefetching hurts
// AURC), in-flight updates toward the holder drain, the page streams off
// memory, and the reply carries the full page.
func (n *anode) servePageReq(from, pg int, f *fetchOp) {
	cfg := n.pr.cfg
	requester := n.pr.nodes[from]
	// The request is off the wire; the serve window closes the queueing
	// stage and opens remote service.
	f.op.Mark(n.pr.eng, spans.StageWire, n.pr.eng.Now())
	n.serveCPUSpan(pageReqCost, f.op, func() {
		n.waitUpdatesDrained(func() {
			// Capture the page at this instant. The drain extended the
			// remote stage to here.
			f.op.Mark(n.pr.eng, spans.StageRemote, n.pr.eng.Now())
			data := append([]byte(nil), n.frames.Page(pg)...)
			n.mem.MemTouch(cfg.PageSize)
			bytes := updateHeaderBytes + cfg.PageSize
			n.sendAsync(from, bytes, func() {
				requester.receivePage(pg, data, f)
			})
		})
	})
}

// receivePage lands the page at the requester.
func (n *anode) receivePage(pg int, data []byte, f *fetchOp) {
	pe := n.page(pg)
	if pe.fetch != f {
		// Duplicated (or stale) page reply: its fetch already completed —
		// re-copying the snapshot would clobber updates applied since.
		n.st.DupMsgsSuppressed++
		return
	}
	f.op.Mark(n.pr.eng, spans.StageReply, n.pr.eng.Now())
	n.frames.CopyPage(pg, data)
	n.mem.DMA(len(data))
	n.mem.InvalidatePage(int64(pg) * int64(n.pr.cfg.PageSize))
	n.completeFetch(pg, pe, f)
}

// completeFetch finalizes: everything known as of the fault-time vector
// timestamp is now reflected locally.
func (n *anode) completeFetch(pg int, pe *page, f *fetchOp) {
	for o := range pe.applied {
		if f.snap[o] > pe.applied[o] {
			pe.applied[o] = f.snap[o]
		}
	}
	kept := pe.pending[:0]
	for _, wn := range pe.pending {
		if pe.applied[wn.Owner] < wn.Seq {
			kept = append(kept, wn)
		}
	}
	pe.pending = kept
	if len(pe.pending) == 0 {
		pe.state = stValid
		pe.prefetchedUnused = f.prefetch
	}
	pe.fetch = nil
	// A prefetch span closes when the page lands (nobody is waiting);
	// demand spans close in the waiter's proc context.
	if f.op != nil && f.op.Kind == spans.OpPrefetch {
		n.pr.sp.End(f.op, n.pr.eng.Now())
	}
	f.gate.Open(n.pr.eng)
}

// issuePrefetches mirrors the TreadMarks heuristic: after an acquire or
// barrier, fetch the invalidated pages this processor had cached and
// referenced. AURC prefetches whole pages from their homes; the home
// processor must service every one of them.
func (n *anode) issuePrefetches(p *sim.Proc) {
	queue := n.prefetchQueue
	n.prefetchQueue = nil
	for _, pg := range queue {
		pe := n.page(pg)
		pe.queuedPrefetch = false
		if pe.state != stInvalid || !pe.referenced || pe.fetch != nil {
			continue
		}
		d := n.pr.pageDir(pg)
		n.st.Prefetches++
		n.emit(pg, trace.KindPrefetch, "issue home=%d", d.home)
		// The prefetch gets its own span: issue overheads charge to it,
		// then it detaches and the span window is the flight time that
		// overlap accounting credits as hidden.
		op := n.pr.sp.Begin(n.id, spans.OpPrefetch, pg, p.Now())
		f := &fetchOp{prefetch: true, op: op}
		pe.fetch = f
		n.startFetch(p, pg, pe, d, f)
		n.pr.sp.Detach(n.id, op)
	}
}
