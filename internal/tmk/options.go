package tmk

import (
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
)

// PrefetchStrategy selects the heuristic that decides which invalidated
// pages are prefetched at synchronization points. The paper evaluates the
// past-history heuristic (Referenced) and notes that "a less aggressive
// or adaptive prefetching strategy might reduce overheads", deferring the
// study to a companion report [Bianchini, Pinto, Amorim, ES-401/96];
// these strategies implement that study's design space.
type PrefetchStrategy int

const (
	// PrefetchReferenced is the paper's heuristic: prefetch pages this
	// processor had cached and referenced before they were invalidated.
	PrefetchReferenced PrefetchStrategy = iota
	// PrefetchAlways prefetches every invalidated page, referenced or
	// not — the aggressive end of the spectrum.
	PrefetchAlways
	// PrefetchAdaptive starts like PrefetchReferenced but stops
	// prefetching a page after its prefetches have repeatedly turned out
	// useless (invalidated again before use), and resumes after a
	// demand fault shows the page is hot again.
	PrefetchAdaptive
)

// String returns a short label for reports.
func (s PrefetchStrategy) String() string {
	switch s {
	case PrefetchReferenced:
		return "referenced"
	case PrefetchAlways:
		return "always"
	case PrefetchAdaptive:
		return "adaptive"
	}
	return "?"
}

// adaptiveUselessLimit is the consecutive-useless-prefetch budget per
// page before the adaptive strategy gives up on it.
const adaptiveUselessLimit = 2

// Options tune protocol behaviour beyond the paper's fixed design, for
// ablation studies.
type Options struct {
	// Strategy selects the prefetch heuristic (prefetching variants only).
	Strategy PrefetchStrategy
	// LazyHybrid piggybacks the granter's own diffs on lock-grant
	// messages (the Lazy Hybrid protocol of Dwarkadas, Keleher, Cox and
	// Zwaenepoel, ISCA 1993, which the paper contrasts with its
	// prefetching: "piggybacking updates on a lock grant message when
	// the last releaser of the lock has up-to-date data to provide").
	// The acquirer avoids a page fault for pages the releaser wrote, at
	// the cost of a larger grant message.
	LazyHybrid bool
	// NoPrefetchPriority disables the controller's command priorities:
	// prefetches are queued like demand requests, so they can delay
	// requests a processor is stalled on (ablating the paper's
	// Section 3.1 footnote: "requests may be given high or low priority,
	// so that we can prevent prefetches from delaying requests for which
	// a computation processor is stalled waiting").
	NoPrefetchPriority bool
}

// NewWithOptions builds a protocol with explicit options; New uses the
// paper's defaults.
func NewWithOptions(cfg *params.Config, eng *sim.Engine, net *network.Network, mode Mode, opts Options) *Protocol {
	pr := New(cfg, eng, net, mode)
	pr.opts = opts
	return pr
}
