// Package network models the mesh interconnect of the simulated network
// of workstations, plus the reliable transport the DSM protocols run on.
//
// # The mesh
//
// Messages travel the paper's 4x4 wormhole-routed mesh (any rectangular
// mesh, really): X-Y dimension-ordered routing, a per-hop switch+wire
// latency, and 8-bit-wide links modelled as FCFS resources so that
// message bodies contend for link bandwidth hop by hop. Each node also
// has an egress resource — its network-interface send side — which a
// message occupies for its per-message overhead, serializing
// back-to-back sends from one node. Send is the raw datagram primitive:
// fire-and-forget, completion signalled by a callback when the tail
// arrives.
//
// # Fault injection
//
// InstallFaults interposes a faults.Model between Send and delivery:
// each physical transmission can be dropped at the destination NIC
// (after consuming link bandwidth), duplicated, or held for extra
// cycles so later messages overtake it. Decisions are deterministic —
// pure functions of (seed, src, dst, per-link message index) — so
// faulty runs are exactly as reproducible as fault-free ones. With no
// model installed the interposer does not exist: Send's schedule is
// bit-identical to a build without the faults package.
//
// # Reliable transport
//
// SendReliable is what the protocols use. With no fault model it
// delegates verbatim to Send. With one installed it layers, per ordered
// node pair: sequence numbers, receiver-side duplicate suppression,
// in-order hold-back delivery (the protocols — AURC's automatic
// updates especially — rely on per-pair FIFO), hardware
// acknowledgements, and timeout-driven retransmission with exponential
// backoff in simulated cycles. Degradation is surfaced through the Rel
// counter block (stats.Reliability).
package network

import (
	"fmt"
	"math"

	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
)

// Link directions: 0 = +x, 1 = -x, 2 = +y, 3 = -y.
const numDirs = 4

// Network is the mesh. Methods must be called in engine context (they
// never block; completion is signalled through callbacks).
type Network struct {
	cfg  *params.Config
	eng  *sim.Engine
	n    int
	dimX int
	dimY int

	// links is dense per-node, per-direction storage: the unidirectional
	// link leaving node f in direction d is links[f*numDirs+d]. A value
	// slice replaces the old map[linkID]*Resource so the per-hop lookup
	// on the send fast path is an index computation, not a hashed map
	// access, and the resources sit contiguously in cache.
	links []sim.Resource
	// egress[n] is node n's network-interface send side: each message
	// occupies it for its per-message overhead, so high messaging
	// overheads serialize back-to-back sends (the effect Figure 13's
	// pessimistic AURC curve depends on).
	egress []sim.Resource

	// faults, when non-nil, decides the fate of every physical
	// transmission (see InstallFaults). pairs holds the reliable
	// transport's per-ordered-pair sequencing state; it exists only
	// while a fault model is installed.
	faults *faults.Model
	pairs  []pairState

	// rec, when non-nil, receives per-link occupancy spans (see
	// SetTimeline). Nil — the default — is a no-op receiver.
	rec *timeline.Recorder

	// sp, when non-nil, receives per-sender wire windows (see SetSpans).
	// Nil — the default — is a no-op receiver.
	sp *spans.Tracker

	// Counters. Message and reliability counts are kept per node — on a
	// parallel engine each is written only from its owning shard (or from
	// the serialized replay phase) — and summed by the accessors.
	messages []uint64
	bytes    []uint64
	// rel counts injected faults and the transport's recovery work,
	// per node. All-zero unless a fault model is installed.
	rel []stats.Reliability
	// unacked gauges reliable messages awaiting acknowledgement, per
	// sending node (see Unacked).
	unackedBy []int

	// LinkWaits is total queueing across all messages and links. It is a
	// plain field (not per-node): only the wire walk touches it, and
	// walks are serialized even on a parallel engine.
	LinkWaits sim.Time
}

// New builds a mesh for n nodes, as close to square as possible
// (16 nodes = the paper's 4x4 mesh).
func New(cfg *params.Config, eng *sim.Engine, n int) *Network {
	dimX := int(math.Ceil(math.Sqrt(float64(n))))
	dimY := (n + dimX - 1) / dimX
	return &Network{
		cfg: cfg, eng: eng, n: n, dimX: dimX, dimY: dimY,
		// dimX*dimY covers the full rectangle: X-Y routes can pass
		// through grid positions beyond node n-1 on non-square meshes.
		links:     make([]sim.Resource, dimX*dimY*numDirs),
		egress:    make([]sim.Resource, n),
		messages:  make([]uint64, n),
		bytes:     make([]uint64, n),
		rel:       make([]stats.Reliability, n),
		unackedBy: make([]int, n),
	}
}

// Messages returns the total messages injected, across all nodes.
func (nw *Network) Messages() uint64 {
	var total uint64
	for _, v := range nw.messages {
		total += v
	}
	return total
}

// Bytes returns the total payload bytes injected, across all nodes.
func (nw *Network) Bytes() uint64 {
	var total uint64
	for _, v := range nw.bytes {
		total += v
	}
	return total
}

// Rel returns the merged reliability counter block across all nodes.
// All-zero unless a fault model is installed.
func (nw *Network) Rel() stats.Reliability {
	var r stats.Reliability
	for i := range nw.rel {
		r.Merge(&nw.rel[i])
	}
	return r
}

// Dims returns the mesh dimensions.
func (nw *Network) Dims() (x, y int) { return nw.dimX, nw.dimY }

func (nw *Network) coords(node int) (x, y int) {
	return node % nw.dimX, node / nw.dimX
}

// Hops returns the number of links on the X-Y route between two nodes.
func (nw *Network) Hops(src, dst int) int {
	sx, sy := nw.coords(src)
	dx, dy := nw.coords(dst)
	return abs(dx-sx) + abs(dy-sy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (nw *Network) link(from, dir int) *sim.Resource {
	return &nw.links[from*numDirs+dir]
}

// linkID identifies a unidirectional link leaving node `from` in
// direction `dir`.
type linkID struct {
	from int
	dir  int // 0 = +x, 1 = -x, 2 = +y, 3 = -y
}

// route returns the sequence of (node, direction) links on the X-Y path.
// Send walks the same path inline without materializing it; this helper
// exists for tests and diagnostics.
func (nw *Network) route(src, dst int) []linkID {
	var path []linkID
	x, y := nw.coords(src)
	dx, dy := nw.coords(dst)
	cur := src
	for x != dx {
		dir := 0
		step := 1
		if dx < x {
			dir, step = 1, -1
		}
		path = append(path, linkID{cur, dir})
		x += step
		cur = y*nw.dimX + x
	}
	for y != dy {
		dir := 2
		step := 1
		if dy < y {
			dir, step = 3, -1
		}
		path = append(path, linkID{cur, dir})
		y += step
		cur = y*nw.dimX + x
	}
	return path
}

// reserveHop queues the message body on one link of the path: the head
// cannot enter the link before `arrive+hop`, it additionally queues FCFS
// behind earlier traffic, and the body occupies the link for `transfer`
// cycles. It returns the cycle the head entered the link.
func (nw *Network) reserveHop(from, dir int, arrive, hop, transfer sim.Time) sim.Time {
	r := nw.link(from, dir)
	earliest := arrive + hop
	start := earliest
	if f := r.FreeAt(); f > start {
		start = f
		nw.LinkWaits += f - earliest
	}
	r.PadTo(start)
	r.Reserve(nw.eng, transfer)
	nw.rec.Link(from*numDirs+dir, start, start+transfer)
	return start
}

// SetTimeline attaches a timeline recorder: every link the mesh owns is
// registered as a named track ("n<from><dir>" — the unidirectional link
// leaving node from in direction dir), and each message body's occupancy
// of a link is recorded as a span. Pass nil to detach.
func (nw *Network) SetTimeline(rec *timeline.Recorder) {
	nw.rec = rec
	if rec == nil {
		return
	}
	dirs := [numDirs]string{"+x", "-x", "+y", "-y"}
	names := make([]string, len(nw.links))
	for i := range names {
		names[i] = fmt.Sprintf("n%d%s", i/numDirs, dirs[i%numDirs])
	}
	rec.InitLinks(names)
}

// SetSpans attaches a causal-span tracker: every non-loopback message
// contributes a [send, tail-delivery) wire window on the sending node,
// which overlap accounting counts as network activity attributable to
// that node. Pass nil to detach.
func (nw *Network) SetSpans(tr *spans.Tracker) { nw.sp = tr }

// Send injects a message of `bytes` payload (plus header) from src to
// dst. overhead is the sender-side network-interface setup cost in
// cycles, charged before injection (callers pass cfg.MessagingOverhead
// for ordinary messages, cfg.AURCUpdateOverhead for automatic updates).
// done runs in engine context when the tail of the message arrives at
// dst. Send itself never blocks.
//
// Timing: the head flit leaves the source overhead cycles from now; each
// hop adds switch+wire latency, and the message body occupies every link
// on the path for bytes/linkWidth cycles, queueing FCFS behind earlier
// traffic on each link (wormhole back-pressure is approximated by
// per-link serialization).
func (nw *Network) Send(src, dst, bytes int, overhead sim.Time, done func()) {
	nw.send(src, dst, bytes, overhead, done, nil)
}

// send is the full datagram path, split for the parallel engine into an
// eager source-side prefix — counters, the send-instant clock read, the
// egress reservation, all state owned by src's shard — and the wire
// walk over the globally shared link resources, which runs through
// View(src).Deferred: inline on a sequential engine, during the merge
// barrier (in global fired order, with the clock at the send instant)
// on a parallel one. post, when non-nil, receives the cycle the tail is
// scheduled to arrive — including link queueing and any injected delay,
// and for a dropped message the cycle it would have arrived — in that
// same deferred context; the reliable transport bases retry timeouts on
// it, so they reflect the congestion the message actually experienced.
func (nw *Network) send(src, dst, bytes int, overhead sim.Time, done func(), post func(delivery sim.Time)) {
	view := nw.eng.View(src)
	nw.messages[src]++
	nw.bytes[src] += uint64(bytes)
	sent := view.Now()
	// The network interface processes one send at a time: the message's
	// per-message overhead occupies the sender's egress engine.
	var head sim.Time
	if overhead > 0 {
		_, head = nw.egress[src].Reserve(view, overhead)
	} else {
		head = sent
	}
	if src == dst {
		// Local loopback: no links, just the overhead; stays entirely on
		// the source's shard.
		view.At(head, done)
		return
	}
	view.Deferred(func() {
		delivery := nw.walk(src, dst, bytes, sent, head, done)
		if post != nil {
			post(delivery)
		}
	})
}

// walk reserves every link on the X-Y route (global state: links are
// shared by all nodes), consults the fault model, and schedules the
// delivery on the destination's view. It runs in global context — the
// caller's own when sequential, the merge barrier when parallel — with
// the engine clock at the message's send instant, so link contention
// and fault decisions resolve in the global fired order either way.
func (nw *Network) walk(src, dst, bytes int, sent, head sim.Time, done func()) sim.Time {
	transfer := nw.cfg.NetTransferTime(bytes)
	hop := nw.cfg.SwitchLatency + nw.cfg.WireLatency
	arrive := head
	// Walk the X-Y route link by link (X hops, then Y hops), reserving
	// each in order — the old route() helper without its per-message
	// path slice.
	x, y := nw.coords(src)
	dx, dy := nw.coords(dst)
	cur := src
	for x != dx {
		dir := 0
		step := 1
		if dx < x {
			dir, step = 1, -1
		}
		arrive = nw.reserveHop(cur, dir, arrive, hop, transfer)
		x += step
		cur = y*nw.dimX + x
	}
	for y != dy {
		dir := 2
		step := 1
		if dy < y {
			dir, step = 3, -1
		}
		arrive = nw.reserveHop(cur, dir, arrive, hop, transfer)
		y += step
		cur = y*nw.dimX + x
	}
	delivery := arrive + hop + transfer
	if nw.faults != nil {
		o := nw.faults.Decide(src, dst)
		if o.Drop {
			// Discarded at the destination NIC: the body crossed (and
			// occupied) every link on the path, but done never runs. The
			// wire window still counts — the network was busy either way.
			nw.rel[src].MessagesDropped++
			nw.sp.NetSend(src, sent, delivery)
			return delivery
		}
		if o.ExtraDelay > 0 {
			nw.rel[src].MessagesDelayed++
			delivery += o.ExtraDelay
		}
		if o.Duplicate {
			nw.rel[src].MessagesDuplicated++
			nw.eng.View(dst).At(delivery+o.DupDelay, done)
		}
	}
	nw.sp.NetSend(src, sent, delivery)
	nw.eng.View(dst).At(delivery, done)
	return delivery
}

// MinDeliveryLookahead returns a lower bound on the cycles between any
// cross-node message's send instant and its earliest delivery: two
// switch+wire hops (every route has at least one link, entered and
// exited) plus the body transfer of the smallest wire message (the
// 16-byte hardware ack). It is the conservative-lookahead bound the
// parallel engine partitions time with (sim.Engine.Parallelize); the
// engine asserts it loudly if a replayed delivery ever undercuts it.
func MinDeliveryLookahead(cfg *params.Config) sim.Time {
	hop := cfg.SwitchLatency + cfg.WireLatency
	return 2*hop + cfg.NetTransferTime(ackBytes)
}

// InstallFaults interposes a fault model between Send and delivery and
// arms the reliable transport (SendReliable). A nil model — what
// faults.NewModel returns for a disabled plan — is refused, keeping the
// fault-free fast path structurally identical to a build without fault
// injection.
func (nw *Network) InstallFaults(m *faults.Model) {
	if m == nil {
		return
	}
	nw.faults = m
	nw.pairs = make([]pairState, nw.n*nw.n)
}

// FaultsEnabled reports whether a fault model is installed.
func (nw *Network) FaultsEnabled() bool { return nw.faults != nil }

// LatencyLowerBound returns the uncontended cycles for a message of
// `bytes` between src and dst including overhead — useful for tests and
// for reasoning about parameter sweeps.
func (nw *Network) LatencyLowerBound(src, dst, bytes int, overhead sim.Time) sim.Time {
	if src == dst {
		return overhead
	}
	hops := sim.Time(nw.Hops(src, dst))
	hop := nw.cfg.SwitchLatency + nw.cfg.WireLatency
	return overhead + (hops+1)*hop + nw.cfg.NetTransferTime(bytes)
}
