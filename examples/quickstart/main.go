// Quickstart: write a small shared-memory program against the DSM API,
// run it on the simulated 16-node network of workstations under standard
// TreadMarks and under the overlapping (I+D) protocol with the hardware
// diff controller, and compare the outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// histogram is a tiny DSM program: every processor tallies a slice of a
// data set into per-processor bins; processor 0 merges them after a
// barrier. It exercises faults, diffs, and barriers — the whole protocol.
type histogram struct {
	items  int
	bins   int
	data   int64
	counts int64
	out    int64
	result float64
}

func (h *histogram) Name() string { return "histogram" }

func (h *histogram) Setup(heap *lrc.Heap) {
	h.result = 0
	h.data = heap.AllocPages((4*h.items + 4095) / 4096)
	// One page per processor's bins avoids false sharing on the counts.
	h.counts = heap.AllocPages(16)
	h.out = heap.AllocPages(1)
}

func (h *histogram) Body(env *dsm.Env) {
	np := env.NProcs()
	if env.ID == 0 {
		for i := 0; i < h.items; i++ {
			env.WI(h.data+int64(4*i), (i*2654435761)%h.bins)
		}
	}
	env.Barrier(0)

	mine := h.counts + int64(4096*env.ID)
	local := make([]int, h.bins)
	for i := env.ID; i < h.items; i += np {
		env.Compute(50)
		local[env.RI(h.data+int64(4*i))]++
	}
	for b := 0; b < h.bins; b++ {
		env.WI(mine+int64(4*b), local[b])
	}
	env.Barrier(1)

	if env.ID == 0 {
		checksum := 0
		for b := 0; b < h.bins; b++ {
			total := 0
			for p := 0; p < np; p++ {
				total += env.RI(h.counts + int64(4096*p+4*b))
			}
			checksum += (b + 1) * total
		}
		env.WI(h.out, checksum)
		h.result = float64(env.RI(h.out))
	}
	env.Barrier(2)
}

func (h *histogram) Result() float64 { return h.result }

func main() {
	cfg := params.Default() // Table 1 of the paper: 16 nodes, 4 KB pages...

	for _, spec := range []core.Spec{core.TM(tmk.Base), core.TM(tmk.ID)} {
		app := &histogram{items: 20000, bins: 64}
		res, err := core.Run(cfg, spec, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s: %d cycles, checksum %v (validated against sequential run)\n",
			res.Protocol, res.RunningTime, res.AppResult)
		for _, c := range stats.Categories() {
			fmt.Printf("   %-7s %5.1f%%\n", c, 100*res.Breakdown.Fraction(c))
		}
		fmt.Printf("   diff-ops %.1f%% of execution time, %d messages\n\n",
			res.Breakdown.DiffPercent(), res.Messages)
	}
	fmt.Println("The I+D run moves twin/diff work onto the protocol controller's")
	fmt.Println("DMA engine — compare the diff-ops percentages above.")
}
