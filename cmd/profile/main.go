// Command profile runs one application under one protocol and prints the
// per-page sharing profile: the hottest pages by fault count, their
// invalidation and diff traffic, and how many processors read and write
// them — the analysis view used to explain why an application behaves
// the way it does under page-based DSM (false sharing, migratory pages,
// producer/consumer pages).
//
// Usage:
//
//	profile -app radix -proto Base -top 20
package main

import (
	"flag"
	"fmt"
	"os"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

func loadApp(name, scale string) (dsm.App, error) {
	switch scale {
	case "tiny":
		return apps.Tiny(name)
	case "default":
		return apps.Default(name)
	case "paper":
		switch name {
		case "tsp":
			return apps.PaperTSP(), nil
		case "water":
			return apps.PaperWater(), nil
		case "radix":
			return apps.PaperRadix(), nil
		case "barnes":
			return apps.PaperBarnes(), nil
		case "ocean":
			return apps.PaperOcean(), nil
		case "em3d":
			return apps.PaperEm3d(), nil
		}
		return nil, fmt.Errorf("unknown app %q", name)
	}
	return nil, fmt.Errorf("unknown scale %q", scale)
}

func main() {
	appName := flag.String("app", "radix", "application: tsp, water, radix, barnes, ocean, em3d")
	proto := flag.String("proto", "Base", "protocol: Base, I, I+D, P, I+P, I+P+D, AURC, AURC+P")
	procs := flag.Int("procs", 16, "number of processors")
	top := flag.Int("top", 15, "how many pages to list")
	scale := flag.String("scale", "default", "problem scale: tiny, default, paper")
	flag.Parse()

	var spec core.Spec
	switch *proto {
	case "AURC":
		spec = core.AURC(false)
	case "AURC+P":
		spec = core.AURC(true)
	default:
		m, ok := tmk.ParseMode(*proto)
		if !ok {
			fmt.Fprintf(os.Stderr, "profile: unknown protocol %q\n", *proto)
			os.Exit(2)
		}
		spec = core.TM(m)
	}

	app, err := loadApp(*appName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(2)
	}

	cfg := params.Default()
	cfg.Processors = *procs
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
	fmt.Printf("%s under %s on %d processors: %d cycles, %d shared pages touched\n\n",
		res.App, res.Protocol, *procs, res.RunningTime, len(res.Pages))
	fmt.Print(stats.FormatPageProfiles(res.Pages, *top))
}
