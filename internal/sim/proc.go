package sim

import "fmt"

// Proc is a coroutine-style simulated process. Its body runs on its own
// goroutine, but the engine guarantees that at most one Proc (or the
// engine itself) executes at any instant: the Proc and the engine hand
// control back and forth over unbuffered channels.
//
// All Proc methods that can block (Sleep, WaitOn, Resource.Use, ...) must
// be called from the Proc's own body.
type Proc struct {
	ID   int
	Name string

	eng  *Engine
	wake chan struct{}
	done bool

	// resumeFn is the resume method bound once at construction, so hot
	// paths (Sleep, Cond wakeups) schedule it without allocating a new
	// method-value closure per event.
	resumeFn func()

	// blockReason describes what the process is waiting on, for deadlock
	// reports and stall accounting by higher layers.
	blockReason string

	// OnBlock, if non-nil, is invoked when the process parks, with the
	// reason; OnUnblock with the same reason and the cycles spent parked.
	// The DSM layers use these hooks for time-breakdown accounting.
	OnBlock   func(reason string)
	OnUnblock func(reason string, waited Time)

	blockedAt Time
}

// NewProc registers a process whose body will start executing at time
// `start`. The body runs to completion; the process is then done.
//
// On a parallelized engine the process is bound to the view owning node
// `id` — its wake events, parks, and resumes all go through that shard —
// while remaining registered with the root for deadlock and stall
// reports. On a sequential engine the view is the engine itself.
func (e *Engine) NewProc(id int, name string, start Time, body func(*Proc)) *Proc {
	ve := e.View(id)
	p := &Proc{ID: id, Name: name, eng: ve, wake: make(chan struct{})}
	p.resumeFn = p.resume
	e.procs = append(e.procs, p)
	ve.At(start, func() {
		ve.progressed()
		go func() {
			body(p)
			p.done = true
			ve.handoff <- struct{}{} // return control to engine forever
		}()
		ve.handoffs++
		<-ve.handoff // wait for the body to park or finish
	})
	return p
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park suspends the process until something calls resume. It must only
// be called from the process's own goroutine.
func (p *Proc) park(reason string) {
	p.blockReason = reason
	p.blockedAt = p.eng.now
	if p.OnBlock != nil {
		p.OnBlock(reason)
	}
	p.eng.handoff <- struct{}{} // give control back to the engine
	<-p.wake                    // wait to be resumed
	if p.OnUnblock != nil {
		p.OnUnblock(reason, p.eng.now-p.blockedAt)
	}
	p.blockReason = ""
}

// resume restarts a parked process at the current simulated time. It must
// be called from engine context (inside an event callback).
func (p *Proc) resume() {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished proc %s", p.Name))
	}
	p.eng.progressed()
	p.eng.handoffs++
	p.wake <- struct{}{}
	<-p.eng.handoff // wait for the proc to park again or finish
}

// Sleep suspends the process for d cycles of simulated time.
func (p *Proc) Sleep(d Time) {
	p.SleepReason(d, "sleep")
}

// SleepReason is Sleep with an accounting label.
//
// Fast path: when the wake event would be the very next event to fire
// (nothing else pending before now+d), the sleep completes inline —
// same sequence numbering, same fingerprint, same hook calls as the
// queued path, but without the goroutine round trip through the engine.
func (p *Proc) SleepReason(d Time, reason string) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	if d == 0 {
		return
	}
	e := p.eng
	if wake := e.now + d; e.canElide(wake) {
		if p.OnBlock != nil {
			p.OnBlock(reason)
		}
		e.elide(wake)
		if p.OnUnblock != nil {
			p.OnUnblock(reason, d)
		}
		return
	}
	e.After(d, p.resumeFn)
	p.park(reason)
}

// Yield lets every event already scheduled for the current instant run
// before the process continues. With nothing pending at the current
// instant it is satisfied inline, like SleepReason's fast path.
func (p *Proc) Yield() {
	e := p.eng
	if e.canElide(e.now) {
		if p.OnBlock != nil {
			p.OnBlock("yield")
		}
		e.elide(e.now)
		if p.OnUnblock != nil {
			p.OnUnblock("yield", 0)
		}
		return
	}
	e.After(0, p.resumeFn)
	p.park("yield")
}

// Cond is a wait queue: processes park on it, engine-context code wakes
// them. Wakeups are FIFO, preserving determinism.
type Cond struct {
	Name    string
	waiters []*Proc
}

// Wait parks the calling process on the condition with an accounting label.
func (c *Cond) Wait(p *Proc, reason string) {
	c.waiters = append(c.waiters, p)
	p.park(reason)
}

// Waiters reports how many processes are parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Signal wakes the first waiter (if any) at the current time.
// It must be called from engine context. It reports whether a process
// was woken.
func (c *Cond) Signal(e *Engine) bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	e.After(0, p.resumeFn)
	return true
}

// Broadcast wakes every waiter, in FIFO order, at the current time.
func (c *Cond) Broadcast(e *Engine) int {
	n := len(c.waiters)
	for _, p := range c.waiters {
		e.After(0, p.resumeFn)
	}
	c.waiters = c.waiters[:0]
	return n
}

// Gate is a one-shot latch: processes wait until it opens; once open,
// waits return immediately. Used for request/reply completion.
type Gate struct {
	open bool
	cond Cond
}

// Open releases all current and future waiters. Engine context only.
func (g *Gate) Open(e *Engine) {
	if g.open {
		return
	}
	g.open = true
	g.cond.Broadcast(e)
}

// IsOpen reports whether the gate has opened.
func (g *Gate) IsOpen() bool { return g.open }

// Wait parks until the gate opens (or returns at once if it already has).
func (g *Gate) Wait(p *Proc, reason string) {
	if g.open {
		return
	}
	g.cond.Wait(p, reason)
}
