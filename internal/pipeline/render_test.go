package pipeline

import (
	"os"
	"runtime"
	"strings"
	"testing"
)

// TestRenderByteStableTiny renders every block twice at tiny scale, the
// second time under GOMAXPROCS=1: a generated table is a pure function
// of the (deterministic) simulation, so the bytes must be identical
// across runs and scheduler settings.
func TestRenderByteStableTiny(t *testing.T) {
	first, err := RenderBlocks(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RenderBlocks(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	single, err := RenderBlocks(nil, true)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range BlockNames() {
		if first[name] == "" {
			t.Errorf("%s: empty render", name)
		}
		if first[name] != again[name] {
			t.Errorf("%s: two renders differ:\n--- first\n%s--- again\n%s", name, first[name], again[name])
		}
		if first[name] != single[name] {
			t.Errorf("%s: GOMAXPROCS=1 render differs:\n--- first\n%s--- single\n%s", name, first[name], single[name])
		}
	}
}

// TestCommittedDocCurrent is the in-test form of `cmd/experiment
// -render -check`: the committed EXPERIMENTS.md blocks must match a
// fresh render at the registry scales. This runs the default-scale
// sweeps (~20s), so short mode skips it; `make check` still covers it
// through both this test and scripts/checkdocs.sh.
func TestCommittedDocCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale render in short mode")
	}
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	_, changed, err := RenderDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) > 0 {
		t.Errorf("stale generated block(s) in EXPERIMENTS.md: %v (run `go run ./cmd/experiment -render`)", changed)
	}
}

func markedDoc(inner map[string]string) string {
	var sb strings.Builder
	for _, name := range BlockNames() {
		sb.WriteString("prose before " + name + "\n\n")
		sb.WriteString("<!-- generated:" + name + " -->\n")
		sb.WriteString(inner[name])
		sb.WriteString("<!-- /generated:" + name + " -->\n\n")
	}
	return sb.String()
}

func TestParseBlocksErrors(t *testing.T) {
	blank := map[string]string{}
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"missing block",
			strings.Replace(markedDoc(blank), "generated:fig1-speedups", "generated:fig1-speedup", 2),
			"missing generated block"},
		{"mismatched markers",
			strings.Replace(markedDoc(blank), "<!-- /generated:reliability -->", "<!-- /generated:chaos-l -->", 1),
			`"reliability" closed by`},
		{"duplicate block",
			markedDoc(blank) + "<!-- generated:reliability -->\n<!-- /generated:reliability -->\n",
			`"reliability" appears twice`},
		{"unregistered block",
			markedDoc(blank) + "<!-- generated:bogus-table -->\n<!-- /generated:bogus-table -->\n",
			"unregistered generated block"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBlocks([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseBlocks error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestPatchDoc verifies the -only path: named blocks are replaced,
// everything else — including the other blocks — stays byte-identical.
func TestPatchDoc(t *testing.T) {
	doc := []byte(markedDoc(map[string]string{"chaos-ladder": "old ladder\n", "chaos-sweep": "old sweep\n"}))
	fresh, err := RenderBlocks([]string{"chaos-ladder"}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, changed, err := PatchDoc(doc, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "chaos-ladder" {
		t.Errorf("changed = %v, want [chaos-ladder]", changed)
	}
	s := string(out)
	if !strings.Contains(s, fresh["chaos-ladder"]) {
		t.Error("patched doc lacks the fresh chaos-ladder table")
	}
	if !strings.Contains(s, "old sweep\n") {
		t.Error("PatchDoc touched a block it was not asked to render")
	}
	if _, err := RenderBlocks([]string{"no-such-block"}, true); err == nil {
		t.Error("RenderBlocks accepted an unknown block name")
	}
}

func TestHumanInt(t *testing.T) {
	for n, want := range map[int64]string{
		0: "0", 999: "999", 1000: "1,000", 1228971: "1,228,971", -4567: "-4,567",
	} {
		if got := humanInt(n); got != want {
			t.Errorf("humanInt(%d) = %q, want %q", n, got, want)
		}
	}
}
