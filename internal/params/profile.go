// Profile: the versioned params-profile file format and the builtin
// interconnect backends. A profile makes the machine model data, not
// code — new hardware is a JSON file (schema dsm96/params-profile/v1)
// loaded with -profile, never a code change. The checked-in files under
// profiles/ are the canonical serialization of the builtins; `make
// profiles` proves they parse, validate, and round-trip byte-for-byte.
package params

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ProfileSchema is the versioned identifier every profile file must
// carry. Readers reject any other value: field meanings are frozen per
// schema version, so fingerprints quoted against a profile stay
// comparable forever.
const ProfileSchema = "dsm96/params-profile/v1"

// Builtin backend names. The backend tag names the interconnect family
// a profile's constants model; it labels sweep tables and goldens but
// never branches simulation code — every behavioral difference between
// backends is carried by the parameter values themselves, which is what
// keeps each profile's event schedule deterministic.
const (
	BackendPCI1996 = "pci1996"
	BackendRDMA    = "rdma"
	BackendCXL     = "cxl"
)

// Profile is a named machine: a parameter bundle plus identity metadata.
type Profile struct {
	// Schema must be ProfileSchema.
	Schema string `json:"schema"`
	// Name identifies the profile (builtin name or file stem).
	Name string `json:"name"`
	// Backend is the interconnect-family tag (pci1996, rdma, cxl for
	// the builtins; free-form lowercase for user profiles).
	Backend string `json:"backend"`
	// Description is one line of provenance for tables and docs.
	Description string `json:"description"`
	// Params is the machine itself.
	Params Config `json:"params"`
}

// Config returns a copy of the profile's parameter bundle.
func (p *Profile) Config() Config { return p.Params }

// Validate reports the first inconsistency, naming the offending field.
func (p *Profile) Validate() error {
	switch {
	case p.Schema != ProfileSchema:
		return fmt.Errorf("profile %q: schema = %q, want %q", p.Name, p.Schema, ProfileSchema)
	case p.Name == "" || !wellFormedTag(p.Name):
		return fmt.Errorf("profile: name = %q must be non-empty lowercase [a-z0-9_-]", p.Name)
	case p.Backend == "" || !wellFormedTag(p.Backend):
		return fmt.Errorf("profile %q: backend = %q must be non-empty lowercase [a-z0-9_-]", p.Name, p.Backend)
	}
	if err := p.Params.Validate(); err != nil {
		return fmt.Errorf("profile %q: %w", p.Name, err)
	}
	return nil
}

func wellFormedTag(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Save writes the profile in canonical form: two-space-indented JSON in
// struct field order with a trailing newline. Load(Save(p)) == p, and
// Save is a pure function of the profile's contents, so load → save →
// load is byte-stable — the round-trip guarantee the checked-in files
// and `make profiles` rely on.
func (p *Profile) Save(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// SaveBytes returns the canonical serialization (see Save).
func (p *Profile) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadProfile reads and validates one profile. Decoding is strict: an
// unknown field is an error (naming the field), so typos cannot
// silently fall back to zero values.
func LoadProfile(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	// Trailing content after the document is a malformed file, not a
	// second profile.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("profile %q: trailing data after the profile object", p.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfileFile loads and validates the profile at path.
func LoadProfileFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := LoadProfile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// BuiltinNames lists the builtin profiles in ladder order.
func BuiltinNames() []string { return []string{BackendPCI1996, BackendRDMA, BackendCXL} }

// Builtin returns a fresh copy of the named builtin profile.
func Builtin(name string) (*Profile, error) {
	switch name {
	case BackendPCI1996:
		return pci1996Profile(), nil
	case BackendRDMA:
		return rdmaProfile(), nil
	case BackendCXL:
		return cxlProfile(), nil
	}
	return nil, fmt.Errorf("params: unknown builtin profile %q (have %s)",
		name, strings.Join(BuiltinNames(), ", "))
}

// Builtins returns fresh copies of every builtin profile, ladder order.
func Builtins() []*Profile {
	out := make([]*Profile, 0, len(BuiltinNames()))
	for _, n := range BuiltinNames() {
		p, _ := Builtin(n)
		out = append(out, p)
	}
	return out
}

// ResolveProfile turns a -profile argument into a profile: a builtin
// name wins (pci1996, rdma, cxl), anything else is read as a file path.
func ResolveProfile(nameOrPath string) (*Profile, error) {
	if p, err := Builtin(nameOrPath); err == nil {
		return p, nil
	}
	if _, err := os.Stat(nameOrPath); err != nil {
		return nil, fmt.Errorf("params: -profile %q is neither a builtin (%s) nor a readable file",
			nameOrPath, strings.Join(BuiltinNames(), ", "))
	}
	return LoadProfileFile(nameOrPath)
}

// pci1996Profile is Table 1 of the paper: params.Default() exactly, so
// running it is bit-identical — fingerprints, golden cycles, metrics —
// to a run with no profile at all.
func pci1996Profile() *Profile {
	return &Profile{
		Schema:      ProfileSchema,
		Name:        BackendPCI1996,
		Backend:     BackendPCI1996,
		Description: "Table 1 of the paper: 100 MHz nodes, PCI controller with doorbell and 400-cycle interrupts, 100 MB/s wormhole mesh (1 cycle = 10 ns)",
		Params:      Default(),
	}
}

// rdmaProfile models a 2026 kernel-bypass NIC (400 Gb/s class): the
// interrupt is gone from the data path (user-level completion polling,
// arXiv cs/0703112), messages are posted from user space in ~75 ns, and
// bandwidth is ~500x Table 1 — but the PCIe doorbell costs *more* CPU
// cycles than the 1996 one, because cores got 20x faster while an
// uncached I/O write stayed ~100 ns (arXiv 2409.08141). Timebase:
// 1 cycle = 0.5 ns (a 2 GHz core).
func rdmaProfile() *Profile {
	return &Profile{
		Schema:      ProfileSchema,
		Name:        BackendRDMA,
		Backend:     BackendRDMA,
		Description: "2026 RDMA NIC: kernel bypass, no data-path interrupt, 50 GB/s links, 100 ns PCIe doorbell (1 cycle = 0.5 ns, 2 GHz cores)",
		Params: Config{
			Processors:                16,
			CycleNanos:                0.5,
			TLBSize:                   1024,
			TLBFillTime:               50, // hardware page walk, ~25 ns
			InterruptTime:             0,  // completions polled from user space
			PageSize:                  4096,
			CacheSize:                 1024 * 1024,
			CacheLineSize:             64,
			WriteBufferSize:           16,
			WriteCacheSize:            16,
			MemSetupTime:              160, // ~80 ns DRAM load-to-use
			MemCyclesPerWord:          1,
			WriteThroughCyclesPerWord: 4,   // write-combining posted stores, ~2 GB/s
			PCISetupTime:              300, // ~150 ns PCIe transaction setup
			PCICyclesPerWord:          0,   // setup-dominated DMA at x16 bandwidth
			NetPathBytesPerCycle:      25,  // 50 GB/s (400 Gb/s link)
			MessagingOverhead:         150, // ~75 ns user-level WQE post + doorbell
			AURCUpdateOverhead:        1,   // updates captured in NIC hardware
			SwitchLatency:             200, // ~100 ns cut-through switch
			WireLatency:               100, // ~50 ns cable + serdes per hop
			ListProcessing:            6,   // CPU-cycle software costs carry over
			TwinCyclesPerWord:         5,
			DiffCyclesPerWord:         7,
			DMADiffBaseCycles:         100, // faster device logic: 50 ns clean scan
			DMADiffFullCycles:         1000,
			CommandIssueCost:          200, // ~100 ns uncached PCIe doorbell write
			CtrlDispatchCost:          40,
		},
	}
}

// cxlProfile models a coherent-interconnect / PIO machine: remote
// memory reached by plain loads and stores (arXiv 2409.08141's cheap
// fine-grained remote access), so there is no doorbell (a controller
// command is a store to a coherent mailbox), no data-path interrupt,
// and per-message cost is a handful of cycles. Timebase: 1 cycle =
// 0.5 ns (a 2 GHz core).
func cxlProfile() *Profile {
	return &Profile{
		Schema:      ProfileSchema,
		Name:        BackendCXL,
		Backend:     BackendCXL,
		Description: "2026 coherent interconnect (CXL-style): PIO remote access, no doorbell, no data-path interrupt, 64 GB/s links (1 cycle = 0.5 ns, 2 GHz cores)",
		Params: Config{
			Processors:                16,
			CycleNanos:                0.5,
			TLBSize:                   1024,
			TLBFillTime:               50,
			InterruptTime:             0, // coherence messages service without traps
			PageSize:                  4096,
			CacheSize:                 1024 * 1024,
			CacheLineSize:             64,
			WriteBufferSize:           16,
			WriteCacheSize:            16,
			MemSetupTime:              160,
			MemCyclesPerWord:          1,
			WriteThroughCyclesPerWord: 4,
			PCISetupTime:              40, // ~20 ns coherent transaction initiation
			PCICyclesPerWord:          0,
			NetPathBytesPerCycle:      32, // 64 GB/s (x16 coherent link)
			MessagingOverhead:         10, // ~5 ns: a store that becomes a flit
			AURCUpdateOverhead:        1,
			SwitchLatency:             50, // ~25 ns coherent switch hop
			WireLatency:               30, // ~15 ns retimed wire per hop
			ListProcessing:            6,
			TwinCyclesPerWord:         5,
			DiffCyclesPerWord:         7,
			DMADiffBaseCycles:         100,
			DMADiffFullCycles:         1000,
			CommandIssueCost:          2, // no doorbell: a coherent mailbox store
			CtrlDispatchCost:          40,
		},
	}
}
