package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func flatJSON(t *testing.T, src string) map[string]any {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFlatten(t *testing.T) {
	m := flatJSON(t, `{"a":{"b":1,"c":[{"d":2},{"d":3}]},"e":"x","f":null}`)
	want := map[string]string{
		"a.b": "1", "a.c.0.d": "2", "a.c.1.d": "3", "e": "x",
	}
	if len(m) != len(want)+1 { // +1 for the null leaf at f
		t.Fatalf("flattened to %d paths: %v", len(m), m)
	}
	for k, v := range want {
		got, ok := m[k]
		if !ok {
			t.Errorf("missing path %s", k)
			continue
		}
		if n, isNum := got.(json.Number); isNum {
			if n.String() != v {
				t.Errorf("%s = %v, want %s", k, n, v)
			}
		} else if got != any(v) {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	if v, ok := m["f"]; !ok || v != nil {
		t.Errorf("f = %v (present %v), want null leaf", v, ok)
	}
}

func TestEqualExactIntegers(t *testing.T) {
	// Integers beyond float64 precision must compare exactly when no
	// tolerance applies: these differ only in the last digit.
	a, b := json.Number("9007199254740993"), json.Number("9007199254740992")
	if equal(a, b, 0) {
		t.Error("distinct 2^53-scale integers compared equal")
	}
	if !equal(a, a, 0) {
		t.Error("identical numbers compared unequal")
	}
}

func TestEqualTolerance(t *testing.T) {
	a, b := json.Number("100"), json.Number("104")
	if equal(a, b, 0.03) {
		t.Error("4% drift accepted at 3% tolerance")
	}
	if !equal(a, b, 0.05) {
		t.Error("4% drift rejected at 5% tolerance")
	}
	if equal(json.Number("1"), "1", 1) {
		t.Error("number compared equal to string")
	}
}

func TestPatternMatching(t *testing.T) {
	exact := parsePattern("counters.messages")
	if !exact.matches("counters.messages") || exact.matches("counters.messages_dropped") {
		t.Error("exact pattern mismatch")
	}
	star := parsePattern("spans.*")
	if !star.matches("spans.digest") || !star.matches("spans.overlap.hidden_cycles") {
		t.Error("star pattern should prefix-match")
	}
	if star.matches("counters.spans") {
		t.Error("star pattern matched a non-prefix")
	}
}

// TestEndToEnd exercises the comparison logic the way main does: two
// artifacts that differ in one counter must disagree on exactly that
// flattened path.
func TestEndToEnd(t *testing.T) {
	golden := flatJSON(t, `{"schema":"dsm96/run-metrics/v2","counters":{"messages":10,"bytes":2048}}`)
	drifted := flatJSON(t, `{"schema":"dsm96/run-metrics/v2","counters":{"messages":11,"bytes":2048}}`)
	var bad []string
	for p, gv := range golden {
		if !equal(gv, drifted[p], 0) {
			bad = append(bad, p)
		}
	}
	if len(bad) != 1 || bad[0] != "counters.messages" {
		t.Errorf("drifted paths = %v, want [counters.messages]", bad)
	}
	if !strings.HasPrefix(bad[0], "counters.") {
		t.Error("sanity: drift not in counters block")
	}
}
