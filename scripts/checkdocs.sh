#!/bin/sh
# Docs gate (make docs): the documentation must not drift from the code.
# Checks that every `make <target>` the docs mention exists in the
# Makefile, and that every repo-relative path the docs reference exists.
set -eu
cd "$(dirname "$0")/.."

fail=0

docs="README.md ARCHITECTURE.md EXPERIMENTS.md profiles/README.md"

# 1. Every `make X` mentioned in the docs must be a real Makefile target.
for t in $(grep -ohE 'make [a-z-]+' $docs | awk '{print $2}' | sort -u); do
	if ! grep -qE "^$t:" Makefile; then
		echo "checkdocs: $t mentioned as a make target but not in Makefile" >&2
		fail=1
	fi
done

# 2. Every path-looking reference must exist: `cmd/...`, `internal/...`,
# `examples/...`, `profiles/...` (testdata files are covered by their
# qualified internal/... spelling), and `*.md` files.
refs=$(
	grep -ohE '(\./)?(cmd|internal|examples|profiles|scripts)/[A-Za-z0-9_./-]+' $docs
	grep -ohE '[A-Za-z0-9_-]+\.md' $docs
)
for r in $(printf '%s\n' "$refs" | sed 's|^\./||; s|[).,:;]*$||' | sort -u); do
	case "$r" in
	# Prose shorthands that name a package family, not a literal path.
	*/...) continue ;;
	esac
	if [ ! -e "$r" ]; then
		# Paths inside packages may be referenced as pkg/file.go even
		# when only the package dir is meant; require the dir at least.
		if [ ! -e "$(dirname "$r")" ]; then
			echo "checkdocs: $r referenced in docs but does not exist" >&2
			fail=1
		fi
	fi
done

# 3. Quick-start commands must name real main packages.
for d in $(grep -ohE 'go run \./[A-Za-z0-9/_-]+' $docs | awk '{print $3}' | sort -u); do
	if [ ! -d "${d#./}" ]; then
		echo "checkdocs: quick-start names $d but the directory is missing" >&2
		fail=1
	fi
done

# 4. Every flag a documented dsmsim/sweep/metricsdiff/experiment/bench
# invocation uses must still be registered in that command's main.go
# (catches stale flag names when a CLI flag is renamed but the docs keep
# the old spelling).
for tool in dsmsim sweep metricsdiff experiment bench dsmserve; do
	# Anchor on a non-flag, non-word char before the tool name so that
	# "metricsdiff -bench" or "go test -benchtime" never parse as an
	# invocation of cmd/bench, and stop at # so `make bench  # = go
	# test ...` comments don't leak go-test flags into the scan.
	flags=$(grep -ohE "(^|[^-A-Za-z])$tool [^\`|#]*" $docs |
		grep -oE ' -[a-z][a-z-]*' | sed 's/^ -//' | sort -u)
	for f in $flags; do
		if ! grep -qE "flag\.[A-Za-z0-9]+\(\&?[A-Za-z]*,? ?\"$f\"" "cmd/$tool/main.go"; then
			echo "checkdocs: docs use $tool -$f but cmd/$tool/main.go does not register it" >&2
			fail=1
		fi
	done
done

# 5. The reverse of check 4 for the fault-injection, liveness, and
# parallel-engine surface: these flags are the user-facing contract of
# the chaos machinery and the sharded engine, so the docs must keep
# mentioning them (check 4 then verifies the spelling against the CLI
# registration).
for f in ctrl-crash ctrl-hang watchdog chaos schema workers bench profile backends \
	trend snapshot render force-host engine-profile server store; do
	if ! grep -qE -- "-$f" $docs; then
		echo "checkdocs: flag -$f is registered in a CLI but never documented" >&2
		fail=1
	fi
done

# 6. The generated tables of EXPERIMENTS.md must match a fresh render:
# cmd/experiment -render -check re-runs the underlying simulations and
# exits nonzero naming any stale block. This is the slow check (~20s of
# simulation), so it runs last, after the cheap greps have had their
# chance to fail fast.
if ! go run ./cmd/experiment -render -check; then
	echo "checkdocs: EXPERIMENTS.md generated blocks are stale (run: go run ./cmd/experiment -render)" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	echo "checkdocs: FAILED" >&2
	exit 1
fi
echo "checkdocs: ok"
