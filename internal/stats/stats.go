// Package stats implements the paper's per-processor cycle accounting:
// normalized execution time broken into busy time, data fetch latency,
// synchronization time, IPC overhead, and "others" (TLB miss latency,
// write-buffer stall time, interrupt time, cache miss latency), plus the
// diff-operation time percentage printed above each bar in Figures 2 and
// 5-12, and traffic/prefetch counters.
package stats

import (
	"fmt"
	"strings"
)

// Category identifies where a processor's cycles went.
type Category int

const (
	// Busy is useful application work on the computation processor.
	Busy Category = iota
	// Data is page/diff fetch latency: stalls on access faults, including
	// coherence processing and network latency (paper: "data").
	Data
	// Synch is lock acquire/release and barrier wait time, including
	// interval and write-notice processing (paper: "synch").
	Synch
	// IPC is time the computation processor spends servicing requests
	// from remote processors (paper: "ipc").
	IPC
	// Other bundles TLB miss latency, write-buffer stalls, interrupt
	// entry/exit, and cache miss latency (paper: "others").
	Other
	// NumCategories is the number of accounting categories; valid
	// Category values are 0 <= c < NumCategories, so fixed-size arrays
	// indexed by Category replace maps in result types.
	NumCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case Busy:
		return "busy"
	case Data:
		return "data"
	case Synch:
		return "synch"
	case IPC:
		return "ipc"
	case Other:
		return "others"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories lists all categories in the paper's stacking order
// (bottom to top of the bars).
func Categories() []Category {
	return []Category{Busy, Data, Synch, IPC, Other}
}

// ProcStats accumulates cycles and event counters for one computation
// processor.
type ProcStats struct {
	Cycles [NumCategories]int64

	// DiffCycles is time spent on diff-related operations (twinning, diff
	// generation, diff application) attributable to this processor's
	// execution — the percentage on top of the paper's bars.
	DiffCycles int64

	// Counters.
	SharedReads     uint64
	SharedWrites    uint64
	CacheMisses     uint64
	TLBMisses       uint64
	WriteBuffStalls uint64
	PageFaults      uint64 // read access faults
	WriteFaults     uint64 // write to non-writable page
	LockAcquires    uint64
	Barriers        uint64
	DiffsCreated    uint64
	DiffsApplied    uint64
	TwinsCreated    uint64
	MsgsSent        uint64
	BytesSent       uint64
	Prefetches      uint64
	UselessPrefetch uint64 // prefetched but invalidated before use
	UsefulPrefetch  uint64 // page fault satisfied by a prefetch
	Interrupts      uint64
	// DupMsgsSuppressed counts protocol-level duplicate messages this
	// node refused to re-apply (stale lock grants, repeated diff or page
	// replies). The reliable transport already deduplicates at the NIC;
	// this counter is the protocols' own defense-in-depth firing.
	DupMsgsSuppressed uint64

	// PrefetchUseCycles accumulates, over prefetches that were used, the
	// simulated cycles between issuing the prefetch and the first use of
	// the page (the paper quotes 5K-600K cycles for its applications).
	PrefetchUseCycles uint64
	PrefetchUseCount  uint64

	// Degradation counters (controller fault injection). A node whose
	// protocol controller crashes or wedges past the submit timeout fails
	// over to inline software protocol handling and keeps running.
	//
	// ControllerFailovers counts the node declaring its controller dead
	// (at most once per run per node).
	ControllerFailovers uint64
	// DegradedNodeCycles is how much of the run this node spent in
	// software-fallback mode after its controller failed.
	DegradedNodeCycles uint64
	// SoftwareFallbackDiffs counts diffs this node created while
	// degraded — twin comparisons (or salvaged write vectors) done by the
	// computation processor instead of the controller's DMA engine.
	SoftwareFallbackDiffs uint64
	// CtrlFallbackJobs counts controller commands swallowed by a crashed
	// or hung controller and redone on the computation processor.
	CtrlFallbackJobs uint64
}

// Add charges d cycles to category c.
func (s *ProcStats) Add(c Category, d int64) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative charge %d to %s", d, c))
	}
	s.Cycles[c] += d
}

// Total returns the sum over all categories.
func (s *ProcStats) Total() int64 {
	var t int64
	for _, v := range s.Cycles {
		t += v
	}
	return t
}

// Merge adds o into s.
func (s *ProcStats) Merge(o *ProcStats) {
	for i := range s.Cycles {
		s.Cycles[i] += o.Cycles[i]
	}
	s.DiffCycles += o.DiffCycles
	s.SharedReads += o.SharedReads
	s.SharedWrites += o.SharedWrites
	s.CacheMisses += o.CacheMisses
	s.TLBMisses += o.TLBMisses
	s.WriteBuffStalls += o.WriteBuffStalls
	s.PageFaults += o.PageFaults
	s.WriteFaults += o.WriteFaults
	s.LockAcquires += o.LockAcquires
	s.Barriers += o.Barriers
	s.DiffsCreated += o.DiffsCreated
	s.DiffsApplied += o.DiffsApplied
	s.TwinsCreated += o.TwinsCreated
	s.MsgsSent += o.MsgsSent
	s.BytesSent += o.BytesSent
	s.Prefetches += o.Prefetches
	s.UselessPrefetch += o.UselessPrefetch
	s.UsefulPrefetch += o.UsefulPrefetch
	s.Interrupts += o.Interrupts
	s.DupMsgsSuppressed += o.DupMsgsSuppressed
	s.PrefetchUseCycles += o.PrefetchUseCycles
	s.PrefetchUseCount += o.PrefetchUseCount
	s.ControllerFailovers += o.ControllerFailovers
	s.DegradedNodeCycles += o.DegradedNodeCycles
	s.SoftwareFallbackDiffs += o.SoftwareFallbackDiffs
	s.CtrlFallbackJobs += o.CtrlFallbackJobs
}

// AvgPrefetchLead returns the mean cycles between a prefetch being issued
// and the page's first subsequent use (0 when no prefetch was used).
func (s *ProcStats) AvgPrefetchLead() float64 {
	if s.PrefetchUseCount == 0 {
		return 0
	}
	return float64(s.PrefetchUseCycles) / float64(s.PrefetchUseCount)
}

// Breakdown is the aggregate result of a run: total running time and the
// machine-wide distribution of cycles over categories.
type Breakdown struct {
	// RunningTime is the parallel execution time in cycles (the finish
	// time of the slowest processor).
	RunningTime int64
	// PerProc holds each processor's accounting.
	PerProc []*ProcStats
}

// Sum returns the machine-wide accounting (all processors merged).
func (b *Breakdown) Sum() *ProcStats {
	var out ProcStats
	for _, p := range b.PerProc {
		out.Merge(p)
	}
	return &out
}

// Fraction returns category c's share of total accounted cycles, in
// [0, 1]. Returns 0 when nothing has been accounted.
func (b *Breakdown) Fraction(c Category) float64 {
	s := b.Sum()
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Cycles[c]) / float64(t)
}

// DiffPercent returns diff-related time as a percentage of total
// accounted execution time (the number atop the paper's bars).
func (b *Breakdown) DiffPercent() float64 {
	s := b.Sum()
	t := s.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.DiffCycles) / float64(t)
}

// Speedup computes sequentialCycles / RunningTime.
func Speedup(sequentialCycles, runningTime int64) float64 {
	if runningTime == 0 {
		return 0
	}
	return float64(sequentialCycles) / float64(runningTime)
}

// FormatBar renders the run as one line in the style of the paper's
// stacked bars: a label, the normalized height versus base (in percent),
// and each category's share.
func (b *Breakdown) FormatBar(label string, baseRunningTime int64) string {
	norm := 100.0
	if baseRunningTime > 0 {
		norm = 100 * float64(b.RunningTime) / float64(baseRunningTime)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %6.0f%% |", label, norm)
	for _, c := range Categories() {
		fmt.Fprintf(&sb, " %s %5.1f%%", c, 100*b.Fraction(c))
	}
	fmt.Fprintf(&sb, " | diff-ops %4.1f%%", b.DiffPercent())
	return sb.String()
}

// CounterTable renders the aggregate counters for reports. Rows are an
// ordered slice, not a ranged map, so the emission order is fixed by
// construction: memory behavior first, then protocol activity, then
// traffic and prefetching.
func (b *Breakdown) CounterTable() string {
	s := b.Sum()
	rows := []struct {
		name string
		val  uint64
	}{
		{"shared reads", s.SharedReads},
		{"shared writes", s.SharedWrites},
		{"cache misses", s.CacheMisses},
		{"tlb misses", s.TLBMisses},
		{"wbuf stalls", s.WriteBuffStalls},
		{"page faults", s.PageFaults},
		{"write faults", s.WriteFaults},
		{"lock acquires", s.LockAcquires},
		{"barriers", s.Barriers},
		{"twins created", s.TwinsCreated},
		{"diffs created", s.DiffsCreated},
		{"diffs applied", s.DiffsApplied},
		{"interrupts", s.Interrupts},
		{"messages", s.MsgsSent},
		{"bytes", s.BytesSent},
		{"prefetches", s.Prefetches},
		{"useful prefetch", s.UsefulPrefetch},
		{"useless prefetch", s.UselessPrefetch},
		{"dup msgs dropped", s.DupMsgsSuppressed},
		{"ctrl failovers", s.ControllerFailovers},
		{"degraded cycles", s.DegradedNodeCycles},
		{"fallback diffs", s.SoftwareFallbackDiffs},
		{"fallback jobs", s.CtrlFallbackJobs},
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-18s %12d\n", r.name, r.val)
	}
	if s.PrefetchUseCount > 0 {
		fmt.Fprintf(&sb, "  %-18s %12.0f cycles\n", "prefetch lead", s.AvgPrefetchLead())
	}
	return sb.String()
}
