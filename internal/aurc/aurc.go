// Package aurc implements AURC: a software DSM based on Shrimp-style
// automatic updates and optimized pairwise sharing (Iftode et al., HPCA
// 1996), as evaluated in Section 5.2 of the paper.
//
// Differences from TreadMarks: there are no twins and no diffs. Shared
// writes are written through and the (simulated) network interface
// automatically propagates them — to the pairwise partner while a page is
// shared by two processors, or to the page's home node once the sharing
// set grows. Consecutive updates combine in a small write cache. Release
// consistency is maintained with the same interval/write-notice machinery
// as TreadMarks, but a page fault fetches the whole page from its home
// (or pairwise partner) after waiting for in-flight updates to drain
// (flush/lock timestamps).
package aurc

import (
	"fmt"
	"sort"

	"dsm96/internal/lrc"
	"dsm96/internal/memsys"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
	"dsm96/internal/trace"
)

// Page access states.
const (
	stInvalid = iota
	stValid
)

// Stall/accounting reasons.
const (
	reasonInterrupt = "interrupt"
	reasonFetch     = "page-fetch"
	reasonLock      = "lock"
	reasonLockGrant = "lock-grant"
	reasonBarrier   = "barrier"
	reasonPrefetch  = "prefetch-issue"
	reasonSteal     = "ipc-steal"
)

const (
	localLockCost    = 20
	homeForwardCost  = 50
	requestWireBytes = 40
	pageReqCost      = 100 // home-side software to locate and map the page
)

// categoryFor maps stall reasons to the paper's categories (same mapping
// as TreadMarks).
func categoryFor(reason string) stats.Category {
	switch reason {
	case memsys.ReasonBusy:
		return stats.Busy
	case memsys.ReasonTLBFill, memsys.ReasonCacheMiss, memsys.ReasonWBFull, reasonInterrupt:
		return stats.Other
	case reasonFetch:
		return stats.Data
	case reasonLock, reasonLockGrant, reasonBarrier, reasonPrefetch:
		return stats.Synch
	case reasonSteal:
		return stats.IPC
	}
	return stats.Other
}

// sharing phase of a page.
const (
	phPrivate  = iota // at most one sharer
	phPairwise        // exactly two sharers, bi-directional mapping
	phHomed           // write-through to a home node by everyone
)

// pageDir is the global sharing directory entry for a page (kept by the
// home node in the real system; centralized here).
//
// The home is the page's first sharer and is stable for the page's
// lifetime: it receives every automatic update, so its copy is always
// complete and page fetches can always be served from it. While exactly
// two processors share the page, the mapping is bi-directional (the
// pairwise optimization: the home's writes are also propagated to the
// partner, so neither side ever page-faults). Once more processors join,
// the system reverts to write-through to the home by all (the paper's
// third-sharer replacement trick is an initialization-effect optimization
// we forgo: it would make a mid-join node the data source before its
// copy is complete — see DESIGN.md).
type pageDir struct {
	phase   int
	sharers []int // arrival order; sharers[0] is the home
	home    int
}

// routeTo returns where node id's writes to this page must be propagated
// (-1 for nowhere).
func (d *pageDir) routeTo(id int) int {
	if len(d.sharers) < 2 {
		return -1
	}
	if id != d.home {
		return d.home
	}
	if d.phase == phPairwise {
		// Bi-directional pairwise mapping: the home's writes flow to the
		// partner as well.
		if d.sharers[0] == id {
			return d.sharers[1]
		}
		return d.sharers[0]
	}
	return -1
}

// source returns the node a faulting processor fetches the page from
// (-1 when the faulting processor's own copy is authoritative).
func (d *pageDir) source(id int) int {
	if len(d.sharers) == 0 || d.home == id {
		return -1
	}
	return d.home
}

// page is one node's view of one page.
type page struct {
	state            int
	pending          []lrc.WriteNotice
	applied          []int32
	referenced       bool
	fetch            *fetchOp
	prefetchedUnused bool
	queuedPrefetch   bool
}

type fetchOp struct {
	gate     sim.Gate
	prefetch bool
	// snap is the requester's vector timestamp at fault time: after the
	// fetch, everything it covers is reflected locally.
	snap lrc.VTS
	// op is the causal span riding the fetch (nil when spans are off).
	// Demand ops are closed by the waiter in processor context; prefetch
	// ops close when the page lands.
	op *spans.Op
}

type plock struct {
	hasToken bool
	inCS     bool
	next     *lockReq
	tail     int
	gate     *sim.Gate
}

type lockReq struct {
	from int
	vts  lrc.VTS
	// op is the requester's acquire span, travelling with the request.
	op *spans.Op
}

// anode is the per-node AURC state.
type anode struct {
	id     int
	pr     *Protocol
	mem    *memsys.Node
	fp     *memsys.FastPath
	st     *stats.ProcStats
	proc   *sim.Proc
	frames *lrc.Frames
	cpu    sim.Resource

	vts lrc.VTS
	// noticed[o] is the highest interval seq of owner o whose write
	// notices this node has processed.
	noticed []int32
	ivals   [][]*lrc.Interval
	// pages[pg] is this node's view of page pg (nil until first touched);
	// page numbers are dense, so a slice beats a map on the fault path.
	pages []*page
	// written is the set of pages modified in the current interval.
	written map[int]bool
	locks   map[int]*plock

	wc *writeCache

	// updatesSent[d] counts updates this node has injected toward node d;
	// arrival counting lives on the destination (updatesArrived).
	updatesSent []uint64
	// updatesArrived counts updates this node has received and applied.
	updatesArrived uint64
	// sentTotalTo me, across all nodes, is derived on demand.
	drainWaiters []*drainWaiter

	prefetchQueue []int
	// lastBarrierVTS is the global vector timestamp of the last barrier
	// this node left; the next arrival ships every interval beyond it so
	// the manager's knowledge stays causally closed.
	lastBarrierVTS lrc.VTS
	barrierGate    *sim.Gate
	// barrierOp is the node's in-flight barrier span, so the manager's
	// release path can mark milestones on it.
	barrierOp *spans.Op
}

type drainWaiter struct {
	need uint64
	fn   func()
}

// Protocol is an AURC DSM instance.
type Protocol struct {
	cfg      *params.Config
	eng      *sim.Engine
	net      *network.Network
	heap     *lrc.Heap
	prefetch bool

	nodes []*anode
	dir   map[int]*pageDir
	bars  map[int]*barrier

	profiles map[int]*stats.PageProfile
	// tracer, when set, records structured protocol events (faults,
	// automatic-update drains, prefetch issues) — see SetTracer.
	tracer *trace.Buffer
	// rec, when set, records per-node phase spans — see SetTimeline.
	rec *timeline.Recorder
	// sp, when set, collects causal operation spans — see SetSpans.
	sp *spans.Tracker
}

// New builds the protocol (prefetch selects AURC+P).
func New(cfg *params.Config, eng *sim.Engine, net *network.Network, prefetch bool) *Protocol {
	pr := &Protocol{
		cfg:      cfg,
		eng:      eng,
		net:      net,
		heap:     lrc.NewHeap(cfg.PageSize),
		prefetch: prefetch,
		dir:      make(map[int]*pageDir),
		bars:     make(map[int]*barrier),
		profiles: make(map[int]*stats.PageProfile),
	}
	for i := 0; i < cfg.Processors; i++ {
		mem := memsys.NewNode(i, cfg, eng)
		n := &anode{
			id:             i,
			pr:             pr,
			mem:            mem,
			fp:             memsys.NewFastPath(mem),
			st:             &stats.ProcStats{},
			frames:         lrc.NewFrames(cfg.PageSize),
			cpu:            sim.Resource{Name: fmt.Sprintf("cpu%d", i)},
			vts:            lrc.NewVTS(cfg.Processors),
			lastBarrierVTS: lrc.NewVTS(cfg.Processors),
			noticed:        make([]int32, cfg.Processors),
			ivals:          make([][]*lrc.Interval, cfg.Processors),
			written:        make(map[int]bool),
			locks:          make(map[int]*plock),
			updatesSent:    make([]uint64, cfg.Processors),
		}
		n.wc = newWriteCache(n, cfg.WriteCacheSize)
		pr.nodes = append(pr.nodes, n)
	}
	return pr
}

// Prefetching reports whether this instance is AURC+P.
func (pr *Protocol) Prefetching() bool { return pr.prefetch }

// Heap implements dsm.System.
func (pr *Protocol) Heap() *lrc.Heap { return pr.heap }

// Procs implements dsm.System.
func (pr *Protocol) Procs() int { return pr.cfg.Processors }

// InstallProc binds processor id's sim.Proc and accounting hook.
func (pr *Protocol) InstallProc(id int, p *sim.Proc) {
	n := pr.nodes[id]
	n.proc = p
	st := n.st
	if rec, sp := pr.rec, pr.sp; rec != nil || sp != nil {
		// Observability on: mirror every charge as the span
		// [now-waited, now) on the node's timeline track and/or onto the
		// node's current operation span. Both receivers are nil-safe, so
		// one closure serves any combination.
		p.OnUnblock = func(reason string, waited sim.Time) {
			c := categoryFor(reason)
			st.Add(c, waited)
			rec.Stall(id, reason, p.Now()-waited, p.Now())
			sp.Charge(id, c, waited, p.Now())
		}
		return
	}
	p.OnUnblock = func(reason string, waited sim.Time) {
		st.Add(categoryFor(reason), waited)
	}
}

// FinishProc flushes lazily accumulated busy time at body end.
func (pr *Protocol) FinishProc(id int, p *sim.Proc) { pr.nodes[id].fp.Flush(p) }

// Breakdown assembles the run's aggregate accounting.
func (pr *Protocol) Breakdown(t sim.Time) *stats.Breakdown {
	b := &stats.Breakdown{RunningTime: t}
	for _, n := range pr.nodes {
		b.PerProc = append(b.PerProc, n.st)
	}
	return b
}

// NodeStats returns processor id's accounting.
func (pr *Protocol) NodeStats(id int) *stats.ProcStats { return pr.nodes[id].st }

func (pr *Protocol) profile(pg int) *stats.PageProfile {
	p, ok := pr.profiles[pg]
	if !ok {
		p = &stats.PageProfile{Page: pg}
		pr.profiles[pg] = p
	}
	return p
}

// PageProfiles implements stats.PageProfiler.
func (pr *Protocol) PageProfiles() []stats.PageProfile {
	pages := make([]int, 0, len(pr.profiles))
	for pg := range pr.profiles {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	out := make([]stats.PageProfile, 0, len(pages))
	for _, pg := range pages {
		out = append(out, *pr.profiles[pg])
	}
	return out
}

func (pr *Protocol) pageDir(pg int) *pageDir {
	d, ok := pr.dir[pg]
	if !ok {
		d = &pageDir{}
		pr.dir[pg] = d
	}
	return d
}

func (n *anode) page(pg int) *page {
	if pg < len(n.pages) {
		if pe := n.pages[pg]; pe != nil {
			return pe
		}
	} else {
		n.pages = append(n.pages, make([]*page, pg+1-len(n.pages))...)
	}
	pe := &page{state: stValid, applied: make([]int32, n.pr.cfg.Processors)}
	n.pages[pg] = pe
	return pe
}

func (n *anode) lock(l int) *plock {
	lk, ok := n.locks[l]
	if !ok {
		lk = &plock{}
		home := l % n.pr.cfg.Processors
		if n.id == home {
			lk.hasToken = true
			lk.tail = home
		}
		n.locks[l] = lk
	}
	return lk
}

func (n *anode) absorbSteal(p *sim.Proc) {
	if n.fp.Pending() > 1000 {
		n.fp.Flush(p)
	}
	if f := n.cpu.FreeAt(); f > p.Now() {
		n.fp.Flush(p)
		if f = n.cpu.FreeAt(); f > p.Now() {
			p.SleepReason(f-p.Now(), reasonSteal)
		}
	}
}

// touchDirectory records an access and runs the sharing state machine:
// private -> pairwise (second sharer) -> one-time replacement of the
// first member by a third sharer -> home-based write-through for all.
// It returns the directory entry. When the transition invalidates some
// node's mapping, that node's page state flips to invalid.
func (pr *Protocol) touchDirectory(pg, id int) *pageDir {
	d := pr.pageDir(pg)
	for _, s := range d.sharers {
		if s == id {
			return d
		}
	}
	switch len(d.sharers) {
	case 0:
		d.sharers = []int{id}
		d.home = id
		return d // the home's copy (zeroed) is the truth from the start
	case 1:
		d.sharers = append(d.sharers, id)
		d.phase = phPairwise
	default:
		// More processors join: revert to write-through to the home by
		// all (the pairwise mapping is torn down; the ex-partner keeps a
		// valid copy until a write notice invalidates it).
		d.sharers = append(d.sharers, id)
		d.phase = phHomed
	}
	// Mapping the page into a new node transfers its current contents:
	// the joiner starts invalid and fetches from the home, whose copy is
	// complete by construction.
	pr.nodes[id].page(pg).state = stInvalid
	return d
}

// access performs protocol checks and timing for one shared reference.
func (n *anode) access(p *sim.Proc, addr int64, write bool, size int) {
	n.absorbSteal(p)
	pg := int(addr) / n.pr.cfg.PageSize
	pe := n.page(pg)
	n.pr.touchDirectory(pg, n.id)
	for i := 0; pe.state == stInvalid; i++ {
		if i > 64 {
			panic(fmt.Sprintf("aurc: node %d page %d fault livelock", n.id, pg))
		}
		d := n.pr.touchDirectory(pg, n.id)
		n.fault(p, pg, pe, d)
	}
	pe.referenced = true
	if pe.prefetchedUnused {
		pe.prefetchedUnused = false
		n.st.UsefulPrefetch++
	}
	if write {
		if n.id < 64 {
			n.pr.profile(pg).Writers |= 1 << uint(n.id)
		}
		n.fp.WriteThrough(p, addr, n.st)
		n.written[pg] = true
		// Route the automatic update using the directory state as of NOW:
		// the sharing set can change (pairwise replacement, home
		// transition) while this processor is stalled, and the update
		// must go wherever the current mapping points.
		d := n.pr.touchDirectory(pg, n.id)
		if dst := d.routeTo(n.id); dst >= 0 {
			n.wc.add(p, dst, addr, size)
		}
	} else {
		if n.id < 64 {
			n.pr.profile(pg).Readers |= 1 << uint(n.id)
		}
		n.fp.Read(p, addr, n.st)
		n.pr.touchDirectory(pg, n.id)
	}
}

// Read32 implements dsm.System.
func (pr *Protocol) Read32(p *sim.Proc, id int, addr int64) uint32 {
	n := pr.nodes[id]
	n.access(p, addr, false, 4)
	return n.frames.ReadU32(addr)
}

// Write32 implements dsm.System.
func (pr *Protocol) Write32(p *sim.Proc, id int, addr int64, v uint32) {
	n := pr.nodes[id]
	n.access(p, addr, true, 4)
	n.frames.WriteU32(addr, v)
}

// Read64 implements dsm.System.
func (pr *Protocol) Read64(p *sim.Proc, id int, addr int64) uint64 {
	n := pr.nodes[id]
	n.access(p, addr, false, 8)
	return n.frames.ReadU64(addr)
}

// Write64 implements dsm.System.
func (pr *Protocol) Write64(p *sim.Proc, id int, addr int64, v uint64) {
	n := pr.nodes[id]
	n.access(p, addr, true, 8)
	n.frames.WriteU64(addr, v)
}

// Compute implements dsm.System.
func (pr *Protocol) Compute(p *sim.Proc, id int, cycles sim.Time) {
	n := pr.nodes[id]
	n.absorbSteal(p)
	n.fp.AddBusy(cycles)
}

// sendFromProc transmits from processor context (AURC has no controller:
// the CPU always pays the messaging overhead).
func (n *anode) sendFromProc(p *sim.Proc, reason string, dst, bytes int, deliver func()) {
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	p.SleepReason(n.pr.cfg.MessagingOverhead, reason)
	n.pr.net.SendReliable(n.id, dst, bytes, 0, deliver)
}

// sendAsync transmits from engine context, reserving the CPU for the
// network-interface setup.
func (n *anode) sendAsync(dst, bytes int, deliver func()) {
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	_, end := n.cpu.Reserve(n.pr.eng, n.pr.cfg.MessagingOverhead)
	n.pr.eng.At(end, func() {
		n.pr.net.SendReliable(n.id, dst, bytes, 0, deliver)
	})
}

func (n *anode) serveCPU(cost sim.Time, fn func()) {
	n.st.Interrupts++
	_, end := n.cpu.Reserve(n.pr.eng, n.pr.cfg.InterruptTime+cost)
	n.pr.eng.At(end, fn)
}

// serveCPUSpan is serveCPU plus span milestones: the service window's
// start closes the operation's queueing stage, its end the remote stage
// (eagerly stamped with the reservation's future times; spans.End sorts
// before partitioning).
func (n *anode) serveCPUSpan(cost sim.Time, op *spans.Op, fn func()) {
	n.st.Interrupts++
	start, end := n.cpu.Reserve(n.pr.eng, n.pr.cfg.InterruptTime+cost)
	op.Mark(n.pr.eng, spans.StageQueue, start)
	op.Mark(n.pr.eng, spans.StageRemote, end)
	n.pr.eng.At(end, fn)
}
