// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (system parameters), Figure 1 (base TreadMarks
// speedups), Figure 2 (execution-time breakdown), Figures 5-10 (overlap
// variants per application), Figures 11-12 (overlapping TreadMarks vs
// AURC and AURC+P), and Figures 13-16 (architectural sensitivity sweeps).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/dsm"
	"dsm96/internal/params"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// Scale selects the problem sizes.
type Scale int

const (
	// ScaleTiny is for tests: seconds of wall time for the whole set.
	ScaleTiny Scale = iota
	// ScaleDefault is the repository default (the paper's inputs scaled
	// down for simulation time, as the authors themselves did).
	ScaleDefault
	// ScalePaper uses the published input sizes (slow).
	ScalePaper
)

// Name returns the spelling ParseScale accepts for the scale — the
// form job specs and experiments.json carry.
func (s Scale) Name() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScalePaper:
		return "paper"
	default:
		return "default"
	}
}

// AppAt builds the named application at the given scale — the same
// construction every figure and sweep cell uses, exported for external
// executors (the job server runs submitted specs through it).
func AppAt(name string, sc Scale) (dsm.App, error) { return appAt(name, sc) }

// appAt builds the named application at the given scale.
func appAt(name string, sc Scale) (dsm.App, error) {
	switch sc {
	case ScaleTiny:
		return apps.Tiny(name)
	case ScalePaper:
		switch name {
		case "tsp":
			return apps.PaperTSP(), nil
		case "water":
			return apps.PaperWater(), nil
		case "radix":
			return apps.PaperRadix(), nil
		case "barnes":
			return apps.PaperBarnes(), nil
		case "ocean":
			return apps.PaperOcean(), nil
		case "em3d":
			return apps.PaperEm3d(), nil
		}
		return nil, fmt.Errorf("experiments: unknown app %q", name)
	default:
		return apps.Default(name)
	}
}

// Run is one simulated data point.
type Run struct {
	App      string
	Protocol string
	Procs    int
	Result   *core.Result
	Err      error
	// Spans is the run's causal-span tracker (nil unless SetSpans(true)
	// armed per-run span collection); cmd/sweep streams it as JSONL.
	Spans *spans.Tracker
	// Wall is the run's wall-clock duration — the only wall-clock
	// reading in the figures path. The simulated results never depend
	// on it; the experiment pipeline reports it as throughput.
	Wall time.Duration
}

// runSpec describes one run to perform.
type runSpec struct {
	app   string
	spec  core.Spec
	cfg   params.Config
	scale Scale
	out   *Run
}

// Run-pool knobs (cmd/sweep -j, the progress line, per-cell metrics
// output). The zero values preserve the historical behavior: one worker
// per CPU, no progress callback, no observer. Results are written into
// preallocated slots in submission order regardless of worker count or
// completion order, so figure output stays deterministic.
var (
	poolMu sync.Mutex
	// poolWorkers bounds concurrent simulations (<= 0 = NumCPU).
	poolWorkers int
	// poolProgress, when set, is called after every completed run with
	// the running (done, submitted) totals across all batches.
	poolProgress func(done, total int)
	// poolObserver, when set, is called once per completed run with the
	// run's global submission sequence number (deterministic: batches
	// are submitted serially) and a copy of the Run. Calls are
	// serialized but may arrive out of sequence order.
	poolObserver func(seq int, r Run)
	// poolSpans, when true, attaches a fresh spans.Tracker to every run
	// so the observer can export per-operation spans. Off by default:
	// span collection allocates per blocking operation.
	poolSpans bool
	// poolEngineWorkers, when > 1, shards every run's event engine
	// across that many OS threads (core.Spec.Workers). The schedule is
	// bit-identical either way, so figures and fingerprints are
	// unaffected; runs whose instrumentation pins them sequential
	// (AURC, spans) simply ignore it.
	poolEngineWorkers int
	// poolBaseCfg, when non-nil, replaces params.Default() as the machine
	// every figure, sweep, and ablation runs on (cmd/sweep -profile). The
	// default — nil — is Table 1, so existing goldens are untouched.
	poolBaseCfg *params.Config
	// poolRemote, when set, replaces local core.Run execution: every
	// run is handed to the callback instead (cmd/sweep -server hands
	// cells to a dsmserve job server and gets memoized results back).
	// Simulations are deterministic, so a remote result is the local
	// result; only wall-clock changes.
	poolRemote func(RemoteRun) (*core.Result, error)
	poolSeq    int
	poolDone   int
	poolTotal  int
)

// RemoteRun is one simulation handed to a remote executor: everything a
// dsm96/job/v1 spec needs to reproduce the cell bit-identically.
type RemoteRun struct {
	App   string
	Spec  core.Spec
	Cfg   params.Config
	Scale Scale
}

// SetRemoteRunner installs fn as the executor for every subsequent run:
// instead of simulating locally, each cell is handed to fn (cmd/sweep's
// -server thin client). nil restores local execution. Per-run span
// collection (SetSpans) is incompatible with remote execution — the
// tracker lives in the executing process — and makes runs fail loudly.
func SetRemoteRunner(fn func(RemoteRun) (*core.Result, error)) {
	poolMu.Lock()
	poolRemote = fn
	poolMu.Unlock()
}

// SetWorkers bounds how many simulations run concurrently (cmd/sweep
// -j). n <= 0 restores the default of one worker per CPU.
func SetWorkers(n int) {
	poolMu.Lock()
	poolWorkers = n
	poolMu.Unlock()
}

// SetProgress installs a callback invoked (serialized) after every
// completed run with cumulative done/submitted counts; nil disables.
func SetProgress(fn func(done, total int)) {
	poolMu.Lock()
	poolProgress = fn
	poolMu.Unlock()
}

// SetRunObserver installs a callback invoked (serialized) once per
// completed run — cmd/sweep's per-cell metrics emission; nil disables.
// seq is the run's global submission sequence number, stable across
// worker counts because batches submit serially.
func SetRunObserver(fn func(seq int, r Run)) {
	poolMu.Lock()
	poolObserver = fn
	poolMu.Unlock()
}

// SetSpans arms (or disarms) per-run causal-span collection: every
// subsequent run carries its own spans.Tracker, exposed to the run
// observer as Run.Spans and folded into Result.Metrics(). Collection
// never perturbs the simulated schedule.
func SetSpans(on bool) {
	poolMu.Lock()
	poolSpans = on
	poolMu.Unlock()
}

// SetEngineWorkers shards every subsequent run's event engine across n
// OS threads (cmd/sweep -workers). Unlike SetWorkers — which runs whole
// independent simulations concurrently — this parallelizes inside each
// simulation; the fired event schedule stays bit-identical, so every
// figure, fingerprint, and metrics artifact is unchanged. n <= 1
// restores sequential engines.
func SetEngineWorkers(n int) {
	poolMu.Lock()
	poolEngineWorkers = n
	poolMu.Unlock()
}

// SetBaseConfig installs cfg as the machine model every subsequent
// figure, sweep, and ablation runs on — how cmd/sweep plumbs -profile
// through the whole evaluation. nil restores params.Default() (Table 1).
// The config is copied, so later mutation by the caller has no effect.
func SetBaseConfig(cfg *params.Config) {
	poolMu.Lock()
	if cfg == nil {
		poolBaseCfg = nil
	} else {
		c := *cfg
		poolBaseCfg = &c
	}
	poolMu.Unlock()
}

// baseConfig returns a copy of the active machine model.
func baseConfig() params.Config {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolBaseCfg != nil {
		return *poolBaseCfg
	}
	return params.Default()
}

// execute performs a batch of runs concurrently (each run owns its
// engine, so parallelism is safe and results stay deterministic).
func execute(specs []runSpec) {
	poolMu.Lock()
	workers := poolWorkers
	base := poolSeq
	poolSeq += len(specs)
	poolTotal += len(specs)
	progress, observer := poolProgress, poolObserver
	withSpans := poolSpans
	engWorkers := poolEngineWorkers
	remote := poolRemote
	poolMu.Unlock()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				rs := specs[i]
				switch {
				case remote != nil && withSpans:
					rs.out.Err = fmt.Errorf("experiments: per-run span collection cannot be served remotely")
				case remote != nil:
					if engWorkers > 1 && rs.spec.Workers == 0 {
						rs.spec.Workers = engWorkers
					}
					start := time.Now()
					res, rerr := remote(RemoteRun{App: rs.app, Spec: rs.spec, Cfg: rs.cfg, Scale: rs.scale})
					rs.out.Wall = time.Since(start)
					rs.out.App = rs.app
					rs.out.Protocol = rs.spec.String()
					rs.out.Procs = rs.cfg.Processors
					rs.out.Result = res
					rs.out.Err = rerr
				default:
					app, err := appAt(rs.app, rs.scale)
					if err != nil {
						rs.out.Err = err
						break
					}
					if withSpans {
						rs.spec.Spans = spans.NewTracker(rs.cfg.Processors)
						rs.out.Spans = rs.spec.Spans
					}
					if engWorkers > 1 && rs.spec.Workers == 0 {
						rs.spec.Workers = engWorkers
					}
					start := time.Now()
					res, rerr := core.Run(rs.cfg, rs.spec, app)
					rs.out.Wall = time.Since(start)
					rs.out.App = rs.app
					rs.out.Protocol = rs.spec.String()
					rs.out.Procs = rs.cfg.Processors
					rs.out.Result = res
					rs.out.Err = rerr
				}
				if progress == nil && observer == nil {
					continue
				}
				poolMu.Lock()
				poolDone++
				if progress != nil {
					progress(poolDone, poolTotal)
				}
				if observer != nil {
					observer(base+i, *rs.out)
				}
				poolMu.Unlock()
			}
		}()
	}
	for i := range specs {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// Table1 renders the default system parameters (Table 1 of the paper).
func Table1() string {
	c := baseConfig()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Default Values for System Parameters (1 cycle = %g ns)\n", c.CycleNanos)
	rows := []struct {
		name  string
		value string
	}{
		{"Number of processors", fmt.Sprintf("%d", c.Processors)},
		{"TLB size", fmt.Sprintf("%d entries", c.TLBSize)},
		{"TLB fill service time", fmt.Sprintf("%d cycles", c.TLBFillTime)},
		{"All interrupts", fmt.Sprintf("%d cycles", c.InterruptTime)},
		{"Page size", fmt.Sprintf("%d bytes", c.PageSize)},
		{"Total cache per processor", fmt.Sprintf("%dK bytes", c.CacheSize/1024)},
		{"Write buffer size", fmt.Sprintf("%d entries", c.WriteBufferSize)},
		{"Write cache size (AURC)", fmt.Sprintf("%d entries", c.WriteCacheSize)},
		{"Cache line size", fmt.Sprintf("%d bytes", c.CacheLineSize)},
		{"Memory setup time", fmt.Sprintf("%d cycles", c.MemSetupTime)},
		{"Memory access time (after setup)", fmt.Sprintf("%d cycles/word", c.MemCyclesPerWord)},
		{"PCI setup time", fmt.Sprintf("%d cycles", c.PCISetupTime)},
		{"PCI burst access time (after setup)", fmt.Sprintf("%d cycles/word", c.PCICyclesPerWord)},
		{"Network path width", fmt.Sprintf("%.0f bytes/cycle (8 bits bidirectional)", c.NetPathBytesPerCycle)},
		{"Messaging overhead", fmt.Sprintf("%d cycles", c.MessagingOverhead)},
		{"Switch latency", fmt.Sprintf("%d cycles", c.SwitchLatency)},
		{"Wire latency", fmt.Sprintf("%d cycles", c.WireLatency)},
		{"List processing", fmt.Sprintf("%d cycles/element", c.ListProcessing)},
		{"Page twinning", fmt.Sprintf("%d cycles/word + memory accesses", c.TwinCyclesPerWord)},
		{"Diff application and creation", fmt.Sprintf("%d cycles/word + memory accesses", c.DiffCyclesPerWord)},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-38s %s\n", r.name, r.value)
	}
	return sb.String()
}

// SpeedupPoint is one (procs -> speedup) measurement.
type SpeedupPoint struct {
	Procs   int
	Speedup float64
}

// Fig1 runs base TreadMarks for every application over the given
// machine sizes and reports speedups versus the 1-processor run.
func Fig1(sc Scale, procCounts []int) (map[string][]SpeedupPoint, error) {
	names := apps.Names()
	// Sequential baselines plus each size, per app.
	all := append([]int{1}, procCounts...)
	runs := make([]Run, len(names)*len(all))
	var specs []runSpec
	for ai, name := range names {
		for pi, p := range all {
			cfg := baseConfig()
			cfg.Processors = p
			specs = append(specs, runSpec{
				app: name, spec: core.TM(tmk.Base), cfg: cfg, scale: sc,
				out: &runs[ai*len(all)+pi],
			})
		}
	}
	execute(specs)
	out := make(map[string][]SpeedupPoint)
	for ai, name := range names {
		base := runs[ai*len(all)]
		if base.Err != nil {
			return nil, fmt.Errorf("fig1 %s baseline: %w", name, base.Err)
		}
		for pi := 1; pi < len(all); pi++ {
			r := runs[ai*len(all)+pi]
			if r.Err != nil {
				return nil, fmt.Errorf("fig1 %s p=%d: %w", name, all[pi], r.Err)
			}
			out[name] = append(out[name], SpeedupPoint{
				Procs:   all[pi],
				Speedup: stats.Speedup(base.Result.RunningTime, r.Result.RunningTime),
			})
		}
	}
	return out, nil
}

// FormatFig1 renders Figure 1 as text.
func FormatFig1(data map[string][]SpeedupPoint) string {
	var sb strings.Builder
	sb.WriteString("Figure 1: Application Speedups under TreadMarks DSM\n")
	names := make([]string, 0, len(data))
	for n := range data {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		sb.WriteString("  procs: ")
		for _, pt := range data[names[0]] {
			fmt.Fprintf(&sb, "%8d", pt.Procs)
		}
		sb.WriteString("\n")
	}
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-6s ", n)
		for _, pt := range data[n] {
			fmt.Fprintf(&sb, "%8.2f", pt.Speedup)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// BreakdownRow is one application's normalized execution breakdown.
type BreakdownRow struct {
	App         string
	Protocol    string
	RunningTime int64
	// Normalized is running time relative to the row's baseline (percent).
	Normalized float64
	// Fraction per category, summing to ~1; a fixed array indexed by
	// stats.Category, so row contents have no map iteration anywhere.
	Fraction [stats.NumCategories]float64
	// DiffPct is diff-operation time as % of execution (the bar labels).
	DiffPct float64
	// Counters for deeper analysis.
	Result *core.Result
}

func toRow(r Run, baseline int64) BreakdownRow {
	row := BreakdownRow{
		App:         r.App,
		Protocol:    r.Protocol,
		RunningTime: r.Result.RunningTime,
		DiffPct:     r.Result.Breakdown.DiffPercent(),
		Result:      r.Result,
	}
	if baseline > 0 {
		row.Normalized = 100 * float64(r.Result.RunningTime) / float64(baseline)
	}
	for _, c := range stats.Categories() {
		row.Fraction[c] = r.Result.Breakdown.Fraction(c)
	}
	return row
}

// Fig2 runs base TreadMarks on 16 processors for every application and
// reports the execution-time breakdown plus the diff-time percentages.
func Fig2(sc Scale) ([]BreakdownRow, error) {
	names := apps.Names()
	runs := make([]Run, len(names))
	var specs []runSpec
	for i, name := range names {
		specs = append(specs, runSpec{
			app: name, spec: core.TM(tmk.Base), cfg: baseConfig(), scale: sc,
			out: &runs[i],
		})
	}
	execute(specs)
	var rows []BreakdownRow
	for _, r := range runs {
		if r.Err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", r.App, r.Err)
		}
		rows = append(rows, toRow(r, r.Result.RunningTime))
	}
	return rows, nil
}

// FormatBreakdownRows renders breakdown rows as stacked-bar text.
func FormatBreakdownRows(title string, rows []BreakdownRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-7s %-7s %5.0f%% |", row.App, row.Protocol, row.Normalized)
		for _, c := range stats.Categories() {
			fmt.Fprintf(&sb, " %s %5.1f%%", c, 100*row.Fraction[c])
		}
		fmt.Fprintf(&sb, " | diff-ops %4.1f%%\n", row.DiffPct)
	}
	return sb.String()
}

// Fig5to10 runs the six overlap variants for one application on the
// default machine, normalized to Base (the per-application bar charts of
// Figures 5-10).
func Fig5to10(app string, sc Scale) ([]BreakdownRow, error) {
	runs := make([]Run, len(tmk.Modes))
	var specs []runSpec
	for i, m := range tmk.Modes {
		specs = append(specs, runSpec{
			app: app, spec: core.TM(m), cfg: baseConfig(), scale: sc,
			out: &runs[i],
		})
	}
	execute(specs)
	if runs[0].Err != nil {
		return nil, fmt.Errorf("fig5-10 %s base: %w", app, runs[0].Err)
	}
	baseline := runs[0].Result.RunningTime
	var rows []BreakdownRow
	for _, r := range runs {
		if r.Err != nil {
			return nil, fmt.Errorf("fig5-10 %s %s: %w", app, r.Protocol, r.Err)
		}
		rows = append(rows, toRow(r, baseline))
	}
	return rows, nil
}

// Fig11_12 compares the best overlapping TreadMarks (I+D) against AURC
// and AURC+P for every application, normalized to I+D (Figures 11-12).
func Fig11_12(sc Scale) (map[string][]BreakdownRow, error) {
	names := apps.Names()
	protos := []core.Spec{core.TM(tmk.ID), core.AURC(false), core.AURC(true)}
	runs := make([]Run, len(names)*len(protos))
	var specs []runSpec
	for ai, name := range names {
		for pi, pr := range protos {
			specs = append(specs, runSpec{
				app: name, spec: pr, cfg: baseConfig(), scale: sc,
				out: &runs[ai*len(protos)+pi],
			})
		}
	}
	execute(specs)
	out := make(map[string][]BreakdownRow)
	for ai, name := range names {
		baseline := int64(0)
		for pi := range protos {
			r := runs[ai*len(protos)+pi]
			if r.Err != nil {
				return nil, fmt.Errorf("fig11-12 %s %s: %w", name, r.Protocol, r.Err)
			}
			if pi == 0 {
				baseline = r.Result.RunningTime
			}
			out[name] = append(out[name], toRow(r, baseline))
		}
	}
	return out, nil
}

// SweepPoint is one point of an architectural-sensitivity curve:
// normalized execution time (vs the default-parameter overlapping
// TreadMarks run) for both protocols.
type SweepPoint struct {
	X          float64 // the swept parameter, in the figure's axis units
	TMNorm     float64
	AURCNorm   float64
	TMCycles   int64
	AURCCycles int64
}

// Sweep runs the Em3d sensitivity studies of Figures 13-16. mutate
// applies the swept value to a config; xs are the axis values.
func Sweep(sc Scale, xs []float64, mutate func(*params.Config, float64)) ([]SweepPoint, error) {
	const app = "em3d"
	type cell struct{ tm, au Run }
	cells := make([]cell, len(xs))
	var specs []runSpec
	for i, x := range xs {
		cfgT := baseConfig()
		mutate(&cfgT, x)
		cfgA := cfgT
		specs = append(specs,
			runSpec{app: app, spec: core.TM(tmk.ID), cfg: cfgT, scale: sc, out: &cells[i].tm},
			runSpec{app: app, spec: core.AURC(false), cfg: cfgA, scale: sc, out: &cells[i].au},
		)
	}
	// Baseline: default-parameter overlapping TreadMarks.
	var base Run
	specs = append(specs, runSpec{app: app, spec: core.TM(tmk.ID), cfg: baseConfig(), scale: sc, out: &base})
	execute(specs)
	if base.Err != nil {
		return nil, fmt.Errorf("sweep baseline: %w", base.Err)
	}
	denom := float64(base.Result.RunningTime)
	var out []SweepPoint
	for i, x := range xs {
		if cells[i].tm.Err != nil {
			return nil, fmt.Errorf("sweep x=%v TM: %w", x, cells[i].tm.Err)
		}
		if cells[i].au.Err != nil {
			return nil, fmt.Errorf("sweep x=%v AURC: %w", x, cells[i].au.Err)
		}
		out = append(out, SweepPoint{
			X:          x,
			TMNorm:     float64(cells[i].tm.Result.RunningTime) / denom,
			AURCNorm:   float64(cells[i].au.Result.RunningTime) / denom,
			TMCycles:   cells[i].tm.Result.RunningTime,
			AURCCycles: cells[i].au.Result.RunningTime,
		})
	}
	return out, nil
}

// Fig13 sweeps messaging overhead (microseconds), Em3d.
func Fig13(sc Scale, micros []float64) ([]SweepPoint, error) {
	return Sweep(sc, micros, func(c *params.Config, x float64) {
		c.SetMessagingOverheadMicros(x)
		// The pessimistic assumption of Figure 13's discussion: AURC's
		// update messages pay the same per-message overhead. The default
		// (optimistic single-cycle) is restored by Fig13Optimistic.
		c.AURCUpdateOverhead = c.MessagingOverhead
	})
}

// Fig13Optimistic sweeps messaging overhead with AURC updates kept at a
// single cycle of overhead (the paper's default assumption, under which
// messaging overhead "has little effect on the two DSMs").
func Fig13Optimistic(sc Scale, micros []float64) ([]SweepPoint, error) {
	return Sweep(sc, micros, func(c *params.Config, x float64) {
		c.SetMessagingOverheadMicros(x)
	})
}

// Fig14 sweeps network bandwidth (MB/s), Em3d.
func Fig14(sc Scale, mbps []float64) ([]SweepPoint, error) {
	return Sweep(sc, mbps, func(c *params.Config, x float64) {
		c.SetNetworkBandwidthMBps(x)
	})
}

// Fig15 sweeps memory latency (ns), Em3d.
func Fig15(sc Scale, nanos []float64) ([]SweepPoint, error) {
	return Sweep(sc, nanos, func(c *params.Config, x float64) {
		c.SetMemoryLatencyNanos(x)
	})
}

// Fig16 sweeps memory bandwidth (MB/s), Em3d.
func Fig16(sc Scale, mbps []float64) ([]SweepPoint, error) {
	return Sweep(sc, mbps, func(c *params.Config, x float64) {
		c.SetMemoryBandwidthMBps(x)
	})
}

// PrefetchAblation runs the prefetch-strategy design space the paper
// defers to its companion report: the I+P+D variant with the referenced
// (paper), always, and adaptive heuristics, plus the controller-priority
// ablation (prefetches queued as demand requests). Rows are normalized
// to plain I+D (no prefetching).
func PrefetchAblation(app string, sc Scale) ([]BreakdownRow, error) {
	specs := []core.Spec{
		core.TM(tmk.ID),
		core.TMOpt(tmk.IPD, tmk.Options{Strategy: tmk.PrefetchReferenced}),
		core.TMOpt(tmk.IPD, tmk.Options{Strategy: tmk.PrefetchAlways}),
		core.TMOpt(tmk.IPD, tmk.Options{Strategy: tmk.PrefetchAdaptive}),
		core.TMOpt(tmk.IPD, tmk.Options{NoPrefetchPriority: true}),
		// The Lazy Hybrid alternative to prefetching (related work the
		// paper contrasts with): updates piggybacked on lock grants,
		// no prefetcher.
		core.TMOpt(tmk.ID, tmk.Options{LazyHybrid: true}),
	}
	runs := make([]Run, len(specs))
	var rss []runSpec
	for i, sp := range specs {
		rss = append(rss, runSpec{app: app, spec: sp, cfg: baseConfig(), scale: sc, out: &runs[i]})
	}
	execute(rss)
	if runs[0].Err != nil {
		return nil, fmt.Errorf("ablation %s baseline: %w", app, runs[0].Err)
	}
	baseline := runs[0].Result.RunningTime
	var rows []BreakdownRow
	for _, r := range runs {
		if r.Err != nil {
			return nil, fmt.Errorf("ablation %s %s: %w", app, r.Protocol, r.Err)
		}
		rows = append(rows, toRow(r, baseline))
	}
	return rows, nil
}

// FormatSweep renders a sensitivity curve.
func FormatSweep(title, xlabel string, pts []SweepPoint) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "  %-12s %12s %12s\n", xlabel, "Em3d-TM", "Em3d-AURC")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %-12.2f %12.3f %12.3f\n", p.X, p.TMNorm, p.AURCNorm)
	}
	return sb.String()
}
