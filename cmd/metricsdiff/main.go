// Command metricsdiff compares two run-metrics JSON artifacts (dsmsim
// -metrics / sweep -metrics output, any dsm96/run-metrics schema) and
// exits nonzero when they drift — the regression gate `make check` runs
// against the committed golden.
//
// Usage:
//
//	metricsdiff golden.json new.json
//	metricsdiff -tol 'counters.bytes=0.05' -tol 'spans.*=0.10' golden.json new.json
//	metricsdiff -ignore 'per_proc_cycles.*' golden.json new.json
//	metricsdiff -schema dsm96/run-metrics/v3 golden.json new.json
//
// Both files are flattened into dotted key paths (array indices become
// path segments: per_proc_cycles.3.busy_cycles). Every key must appear
// in both files with an equal value; -allow-extra tolerates keys that
// exist only in the new file (a newer schema adding fields).
//
// -tol PATH=FRAC allows a relative drift of FRAC on numeric values at
// PATH (repeatable). -ignore PATH skips paths entirely (repeatable). In
// both, a trailing '*' matches any suffix: 'spans.*' covers the whole
// spans block.
//
// -schema TAG additionally asserts that both files carry exactly that
// schema tag — the gate that makes a schema bump (v2 -> v3) a
// deliberate, golden-regenerating act rather than silent drift.
//
// -bench switches to benchmark-snapshot comparison (cmd/bench -out,
// schema dsm96/bench/v1): the determinism fields of every cell
// (fingerprint, events, sim_cycles) must match exactly, throughput
// fields (events_per_sec, wall_ns) may drift by -bench-tol relative,
// and the host block is ignored — so a re-measured snapshot passes as
// long as the engine still fires the same schedule and stays in the
// same performance envelope:
//
//	metricsdiff -bench BENCH_parallel_engine.json new.json
//	metricsdiff -bench -bench-tol 0.25 old.json new.json
//
// -engine-profile switches to engine self-profile comparison (dsmsim
// -engine-profile / cmd/bench -engine-profile output, schema
// dsm96/engine-profile/v1): the deterministic block — window counts,
// replayed-action totals, lookahead histograms, per-shard event counts
// — must match exactly (it is a pure function of the simulated
// schedule and the worker count), while the host block (wall-clock
// timings, CPU counts) is ignored entirely; it measures the machine,
// not the simulator:
//
//	metricsdiff -engine-profile run1.json run2.json
//
// -trend switches to trend-record comparison (cmd/experiment -snapshot,
// schema dsm96/trend/v1): per cell, the determinism contract —
// cells.<id>.cycles, .events, .fingerprint, .metrics_keys — must match
// exactly (these are machine-independent facts of the simulator), while
// throughput (.wall_ns, .events_per_sec) may drift by -trend-tol
// relative, and then only when both records carry the same host class
// (host.num_cpu); across host classes throughput is skipped with a
// note, never compared. seq, label, and the host block are provenance,
// not measurements, and are ignored. Arguments name two record files,
// or the trend directory (newest two records), or a directory plus a
// candidate file:
//
//	metricsdiff -trend trends/                 # previous vs newest
//	metricsdiff -trend trends/ /tmp/new.json   # newest committed vs fresh
//	metricsdiff -trend trends/0001.json trends/0002.json
//
// This is the `make trend` gate: a ladder cell whose cycle count or
// event fingerprint moves fails with the named dotted path
// (cells.<profile>/<app>/<proto>/pN/wM.cycles), so protocol changes
// re-snapshot deliberately instead of drifting silently.
//
// Exit status: 0 when the artifacts match, 1 on drift (each drifted
// path is reported), 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"dsm96/internal/pipeline"
	"dsm96/internal/sim"
)

// pattern is one -tol/-ignore rule; star means trailing-* prefix match.
type pattern struct {
	path string
	star bool
	frac float64 // tolerance fraction (unused for -ignore)
}

func parsePattern(s string) pattern {
	if strings.HasSuffix(s, "*") {
		return pattern{path: strings.TrimSuffix(s, "*"), star: true}
	}
	return pattern{path: s}
}

func (p pattern) matches(path string) bool {
	if p.star {
		return strings.HasPrefix(path, p.path)
	}
	return path == p.path
}

// flatten walks a decoded JSON value into dotted scalar paths. Numbers
// arrive as json.Number (the decoder uses UseNumber), so integers far
// beyond float64 precision — cycle counts, byte totals — compare
// exactly unless a tolerance asks for arithmetic.
func flatten(prefix string, v any, out map[string]any) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, sub, out)
		}
	case []any:
		for i, sub := range x {
			p := strconv.Itoa(i)
			if prefix != "" {
				p = prefix + "." + p
			}
			flatten(p, sub, out)
		}
	default:
		out[prefix] = v
	}
}

func load(path string) (map[string]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	flat := map[string]any{}
	flatten("", v, flat)
	return flat, nil
}

// equal compares two scalar leaves under a relative tolerance (0 =
// exact). Non-numeric values always compare exactly.
func equal(a, b any, frac float64) bool {
	na, aok := a.(json.Number)
	nb, bok := b.(json.Number)
	if !aok || !bok {
		return a == b
	}
	if na.String() == nb.String() {
		return true
	}
	if frac <= 0 {
		return false
	}
	fa, erra := na.Float64()
	fb, errb := nb.Float64()
	if erra != nil || errb != nil {
		return false
	}
	return math.Abs(fa-fb) <= frac*math.Max(math.Abs(fa), math.Abs(fb))
}

func main() {
	var tols, ignores []pattern
	flag.Func("tol", "PATH=FRAC: allow relative drift FRAC at PATH (trailing * = prefix; repeatable)",
		func(s string) error {
			eq := strings.LastIndex(s, "=")
			if eq < 0 {
				return fmt.Errorf("want PATH=FRAC, got %q", s)
			}
			frac, err := strconv.ParseFloat(s[eq+1:], 64)
			if err != nil || frac < 0 {
				return fmt.Errorf("bad tolerance in %q", s)
			}
			p := parsePattern(s[:eq])
			p.frac = frac
			tols = append(tols, p)
			return nil
		})
	flag.Func("ignore", "PATH: skip this path (trailing * = prefix; repeatable)",
		func(s string) error {
			ignores = append(ignores, parsePattern(s))
			return nil
		})
	allowExtra := flag.Bool("allow-extra", false, "tolerate keys present only in the new file")
	schema := flag.String("schema", "", "require both files to carry exactly this schema tag")
	bench := flag.Bool("bench", false, "compare dsm96/bench/v1 snapshots: determinism fields exact, throughput within -bench-tol, host block ignored")
	benchTol := flag.Float64("bench-tol", 0.5, "relative tolerance on events_per_sec and wall_ns in -bench mode")
	trend := flag.Bool("trend", false, "compare dsm96/trend/v1 records: per-cell determinism exact, throughput within -trend-tol and only across equal host classes")
	trendTol := flag.Float64("trend-tol", 0.5, "relative tolerance on cell throughput in -trend mode (same host class only)")
	engineProfile := flag.Bool("engine-profile", false, "compare dsm96/engine-profile/v1 profiles: deterministic block exact, host block (wall-clock timings) ignored")
	flag.Parse()
	if *bench && *schema == "" {
		*schema = "dsm96/bench/v1"
	}
	if *trend && *schema == "" {
		*schema = pipeline.TrendSchema
	}
	if *engineProfile && *schema == "" {
		*schema = sim.EngineProfileSchema
	}
	goldenPath, nextPath := flag.Arg(0), flag.Arg(1)
	if *trend {
		var err error
		goldenPath, nextPath, err = resolveTrendArgs(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricsdiff:", err)
			os.Exit(2)
		}
	} else if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsdiff [-tol PATH=FRAC]... [-ignore PATH]... [-allow-extra] golden.json new.json")
		os.Exit(2)
	}
	golden, err := load(goldenPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricsdiff:", err)
		os.Exit(2)
	}
	next, err := load(nextPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricsdiff:", err)
		os.Exit(2)
	}

	// Host class: throughput facts (wall clock, events/sec) are only
	// comparable between records measured on hosts with the same CPU
	// count. Across classes they are skipped — neither a pass nor a
	// fail — so a trend database can span machine upgrades without
	// faking comparability.
	sameHostClass := true
	if *trend {
		gc, _ := golden["host.num_cpu"].(json.Number)
		nc, _ := next["host.num_cpu"].(json.Number)
		sameHostClass = gc.String() == nc.String()
		if !sameHostClass {
			fmt.Fprintf(os.Stderr, "metricsdiff: host classes differ (num_cpu %s vs %s); skipping throughput fields\n",
				gc, nc)
		}
	}

	throughput := func(path string) bool {
		return strings.HasSuffix(path, ".events_per_sec") || strings.HasSuffix(path, ".wall_ns")
	}
	ignored := func(path string) bool {
		// Bench, trend, and engine-profile records carry the measuring
		// host for provenance; two honest records from different
		// machines must still compare. For engine profiles the host
		// block also holds every wall-clock timing — the whole
		// host-dependent half of the artifact.
		if (*bench || *trend || *engineProfile) && strings.HasPrefix(path, "host.") {
			return true
		}
		// Trend sequence position and label are bookkeeping, and
		// throughput across host classes is not a comparison at all.
		if *trend && (path == "seq" || path == "label") {
			return true
		}
		if *trend && !sameHostClass && throughput(path) {
			return true
		}
		for _, p := range ignores {
			if p.matches(path) {
				return true
			}
		}
		return false
	}
	tolFor := func(path string) float64 {
		// The last matching -tol wins, so broad patterns can be
		// overridden by later, more specific ones.
		frac := 0.0
		if (*bench || *trend) && throughput(path) {
			// Throughput wobbles run to run; fingerprints, event counts,
			// and simulated cycles stay exact (the engine's contract).
			frac = *benchTol
			if *trend {
				frac = *trendTol
			}
		}
		for _, p := range tols {
			if p.matches(path) {
				frac = p.frac
			}
		}
		return frac
	}

	paths := make([]string, 0, len(golden)+len(next))
	for p := range golden {
		paths = append(paths, p)
	}
	for p := range next {
		if _, ok := golden[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	drift := 0
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "metricsdiff: "+format+"\n", args...)
		drift++
	}
	if *schema != "" {
		for i, flat := range []map[string]any{golden, next} {
			name := []string{goldenPath, nextPath}[i]
			if got, _ := flat["schema"].(string); got != *schema {
				report("%s: schema %q, want %q", name, got, *schema)
			}
		}
	}
	for _, p := range paths {
		if ignored(p) {
			continue
		}
		gv, inGolden := golden[p]
		nv, inNext := next[p]
		switch {
		case !inNext:
			report("%s: missing from %s (golden has %v)", p, nextPath, gv)
		case !inGolden:
			if !*allowExtra {
				report("%s: only in %s (value %v)", p, nextPath, nv)
			}
		case !equal(gv, nv, tolFor(p)):
			report("%s: golden %v, got %v", p, gv, nv)
		}
	}
	if drift > 0 {
		fmt.Fprintf(os.Stderr, "metricsdiff: %d path(s) drifted between %s and %s\n",
			drift, goldenPath, nextPath)
		os.Exit(1)
	}
	fmt.Printf("metricsdiff: %s and %s match (%d paths compared)\n",
		goldenPath, nextPath, len(paths))
}

// resolveTrendArgs turns the -trend argument forms into an ordered
// (older, newer) pair of record files: a bare trend directory compares
// its previous record against its newest; a directory plus a file
// compares the directory's newest record against that file; two files
// compare as given.
func resolveTrendArgs(args []string) (older, newer string, err error) {
	isDir := func(p string) bool {
		st, serr := os.Stat(p)
		return serr == nil && st.IsDir()
	}
	switch len(args) {
	case 1:
		if !isDir(args[0]) {
			return "", "", fmt.Errorf("-trend with one argument needs a trend directory, got %q", args[0])
		}
		files, ferr := pipeline.TrendFiles(args[0])
		if ferr != nil {
			return "", "", ferr
		}
		if len(files) < 2 {
			return "", "", fmt.Errorf("%s: need at least 2 trend records to compare, have %d", args[0], len(files))
		}
		return files[len(files)-2], files[len(files)-1], nil
	case 2:
		a, b := args[0], args[1]
		for i, p := range []string{a, b} {
			if !isDir(p) {
				continue
			}
			files, ferr := pipeline.TrendFiles(p)
			if ferr != nil {
				return "", "", ferr
			}
			if len(files) == 0 {
				return "", "", fmt.Errorf("%s: no trend records", p)
			}
			newest := files[len(files)-1]
			if i == 0 {
				a = newest
			} else {
				b = newest
			}
		}
		return a, b, nil
	default:
		return "", "", fmt.Errorf("-trend takes a trend directory, or two records, or a directory and a record")
	}
}
