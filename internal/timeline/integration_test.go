package timeline_test

import (
	"bytes"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/timeline"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// Regenerate the goldens after an INTENTIONAL protocol or timing change:
//
//	go test ./internal/timeline -run TestGoldenArtifacts -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden artifacts from the current simulator")

const (
	goldenMetricsPath  = "testdata/radix_ipd_p4.metrics.json"
	goldenTimelinePath = "testdata/radix_ipd_p4.timeline.sum"
)

// runInstrumented performs one ScaleTiny radix run with the timeline and
// span tracker attached and returns the recorder, rendered artifacts,
// and result. The spans tracker rides along so the golden metrics pin
// the causal-span report too.
func runInstrumented(t *testing.T, spec core.Spec, procs int) (*timeline.Recorder, []byte, []byte, *core.Result) {
	t.Helper()
	app, err := apps.Tiny("radix")
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Default()
	cfg.Processors = procs
	rec := timeline.NewRecorder(cfg.Processors)
	spec.Timeline = rec
	spec.Spans = spans.NewTracker(cfg.Processors)
	spec.Tracer = trace.New(1 << 16)
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		t.Fatal(err)
	}
	var tl bytes.Buffer
	if err := rec.WritePerfetto(&tl, spec.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	if err := res.Metrics().WriteJSON(&m); err != nil {
		t.Fatal(err)
	}
	return rec, tl.Bytes(), m.Bytes(), res
}

// TestTimelineReconcilesBreakdown is the tentpole's accounting gate: for
// every processor, the sum of recorded span durations per category must
// equal the cycles stats.Breakdown reports — exactly, not approximately —
// under both protocol families (controller and controller-less).
func TestTimelineReconcilesBreakdown(t *testing.T) {
	for _, spec := range []core.Spec{core.TM(tmk.IPD), core.AURC(true)} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			rec, _, _, res := runInstrumented(t, spec, 8)
			for node, ps := range res.Breakdown.PerProc {
				got := rec.CategoryTotals(node)
				for c := stats.Category(0); c < stats.NumCategories; c++ {
					if int64(got[c]) != ps.Cycles[c] {
						t.Errorf("node %d %s: spans sum to %d cycles, breakdown says %d",
							node, c, got[c], ps.Cycles[c])
					}
				}
			}
			// Controller tracks populate only when the variant has one.
			hasCtrl := false
			for n := 0; n < rec.Nodes(); n++ {
				hasCtrl = hasCtrl || len(rec.ControllerSpans(n)) > 0
			}
			if want := spec.Kind == core.KindTM && spec.TMMode.Ctrl(); hasCtrl != want {
				t.Errorf("controller spans present=%v, want %v", hasCtrl, want)
			}
		})
	}
}

// TestTimelineByteIdentical is the determinism gate the issue demands:
// both artifacts are byte-identical across repeat runs and across
// GOMAXPROCS settings.
func TestTimelineByteIdentical(t *testing.T) {
	_, tl1, m1, _ := runInstrumented(t, core.TM(tmk.IPD), 8)
	_, tl2, m2, _ := runInstrumented(t, core.TM(tmk.IPD), 8)
	if !bytes.Equal(tl1, tl2) {
		t.Error("timeline JSON differs between repeat runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs between repeat runs")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range []int{1, 8} {
		runtime.GOMAXPROCS(p)
		_, tl, m, _ := runInstrumented(t, core.TM(tmk.IPD), 8)
		if !bytes.Equal(tl1, tl) {
			t.Errorf("timeline JSON differs at GOMAXPROCS=%d", p)
		}
		if !bytes.Equal(m1, m) {
			t.Errorf("metrics JSON differs at GOMAXPROCS=%d", p)
		}
	}
}

// TestRecorderLeavesScheduleUnchanged proves attaching the recorder is
// observation only: the event schedule (count and fingerprint) of an
// instrumented run is bit-identical to a bare run's.
func TestRecorderLeavesScheduleUnchanged(t *testing.T) {
	for _, spec := range []core.Spec{core.TM(tmk.IPD), core.AURC(true)} {
		app, err := apps.Tiny("radix")
		if err != nil {
			t.Fatal(err)
		}
		cfg := params.Default()
		cfg.Processors = 8
		bare, err := core.Run(cfg, spec, app)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, inst := runInstrumented(t, spec, 8)
		if bare.EventFingerprint != inst.EventFingerprint || bare.EventsRun != inst.EventsRun {
			t.Errorf("%s: instrumented schedule differs: events %d/%d fingerprint %016x/%016x",
				spec, bare.EventsRun, inst.EventsRun, bare.EventFingerprint, inst.EventFingerprint)
		}
	}
}

// timelineDigest summarizes a timeline artifact for the golden file
// (the full JSON is megabytes; size + FNV-1a pin it just as hard).
func timelineDigest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("size=%d fnv1a=%016x\n", len(b), h.Sum64())
}

// TestGoldenArtifacts pins the exact bytes of the metrics JSON and a
// digest of the timeline JSON for one fixed configuration, so any
// unintended change to either exporter (or to the simulation itself)
// fails loudly.
func TestGoldenArtifacts(t *testing.T) {
	_, tl, m, _ := runInstrumented(t, core.TM(tmk.IPD), 4)
	digest := timelineDigest(tl)
	if *updateGolden {
		if err := os.WriteFile(goldenMetricsPath, m, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTimelinePath, []byte(digest), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", goldenMetricsPath, goldenTimelinePath)
		return
	}
	wantM, err := os.ReadFile(goldenMetricsPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(m, wantM) {
		t.Errorf("metrics JSON deviates from %s\n(intentional? regenerate with: go test ./internal/timeline -run TestGoldenArtifacts -update-golden)\ngot:\n%s", goldenMetricsPath, m)
	}
	wantD, err := os.ReadFile(goldenTimelinePath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if digest != string(wantD) {
		t.Errorf("timeline digest deviates from %s: got %q want %q\n(intentional? regenerate with -update-golden)",
			goldenTimelinePath, digest, wantD)
	}
}
