package lrc

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestVTSCovers(t *testing.T) {
	a := VTS{3, 2, 1}
	b := VTS{2, 2, 0}
	if !a.Covers(b) {
		t.Error("a should cover b")
	}
	if b.Covers(a) {
		t.Error("b should not cover a")
	}
	if !a.Covers(a) {
		t.Error("covers must be reflexive")
	}
	if !a.CoversEntry(0, 3) || a.CoversEntry(2, 2) {
		t.Error("CoversEntry wrong")
	}
}

func TestVTSMaxClone(t *testing.T) {
	a := VTS{1, 5, 0}
	c := a.Clone()
	a.Max(VTS{4, 2, 2})
	if !a.Equal(VTS{4, 5, 2}) {
		t.Errorf("Max = %v", a)
	}
	if !c.Equal(VTS{1, 5, 0}) {
		t.Errorf("Clone aliased: %v", c)
	}
	if a.WireBytes() != 12 {
		t.Errorf("WireBytes = %d", a.WireBytes())
	}
}

// Property: Max produces a vector covering both inputs, and Covers is a
// partial order (antisymmetric on non-equal vectors, transitive via Max).
func TestVTSLatticeProperty(t *testing.T) {
	f := func(x, y [4]int8) bool {
		a, b := NewVTS(4), NewVTS(4)
		for i := 0; i < 4; i++ {
			a[i], b[i] = int32(abs8(x[i])), int32(abs8(y[i]))
		}
		m := a.Clone()
		m.Max(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		if a.Covers(b) && b.Covers(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs8(v int8) int8 {
	if v < 0 {
		if v == -128 {
			return 127
		}
		return -v
	}
	return v
}

func TestIntervalNotices(t *testing.T) {
	iv := &Interval{Owner: 3, Seq: 7, Pages: []int{10, 20}}
	ns := iv.Notices()
	if len(ns) != 2 || ns[0] != (WriteNotice{10, 3, 7}) || ns[1] != (WriteNotice{20, 3, 7}) {
		t.Fatalf("notices = %+v", ns)
	}
}

func TestCreateApplyDiffRoundtrip(t *testing.T) {
	const ps = 256
	twin := make([]byte, ps)
	cur := make([]byte, ps)
	copy(cur, twin)
	binary.LittleEndian.PutUint32(cur[8:], 0xdeadbeef)
	binary.LittleEndian.PutUint32(cur[252:], 42)
	d := CreateDiff(5, twin, cur)
	if d.Len() != 2 || d.Page != 5 {
		t.Fatalf("diff = %+v", d)
	}
	dst := make([]byte, ps)
	d.Apply(dst)
	if binary.LittleEndian.Uint32(dst[8:]) != 0xdeadbeef ||
		binary.LittleEndian.Uint32(dst[252:]) != 42 {
		t.Fatal("apply did not reproduce writes")
	}
	// Untouched words stay untouched.
	if dst[0] != 0 || dst[100] != 0 {
		t.Fatal("apply touched clean words")
	}
}

func TestEmptyDiff(t *testing.T) {
	page := make([]byte, 128)
	d := CreateDiff(0, page, page)
	if d.Len() != 0 {
		t.Fatalf("identical pages produced %d-word diff", d.Len())
	}
	// Still a sane wire size (header + bitvector).
	if d.WireBytes(32) != 16+4 {
		t.Fatalf("empty diff wire bytes = %d", d.WireBytes(32))
	}
}

// Property: for random twin/current pairs, twin+diff == current.
func TestDiffReconstructionProperty(t *testing.T) {
	f := func(seed []byte, edits []uint16) bool {
		const ps = 512
		twin := make([]byte, ps)
		copy(twin, seed)
		cur := make([]byte, ps)
		copy(cur, twin)
		for i, e := range edits {
			w := int(e) % (ps / 4)
			binary.LittleEndian.PutUint32(cur[w*4:], uint32(i+1)*2654435761)
		}
		d := CreateDiff(0, twin, cur)
		rebuilt := make([]byte, ps)
		copy(rebuilt, twin)
		d.Apply(rebuilt)
		return bytes.Equal(rebuilt, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteVector(t *testing.T) {
	v := NewWriteVector(1024)
	v.Mark(0)
	v.Mark(63)
	v.Mark(64)
	v.Mark(1023)
	v.Mark(64) // idempotent
	if v.Count() != 4 {
		t.Fatalf("count = %d, want 4", v.Count())
	}
	var got []int
	v.ForEach(func(w int) { got = append(got, w) })
	want := []int{0, 63, 64, 1023}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	v.Clear()
	if v.Count() != 0 {
		t.Fatal("clear failed")
	}
}

// Property: DiffFromVector equals CreateDiff when the vector marks
// exactly the modified words.
func TestVectorDiffEquivalenceProperty(t *testing.T) {
	f := func(edits []uint16) bool {
		const ps = 256
		twin := make([]byte, ps)
		cur := make([]byte, ps)
		vec := NewWriteVector(ps / 4)
		for i, e := range edits {
			w := int(e) % (ps / 4)
			val := uint32(i+7) * 2246822519
			if val == 0 { // ensure it differs from the zero twin
				val = 1
			}
			binary.LittleEndian.PutUint32(cur[w*4:], val)
			vec.Mark(w)
		}
		soft := CreateDiff(0, twin, cur)
		hard := DiffFromVector(0, vec, cur)
		// hard may include words whose final value equals the twin's if a
		// later edit restored it — here values are never zero, so sets of
		// marked words match modified words exactly.
		if len(hard.Words) < len(soft.Words) {
			return false
		}
		dst1 := make([]byte, ps)
		dst2 := make([]byte, ps)
		soft.Apply(dst1)
		hard.Apply(dst2)
		return bytes.Equal(dst1, dst2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFramesRW(t *testing.T) {
	f := NewFrames(4096)
	f.WriteU32(100, 77)
	if f.ReadU32(100) != 77 {
		t.Fatal("u32 roundtrip failed")
	}
	f.WriteF64(4096+8, 3.25)
	if f.ReadF64(4096+8) != 3.25 {
		t.Fatal("f64 roundtrip failed")
	}
	if !f.Resident(0) || !f.Resident(1) || f.Resident(2) {
		t.Fatal("residency wrong")
	}
	// Unwritten data reads as zero.
	if f.ReadU32(8192) != 0 {
		t.Fatal("fresh page not zeroed")
	}
}

func TestFramesCrossPagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on page-crossing access")
		}
	}()
	f := NewFrames(4096)
	f.ReadU64(4092)
}

func TestFramesCopyPage(t *testing.T) {
	f := NewFrames(64)
	src := make([]byte, 64)
	src[10] = 9
	f.CopyPage(3, src)
	if f.Page(3)[10] != 9 {
		t.Fatal("CopyPage failed")
	}
}

func TestHeapAlloc(t *testing.T) {
	h := NewHeap(4096)
	a := h.Alloc(10, 8)
	b := h.Alloc(10, 8)
	if a != 0 || b != 16 {
		t.Fatalf("allocs = %d, %d", a, b)
	}
	p := h.AllocPages(2)
	if p != 4096 {
		t.Fatalf("page alloc = %d, want 4096", p)
	}
	if h.PagesUsed() != 3 {
		t.Fatalf("pages used = %d, want 3", h.PagesUsed())
	}
	if h.Brk() != 3*4096 {
		t.Fatalf("brk = %d", h.Brk())
	}
}

// Property: allocations never overlap and respect alignment.
func TestHeapNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := NewHeap(4096)
		var prevEnd int64
		for _, s := range sizes {
			n := int(s)%100 + 1
			a := h.Alloc(n, 8)
			if a%8 != 0 || a < prevEnd {
				return false
			}
			prevEnd = a + int64(n)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: applying word-disjoint diffs commutes — any order yields the
// same page (the data-race-free guarantee orderDiffs relies on for
// concurrent writers).
func TestDisjointDiffCommutativityProperty(t *testing.T) {
	f := func(editsA, editsB []uint8) bool {
		const ps = 512
		// Build two diffs over disjoint word sets: A uses even words,
		// B odd words.
		base := make([]byte, ps)
		curA := make([]byte, ps)
		curB := make([]byte, ps)
		for i, e := range editsA {
			w := (int(e) % (ps / 8)) * 2
			binary.LittleEndian.PutUint32(curA[w*4:], uint32(i+1)*2654435761|1)
		}
		for i, e := range editsB {
			w := (int(e)%(ps/8))*2 + 1
			binary.LittleEndian.PutUint32(curB[w*4:], uint32(i+1)*2246822519|1)
		}
		dA := CreateDiff(0, base, curA)
		dB := CreateDiff(0, base, curB)

		p1 := make([]byte, ps)
		dA.Apply(p1)
		dB.Apply(p1)
		p2 := make([]byte, ps)
		dB.Apply(p2)
		dA.Apply(p2)
		return bytes.Equal(p1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for SAME-word writers, last-applied wins — which is why the
// protocols must order overlapping diffs by happened-before.
func TestOverlappingDiffLastWriterWins(t *testing.T) {
	base := make([]byte, 64)
	cur1 := make([]byte, 64)
	cur2 := make([]byte, 64)
	binary.LittleEndian.PutUint32(cur1[8:], 111)
	binary.LittleEndian.PutUint32(cur2[8:], 222)
	d1 := CreateDiff(0, base, cur1)
	d2 := CreateDiff(0, base, cur2)
	page := make([]byte, 64)
	d1.Apply(page)
	d2.Apply(page)
	if got := binary.LittleEndian.Uint32(page[8:]); got != 222 {
		t.Fatalf("last writer did not win: %d", got)
	}
}
