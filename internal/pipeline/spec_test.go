package pipeline

import (
	"strings"
	"testing"
)

// validSpec is a minimal spec every rejection case below mutates.
const validSpec = `{
  "schema": "dsm96/experiments/v1",
  "experiments": [
    {
      "name": "ok",
      "scale": "tiny",
      "repeats": 1,
      "grid": {
        "apps": ["water"],
        "protocols": ["Base"],
        "profiles": ["pci1996"],
        "procs": [4]
      }
    }
  ]
}`

func TestLoadValid(t *testing.T) {
	s, err := Load(strings.NewReader(validSpec))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	e, err := s.Find("ok")
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	cells, err := e.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("Expand: %d cells, want 1", len(cells))
	}
	if got, want := cells[0].ID(), "pci1996/water/Base/p4/w1"; got != want {
		t.Errorf("ID: %q, want %q", got, want)
	}
}

// TestLoadRejections is the strict-decode rejection matrix: every
// malformed spec must fail at load time with an error that names the
// offending field.
func TestLoadRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string // substring naming the offending field
	}{
		{"wrong schema",
			func(s string) string { return strings.Replace(s, "dsm96/experiments/v1", "dsm96/experiments/v2", 1) },
			`schema: got "dsm96/experiments/v2"`},
		{"unknown top-level field",
			func(s string) string { return strings.Replace(s, `"schema"`, `"bogus": 1, "schema"`, 1) },
			`unknown field "bogus"`},
		{"unknown experiment field",
			func(s string) string { return strings.Replace(s, `"name"`, `"repeat": 3, "name"`, 1) },
			`unknown field "repeat"`},
		{"unknown grid field",
			func(s string) string { return strings.Replace(s, `"apps"`, `"app": [], "apps"`, 1) },
			`unknown field "app"`},
		{"no experiments",
			func(string) string { return `{"schema": "dsm96/experiments/v1", "experiments": []}` },
			"experiments: empty"},
		{"bad name",
			func(s string) string { return strings.Replace(s, `"ok"`, `"Not OK"`, 1) },
			"name: must match"},
		{"unknown scale",
			func(s string) string { return strings.Replace(s, `"tiny"`, `"huge"`, 1) },
			`scale: unknown "huge"`},
		{"zero repeats",
			func(s string) string { return strings.Replace(s, `"repeats": 1`, `"repeats": 0`, 1) },
			"repeats: 0, need >= 1"},
		{"negative warmup",
			func(s string) string { return strings.Replace(s, `"repeats": 1`, `"repeats": 1, "warmup": -1`, 1) },
			"warmup: -1, need >= 0"},
		{"negative timeout",
			func(s string) string { return strings.Replace(s, `"repeats": 1`, `"repeats": 1, "timeout_sec": -5`, 1) },
			"timeout_sec: -5, need >= 0"},
		{"empty apps",
			func(s string) string { return strings.Replace(s, `["water"]`, `[]`, 1) },
			"grid.apps: empty"},
		{"unknown app",
			func(s string) string { return strings.Replace(s, `"water"`, `"doom"`, 1) },
			`grid.apps[0]: unknown app "doom"`},
		{"empty protocols",
			func(s string) string { return strings.Replace(s, `["Base"]`, `[]`, 1) },
			"grid.protocols: empty"},
		{"unknown protocol",
			func(s string) string { return strings.Replace(s, `"Base"`, `"MESI"`, 1) },
			`grid.protocols[0]: unknown protocol "MESI"`},
		{"empty profiles",
			func(s string) string { return strings.Replace(s, `["pci1996"]`, `[]`, 1) },
			"grid.profiles: empty"},
		{"unknown profile",
			func(s string) string { return strings.Replace(s, `"pci1996"`, `"vax"`, 1) },
			"grid.profiles[0]:"},
		{"empty procs",
			func(s string) string { return strings.Replace(s, `[4]`, `[]`, 1) },
			"grid.procs: empty"},
		{"zero procs",
			func(s string) string { return strings.Replace(s, `[4]`, `[0]`, 1) },
			"grid.procs[0]: 0, need >= 1"},
		{"zero workers",
			func(s string) string {
				return strings.Replace(s, `"procs": [4]`, `"procs": [4], "workers": [0]`, 1)
			},
			"grid.workers[0]: 0, need >= 1"},
		{"duplicate name",
			func(string) string {
				one := `{"name": "ok", "scale": "tiny", "repeats": 1, "grid": {"apps": ["water"], "protocols": ["Base"], "profiles": ["pci1996"], "procs": [4]}}`
				return `{"schema": "dsm96/experiments/v1", "experiments": [` + one + `, ` + one + `]}`
			},
			"name: duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.mutate(validSpec)))
			if err == nil {
				t.Fatalf("Load accepted a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name the offending field (want substring %q)", err, tc.wantErr)
			}
		})
	}
}

// TestCommittedSpecLoads pins the repo-root experiments.json: it must
// always load, and the experiments the Makefile and docs name must
// exist.
func TestCommittedSpecLoads(t *testing.T) {
	s, err := LoadFile("../../experiments.json")
	if err != nil {
		t.Fatalf("committed experiments.json: %v", err)
	}
	for _, name := range []string{"smoke", "ladder", "parallel-engine"} {
		e, err := s.Find(name)
		if err != nil {
			t.Errorf("committed spec: %v", err)
			continue
		}
		if _, err := e.Expand(); err != nil {
			t.Errorf("committed spec: expand %s: %v", name, err)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	for label, want := range map[string]string{
		"Base": "Base", "I": "I", "I+P+D": "I+P+D",
		"AURC": "AURC", "AURC+P": "AURC+P",
	} {
		spec, ok := ParseProtocol(label)
		if !ok {
			t.Errorf("ParseProtocol(%q): not recognized", label)
			continue
		}
		if got := spec.String(); got != want {
			t.Errorf("ParseProtocol(%q).String() = %q, want %q", label, got, want)
		}
	}
	if _, ok := ParseProtocol("MOESI"); ok {
		t.Error("ParseProtocol accepted an unknown label")
	}
}

// TestExpandOrder pins the fixed expansion order (apps outermost, then
// protocols, profiles, procs, workers) that cell numbering and artifact
// names depend on.
func TestExpandOrder(t *testing.T) {
	e := &Experiment{
		Name: "order", Scale: "tiny", Repeats: 1,
		Grid: Grid{
			Apps: []string{"water", "tsp"}, Protocols: []string{"Base", "I"},
			Profiles: []string{"pci1996"}, Procs: []int{4}, Workers: []int{1, 2},
		},
	}
	cells, err := e.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"pci1996/water/Base/p4/w1", "pci1996/water/Base/p4/w2",
		"pci1996/water/I/p4/w1", "pci1996/water/I/p4/w2",
		"pci1996/tsp/Base/p4/w1", "pci1996/tsp/Base/p4/w2",
		"pci1996/tsp/I/p4/w1", "pci1996/tsp/I/p4/w2",
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i := range want {
		if got := cells[i].ID(); got != want[i] {
			t.Errorf("cell %d: %q, want %q", i, got, want[i])
		}
	}
}
