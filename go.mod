module dsm96

go 1.22
