// Package memsys models each workstation's memory system in the detail
// the paper's back end simulates: a first-level direct-mapped data cache,
// a finite write buffer, a TLB, DRAM with setup+streaming costs, a shared
// memory bus with contention, and the PCI bus the protocol controller and
// network interface sit on.
package memsys

// Addr is a simulated physical/virtual address (the DSM uses a single
// flat shared address space).
type Addr = int64

// Cache is a direct-mapped, tag-only timing model of the first-level data
// cache. Data values are not stored: the DSM keeps page contents in
// per-node page frames; the cache decides hit/miss timing only.
type Cache struct {
	lineSize int
	nLines   int
	tags     []Addr // tags[i] = line address (addr / lineSize), -1 invalid
	dirty    []bool

	Hits, Misses, Evictions, WriteBacks, Invalidations uint64
}

// NewCache builds a cache of totalBytes capacity with lineBytes lines.
func NewCache(totalBytes, lineBytes int) *Cache {
	n := totalBytes / lineBytes
	c := &Cache{lineSize: lineBytes, nLines: n,
		tags: make([]Addr, n), dirty: make([]bool, n)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Lines returns the number of lines.
func (c *Cache) Lines() int { return c.nLines }

func (c *Cache) index(line Addr) int { return int(line % Addr(c.nLines)) }

// Lookup reports whether addr hits without changing state.
func (c *Cache) Lookup(addr Addr) bool {
	line := addr / Addr(c.lineSize)
	return c.tags[c.index(line)] == line
}

// Access simulates a reference to addr. It returns whether it hit and, on
// a miss that evicted a dirty line, evictedDirty=true (the caller models
// the write-back bus traffic).
//
// markDirty applies to the (possibly newly filled) line — used for
// write-back caching of writes. allocate=false models write-no-allocate
// (write-through writes do not fill the cache on a miss).
func (c *Cache) Access(addr Addr, markDirty, allocate bool) (hit, evictedDirty bool) {
	line := addr / Addr(c.lineSize)
	i := c.index(line)
	if c.tags[i] == line {
		c.Hits++
		if markDirty {
			c.dirty[i] = true
		}
		return true, false
	}
	c.Misses++
	if !allocate {
		return false, false
	}
	if c.tags[i] != -1 {
		c.Evictions++
		if c.dirty[i] {
			c.WriteBacks++
			evictedDirty = true
		}
	}
	c.tags[i] = line
	c.dirty[i] = markDirty
	return false, evictedDirty
}

// InvalidateRange drops every line overlapping [addr, addr+n). The
// computation processor must snoop and invalidate data written to local
// memory by the protocol controller (Section 3.1), e.g. when a remote
// diff is applied to a local page. Dirty data in the invalidated range is
// discarded: the protocol guarantees the incoming version supersedes it.
func (c *Cache) InvalidateRange(addr Addr, n int) int {
	first := addr / Addr(c.lineSize)
	last := (addr + Addr(n) - 1) / Addr(c.lineSize)
	dropped := 0
	for line := first; line <= last; line++ {
		i := c.index(line)
		if c.tags[i] == line {
			c.tags[i] = -1
			c.dirty[i] = false
			dropped++
		}
	}
	c.Invalidations += uint64(dropped)
	return dropped
}

// Flush empties the whole cache (used between runs/phases in tests).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = -1
		c.dirty[i] = false
	}
}

// TLB is a FIFO-replacement translation buffer over page numbers.
type TLB struct {
	size    int
	present map[Addr]bool
	fifo    []Addr

	Hits, Misses uint64
}

// NewTLB builds a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	return &TLB{size: entries, present: make(map[Addr]bool, entries)}
}

// Access touches the translation for page and reports whether it hit.
func (t *TLB) Access(page Addr) (hit bool) {
	if t.present[page] {
		t.Hits++
		return true
	}
	t.Misses++
	if len(t.fifo) >= t.size {
		victim := t.fifo[0]
		copy(t.fifo, t.fifo[1:])
		t.fifo = t.fifo[:len(t.fifo)-1]
		delete(t.present, victim)
	}
	t.present[page] = true
	t.fifo = append(t.fifo, page)
	return false
}

// Entries returns the number of resident translations.
func (t *TLB) Entries() int { return len(t.fifo) }
