package experiments

import (
	"runtime"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// TestDegradedMatchesBase is the degradation-correctness anchor: with
// every controller crashed from cycle 0, an I+P+D run is forced to do
// all protocol work in software — CPU send path, twin-based diffs, no
// prefetching — which is exactly Base's machinery. The answer must
// equal Base's bit for bit, both runs must pass the sequential oracle,
// and the breakdown must have Base's shape (every category Base
// exercises, the degraded run exercises too).
func TestDegradedMatchesBase(t *testing.T) {
	const procs = 8
	for _, name := range []string{"tsp", "water", "radix"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(spec core.Spec) *core.Result {
				app, err := apps.Tiny(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := params.Default()
				cfg.Processors = procs
				res, err := core.Run(cfg, spec, app)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(core.TM(tmk.Base))

			plan := &faults.Plan{}
			if err := faults.ParseCtrlCrash(plan, "all@0", procs); err != nil {
				t.Fatal(err)
			}
			spec := core.TM(tmk.IPD)
			spec.Faults = plan
			deg := run(spec)

			if !deg.Validated() {
				t.Fatalf("degraded run failed the sequential oracle: %v vs %v",
					deg.AppResult, deg.SeqResult)
			}
			if deg.AppResult != base.AppResult {
				t.Errorf("degraded I+P+D computed %v, Base computed %v", deg.AppResult, base.AppResult)
			}
			sum := deg.Breakdown.Sum()
			if sum.ControllerFailovers != procs {
				t.Errorf("%d failovers, want one per node (%d)", sum.ControllerFailovers, procs)
			}
			if sum.DegradedNodeCycles == 0 {
				t.Error("no degraded cycles accounted despite all-crash-at-0")
			}
			if sum.SoftwareFallbackDiffs == 0 {
				t.Error("no software-fallback diffs despite all protocol work degraded")
			}
			baseSum := base.Breakdown.Sum()
			for _, c := range stats.Categories() {
				if baseSum.Cycles[c] > 0 && sum.Cycles[c] == 0 {
					t.Errorf("breakdown category %s: Base has %d cycles, degraded run has none",
						c, baseSum.Cycles[c])
				}
			}
		})
	}
}

// TestCtrlFaultsVacuousOffController: controller schedules must not
// move a single event on protocols with no controller to fail — Base
// and AURC run the same schedule with and without an all-crash plan.
func TestCtrlFaultsVacuousOffController(t *testing.T) {
	const procs = 8
	for _, spec := range []core.Spec{core.TM(tmk.Base), core.AURC(false)} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			run := func(with bool) *core.Result {
				app, err := apps.Tiny("radix")
				if err != nil {
					t.Fatal(err)
				}
				cfg := params.Default()
				cfg.Processors = procs
				sp := spec
				if with {
					plan := &faults.Plan{}
					if err := faults.ParseCtrlCrash(plan, "all@0", procs); err != nil {
						t.Fatal(err)
					}
					sp.Faults = plan
				}
				res, err := core.Run(cfg, sp, app)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			clean, faulted := run(false), run(true)
			if clean.EventFingerprint != faulted.EventFingerprint {
				t.Errorf("controller plan moved events on a controller-less protocol: %016x vs %016x",
					clean.EventFingerprint, faulted.EventFingerprint)
			}
		})
	}
}

// TestChaosSweep is the `make chaos` gate body: the full chaos matrix
// over a bounded seed set. ChaosSweep itself validates every cell
// against the sequential oracle and proves repeat-run fingerprint
// equality; this test adds GOMAXPROCS invariance — the whole sweep
// rerun on a single OS thread must reproduce every fingerprint — and
// sanity-checks that the seeds actually exercised degradation.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is seconds of work; skipped in -short")
	}
	seeds := []uint64{1, 2}
	pts, err := ChaosSweep(ScaleTiny, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var failovers, fbdiffs uint64
	for _, p := range pts {
		failovers += p.Failovers
		fbdiffs += p.FallbackDiffs
		if p.Norm < 1 {
			// Chaos can only cost cycles: remote nodes see slower
			// service, never less work.
			t.Errorf("%s/%s seed %d: chaos run faster than fault-free (norm %.3f)",
				p.App, p.Protocol, p.Seed, p.Norm)
		}
	}
	if failovers == 0 || fbdiffs == 0 {
		t.Fatalf("chaos seeds exercised no degradation (failovers=%d, fallback diffs=%d)",
			failovers, fbdiffs)
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	again, err := ChaosSweep(ScaleTiny, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Fingerprint != again[i].Fingerprint {
			t.Errorf("%s/%s seed %d: fingerprint %016x under GOMAXPROCS=1, %016x before",
				pts[i].App, pts[i].Protocol, pts[i].Seed, again[i].Fingerprint, pts[i].Fingerprint)
		}
	}
}

// TestChaosParallelParity is the sharded-engine leg of the chaos gate:
// chaos cells rerun with the event engine split across 4 workers
// (sweep -chaos -workers 4) must pass the sequential oracle inside
// core.Run and fire the exact schedule the sequential engine fires —
// fault injection, controller failover, and retransmission timing
// included. In -short mode only the radix column runs.
func TestChaosParallelParity(t *testing.T) {
	names := []string{"tsp", "water", "radix"}
	if testing.Short() {
		names = names[2:]
	}
	cfg := params.Default()
	for _, name := range names {
		for _, proto := range []core.Spec{core.TM(tmk.Base), core.TM(tmk.IPD)} {
			name, proto := name, proto
			t.Run(name+"/"+proto.String(), func(t *testing.T) {
				t.Parallel()
				run := func(workers int) *core.Result {
					app, err := apps.Tiny(name)
					if err != nil {
						t.Fatal(err)
					}
					spec := proto
					spec.Faults = ChaosPlan(1, cfg.Processors)
					spec.Workers = workers
					res, err := core.Run(cfg, spec, app)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return res
				}
				seq, par := run(1), run(4)
				if seq.EventFingerprint != par.EventFingerprint ||
					seq.RunningTime != par.RunningTime || seq.EventsRun != par.EventsRun {
					t.Errorf("workers=4 chaos run diverged: fp %016x/%016x cycles %d/%d events %d/%d",
						par.EventFingerprint, seq.EventFingerprint,
						par.RunningTime, seq.RunningTime, par.EventsRun, seq.EventsRun)
				}
			})
		}
	}
}
