package tmk

import (
	"testing"

	"dsm96/internal/lrc"
	"dsm96/internal/memsys"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/stats"
)

func TestModeProperties(t *testing.T) {
	cases := []struct {
		m                      Mode
		ctrl, hwDiff, prefetch bool
		label                  string
	}{
		{Base, false, false, false, "Base"},
		{I, true, false, false, "I"},
		{ID, true, true, false, "I+D"},
		{P, false, false, true, "P"},
		{IP, true, false, true, "I+P"},
		{IPD, true, true, true, "I+P+D"},
	}
	for _, c := range cases {
		if c.m.Ctrl() != c.ctrl || c.m.HWDiff() != c.hwDiff || c.m.Prefetch() != c.prefetch {
			t.Errorf("%s: ctrl=%v hw=%v pf=%v", c.m, c.m.Ctrl(), c.m.HWDiff(), c.m.Prefetch())
		}
		if c.m.String() != c.label {
			t.Errorf("String() = %q, want %q", c.m.String(), c.label)
		}
		back, ok := ParseMode(c.label)
		if !ok || back != c.m {
			t.Errorf("ParseMode(%q) = %v, %v", c.label, back, ok)
		}
	}
	if _, ok := ParseMode("bogus"); ok {
		t.Error("ParseMode accepted bogus label")
	}
}

func TestCategoryForMapping(t *testing.T) {
	cases := map[string]stats.Category{
		memsys.ReasonBusy:      stats.Busy,
		memsys.ReasonTLBFill:   stats.Other,
		memsys.ReasonCacheMiss: stats.Other,
		memsys.ReasonWBFull:    stats.Other,
		reasonInterrupt:        stats.Other,
		reasonFetch:            stats.Data,
		reasonTwin:             stats.Data,
		reasonLock:             stats.Synch,
		reasonLockGrant:        stats.Synch,
		reasonBarrier:          stats.Synch,
		reasonPrefetch:         stats.Synch,
		reasonSteal:            stats.IPC,
		"unknown-reason":       stats.Other,
	}
	for reason, want := range cases {
		if got := CategoryFor(reason); got != want {
			t.Errorf("CategoryFor(%q) = %v, want %v", reason, got, want)
		}
	}
}

func newTestProtocol(procs int, mode Mode) *Protocol {
	cfg := params.Default()
	cfg.Processors = procs
	eng := sim.NewEngine()
	net := network.New(&cfg, eng, procs)
	return New(&cfg, eng, net, mode)
}

// TestOrderDiffs crafts diffs with explicit span timestamps and checks
// the topological order: happened-before spans first, same-owner spans
// ascending, concurrent spans in deterministic owner order.
func TestOrderDiffs(t *testing.T) {
	mk := func(owner int, old, seq int32, vts lrc.VTS) *lrc.Diff {
		return &lrc.Diff{Owner: owner, OldSeq: old, Seq: seq, VTS: vts}
	}
	// Lock-migratory chain over 3 owners: each span saw the previous.
	d1 := mk(0, 1, 1, lrc.VTS{1, 0, 0})
	d2 := mk(1, 1, 1, lrc.VTS{1, 1, 0}) // saw (0,1)
	d3 := mk(2, 1, 1, lrc.VTS{1, 1, 1}) // saw both
	got := orderDiffs([]*lrc.Diff{d3, d1, d2})
	if got[0] != d1 || got[1] != d2 || got[2] != d3 {
		t.Fatalf("chain order wrong: %v %v %v", got[0].Owner, got[1].Owner, got[2].Owner)
	}
	// Same owner: ascending spans.
	a1 := mk(0, 1, 2, lrc.VTS{2, 0, 0})
	a2 := mk(0, 3, 4, lrc.VTS{4, 0, 0})
	got = orderDiffs([]*lrc.Diff{a2, a1})
	if got[0] != a1 || got[1] != a2 {
		t.Fatal("same-owner spans not ascending")
	}
	// Concurrent (neither sees the other): owner order by selection.
	c1 := mk(0, 1, 1, lrc.VTS{1, 0, 0})
	c2 := mk(1, 1, 1, lrc.VTS{0, 1, 0})
	got = orderDiffs([]*lrc.Diff{c2, c1})
	if len(got) != 2 {
		t.Fatal("lost a diff")
	}
	// Empty input.
	if out := orderDiffs(nil); len(out) != 0 {
		t.Fatal("nil input mishandled")
	}
}

func TestCloseIntervalConservativeListing(t *testing.T) {
	pr := newTestProtocol(2, Base)
	n := pr.nodes[0]
	// No writes: no interval.
	if iv := n.closeInterval(); iv != nil {
		t.Fatal("interval created with no dirty pages")
	}
	// Dirty pages are listed in EVERY interval until their diff retires.
	n.page(3)
	n.dirty[3] = true
	iv1 := n.closeInterval()
	if iv1 == nil || iv1.Seq != 1 || len(iv1.Pages) != 1 || iv1.Pages[0] != 3 {
		t.Fatalf("iv1 = %+v", iv1)
	}
	iv2 := n.closeInterval()
	if iv2 == nil || iv2.Seq != 2 || len(iv2.Pages) != 1 {
		t.Fatalf("iv2 = %+v", iv2)
	}
	if n.page(3).firstIval != 1 {
		t.Fatalf("firstIval = %d, want 1 (span start)", n.page(3).firstIval)
	}
}

func TestFlushLocalDiffFreshTag(t *testing.T) {
	pr := newTestProtocol(2, Base)
	n := pr.nodes[0]
	pe := n.page(5)
	pe.twin = make([]byte, pr.cfg.PageSize)
	pe.state = stRW
	n.dirty[5] = true
	n.frames.Page(5)[0] = 42
	n.closeInterval()

	d1, _, _ := n.flushLocalDiff(5)
	if d1 == nil || d1.Seq != 1 || d1.OldSeq != 1 {
		t.Fatalf("first diff = %+v", d1)
	}
	// Re-dirty in the SAME interval epoch: a second flush must not reuse
	// the tag (requesters that consumed seq 1 would never see it).
	pe.twin = make([]byte, pr.cfg.PageSize)
	pe.state = stRW
	n.dirty[5] = true
	n.frames.Page(5)[4] = 7
	d2, _, _ := n.flushLocalDiff(5)
	if d2 == nil || d2.Seq <= d1.Seq {
		t.Fatalf("second diff tag %d not after first %d", d2.Seq, d1.Seq)
	}
	// Clean page: nothing to flush.
	if d, _, _ := n.flushLocalDiff(5); d != nil {
		t.Fatal("flush of clean page produced a diff")
	}
}

func TestIntegrateSkipsOnlyProcessedNotices(t *testing.T) {
	pr := newTestProtocol(4, Base)
	n := pr.nodes[0]
	// A batch where an early interval's VTS covers a later one: both
	// intervals' notices must still be processed.
	iv21 := &lrc.Interval{Owner: 2, Seq: 1, VTS: lrc.VTS{0, 0, 1, 0}, Pages: []int{9}}
	iv11 := &lrc.Interval{Owner: 1, Seq: 1, VTS: lrc.VTS{0, 1, 1, 0}, Pages: []int{9}} // saw (2,1)
	n.integrate([]*lrc.Interval{iv11, iv21})
	pe := n.page(9)
	if len(pe.pending) != 2 {
		t.Fatalf("pending = %d, want 2 (both notices)", len(pe.pending))
	}
	if pe.state != stInvalid {
		t.Fatal("page not invalidated")
	}
	// Replay is idempotent.
	n.integrate([]*lrc.Interval{iv11, iv21})
	if len(pe.pending) != 2 {
		t.Fatalf("replay duplicated notices: %d", len(pe.pending))
	}
}

func TestStoreIntervalGapPanics(t *testing.T) {
	pr := newTestProtocol(2, Base)
	n := pr.nodes[0]
	defer func() {
		if recover() == nil {
			t.Error("gap not detected")
		}
	}()
	n.storeInterval(&lrc.Interval{Owner: 1, Seq: 2, VTS: lrc.VTS{0, 2}})
}

func TestMissingIntervalsRanges(t *testing.T) {
	pr := newTestProtocol(3, Base)
	n := pr.nodes[0]
	for s := int32(1); s <= 3; s++ {
		n.storeInterval(&lrc.Interval{Owner: 1, Seq: s, VTS: lrc.VTS{0, s, 0}})
	}
	n.vts[1] = 3
	got := n.missingIntervals(lrc.VTS{0, 1, 0}, 2)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("missing = %+v", got)
	}
	// Excluding the owner drops its intervals.
	got = n.missingIntervals(lrc.VTS{0, 0, 0}, 1)
	if len(got) != 0 {
		t.Fatalf("exclusion failed: %+v", got)
	}
}

func TestPageWordTags(t *testing.T) {
	pr := newTestProtocol(2, Base)
	pe := pr.nodes[0].page(1)
	if pe.tag(5) != nil {
		t.Fatal("untagged word reported a tag")
	}
	v := lrc.VTS{3, 1}
	pe.setTag(5, v, pr.cfg.PageWords())
	if got := pe.tag(5); got == nil || !got.Equal(v) {
		t.Fatalf("tag = %v", got)
	}
	if pe.tag(6) != nil {
		t.Fatal("neighbouring word inherited a tag")
	}
}

func TestPrefetchStrategyStrings(t *testing.T) {
	cases := map[PrefetchStrategy]string{
		PrefetchReferenced:   "referenced",
		PrefetchAlways:       "always",
		PrefetchAdaptive:     "adaptive",
		PrefetchStrategy(99): "?",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestNewWithOptions(t *testing.T) {
	cfg := params.Default()
	cfg.Processors = 2
	eng := sim.NewEngine()
	net := network.New(&cfg, eng, 2)
	pr := NewWithOptions(&cfg, eng, net, IPD, Options{Strategy: PrefetchAlways, NoPrefetchPriority: true})
	if pr.opts.Strategy != PrefetchAlways || !pr.opts.NoPrefetchPriority {
		t.Fatalf("options not installed: %+v", pr.opts)
	}
}

func TestHWDiffModeSnoopsWriteThrough(t *testing.T) {
	// End to end at the unit level: a write under I+D must mark the
	// controller's write vector and go through the write buffer.
	pr := newTestProtocol(1, ID)
	eng := pr.eng
	n := pr.nodes[0]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		pr.Write32(p, 0, 4096+8, 77)
		pr.Write64(p, 0, 4096+16, 1<<40)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vec := n.ctl.Vector(1)
	if vec.Count() != 3 { // one 4-byte word + two words of the 8-byte write
		t.Fatalf("snooped words = %d, want 3", vec.Count())
	}
	if n.frames.ReadU32(4096+8) != 77 {
		t.Fatal("data not committed")
	}
	if n.st.SharedWrites != 2 {
		t.Fatalf("writes = %d", n.st.SharedWrites)
	}
}

func TestBaseModeWriteBack(t *testing.T) {
	pr := newTestProtocol(1, Base)
	eng := pr.eng
	n := pr.nodes[0]
	eng.NewProc(0, "p", 0, func(p *sim.Proc) {
		pr.Write32(p, 0, 8, 5)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.mem.Cache.Lookup(8) {
		t.Fatal("write-back mode did not allocate the line")
	}
	if n.st.TwinsCreated != 1 {
		t.Fatalf("twins = %d, want 1 (first write faults)", n.st.TwinsCreated)
	}
}
