package params

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestPCI1996ProfileIsDefault pins the acceptance contract: the pci1996
// builtin IS Table 1, so -profile pci1996 runs bit-identically to a run
// with no profile at all.
func TestPCI1996ProfileIsDefault(t *testing.T) {
	p, err := Builtin(BackendPCI1996)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Config(), Default(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pci1996 profile diverges from Default():\n got %+v\nwant %+v", got, want)
	}
}

// TestBuiltinsValidate proves every builtin passes its own validation and
// carries the right identity metadata.
func TestBuiltinsValidate(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Builtins() {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q: %v", p.Name, err)
		}
		if p.Schema != ProfileSchema {
			t.Errorf("builtin %q: schema %q", p.Name, p.Schema)
		}
		if p.Name != p.Backend {
			t.Errorf("builtin %q: backend %q (builtins use name == backend)", p.Name, p.Backend)
		}
		if p.Description == "" {
			t.Errorf("builtin %q: empty description", p.Name)
		}
		names[p.Name] = true
	}
	for _, n := range BuiltinNames() {
		if !names[n] {
			t.Errorf("BuiltinNames lists %q but Builtins() did not return it", n)
		}
	}
}

// TestBuiltinReturnsFreshCopies guards against shared state: mutating one
// returned profile must not leak into the next request.
func TestBuiltinReturnsFreshCopies(t *testing.T) {
	a, _ := Builtin(BackendRDMA)
	a.Params.Processors = 9999
	b, _ := Builtin(BackendRDMA)
	if b.Params.Processors == 9999 {
		t.Fatal("Builtin returned a shared instance, not a fresh copy")
	}
}

// TestProfileRoundTripByteStable is the canonical-form guarantee:
// load(save(p)) == p, and save(load(save(p))) == save(p) byte-for-byte.
func TestProfileRoundTripByteStable(t *testing.T) {
	for _, p := range Builtins() {
		first, err := p.SaveBytes()
		if err != nil {
			t.Fatalf("%s: save: %v", p.Name, err)
		}
		loaded, err := LoadProfile(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("%s: load: %v", p.Name, err)
		}
		if !reflect.DeepEqual(loaded, p) {
			t.Fatalf("%s: load(save(p)) != p:\n got %+v\nwant %+v", p.Name, loaded, p)
		}
		second, err := loaded.SaveBytes()
		if err != nil {
			t.Fatalf("%s: re-save: %v", p.Name, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: save is not byte-stable across a round trip", p.Name)
		}
		if first[len(first)-1] != '\n' {
			t.Errorf("%s: canonical form must end in a newline", p.Name)
		}
	}
}

// TestLoadProfileRejections: every malformed input is rejected with an
// error that names the problem (schema, field, or structure).
func TestLoadProfileRejections(t *testing.T) {
	canonical := func() string {
		b, err := Builtins()[0].SaveBytes()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}()
	cases := []struct {
		name, input, wantSub string
	}{
		{"wrong schema", strings.Replace(canonical, "params-profile/v1", "params-profile/v2", 1), "schema"},
		{"unknown field", strings.Replace(canonical, `"tlb_entries"`, `"tlb_entriez"`, 1), "tlb_entriez"},
		{"trailing data", canonical + "{}\n", "trailing data"},
		{"empty name", strings.Replace(canonical, `"name": "pci1996"`, `"name": ""`, 1), "name"},
		{"uppercase backend", strings.Replace(canonical, `"backend": "pci1996"`, `"backend": "PCI1996"`, 1), "backend"},
		{"not json", "hello\n", "profile"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadProfile(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("accepted malformed input %q", c.name)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not name %q", err, c.wantSub)
			}
		})
	}
}

// TestProfileValidationNamesParamField: a bad parameter value inside a
// profile surfaces through profile validation still naming the field.
func TestProfileValidationNamesParamField(t *testing.T) {
	p, _ := Builtin(BackendCXL)
	p.Params.CycleNanos = 0
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "CycleNanos") {
		t.Fatalf("want error naming CycleNanos, got %v", err)
	}
	if !strings.Contains(err.Error(), "cxl") {
		t.Fatalf("want error naming the profile, got %v", err)
	}
}

// TestResolveProfile covers the -profile argument semantics: builtin name,
// file path, and the miss case.
func TestResolveProfile(t *testing.T) {
	if p, err := ResolveProfile("rdma"); err != nil || p.Name != "rdma" {
		t.Fatalf("builtin resolve: %v %v", p, err)
	}

	dir := t.TempDir()
	custom, _ := Builtin(BackendRDMA)
	custom.Name = "my-lab-cluster"
	custom.Description = "test fixture"
	b, err := custom.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lab.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ResolveProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-lab-cluster" {
		t.Fatalf("file resolve: got %q", p.Name)
	}

	if _, err := ResolveProfile("no-such-profile"); err == nil ||
		!strings.Contains(err.Error(), "neither a builtin") {
		t.Fatalf("miss case: %v", err)
	}
}

// TestCheckedInProfilesAreCanonical: the files under profiles/ must be
// exactly Save(builtin) — same bytes, no drift.
func TestCheckedInProfilesAreCanonical(t *testing.T) {
	root := filepath.Join("..", "..", "profiles")
	if _, err := os.Stat(root); err != nil {
		t.Skipf("profiles/ not present: %v", err)
	}
	for _, p := range Builtins() {
		path := filepath.Join(root, p.Name+".json")
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing checked-in profile: %v", err)
			continue
		}
		want, err := p.SaveBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is not the canonical serialization of the %s builtin; regenerate with profilecheck -write", path, p.Name)
		}
	}
}
