package spans_test

import (
	"bytes"
	"runtime"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/faults"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// run performs one tiny-scale simulation, optionally with a span tracker
// attached, and returns the result plus the tracker (nil when detached).
func run(t *testing.T, appName string, spec core.Spec, procs int, withSpans bool) (*core.Result, *spans.Tracker) {
	t.Helper()
	app, err := apps.Tiny(appName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Default()
	cfg.Processors = procs
	var tr *spans.Tracker
	if withSpans {
		tr = spans.NewTracker(procs)
		spec.Spans = tr
	}
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// configs is the determinism matrix: both protocol families over two
// applications with different synchronization mixes (radix is
// barrier-heavy, tsp is lock-heavy).
var configs = []struct {
	app  string
	spec core.Spec
}{
	{"radix", core.TM(tmk.IPD)},
	{"radix", core.AURC(true)},
	{"tsp", core.TM(tmk.IPD)},
	{"tsp", core.AURC(true)},
}

// TestSpanDeterminism: repeated runs and runs under different GOMAXPROCS
// settings must produce byte-identical span artifacts — same report
// digest, same JSONL bytes. The simulator's schedule is deterministic;
// spans must not launder host-scheduler nondeterminism into the report.
func TestSpanDeterminism(t *testing.T) {
	for _, tc := range configs {
		tc := tc
		t.Run(tc.app+"/"+tc.spec.String(), func(t *testing.T) {
			_, ref := run(t, tc.app, tc.spec, 8, true)
			refDigest := ref.Report().Digest
			var refJSONL bytes.Buffer
			if err := ref.WriteJSONL(&refJSONL); err != nil {
				t.Fatal(err)
			}
			old := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(old)
			for _, p := range []int{1, 8} {
				runtime.GOMAXPROCS(p)
				_, tr := run(t, tc.app, tc.spec, 8, true)
				if d := tr.Report().Digest; d != refDigest {
					t.Errorf("GOMAXPROCS=%d: digest %s, want %s", p, d, refDigest)
				}
				var got bytes.Buffer
				if err := tr.WriteJSONL(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), refJSONL.Bytes()) {
					t.Errorf("GOMAXPROCS=%d: JSONL differs", p)
				}
			}
		})
	}
}

// TestSpanReconciliation cross-checks the span ledger against the
// protocol's own accounting:
//
//   - Data and Synch stalls happen only while an operation is current,
//     so the per-node sums of span charges must equal stats.Breakdown
//     exactly.
//   - Busy, IPC, and Other cycles can also accrue outside any operation
//     (compute, steal absorption, TLB fills), so spans see at most the
//     breakdown's totals.
//   - Per-kind span counts must equal the protocol's operation counters:
//     every fault, acquire, barrier, and prefetch got exactly one span.
func TestSpanReconciliation(t *testing.T) {
	for _, tc := range configs {
		tc := tc
		t.Run(tc.app+"/"+tc.spec.String(), func(t *testing.T) {
			res, tr := run(t, tc.app, tc.spec, 8, true)

			var charged [8][stats.NumCategories]int64
			kindCount := map[spans.Kind]uint64{}
			for _, op := range tr.Ops() {
				for c, v := range op.Charged {
					charged[op.Node][c] += v
				}
				kindCount[op.Kind]++
			}
			for n, ps := range res.Breakdown.PerProc {
				for _, c := range []stats.Category{stats.Data, stats.Synch} {
					if charged[n][c] != ps.Cycles[c] {
						t.Errorf("node %d %s: spans charged %d, breakdown %d",
							n, c, charged[n][c], ps.Cycles[c])
					}
				}
				for _, c := range []stats.Category{stats.Busy, stats.IPC, stats.Other} {
					if charged[n][c] > ps.Cycles[c] {
						t.Errorf("node %d %s: spans charged %d > breakdown %d",
							n, c, charged[n][c], ps.Cycles[c])
					}
				}
			}

			sum := res.Breakdown.Sum()
			for _, cc := range []struct {
				kind spans.Kind
				want uint64
				name string
			}{
				{spans.OpReadFault, sum.PageFaults, "page faults"},
				{spans.OpWriteFault, sum.WriteFaults, "write faults"},
				{spans.OpLock, sum.LockAcquires, "lock acquires"},
				{spans.OpBarrier, sum.Barriers, "barrier arrivals"},
				{spans.OpPrefetch, sum.Prefetches, "prefetches"},
			} {
				if kindCount[cc.kind] != cc.want {
					t.Errorf("%d %s spans, counters say %d", kindCount[cc.kind], cc.name, cc.want)
				}
			}
		})
	}
}

// TestSpanReconciliationUnderFaults re-runs the ledger cross-checks on a
// network that loses, duplicates, and delays messages. Retransmission
// stretches operations — the retry timeout lands inside the blocking
// window — so this is the regime where a decomposition that assumed an
// uncontended send (instead of observing the actual delivery) would
// stop summing to the block time. Every span's stages must still sum
// exactly to End-Start, and the Data/Synch charge equality against the
// breakdown must survive with retransmissions in flight.
func TestSpanReconciliationUnderFaults(t *testing.T) {
	app, err := apps.Tiny("radix")
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Default()
	cfg.Processors = 8
	tr := spans.NewTracker(cfg.Processors)
	spec := core.TM(tmk.IPD)
	spec.Spans = tr
	spec.Faults = &faults.Plan{
		Seed: 42,
		Default: faults.Link{
			Drop: 0.05, Dup: 0.1,
			Delay: 0.2, DelayMin: 200, DelayMax: 2000,
		},
	}
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability.Retries == 0 || res.Reliability.MessagesDropped == 0 {
		t.Fatalf("fault plan exercised no retransmissions: %+v", res.Reliability)
	}

	var charged [8][stats.NumCategories]int64
	for _, op := range tr.Ops() {
		var sum sim.Time
		for _, s := range op.Stages {
			sum += s
		}
		if sum != op.End-op.Start {
			t.Errorf("op %d (%s on node %d): stages sum to %d, window is %d",
				op.ID, op.Kind, op.Node, sum, op.End-op.Start)
		}
		for c, v := range op.Charged {
			charged[op.Node][c] += v
		}
	}
	for n, ps := range res.Breakdown.PerProc {
		for _, c := range []stats.Category{stats.Data, stats.Synch} {
			if charged[n][c] != ps.Cycles[c] {
				t.Errorf("node %d %s: spans charged %d, breakdown %d",
					n, c, charged[n][c], ps.Cycles[c])
			}
		}
	}
	if got := tr.OpenOps(); len(got) != 0 {
		t.Errorf("%d operations still open after a completed run", len(got))
	}
}

// TestSpansLeaveScheduleUnchanged: attaching the tracker must not move a
// single event. The tracker only observes — it never sleeps, reserves,
// or schedules — so the engine's event fingerprint is bit-identical with
// spans on and off.
func TestSpansLeaveScheduleUnchanged(t *testing.T) {
	for _, spec := range []core.Spec{core.TM(tmk.IPD), core.AURC(true)} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			bare, _ := run(t, "radix", spec, 8, false)
			traced, _ := run(t, "radix", spec, 8, true)
			if bare.EventFingerprint != traced.EventFingerprint {
				t.Errorf("fingerprint %016x with spans, %016x without",
					traced.EventFingerprint, bare.EventFingerprint)
			}
			if bare.EventsRun != traced.EventsRun {
				t.Errorf("%d events with spans, %d without", traced.EventsRun, bare.EventsRun)
			}
		})
	}
}

// TestOverlapOrdering is the paper's Figures 4-6 claim in miniature. The
// per-source hidden cycles isolate each technique's contribution: Base
// has no controller and no prefetches, so its protocol-hidden cycles are
// structurally zero; I adds controller overlap; I+P+D adds prefetch
// flight on top. On the apps whose access patterns reward prefetching
// (water's molecule sweeps, ocean's grid columns) the combination hides
// strictly more than the controller alone.
func TestOverlapOrdering(t *testing.T) {
	protocolHidden := func(app string, mode tmk.Mode) int64 {
		res, _ := run(t, app, core.TM(mode), 8, true)
		ov := res.Spans.Overlap
		return ov.ControllerHidden + ov.PrefetchHidden
	}
	for _, app := range []string{"water", "ocean"} {
		base := protocolHidden(app, tmk.Base)
		i := protocolHidden(app, tmk.I)
		ipd := protocolHidden(app, tmk.IPD)
		if base != 0 {
			t.Errorf("%s: Base hid %d protocol cycles, want exactly 0", app, base)
		}
		if !(ipd > i && i > base) {
			t.Errorf("%s: hidden I+P+D=%d, I=%d, Base=%d; want I+P+D > I > Base",
				app, ipd, i, base)
		}
	}
}

// TestBarrierCriticalPath sanity-checks the episode report on a
// barrier-heavy run: every episode is a full arrival set with a
// consistent window, and the critical node's slack is the spread between
// first and last arrival.
func TestBarrierCriticalPath(t *testing.T) {
	const procs = 8
	res, _ := run(t, "radix", core.TM(tmk.IPD), procs, true)
	eps := res.Spans.Barriers
	if len(eps) == 0 {
		t.Fatal("no barrier episodes in a barrier-heavy app")
	}
	for _, e := range eps {
		if e.Arrivals != procs {
			t.Errorf("bar %d episode %d: %d arrivals, want %d", e.Bar, e.Episode, e.Arrivals, procs)
		}
		if !(e.FirstArrival <= e.LastArrival && e.LastArrival <= e.Depart) {
			t.Errorf("bar %d episode %d: window %d..%d depart %d out of order",
				e.Bar, e.Episode, e.FirstArrival, e.LastArrival, e.Depart)
		}
		if e.CriticalSlack != e.LastArrival-e.FirstArrival {
			t.Errorf("bar %d episode %d: slack %d, want %d",
				e.Bar, e.Episode, e.CriticalSlack, e.LastArrival-e.FirstArrival)
		}
		if e.CriticalNode < 0 || e.CriticalNode >= procs {
			t.Errorf("bar %d episode %d: critical node %d out of range", e.Bar, e.Episode, e.CriticalNode)
		}
		if e.ChainCycles < e.LongestChainOp {
			t.Errorf("bar %d episode %d: chain total %d < longest op %d",
				e.Bar, e.Episode, e.ChainCycles, e.LongestChainOp)
		}
	}
}
