package sim

import "fmt"

// BlockedProc describes one stuck process in a stall report.
type BlockedProc struct {
	ID   int
	Name string
	// Reason is the process's blockReason — what it was waiting on
	// ("read-fault", "barrier", "lock", ...). Empty for a process that
	// never started.
	Reason string
	// Since is the cycle at which the process parked.
	Since Time
}

// StallReport is the engine's structured view of a run that stopped
// making progress: either a true deadlock (event queue drained with
// processes still blocked) or a livelock the watchdog caught (events
// kept firing — retransmissions, polls — but no process advanced for
// the configured window). Higher layers decorate it with protocol
// state (in-flight spans, retransmission counters) before surfacing it
// to the user.
type StallReport struct {
	// At is the simulated time the stall was detected.
	At Time
	// LastProgress is the last cycle any process started, resumed, or
	// completed an inline sleep.
	LastProgress Time
	// Blocked lists the stuck processes.
	Blocked []BlockedProc
}

// StallError is the error Engine.Run returns for deadlocks and
// watchdog-detected stalls. Callers unwrap it with errors.As to get at
// the structured report.
type StallError struct {
	// Deadlock distinguishes a drained queue (true) from a watchdog
	// livelock trip (false).
	Deadlock bool
	Report   StallReport
}

// Error renders the report. The deadlock form keeps the historical
// "sim: deadlock, blocked processes:" prefix.
func (e *StallError) Error() string {
	var msg string
	if e.Deadlock {
		msg = "sim: deadlock, blocked processes:"
	} else {
		msg = fmt.Sprintf("sim: stall, no process progress since cycle %d (now %d), blocked processes:",
			e.Report.LastProgress, e.Report.At)
	}
	for _, b := range e.Report.Blocked {
		msg += fmt.Sprintf(" %s(%s)", b.Name, b.Reason)
	}
	return msg
}

// SetWatchdog arms the liveness watchdog: if events keep firing but no
// process makes progress (starts, resumes, or completes an inline
// sleep) for more than window cycles while at least one process is
// blocked, Run returns a *StallError instead of spinning forever — the
// guard against protocol livelocks (e.g. a retransmission loop whose
// replies a wedged endpoint never generates). window <= 0 disables.
//
// The watchdog is pure observation: it schedules no events and touches
// no queues, so an armed watchdog that never trips leaves the event
// schedule and fingerprint bit-identical.
func (e *Engine) SetWatchdog(window Time) { e.watchdog = window }

// progressed stamps process-level progress for the watchdog.
func (e *Engine) progressed() { e.lastProgressAt = e.now }

// checkStall evaluates the watchdog. It must only be called from the
// Run loop between events.
func (e *Engine) checkStall() *StallError {
	if e.now-e.lastProgressAt <= e.watchdog {
		return nil
	}
	var blocked []BlockedProc
	for _, p := range e.procs {
		if !p.done && p.blockReason != "" {
			blocked = append(blocked, BlockedProc{
				ID: p.ID, Name: p.Name, Reason: p.blockReason, Since: p.blockedAt,
			})
		}
	}
	if len(blocked) == 0 {
		// Pure event churn with no one waiting (or before any process
		// starts) is not a protocol stall; restart the window.
		e.lastProgressAt = e.now
		return nil
	}
	return &StallError{Report: StallReport{
		At: e.now, LastProgress: e.lastProgressAt, Blocked: blocked,
	}}
}
