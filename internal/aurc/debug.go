package aurc

import (
	"fmt"

	"dsm96/internal/spans"
	"dsm96/internal/timeline"
	"dsm96/internal/trace"
)

// SetTracer attaches a structured event buffer: protocol events (page
// faults, automatic-update drains, prefetch issues) are recorded for
// every page, subject to the buffer's own filters. AURC emits fewer
// event kinds than TreadMarks — there are no twins, diffs, or intervals
// to report on the fault path — but the same buffer and timebase apply.
func (pr *Protocol) SetTracer(b *trace.Buffer) { pr.tracer = b }

// Tracer returns the attached buffer (nil if none).
func (pr *Protocol) Tracer() *trace.Buffer { return pr.tracer }

// SetTimeline attaches a phase recorder: processor stall/busy spans are
// recorded per node. AURC has no protocol controller, so the recorder's
// controller tracks stay empty. Must be called before InstallProc
// (core.Run's wiring order) so the recording accounting hook is the one
// installed.
func (pr *Protocol) SetTimeline(rec *timeline.Recorder) { pr.rec = rec }

// SetSpans attaches a causal-span tracker. AURC has no protocol
// controller, so only the processor-side span hooks apply. Must be
// called before InstallProc (core.Run's wiring order) so the charging
// accounting hook is the one installed.
func (pr *Protocol) SetSpans(tr *spans.Tracker) { pr.sp = tr }

// emit records a structured protocol event (no-op without a tracer).
// The append goes through Deferred for symmetry with tmk's emit; AURC
// pins itself sequential (core.Run), so this is always an inline call.
func (n *anode) emit(pg int, kind trace.Kind, format string, args ...any) {
	if n.pr.tracer == nil {
		return
	}
	ev := trace.Event{
		Time: n.pr.eng.Now(), Node: n.id, Page: pg, Kind: kind,
		Detail: fmt.Sprintf(format, args...),
	}
	tracer := n.pr.tracer
	n.pr.eng.Deferred(func() { tracer.Emit(ev) })
}
