package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: submission order
	e.At(20, func() { got = append(got, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(3, func() {
		times = append(times, e.Now())
		e.After(4, func() { times = append(times, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 3 || times[1] != 7 {
		t.Fatalf("times = %v, want [3 7]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("after Stop n = %d, want 1", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("after resume n = %d, want 2", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(5, func() { n++ })
	e.At(15, func() { n++ })
	e.RunUntil(10)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.RunUntil(20)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

// Property: events fire in nondecreasing time order and equal-time events
// fire in submission order, for arbitrary schedules.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			at := Time(d % 1000)
			seq := i
			e.At(at, func() { fired = append(fired, rec{at, seq}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.seq > b.seq {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: random nested scheduling still drains fully and time never
// goes backwards.
func TestNestedSchedulingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := Time(-1)
		count := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			if e.Now() < last {
				count = -1 << 30
			}
			last = e.Now()
			count++
			if depth <= 0 {
				return
			}
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				d := depth - 1
				e.After(Time(rng.Intn(50)), func() { spawn(d) })
			}
		}
		e.At(0, func() { spawn(6) })
		if err := e.Run(); err != nil {
			return false
		}
		return count > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := &Resource{Name: "bus"}
		var log []Time
		for i := 0; i < 4; i++ {
			id := i
			e.NewProc(id, "p", Time(id), func(p *Proc) {
				for j := 0; j < 5; j++ {
					r.Use(p, 7, "bus")
					log = append(log, p.Now())
					p.Sleep(Time(1 + id))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
