package faults

import (
	"fmt"
	"strconv"
	"strings"

	"dsm96/internal/sim"
)

// CtrlFault schedules protocol-controller failures for one node: a
// permanent crash at a cycle, a temporary hang window, or both. The
// schedule is data, not randomness — every run under the same plan
// fails the same controllers at the same simulated cycles, so chaos
// runs stay repeat-run and GOMAXPROCS invariant exactly like link
// faults. (RandomCtrl derives schedules from the plan seed when a
// scenario wants randomized placement.)
//
// Failure semantics live in internal/controller: a crashed or
// timed-out-hung controller stops accepting work at its command
// doorbell, and the owning node fails over to inline software protocol
// handling (internal/tmk).
type CtrlFault struct {
	// Crash: the controller permanently stops accepting commands at
	// CrashAt (already-accepted work completes; see controller docs).
	Crash   bool
	CrashAt sim.Time
	// Hang: the controller accepts no commands during
	// [HangAt, HangAt+HangFor). Short hangs only delay submitters; a
	// hang longer than the submit timeout is indistinguishable from a
	// crash to the waiting processor, which fails over.
	Hang    bool
	HangAt  sim.Time
	HangFor sim.Time
}

// Active reports whether this schedule can fail the controller at all.
func (c CtrlFault) Active() bool { return c.Crash || c.Hang }

// validate reports the first inconsistency, named after where.
func (c CtrlFault) validate(where string) error {
	if c.CrashAt < 0 {
		return fmt.Errorf("faults: %s: CrashAt %d negative", where, c.CrashAt)
	}
	if c.HangAt < 0 || c.HangFor < 0 {
		return fmt.Errorf("faults: %s: HangAt/HangFor window [%d,+%d] invalid", where, c.HangAt, c.HangFor)
	}
	if c.Hang && c.HangFor == 0 {
		return fmt.Errorf("faults: %s: Hang scheduled with zero HangFor window", where)
	}
	return nil
}

// CrashedBy reports whether the controller has permanently crashed at
// time t.
func (c CtrlFault) CrashedBy(t sim.Time) bool { return c.Crash && t >= c.CrashAt }

// HungAt reports whether t falls inside the hang window.
func (c CtrlFault) HungAt(t sim.Time) bool {
	return c.Hang && t >= c.HangAt && t < c.HangAt+c.HangFor
}

// HangEnd is the first cycle after the hang window.
func (c CtrlFault) HangEnd() sim.Time { return c.HangAt + c.HangFor }

// setCtrl merges one node's schedule into the plan.
func (p *Plan) setCtrl(node int, merge func(*CtrlFault)) {
	if p.Ctrl == nil {
		p.Ctrl = make(map[int]CtrlFault)
	}
	c := p.Ctrl[node]
	merge(&c)
	p.Ctrl[node] = c
}

// parseNodeAt splits "NODE@REST" and resolves NODE ("all" = every node
// in [0, nodes)). It returns the node list and the text after '@'.
func parseNodeAt(item string, nodes int) ([]int, string, error) {
	at := strings.IndexByte(item, '@')
	if at < 0 {
		return nil, "", fmt.Errorf("faults: ctrl spec %q: want NODE@CYCLE", item)
	}
	who, rest := item[:at], item[at+1:]
	if who == "all" {
		all := make([]int, nodes)
		for i := range all {
			all[i] = i
		}
		return all, rest, nil
	}
	n, err := strconv.Atoi(who)
	if err != nil || n < 0 {
		return nil, "", fmt.Errorf("faults: ctrl spec %q: bad node %q", item, who)
	}
	if n >= nodes {
		return nil, "", fmt.Errorf("faults: ctrl spec %q: node %d outside machine of %d", item, n, nodes)
	}
	return []int{n}, rest, nil
}

// ParseCtrlCrash merges a crash spec into the plan's controller
// schedule. The spec is a comma-separated list of NODE@CYCLE items;
// NODE may be "all":
//
//	"0@0"             node 0's controller is dead from the start
//	"1@50000,3@90000" two controllers crash mid-run
//	"all@0"           every node degrades to software handling
func ParseCtrlCrash(p *Plan, spec string, nodes int) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ids, rest, err := parseNodeAt(item, nodes)
		if err != nil {
			return err
		}
		cyc, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || cyc < 0 {
			return fmt.Errorf("faults: ctrl crash spec %q: bad cycle %q", item, rest)
		}
		for _, n := range ids {
			p.setCtrl(n, func(c *CtrlFault) {
				c.Crash = true
				c.CrashAt = sim.Time(cyc)
			})
		}
	}
	return nil
}

// ParseCtrlHang merges a hang spec into the plan's controller
// schedule. Items are NODE@CYCLE+WINDOW — the controller accepts no
// commands for WINDOW cycles starting at CYCLE:
//
//	"2@10000+30000"  node 2 wedges at cycle 10000 for 30000 cycles
//	"all@0+5000"     every controller starts wedged for 5000 cycles
func ParseCtrlHang(p *Plan, spec string, nodes int) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ids, rest, err := parseNodeAt(item, nodes)
		if err != nil {
			return err
		}
		plus := strings.IndexByte(rest, '+')
		if plus < 0 {
			return fmt.Errorf("faults: ctrl hang spec %q: want NODE@CYCLE+WINDOW", item)
		}
		cyc, err1 := strconv.ParseInt(rest[:plus], 10, 64)
		win, err2 := strconv.ParseInt(rest[plus+1:], 10, 64)
		if err1 != nil || err2 != nil || cyc < 0 || win <= 0 {
			return fmt.Errorf("faults: ctrl hang spec %q: bad window %q", item, rest)
		}
		for _, n := range ids {
			p.setCtrl(n, func(c *CtrlFault) {
				c.Hang = true
				c.HangAt = sim.Time(cyc)
				c.HangFor = sim.Time(win)
			})
		}
	}
	return nil
}

// RandomCtrl derives a randomized controller failure schedule from the
// seed: each node independently crashes with probability crashP
// (uniform crash cycle in [0, horizon]) and hangs with probability
// hangP (uniform start in [0, horizon], window in [1, horizon/4+1]).
//
// Determinism: each node's draws come from Derive(seed, n, n, 0). The
// (n, n) PRNG lanes are provably untouched by link-fault decisions —
// loopback messages short-circuit in the network layer before any
// fault decision is made — so controller schedules never perturb (and
// are never perturbed by) wire-fault outcomes under the same seed.
func RandomCtrl(seed uint64, nodes int, crashP, hangP float64, horizon sim.Time) map[int]CtrlFault {
	if horizon < 0 {
		panic(fmt.Sprintf("faults: RandomCtrl horizon %d negative", horizon))
	}
	out := make(map[int]CtrlFault)
	for n := 0; n < nodes; n++ {
		s := Derive(seed, n, n, 0)
		var c CtrlFault
		if s.Float() < crashP {
			c.Crash = true
			c.CrashAt = sim.Time(s.Next() % uint64(horizon+1))
		}
		if s.Float() < hangP {
			c.Hang = true
			c.HangAt = sim.Time(s.Next() % uint64(horizon+1))
			c.HangFor = 1 + sim.Time(s.Next()%uint64(horizon/4+1))
		}
		if c.Active() {
			out[n] = c
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
