package faults

import (
	"math"
	"testing"
)

// TestScheduleIndependence: the fate of message k on (src, dst) must not
// depend on what other links did in between — it is a pure function of
// (seed, src, dst, k).
func TestScheduleIndependence(t *testing.T) {
	plan := &Plan{Seed: 7, Default: Link{Drop: 0.3, Dup: 0.2, Delay: 0.4}}

	// Run A: interleave pairs in one order.
	a := NewModel(plan, 4)
	var aOut []Outcome
	for k := 0; k < 50; k++ {
		a.Decide(0, 1) // other traffic
		a.Decide(2, 3)
		aOut = append(aOut, a.Decide(1, 2))
	}
	// Run B: completely different interleaving, same (1,2) sequence.
	b := NewModel(plan, 4)
	var bOut []Outcome
	for k := 0; k < 50; k++ {
		bOut = append(bOut, b.Decide(1, 2))
	}
	for k := range aOut {
		if aOut[k] != bOut[k] {
			t.Fatalf("message %d on (1,2) changed fate with interleaving: %+v vs %+v", k, aOut[k], bOut[k])
		}
	}
}

// TestReproducible: same plan, same decisions; different seed, different
// decisions somewhere.
func TestReproducible(t *testing.T) {
	plan := &Plan{Seed: 42, Default: Link{Drop: 0.1, Dup: 0.1, Delay: 0.1}}
	m1 := NewModel(plan, 2)
	m2 := NewModel(plan, 2)
	diff := false
	other := NewModel(&Plan{Seed: 43, Default: plan.Default}, 2)
	for k := 0; k < 200; k++ {
		o1, o2, o3 := m1.Decide(0, 1), m2.Decide(0, 1), other.Decide(0, 1)
		if o1 != o2 {
			t.Fatalf("same seed diverged at message %d: %+v vs %+v", k, o1, o2)
		}
		if o1 != o3 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 made identical decisions for 200 messages (suspicious)")
	}
}

// TestRates: empirical drop/dup/delay frequencies track the configured
// probabilities.
func TestRates(t *testing.T) {
	plan := &Plan{Seed: 3, Default: Link{Drop: 0.05, Dup: 0.10, Delay: 0.20}}
	m := NewModel(plan, 2)
	const n = 20000
	var drops, dups, delays int
	for k := 0; k < n; k++ {
		o := m.Decide(0, 1)
		if o.Drop {
			drops++
		}
		if o.Duplicate {
			dups++
		}
		if o.ExtraDelay > 0 {
			delays++
		}
	}
	check := func(name string, got int, want float64) {
		f := float64(got) / n
		if math.Abs(f-want) > 0.02 {
			t.Errorf("%s rate %.3f, want ~%.3f", name, f, want)
		}
	}
	check("drop", drops, 0.05)
	// Dup and delay are drawn only for non-dropped messages.
	check("dup", dups, 0.10*0.95)
	check("delay", delays, 0.20*0.95)
	if m.Dropped != uint64(drops) || m.Duplicated != uint64(dups) || m.Delayed != uint64(delays) {
		t.Errorf("model counters (%d,%d,%d) disagree with observations (%d,%d,%d)",
			m.Dropped, m.Duplicated, m.Delayed, drops, dups, delays)
	}
}

// TestDelayBounds: injected delays respect the configured range, and the
// zero-value range defaults sanely.
func TestDelayBounds(t *testing.T) {
	plan := &Plan{Seed: 9, Default: Link{Delay: 1, DelayMin: 100, DelayMax: 150}}
	m := NewModel(plan, 2)
	for k := 0; k < 1000; k++ {
		o := m.Decide(0, 1)
		if o.ExtraDelay < 100 || o.ExtraDelay > 150 {
			t.Fatalf("delay %d outside [100,150]", o.ExtraDelay)
		}
	}
	m = NewModel(&Plan{Seed: 9, Default: Link{Delay: 1}}, 2)
	for k := 0; k < 1000; k++ {
		o := m.Decide(0, 1)
		if o.ExtraDelay < defaultDelayMin || o.ExtraDelay > defaultDelayMax {
			t.Fatalf("default-range delay %d outside [%d,%d]", o.ExtraDelay, defaultDelayMin, defaultDelayMax)
		}
	}
}

// TestDisabledPlans: nil plans, zero plans, and zero-rate per-link maps
// all produce a nil model — the structural pass-through guarantee.
func TestDisabledPlans(t *testing.T) {
	if NewModel(nil, 4) != nil {
		t.Error("nil plan built a model")
	}
	if NewModel(&Plan{Seed: 5}, 4) != nil {
		t.Error("zero-rate plan built a model")
	}
	zeroPer := &Plan{Seed: 5, PerLink: map[Pair]Link{{0, 1}: {}}}
	if NewModel(zeroPer, 4) != nil {
		t.Error("zero-rate per-link plan built a model")
	}
	if NewModel(&Plan{Default: Link{Drop: 0.1}}, 4) == nil {
		t.Error("active plan did not build a model")
	}
}

// TestPerLinkOverride: overrides isolate faults to named pairs.
func TestPerLinkOverride(t *testing.T) {
	plan := &Plan{
		Seed:    11,
		PerLink: map[Pair]Link{{0, 1}: {Drop: 1}},
	}
	m := NewModel(plan, 3)
	for k := 0; k < 100; k++ {
		if o := m.Decide(0, 1); !o.Drop {
			t.Fatal("override pair (0,1) with Drop=1 delivered a message")
		}
		if o := m.Decide(1, 0); o.Drop || o.Duplicate || o.ExtraDelay != 0 {
			t.Fatal("non-override pair (1,0) suffered a fault")
		}
	}
}

// TestValidate rejects malformed plans.
func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Default: Link{Drop: 1.5}},
		{Default: Link{Dup: -0.1}},
		{Default: Link{Delay: 0.5, DelayMin: 300, DelayMax: 100}},
		{PerLink: map[Pair]Link{{0, 1}: {Drop: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated despite bad rates", i)
		}
	}
	ok := &Plan{Default: Link{Drop: 0.5, Dup: 1, Delay: 0, DelayMin: 10, DelayMax: 20}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

// TestStreamUniformity: a crude sanity check that Float covers [0,1)
// without gross bias.
func TestStreamUniformity(t *testing.T) {
	s := Derive(1, 0, 1, 0)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		f := s.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float() = %v outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of %d draws = %.4f, want ~0.5", n, mean)
	}
}
