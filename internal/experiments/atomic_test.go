package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"ok\":true}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{\"ok\":true}\n" {
		t.Fatalf("content %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}

// TestWriteFileAtomicKilledMidWrite simulates a worker dying partway
// through an artifact write (the write callback errors after emitting
// some bytes): the destination must keep its previous content and no
// temporary file may survive.
func TestWriteFileAtomicKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell-0001.json")
	if err := os.WriteFile(path, []byte("old complete artifact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("worker killed")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, strings.Repeat("partial ", 512)); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old complete artifact\n" {
		t.Fatalf("destination clobbered: %q", got)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind after failed write: %v", ents)
	}
}

// atomicVictimBody is what the re-exec'd crash victim writes: a large
// recognizable payload whose completeness the parent can verify after
// killing the writer at an arbitrary point. The generation number makes
// every committed artifact identify which write round produced it.
func atomicVictimBody(gen int) string {
	return fmt.Sprintf("gen %08d\n%sEND gen %08d\n", gen,
		strings.Repeat(fmt.Sprintf("payload line for generation %08d\n", gen), 4096), gen)
}

// TestMain re-execs the test binary as the crash victim when
// ATOMIC_CRASH_VICTIM names a target path: it rewrites the target with
// WriteFileAtomic in a tight loop until killed. The parent test SIGKILLs
// it, so this helper never returns normally.
func TestMain(m *testing.M) {
	if target := os.Getenv("ATOMIC_CRASH_VICTIM"); target != "" {
		for gen := 0; ; gen++ {
			body := atomicVictimBody(gen)
			err := WriteFileAtomic(target, func(w io.Writer) error {
				_, werr := io.WriteString(w, body)
				return werr
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "victim:", err)
				os.Exit(1)
			}
		}
	}
	os.Exit(m.Run())
}

// TestWriteFileAtomicCrashConsistency is the crash-consistency property
// behind the durable write path: a process SIGKILLed at an arbitrary
// point inside WriteFileAtomic — including between the data write and
// the sync/rename commit — must never leave a committed path holding a
// half-written artifact. It re-execs the test binary as a victim that
// rewrites one path in a loop, kills it after a randomized delay, and
// asserts the surviving committed content is exactly one complete
// generation. Orphaned ".tmp-" files are legal debris of a hard kill
// (the job server's recovery scan removes them); a torn committed file
// is not.
func TestWriteFileAtomicCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs and kills subprocesses; skipped in -short")
	}
	rng := rand.New(rand.NewSource(20260809))
	for round := 0; round < 6; round++ {
		dir := t.TempDir()
		target := filepath.Join(dir, "artifact.json")
		cmd := exec.Command(os.Args[0], "-test.run=TestMain")
		cmd.Env = append(os.Environ(), "ATOMIC_CRASH_VICTIM="+target)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let some writes commit, then kill mid-flight: the victim loops
		// continuously, so a random delay lands the SIGKILL at an
		// arbitrary point of the write/sync/rename/dirsync sequence.
		time.Sleep(time.Duration(20+rng.Intn(80)) * time.Millisecond)
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()

		got, err := os.ReadFile(target)
		if err != nil {
			if os.IsNotExist(err) {
				continue // killed before the first commit: old state (nothing) survived
			}
			t.Fatal(err)
		}
		var gen int
		if n, serr := fmt.Sscanf(string(got), "gen %d\n", &gen); n != 1 || serr != nil {
			t.Fatalf("round %d: committed artifact does not start with a generation header: %.64q", round, got)
		}
		if want := atomicVictimBody(gen); string(got) != want {
			t.Fatalf("round %d: committed artifact for generation %d is torn: %d bytes, want %d",
				round, gen, len(got), len(want))
		}
	}
}
