// Package controller models the paper's PCI-based programmable protocol
// controller: an integer RISC core working through a prioritized command
// queue, 4 MB of local DRAM, bus-snoop logic that maintains per-page
// write bit vectors from the computation processor's write-through
// traffic, and a DMA engine that generates and applies diffs directed by
// those bit vectors (Section 3.1).
package controller

import (
	"dsm96/internal/faults"
	"dsm96/internal/lrc"
	"dsm96/internal/memsys"
	"dsm96/internal/network"
	"dsm96/internal/params"
	"dsm96/internal/sim"
)

// Command-issue (doorbell) and dispatch costs live in params.Config
// (CommandIssueCost, CtrlDispatchCost) so interconnect profiles can
// rescale them: Table 1's doorbell is a couple of uncached PCI writes
// (10 cycles), a 2026 PCIe doorbell is ~100 ns of a much faster core,
// and a coherent-interconnect mailbox store is nearly free.

// SubmitTimeout is the driver-level watchdog on a command submission:
// if the controller has not accepted a doorbell write after this many
// cycles (200 µs at the paper's 10 ns cycle), the node declares the
// controller dead and fails over to software protocol handling. A hang
// shorter than this only delays the submitted commands.
const SubmitTimeout = 20000

// Controller is one node's protocol controller.
type Controller struct {
	ID   int
	Cfg  *params.Config
	Node *memsys.Node
	// Core is the RISC core + command queue: jobs are protocol actions;
	// prefetches are submitted at low priority so that demand requests
	// overtake them (Section 3.1, footnote 2).
	Core sim.Server

	// Sched, when non-nil, is this controller's failure schedule. A nil
	// schedule leaves every Submit structurally identical to a build
	// without failure injection (the fingerprint gates rely on it).
	//
	// Failures manifest at the PCI doorbell: a crashed or hung
	// controller stops ACCEPTING commands, while commands already in its
	// queue or in service complete normally — the RISC core's wedge is
	// modelled at the submission boundary, not as a mid-DMA abort, so
	// no protocol action is ever half-done. The bus-snoop logic is
	// passive custom hardware on the memory bus and keeps maintaining
	// write vectors even after the core crashes.
	Sched *faults.CtrlFault
	// OnFailover, when non-nil, fires exactly once, at the moment the
	// first submit timeout expires — the node-level degradation hook.
	OnFailover func()

	failed  bool
	vectors map[int]*lrc.WriteVector
}

// New builds a controller attached to a node's memory system.
func New(id int, cfg *params.Config, node *memsys.Node) *Controller {
	return &Controller{
		ID:      id,
		Cfg:     cfg,
		Node:    node,
		Core:    sim.Server{Name: "ctrl"},
		vectors: make(map[int]*lrc.WriteVector),
	}
}

// Vector returns the write bit vector for page pg, creating it on demand.
func (c *Controller) Vector(pg int) *lrc.WriteVector {
	v, ok := c.vectors[pg]
	if !ok {
		v = lrc.NewWriteVector(c.Cfg.PageWords())
		c.vectors[pg] = v
	}
	return v
}

// SnoopWrite records a write-through of the word at addr, as the snoop
// logic does when it sees the computation processor's write on the
// memory bus. Zero time: the custom hardware keeps up with the bus.
func (c *Controller) SnoopWrite(addr int64) {
	pg := int(addr) / c.Cfg.PageSize
	word := (int(addr) % c.Cfg.PageSize) / params.WordBytes
	c.Vector(pg).Mark(word)
}

// Failed reports whether this controller has been declared dead (a
// submit timeout expired).
func (c *Controller) Failed() bool { return c.failed }

// fail marks the controller dead and fires the failover hook once.
func (c *Controller) fail() {
	if c.failed {
		return
	}
	c.failed = true
	if c.OnFailover != nil {
		c.OnFailover()
	}
}

// Submit places a job in the controller's command queue — unless its
// failure schedule says the doorbell is dead.
//
// fallback, when non-nil, is the software-path replacement for the
// job: it runs (in engine context) if the controller cannot take the
// command. For a crash, or a hang outlasting SubmitTimeout, the
// command is swallowed, the driver watchdog expires SubmitTimeout
// cycles later, the node fails over (OnFailover, once), and the
// fallback runs. Once failed, fallbacks run immediately. A hang that
// will clear within the timeout only delays the command: it enters the
// queue when the hang window ends.
func (c *Controller) Submit(e *sim.Engine, j *sim.Job, fallback func()) {
	if c.Sched == nil {
		c.Core.Submit(e, j)
		return
	}
	now := e.Now()
	switch {
	case c.failed:
		if fallback != nil {
			fallback()
		}
	case c.Sched.CrashedBy(now):
		e.After(SubmitTimeout, func() {
			c.fail()
			if fallback != nil {
				fallback()
			}
		})
	case c.Sched.HungAt(now):
		if resume := c.Sched.HangEnd(); resume-now <= SubmitTimeout && !c.Sched.CrashedBy(resume) {
			e.At(resume, func() { c.Core.Submit(e, j) })
			return
		}
		e.After(SubmitTimeout, func() {
			c.fail()
			if fallback != nil {
				fallback()
			}
		})
	default:
		c.Core.Submit(e, j)
	}
}

// SubmitSend queues the common "send a message" command: the controller
// core pays its dispatch cost plus the per-message overhead (the
// computation processor pays nothing — that is the point of the I
// variants), then hands the message to the reliable transport, which
// retries and deduplicates it if a fault model is installed on the
// network. fallback is the software send path used when the controller
// is dead (see Submit); the message itself must still go out — only
// who pays for it changes.
func (c *Controller) SubmitSend(e *sim.Engine, nw *network.Network, dst, bytes int, deliver func(), fallback func()) {
	c.Submit(e, &sim.Job{
		Name:    "send",
		Service: c.Cfg.CtrlDispatchCost + c.Cfg.MessagingOverhead,
		Done: func() {
			nw.SendReliable(c.ID, dst, bytes, 0, deliver)
		},
	}, fallback)
}

// HWDiffCreateCost is the DMA engine's time to scan page pg's bit vector
// and gather the written words (200 cycles for a clean 4 KB page, ~2100
// when every word is set, interpolated in between).
func (c *Controller) HWDiffCreateCost(pg int) sim.Time {
	return c.Cfg.DMADiffTime(c.Vector(pg).Count(), c.Cfg.PageWords())
}

// HWDiffApplyCost is the DMA engine's time to scatter a diff of n words
// into a destination page, directed by the diff's bit vector.
func (c *Controller) HWDiffApplyCost(words int) sim.Time {
	return c.Cfg.DMADiffTime(words, c.Cfg.PageWords())
}

// Cost helpers shared with the software (processor-executed) paths.

// TwinCost is the instruction cost of twinning a page in software
// (5 cycles/word; memory-bus occupancy is charged separately).
func TwinCost(cfg *params.Config) sim.Time {
	return cfg.TwinCyclesPerWord * sim.Time(cfg.PageWords())
}

// SoftDiffCreateCost is the instruction cost of creating a diff in
// software: the whole page is compared against its twin (7 cycles/word).
func SoftDiffCreateCost(cfg *params.Config) sim.Time {
	return cfg.DiffCyclesPerWord * sim.Time(cfg.PageWords())
}

// SoftDiffApplyCost is the instruction cost of applying an n-word diff in
// software (7 cycles/word touched).
func SoftDiffApplyCost(cfg *params.Config, words int) sim.Time {
	return cfg.DiffCyclesPerWord * sim.Time(words)
}
