package core_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dsm96/internal/apps"
	"dsm96/internal/core"
	"dsm96/internal/params"
	"dsm96/internal/sim"
	"dsm96/internal/spans"
	"dsm96/internal/timeline"
	"dsm96/internal/tmk"
	"dsm96/internal/trace"
)

// obsArtifacts is one fully-instrumented run's observable output: every
// byte stream a user can ask dsmsim for, plus the schedule fingerprint.
type obsArtifacts struct {
	fingerprint uint64
	perfetto    []byte
	metrics     []byte
	spansJSONL  []byte
	traceText   string
	profile     *sim.EngineProfile
}

// runInstrumented executes one run with tracer+timeline+spans attached
// and collects every artifact.
func runInstrumented(t *testing.T, appName string, spec core.Spec, procs, workers int) obsArtifacts {
	t.Helper()
	app, err := apps.Tiny(appName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Default()
	cfg.Processors = procs
	tracer := trace.New(1 << 14)
	rec := timeline.NewRecorder(procs)
	tracker := spans.NewTracker(procs)
	spec.Tracer = tracer
	spec.Timeline = rec
	spec.Spans = tracker
	spec.Workers = workers
	res, err := core.Run(cfg, spec, app)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", appName, workers, err)
	}
	out := obsArtifacts{fingerprint: res.EventFingerprint, profile: res.EngineProfile}
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf, tracer.Events()); err != nil {
		t.Fatalf("perfetto: %v", err)
	}
	out.perfetto = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := res.Metrics().WriteJSON(&buf); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	out.metrics = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := tracker.WriteJSONL(&buf); err != nil {
		t.Fatalf("spans: %v", err)
	}
	out.spansJSONL = append([]byte(nil), buf.Bytes()...)
	out.traceText = tracer.String()
	return out
}

// TestObservabilityWorkerParity is the parallel-observability wall: with
// the full instrumentation stack attached (trace buffer, timeline
// recorder, span tracker), the Perfetto timeline, run-metrics JSON,
// spans JSONL, and rendered trace must be byte-identical at every
// worker count — and the schedule fingerprint must equal the
// uninstrumented run's, proving the deferred-merge transport neither
// reorders instrumentation nor perturbs the simulation.
func TestObservabilityWorkerParity(t *testing.T) {
	type pt struct {
		app  string
		spec core.Spec
		name string
	}
	points := []pt{
		{"water", core.TM(tmk.Base), "water/Base"},
		{"water", core.TM(tmk.IPD), "water/I+P+D"},
		{"radix", core.TM(tmk.Base), "radix/Base"},
		{"radix", core.TM(tmk.IPD), "radix/I+P+D"},
	}
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		points = points[:2]
		workerCounts = []int{1, 4}
	}
	for _, p := range points {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			// The uninstrumented schedule is the reference: attaching
			// observers must not move a single event.
			app, err := apps.Tiny(p.app)
			if err != nil {
				t.Fatal(err)
			}
			bare := p.spec
			bare.Workers = 1
			bareRes, err := core.Run(params.Default(), bare, app)
			if err != nil {
				t.Fatal(err)
			}
			var ref obsArtifacts
			for _, w := range workerCounts {
				got := runInstrumented(t, p.app, p.spec, 16, w)
				if got.fingerprint != bareRes.EventFingerprint {
					t.Errorf("workers=%d: instrumented fingerprint %016x, uninstrumented %016x",
						w, got.fingerprint, bareRes.EventFingerprint)
				}
				if w == workerCounts[0] {
					ref = got
					continue
				}
				if !bytes.Equal(got.perfetto, ref.perfetto) {
					t.Errorf("workers=%d: Perfetto timeline differs from workers=%d (%d vs %d bytes)",
						w, workerCounts[0], len(got.perfetto), len(ref.perfetto))
				}
				if !bytes.Equal(got.metrics, ref.metrics) {
					t.Errorf("workers=%d: run-metrics JSON differs from workers=%d",
						w, workerCounts[0])
				}
				if !bytes.Equal(got.spansJSONL, ref.spansJSONL) {
					t.Errorf("workers=%d: spans JSONL differs from workers=%d (%d vs %d bytes)",
						w, workerCounts[0], len(got.spansJSONL), len(ref.spansJSONL))
				}
				if got.traceText != ref.traceText {
					t.Errorf("workers=%d: rendered trace differs from workers=%d",
						w, workerCounts[0])
				}
			}
		})
	}
}

// TestObservabilityParityLargeMesh is the ISSUE's acceptance cell:
// water under I+P+D on a 128-processor mesh with spans, timeline, and
// trace enabled must produce byte-identical artifacts at workers=4 and
// workers=1.
func TestObservabilityParityLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("128-processor mesh in short mode")
	}
	spec := core.TM(tmk.IPD)
	a := runInstrumented(t, "water", spec, 128, 1)
	b := runInstrumented(t, "water", spec, 128, 4)
	if a.fingerprint != b.fingerprint {
		t.Errorf("fingerprint %016x (w=1) vs %016x (w=4)", a.fingerprint, b.fingerprint)
	}
	if !bytes.Equal(a.perfetto, b.perfetto) {
		t.Errorf("Perfetto timeline differs (%d vs %d bytes)", len(a.perfetto), len(b.perfetto))
	}
	if !bytes.Equal(a.metrics, b.metrics) {
		t.Error("run-metrics JSON differs")
	}
	if !bytes.Equal(a.spansJSONL, b.spansJSONL) {
		t.Errorf("spans JSONL differs (%d vs %d bytes)", len(a.spansJSONL), len(b.spansJSONL))
	}
	if a.traceText != b.traceText {
		t.Error("rendered trace differs")
	}
}

// TestEngineProfileDeterministic pins the self-profiler's contract: the
// profile always carries the dsm96/engine-profile/v1 schema tag, and
// its deterministic block is byte-identical across repeat runs of the
// same configuration — the property metricsdiff -engine-profile gates.
// The host block (wall-clock timings) is intentionally unchecked.
func TestEngineProfileDeterministic(t *testing.T) {
	for _, w := range []int{1, 4} {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			t.Parallel()
			run := func() *sim.EngineProfile {
				app, err := apps.Tiny("water")
				if err != nil {
					t.Fatal(err)
				}
				spec := core.TM(tmk.IPD)
				spec.Workers = w
				res, err := core.Run(params.Default(), spec, app)
				if err != nil {
					t.Fatal(err)
				}
				if res.EngineProfile == nil {
					t.Fatal("Result.EngineProfile is nil")
				}
				return res.EngineProfile
			}
			a, b := run(), run()
			if a.Schema != sim.EngineProfileSchema {
				t.Errorf("schema %q, want %q", a.Schema, sim.EngineProfileSchema)
			}
			if a.Workers != w {
				t.Errorf("profile workers %d, want %d", a.Workers, w)
			}
			da, err := json.Marshal(a.Deterministic)
			if err != nil {
				t.Fatal(err)
			}
			db, err := json.Marshal(b.Deterministic)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(da, db) {
				t.Errorf("deterministic block differs across repeats:\n a: %s\n b: %s", da, db)
			}
			if w > 1 {
				d := &a.Deterministic
				if d.Windows == 0 {
					t.Error("parallel run reports zero merge windows")
				}
				if len(d.Shards) != w {
					t.Errorf("profile has %d shard entries, want %d", len(d.Shards), w)
				}
				var shardEvents uint64
				for _, s := range d.Shards {
					shardEvents += s.Events
				}
				if shardEvents != d.EventsRun {
					t.Errorf("shard events sum %d != events_run %d", shardEvents, d.EventsRun)
				}
				if d.WindowEvents.Count != d.Windows {
					t.Errorf("window_events histogram count %d != windows %d",
						d.WindowEvents.Count, d.Windows)
				}
			}
		})
	}
}
