package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceFCFS(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "bus"}
	var ends []Time
	for i := 0; i < 3; i++ {
		e.NewProc(i, "p", 0, func(p *Proc) {
			r.Use(p, 10, "bus")
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyCycles() != 30 {
		t.Fatalf("busy = %d, want 30", r.BusyCycles())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := &Resource{}
	e.NewProc(0, "p", 0, func(p *Proc) {
		q := r.Use(p, 5, "bus") // 0..5
		if q != 0 {
			t.Errorf("queued = %d, want 0", q)
		}
		p.Sleep(100) // resource idle 5..105
		r.Use(p, 5, "bus")
		if p.Now() != 110 {
			t.Errorf("end = %d, want 110", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Utilization(e.Now()); got <= 0 || got > 1 {
		t.Fatalf("utilization = %v out of range", got)
	}
}

func TestReserveFromEngineContext(t *testing.T) {
	e := NewEngine()
	r := &Resource{}
	e.At(0, func() {
		s1, e1 := r.Reserve(e, 7)
		if s1 != 0 || e1 != 7 {
			t.Errorf("first reserve = (%d,%d), want (0,7)", s1, e1)
		}
		s2, e2 := r.Reserve(e, 3)
		if s2 != 7 || e2 != 10 {
			t.Errorf("second reserve = (%d,%d), want (7,10)", s2, e2)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for arbitrary service demands submitted at time zero, total
// completion equals the sum of services (work conservation) and each
// completion time is a prefix sum (FCFS).
func TestResourceWorkConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		e := NewEngine()
		r := &Resource{}
		ends := make([]Time, len(raw))
		e.At(0, func() {
			for i, d := range raw {
				_, end := r.Reserve(e, Time(d))
				ends[i] = end
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		var sum Time
		for i, d := range raw {
			sum += Time(d)
			if ends[i] != sum {
				return false
			}
		}
		return r.BusyCycles() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
