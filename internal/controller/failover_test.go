package controller

import (
	"testing"

	"dsm96/internal/faults"
	"dsm96/internal/sim"
)

// job builds a Submit-able job that appends name to log on completion.
func job(name string, log *[]string) *sim.Job {
	return &sim.Job{Name: name, Service: 100,
		Done: func() { *log = append(*log, name) }}
}

// TestNilSchedulePassThrough: without a schedule, Submit is exactly the
// plain server submit — the structural-absence guarantee.
func TestNilSchedulePassThrough(t *testing.T) {
	c, eng, _ := newCtrl()
	var log []string
	eng.At(0, func() { c.Submit(eng, job("a", &log), func() { t.Error("fallback ran") }) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0] != "a" || c.Failed() {
		t.Fatalf("pass-through broken: log=%v failed=%v", log, c.Failed())
	}
}

// TestCrashSwallowsAndFailsOver: a submit to a crashed controller is
// swallowed, the driver watchdog expires SubmitTimeout later, the
// failover hook fires exactly once, and each swallowed job's fallback
// runs. Jobs already queued before the crash complete normally (the
// wedge is at the doorbell, not mid-service).
func TestCrashSwallowsAndFailsOver(t *testing.T) {
	c, eng, _ := newCtrl()
	c.Sched = &faults.CtrlFault{Crash: true, CrashAt: 500}
	failovers := 0
	var failAt sim.Time
	c.OnFailover = func() { failovers++; failAt = eng.Now() }
	var log []string
	eng.At(0, func() { c.Submit(eng, job("before", &log), nil) })
	eng.At(600, func() {
		c.Submit(eng, job("after1", &log), func() { log = append(log, "fb1@"+tstr(eng.Now())) })
	})
	eng.At(700, func() {
		c.Submit(eng, job("after2", &log), func() { log = append(log, "fb2@"+tstr(eng.Now())) })
	})
	// Long after failover: fallback runs immediately, no extra timeout.
	eng.At(50000, func() {
		c.Submit(eng, job("late", &log), func() { log = append(log, "late-fb@"+tstr(eng.Now())) })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"before", "fb1@" + tstr(600+SubmitTimeout), "fb2@" + tstr(700+SubmitTimeout), "late-fb@" + tstr(50000)}
	if !eq(log, want) {
		t.Errorf("log %v, want %v", log, want)
	}
	if failovers != 1 {
		t.Errorf("OnFailover fired %d times, want 1", failovers)
	}
	if failAt != 600+SubmitTimeout {
		t.Errorf("failover at %d, want %d", failAt, 600+SubmitTimeout)
	}
}

// TestShortHangDelays: a hang window shorter than the submit timeout
// only delays the command — no failover, job enters the queue at the
// window's end.
func TestShortHangDelays(t *testing.T) {
	c, eng, _ := newCtrl()
	c.Sched = &faults.CtrlFault{Hang: true, HangAt: 100, HangFor: 5000}
	c.OnFailover = func() { t.Error("short hang triggered failover") }
	var doneAt sim.Time
	eng.At(200, func() {
		c.Submit(eng, &sim.Job{Name: "delayed", Service: 100,
			Done: func() { doneAt = eng.Now() }}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Accepted when the hang clears at 5100, then 100 cycles of service.
	if doneAt != 5200 {
		t.Errorf("job completed at %d, want 5200", doneAt)
	}
	if c.Failed() {
		t.Error("controller marked failed after a short hang")
	}
	// Outside the window the controller behaves normally.
	var after sim.Time
	eng.At(6000, func() {
		c.Submit(eng, &sim.Job{Name: "healthy", Service: 50,
			Done: func() { after = eng.Now() }}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 6050 {
		t.Errorf("post-hang job completed at %d, want 6050", after)
	}
}

// TestLongHangFailsOver: a hang outlasting the submit timeout is
// indistinguishable from a crash to the waiting processor.
func TestLongHangFailsOver(t *testing.T) {
	c, eng, _ := newCtrl()
	c.Sched = &faults.CtrlFault{Hang: true, HangAt: 0, HangFor: SubmitTimeout * 10}
	failovers := 0
	c.OnFailover = func() { failovers++ }
	ran := false
	eng.At(10, func() {
		c.Submit(eng, job("never", new([]string)), func() { ran = true })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || failovers != 1 || !c.Failed() {
		t.Errorf("long hang: fallback=%v failovers=%d failed=%v", ran, failovers, c.Failed())
	}
}

// TestHangThenCrashInsideWindow: a hang that would clear, except the
// controller crashes before the window ends — must fail over, not
// resubmit to a dead controller.
func TestHangThenCrashInsideWindow(t *testing.T) {
	c, eng, _ := newCtrl()
	c.Sched = &faults.CtrlFault{
		Hang: true, HangAt: 0, HangFor: 1000,
		Crash: true, CrashAt: 500,
	}
	ran := false
	eng.At(10, func() { c.Submit(eng, job("x", new([]string)), func() { ran = true }) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || !c.Failed() {
		t.Errorf("hang-then-crash: fallback=%v failed=%v", ran, c.Failed())
	}
}

func tstr(t sim.Time) string {
	const digits = "0123456789"
	if t == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for t > 0 {
		i--
		b[i] = digits[t%10]
		t /= 10
	}
	return string(b[i:])
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
