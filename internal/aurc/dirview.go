package aurc

// DirView is a read-only view of a page's sharing-directory entry,
// exposed for tests and inspection tools.
type DirView struct{ d *pageDir }

// TouchDirectoryForTest runs the sharing state machine for (page, node)
// exactly as an access would, and returns a view of the entry.
func (pr *Protocol) TouchDirectoryForTest(pg, id int) DirView {
	return DirView{pr.touchDirectory(pg, id)}
}

// Phase returns 0 (private), 1 (pairwise) or 2 (home-based).
func (v DirView) Phase() int { return v.d.phase }

// IsPairwise reports a two-sharer bi-directional mapping.
func (v DirView) IsPairwise() bool { return v.d.phase == phPairwise }

// IsHomed reports home-based write-through.
func (v DirView) IsHomed() bool { return v.d.phase == phHomed }

// Home returns the home node (meaningful when IsHomed).
func (v DirView) Home() int { return v.d.home }

// RouteTo returns where node id's writes propagate (-1 for nowhere).
func (v DirView) RouteTo(id int) int { return v.d.routeTo(id) }
