package aurc

import (
	"math/bits"

	"dsm96/internal/sim"
	"dsm96/internal/trace"
)

// updateHeaderBytes is the wire header of one automatic-update message.
const updateHeaderBytes = 8

// wcEntry is one write-cache entry: pending updates for one 32-byte block
// destined to one node, with a bit per word.
type wcEntry struct {
	dst   int
	block int64 // block-aligned address
	mask  uint8 // words 0..7 of the block
}

// writeCache models the Shrimp network interface's combining write cache:
// consecutive updates to the same block merge into one entry; when the
// cache overflows, the oldest entry is flushed onto the network as an
// automatic-update message. The sender's processor does not participate —
// that is the whole point of automatic updates — but the messages compete
// for link bandwidth with everything else.
type writeCache struct {
	n       *anode
	cap     int
	entries []wcEntry // FIFO order
}

func newWriteCache(n *anode, capacity int) *writeCache {
	return &writeCache{n: n, cap: capacity}
}

// add records a write of `size` bytes at addr destined to dst.
func (w *writeCache) add(p *sim.Proc, dst int, addr int64, size int) {
	w.addWord(p, dst, addr)
	if size == 8 {
		w.addWord(p, dst, addr+4)
	}
}

func (w *writeCache) addWord(p *sim.Proc, dst int, addr int64) {
	block := addr &^ 31
	bit := uint8(1) << uint((addr%32)/4)
	for i := range w.entries {
		e := &w.entries[i]
		if e.dst == dst && e.block == block {
			e.mask |= bit
			return
		}
	}
	if len(w.entries) >= w.cap {
		oldest := w.entries[0]
		copy(w.entries, w.entries[1:])
		w.entries = w.entries[:len(w.entries)-1]
		w.flushEntry(oldest)
	}
	w.entries = append(w.entries, wcEntry{dst: dst, block: block, mask: bit})
}

// flushAll drains the cache (done at releases and barriers so that the
// flush timestamps cover every update of the closing interval).
func (w *writeCache) flushAll() {
	entries := w.entries
	w.entries = w.entries[:0]
	for _, e := range entries {
		w.flushEntry(e)
	}
}

// flushEntry injects one automatic-update message. Values are captured
// from the sender's memory at flush time (combining semantics); the
// destination applies them on arrival and advances its arrival counter,
// which drain waiters (flush/lock timestamp checks) observe.
func (w *writeCache) flushEntry(e wcEntry) {
	n := w.n
	cfg := n.pr.cfg
	words := bits.OnesCount8(e.mask)
	bytes := updateHeaderBytes + 4*words
	// Capture the current values.
	type upd struct {
		addr int64
		val  uint32
	}
	var ups []upd
	for i := 0; i < 8; i++ {
		if e.mask&(1<<uint(i)) != 0 {
			a := e.block + int64(4*i)
			ups = append(ups, upd{a, n.frames.ReadU32(a)})
		}
	}
	dst := n.pr.nodes[e.dst]
	n.updatesSent[e.dst]++
	n.st.MsgsSent++
	n.st.BytesSent += uint64(bytes)
	pg := int(e.block) / cfg.PageSize
	n.emit(pg, trace.KindUpdate, "flush dst=%d words=%d", e.dst, words)
	n.pr.net.SendReliable(n.id, e.dst, bytes, cfg.AURCUpdateOverhead, func() {
		for _, u := range ups {
			dst.frames.WriteU32(u.addr, u.val)
		}
		// The receiving node's memory system absorbs the update and its
		// processor snoop invalidates stale cached lines.
		dst.mem.DMA(bytes)
		dst.mem.Cache.InvalidateRange(e.block, 32)
		dst.updatesArrived++
		dst.emit(pg, trace.KindUpdate, "apply from=%d words=%d", n.id, words)
		dst.checkDrainWaiters()
	})
}

// inflightTo returns how many update messages are bound for node d right
// now (sent minus arrived).
func (pr *Protocol) inflightTo(d int) uint64 {
	var sent uint64
	for _, n := range pr.nodes {
		sent += n.updatesSent[d]
	}
	return sent - pr.nodes[d].updatesArrived
}

// waitUpdatesDrained invokes fn once every update currently in flight
// toward this node has arrived (the flush-timestamp check a page fault
// performs before using home/partner data). Engine context.
func (n *anode) waitUpdatesDrained(fn func()) {
	var sent uint64
	for _, o := range n.pr.nodes {
		sent += o.updatesSent[n.id]
	}
	if n.updatesArrived >= sent {
		fn()
		return
	}
	n.drainWaiters = append(n.drainWaiters, &drainWaiter{need: sent, fn: fn})
}

func (n *anode) checkDrainWaiters() {
	kept := n.drainWaiters[:0]
	for _, w := range n.drainWaiters {
		if n.updatesArrived >= w.need {
			n.pr.eng.After(0, w.fn)
		} else {
			kept = append(kept, w)
		}
	}
	n.drainWaiters = kept
}
