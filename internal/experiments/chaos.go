package experiments

import (
	"fmt"
	"strings"

	"dsm96/internal/core"
	"dsm96/internal/faults"
	"dsm96/internal/stats"
	"dsm96/internal/tmk"
)

// The chaos sweep: link faults and controller failures together, over a
// matrix of applications and protocols, with every cell oracle-validated
// and run twice to prove the failure schedule is exactly reproducible.
// This is the robustness gate `make chaos` runs — the claim it enforces
// is that no combination of message loss, duplication, reordering, and
// per-node controller crash/hang can produce a wrong answer or a
// nondeterministic schedule; faults only cost cycles.

// chaosHorizon bounds randomized controller failure times: tiny-scale
// runs last one to a few million cycles, so failures drawn from
// [0, 500k] land in the first half of the run, leaving the degraded
// node plenty of post-failover work to get wrong.
const chaosHorizon = 500_000

// ChaosPlan builds the combined fault plan for one seed: moderate link
// chaos on every pair (rates well inside the reliable transport's
// retry budget) plus a randomized controller failure schedule — each
// node independently crashes and/or hangs with probability 1/2.
func ChaosPlan(seed uint64, nodes int) *faults.Plan {
	return &faults.Plan{
		Seed: seed,
		Default: faults.Link{
			Drop: 0.02, Dup: 0.03,
			Delay: 0.05, DelayMin: 200, DelayMax: 2000,
		},
		Ctrl: faults.RandomCtrl(seed, nodes, 0.5, 0.5, chaosHorizon),
	}
}

// ChaosPoint is one (application × protocol × seed) chaos cell.
type ChaosPoint struct {
	App      string
	Protocol string
	Seed     uint64
	Cycles   int64
	// Norm is running time normalized to the same app × protocol with
	// no faults (1.00 = chaos cost nothing).
	Norm float64
	// Fingerprint is the engine's event-schedule hash; ChaosSweep has
	// already proven it identical across a repeat run.
	Fingerprint uint64
	// Failovers / DegradedCycles / FallbackDiffs summarize graceful
	// degradation: how many nodes lost their controller, how long they
	// ran in software, and how many diffs the software path built.
	// Structurally zero for protocols without a controller (Base, AURC).
	Failovers      uint64
	DegradedCycles uint64
	FallbackDiffs  uint64
	Rel            stats.Reliability
}

// chaosApps × chaosProtos is the sweep matrix: a lock-heavy app, a
// molecule sweep, and a barrier-heavy sort, against no-controller Base,
// controller-only I, the full overlap stack I+P+D, and AURC (whose
// update path has no controller to lose — controller schedules must be
// vacuous there).
var (
	chaosApps   = []string{"tsp", "water", "radix"}
	chaosProtos = []core.Spec{core.TM(tmk.Base), core.TM(tmk.I), core.TM(tmk.IPD), core.AURC(false)}
)

// ChaosSweep runs the chaos matrix over the given seeds at the given
// scale on the default machine. Every cell is run twice under the same
// plan; a fingerprint mismatch — or any validation failure — is an
// error. The returned points carry the degradation accounting for
// FormatChaos's table.
func ChaosSweep(sc Scale, seeds []uint64) ([]ChaosPoint, error) {
	cfg := baseConfig()
	nCells := len(chaosApps) * len(chaosProtos)
	// Per app×proto: one fault-free baseline, then per seed a chaos run
	// and its repeat.
	base := make([]Run, nCells)
	chaos := make([]Run, nCells*len(seeds))
	again := make([]Run, nCells*len(seeds))
	var specs []runSpec
	for ai, name := range chaosApps {
		for pi, proto := range chaosProtos {
			ci := ai*len(chaosProtos) + pi
			specs = append(specs, runSpec{
				app: name, spec: proto, cfg: cfg, scale: sc, out: &base[ci],
			})
			for si, seed := range seeds {
				sp := proto
				sp.Faults = ChaosPlan(seed, cfg.Processors)
				specs = append(specs,
					runSpec{app: name, spec: sp, cfg: cfg, scale: sc, out: &chaos[ci*len(seeds)+si]},
					runSpec{app: name, spec: sp, cfg: cfg, scale: sc, out: &again[ci*len(seeds)+si]},
				)
			}
		}
	}
	execute(specs)
	var out []ChaosPoint
	for ai, name := range chaosApps {
		for pi := range chaosProtos {
			ci := ai*len(chaosProtos) + pi
			if base[ci].Err != nil {
				return nil, fmt.Errorf("chaos %s/%s baseline: %w", name, base[ci].Protocol, base[ci].Err)
			}
			denom := float64(base[ci].Result.RunningTime)
			for si, seed := range seeds {
				r := chaos[ci*len(seeds)+si]
				rr := again[ci*len(seeds)+si]
				if r.Err != nil {
					return nil, fmt.Errorf("chaos %s/%s seed=%d: %w", name, r.Protocol, seed, r.Err)
				}
				if rr.Err != nil {
					return nil, fmt.Errorf("chaos %s/%s seed=%d repeat: %w", name, rr.Protocol, seed, rr.Err)
				}
				if r.Result.EventFingerprint != rr.Result.EventFingerprint {
					return nil, fmt.Errorf("chaos %s/%s seed=%d: schedule not reproducible: %016x vs %016x",
						name, r.Protocol, seed, r.Result.EventFingerprint, rr.Result.EventFingerprint)
				}
				sum := r.Result.Breakdown.Sum()
				out = append(out, ChaosPoint{
					App:            name,
					Protocol:       r.Protocol,
					Seed:           seed,
					Cycles:         int64(r.Result.RunningTime),
					Norm:           float64(r.Result.RunningTime) / denom,
					Fingerprint:    r.Result.EventFingerprint,
					Failovers:      sum.ControllerFailovers,
					DegradedCycles: sum.DegradedNodeCycles,
					FallbackDiffs:  sum.SoftwareFallbackDiffs,
					Rel:            r.Result.Reliability,
				})
			}
		}
	}
	return out, nil
}

// FormatChaos renders the sweep as a table: one row per cell with the
// chaos cost and the degradation accounting.
func FormatChaos(seeds []uint64, pts []ChaosPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos sweep (seeds %v): link faults + controller crash/hang, every cell validated and repeat-run\n", seeds)
	fmt.Fprintf(&sb, "  %-6s %-7s %5s %7s %12s %9s %10s %9s %8s\n",
		"app", "proto", "seed", "norm", "cycles", "failovers", "degcycles", "fbdiffs", "retries")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %-6s %-7s %5d %7.3f %12d %9d %10d %9d %8d\n",
			p.App, p.Protocol, p.Seed, p.Norm, p.Cycles,
			p.Failovers, p.DegradedCycles, p.FallbackDiffs, p.Rel.Retries)
	}
	return sb.String()
}

// DefaultChaosSeeds is the bounded seed set `make chaos` runs.
func DefaultChaosSeeds() []uint64 { return []uint64{1, 2, 3} }
