package apps

import (
	"testing"
	"testing/quick"
)

// Property: blockRange partitions [0,n) exactly — contiguous, disjoint,
// covering, and balanced within one element.
func TestBlockRangeProperty(t *testing.T) {
	f := func(rawN, rawP uint8) bool {
		n := int(rawN)
		procs := int(rawP)%16 + 1
		prevHi := 0
		minSz, maxSz := 1<<30, -1
		for id := 0; id < procs; id++ {
			lo, hi := blockRange(n, procs, id)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
			if sz := hi - lo; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
			_ = maxSz
		}
		if prevHi != n {
			return false
		}
		// Balance: sizes differ by at most 1.
		sizes := map[int]bool{}
		for id := 0; id < procs; id++ {
			lo, hi := blockRange(n, procs, id)
			sizes[hi-lo] = true
		}
		if len(sizes) > 2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	// Crude spread check: values in [0,16) hit many buckets.
	r := newRNG(6)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.intn(16)] = true
	}
	if len(seen) < 12 {
		t.Fatalf("poor spread: %d/16 buckets", len(seen))
	}
	// f64 in [0,1).
	for i := 0; i < 100; i++ {
		if v := r.f64(); v < 0 || v >= 1 {
			t.Fatalf("f64 out of range: %v", v)
		}
	}
}

func TestRadixDigits(t *testing.T) {
	cases := []struct {
		radix, want int
	}{
		{256, 3},  // 8 bits -> ceil(20/8)
		{1024, 2}, // 10 bits
		{16, 5},   // 4 bits
		{2, 20},
	}
	for _, c := range cases {
		r := NewRadix(1024, c.radix)
		if got := r.digits(); got != c.want {
			t.Errorf("digits(radix=%d) = %d, want %d", c.radix, got, c.want)
		}
	}
}

func TestEm3dWireVirtualPartitioning(t *testing.T) {
	e := NewEm3d(1600, 1, 4, 0.25)
	r := newRNG(1)
	per := (e.NodesPerKind + em3dVirtualParts - 1) / em3dVirtualParts
	remote := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		src := r.intn(e.NodesPerKind)
		dep := e.wire(r, src)
		if dep < 0 || dep >= e.NodesPerKind {
			t.Fatalf("dep %d out of range", dep)
		}
		if dep/per != src/per {
			remote++
		}
	}
	frac := float64(remote) / trials
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("remote fraction %.3f, want ~0.25", frac)
	}
}

func TestTSPDistanceMatrixSymmetric(t *testing.T) {
	app := NewTSP(9)
	d := app.DistancesForTest()
	for i := 0; i < 9; i++ {
		if d[i][i] != 0 {
			t.Errorf("d[%d][%d] = %d, want 0", i, i, d[i][i])
		}
		for j := 0; j < 9; j++ {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric: d[%d][%d]=%d d[%d][%d]=%d", i, j, d[i][j], j, i, d[j][i])
			}
			if i != j && (d[i][j] < 10 || d[i][j] > 99) {
				t.Errorf("distance %d out of the generator's range", d[i][j])
			}
		}
	}
}

func TestVecAddressing(t *testing.T) {
	// vec lays out 3 contiguous f64 per element.
	if vec(1000, 0, 0) != 1000 || vec(1000, 0, 2) != 1016 || vec(1000, 1, 0) != 1024 {
		t.Fatal("vec layout wrong")
	}
}

func TestOceanGridAddressing(t *testing.T) {
	o := NewOcean(10, 1)
	o.grid = 0
	if o.at(0, 0) != 0 || o.at(0, 1) != 8 || o.at(1, 0) != 80 {
		t.Fatal("ocean addressing wrong")
	}
}

func TestBarnesNodeLayout(t *testing.T) {
	b := NewBarnes(8, 1)
	b.nodeBase = 0
	if b.node(0) != 0 || b.node(1) != bnBytes {
		t.Fatal("node stride wrong")
	}
	// The record ends with 4 bytes of padding so consecutive records keep
	// their f64 fields 8-byte aligned.
	if bnKids+4*8 > bnBytes || bnBytes%8 != 0 {
		t.Fatalf("record layout inconsistent: kids end at %d, record is %d bytes", bnKids+32, bnBytes)
	}
}
