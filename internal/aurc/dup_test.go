package aurc

import (
	"testing"

	"dsm96/internal/lrc"
	"dsm96/internal/sim"
)

// These tests deliver the same protocol message twice, straight into the
// receive paths — bypassing the reliable transport's own deduplication —
// and check that the protocol-level guards apply it exactly once.

// TestDuplicatePageReplyAppliedOnce: a second copy of a whole-page reply
// lands after the fetch completed; re-copying the stale snapshot would
// clobber automatic updates applied since, so it must be dropped.
func TestDuplicatePageReplyAppliedOnce(t *testing.T) {
	pr, eng := newTestAURC(2)
	n := pr.nodes[0]
	pe := n.page(2)
	pe.state = stInvalid
	f := &fetchOp{snap: n.vts.Clone()}
	pe.fetch = f
	data := make([]byte, pr.cfg.PageSize)
	data[0] = 11
	eng.At(0, func() {
		n.receivePage(2, data, f)
		// An automatic update lands after the fetch completes...
		n.frames.Page(2)[0] = 99
		// ...then the duplicated reply arrives.
		n.receivePage(2, data, f)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pe.state != stValid {
		t.Fatal("fetch did not complete")
	}
	if got := n.frames.Page(2)[0]; got != 99 {
		t.Fatalf("duplicate reply clobbered newer data: frame[0] = %d, want 99", got)
	}
	if n.st.DupMsgsSuppressed != 1 {
		t.Fatalf("DupMsgsSuppressed = %d, want 1", n.st.DupMsgsSuppressed)
	}
}

// TestDuplicateGrantAppliedOnce mirrors the TreadMarks test: the token
// is taken once, the duplicate is suppressed, intervals integrate once.
func TestDuplicateGrantAppliedOnce(t *testing.T) {
	pr, eng := newTestAURC(2)
	n := pr.nodes[0]
	lk := n.lock(5)
	lk.gate = &sim.Gate{}
	grantVTS := lrc.VTS{0, 1}
	ivs := []*lrc.Interval{{Owner: 1, Seq: 1, VTS: lrc.VTS{0, 1}, Pages: []int{6}}}
	eng.At(0, func() {
		n.receiveGrant(5, ivs, grantVTS, nil)
		n.receiveGrant(5, ivs, grantVTS, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !lk.hasToken || !lk.inCS || lk.gate != nil {
		t.Fatal("grant not applied exactly once")
	}
	if n.st.DupMsgsSuppressed != 1 {
		t.Fatalf("DupMsgsSuppressed = %d, want 1", n.st.DupMsgsSuppressed)
	}
	eng.At(eng.Now(), func() { n.receiveGrant(5, ivs, grantVTS, nil) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.st.DupMsgsSuppressed != 2 {
		t.Fatalf("late duplicate not suppressed: %d", n.st.DupMsgsSuppressed)
	}
	if got := len(n.page(6).pending); got != 1 {
		t.Fatalf("pending notices = %d, want 1", got)
	}
}
