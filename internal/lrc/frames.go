package lrc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frames is one node's physical copy of the shared address space, held at
// page granularity and allocated lazily (all pages start zeroed, which is
// the DSM's well-defined initial state on every node).
//
// The heap is a bump allocator from page 0, so page numbers are small and
// dense: frames are kept in a slice indexed by page number rather than a
// map, because Page sits on the path of every simulated memory access.
type Frames struct {
	pageSize int
	frames   [][]byte // frames[pg] is nil until materialized
}

// NewFrames builds an empty frame store.
func NewFrames(pageSize int) *Frames {
	return &Frames{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (f *Frames) PageSize() int { return f.pageSize }

// Page returns the frame for page pg, allocating a zeroed one on demand.
func (f *Frames) Page(pg int) []byte {
	if pg < len(f.frames) {
		if fr := f.frames[pg]; fr != nil {
			return fr
		}
	} else {
		f.frames = append(f.frames, make([][]byte, pg+1-len(f.frames))...)
	}
	fr := make([]byte, f.pageSize)
	f.frames[pg] = fr
	return fr
}

// Resident reports whether a frame has been materialized.
func (f *Frames) Resident(pg int) bool {
	return pg < len(f.frames) && f.frames[pg] != nil
}

// CopyPage overwrites page pg with src (a whole-page transfer).
func (f *Frames) CopyPage(pg int, src []byte) {
	if len(src) != f.pageSize {
		panic(fmt.Sprintf("lrc: CopyPage got %d bytes, want %d", len(src), f.pageSize))
	}
	copy(f.Page(pg), src)
}

func (f *Frames) locate(addr int64, n int) ([]byte, int) {
	pg := int(addr) / f.pageSize
	off := int(addr) % f.pageSize
	if off+n > f.pageSize {
		panic(fmt.Sprintf("lrc: access of %d bytes at %d crosses page boundary", n, addr))
	}
	return f.Page(pg), off
}

// ReadU32 loads a 32-bit word.
func (f *Frames) ReadU32(addr int64) uint32 {
	fr, off := f.locate(addr, 4)
	return binary.LittleEndian.Uint32(fr[off:])
}

// WriteU32 stores a 32-bit word.
func (f *Frames) WriteU32(addr int64, v uint32) {
	fr, off := f.locate(addr, 4)
	binary.LittleEndian.PutUint32(fr[off:], v)
}

// ReadU64 loads a 64-bit value (must not cross a page boundary).
func (f *Frames) ReadU64(addr int64) uint64 {
	fr, off := f.locate(addr, 8)
	return binary.LittleEndian.Uint64(fr[off:])
}

// WriteU64 stores a 64-bit value.
func (f *Frames) WriteU64(addr int64, v uint64) {
	fr, off := f.locate(addr, 8)
	binary.LittleEndian.PutUint64(fr[off:], v)
}

// ReadF64 loads a float64.
func (f *Frames) ReadF64(addr int64) float64 { return math.Float64frombits(f.ReadU64(addr)) }

// WriteF64 stores a float64.
func (f *Frames) WriteF64(addr int64, v float64) { f.WriteU64(addr, math.Float64bits(v)) }

// Heap is a bump allocator over the shared address space. Allocation is
// performed identically on every node (apps allocate deterministically
// before or between parallel phases), so an address means the same thing
// everywhere.
type Heap struct {
	pageSize int
	next     int64
}

// NewHeap starts allocation at page 0.
func NewHeap(pageSize int) *Heap { return &Heap{pageSize: pageSize} }

// Alloc reserves n bytes aligned to align (power of two) and returns the
// base address.
func (h *Heap) Alloc(n int, align int64) int64 {
	if align <= 0 {
		align = 8
	}
	h.next = (h.next + align - 1) &^ (align - 1)
	base := h.next
	h.next += int64(n)
	return base
}

// AllocPages reserves whole pages and returns the base address, which is
// page-aligned. Padding to page granularity is the classic defence
// against false sharing between unrelated data structures.
func (h *Heap) AllocPages(n int) int64 {
	ps := int64(h.pageSize)
	h.next = (h.next + ps - 1) / ps * ps
	base := h.next
	h.next += int64(n) * ps
	return base
}

// Brk returns the current top of the heap.
func (h *Heap) Brk() int64 { return h.next }

// PagesUsed returns the number of pages the heap spans.
func (h *Heap) PagesUsed() int {
	return int((h.next + int64(h.pageSize) - 1) / int64(h.pageSize))
}
