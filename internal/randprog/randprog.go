// Package randprog generates random data-race-free DSM programs for
// protocol fuzzing. A generated program interleaves three sharing idioms
// the paper's applications are built from:
//
//   - striped phases: each processor writes a fixed stripe of a shared
//     region, with barriers between phases (Ocean/Radix/Em3d style);
//   - lock-protected counters: processors read-modify-write shared cells
//     under locks (TSP/Water style, migratory pages);
//   - reduction reads: after a barrier, designated processors fold other
//     processors' results (producer/consumer).
//
// All decisions come from a seeded deterministic generator, and the
// observable result is independent of the processor count, so the same
// program validates against the sequential oracle under every protocol
// and machine size. Any lost write notice, stale diff, clobbered word,
// or broken lock hand-off shows up as a validation failure.
package randprog

import (
	"fmt"

	"dsm96/internal/dsm"
	"dsm96/internal/lrc"
)

// op codes for generated program steps.
const (
	opStripe   = iota // striped read-modify-write over a region
	opLocked          // lock-protected counter updates
	opReduce          // fold a region into a per-proc cell, then merge
	opMigrate         // a lock-protected record visited by every processor
	opPipeline        // barrier-separated producer -> consumer hand-off
	numOps
)

// Program is a generated DSM workload (implements dsm.App).
type Program struct {
	Seed  uint64
	Steps int
	// Words is the size of the shared working region.
	Words int
	// Locks is how many distinct locks the locked phases draw from.
	Locks int

	steps  []step
	region int64
	cells  int64 // per-proc scratch (page-strided)
	out    int64
	result float64
}

type step struct {
	op     int
	offset int // starting word within the region
	span   int // words touched
	lock   int
	factor int
}

// rng is the same deterministic generator the apps use.
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	x := r.s
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// New generates a program from a seed.
func New(seed uint64, steps, words, locks int) *Program {
	p := &Program{Seed: seed, Steps: steps, Words: words, Locks: locks}
	g := &rng{s: seed*2654435761 + 99}
	for i := 0; i < steps; i++ {
		st := step{
			op:     g.intn(numOps),
			offset: g.intn(words),
			span:   1 + g.intn(words/2),
			lock:   g.intn(locks),
			factor: 1 + g.intn(7),
		}
		if st.offset+st.span > words {
			st.span = words - st.offset
		}
		p.steps = append(p.steps, st)
	}
	return p
}

// Name implements dsm.App.
func (p *Program) Name() string { return fmt.Sprintf("randprog-%d", p.Seed) }

// Setup implements dsm.App.
func (p *Program) Setup(h *lrc.Heap) {
	p.result = 0
	p.region = h.AllocPages((4*p.Words + 4095) / 4096)
	p.cells = h.AllocPages(64)
	p.out = h.AllocPages(1)
}

// Body implements dsm.App.
func (p *Program) Body(env *dsm.Env) {
	np := env.NProcs()
	bar := 0
	nextBar := func() int { bar++; return bar }

	for si, st := range p.steps {
		switch st.op {
		case opStripe:
			// Every word of the slice is read-modified-written by exactly
			// one processor; the assignment depends only on the word index,
			// so the result is independent of np.
			for w := st.offset + env.ID; w < st.offset+st.span; w += np {
				a := p.region + int64(4*w)
				env.Compute(20)
				env.WI(a, env.RI(a)*st.factor%1000003+w)
			}
			env.Barrier(nextBar())

		case opLocked:
			// A fixed number of lock-protected increments, striped over
			// processors so the total is np-independent. The cell is the
			// step's offset word — a migratory hot spot.
			a := p.region + int64(4*st.offset)
			rounds := 4 + st.factor
			for r := env.ID; r < rounds; r += np {
				env.Lock(st.lock)
				env.WI(a, env.RI(a)+st.factor)
				env.Unlock(st.lock)
				env.Compute(100)
			}
			env.Barrier(nextBar())

		case opMigrate:
			// A multi-word record updated under a lock by each processor
			// in turn (striped rounds): the migratory pattern, with the
			// record's page chasing the lock token.
			rounds := 3 + st.factor
			for r := env.ID; r < rounds; r += np {
				env.Lock(st.lock)
				for w := st.offset; w < st.offset+min(st.span, 8); w++ {
					a := p.region + int64(4*w)
					// Commutative update: rounds execute in an order that
					// depends on timing, so only order-independent updates
					// keep the result equal to the sequential oracle's.
					env.WI(a, env.RI(a)+(r+1)*(w%97+1))
				}
				env.Unlock(st.lock)
				env.Compute(200)
			}
			env.Barrier(nextBar())

		case opPipeline:
			// The step's producer rewrites the slice; after a barrier,
			// every processor folds it into its cell; the page moves from
			// one writer to many readers.
			if env.ID == si%np {
				for w := st.offset; w < st.offset+st.span; w++ {
					a := p.region + int64(4*w)
					env.Compute(15)
					env.WI(a, env.RI(a)+w*st.factor)
				}
			}
			env.Barrier(nextBar())
			sum := 0
			for w := st.offset + env.ID; w < st.offset+st.span; w += np {
				env.Compute(5)
				sum += env.RI(p.region + int64(4*w))
			}
			env.WI(p.cells+int64(4096*env.ID+8), sum)
			env.Barrier(nextBar())

		case opReduce:
			// Each processor folds its stripe into its private cell
			// (page-strided to avoid false sharing); after the barrier,
			// the step's designated processor merges in processor order.
			sum := 0
			for w := st.offset + env.ID; w < st.offset+st.span; w += np {
				env.Compute(10)
				sum += env.RI(p.region + int64(4*w))
			}
			env.WI(p.cells+int64(4096*env.ID), sum)
			env.Barrier(nextBar())
			if env.ID == si%np {
				total := 0
				for q := 0; q < np; q++ {
					total += env.RI(p.cells + int64(4096*q))
				}
				env.WI(p.region+int64(4*st.offset), total%1000003)
			}
			env.Barrier(nextBar())
		}
	}

	env.Barrier(nextBar())
	if env.ID == 0 {
		check := 0
		for w := 0; w < p.Words; w++ {
			env.Compute(2)
			check = (check*31 + env.RI(p.region+int64(4*w))) % 1000000007
		}
		env.WI(p.out, check)
		p.result = float64(env.RI(p.out))
	}
	env.Barrier(nextBar())
}

// Result implements dsm.App.
func (p *Program) Result() float64 { return p.result }
