// Em3d sensitivity study: reproduce the paper's Section 5.3 analysis for
// one chosen knob, printing how the overlapping TreadMarks (I+D) and
// AURC react as the architecture degrades — the crossover the paper uses
// to argue that low-cost networks favour the diff-based protocol while
// slow memories favour automatic updates.
//
//	go run ./examples/em3d-study -knob netbw
//	go run ./examples/em3d-study -knob memlat
package main

import (
	"flag"
	"fmt"
	"log"

	"dsm96/internal/experiments"
)

func main() {
	knob := flag.String("knob", "netbw", "which knob to sweep: msgov, netbw, memlat, membw")
	flag.Parse()

	var (
		pts   []experiments.SweepPoint
		err   error
		title string
		xlab  string
	)
	switch *knob {
	case "msgov":
		title, xlab = "Messaging overhead (AURC updates pay full overhead)", "latency(us)"
		pts, err = experiments.Fig13(experiments.ScaleDefault, []float64{0.5, 1, 2, 3, 4})
	case "netbw":
		title, xlab = "Network bandwidth", "MB/s"
		pts, err = experiments.Fig14(experiments.ScaleDefault, []float64{20, 50, 100, 150, 200})
	case "memlat":
		title, xlab = "Memory latency", "ns"
		pts, err = experiments.Fig15(experiments.ScaleDefault, []float64{40, 100, 150, 200})
	case "membw":
		title, xlab = "Memory bandwidth", "MB/s"
		pts, err = experiments.Fig16(experiments.ScaleDefault, []float64{60, 94, 150, 200})
	default:
		log.Fatalf("unknown knob %q", *knob)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatSweep("Em3d: "+title, xlab, pts))
	fmt.Println("Values are running times normalized to the default-parameter")
	fmt.Println("overlapping-TreadMarks run. The paper's conclusions: AURC is the")
	fmt.Println("one hurt by weak networks (its automatic-update traffic needs the")
	fmt.Println("bandwidth), while the diff-based overlapping TreadMarks is the one")
	fmt.Println("hurt by slow memory (twins and diffs are memory-traffic heavy).")
}
